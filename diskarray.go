// Package diskarray is a reproduction of "Sacrificing Reliability for
// Energy Saving: Is It Worthwhile for Disk Arrays?" (Tao Xie and Yao Sun,
// IPDPS 2008): the PRESS empirical disk-reliability model, the READ
// reliability- and energy-aware data-distribution policy, the MAID and PDC
// baselines, and the trace-driven two-speed disk-array simulator they are
// evaluated on.
//
// The package is a facade: the implementation lives in internal packages
// (des, diskmodel, thermal, reliability, workload, array, policy,
// experiment) and the types below are aliases into them, so this is the
// single import a downstream user needs.
//
// # Quick start
//
//	trace, _ := diskarray.GenerateTrace(diskarray.DefaultGenConfig())
//	res, _ := diskarray.Simulate(diskarray.SimConfig{
//		Disks:  10,
//		Trace:  trace,
//		Policy: diskarray.NewREAD(diskarray.READConfig{}),
//	})
//	fmt.Printf("AFR %.2f%%, energy %.0f J, mean response %.1f ms\n",
//		res.ArrayAFR, res.EnergyJ, res.MeanResponse*1e3)
//
// # Reproducing the paper
//
// Every figure has a regeneration entry point: the reliability functions
// (Figures 2b/3b/4b) and PRESS surfaces (Figures 5a/5b) via the PRESS model,
// and the policy comparison (Figures 7a/7b/7c) via RunSweep. The
// cmd/experiments binary and the benchmarks in bench_test.go drive them.
package diskarray

import (
	"io"
	"time"

	"repro/internal/array"
	"repro/internal/cluster"
	"repro/internal/diskmodel"
	"repro/internal/experiment"
	"repro/internal/faults"
	"repro/internal/policy"
	"repro/internal/reliability"
	"repro/internal/telemetry"
	"repro/internal/thermal"
	"repro/internal/workload"
	"repro/internal/worth"
)

// PRESS is the Predictor of Reliability for Energy-Saving Schemes (paper
// §3): it maps operating temperature, utilization, and daily speed-
// transition frequency to an annualized failure rate, and integrates
// per-disk AFRs into an array-level AFR (the least reliable disk's).
type PRESS = reliability.Model

// Factors are one disk's ESRRA inputs to PRESS.
type Factors = reliability.Factors

// PRESSOption configures NewPRESS.
type PRESSOption = reliability.Option

// IntegrationMode selects PRESS's per-disk factor-combination rule.
type IntegrationMode = reliability.IntegrationMode

// The available integration modes.
const (
	SharedBaseline = reliability.SharedBaseline
	MaxFactor      = reliability.MaxFactor
	MeanFactor     = reliability.MeanFactor
)

// NewPRESS assembles the PRESS model with the paper's default functions.
func NewPRESS(opts ...PRESSOption) *PRESS { return reliability.NewModel(opts...) }

// WithIntegrationMode overrides the factor-combination rule.
func WithIntegrationMode(m IntegrationMode) PRESSOption {
	return reliability.WithIntegrationMode(m)
}

// CoffinManson exposes the paper's §3.4 modified Coffin-Manson model.
type CoffinManson = reliability.CoffinManson

// Derivation is the §3.4 constant chain (A·A0, N'f, the 65/day budget).
type Derivation = reliability.Derivation

// DefaultCoffinManson returns the paper's Coffin-Manson constants.
func DefaultCoffinManson() CoffinManson { return reliability.DefaultCoffinManson() }

// Speed is a two-speed disk's spindle speed level.
type Speed = diskmodel.Speed

// The two spindle speeds.
const (
	Low  = diskmodel.Low
	High = diskmodel.High
)

// DiskParams describes a two-speed disk drive.
type DiskParams = diskmodel.Params

// DefaultDiskParams returns the Cheetah-derived two-speed parameter set.
func DefaultDiskParams() DiskParams { return diskmodel.DefaultParams() }

// SeekModel is the optional distance-based seek curve.
type SeekModel = diskmodel.SeekModel

// DefaultSeekModel returns the Cheetah-class seek curve whose mean matches
// the flat AvgSeek approximation.
func DefaultSeekModel() SeekModel { return diskmodel.DefaultSeekModel() }

// EnterpriseParams returns a 15,000/6,000 RPM enterprise drive profile.
func EnterpriseParams() DiskParams { return diskmodel.EnterpriseParams() }

// NearlineParams returns a 7,200/3,600 RPM nearline drive profile.
func NearlineParams() DiskParams { return diskmodel.NearlineParams() }

// Weibull is the manufacturer-style age-based lifetime model (related-work
// baseline to PRESS).
type Weibull = reliability.Weibull

// DefaultWeibull returns a field-data-flavoured Weibull parameterization.
func DefaultWeibull() Weibull { return reliability.DefaultWeibull() }

// ThermalModel maps spindle speed to operating temperature.
type ThermalModel = thermal.Model

// DefaultThermalModel returns the paper's thermal operating points
// (40 °C at low speed, 50 °C at high speed, 28 °C ambient).
func DefaultThermalModel() ThermalModel { return thermal.Default() }

// File is one stored file: size and access rate.
type File = workload.File

// FileSet is a collection of files.
type FileSet = workload.FileSet

// Request is one whole-file access in a trace.
type Request = workload.Request

// Trace is a replayable workload.
type Trace = workload.Trace

// TraceStats summarizes a trace.
type TraceStats = workload.Stats

// GenConfig parameterizes the synthetic WorldCup98-like trace generator.
type GenConfig = workload.GenConfig

// DefaultGenConfig returns the paper-calibrated generator configuration
// (4,079 files; 1,480,081 requests; 58.4 ms mean inter-arrival).
func DefaultGenConfig() GenConfig { return workload.DefaultGenConfig() }

// DefaultDiurnalProfile returns the hourly diurnal rate profile used by the
// experiment sweeps.
func DefaultDiurnalProfile() []float64 { return workload.DefaultDiurnalProfile() }

// GenerateTrace builds a synthetic trace.
func GenerateTrace(cfg GenConfig) (*Trace, error) { return workload.Generate(cfg) }

// ReadTrace parses a trace in the line-oriented text format.
func ReadTrace(r io.Reader) (*Trace, error) { return workload.ReadTrace(r) }

// ParseCommonLog converts a Common Log Format access log (the format the
// WorldCup98 trace is distributed in once textualized) into a Trace. It
// returns the number of unparsable lines skipped.
func ParseCommonLog(r io.Reader) (*Trace, int, error) { return workload.ParseCommonLog(r) }

// WriteTrace serializes a trace in the line-oriented text format.
func WriteTrace(w io.Writer, t *Trace) error { return workload.WriteTrace(w, t) }

// FaultConfig parameterizes failure injection (SimConfig.Faults): seeded
// Weibull failure times whose hazard is continuously rescaled by each
// disk's live PRESS AFR, turning the predicted failure rates into observed
// failure events.
type FaultConfig = faults.Config

// ScriptedFailure is a deterministic failure event for tests and demos.
type ScriptedFailure = faults.ScriptedEvent

// DefaultFaultConfig returns an enabled fault-injection configuration with
// PRESS hazard scaling on and a real-time (unaccelerated) timescale.
func DefaultFaultConfig() FaultConfig { return faults.Default() }

// FailureEvent is one observed disk failure in SimResult.FailureLog.
type FailureEvent = array.FailureEvent

// RAIDLevel names a redundancy organization (RAID-5, RAID-6, 2/3-way
// replication) for SimConfig.RAID.
type RAIDLevel = array.RAIDLevel

// The supported RAID organizations.
const (
	RAID5 = array.RAID5
	RAID6 = array.RAID6
	Repl2 = array.Repl2
	Repl3 = array.Repl3
)

// RAIDLevels lists the accepted organizations, in documentation order.
func RAIDLevels() []RAIDLevel { return array.RAIDLevels() }

// RAIDConfig organizes the array into redundancy groups so data loss
// requires a failure *combination* — overlapping disk failures, or a latent
// sector error on a surviving member during a rebuild.
type RAIDConfig = array.RAIDConfig

// RAIDLossEvent is one observed data-loss combination in
// SimResult.RAIDLossLog.
type RAIDLossEvent = array.RAIDLossEvent

// Policy is an energy-saving strategy for the simulated array.
type Policy = array.Policy

// FailureAwarePolicy is the optional interface a Policy implements to react
// to disk failures and repairs (READ re-zones, MAID/PDC repower
// replacements).
type FailureAwarePolicy = array.FailureAwarePolicy

// PolicyContext is the window a Policy gets into the running simulation.
type PolicyContext = array.Context

// SimConfig describes one simulation run.
type SimConfig = array.Config

// SimResult is the outcome of one simulation run.
type SimResult = array.Result

// DiskSimResult is the per-disk outcome of a run.
type DiskSimResult = array.DiskResult

// Simulate executes one trace-driven simulation.
func Simulate(cfg SimConfig) (*SimResult, error) { return array.Run(cfg) }

// CheckpointSpec configures periodic simulation snapshots
// (SimConfig.Checkpoint): the complete state is written atomically every
// EverySimSeconds of virtual time so an interrupted run can be resumed
// bit-identically with ResumeSimulation.
type CheckpointSpec = array.CheckpointSpec

// CheckpointablePolicy is the optional interface a Policy implements to
// survive checkpoint/restore. All shipped policies implement it.
type CheckpointablePolicy = array.CheckpointablePolicy

// ResumeSimulation reconstructs a simulation from a checkpoint's state
// payload (the envelope's State field, produced under the same SimConfig)
// and runs it to completion. The result is bit-identical to the
// uninterrupted run's when both use the same checkpoint interval.
func ResumeSimulation(cfg SimConfig, state []byte) (*SimResult, error) {
	return array.Resume(cfg, state)
}

// Sample is one point of a run's power/speed/queue timeline (recorded when
// SimConfig.SampleInterval > 0).
type Sample = array.Sample

// RenderTimeline prints a compact view of a run's timeline.
func RenderTimeline(w io.Writer, samples []Sample, maxRows int) {
	array.RenderTimeline(w, samples, maxRows)
}

// WriteTimelineCSV exports a run's timeline as CSV with full round-trip
// float precision.
func WriteTimelineCSV(w io.Writer, samples []Sample) error {
	return array.WriteTimelineCSV(w, samples)
}

// TelemetryConfig parameterizes a telemetry recorder (output directory,
// Chrome trace_event recording, sampling).
type TelemetryConfig = telemetry.Config

// TelemetryRecorder collects a run's metrics, per-disk time-series, and DES
// event trace. Assign one to SimConfig.Telemetry; a nil recorder disables
// telemetry entirely and the simulation result is identical either way.
type TelemetryRecorder = telemetry.Recorder

// TelemetryDiskSample is one per-disk time-series row (the NDJSON/CSV
// schema telemetry exports on every epoch boundary).
type TelemetryDiskSample = telemetry.DiskSample

// TelemetryProgress is a rate-limited structured progress logger.
type TelemetryProgress = telemetry.Progress

// TelemetryLogger is the leveled logger all commands and progress
// reporting write through (error/info/debug, -quiet/-v mapping).
type TelemetryLogger = telemetry.Logger

// NewTelemetryLogger builds a leveled logger named like the producing
// tool. A nil writer defaults to stderr.
func NewTelemetryLogger(name string, w io.Writer, level telemetry.LogLevel) *TelemetryLogger {
	return telemetry.NewLogger(name, w, level)
}

// OpenTelemetry creates the telemetry output directory and returns a
// recorder writing into it. Close the recorder after the run to flush the
// series files and write metrics.json.
func OpenTelemetry(cfg TelemetryConfig) (*TelemetryRecorder, error) {
	return telemetry.Open(cfg)
}

// NewTelemetryProgress builds a progress logger that writes through l at
// most once per `every` (rate-limiting applies to Tick/Stepf; phase
// boundaries always log).
func NewTelemetryProgress(l *TelemetryLogger, every time.Duration) *TelemetryProgress {
	return telemetry.NewProgress(l, every)
}

// READConfig parameterizes the paper's READ policy.
type READConfig = policy.READConfig

// READ is the paper's Reliability and Energy Aware Distribution policy.
type READ = policy.READ

// NewREAD builds the READ policy (paper §4, Figure 6).
func NewREAD(cfg READConfig) *READ { return policy.NewREAD(cfg) }

// MAIDConfig parameterizes the MAID baseline.
type MAIDConfig = policy.MAIDConfig

// MAID is the massive-array-of-idle-disks baseline adapted to 2-speed disks.
type MAID = policy.MAID

// NewMAID builds the MAID baseline.
func NewMAID(cfg MAIDConfig) *MAID { return policy.NewMAID(cfg) }

// PDCConfig parameterizes the PDC baseline.
type PDCConfig = policy.PDCConfig

// PDC is the popular-data-concentration baseline.
type PDC = policy.PDC

// NewPDC builds the PDC baseline.
func NewPDC(cfg PDCConfig) *PDC { return policy.NewPDC(cfg) }

// NewAlwaysOn builds the no-power-management baseline.
func NewAlwaysOn() Policy { return policy.NewAlwaysOn() }

// DRPMConfig parameterizes the uncapped dynamic-speed ablation policy.
type DRPMConfig = policy.DRPMConfig

// NewDRPM builds the uncapped dynamic-speed ablation policy.
func NewDRPM(cfg DRPMConfig) Policy { return policy.NewDRPM(cfg) }

// READReplicaConfig parameterizes the replication variant of READ.
type READReplicaConfig = policy.READReplicaConfig

// READReplica is the paper's §6 future-work READ variant that promotes
// newly-popular files by copying instead of migrating.
type READReplica = policy.READReplica

// NewREADReplica builds the replication variant of READ.
func NewREADReplica(cfg READReplicaConfig) *READReplica { return policy.NewREADReplica(cfg) }

// StripedConfig parameterizes the striped always-on policy.
type StripedConfig = policy.StripedConfig

// StripedAlwaysOn is the §6 future-work striping exploration: large files
// are split across several disks and served in parallel.
type StripedAlwaysOn = policy.StripedAlwaysOn

// NewStripedAlwaysOn builds the striping policy.
func NewStripedAlwaysOn(cfg StripedConfig) *StripedAlwaysOn {
	return policy.NewStripedAlwaysOn(cfg)
}

// StripePolicy is the optional interface a Policy implements to stripe
// files across disks.
type StripePolicy = array.StripePolicy

// CostModel prices the paper's title question: energy $ vs failure $.
type CostModel = worth.CostModel

// Assessment is one policy's yearly cost account.
type Assessment = worth.Assessment

// Verdict answers "is it worthwhile?" for a scheme against a baseline.
type Verdict = worth.Verdict

// FailureSim is a Monte-Carlo failure-probability estimate.
type FailureSim = worth.FailureSim

// DefaultCostModel returns a conservative 2008-flavoured price book.
func DefaultCostModel() CostModel { return worth.DefaultCostModel() }

// AssessCost converts a simulation result into a yearly cost account.
func AssessCost(m CostModel, res *SimResult) (Assessment, error) { return worth.Assess(m, res) }

// CompareCost runs the title-question arithmetic: energy saving vs
// reliability penalty, in $ per year.
func CompareCost(m CostModel, scheme, baseline *SimResult) (Verdict, error) {
	return worth.Compare(m, scheme, baseline)
}

// SimulateFailures estimates failure-event probabilities over a horizon by
// Monte Carlo over the per-disk AFRs.
func SimulateFailures(res *SimResult, years float64, trials int, seed int64) (FailureSim, error) {
	return worth.SimulateFailures(res, years, trials, seed)
}

// SweepConfig parameterizes a Figure-7-style policy comparison.
type SweepConfig = experiment.SweepConfig

// SweepResult is the policy × array-size result grid.
type SweepResult = experiment.SweepResult

// PolicyKind names a policy for sweep construction.
type PolicyKind = experiment.PolicyKind

// The policy kinds available to sweeps.
const (
	KindREAD        = experiment.KindREAD
	KindMAID        = experiment.KindMAID
	KindPDC         = experiment.KindPDC
	KindAlwaysOn    = experiment.KindAlwaysOn
	KindDRPM        = experiment.KindDRPM
	KindREADReplica = experiment.KindREADReplica
	KindStriped     = experiment.KindStriped
)

// Metric selects which scalar a figure plots.
type Metric = experiment.Metric

// The metrics of Figures 7a/7b/7c, plus the observed-reliability metrics a
// fault-injecting sweep adds.
const (
	MetricAFR          = experiment.MetricAFR
	MetricEnergy       = experiment.MetricEnergy
	MetricResponse     = experiment.MetricResponse
	MetricFailures     = experiment.MetricFailures
	MetricDataLoss     = experiment.MetricDataLoss
	MetricLostRequests = experiment.MetricLostRequests
	MetricDegraded     = experiment.MetricDegraded
	MetricLSEErrors    = experiment.MetricLSEErrors
	MetricRAIDLoss     = experiment.MetricRAIDLoss
	MetricMTTDL        = experiment.MetricMTTDL
)

// The paper's two workload conditions, as arrival-intensity multipliers.
const (
	LightIntensity = experiment.LightIntensity
	HeavyIntensity = experiment.HeavyIntensity
)

// DefaultSweepConfig returns the light-workload Figure 7 sweep at an
// interactive trace scale.
func DefaultSweepConfig() SweepConfig { return experiment.DefaultSweepConfig() }

// DefaultFaultSweepConfig returns the light-workload policy comparison with
// accelerated fault injection enabled: the policies are compared on energy
// consumed and data loss observed.
func DefaultFaultSweepConfig() SweepConfig { return experiment.DefaultFaultSweepConfig() }

// DefaultRAIDLossSweepConfig returns the MTTDL-per-policy experiment: every
// energy policy crossed with every RAID organization, with latent sector
// errors, scrubbing, and Weibull rebuild durations enabled.
func DefaultRAIDLossSweepConfig() SweepConfig { return experiment.DefaultRAIDLossSweepConfig() }

// RunSweep executes a policy comparison sweep (Figures 7a/7b/7c).
func RunSweep(cfg SweepConfig) (*SweepResult, error) { return experiment.RunSweep(cfg) }

// FleetConfig describes a multi-array cluster simulation: N arrays on one
// shared-clock DES, mapped into a rack/enclosure failure-domain topology,
// with a routing tier (deadlines, capped-backoff retries, hedged requests,
// health gating, cross-array failover) in front and correlated faults (rack
// power shocks, vintage hazard multipliers) underneath.
type FleetConfig = cluster.Config

// FleetResult is the fleet-level outcome: router-measured latency, the
// resilience counters, and each member array's standalone result.
type FleetResult = cluster.Result

// FleetTopology maps arrays into racks (power domains) and enclosures.
type FleetTopology = cluster.Topology

// FleetCheckpointSpec configures periodic whole-fleet snapshots.
type FleetCheckpointSpec = cluster.CheckpointSpec

// RoutingPolicy selects which replica serves an attempt.
type RoutingPolicy = cluster.RoutingPolicy

// The routing policies the fleet router implements.
const (
	RoutingRoundRobin  = cluster.RoundRobin
	RoutingLeastLoaded = cluster.LeastLoaded
	RoutingAFRAware    = cluster.AFRAware
)

// RoutingPolicies lists the accepted routing policies.
func RoutingPolicies() []RoutingPolicy { return cluster.RoutingPolicies() }

// ShockConfig parameterizes per-rack power-shock injection.
type ShockConfig = faults.ShockConfig

// SimulateFleet runs a fleet to completion. Like Simulate, results are a
// pure function of the configuration.
func SimulateFleet(cfg FleetConfig) (*FleetResult, error) { return cluster.Run(cfg) }

// ResumeFleet reconstructs a fleet from a checkpoint payload produced under
// the same configuration and runs it to completion.
func ResumeFleet(cfg FleetConfig, state []byte) (*FleetResult, error) {
	return cluster.Resume(cfg, state)
}

// FleetSweepConfig parameterizes a fleet-size × routing × policy sweep.
type FleetSweepConfig = experiment.FleetSweepConfig

// FleetSweepResult is the fleet sweep's cell grid.
type FleetSweepResult = experiment.FleetSweepResult

// DefaultFleetSweepConfig returns an interactive-scale fleet comparison.
func DefaultFleetSweepConfig() FleetSweepConfig { return experiment.DefaultFleetSweepConfig() }

// RunFleetSweep executes a fleet comparison sweep.
func RunFleetSweep(cfg FleetSweepConfig) (*FleetSweepResult, error) {
	return experiment.RunFleetSweep(cfg)
}

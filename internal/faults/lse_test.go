package faults

import (
	"math"
	"testing"

	"repro/internal/reliability"
)

func lseConfig(seed int64, accel float64) Config {
	return Config{
		Enabled:        true,
		Seed:           seed,
		Acceleration:   accel,
		LSERatePerHour: DefaultLSERatePerHour,
		RebuildTime:    &reliability.Weibull{Shape: 1, ScaleHours: 12},
	}
}

// TestTimescaleConversionPinned pins the accelerated-timescale contract:
// acceleration multiplies rates and divides durations through the shared
// helpers, so rateBoost(r)·hoursToVirtualSeconds(d) is invariant in the
// acceleration factor. LSE, scrub, and repair draws all route through these
// two helpers, so the three processes cannot drift apart.
func TestTimescaleConversionPinned(t *testing.T) {
	for _, accel := range []float64{1, 4, 1e3, 2e5} {
		c := Config{Acceleration: accel}
		const rate, dur = 0.25, 7.5 // per hour, hours
		got := c.rateBoost(rate) * c.hoursToVirtualSeconds(dur)
		want := rate * dur * 3600
		if math.Abs(got-want) > 1e-9*want {
			t.Fatalf("accel %v: rateBoost·hoursToVirtualSeconds = %v, want %v", accel, got, want)
		}
	}
	// The same uniform draw at different accelerations must yield durations
	// in exact inverse proportion, for every duration sampler.
	samplers := map[string]func(*Injector) float64{
		"repair":  (*Injector).SampleRepairSeconds,
		"scrub":   (*Injector).SampleScrubIntervalSeconds,
		"rebuild": (*Injector).SampleRebuildSeconds,
	}
	for name, sample := range samplers {
		a, err := NewInjector(lseConfig(9, 1), 1)
		if err != nil {
			t.Fatalf("NewInjector: %v", err)
		}
		b, err := NewInjector(lseConfig(9, 500), 1)
		if err != nil {
			t.Fatalf("NewInjector: %v", err)
		}
		da, db := sample(a), sample(b)
		if math.Abs(da/db-500) > 1e-9*500 {
			t.Fatalf("%s: durations %v and %v not in 500:1 ratio", name, da, db)
		}
	}
}

// TestLSERateMatchesPoisson checks that the hazard-inversion LSE sampler
// reproduces its configured Poisson rate: over a long exposure the arrival
// count must match rate·disks·hours within a few percent.
func TestLSERateMatchesPoisson(t *testing.T) {
	const disks = 16
	cfg := lseConfig(3, 1e4)
	cfg.LSERatePerHour = 0.01
	in, err := NewInjector(cfg, disks)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	// 100 windows of 1 virtual hour at 1e4 acceleration = 1e6 disk-hours/16.
	total := 0
	for step := 1; step <= 100; step++ {
		total += len(in.AdvanceLSE(float64(step)*3600, nil))
	}
	exposureHours := 100.0 * 3600 / 3600 * cfg.Acceleration * disks
	want := cfg.LSERatePerHour * exposureHours
	got := float64(total)
	if rel := math.Abs(got-want) / want; rel > 0.05 {
		t.Fatalf("LSE count %v vs expected %v: relative error %.1f%% > 5%%", got, want, rel*100)
	}
	if in.LSECount() != total {
		t.Fatalf("LSECount %d != emitted %d", in.LSECount(), total)
	}
	if in.PendingLSETotal() != total {
		t.Fatalf("PendingLSETotal %d != emitted %d (nothing scrubbed)", in.PendingLSETotal(), total)
	}
}

// TestLSEScalingShiftsRate checks the operating-condition coupling: a
// constant scale multiplier k multiplies the LSE arrival rate by k.
func TestLSEScalingShiftsRate(t *testing.T) {
	count := func(scale float64) int {
		cfg := lseConfig(11, 1e5)
		cfg.LSERatePerHour = 0.01
		in, err := NewInjector(cfg, 8)
		if err != nil {
			t.Fatalf("NewInjector: %v", err)
		}
		total := 0
		for step := 1; step <= 200; step++ {
			total += len(in.AdvanceLSE(float64(step)*3600, func(int) float64 { return scale }))
		}
		return total
	}
	base, doubled := count(1), count(2)
	got := float64(doubled) / float64(base)
	if math.Abs(got-2) > 0.1 {
		t.Fatalf("scale-2 LSE rate ratio %.3f, want 2±0.1", got)
	}
}

// TestScrubClearsPending checks MarkScrubbed semantics and that failed
// disks accumulate no latent errors.
func TestScrubClearsPending(t *testing.T) {
	cfg := lseConfig(5, 1e6)
	cfg.LSERatePerHour = 0.01
	in, err := NewInjector(cfg, 2)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	in.AdvanceLSE(100*3600, nil)
	if in.PendingLSE(0) == 0 {
		t.Fatal("expected pending LSEs on disk 0 at this rate")
	}
	n := in.MarkScrubbed(0)
	if n == 0 || in.PendingLSE(0) != 0 {
		t.Fatalf("scrub cleared %d, pending now %d", n, in.PendingLSE(0))
	}
	// Kill disk 1 and confirm it stops accumulating.
	in.disks[1].alive = false
	before := in.PendingLSE(1)
	in.AdvanceLSE(200*3600, nil)
	if in.PendingLSE(1) != before {
		t.Fatalf("dead disk accumulated LSEs: %d -> %d", before, in.PendingLSE(1))
	}
	// Repair resets the pending count along with media state.
	in.MarkRepaired(1, 200*3600)
	if in.PendingLSE(1) != 0 {
		t.Fatalf("repaired disk kept %d pending LSEs", in.PendingLSE(1))
	}
}

// TestLSECheckpointRoundTrip interleaves failures, repairs, LSEs, scrub
// draws, and rebuild draws, checkpoints mid-stream, and checks that the
// restored injector produces the identical continuation — the draw log must
// replay 'e', 'l', 'f', 's', and 'b' entries correctly.
func TestLSECheckpointRoundTrip(t *testing.T) {
	cfg := lseConfig(21, 3e5)
	cfg.LSERatePerHour = 0.005
	mk := func() *Injector {
		in, err := NewInjector(cfg, 6)
		if err != nil {
			t.Fatalf("NewInjector: %v", err)
		}
		return in
	}
	drive := func(in *Injector, from, to int) (fails []Failure, lses []LSEvent, draws []float64) {
		for step := from; step <= to; step++ {
			now := float64(step) * 3600
			for _, f := range in.Advance(now, nil) {
				fails = append(fails, f)
				draws = append(draws, in.SampleRepairSeconds(), in.SampleRebuildSeconds())
				in.MarkRepaired(f.Disk, now)
			}
			lses = append(lses, in.AdvanceLSE(now, nil)...)
			if step%10 == 0 {
				draws = append(draws, in.SampleScrubIntervalSeconds())
				in.MarkScrubbed(step % 6)
			}
		}
		return
	}

	ref := mk()
	drive(ref, 1, 50)
	ckpt := ref.Checkpoint()
	wantF, wantL, wantD := drive(ref, 51, 120)

	res, err := RestoreInjector(cfg, ckpt)
	if err != nil {
		t.Fatalf("RestoreInjector: %v", err)
	}
	gotF, gotL, gotD := drive(res, 51, 120)

	if len(wantF) == 0 || len(wantL) == 0 {
		t.Fatalf("weak test: %d failures, %d LSEs after checkpoint", len(wantF), len(wantL))
	}
	if len(gotF) != len(wantF) || len(gotL) != len(wantL) || len(gotD) != len(wantD) {
		t.Fatalf("continuation counts diverged: %d/%d/%d vs %d/%d/%d",
			len(gotF), len(gotL), len(gotD), len(wantF), len(wantL), len(wantD))
	}
	for i := range wantF {
		if gotF[i] != wantF[i] {
			t.Fatalf("failure %d diverged: %+v vs %+v", i, gotF[i], wantF[i])
		}
	}
	for i := range wantL {
		if gotL[i] != wantL[i] {
			t.Fatalf("LSE %d diverged: %+v vs %+v", i, gotL[i], wantL[i])
		}
	}
	for i := range wantD {
		if gotD[i] != wantD[i] {
			t.Fatalf("duration draw %d diverged: %v vs %v", i, gotD[i], wantD[i])
		}
	}
}

// TestLSEOffKeepsRNGStream proves the bit-identity contract for feature-off
// runs: an injector without LSE modeling draws the same thresholds and
// repair times it always has, even though the code now supports more.
func TestLSEOffKeepsRNGStream(t *testing.T) {
	plain := Config{Enabled: true, Seed: 77}
	in, err := NewInjector(plain, 4)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	// Reproduce the expected stream by hand: 4 ExpFloat64 thresholds, then
	// one uniform repair draw.
	ref, err := NewInjector(plain, 4)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	if got, want := in.SampleRepairSeconds(), ref.SampleRepairSeconds(); got != want {
		t.Fatalf("repair draw %v != %v", got, want)
	}
	for i := 0; i < 4; i++ {
		if in.disks[i].lseThreshold != 0 {
			t.Fatalf("disk %d has an LSE threshold with LSE modeling off", i)
		}
	}
	if len(in.AdvanceLSE(1e9, nil)) != 0 {
		t.Fatal("AdvanceLSE produced events with LSE modeling off")
	}
}

func TestValidateNewFields(t *testing.T) {
	bad := []Config{
		{LSERatePerHour: -1},
		{LSERatePerHour: math.NaN()},
		{ScrubIOMB: -5},
		{Scrub: &reliability.Weibull{Shape: 0, ScaleHours: 10}},
		{RebuildTime: &reliability.Weibull{Shape: 1, ScaleHours: -2}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d: expected validation error", i)
		}
	}
	good := lseConfig(1, 10)
	if err := good.Validate(); err != nil {
		t.Errorf("LSE config invalid: %v", err)
	}
}

package faults

// Correlated fault injection: the failure machinery in this package treats
// disks as independent, but production failures are not — racks share power,
// enclosures share cooling, and drives from one manufacturing vintage share
// latent defects. Two mechanisms layer correlation on top of the existing
// Weibull/LSE hazard integration without touching its draw stream:
//
//   - Domain shocks: a seeded renewal process of rack power events. Each
//     shock takes a whole failure domain down for a sampled outage, during
//     which the cluster forces the domain's disks into an emergency
//     spin-down; on restore every disk spins back up ("re-heat"). The extra
//     transition churn feeds straight into each disk's PRESS AFR, so the
//     paper's frequency→reliability term now has a common-cause driver.
//   - Vintage multipliers: a per-array constant scaling of the Weibull and
//     LSE hazard (Config.HazardMultiplier), modeling a bad drive batch. It
//     composes multiplicatively with live PRESS scaling.
//
// Shock times are pure functions of (seed, domain, index) via a splitmix64
// hash — no RNG state exists, so checkpointing the schedule reduces to
// checkpointing the per-domain next-shock index, and replaying never
// perturbs the injector's draw log.

import (
	"fmt"
	"math"
)

// ShockConfig parameterizes the per-domain power-shock renewal process.
type ShockConfig struct {
	// Enabled turns domain shocks on; the zero value injects none.
	Enabled bool `json:"Enabled,omitempty"`
	// Seed drives the schedule hash. Domains with the same seed still see
	// independent schedules (the domain index is hashed in).
	Seed int64 `json:"Seed,omitempty"`
	// MeanIntervalSeconds is the mean virtual time between shocks in one
	// domain (exponential inter-arrivals). Zero disables shocks even when
	// Enabled is set, matching the omitempty-zero digest convention.
	MeanIntervalSeconds float64 `json:"MeanIntervalSeconds,omitempty"`
	// MeanOutageSeconds is the mean outage duration (exponential). Zero
	// means 60 virtual seconds.
	MeanOutageSeconds float64 `json:"MeanOutageSeconds,omitempty"`
}

// Active reports whether the configuration produces any shocks.
func (c ShockConfig) Active() bool {
	return c.Enabled && c.MeanIntervalSeconds > 0
}

// Validate reports the first unusable parameter.
func (c ShockConfig) Validate() error {
	switch {
	case c.MeanIntervalSeconds < 0 || math.IsNaN(c.MeanIntervalSeconds):
		return fmt.Errorf("faults: shock mean interval %v must be non-negative", c.MeanIntervalSeconds)
	case c.MeanOutageSeconds < 0 || math.IsNaN(c.MeanOutageSeconds):
		return fmt.Errorf("faults: shock mean outage %v must be non-negative", c.MeanOutageSeconds)
	}
	return nil
}

// Shock is one scheduled domain power event.
type Shock struct {
	// Domain is the failure-domain index the shock hits.
	Domain int
	// Index is the shock's ordinal within its domain (0-based).
	Index int
	// Start and End delimit the outage in virtual seconds.
	Start, End float64
}

// ShockAt returns domain's k-th shock. It is a pure function of the
// configuration: calling it in any order, from any restore point, yields the
// identical schedule. Cost is O(k) per call; callers iterate k monotonically
// and cache, so the amortized cost per shock is O(1).
func (c ShockConfig) ShockAt(domain, k int) Shock {
	start := 0.0
	for i := 0; i <= k; i++ {
		start += expDraw(hash01(c.Seed, uint64(domain), uint64(i), 0x1)) * c.MeanIntervalSeconds
	}
	mean := c.MeanOutageSeconds
	if mean <= 0 {
		mean = 60
	}
	dur := expDraw(hash01(c.Seed, uint64(domain), uint64(k), 0x2)) * mean
	return Shock{Domain: domain, Index: k, Start: start, End: start + dur}
}

// expDraw maps a uniform u in (0,1] to a unit-mean exponential variate.
func expDraw(u float64) float64 { return -math.Log(u) }

// hash01 maps (seed, a, b, stream) to a uniform float in (0, 1] via a
// splitmix64 finalizer chain. The open-at-zero interval keeps -log(u) finite.
func hash01(seed int64, a, b, stream uint64) float64 {
	x := splitmix64(uint64(seed) ^ splitmix64(a^splitmix64(b^splitmix64(stream))))
	// 53 high bits → uniform in [0,1); flip to (0,1].
	return 1 - float64(x>>11)/float64(1<<53)
}

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche mix.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Jitter01 exposes the deterministic uniform hash for callers that need
// seeded jitter outside shock scheduling (retry backoff in the cluster
// router): a pure function of its inputs, safe to replay across resumes.
func Jitter01(seed int64, a, b uint64) float64 {
	return hash01(seed, a, b, 0x3)
}

package faults

import (
	"math"
	"testing"

	"repro/internal/reliability"
)

// sampleFailureTime runs one fresh single-disk injector to its first
// failure under a constant hazard scale and returns the failure time in
// hours. The horizon is far beyond the distribution's tail.
func sampleFailureTime(t *testing.T, seed int64, scale float64) float64 {
	t.Helper()
	cfg := Config{Enabled: true, Seed: seed}
	in, err := NewInjector(cfg, 1)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	w := in.cfg.Failure
	horizon := 50 * w.ScaleHours * 3600
	// Advance in several windows to exercise cross-window accumulation.
	const steps = 8
	for i := 1; i <= steps; i++ {
		fs := in.Advance(horizon*float64(i)/steps, func(int) float64 { return scale })
		if len(fs) > 0 {
			return fs[0].Time / 3600
		}
	}
	t.Fatalf("seed %d: no failure within %v hours", seed, horizon/3600)
	return 0
}

// TestMTTDLMatchesWeibullMTBF is the calibration acceptance test: with
// PRESS scaling off (pure Weibull hazard) the mean simulated time to first
// failure over many seeded runs must agree with the analytic Weibull MTBF
// within 15%. With no spares, the first failure is the first data-loss
// event, so this is the simulator's MTTDL.
func TestMTTDLMatchesWeibullMTBF(t *testing.T) {
	const runs = 500
	var sum float64
	for seed := int64(1); seed <= runs; seed++ {
		sum += sampleFailureTime(t, seed, 1)
	}
	mean := sum / runs
	mtbf, err := reliability.DefaultWeibull().MTBFHours()
	if err != nil {
		t.Fatalf("MTBFHours: %v", err)
	}
	if rel := math.Abs(mean-mtbf) / mtbf; rel > 0.15 {
		t.Fatalf("simulated MTTDL %.0f h vs analytic MTBF %.0f h: relative error %.1f%% > 15%%",
			mean, mtbf, rel*100)
	}
}

// TestHazardScalingShiftsMTTDL checks the PRESS-coupling mechanism: a
// constant hazard multiplier k scales mean lifetime by k^(-1/β) for a
// Weibull of shape β.
func TestHazardScalingShiftsMTTDL(t *testing.T) {
	const runs = 400
	var base, scaled float64
	for seed := int64(1); seed <= runs; seed++ {
		base += sampleFailureTime(t, seed, 1)
		scaled += sampleFailureTime(t, seed, 2)
	}
	beta := reliability.DefaultWeibull().Shape
	want := math.Pow(2, -1/beta)
	got := scaled / base
	if rel := math.Abs(got-want) / want; rel > 0.05 {
		t.Fatalf("scale-2 lifetime ratio %.3f, want %.3f (±5%%)", got, want)
	}
}

func TestDeterministicSchedule(t *testing.T) {
	run := func() ([]Failure, []float64) {
		cfg := Config{Enabled: true, Seed: 42, Acceleration: 5e5}
		in, err := NewInjector(cfg, 8)
		if err != nil {
			t.Fatalf("NewInjector: %v", err)
		}
		var fails []Failure
		var repairs []float64
		for step := 1; step <= 200; step++ {
			fs := in.Advance(float64(step)*3600, func(d int) float64 { return 1 + float64(d)*0.1 })
			for _, f := range fs {
				fails = append(fails, f)
				repairs = append(repairs, in.SampleRepairSeconds())
				in.MarkRepaired(f.Disk, float64(step)*3600)
			}
		}
		return fails, repairs
	}
	f1, r1 := run()
	f2, r2 := run()
	if len(f1) == 0 {
		t.Fatal("expected at least one failure at this acceleration")
	}
	if len(f1) != len(f2) {
		t.Fatalf("failure counts differ: %d vs %d", len(f1), len(f2))
	}
	for i := range f1 {
		if f1[i] != f2[i] || r1[i] != r2[i] {
			t.Fatalf("schedule diverged at %d: %+v/%v vs %+v/%v", i, f1[i], r1[i], f2[i], r2[i])
		}
	}
}

func TestScriptedEvents(t *testing.T) {
	cfg := Config{Enabled: true, Scripted: []ScriptedEvent{
		{Disk: 2, At: 10},
		{Disk: 0, At: 5},
		{Disk: 2, At: 20}, // already failed: ignored
	}}
	in, err := NewInjector(cfg, 3)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	fs := in.Advance(7, nil)
	if len(fs) != 1 || fs[0] != (Failure{Disk: 0, Time: 5}) {
		t.Fatalf("window to 7: got %+v", fs)
	}
	fs = in.Advance(30, nil)
	if len(fs) != 1 || fs[0] != (Failure{Disk: 2, Time: 10}) {
		t.Fatalf("window to 30: got %+v", fs)
	}
	if in.Alive(0) || in.Alive(2) || !in.Alive(1) {
		t.Fatalf("alive flags wrong: %v %v %v", in.Alive(0), in.Alive(1), in.Alive(2))
	}
	in.MarkRepaired(0, 30)
	if !in.Alive(0) {
		t.Fatal("disk 0 should be alive after repair")
	}
}

func TestScriptedOutOfRangeRejected(t *testing.T) {
	cfg := Config{Enabled: true, Scripted: []ScriptedEvent{{Disk: 5, At: 1}}}
	if _, err := NewInjector(cfg, 3); err == nil {
		t.Fatal("expected error for scripted disk out of range")
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Acceleration: -1},
		{CheckIntervalSeconds: math.NaN()},
		{MaxFailures: -2},
		{FixedRepairHours: -1},
		{Failure: reliability.Weibull{Shape: -1, ScaleHours: 10}},
		{Scripted: []ScriptedEvent{{Disk: -1, At: 0}}},
		{Scripted: []ScriptedEvent{{Disk: 0, At: math.NaN()}}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d: expected validation error", i)
		}
	}
	if err := Default().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestMaxFailuresCap(t *testing.T) {
	cfg := Config{Enabled: true, Seed: 7, Acceleration: 1e9, MaxFailures: 2}
	in, err := NewInjector(cfg, 10)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	total := 0
	for step := 1; step <= 100; step++ {
		total += len(in.Advance(float64(step)*86400, nil))
	}
	if total != 2 {
		t.Fatalf("cap 2: got %d failures", total)
	}
}

func TestFixedRepair(t *testing.T) {
	cfg := Config{Enabled: true, FixedRepairHours: 2, Acceleration: 4}
	in, err := NewInjector(cfg, 1)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	if got := in.SampleRepairSeconds(); got != 2*3600/4.0 {
		t.Fatalf("fixed repair: got %v s", got)
	}
}

// Package faults implements seeded, deterministic disk-failure injection
// for the array simulator: it turns the AFRs that PRESS merely *predicts*
// into failure events the simulation actually *observes*, closing the
// predict→observe loop the paper's argument rests on.
//
// Failure times are sampled from a Weibull lifetime distribution by hazard
// inversion: each disk draws a unit-exponential threshold E at birth and
// fails the instant its accumulated hazard H(t) crosses E. The hazard is
// integrated analytically window by window, which lets the caller rescale it
// continuously — each window's Weibull hazard is multiplied by the disk's
// current PRESS AFR relative to a reference AFR, so a disk that PRESS says
// is being run twice as hard really does fail twice as fast. With a constant
// scale of 1 the scheme reduces exactly to Weibull sampling, which is what
// the MTTDL calibration test asserts.
//
// Everything is driven by one seeded math/rand source consumed in a
// deterministic order (thresholds at construction, repair draws in event
// order), so a fixed seed reproduces the identical failure/repair schedule.
package faults

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/reliability"
)

// ScriptedEvent is a deterministic failure for tests and demonstrations:
// the given disk fails at the given virtual time, bypassing the stochastic
// sampler entirely.
type ScriptedEvent struct {
	// Disk is the index of the disk to fail.
	Disk int
	// At is the failure time in virtual seconds.
	At float64
}

// Config parameterizes failure injection for one simulation run.
type Config struct {
	// Enabled turns injection on; a zero Config injects nothing.
	Enabled bool
	// Seed drives every random draw. Runs with equal seeds (and equal
	// hazard inputs) produce identical failure/repair schedules.
	Seed int64
	// Failure is the lifetime distribution. The zero value means
	// reliability.DefaultWeibull() (β = 1.1, first-year AFR ≈ 2.5%).
	Failure reliability.Weibull
	// Repair is the repair/replacement-time distribution in hours. The
	// zero value means DefaultRepair() (β = 1.5, mean ≈ 8 h).
	Repair reliability.Weibull
	// PRESSScaling, when true, multiplies the Weibull hazard by each
	// disk's live PRESS AFR divided by ReferenceAFRPercent, so operating
	// conditions (heat, load, transition churn) translate into observed
	// failures. When false the hazard is the pure Weibull.
	PRESSScaling bool
	// ReferenceAFRPercent anchors the PRESS scaling: a disk whose live
	// PRESS AFR equals it fails at exactly the base Weibull rate. Zero
	// means the Failure distribution's own first-year AFR.
	ReferenceAFRPercent float64
	// Acceleration compresses the reliability timescale so that failures
	// (MTBF measured in decades) become observable within a trace
	// (measured in hours): the hazard is multiplied by it and repair
	// durations are divided by it. 1 (the default) is real time.
	Acceleration float64
	// CheckIntervalSeconds is the virtual-time step at which hazard is
	// re-integrated (and PRESS scaling re-read). Zero means 60 s.
	CheckIntervalSeconds float64
	// MaxFailures caps the number of injected failures; 0 is unlimited.
	MaxFailures int
	// FixedRepairHours, when positive, replaces the Repair distribution
	// with a constant — for tests that need exact repair timing.
	FixedRepairHours float64
	// Scripted, when non-empty, replaces stochastic sampling entirely:
	// the listed failures happen at the listed times and no others.
	Scripted []ScriptedEvent
}

// Default returns an enabled configuration with the package defaults:
// seed 1, PRESS scaling on, real-time hazard.
func Default() Config {
	return Config{Enabled: true, Seed: 1, PRESSScaling: true}
}

// DefaultRepair returns the default repair-time distribution: Weibull with
// β = 1.5 (repairs cluster around the mean rather than being memoryless)
// and mean ≈ 8 hours — a same-business-day hot-swap plus rebuild start.
func DefaultRepair() reliability.Weibull {
	return reliability.Weibull{Shape: 1.5, ScaleHours: 8.862}
}

// Normalized returns a copy with every zero field replaced by its default.
func (c Config) Normalized() Config {
	if c.Failure == (reliability.Weibull{}) {
		c.Failure = reliability.DefaultWeibull()
	}
	if c.Repair == (reliability.Weibull{}) {
		c.Repair = DefaultRepair()
	}
	if c.ReferenceAFRPercent == 0 {
		if afr, err := c.Failure.AFRPercent(0); err == nil && afr > 0 {
			c.ReferenceAFRPercent = afr
		} else {
			c.ReferenceAFRPercent = 1
		}
	}
	if c.Acceleration == 0 {
		c.Acceleration = 1
	}
	if c.CheckIntervalSeconds == 0 {
		c.CheckIntervalSeconds = 60
	}
	return c
}

// Validate reports the first unusable parameter of a normalized or
// hand-built configuration.
func (c Config) Validate() error {
	c = c.Normalized()
	if err := c.Failure.Validate(); err != nil {
		return fmt.Errorf("faults: failure distribution: %w", err)
	}
	if err := c.Repair.Validate(); err != nil {
		return fmt.Errorf("faults: repair distribution: %w", err)
	}
	switch {
	case c.Acceleration < 0 || math.IsNaN(c.Acceleration):
		return fmt.Errorf("faults: acceleration %v must be positive", c.Acceleration)
	case c.CheckIntervalSeconds <= 0 || math.IsNaN(c.CheckIntervalSeconds):
		return fmt.Errorf("faults: check interval %v must be positive", c.CheckIntervalSeconds)
	case c.ReferenceAFRPercent <= 0 || math.IsNaN(c.ReferenceAFRPercent):
		return fmt.Errorf("faults: reference AFR %v must be positive", c.ReferenceAFRPercent)
	case c.MaxFailures < 0:
		return fmt.Errorf("faults: negative failure cap %d", c.MaxFailures)
	case c.FixedRepairHours < 0 || math.IsNaN(c.FixedRepairHours):
		return fmt.Errorf("faults: negative fixed repair time %v", c.FixedRepairHours)
	}
	for i, s := range c.Scripted {
		if s.At < 0 || math.IsNaN(s.At) {
			return fmt.Errorf("faults: scripted event %d at invalid time %v", i, s.At)
		}
		if s.Disk < 0 {
			return fmt.Errorf("faults: scripted event %d on negative disk %d", i, s.Disk)
		}
	}
	return nil
}

// Failure is one injected failure event.
type Failure struct {
	// Disk is the failed disk's index.
	Disk int
	// Time is the failure time in virtual seconds. For sampled failures
	// it is the exact hazard-crossing instant (interpolated inside the
	// integration window, so it may precede the Advance call's `to`).
	Time float64
}

type diskHazard struct {
	alive     bool
	threshold float64 // Exp(1) draw; failure when cum crosses it
	cum       float64 // accumulated hazard
	birth     float64 // virtual seconds at which this drive's age is zero
}

// Injector samples failures for a fixed-size array. It is not safe for
// concurrent use; the simulator drives it from the single-threaded event
// loop.
type Injector struct {
	cfg      Config
	rng      *rand.Rand
	now      float64
	disks    []diskHazard
	failures int
	scripted []ScriptedEvent // pending, sorted by time

	// drawLog records every post-construction RNG draw ('e' for the
	// exponential threshold in MarkRepaired, 'f' for the uniform repair
	// draw in SampleRepairSeconds). math/rand sources cannot be serialized,
	// so a checkpoint restores the stream by replaying this log against a
	// freshly seeded source — the log length is bounded by the (small)
	// failure count, not the simulation length.
	drawLog []byte
}

// NewInjector builds an injector for `disks` drives, all born at time 0.
func NewInjector(cfg Config, disks int) (*Injector, error) {
	cfg = cfg.Normalized()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if disks < 1 {
		return nil, errors.New("faults: need at least one disk")
	}
	for i, s := range cfg.Scripted {
		if s.Disk >= disks {
			return nil, fmt.Errorf("faults: scripted event %d on disk %d of %d", i, s.Disk, disks)
		}
	}
	in := &Injector{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		disks: make([]diskHazard, disks),
	}
	for i := range in.disks {
		in.disks[i] = diskHazard{alive: true, threshold: in.rng.ExpFloat64()}
	}
	in.scripted = append(in.scripted, cfg.Scripted...)
	sort.SliceStable(in.scripted, func(i, j int) bool { return in.scripted[i].At < in.scripted[j].At })
	return in, nil
}

// Now returns the virtual time the injector has integrated hazard up to.
func (in *Injector) Now() float64 { return in.now }

// FailureCount returns the number of failures produced so far.
func (in *Injector) FailureCount() int { return in.failures }

// Alive reports whether disk d is currently operational.
func (in *Injector) Alive(d int) bool { return in.disks[d].alive }

// cumHazardTerm returns (age/η)^β for an age in hours, the Weibull
// cumulative hazard up to that age.
func (in *Injector) cumHazardTerm(ageHours float64) float64 {
	if ageHours <= 0 {
		return 0
	}
	w := in.cfg.Failure
	return math.Pow(ageHours/w.ScaleHours, w.Shape)
}

// Advance integrates each live disk's hazard from the injector's current
// time to `to` (virtual seconds) and returns the failures that occurred in
// that window, time-ordered. scale supplies the per-disk hazard multiplier
// for the window (the live PRESS AFR over the reference AFR); nil means 1
// everywhere. Non-positive scales freeze a disk's hazard for the window.
func (in *Injector) Advance(to float64, scale func(disk int) float64) []Failure {
	if to <= in.now {
		return nil
	}
	var out []Failure
	if len(in.cfg.Scripted) > 0 {
		for len(in.scripted) > 0 && in.scripted[0].At <= to {
			ev := in.scripted[0]
			in.scripted = in.scripted[1:]
			if !in.disks[ev.Disk].alive || in.capped() {
				continue
			}
			in.disks[ev.Disk].alive = false
			in.failures++
			out = append(out, Failure{Disk: ev.Disk, Time: ev.At})
		}
		in.now = to
		return out
	}
	w := in.cfg.Failure
	for i := range in.disks {
		d := &in.disks[i]
		if !d.alive || in.capped() {
			continue
		}
		s := 1.0
		if scale != nil {
			s = scale(i)
		}
		if s <= 0 || math.IsNaN(s) {
			continue
		}
		eff := s * in.cfg.Acceleration
		a := in.cumHazardTerm((in.now - d.birth) / 3600)
		b := in.cumHazardTerm((to - d.birth) / 3600)
		dh := eff * (b - a)
		if d.cum+dh < d.threshold {
			d.cum += dh
			continue
		}
		// Crossing: solve eff·((x/η)^β − a) = threshold − cum for the
		// failure age x in hours, exact because scale is constant over
		// the window.
		x := w.ScaleHours * math.Pow((d.threshold-d.cum)/eff+a, 1/w.Shape)
		t := d.birth + x*3600
		if t < in.now {
			t = in.now
		}
		if t > to {
			t = to
		}
		d.alive = false
		in.failures++
		out = append(out, Failure{Disk: i, Time: t})
	}
	in.now = to
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

func (in *Injector) capped() bool {
	return in.cfg.MaxFailures > 0 && in.failures >= in.cfg.MaxFailures
}

// MarkRepaired returns disk d to service at virtual time `at` as a fresh
// replacement drive: age resets and a new failure threshold is drawn.
func (in *Injector) MarkRepaired(d int, at float64) {
	h := &in.disks[d]
	h.alive = true
	h.birth = at
	h.cum = 0
	h.threshold = in.rng.ExpFloat64()
	in.drawLog = append(in.drawLog, 'e')
}

// SampleRepairSeconds draws a repair/replacement duration in virtual
// seconds, already divided by the acceleration factor (a compressed
// timescale compresses repairs too).
func (in *Injector) SampleRepairSeconds() float64 {
	hours := in.cfg.FixedRepairHours
	if hours <= 0 {
		// Inverse-CDF sample: T = η·(−ln(1−u))^(1/β).
		u := in.rng.Float64()
		in.drawLog = append(in.drawLog, 'f')
		w := in.cfg.Repair
		hours = w.ScaleHours * math.Pow(-math.Log(1-u), 1/w.Shape)
	}
	return hours * 3600 / in.cfg.Acceleration
}

// DiskCheckpoint is the serializable hazard state of one disk.
//
//simlint:checkpoint-for diskHazard
type DiskCheckpoint struct {
	Alive     bool    `json:"alive"`
	Threshold float64 `json:"threshold"`
	Cum       float64 `json:"cum"`
	Birth     float64 `json:"birth"`
}

// Checkpoint is the complete serializable state of an Injector. The RNG
// stream is captured as the replay log of post-construction draws: restoring
// re-seeds the source, replays the constructor's threshold draws (implied by
// the disk count) and then the log, leaving the stream positioned exactly
// where the original was. Without this, repair times and replacement-drive
// thresholds after a resume would diverge from the uninterrupted run.
//
//simlint:checkpoint-for Injector ignore=cfg,rng
type Checkpoint struct {
	Now      float64          `json:"now"`
	Failures int              `json:"failures"`
	Disks    []DiskCheckpoint `json:"disks"`
	Scripted []ScriptedEvent  `json:"scripted,omitempty"`
	DrawLog  string           `json:"draw_log,omitempty"`
}

// Checkpoint captures the injector's state without mutating it.
func (in *Injector) Checkpoint() Checkpoint {
	c := Checkpoint{
		Now:      in.now,
		Failures: in.failures,
		Disks:    make([]DiskCheckpoint, len(in.disks)),
		Scripted: append([]ScriptedEvent(nil), in.scripted...),
		DrawLog:  string(in.drawLog),
	}
	for i, d := range in.disks {
		c.Disks[i] = DiskCheckpoint{Alive: d.alive, Threshold: d.threshold, Cum: d.cum, Birth: d.birth}
	}
	return c
}

// RestoreInjector rebuilds an injector from a checkpoint under the same
// configuration it was built with. The RNG is re-seeded and advanced by
// replaying the draw log; all hazard state is then overwritten from the
// checkpoint.
func RestoreInjector(cfg Config, c Checkpoint) (*Injector, error) {
	in, err := NewInjector(cfg, len(c.Disks))
	if err != nil {
		return nil, err
	}
	for _, kind := range []byte(c.DrawLog) {
		switch kind {
		case 'e':
			in.rng.ExpFloat64()
		case 'f':
			in.rng.Float64()
		default:
			return nil, fmt.Errorf("faults: unknown draw log entry %q", kind)
		}
	}
	in.drawLog = []byte(c.DrawLog)
	in.now = c.Now
	in.failures = c.Failures
	for i, d := range c.Disks {
		in.disks[i] = diskHazard{alive: d.Alive, threshold: d.Threshold, cum: d.Cum, birth: d.Birth}
	}
	in.scripted = append([]ScriptedEvent(nil), c.Scripted...)
	return in, nil
}

// Package faults implements seeded, deterministic disk-failure injection
// for the array simulator: it turns the AFRs that PRESS merely *predicts*
// into failure events the simulation actually *observes*, closing the
// predict→observe loop the paper's argument rests on.
//
// Failure times are sampled from a Weibull lifetime distribution by hazard
// inversion: each disk draws a unit-exponential threshold E at birth and
// fails the instant its accumulated hazard H(t) crosses E. The hazard is
// integrated analytically window by window, which lets the caller rescale it
// continuously — each window's Weibull hazard is multiplied by the disk's
// current PRESS AFR relative to a reference AFR, so a disk that PRESS says
// is being run twice as hard really does fail twice as fast. With a constant
// scale of 1 the scheme reduces exactly to Weibull sampling, which is what
// the MTTDL calibration test asserts.
//
// Everything is driven by one seeded math/rand source consumed in a
// deterministic order (thresholds at construction, repair draws in event
// order), so a fixed seed reproduces the identical failure/repair schedule.
package faults

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/reliability"
)

// ScriptedEvent is a deterministic failure for tests and demonstrations:
// the given disk fails at the given virtual time, bypassing the stochastic
// sampler entirely.
type ScriptedEvent struct {
	// Disk is the index of the disk to fail.
	Disk int
	// At is the failure time in virtual seconds.
	At float64
}

// Config parameterizes failure injection for one simulation run.
type Config struct {
	// Enabled turns injection on; a zero Config injects nothing.
	Enabled bool
	// Seed drives every random draw. Runs with equal seeds (and equal
	// hazard inputs) produce identical failure/repair schedules.
	Seed int64
	// Failure is the lifetime distribution. The zero value means
	// reliability.DefaultWeibull() (β = 1.1, first-year AFR ≈ 2.5%).
	Failure reliability.Weibull
	// Repair is the repair/replacement-time distribution in hours. The
	// zero value means DefaultRepair() (β = 1.5, mean ≈ 8 h).
	Repair reliability.Weibull
	// PRESSScaling, when true, multiplies the Weibull hazard by each
	// disk's live PRESS AFR divided by ReferenceAFRPercent, so operating
	// conditions (heat, load, transition churn) translate into observed
	// failures. When false the hazard is the pure Weibull.
	PRESSScaling bool
	// ReferenceAFRPercent anchors the PRESS scaling: a disk whose live
	// PRESS AFR equals it fails at exactly the base Weibull rate. Zero
	// means the Failure distribution's own first-year AFR.
	ReferenceAFRPercent float64
	// Acceleration compresses the reliability timescale so that failures
	// (MTBF measured in decades) become observable within a trace
	// (measured in hours): the hazard is multiplied by it and repair
	// durations are divided by it. 1 (the default) is real time.
	Acceleration float64
	// CheckIntervalSeconds is the virtual-time step at which hazard is
	// re-integrated (and PRESS scaling re-read). Zero means 60 s.
	CheckIntervalSeconds float64
	// MaxFailures caps the number of injected failures; 0 is unlimited.
	MaxFailures int
	// FixedRepairHours, when positive, replaces the Repair distribution
	// with a constant — for tests that need exact repair timing.
	FixedRepairHours float64
	// Scripted, when non-empty, replaces stochastic sampling entirely:
	// the listed failures happen at the listed times and no others.
	Scripted []ScriptedEvent

	// The second-generation failure physics below are all off by default;
	// every field is omitted from JSON when zero so configurations that
	// predate them digest identically.

	// LSERatePerHour is the Poisson rate of latent sector errors per
	// disk-hour at the reference operating point. Field studies put the
	// dominant data-loss mode in redundant arrays at unscrubbed sector
	// errors discovered during rebuild, not overlapping whole-disk
	// failures; the exemplar parameterization is 1.08e-4/h. Zero disables
	// LSE modeling entirely.
	LSERatePerHour float64 `json:"LSERatePerHour,omitempty"`
	// Scrub is the Weibull distribution of scrub-pass intervals in hours.
	// Nil means DefaultScrub() (β = 3, η = 168 h — a weekly pass with low
	// dispersion) when LSE modeling is on. Scrub passes are real disk I/O
	// scheduled by the array, so a spun-down or congested disk scrubs
	// late and its latent errors live longer.
	Scrub *reliability.Weibull `json:"Scrub,omitempty"`
	// NoScrub disables scrubbing while keeping LSE accumulation — the
	// worst case for a redundancy group: every latent error survives
	// until a rebuild trips over it.
	NoScrub bool `json:"NoScrub,omitempty"`
	// ScrubIOMB is the data volume one scrub pass reads; the pass runs as
	// a background op competing with foreground traffic. Zero means 256.
	ScrubIOMB float64 `json:"ScrubIOMB,omitempty"`
	// RebuildTime, when non-nil, draws each post-repair rebuild's total
	// duration in hours from this Weibull instead of pacing the rebuild
	// at the array's fixed MB/s rate. The exemplar uses β = 1, η = 12 h.
	RebuildTime *reliability.Weibull `json:"RebuildTime,omitempty"`
	// HazardMultiplier is a constant scaling of the whole-disk and LSE
	// hazard — the vintage-batch knob for correlated fleet faults: arrays
	// built from a bad drive batch carry a multiplier above 1. It composes
	// multiplicatively with live PRESS scaling. Zero means 1 (and is
	// omitted from JSON, so configurations that predate it digest
	// identically).
	HazardMultiplier float64 `json:"HazardMultiplier,omitempty"`
}

// Default returns an enabled configuration with the package defaults:
// seed 1, PRESS scaling on, real-time hazard.
func Default() Config {
	return Config{Enabled: true, Seed: 1, PRESSScaling: true}
}

// DefaultRepair returns the default repair-time distribution: Weibull with
// β = 1.5 (repairs cluster around the mean rather than being memoryless)
// and mean ≈ 8 hours — a same-business-day hot-swap plus rebuild start.
func DefaultRepair() reliability.Weibull {
	return reliability.Weibull{Shape: 1.5, ScaleHours: 8.862}
}

// DefaultLSERatePerHour is the exemplar latent-sector-error rate: roughly
// one LSE per disk-year, consistent with field measurements of nearline
// drives.
const DefaultLSERatePerHour = 1.08e-4

// DefaultScrub returns the default scrub-interval distribution: Weibull with
// β = 3 (intervals cluster tightly around the target) and η = 168 h — a
// weekly scrub pass with operational jitter.
func DefaultScrub() reliability.Weibull {
	return reliability.Weibull{Shape: 3, ScaleHours: 168}
}

// DefaultScrubIOMB is the data volume one scrub pass reads when the
// configuration leaves ScrubIOMB zero.
const DefaultScrubIOMB = 256.0

// LSEActive reports whether latent-sector-error accumulation is modeled.
func (c Config) LSEActive() bool { return c.Enabled && c.LSERatePerHour > 0 }

// ScrubActive reports whether scrub passes are scheduled: LSE modeling on
// and scrubbing not explicitly disabled.
func (c Config) ScrubActive() bool { return c.LSEActive() && !c.NoScrub }

// ScrubDist returns the scrub-interval distribution, defaulted.
func (c Config) ScrubDist() reliability.Weibull {
	if c.Scrub != nil {
		return *c.Scrub
	}
	return DefaultScrub()
}

// ScrubPassMB returns the scrub-pass I/O volume, defaulted.
func (c Config) ScrubPassMB() float64 {
	if c.ScrubIOMB > 0 {
		return c.ScrubIOMB
	}
	return DefaultScrubIOMB
}

// rateBoost converts a per-hour event rate on the reliability timescale to
// the accelerated timescale: acceleration multiplies rates. All stochastic
// processes in this package (failure hazard, LSE arrivals) go through this
// one helper so they cannot drift apart.
func (c Config) rateBoost(perHour float64) float64 {
	return perHour * c.Acceleration
}

// hoursToVirtualSeconds converts a duration in reliability-timescale hours
// to virtual seconds: acceleration divides durations. The dual of rateBoost —
// rateBoost(r)·hoursToVirtualSeconds(d) == r·d·3600 for any acceleration —
// used by every duration draw (repair, scrub interval, rebuild time).
func (c Config) hoursToVirtualSeconds(hours float64) float64 {
	return hours * 3600 / c.Acceleration
}

// Normalized returns a copy with every zero field replaced by its default.
func (c Config) Normalized() Config {
	if c.Failure == (reliability.Weibull{}) {
		c.Failure = reliability.DefaultWeibull()
	}
	if c.Repair == (reliability.Weibull{}) {
		c.Repair = DefaultRepair()
	}
	if c.ReferenceAFRPercent == 0 {
		if afr, err := c.Failure.AFRPercent(0); err == nil && afr > 0 {
			c.ReferenceAFRPercent = afr
		} else {
			c.ReferenceAFRPercent = 1
		}
	}
	if c.Acceleration == 0 {
		c.Acceleration = 1
	}
	if c.CheckIntervalSeconds == 0 {
		c.CheckIntervalSeconds = 60
	}
	if c.HazardMultiplier == 0 {
		c.HazardMultiplier = 1
	}
	return c
}

// Validate reports the first unusable parameter of a normalized or
// hand-built configuration.
func (c Config) Validate() error {
	c = c.Normalized()
	if err := c.Failure.Validate(); err != nil {
		return fmt.Errorf("faults: failure distribution: %w", err)
	}
	if err := c.Repair.Validate(); err != nil {
		return fmt.Errorf("faults: repair distribution: %w", err)
	}
	switch {
	case c.Acceleration < 0 || math.IsNaN(c.Acceleration):
		return fmt.Errorf("faults: acceleration %v must be positive", c.Acceleration)
	case c.CheckIntervalSeconds <= 0 || math.IsNaN(c.CheckIntervalSeconds):
		return fmt.Errorf("faults: check interval %v must be positive", c.CheckIntervalSeconds)
	case c.ReferenceAFRPercent <= 0 || math.IsNaN(c.ReferenceAFRPercent):
		return fmt.Errorf("faults: reference AFR %v must be positive", c.ReferenceAFRPercent)
	case c.MaxFailures < 0:
		return fmt.Errorf("faults: negative failure cap %d", c.MaxFailures)
	case c.FixedRepairHours < 0 || math.IsNaN(c.FixedRepairHours):
		return fmt.Errorf("faults: negative fixed repair time %v", c.FixedRepairHours)
	case c.LSERatePerHour < 0 || math.IsNaN(c.LSERatePerHour):
		return fmt.Errorf("faults: negative LSE rate %v per hour", c.LSERatePerHour)
	case c.HazardMultiplier < 0 || math.IsNaN(c.HazardMultiplier):
		return fmt.Errorf("faults: negative hazard multiplier %v", c.HazardMultiplier)
	case c.ScrubIOMB < 0 || math.IsNaN(c.ScrubIOMB):
		return fmt.Errorf("faults: negative scrub I/O volume %v MB", c.ScrubIOMB)
	}
	if c.Scrub != nil {
		if err := c.Scrub.Validate(); err != nil {
			return fmt.Errorf("faults: scrub distribution: %w", err)
		}
	}
	if c.RebuildTime != nil {
		if err := c.RebuildTime.Validate(); err != nil {
			return fmt.Errorf("faults: rebuild-time distribution: %w", err)
		}
	}
	for i, s := range c.Scripted {
		if s.At < 0 || math.IsNaN(s.At) {
			return fmt.Errorf("faults: scripted event %d at invalid time %v", i, s.At)
		}
		if s.Disk < 0 {
			return fmt.Errorf("faults: scripted event %d on negative disk %d", i, s.Disk)
		}
	}
	return nil
}

// Failure is one injected failure event.
type Failure struct {
	// Disk is the failed disk's index.
	Disk int
	// Time is the failure time in virtual seconds. For sampled failures
	// it is the exact hazard-crossing instant (interpolated inside the
	// integration window, so it may precede the Advance call's `to`).
	Time float64
}

type diskHazard struct {
	alive     bool
	threshold float64 // Exp(1) draw; failure when cum crosses it
	cum       float64 // accumulated hazard
	birth     float64 // virtual seconds at which this drive's age is zero

	// Latent-sector-error state, populated only when LSE modeling is on.
	// LSE arrivals use the same hazard-inversion scheme as failures: a
	// unit-exponential threshold, crossed by accumulated (scaled) Poisson
	// intensity; the process is homogeneous in age, so the crossing is a
	// linear solve rather than a Weibull inversion.
	lseThreshold float64
	lseCum       float64
	lsePending   int // latent errors accumulated and not yet scrubbed
}

// Injector samples failures for a fixed-size array. It is not safe for
// concurrent use; the simulator drives it from the single-threaded event
// loop.
type Injector struct {
	cfg      Config
	rng      *rand.Rand
	now      float64
	disks    []diskHazard
	failures int
	lseNow   float64         // virtual time LSE intensity is integrated up to
	lses     int             // total LSE arrivals so far
	scripted []ScriptedEvent // pending, sorted by time

	// drawLog records every post-construction RNG draw ('e' for the
	// exponential threshold in MarkRepaired, 'l' for the exponential LSE
	// threshold redraw, 'f'/'s'/'b' for the uniform repair, scrub-interval
	// and rebuild-duration draws). math/rand sources cannot be serialized,
	// so a checkpoint restores the stream by replaying this log against a
	// freshly seeded source — the log length is bounded by the (small)
	// failure/LSE/scrub event count, not the simulation length.
	drawLog []byte
}

// NewInjector builds an injector for `disks` drives, all born at time 0.
func NewInjector(cfg Config, disks int) (*Injector, error) {
	cfg = cfg.Normalized()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if disks < 1 {
		return nil, errors.New("faults: need at least one disk")
	}
	for i, s := range cfg.Scripted {
		if s.Disk >= disks {
			return nil, fmt.Errorf("faults: scripted event %d on disk %d of %d", i, s.Disk, disks)
		}
	}
	in := &Injector{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		disks: make([]diskHazard, disks),
	}
	for i := range in.disks {
		in.disks[i] = diskHazard{alive: true, threshold: in.rng.ExpFloat64()}
	}
	// LSE thresholds are drawn after all failure thresholds, and only when
	// LSE modeling is on, so an LSE-off run consumes the identical RNG
	// stream it always has.
	if cfg.LSEActive() {
		for i := range in.disks {
			in.disks[i].lseThreshold = in.rng.ExpFloat64()
		}
	}
	in.scripted = append(in.scripted, cfg.Scripted...)
	sort.SliceStable(in.scripted, func(i, j int) bool { return in.scripted[i].At < in.scripted[j].At })
	return in, nil
}

// Now returns the virtual time the injector has integrated hazard up to.
func (in *Injector) Now() float64 { return in.now }

// FailureCount returns the number of failures produced so far.
func (in *Injector) FailureCount() int { return in.failures }

// Alive reports whether disk d is currently operational.
func (in *Injector) Alive(d int) bool { return in.disks[d].alive }

// cumHazardTerm returns (age/η)^β for an age in hours, the Weibull
// cumulative hazard up to that age.
func (in *Injector) cumHazardTerm(ageHours float64) float64 {
	if ageHours <= 0 {
		return 0
	}
	w := in.cfg.Failure
	return math.Pow(ageHours/w.ScaleHours, w.Shape)
}

// Advance integrates each live disk's hazard from the injector's current
// time to `to` (virtual seconds) and returns the failures that occurred in
// that window, time-ordered. scale supplies the per-disk hazard multiplier
// for the window (the live PRESS AFR over the reference AFR); nil means 1
// everywhere. Non-positive scales freeze a disk's hazard for the window.
func (in *Injector) Advance(to float64, scale func(disk int) float64) []Failure {
	if to <= in.now {
		return nil
	}
	var out []Failure
	if len(in.cfg.Scripted) > 0 {
		for len(in.scripted) > 0 && in.scripted[0].At <= to {
			ev := in.scripted[0]
			in.scripted = in.scripted[1:]
			if !in.disks[ev.Disk].alive || in.capped() {
				continue
			}
			in.disks[ev.Disk].alive = false
			in.failures++
			out = append(out, Failure{Disk: ev.Disk, Time: ev.At})
		}
		in.now = to
		return out
	}
	w := in.cfg.Failure
	for i := range in.disks {
		d := &in.disks[i]
		if !d.alive || in.capped() {
			continue
		}
		s := 1.0
		if scale != nil {
			s = scale(i)
		}
		if s <= 0 || math.IsNaN(s) {
			continue
		}
		eff := in.cfg.rateBoost(s * in.cfg.HazardMultiplier)
		a := in.cumHazardTerm((in.now - d.birth) / 3600)
		b := in.cumHazardTerm((to - d.birth) / 3600)
		dh := eff * (b - a)
		if d.cum+dh < d.threshold {
			d.cum += dh
			continue
		}
		// Crossing: solve eff·((x/η)^β − a) = threshold − cum for the
		// failure age x in hours, exact because scale is constant over
		// the window.
		x := w.ScaleHours * math.Pow((d.threshold-d.cum)/eff+a, 1/w.Shape)
		t := d.birth + x*3600
		if t < in.now {
			t = in.now
		}
		if t > to {
			t = to
		}
		d.alive = false
		in.failures++
		out = append(out, Failure{Disk: i, Time: t})
	}
	in.now = to
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

func (in *Injector) capped() bool {
	return in.cfg.MaxFailures > 0 && in.failures >= in.cfg.MaxFailures
}

// LSEvent is one latent-sector-error arrival.
type LSEvent struct {
	// Disk is the index of the disk that accumulated the error.
	Disk int
	// Time is the arrival time in virtual seconds.
	Time float64
}

// AdvanceLSE integrates each live disk's latent-sector-error intensity from
// the injector's LSE clock to `to` (virtual seconds) and returns the
// arrivals, time-ordered. scale has the same meaning as in Advance: the
// per-disk operating-condition multiplier for the window (nil means 1).
// Multiple arrivals per disk per window are produced — the threshold is
// redrawn after each crossing. Failed disks accumulate nothing: their
// sectors are already lost wholesale.
func (in *Injector) AdvanceLSE(to float64, scale func(disk int) float64) []LSEvent {
	if !in.cfg.LSEActive() || to <= in.lseNow {
		if to > in.lseNow {
			in.lseNow = to
		}
		return nil
	}
	var out []LSEvent
	for i := range in.disks {
		d := &in.disks[i]
		if !d.alive {
			continue
		}
		s := 1.0
		if scale != nil {
			s = scale(i)
		}
		if s <= 0 || math.IsNaN(s) {
			continue
		}
		// Poisson intensity per virtual second under acceleration.
		rate := in.cfg.rateBoost(in.cfg.LSERatePerHour*s*in.cfg.HazardMultiplier) / 3600
		t := in.lseNow
		for {
			cross := t + (d.lseThreshold-d.lseCum)/rate
			if cross > to {
				d.lseCum += rate * (to - t)
				break
			}
			d.lseCum = 0
			d.lseThreshold = in.rng.ExpFloat64()
			in.drawLog = append(in.drawLog, 'l')
			d.lsePending++
			in.lses++
			out = append(out, LSEvent{Disk: i, Time: cross})
			t = cross
		}
	}
	in.lseNow = to
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// PendingLSE returns the count of unscrubbed latent errors on disk d.
func (in *Injector) PendingLSE(d int) int { return in.disks[d].lsePending }

// PendingLSETotal returns the unscrubbed latent errors across the array.
func (in *Injector) PendingLSETotal() int {
	total := 0
	for i := range in.disks {
		total += in.disks[i].lsePending
	}
	return total
}

// LSECount returns the total number of LSE arrivals produced so far.
func (in *Injector) LSECount() int { return in.lses }

// MarkScrubbed records a completed scrub pass on disk d: every pending
// latent error is detected and rewritten from redundancy. Returns the number
// cleared.
func (in *Injector) MarkScrubbed(d int) int {
	n := in.disks[d].lsePending
	in.disks[d].lsePending = 0
	return n
}

// MarkRepaired returns disk d to service at virtual time `at` as a fresh
// replacement drive: age resets and a new failure threshold is drawn. A
// replacement drive also starts with a clean media surface, so any latent
// errors and accumulated LSE intensity are discarded and a fresh LSE
// threshold is drawn.
func (in *Injector) MarkRepaired(d int, at float64) {
	h := &in.disks[d]
	h.alive = true
	h.birth = at
	h.cum = 0
	h.threshold = in.rng.ExpFloat64()
	in.drawLog = append(in.drawLog, 'e')
	if in.cfg.LSEActive() {
		h.lseCum = 0
		h.lsePending = 0
		h.lseThreshold = in.rng.ExpFloat64()
		in.drawLog = append(in.drawLog, 'l')
	}
}

// sampleWeibullHours draws from w by inverse CDF — T = η·(−ln(1−u))^(1/β) —
// logging the uniform draw under the given kind byte for checkpoint replay.
func (in *Injector) sampleWeibullHours(w reliability.Weibull, kind byte) float64 {
	u := in.rng.Float64()
	in.drawLog = append(in.drawLog, kind)
	return w.ScaleHours * math.Pow(-math.Log(1-u), 1/w.Shape)
}

// SampleRepairSeconds draws a repair/replacement duration in virtual
// seconds, already divided by the acceleration factor (a compressed
// timescale compresses repairs too).
func (in *Injector) SampleRepairSeconds() float64 {
	hours := in.cfg.FixedRepairHours
	if hours <= 0 {
		hours = in.sampleWeibullHours(in.cfg.Repair, 'f')
	}
	return in.cfg.hoursToVirtualSeconds(hours)
}

// SampleScrubIntervalSeconds draws the time until a disk's next scrub pass,
// in virtual seconds on the accelerated timescale.
func (in *Injector) SampleScrubIntervalSeconds() float64 {
	return in.cfg.hoursToVirtualSeconds(in.sampleWeibullHours(in.cfg.ScrubDist(), 's'))
}

// SampleRebuildSeconds draws a post-repair rebuild duration in virtual
// seconds on the accelerated timescale. Valid only when Config.RebuildTime
// is set.
func (in *Injector) SampleRebuildSeconds() float64 {
	return in.cfg.hoursToVirtualSeconds(in.sampleWeibullHours(*in.cfg.RebuildTime, 'b'))
}

// DiskCheckpoint is the serializable hazard state of one disk.
//
//simlint:checkpoint-for diskHazard
type DiskCheckpoint struct {
	Alive     bool    `json:"alive"`
	Threshold float64 `json:"threshold"`
	Cum       float64 `json:"cum"`
	Birth     float64 `json:"birth"`
	// LSE fields are zero (and omitted) when LSE modeling is off, keeping
	// pre-LSE checkpoints byte-identical.
	LSEThreshold float64 `json:"lse_threshold,omitempty"`
	LSECum       float64 `json:"lse_cum,omitempty"`
	LSEPending   int     `json:"lse_pending,omitempty"`
}

// Checkpoint is the complete serializable state of an Injector. The RNG
// stream is captured as the replay log of post-construction draws: restoring
// re-seeds the source, replays the constructor's threshold draws (implied by
// the disk count) and then the log, leaving the stream positioned exactly
// where the original was. Without this, repair times and replacement-drive
// thresholds after a resume would diverge from the uninterrupted run.
//
//simlint:checkpoint-for Injector ignore=cfg,rng
type Checkpoint struct {
	Now      float64          `json:"now"`
	Failures int              `json:"failures"`
	LSENow   float64          `json:"lse_now,omitempty"`
	LSEs     int              `json:"lses,omitempty"`
	Disks    []DiskCheckpoint `json:"disks"`
	Scripted []ScriptedEvent  `json:"scripted,omitempty"`
	DrawLog  string           `json:"draw_log,omitempty"`
}

// Checkpoint captures the injector's state without mutating it.
func (in *Injector) Checkpoint() Checkpoint {
	c := Checkpoint{
		Now:      in.now,
		Failures: in.failures,
		LSENow:   in.lseNow,
		LSEs:     in.lses,
		Disks:    make([]DiskCheckpoint, len(in.disks)),
		Scripted: append([]ScriptedEvent(nil), in.scripted...),
		DrawLog:  string(in.drawLog),
	}
	for i, d := range in.disks {
		c.Disks[i] = DiskCheckpoint{
			Alive: d.alive, Threshold: d.threshold, Cum: d.cum, Birth: d.birth,
			LSEThreshold: d.lseThreshold, LSECum: d.lseCum, LSEPending: d.lsePending,
		}
	}
	return c
}

// RestoreInjector rebuilds an injector from a checkpoint under the same
// configuration it was built with. The RNG is re-seeded and advanced by
// replaying the draw log; all hazard state is then overwritten from the
// checkpoint.
func RestoreInjector(cfg Config, c Checkpoint) (*Injector, error) {
	in, err := NewInjector(cfg, len(c.Disks))
	if err != nil {
		return nil, err
	}
	for _, kind := range []byte(c.DrawLog) {
		switch kind {
		case 'e', 'l':
			in.rng.ExpFloat64()
		case 'f', 's', 'b':
			in.rng.Float64()
		default:
			return nil, fmt.Errorf("faults: unknown draw log entry %q", kind)
		}
	}
	in.drawLog = []byte(c.DrawLog)
	in.now = c.Now
	in.failures = c.Failures
	in.lseNow = c.LSENow
	in.lses = c.LSEs
	for i, d := range c.Disks {
		in.disks[i] = diskHazard{
			alive: d.Alive, threshold: d.Threshold, cum: d.Cum, birth: d.Birth,
			lseThreshold: d.LSEThreshold, lseCum: d.LSECum, lsePending: d.LSEPending,
		}
	}
	in.scripted = append([]ScriptedEvent(nil), c.Scripted...)
	return in, nil
}

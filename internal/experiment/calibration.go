package experiment

import (
	"fmt"
	"io"
)

// IntensityPoint is one cell of the calibration scan: a policy's outcome at
// one arrival-intensity multiplier.
type IntensityPoint struct {
	Intensity float64
	Policy    PolicyKind
	AFR       float64
	EnergyJ   float64
	Response  float64
	WorstUtil float64
}

// IntensityScan reproduces the calibration behind the Light/Heavy intensity
// constants: it sweeps arrival-intensity multipliers at a fixed array size
// and reports, per policy, the three headline metrics plus the busiest
// disk's utilization (which must sit inside the PRESS utilization band for
// the model's utilization axis to mean anything).
func IntensityScan(cfg AblationConfig, intensities []float64, kinds []PolicyKind) ([]IntensityPoint, error) {
	cfg.setDefaults()
	if len(intensities) == 0 {
		intensities = []float64{1, 2, 4, 6, 8}
	}
	if len(kinds) == 0 {
		kinds = []PolicyKind{KindREAD, KindMAID, KindPDC}
	}
	var out []IntensityPoint
	for _, intensity := range intensities {
		c := cfg
		c.Intensity = intensity
		sweep := SweepConfig{
			DiskCounts:     []int{c.Disks},
			Policies:       kinds,
			Workload:       c.Workload,
			Scale:          c.Scale,
			Intensity:      intensity,
			EpochsPerTrace: c.EpochsPerTrace,
		}
		res, err := RunSweep(sweep)
		if err != nil {
			return nil, fmt.Errorf("experiment: intensity %gx: %w", intensity, err)
		}
		for _, cell := range res.Cells {
			var worst float64
			for _, d := range cell.Result.PerDisk {
				if d.Utilization > worst {
					worst = d.Utilization
				}
			}
			out = append(out, IntensityPoint{
				Intensity: intensity,
				Policy:    cell.Policy,
				AFR:       cell.Result.ArrayAFR,
				EnergyJ:   cell.Result.EnergyJ,
				Response:  cell.Result.MeanResponse,
				WorstUtil: worst,
			})
		}
	}
	return out, nil
}

// RenderIntensityScan writes the calibration scan as an aligned table.
func RenderIntensityScan(w io.Writer, pts []IntensityPoint, title string) {
	fmt.Fprintln(w, title)
	rows := [][]string{{"intensity", "policy", "AFR%", "energy", "mean resp", "worst util"}}
	for _, p := range pts {
		rows = append(rows, []string{
			fmt.Sprintf("%gx", p.Intensity),
			string(p.Policy),
			fmt.Sprintf("%.3f", p.AFR),
			formatMetric(MetricEnergy, p.EnergyJ),
			formatMetric(MetricResponse, p.Response),
			fmt.Sprintf("%.1f%%", p.WorstUtil*100),
		})
	}
	writeAligned(w, rows)
}

package experiment

// The fleet sweep scales the paper's question from one array to a cluster:
// N arrays on one shared-clock DES, a routing tier with deadlines, retries,
// hedging, and failover in front of them, and correlated faults (rack power
// shocks, bad vintages) underneath. The axes are fleet size × routing policy
// × member energy policy, so the sweep measures how much of a single array's
// energy/reliability trade-off survives — or is masked by — fleet-level
// resilience machinery.

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/array"
	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/faults"
	"repro/internal/runstore"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// FleetSweepConfig parameterizes a fleet-size × routing × policy comparison.
type FleetSweepConfig struct {
	// ArrayCounts is the fleet-size axis.
	ArrayCounts []int
	// Routings is the routing-policy axis (empty means all of
	// cluster.RoutingPolicies).
	Routings []cluster.RoutingPolicy
	// Policies is the member energy-policy axis.
	Policies []PolicyKind
	// Replicas is the replication factor for every cell; it must not exceed
	// the smallest fleet size. Zero means 2 (so failover has somewhere to go).
	Replicas int
	// Racks is the number of power domains per cell. Zero means 2.
	Racks int
	// EnclosuresPerRack subdivides racks for reporting. Zero means 1.
	EnclosuresPerRack int
	// Disks is the per-array size. Zero means 8.
	Disks int

	// Workload is the FLEET trace generator configuration; the router splits
	// the trace over the arrays by the replica placement.
	Workload workload.GenConfig
	// Scale and Intensity shrink/intensify the trace exactly as in
	// SweepConfig.
	Scale     float64
	Intensity float64
	// EpochSeconds is the member policy epoch; zero derives it from the
	// trace duration so EpochsPerTrace epochs fire regardless of Scale.
	EpochSeconds float64
	// EpochsPerTrace is used when EpochSeconds is zero; zero means 24.
	EpochsPerTrace int

	// Resilience knobs, applied to every cell (see cluster.Config).
	DeadlineSeconds      float64
	MaxAttempts          int
	RetryBaseSeconds     float64
	RetryCapSeconds      float64
	RetryJitterFrac      float64
	HedgeAfterP99Mult    float64
	HedgeFallbackSeconds float64
	MaxBacklog           int
	// Seed drives the router's retry jitter.
	Seed int64

	// Shocks injects rack power events into every cell.
	Shocks faults.ShockConfig
	// Faults, when non-nil and enabled, is the shared member fault
	// configuration. Each cell offsets the injector seed by its fleet size so
	// every (routing, policy) pair at a given size faces the identical draw.
	Faults *faults.Config
	// Spares is the per-member hot-spare pool (only meaningful with Faults).
	Spares int
	// StallLimit guards each cell's shared engine. Zero uses the cluster
	// default.
	StallLimit uint64

	// Execution knobs — excluded from the manifest digest.
	Parallelism int
	// CellAttempts bounds how many times a failed cell is retried (total
	// attempts). Zero or one means no retry.
	CellAttempts int
	// RetryBaseDelay is the first cell retry's backoff. Zero means 500ms.
	RetryBaseDelay time.Duration
	// Progress, Track, and TraceDecisions behave as in SweepConfig:
	// observation only, never part of the digest.
	Progress       *telemetry.Progress
	Track          *telemetry.SweepTracker
	TraceDecisions bool
}

// DefaultFleetSweepConfig returns an interactive-scale fleet comparison:
// fleets of 2 and 4 arrays under every routing policy, READ members,
// replication factor 2, deadlines with two retries, and hedging at 3× the
// running p99.
func DefaultFleetSweepConfig() FleetSweepConfig {
	wl := workload.DefaultGenConfig()
	wl.PhaseSeconds = 7200
	wl.PhaseRotate = 0.10
	wl.DiurnalProfile = workload.DefaultDiurnalProfile()
	return FleetSweepConfig{
		ArrayCounts:       []int{2, 4},
		Routings:          cluster.RoutingPolicies(),
		Policies:          []PolicyKind{KindREAD},
		Replicas:          2,
		Racks:             2,
		Disks:             8,
		Workload:          wl,
		Scale:             0.05,
		Intensity:         LightIntensity,
		DeadlineSeconds:   5,
		MaxAttempts:       3,
		RetryBaseSeconds:  0.25,
		RetryJitterFrac:   0.2,
		HedgeAfterP99Mult: 3,
	}
}

func (c *FleetSweepConfig) setDefaults() {
	if len(c.ArrayCounts) == 0 {
		c.ArrayCounts = []int{2, 4}
	}
	if len(c.Routings) == 0 {
		c.Routings = cluster.RoutingPolicies()
	}
	if len(c.Policies) == 0 {
		c.Policies = []PolicyKind{KindREAD}
	}
	if c.Replicas == 0 {
		c.Replicas = 2
	}
	if c.Racks == 0 {
		c.Racks = 2
	}
	if c.EnclosuresPerRack == 0 {
		c.EnclosuresPerRack = 1
	}
	if c.Disks == 0 {
		c.Disks = 8
	}
	if c.Workload.NumFiles == 0 {
		c.Workload = workload.DefaultGenConfig()
	}
	if c.Scale == 0 {
		c.Scale = 0.05
	}
	if c.Intensity == 0 {
		c.Intensity = 1
	}
	if c.EpochsPerTrace <= 0 {
		c.EpochsPerTrace = 24
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.NumCPU()
	}
	if c.CellAttempts <= 0 {
		c.CellAttempts = 1
	}
	if c.RetryBaseDelay <= 0 {
		c.RetryBaseDelay = 500 * time.Millisecond
	}
}

// Validate reports the first invalid sweep parameter. Per-cell cluster
// parameters are validated again by cluster.Run; the checks here catch the
// cross-cell constraints a single cell cannot see.
func (c *FleetSweepConfig) Validate() error {
	if c.Scale <= 0 || c.Scale > 1 {
		return fmt.Errorf("experiment: scale %v outside (0,1]", c.Scale)
	}
	if c.Intensity <= 0 {
		return fmt.Errorf("experiment: intensity %v must be positive", c.Intensity)
	}
	if c.Disks < 2 {
		return fmt.Errorf("experiment: disk count %d too small", c.Disks)
	}
	for _, n := range c.ArrayCounts {
		if n < 1 {
			return fmt.Errorf("experiment: fleet size %d too small", n)
		}
		if c.Replicas > n {
			return fmt.Errorf("experiment: replicas %d exceed fleet size %d", c.Replicas, n)
		}
	}
	for _, r := range c.Routings {
		ok := false
		for _, v := range cluster.RoutingPolicies() {
			if r == v {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("experiment: unknown routing policy %q", r)
		}
	}
	for _, k := range c.Policies {
		if _, err := NewPolicy(k); err != nil {
			return err
		}
	}
	if err := c.Shocks.Validate(); err != nil {
		return err
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
	}
	if c.Spares < 0 {
		return fmt.Errorf("experiment: negative spare count %d", c.Spares)
	}
	return c.Workload.Validate()
}

// FleetCell is one fleet sweep cell result. Result is nil exactly when
// Status is CellFailed.
type FleetCell struct {
	Arrays  int
	Routing cluster.RoutingPolicy
	Policy  PolicyKind
	Result  *cluster.Result
	// Status, Attempts, Err, Stall, and Perf follow the Cell contract.
	Status   CellStatus
	Attempts int
	Err      string
	Stall    *des.StallError
	Perf     *runstore.PerfSample
	// Decisions is the fleet decision log (retry/hedge/failover attribution)
	// when the sweep ran with TraceDecisions; nil otherwise.
	Decisions *telemetry.DecisionLog
}

// Key is the cell's ops-plane and manifest identity:
// "fleet.<policy>.<routing>.<arrays>" — the "fleet." prefix keeps the keys
// disjoint from single-array sweep cells in any shared namespace.
func (c FleetCell) Key() string { return fleetCellKey(c.Policy, c.Routing, c.Arrays) }

func fleetCellKey(p PolicyKind, r cluster.RoutingPolicy, arrays int) string {
	return fmt.Sprintf("fleet.%s.%s.%d", p, r, arrays)
}

// CellKeys enumerates the sweep's cell identities in execution-grid order
// (fleet-size-major, then routing, then policy), for building a
// telemetry.SweepTracker before the sweep starts.
func (c FleetSweepConfig) CellKeys() []string {
	c.setDefaults()
	keys := make([]string, 0, len(c.ArrayCounts)*len(c.Routings)*len(c.Policies))
	for _, n := range c.ArrayCounts {
		for _, r := range c.Routings {
			for _, p := range c.Policies {
				keys = append(keys, fleetCellKey(p, r, n))
			}
		}
	}
	return keys
}

// FleetSweepResult is the full fleet-size × routing × policy grid.
type FleetSweepResult struct {
	Config FleetSweepConfig
	Cells  []FleetCell
}

// FailedCells returns the cells whose every attempt failed.
func (s *FleetSweepResult) FailedCells() []FleetCell {
	var out []FleetCell
	for _, c := range s.Cells {
		if c.Status == CellFailed {
			out = append(out, c)
		}
	}
	return out
}

// fleetCellConfig assembles one cell's cluster configuration. Policies are
// stateful, so MakePolicy constructs a fresh member instance per call.
func (c *FleetSweepConfig) fleetCellConfig(trace *workload.Trace, epoch float64, arrays int, routing cluster.RoutingPolicy, kind PolicyKind, watch *des.Watch) cluster.Config {
	cc := cluster.Config{
		Arrays:   arrays,
		Replicas: c.Replicas,
		Topology: cluster.Topology{Racks: c.Racks, EnclosuresPerRack: c.EnclosuresPerRack},
		Trace:    trace,
		Proto: array.Config{
			Disks:        c.Disks,
			EpochSeconds: epoch,
			Spares:       c.Spares,
		},
		MakePolicy:           func(int) (array.Policy, error) { return NewPolicy(kind) },
		Routing:              routing,
		DeadlineSeconds:      c.DeadlineSeconds,
		MaxAttempts:          c.MaxAttempts,
		RetryBaseSeconds:     c.RetryBaseSeconds,
		RetryCapSeconds:      c.RetryCapSeconds,
		RetryJitterFrac:      c.RetryJitterFrac,
		HedgeAfterP99Mult:    c.HedgeAfterP99Mult,
		HedgeFallbackSeconds: c.HedgeFallbackSeconds,
		MaxBacklog:           c.MaxBacklog,
		Seed:                 c.Seed,
		Shocks:               c.Shocks,
		StallLimit:           c.StallLimit,
		Watch:                watch,
	}
	if c.Faults != nil {
		// Same seed offset across routings and policies at a given fleet
		// size: the comparison is down to the machinery, not sampling luck.
		fc := *c.Faults
		fc.Seed += int64(arrays)
		cc.Proto.Faults = &fc
	}
	if c.TraceDecisions {
		cc.Telemetry = &telemetry.Recorder{Decisions: telemetry.NewDecisionLog()}
	}
	return cc
}

// runFleetCellOnce executes one cell attempt with panic containment, exactly
// like runCellOnce for single-array sweeps.
func runFleetCellOnce(cfg *FleetSweepConfig, trace *workload.Trace, epoch float64, arrays int, routing cluster.RoutingPolicy, kind PolicyKind, watch *des.Watch) (res *cluster.Result, dlog *telemetry.DecisionLog, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, dlog = nil, nil
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	cc := cfg.fleetCellConfig(trace, epoch, arrays, routing, kind, watch)
	if cc.Telemetry != nil {
		dlog = cc.Telemetry.Decisions
	}
	res, err = cluster.Run(cc)
	if err != nil {
		return nil, nil, err
	}
	return res, dlog, nil
}

// RunFleetSweep generates the fleet workload once and replays it through
// every (fleet size, routing, policy) cell in parallel. Cell isolation,
// retry, and partial-result semantics follow RunSweep.
func RunFleetSweep(cfg FleetSweepConfig) (*FleetSweepResult, error) {
	cfg.setDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.Progress.Phase("fleet: generate workload")
	wl := cfg.Workload
	var err error
	if cfg.Intensity != 1 {
		wl, err = wl.WithIntensity(cfg.Intensity)
		if err != nil {
			return nil, err
		}
	}
	if cfg.Scale != 1 {
		wl, err = wl.Scaled(cfg.Scale)
		if err != nil {
			return nil, err
		}
		wl.PhaseSeconds *= cfg.Scale
	}
	trace, err := workload.Generate(wl)
	if err != nil {
		return nil, err
	}
	epoch := cfg.EpochSeconds
	if epoch == 0 {
		duration := float64(wl.NumRequests) * wl.MeanInterarrival
		epoch = duration / float64(cfg.EpochsPerTrace)
	}

	var jobs []fleetJob
	for _, n := range cfg.ArrayCounts {
		for _, r := range cfg.Routings {
			for _, p := range cfg.Policies {
				jobs = append(jobs, fleetJob{idx: len(jobs), arrays: n, routing: r, policy: p})
			}
		}
	}
	cells := make([]FleetCell, len(jobs))
	cfg.Progress.Phase(fmt.Sprintf("fleet: run %d cells", len(jobs)))
	var done atomic.Int64

	// Bounded worker pool, mirroring RunSweep: min(Parallelism, len(jobs))
	// workers drain a job channel, each cell owns its engine/RNG/telemetry
	// end-to-end inside runFleetSweepCell, and results land at the cell's
	// own grid index so the manifest is independent of worker count.
	workers := cfg.Parallelism
	if workers > len(jobs) {
		workers = len(jobs)
	}
	jobCh := make(chan fleetJob)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				cells[j.idx] = runFleetSweepCell(&cfg, trace, epoch, j, len(jobs), &done)
			}
		}()
	}
	for _, j := range jobs {
		jobCh <- j
	}
	close(jobCh)
	wg.Wait()
	res := &FleetSweepResult{Config: cfg, Cells: cells}
	if failed := res.FailedCells(); len(failed) > 0 {
		return res, fmt.Errorf("experiment: %d of %d fleet cells failed; first: %s",
			len(failed), len(cells), failed[0].Err)
	}
	return res, nil
}

// fleetJob identifies one cell of the fleet sweep grid.
type fleetJob struct {
	idx     int
	arrays  int
	routing cluster.RoutingPolicy
	policy  PolicyKind
}

// runFleetSweepCell runs one fleet cell to completion on the calling
// goroutine, retrying per the sweep's attempt policy; see runSweepCell for
// the ownership contract.
func runFleetSweepCell(cfg *FleetSweepConfig, trace *workload.Trace, epoch float64, j fleetJob, total int, done *atomic.Int64) FleetCell {
	cell := FleetCell{Arrays: j.arrays, Routing: j.routing, Policy: j.policy}
	key := cell.Key()
	shared := cfg.Parallelism > 1
	var lastErr error
	var lastWall float64
	for attempt := 1; attempt <= cfg.CellAttempts; attempt++ {
		cell.Attempts = attempt
		if attempt > 1 {
			time.Sleep(retryDelay(cfg.RetryBaseDelay, cfg.Seed, j.idx, attempt))
			cfg.Progress.Stepf("fleet: retrying arrays=%d routing=%s policy=%s (attempt %d/%d)",
				j.arrays, j.routing, j.policy, attempt, cfg.CellAttempts)
		}
		_, watch := cfg.Track.StartCell(key)
		pc := runstore.StartPerf()
		res, dlog, err := runFleetCellOnce(cfg, trace, epoch, j.arrays, j.routing, j.policy, watch)
		if err != nil {
			lastErr = err
			lastWall = pc.Sample(0, 0, shared).WallSeconds
			cell.Err = fmt.Sprintf("arrays=%d routing=%s policy=%s: %v", j.arrays, j.routing, j.policy, err)
			if attempt < cfg.CellAttempts {
				cfg.Track.CellRetrying(key, err)
			}
			continue
		}
		perf := pc.Sample(res.Duration, res.EventsFired, shared)
		cell.Perf = &perf
		cell.Result = res
		cell.Decisions = dlog
		cell.Err = ""
		cell.Stall = nil
		cell.Status = CellOK
		if attempt > 1 {
			cell.Status = CellRetried
		}
		cfg.Track.CellDone(key, perf.WallSeconds, res.EventsFired)
		break
	}
	if cell.Result == nil {
		cell.Status = CellFailed
		var serr *des.StallError
		if errors.As(lastErr, &serr) {
			cell.Stall = serr
		}
		cfg.Track.CellFailed(key, lastErr, lastWall)
	}
	if cell.Status == CellFailed {
		cfg.Progress.Stepf("fleet: cell %d/%d FAILED (arrays=%d routing=%s policy=%s, %d attempts)",
			done.Add(1), total, j.arrays, j.routing, j.policy, cell.Attempts)
	} else {
		cfg.Progress.Stepf("fleet: cell %d/%d done (arrays=%d routing=%s policy=%s, %d events)",
			done.Add(1), total, j.arrays, j.routing, j.policy, cell.Result.EventsFired)
	}
	return cell
}

// FleetSummary condenses one cluster result into the manifest summary block,
// with the fleet resilience counters under their FleetOn gate. It lives here
// rather than in runstore so the artifact layer never imports the simulator.
func FleetSummary(r *cluster.Result, faultsOn bool) runstore.Summary {
	s := runstore.Summary{
		EnergyJ:       r.EnergyJ,
		ArrayAFRPct:   r.WorstAFR,
		MeanResponseS: r.MeanResponse,
		P50ResponseS:  r.P50Response,
		P95ResponseS:  r.P95Response,
		P99ResponseS:  r.P99Response,
		P999ResponseS: r.P999Response,
		MaxResponseS:  r.MaxResponse,
		Requests:      float64(r.Requests),
		EventsFired:   float64(r.EventsFired),

		FleetOn:             true,
		FleetArrays:         float64(r.Arrays),
		FleetServed:         float64(r.Served),
		FleetRetries:        float64(r.Retries),
		FleetHedges:         float64(r.Hedges),
		FleetHedgeWins:      float64(r.HedgeWins),
		FleetFailovers:      float64(r.Failovers),
		FleetTimeouts:       float64(r.Timeouts),
		FleetDeferred:       float64(r.Deferred),
		FleetShed:           float64(r.Shed),
		FleetFailedRequests: float64(r.Failed),
		FleetShocks:         float64(r.ShocksInjected),
		FleetLostRequests:   float64(r.LostRequests),
	}
	disks := 0
	for _, a := range r.PerArray {
		for _, d := range a.PerDisk {
			s.TransitionsPerDay += d.TransitionsPerDay
			disks++
		}
	}
	if disks > 0 {
		s.TransitionsPerDay /= float64(disks)
	}
	if faultsOn {
		s.FaultsOn = true
		s.DiskFailures = float64(r.DiskFailures)
		for _, a := range r.PerArray {
			s.DataLossEvents += float64(a.DataLossEvents)
		}
	}
	return s
}

// WriteFleetCSV writes one machine-readable row per fleet cell.
func WriteFleetCSV(w io.Writer, s *FleetSweepResult) error {
	if _, err := fmt.Fprintln(w, "arrays,routing,policy,requests,served,mean_response_s,p99_response_s,retries,hedges,hedge_wins,failovers,timeouts,deferred,shed,failed,shocks,energy_j,worst_afr_pct,disk_failures,lost_requests,events_fired"); err != nil {
		return err
	}
	for _, c := range s.Cells {
		r := c.Result
		if r == nil {
			continue
		}
		if _, err := fmt.Fprintf(w, "%d,%s,%s,%d,%d,%.6g,%.6g,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.6g,%.6g,%d,%d,%d\n",
			c.Arrays, c.Routing, c.Policy, r.Requests, r.Served,
			r.MeanResponse, r.P99Response, r.Retries, r.Hedges, r.HedgeWins,
			r.Failovers, r.Timeouts, r.Deferred, r.Shed, r.Failed,
			r.ShocksInjected, r.EnergyJ, r.WorstAFR, r.DiskFailures,
			r.LostRequests, r.EventsFired); err != nil {
			return err
		}
	}
	return nil
}

// RenderFleetSummary writes the per-cell account of a fleet sweep: served
// fraction and tail latency next to what the resilience tier did to deliver
// them, and the energy and worst-member AFR they cost.
func RenderFleetSummary(w io.Writer, s *FleetSweepResult, title string) {
	fmt.Fprintf(w, "%s\n", title)
	rows := [][]string{{
		"arrays", "routing", "policy", "served", "p99", "retries", "hedges",
		"failover", "timeout", "shed", "failed", "shocks", "energy", "worstAFR",
	}}
	for _, c := range s.Cells {
		r := c.Result
		if r == nil {
			rows = append(rows, []string{
				fmt.Sprintf("%d", c.Arrays), string(c.Routing), string(c.Policy),
				"FAILED", "-", "-", "-", "-", "-", "-", "-", "-", "-", "-",
			})
			continue
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", c.Arrays),
			string(c.Routing),
			string(c.Policy),
			fmt.Sprintf("%d/%d", r.Served, r.Requests),
			fmt.Sprintf("%.4f s", r.P99Response),
			fmt.Sprintf("%d", r.Retries),
			fmt.Sprintf("%d", r.Hedges),
			fmt.Sprintf("%d", r.Failovers),
			fmt.Sprintf("%d", r.Timeouts),
			fmt.Sprintf("%d", r.Shed),
			fmt.Sprintf("%d", r.Failed),
			fmt.Sprintf("%d", r.ShocksInjected),
			formatMetric(MetricEnergy, r.EnergyJ),
			fmt.Sprintf("%.3f%%", r.WorstAFR),
		})
	}
	writeAligned(w, rows)
}

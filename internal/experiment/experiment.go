// Package experiment reproduces the paper's tables and figures: the three
// PRESS reliability functions (Figures 2b, 3b, 4b), the model surfaces
// (Figures 5a/5b), the §3.4 derivation constants, and the three-way policy
// comparison over array sizes 6-16 (Figures 7a/7b/7c).
//
// Sweep cells are independent simulations, so the harness fans them out over
// a bounded worker pool and reassembles results deterministically.
package experiment

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/array"
	"repro/internal/des"
	"repro/internal/faults"
	"repro/internal/policy"
	"repro/internal/reliability"
	"repro/internal/runstore"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// PolicyKind names a policy for sweep construction. Policies are stateful,
// so each sweep cell constructs a fresh instance.
type PolicyKind string

// The policy kinds available to sweeps.
const (
	KindREAD        PolicyKind = "read"
	KindMAID        PolicyKind = "maid"
	KindPDC         PolicyKind = "pdc"
	KindAlwaysOn    PolicyKind = "always-on"
	KindDRPM        PolicyKind = "drpm"
	KindREADReplica PolicyKind = "read-replica"
	KindStriped     PolicyKind = "striped"
)

// AllPolicyKinds lists every policy the sweeps can construct, in canonical
// order — the seven energy policies the reliability comparisons cover.
func AllPolicyKinds() []PolicyKind {
	return []PolicyKind{
		KindREAD, KindMAID, KindPDC, KindAlwaysOn, KindDRPM,
		KindREADReplica, KindStriped,
	}
}

// NewPolicy constructs a fresh policy instance of the given kind with its
// default configuration.
func NewPolicy(kind PolicyKind) (array.Policy, error) {
	switch kind {
	case KindREAD:
		return policy.NewREAD(policy.READConfig{}), nil
	case KindMAID:
		return policy.NewMAID(policy.MAIDConfig{}), nil
	case KindPDC:
		return policy.NewPDC(policy.PDCConfig{}), nil
	case KindAlwaysOn:
		return policy.NewAlwaysOn(), nil
	case KindDRPM:
		return policy.NewDRPM(policy.DRPMConfig{}), nil
	case KindREADReplica:
		return policy.NewREADReplica(policy.READReplicaConfig{}), nil
	case KindStriped:
		return policy.NewStripedAlwaysOn(policy.StripedConfig{}), nil
	default:
		return nil, fmt.Errorf("experiment: unknown policy kind %q", kind)
	}
}

// SweepConfig parameterizes a Figure-7-style policy comparison.
type SweepConfig struct {
	// DiskCounts is the array-size axis (paper: 6..16).
	DiskCounts []int
	// Policies compared at every array size.
	Policies []PolicyKind
	// Workload is the base generator configuration.
	Workload workload.GenConfig
	// Scale shrinks the trace (request count) by this factor in (0,1] to
	// trade fidelity for runtime. 1 replays the full paper-scale day.
	Scale float64
	// Intensity multiplies the arrival rate; the paper's heavy-workload
	// condition is the same trace at a higher intensity.
	Intensity float64
	// EpochSeconds is the policy epoch; zero derives it from the trace
	// duration so that EpochsPerTrace epochs fire regardless of Scale.
	EpochSeconds float64
	// EpochsPerTrace is used when EpochSeconds is zero; zero means 24.
	EpochsPerTrace int
	// Parallelism bounds concurrent simulations; zero means NumCPU.
	Parallelism int
	// Press overrides the reliability model used for AFRs (nil = default).
	// Used for robustness checks, e.g. swapping in the literal OCR reading
	// of Equation 3.
	Press *reliability.Model
	// Faults, when non-nil and enabled, injects disk failures into every
	// cell. Each cell's injector seed is Faults.Seed + the cell's disk
	// count, so every policy at a given array size faces the identical
	// failure-threshold draw — the observed-reliability comparison is then
	// down to how each policy's operating conditions scale the hazard and
	// how its failover behaves, not to sampling luck.
	Faults *faults.Config
	// Spares is the per-cell hot-spare pool (only meaningful with Faults).
	Spares int
	// RebuildMBps paces rebuild traffic; zero uses the array default.
	RebuildMBps float64
	// RAIDLevels, when non-empty, adds a RAID-organization axis to the
	// sweep: every (disks, policy) pair runs once per level, with data loss
	// declared by the redundancy-combination rules of array.RAIDConfig.
	// Requires Faults. Cells at the same disk count share their injector
	// seed across levels AND policies, so MTTDL differences are down to the
	// organization and the policy's operating conditions, not sampling luck.
	RAIDLevels []array.RAIDLevel
	// RAIDStripeWidth overrides the group width for every level; zero uses
	// each level's natural default (whole array for RAID-5/6, replica count
	// for replication).
	RAIDStripeWidth int
	// StallLimit is passed to every cell's array.Config.StallLimit: the
	// RunGuarded watchdog aborts a cell whose event loop fires that many
	// events without advancing virtual time. Zero uses the array default.
	StallLimit uint64
	// MaxAttempts bounds how many times a failed cell is retried before it
	// is recorded as failed (total attempts, not extra retries). Zero or
	// one means no retry. Retries are mostly useful against transient
	// environmental failures; a deterministic simulation bug fails the
	// same way every attempt and is recorded after MaxAttempts tries.
	MaxAttempts int
	// RetryBaseDelay is the first retry's backoff; each further retry
	// doubles it. Zero means 500ms.
	RetryBaseDelay time.Duration
	// Progress, when non-nil, receives structured phase and per-cell
	// completion lines while the sweep runs. It is rate-limited and
	// goroutine-safe, so a large sweep logs a steady trickle rather than a
	// burst per cell.
	Progress *telemetry.Progress
	// TraceDecisions attaches a decision log to every cell, filling
	// Cell.Decisions and Result.Attribution. Tracing is observational — it
	// never changes a cell's results — so like Progress it is an execution
	// knob, deliberately excluded from the sweep's manifest digest.
	TraceDecisions bool
	// Track, when non-nil, receives the sweep's live per-cell state for the
	// ops plane (pending/running/done/failed/retried, watchdog positions,
	// ETA). Build it with telemetry.NewSweepTracker(cfg.CellKeys(), ...).
	// Like Progress it is observation-only and excluded from the digest;
	// results are bit-identical with or without it.
	Track *telemetry.SweepTracker
}

// DefaultSweepConfig returns the paper's light-workload sweep at a reduced
// trace scale suitable for interactive runs. Popularity churn is enabled
// (12 phases per trace day) — the temporal drift of real web traces that
// exercises migration and re-disturbs sleeping disks.
func DefaultSweepConfig() SweepConfig {
	wl := workload.DefaultGenConfig()
	wl.PhaseSeconds = 7200 // 12 popularity phases per day
	wl.PhaseRotate = 0.10
	wl.DiurnalProfile = workload.DefaultDiurnalProfile()
	return SweepConfig{
		DiskCounts: []int{6, 8, 10, 12, 14, 16},
		Policies:   []PolicyKind{KindREAD, KindMAID, KindPDC},
		Workload:   wl,
		Scale:      0.05,
		Intensity:  LightIntensity,
	}
}

// The paper evaluates a "light" and a "heavy" workload condition on the
// WorldCup98 day. The intensity multipliers below map those conditions onto
// this reproduction's disk model: they are calibrated so that (a) the
// policies' workhorse disks operate at meaningful utilization, (b) the AFR
// differences between policies are dominated by the speed-transition
// frequency of each policy's coldest disks — the factor the paper identifies
// as most significant — and (c) the array remains stable at every size in
// the 6-16 sweep. See EXPERIMENTS.md for the calibration scan.
const (
	// LightIntensity multiplies the WorldCup98 arrival rate for the
	// light-workload condition.
	LightIntensity = 4
	// HeavyIntensity is the heavy-workload condition.
	HeavyIntensity = 6
)

func (c *SweepConfig) setDefaults() {
	if len(c.DiskCounts) == 0 {
		c.DiskCounts = []int{6, 8, 10, 12, 14, 16}
	}
	if len(c.Policies) == 0 {
		c.Policies = []PolicyKind{KindREAD, KindMAID, KindPDC}
	}
	if c.Workload.NumFiles == 0 {
		c.Workload = workload.DefaultGenConfig()
	}
	if c.Scale == 0 {
		c.Scale = 0.05
	}
	if c.Intensity == 0 {
		c.Intensity = 1
	}
	if c.EpochsPerTrace <= 0 {
		c.EpochsPerTrace = 24
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.NumCPU()
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 1
	}
	if c.RetryBaseDelay <= 0 {
		c.RetryBaseDelay = 500 * time.Millisecond
	}
}

// Validate reports the first invalid sweep parameter.
func (c *SweepConfig) Validate() error {
	if c.Scale <= 0 || c.Scale > 1 {
		return fmt.Errorf("experiment: scale %v outside (0,1]", c.Scale)
	}
	if c.Intensity <= 0 {
		return fmt.Errorf("experiment: intensity %v must be positive", c.Intensity)
	}
	for _, n := range c.DiskCounts {
		if n < 2 {
			return fmt.Errorf("experiment: disk count %d too small", n)
		}
	}
	for _, k := range c.Policies {
		if _, err := NewPolicy(k); err != nil {
			return err
		}
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
	}
	if c.Spares < 0 {
		return fmt.Errorf("experiment: negative spare count %d", c.Spares)
	}
	if c.RebuildMBps < 0 {
		return fmt.Errorf("experiment: negative rebuild rate %v", c.RebuildMBps)
	}
	if len(c.RAIDLevels) > 0 {
		if c.Faults == nil || !c.Faults.Enabled {
			return errors.New("experiment: RAID levels require fault injection")
		}
		for _, l := range c.RAIDLevels {
			rc := array.RAIDConfig{Level: l, StripeWidth: c.RAIDStripeWidth}
			for _, n := range c.DiskCounts {
				if err := rc.Validate(n); err != nil {
					return fmt.Errorf("experiment: RAID level %q at %d disks: %w", l, n, err)
				}
			}
		}
	}
	return c.Workload.Validate()
}

// CellStatus records how a sweep cell finished.
type CellStatus string

// The cell outcomes a sweep manifest records.
const (
	// CellOK: the cell succeeded on its first attempt.
	CellOK CellStatus = "ok"
	// CellRetried: the cell succeeded after at least one failed attempt.
	CellRetried CellStatus = "retried"
	// CellFailed: every attempt failed; Result is nil and Err explains.
	CellFailed CellStatus = "failed"
)

// Cell is one sweep cell result. Result is nil exactly when Status is
// CellFailed.
type Cell struct {
	Disks  int
	Policy PolicyKind
	// RAID is the cell's redundancy organization; empty when the sweep has
	// no RAID axis.
	RAID   array.RAIDLevel
	Result *array.Result
	// Status is CellOK, CellRetried, or CellFailed.
	Status CellStatus
	// Attempts is how many times the cell ran (1 when it succeeded
	// immediately).
	Attempts int
	// Err holds the final attempt's error when Status is CellFailed.
	Err string
	// Stall is the structured watchdog record when the final attempt died
	// to the event-loop stall detector; nil for any other failure (and for
	// successes). It carries the stalling event's label, virtual time, and
	// queue depth — the /healthz payload and the sweep manifest's failure
	// markers both read it.
	Stall *des.StallError
	// Perf is the cell's self-performance sample (wall-clock, events/s,
	// allocation and GC deltas of the successful attempt). It feeds the
	// manifest's perf section, never the diffed metric set.
	Perf *runstore.PerfSample
	// Decisions is the cell's decision log when the sweep ran with
	// TraceDecisions; nil otherwise.
	Decisions *telemetry.DecisionLog
}

// Key is the cell's ops-plane and manifest identity:
// "<policy>[.<raid>].<disks>" — the same segments the manifest's
// "cell.<...>.<metric>" Summary.Extra keys use.
func (c Cell) Key() string { return cellKey(c.Policy, c.RAID, c.Disks) }

func cellKey(p PolicyKind, raid array.RAIDLevel, disks int) string {
	if raid != "" {
		return fmt.Sprintf("%s.%s.%d", p, raid, disks)
	}
	return fmt.Sprintf("%s.%d", p, disks)
}

// CellKeys enumerates the sweep's cell identities in execution-grid order,
// for building a telemetry.SweepTracker before the sweep starts. The order
// matches RunSweep's job grid (disks-major, then RAID level, then policy).
func (c SweepConfig) CellKeys() []string {
	c.setDefaults()
	raids := c.RAIDLevels
	if len(raids) == 0 {
		raids = []array.RAIDLevel{""}
	}
	keys := make([]string, 0, len(c.DiskCounts)*len(raids)*len(c.Policies))
	for _, n := range c.DiskCounts {
		for _, r := range raids {
			for _, p := range c.Policies {
				keys = append(keys, cellKey(p, r, n))
			}
		}
	}
	return keys
}

// SweepResult is the full policy × array-size grid.
type SweepResult struct {
	Config SweepConfig
	Cells  []Cell // sorted by (Disks, Policy order in Config)
}

// FailedCells returns the cells whose every attempt failed.
func (s *SweepResult) FailedCells() []Cell {
	var out []Cell
	for _, c := range s.Cells {
		if c.Status == CellFailed {
			out = append(out, c)
		}
	}
	return out
}

// testCellHook, when non-nil, runs at the start of every cell attempt
// (inside the panic-recovery scope). Tests use it to make chosen cells
// panic and verify the sweep survives.
var testCellHook func(kind PolicyKind, disks int)

// runCellOnce executes a single sweep cell attempt. A panic anywhere in the
// cell — the policy, the simulator, the hook — is converted into an error
// with the stack attached, so one broken cell cannot take down the sweep's
// worker pool.
func runCellOnce(cfg *SweepConfig, trace *workload.Trace, epoch float64, disks int, kind PolicyKind, raid array.RAIDLevel, live *telemetry.Live, watch *des.Watch) (res *array.Result, dlog *telemetry.DecisionLog, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, dlog = nil, nil
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	if testCellHook != nil {
		testCellHook(kind, disks)
	}
	pol, err := NewPolicy(kind)
	if err != nil {
		return nil, nil, err
	}
	acfg := array.Config{
		Disks:        disks,
		Trace:        trace,
		Policy:       pol,
		EpochSeconds: epoch,
		Press:        cfg.Press,
		Spares:       cfg.Spares,
		RebuildMBps:  cfg.RebuildMBps,
		StallLimit:   cfg.StallLimit,
		Watch:        watch,
	}
	if cfg.TraceDecisions {
		// An in-memory recorder carrying only the decision log: the cell's
		// metrics artifacts are unchanged, and the caller drains the log.
		dlog = telemetry.NewDecisionLog()
		acfg.Telemetry = &telemetry.Recorder{Decisions: dlog}
	}
	if live != nil {
		// The ops plane wants this cell's live counters. Reuse the decision
		// recorder when tracing is also on; both are observation-only, so
		// results stay bit-identical either way.
		if acfg.Telemetry == nil {
			acfg.Telemetry = &telemetry.Recorder{}
		}
		acfg.Telemetry.Live = live
	}
	if cfg.Faults != nil {
		fc := *cfg.Faults
		fc.Seed += int64(disks)
		acfg.Faults = &fc
	}
	if raid != "" {
		acfg.RAID = array.RAIDConfig{Level: raid, StripeWidth: cfg.RAIDStripeWidth}
	}
	res, err = array.Run(acfg)
	if err != nil {
		return nil, nil, err
	}
	return res, dlog, nil
}

// RunSweep generates the workload once and replays it through every
// (policy, array size) cell in parallel.
//
// Cells are isolated: a cell that returns an error or panics is retried up
// to MaxAttempts times with exponential backoff, and if it still fails it is
// recorded as CellFailed while every other cell runs to completion. When any
// cell ultimately fails, RunSweep returns the complete SweepResult alongside
// a non-nil error summarizing the failures — callers that want the partial
// grid (e.g. to write a manifest with per-cell status) inspect the result;
// callers that treat any failure as fatal keep the old error contract.
func RunSweep(cfg SweepConfig) (*SweepResult, error) {
	cfg.setDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.Progress.Phase("sweep: generate workload")
	wl := cfg.Workload
	var err error
	if cfg.Intensity != 1 {
		wl, err = wl.WithIntensity(cfg.Intensity)
		if err != nil {
			return nil, err
		}
	}
	if cfg.Scale != 1 {
		wl, err = wl.Scaled(cfg.Scale)
		if err != nil {
			return nil, err
		}
		// Preserve the number of popularity phases across the shortened
		// trace so churn-driven behaviour is scale-invariant.
		wl.PhaseSeconds *= cfg.Scale
	}
	trace, err := workload.Generate(wl)
	if err != nil {
		return nil, err
	}
	epoch := cfg.EpochSeconds
	if epoch == 0 {
		duration := float64(wl.NumRequests) * wl.MeanInterarrival
		epoch = duration / float64(cfg.EpochsPerTrace)
	}

	// With no RAID axis the single empty level keeps the job grid — and
	// therefore cell ordering and manifest keys — identical to a pre-RAID
	// sweep.
	raids := cfg.RAIDLevels
	if len(raids) == 0 {
		raids = []array.RAIDLevel{""}
	}
	var jobs []sweepJob
	for _, n := range cfg.DiskCounts {
		for _, r := range raids {
			for _, p := range cfg.Policies {
				jobs = append(jobs, sweepJob{idx: len(jobs), disks: n, policy: p, raid: r})
			}
		}
	}
	cells := make([]Cell, len(jobs))
	cfg.Progress.Phase(fmt.Sprintf("sweep: run %d cells", len(jobs)))
	var done atomic.Int64

	// Bounded worker pool: exactly min(Parallelism, len(jobs)) goroutines
	// drain a job channel. Each worker owns one cell end-to-end (engine,
	// RNG, telemetry are constructed inside runSweepCell), results land at
	// the cell's own grid index, and the grid — and therefore the manifest
	// — is bit-identical to a -workers=1 run; only the interleaving of
	// progress lines varies.
	workers := cfg.Parallelism
	if workers > len(jobs) {
		workers = len(jobs)
	}
	jobCh := make(chan sweepJob)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				cells[j.idx] = runSweepCell(&cfg, trace, epoch, j, len(jobs), &done)
			}
		}()
	}
	for _, j := range jobs {
		jobCh <- j
	}
	close(jobCh)
	wg.Wait()
	res := &SweepResult{Config: cfg, Cells: cells}
	if failed := res.FailedCells(); len(failed) > 0 {
		return res, fmt.Errorf("experiment: %d of %d cells failed; first: %s",
			len(failed), len(cells), failed[0].Err)
	}
	return res, nil
}

// sweepJob identifies one cell of the sweep grid: its grid index and the
// (disks, policy, raid) coordinates.
type sweepJob struct {
	idx    int
	disks  int
	policy PolicyKind
	raid   array.RAIDLevel
}

// runSweepCell runs one sweep cell to completion on the calling goroutine,
// retrying per the sweep's attempt policy. The cell owns its engine, RNG,
// and telemetry end-to-end — runCellOnce constructs all three fresh per
// attempt — so concurrent cells share only the read-only config and trace,
// plus the mutex/seqlock-mediated progress and tracker handles.
func runSweepCell(cfg *SweepConfig, trace *workload.Trace, epoch float64, j sweepJob, total int, done *atomic.Int64) Cell {
	cell := Cell{Disks: j.disks, Policy: j.policy, RAID: j.raid}
	key := cell.Key()
	shared := cfg.Parallelism > 1
	var lastErr error
	var lastWall float64
	for attempt := 1; attempt <= cfg.MaxAttempts; attempt++ {
		cell.Attempts = attempt
		if attempt > 1 {
			time.Sleep(retryDelay(cfg.RetryBaseDelay, cfg.Workload.Seed, j.idx, attempt))
			cfg.Progress.Stepf("sweep: retrying disks=%d policy=%s%s (attempt %d/%d)",
				j.disks, j.policy, raidSuffix(j.raid), attempt, cfg.MaxAttempts)
		}
		// Fresh per-attempt ops handles (nil when no tracker): the
		// array publishes its live position through them, and the
		// /progress and /healthz endpoints read them concurrently.
		live, watch := cfg.Track.StartCell(key)
		pc := runstore.StartPerf()
		res, dlog, err := runCellOnce(cfg, trace, epoch, j.disks, j.policy, j.raid, live, watch)
		if err != nil {
			lastErr = err
			lastWall = pc.Sample(0, 0, shared).WallSeconds
			cell.Err = fmt.Sprintf("disks=%d policy=%s%s: %v", j.disks, j.policy, raidSuffix(j.raid), err)
			if attempt < cfg.MaxAttempts {
				cfg.Track.CellRetrying(key, err)
			}
			continue
		}
		perf := pc.Sample(res.Duration, res.EventsFired, shared)
		cell.Perf = &perf
		cell.Result = res
		cell.Decisions = dlog
		cell.Err = ""
		cell.Stall = nil
		cell.Status = CellOK
		if attempt > 1 {
			cell.Status = CellRetried
		}
		cfg.Track.CellDone(key, perf.WallSeconds, res.EventsFired)
		break
	}
	if cell.Result == nil {
		cell.Status = CellFailed
		var serr *des.StallError
		if errors.As(lastErr, &serr) {
			cell.Stall = serr
		}
		cfg.Track.CellFailed(key, lastErr, lastWall)
	}
	if cell.Status == CellFailed {
		cfg.Progress.Stepf("sweep: cell %d/%d FAILED (disks=%d policy=%s%s, %d attempts)",
			done.Add(1), total, j.disks, j.policy, raidSuffix(j.raid), cell.Attempts)
	} else {
		cfg.Progress.Stepf("sweep: cell %d/%d done (disks=%d policy=%s%s, %d events)",
			done.Add(1), total, j.disks, j.policy, raidSuffix(j.raid), cell.Result.EventsFired)
	}
	return cell
}

// retryDelay computes the backoff before a cell's attempt-th try (attempt ≥
// 2): exponential doubling from base, spread to [0.5×, 1.5×) by a pure hash
// of (seed, cell index, attempt). No RNG state exists, so the retry schedule
// is a function of the sweep configuration alone — identical on every run of
// the same sweep, including a run resumed after a crash.
func retryDelay(base time.Duration, seed int64, cell, attempt int) time.Duration {
	d := base << uint(attempt-2)
	return time.Duration(float64(d) * (0.5 + faults.Jitter01(seed, uint64(cell), uint64(attempt))))
}

// raidSuffix renders a RAID level for progress/error lines: empty when the
// sweep has no RAID axis, " raid=<level>" otherwise.
func raidSuffix(r array.RAIDLevel) string {
	if r == "" {
		return ""
	}
	return fmt.Sprintf(" raid=%s", r)
}

// Metric selects which scalar a figure plots.
type Metric string

// The metrics of Figures 7a, 7b, and 7c, plus the observed-reliability
// metrics a fault-injecting sweep adds on top.
const (
	MetricAFR      Metric = "afr"      // Figure 7a (percent)
	MetricEnergy   Metric = "energy"   // Figure 7b (joules)
	MetricResponse Metric = "response" // Figure 7c (seconds)

	// MetricFailures is the number of injected disk failures observed.
	MetricFailures Metric = "failures"
	// MetricDataLoss is the number of failures that found the spare pool
	// empty.
	MetricDataLoss Metric = "dataloss"
	// MetricLostRequests is the number of user requests lost to failures.
	MetricLostRequests Metric = "lost"
	// MetricDegraded is the number of requests served degraded (re-routed
	// or delayed by an outage or rebuild).
	MetricDegraded Metric = "degraded"

	// MetricLSEErrors is the number of latent sector errors that developed.
	MetricLSEErrors Metric = "lse"
	// MetricRAIDLoss is the number of RAID data-loss events (failure
	// combinations that exceeded the organization's tolerance).
	MetricRAIDLoss Metric = "raidloss"
	// MetricMTTDL is the estimated mean time to data loss in hours (0 when
	// no loss was observed — the estimator's exposure gives only a lower
	// bound there).
	MetricMTTDL Metric = "mttdl_est"
)

// Value extracts the metric from a result.
func (m Metric) Value(r *array.Result) (float64, error) {
	switch m {
	case MetricAFR:
		return r.ArrayAFR, nil
	case MetricEnergy:
		return r.EnergyJ, nil
	case MetricResponse:
		return r.MeanResponse, nil
	case MetricFailures:
		return float64(r.DiskFailures), nil
	case MetricDataLoss:
		return float64(r.DataLossEvents), nil
	case MetricLostRequests:
		return float64(r.LostRequests), nil
	case MetricDegraded:
		return float64(r.DegradedRequests), nil
	case MetricLSEErrors:
		return float64(r.LSEErrors), nil
	case MetricRAIDLoss:
		return float64(r.RAIDDataLossEvents), nil
	case MetricMTTDL:
		return r.MTTDLEstHours, nil
	default:
		return 0, fmt.Errorf("experiment: unknown metric %q", m)
	}
}

// Series returns, for each policy, the metric values ordered by disk count.
//
// Series keys by (policy, disks) only: on a sweep with a RAID axis the
// levels at the same (policy, disks) overwrite each other, so RAID sweeps
// should be read through RAIDCells/RenderRAIDLoss instead.
func (s *SweepResult) Series(m Metric) (map[PolicyKind][]float64, []int, error) {
	disks := append([]int(nil), s.Config.DiskCounts...)
	sort.Ints(disks)
	out := make(map[PolicyKind][]float64, len(s.Config.Policies))
	for _, p := range s.Config.Policies {
		out[p] = make([]float64, len(disks))
	}
	pos := make(map[int]int, len(disks))
	for i, n := range disks {
		pos[n] = i
	}
	for _, c := range s.Cells {
		if c.Result == nil {
			// Failed cell (partial sweep): leave the zero value rather
			// than dereferencing a missing result.
			continue
		}
		v, err := m.Value(c.Result)
		if err != nil {
			return nil, nil, err
		}
		out[c.Policy][pos[c.Disks]] = v
	}
	return out, disks, nil
}

// Improvement summarizes how much better (positive) the base policy is than
// another policy on a metric where smaller is better: mean and max of
// (other - base)/other over the disk axis, in percent.
type Improvement struct {
	Base, Other PolicyKind
	MeanPercent float64
	MaxPercent  float64
}

// ImprovementOver computes the paper's headline comparisons (e.g., READ vs
// MAID on AFR: "up to 39.7%", "average 24.9%").
func (s *SweepResult) ImprovementOver(m Metric, base, other PolicyKind) (Improvement, error) {
	series, _, err := s.Series(m)
	if err != nil {
		return Improvement{}, err
	}
	bs, ok := series[base]
	if !ok {
		return Improvement{}, fmt.Errorf("experiment: policy %q not in sweep", base)
	}
	os, ok := series[other]
	if !ok {
		return Improvement{}, fmt.Errorf("experiment: policy %q not in sweep", other)
	}
	if len(bs) == 0 {
		return Improvement{}, errors.New("experiment: empty series")
	}
	imp := Improvement{Base: base, Other: other}
	for i := range bs {
		if os[i] == 0 {
			continue
		}
		p := 100 * (os[i] - bs[i]) / os[i]
		imp.MeanPercent += p
		if p > imp.MaxPercent {
			imp.MaxPercent = p
		}
	}
	imp.MeanPercent /= float64(len(bs))
	return imp, nil
}

// FunctionPoint is one (x, AFR) sample of a reliability function.
type FunctionPoint struct {
	X   float64
	AFR float64
}

// Fig2bTemperatureFunction samples the temperature-reliability function over
// [20,50] °C (paper Figure 2b).
func Fig2bTemperatureFunction(model *reliability.Model, steps int) ([]FunctionPoint, error) {
	return sampleFunc(20, 50, steps, model.TempAFR)
}

// Fig3bUtilizationFunction samples the utilization-reliability function over
// [25%,100%] (paper Figure 3b).
func Fig3bUtilizationFunction(model *reliability.Model, steps int) ([]FunctionPoint, error) {
	return sampleFunc(0.25, 1.0, steps, model.UtilAFR)
}

// Fig4bFrequencyFunction samples the frequency-reliability adder over
// [0,1600] transitions/day (paper Figure 4b, Eq. 3).
func Fig4bFrequencyFunction(model *reliability.Model, steps int) ([]FunctionPoint, error) {
	return sampleFunc(0, 1600, steps, model.FreqAFR)
}

// Fig4aIDEMAAdder samples the un-halved IDEMA start/stop adder (Figure 4a,
// per-day units).
func Fig4aIDEMAAdder(model *reliability.Model, steps int) ([]FunctionPoint, error) {
	q := model.FreqFunction()
	return sampleFunc(0, 1600, steps, q.IDEMAAdderAt)
}

func sampleFunc(lo, hi float64, steps int, f func(float64) float64) ([]FunctionPoint, error) {
	if steps < 2 {
		return nil, errors.New("experiment: need at least 2 samples")
	}
	pts := make([]FunctionPoint, steps)
	for i := 0; i < steps; i++ {
		x := lo + (hi-lo)*float64(i)/float64(steps-1)
		pts[i] = FunctionPoint{X: x, AFR: f(x)}
	}
	return pts, nil
}

// Fig5Surfaces samples the PRESS surfaces at 40 °C and 50 °C (Figures
// 5a/5b).
func Fig5Surfaces(model *reliability.Model, utilSteps, freqSteps int) (at40, at50 []reliability.SurfacePoint, err error) {
	at40, err = model.Surface(40, utilSteps, freqSteps)
	if err != nil {
		return nil, nil, err
	}
	at50, err = model.Surface(50, utilSteps, freqSteps)
	if err != nil {
		return nil, nil, err
	}
	return at40, at50, nil
}

// DerivationConstants reruns the §3.4 Coffin-Manson chain.
func DerivationConstants() reliability.Derivation {
	return reliability.DefaultCoffinManson().Derive()
}

package experiment

import (
	"testing"
	"time"
)

// TestRetryDelayDeterministic pins the property the SIGKILL+resume drill
// depends on: the backoff schedule for a given (seed, cell, attempt) is a
// pure function, so a sweep killed mid-retry and restarted computes the
// exact same delays — no wall-clock or process state leaks in.
func TestRetryDelayDeterministic(t *testing.T) {
	base := 100 * time.Millisecond
	for cell := 0; cell < 4; cell++ {
		for attempt := 2; attempt <= 5; attempt++ {
			a := retryDelay(base, 42, cell, attempt)
			b := retryDelay(base, 42, cell, attempt)
			if a != b {
				t.Fatalf("retryDelay(seed=42, cell=%d, attempt=%d) not deterministic: %v vs %v",
					cell, attempt, a, b)
			}
		}
	}
}

// TestRetryDelayBounds checks the jittered delay stays inside
// [0.5, 1.5) × the doubled base: exponential growth with bounded,
// seeded jitter.
func TestRetryDelayBounds(t *testing.T) {
	base := 100 * time.Millisecond
	for seed := int64(1); seed <= 20; seed++ {
		for attempt := 2; attempt <= 6; attempt++ {
			d := retryDelay(base, seed, 3, attempt)
			scaled := base << uint(attempt-2)
			lo := time.Duration(float64(scaled) * 0.5)
			hi := time.Duration(float64(scaled) * 1.5)
			if d < lo || d > hi {
				t.Fatalf("retryDelay(seed=%d, attempt=%d) = %v outside [%v, %v]",
					seed, attempt, d, lo, hi)
			}
		}
	}
}

// TestRetryDelayVariesAcrossCellsAndSeeds guards against a degenerate jitter
// hash: distinct cells (and distinct seeds) must not all collapse onto the
// same delay, or every failing cell in a sweep retries in lockstep.
func TestRetryDelayVariesAcrossCellsAndSeeds(t *testing.T) {
	base := 100 * time.Millisecond
	byCell := map[time.Duration]bool{}
	for cell := 0; cell < 16; cell++ {
		byCell[retryDelay(base, 7, cell, 2)] = true
	}
	if len(byCell) < 8 {
		t.Fatalf("16 cells produced only %d distinct delays", len(byCell))
	}
	bySeed := map[time.Duration]bool{}
	for seed := int64(0); seed < 16; seed++ {
		bySeed[retryDelay(base, seed, 0, 2)] = true
	}
	if len(bySeed) < 8 {
		t.Fatalf("16 seeds produced only %d distinct delays", len(bySeed))
	}
}

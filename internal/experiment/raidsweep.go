package experiment

// The RAID-loss sweep is the reliability counterpart of the fault sweep:
// instead of counting spare-pool exhaustion, it organizes the array into a
// redundancy scheme (RAID-5/6 or 2/3-way replication) and counts the failure
// *combinations* that actually lose data — a second disk (or unscrubbed
// latent sector error) giving out while a rebuild is still running. Crossing
// that with the energy policies answers the paper's question at the data
// level: how much does each watt saved cost in mean time to data loss?

import (
	"fmt"
	"io"
	"math"

	"repro/internal/array"
	"repro/internal/faults"
	"repro/internal/reliability"
	"repro/internal/stats"
)

// RAIDLossAcceleration compresses the reliability timescale for the default
// RAID-loss sweep. Data loss needs *coincident* failures, which are far
// rarer than single failures, so the sweep runs hotter than the fault
// sweep's 2e5 to observe a usable number of loss events per cell.
const RAIDLossAcceleration = 5e5

// DefaultRAIDLossSweepConfig returns the MTTDL-per-policy experiment: every
// energy policy crossed with every RAID organization at a single array size,
// with latent sector errors, Weibull-interval scrubbing, and Weibull rebuild
// durations all enabled. Two hot spares keep the arrays repairing (so losses
// come from failure overlap, not spare exhaustion) without hiding rebuild
// windows.
func DefaultRAIDLossSweepConfig() SweepConfig {
	cfg := DefaultSweepConfig()
	cfg.DiskCounts = []int{12}
	cfg.Policies = AllPolicyKinds()
	cfg.RAIDLevels = []array.RAIDLevel{array.RAID5, array.RAID6, array.Repl2, array.Repl3}
	fc := faults.Default()
	fc.Acceleration = RAIDLossAcceleration
	fc.LSERatePerHour = faults.DefaultLSERatePerHour
	fc.RebuildTime = &reliability.Weibull{Shape: 1, ScaleHours: 12}
	cfg.Faults = &fc
	cfg.Spares = 2
	return cfg
}

// RAIDCells returns the sweep's cells grouped by RAID level in the sweep's
// configured level order, each group in cell order. Cells without a RAID
// level (a sweep mixing axes, or none) land under the empty key.
func (s *SweepResult) RAIDCells() map[array.RAIDLevel][]Cell {
	out := make(map[array.RAIDLevel][]Cell)
	for _, c := range s.Cells {
		out[c.RAID] = append(out[c.RAID], c)
	}
	return out
}

// RenderRAIDLoss writes the MTTDL-per-policy account of a RAID-loss sweep:
// one row per (RAID organization, policy) cell with the loss events broken
// down by mechanism — rebuild windows pierced by a latent sector error
// versus outright overlapping failures — and the exposure-based MTTDL
// estimate with its 95% confidence bounds.
func RenderRAIDLoss(w io.Writer, s *SweepResult, title string) {
	fmt.Fprintf(w, "%s\n", title)
	rows := [][]string{{
		"raid", "policy", "disks", "energy", "failures", "lse", "scrubbed",
		"losses", "lse-loss", "overlap", "MTTDL", "MTTDL-95%",
	}}
	for _, c := range s.Cells {
		r := c.Result
		raid := string(c.RAID)
		if raid == "" {
			raid = "-"
		}
		if r == nil {
			rows = append(rows, []string{
				raid, string(c.Policy), fmt.Sprintf("%d", c.Disks),
				"FAILED", "-", "-", "-", "-", "-", "-", "-", "-",
			})
			continue
		}
		mttdl, bounds := "-", "-"
		if r.RAIDLevel != "" {
			est := stats.MTTDL{ExposureHours: r.ExposureHours, Events: r.RAIDDataLossEvents}
			if h := est.Hours(); h > 0 && !math.IsInf(h, 1) {
				mttdl = fmt.Sprintf("%.3g h", h)
			} else {
				// No loss observed: the exposure gives only a lower bound.
				mttdl = fmt.Sprintf(">%.3g h", est.LowerHours())
			}
			up := "inf"
			if u := est.UpperHours(); !math.IsInf(u, 1) {
				up = fmt.Sprintf("%.3g", u)
			}
			bounds = fmt.Sprintf("[%.3g, %s]", est.LowerHours(), up)
		}
		rows = append(rows, []string{
			raid,
			string(c.Policy),
			fmt.Sprintf("%d", c.Disks),
			formatMetric(MetricEnergy, r.EnergyJ),
			fmt.Sprintf("%d", r.DiskFailures),
			fmt.Sprintf("%d", r.LSEErrors),
			fmt.Sprintf("%d", r.LSECleared),
			fmt.Sprintf("%d", r.RAIDDataLossEvents),
			fmt.Sprintf("%d", r.RAIDLSELosses),
			fmt.Sprintf("%d", r.RAIDOverlapLosses),
			mttdl,
			bounds,
		})
	}
	writeAligned(w, rows)
}

package experiment

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/reliability"
)

// RenderSweepTable writes an ASCII table of one metric over the sweep,
// policies as columns, one row per array size — the textual form of a
// Figure 7 panel.
func RenderSweepTable(w io.Writer, s *SweepResult, m Metric, title string) error {
	series, disks, err := s.Series(m)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s\n", title)
	header := []string{"disks"}
	for _, p := range s.Config.Policies {
		header = append(header, string(p))
	}
	rows := [][]string{header}
	for i, n := range disks {
		row := []string{fmt.Sprintf("%d", n)}
		for _, p := range s.Config.Policies {
			row = append(row, formatMetric(m, series[p][i]))
		}
		rows = append(rows, row)
	}
	writeAligned(w, rows)
	return nil
}

func formatMetric(m Metric, v float64) string {
	switch m {
	case MetricAFR:
		return fmt.Sprintf("%.3f%%", v)
	case MetricEnergy:
		if v >= 1e6 {
			return fmt.Sprintf("%.3f MJ", v/1e6)
		}
		return fmt.Sprintf("%.1f kJ", v/1e3)
	case MetricResponse:
		return fmt.Sprintf("%.2f ms", v*1e3)
	default:
		return fmt.Sprintf("%g", v)
	}
}

// RenderImprovements writes the headline comparison lines for a metric.
func RenderImprovements(w io.Writer, s *SweepResult, m Metric, base PolicyKind) error {
	for _, other := range s.Config.Policies {
		if other == base {
			continue
		}
		imp, err := s.ImprovementOver(m, base, other)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s vs %s on %s: mean %.1f%%, max %.1f%% better\n",
			base, other, m, imp.MeanPercent, imp.MaxPercent)
	}
	return nil
}

// RenderFunctionTable writes (x, AFR) sample rows.
func RenderFunctionTable(w io.Writer, pts []FunctionPoint, xLabel, title string) {
	fmt.Fprintf(w, "%s\n", title)
	rows := [][]string{{xLabel, "AFR%"}}
	for _, p := range pts {
		rows = append(rows, []string{fmt.Sprintf("%.3g", p.X), fmt.Sprintf("%.4f", p.AFR)})
	}
	writeAligned(w, rows)
}

// RenderSurfaceTable writes a PRESS surface as a utilization × frequency
// grid of AFR values.
func RenderSurfaceTable(w io.Writer, pts []reliability.SurfacePoint, title string) {
	fmt.Fprintf(w, "%s\n", title)
	// Recover the grid shape: points are utilization-major.
	var freqs []float64
	for _, p := range pts {
		if p.Utilization != pts[0].Utilization {
			break
		}
		freqs = append(freqs, p.TransitionsPerDay)
	}
	if len(freqs) == 0 {
		return
	}
	header := []string{"util\\freq"}
	for _, f := range freqs {
		header = append(header, fmt.Sprintf("%.0f", f))
	}
	rows := [][]string{header}
	for i := 0; i < len(pts); i += len(freqs) {
		row := []string{fmt.Sprintf("%.0f%%", pts[i].Utilization*100)}
		for j := 0; j < len(freqs); j++ {
			row = append(row, fmt.Sprintf("%.2f", pts[i+j].AFR))
		}
		rows = append(rows, row)
	}
	writeAligned(w, rows)
}

// RenderDerivation writes the §3.4 constant chain next to the paper's
// published values.
func RenderDerivation(w io.Writer, d reliability.Derivation) {
	rows := [][]string{
		{"constant", "reproduced", "paper"},
		{"G(Tmax)/A at 50C", fmt.Sprintf("%.4e", d.GTmax), "3.2275e-20"},
		{"A*A0", fmt.Sprintf("%.4e", d.AA0), "2.564317e26"},
		{"N'f (transitions to failure)", fmt.Sprintf("%.0f", d.TransitionsToFailure), "118529"},
		{"N'f / Nf", fmt.Sprintf("%.2f", d.TransitionToCycleRatio), "~2 (50% effect)"},
		{"5-yr daily budget", fmt.Sprintf("%.1f", d.DailyBudget5yr), "65"},
	}
	writeAligned(w, rows)
}

// WriteSweepCSV emits the whole sweep grid as CSV for external plotting.
func WriteSweepCSV(w io.Writer, s *SweepResult) error {
	if _, err := fmt.Fprintln(w, "disks,policy,afr_percent,energy_j,mean_response_s,p95_response_s,requests,migrations,background_ops"); err != nil {
		return err
	}
	for _, c := range s.Cells {
		r := c.Result
		if r == nil {
			// Failed cell in a partial sweep: no metrics to emit.
			continue
		}
		if _, err := fmt.Fprintf(w, "%d,%s,%.6f,%.3f,%.6f,%.6f,%d,%d,%d\n",
			c.Disks, c.Policy, r.ArrayAFR, r.EnergyJ, r.MeanResponse, r.P95Response,
			r.Requests, r.Migrations, r.BackgroundOps); err != nil {
			return err
		}
	}
	return nil
}

// WriteFunctionCSV emits (x, afr) samples as CSV.
func WriteFunctionCSV(w io.Writer, pts []FunctionPoint, xLabel string) error {
	if _, err := fmt.Fprintf(w, "%s,afr_percent\n", xLabel); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(w, "%g,%.6f\n", p.X, p.AFR); err != nil {
			return err
		}
	}
	return nil
}

// writeAligned prints rows with columns padded to equal width.
func writeAligned(w io.Writer, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		if ri == 0 {
			total := 0
			for _, wd := range widths {
				total += wd + 2
			}
			fmt.Fprintln(w, strings.Repeat("-", total-2))
		}
	}
}

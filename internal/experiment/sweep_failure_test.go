package experiment

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// withCellHook installs testCellHook for one test and restores it after.
func withCellHook(t *testing.T, hook func(PolicyKind, int)) {
	t.Helper()
	testCellHook = hook
	t.Cleanup(func() { testCellHook = nil })
}

// TestSweepSurvivesPanickingCell is the sweep half of the issue's
// acceptance: one cell panics on every attempt, every other cell completes,
// the failure lands in the manifest, and only the broken cell is failed.
func TestSweepSurvivesPanickingCell(t *testing.T) {
	withCellHook(t, func(kind PolicyKind, disks int) {
		if kind == KindMAID && disks == 4 {
			panic("injected cell panic")
		}
	})
	cfg := tinySweep()
	cfg.MaxAttempts = 2
	cfg.RetryBaseDelay = time.Millisecond
	res, err := RunSweep(cfg)
	if err == nil {
		t.Fatal("want a failure-summary error")
	}
	if res == nil {
		t.Fatal("want the partial sweep result alongside the error")
	}
	if !strings.Contains(err.Error(), "1 of") {
		t.Fatalf("error should count failed cells, got: %v", err)
	}

	failed := res.FailedCells()
	if len(failed) != 1 {
		t.Fatalf("failed cells = %d, want 1", len(failed))
	}
	f := failed[0]
	if f.Policy != KindMAID || f.Disks != 4 {
		t.Fatalf("wrong cell failed: %s/%d", f.Policy, f.Disks)
	}
	if f.Result != nil || f.Status != CellFailed || f.Attempts != 2 {
		t.Fatalf("failed cell = %+v", f)
	}
	if !strings.Contains(f.Err, "injected cell panic") {
		t.Fatalf("cell error lost the panic message: %q", f.Err)
	}
	for _, c := range res.Cells {
		if c.Policy == KindMAID && c.Disks == 4 {
			continue
		}
		if c.Status != CellOK || c.Result == nil || c.Attempts != 1 {
			t.Fatalf("healthy cell damaged by the panicking one: %+v", c)
		}
	}

	// The failure is recorded in the manifest: overall status, a per-cell
	// marker instead of metrics, and attempts for the post-mortem.
	m, err := SweepManifest("panicking", cfg, res)
	if err != nil {
		t.Fatal(err)
	}
	if m.Status != string(CellFailed) {
		t.Fatalf("manifest status = %q, want failed", m.Status)
	}
	if m.Summary.Extra["cell.maid.4.failed"] != 1 {
		t.Fatal("manifest lacks the failed-cell marker")
	}
	if _, ok := m.Summary.Extra["cell.maid.4.energy_j"]; ok {
		t.Fatal("failed cell contributed metrics")
	}
	if m.Summary.Extra["cell.maid.4.attempts"] != 2 {
		t.Fatalf("attempts marker = %v, want 2", m.Summary.Extra["cell.maid.4.attempts"])
	}

	// Rendering a partial sweep must not panic either.
	var sb strings.Builder
	if err := RenderSweepTable(&sb, res, MetricEnergy, "partial"); err != nil {
		t.Fatal(err)
	}
	if err := WriteSweepCSV(&sb, res); err != nil {
		t.Fatal(err)
	}
}

// TestSweepRetriesTransientFailure makes one cell panic only on its first
// attempt: the retry succeeds, the cell (and the manifest) records
// "retried", and the sweep as a whole succeeds.
func TestSweepRetriesTransientFailure(t *testing.T) {
	var mu sync.Mutex
	tripped := false
	withCellHook(t, func(kind PolicyKind, disks int) {
		if kind == KindPDC && disks == 6 {
			mu.Lock()
			first := !tripped
			tripped = true
			mu.Unlock()
			if first {
				panic("transient fault")
			}
		}
	})
	cfg := tinySweep()
	cfg.MaxAttempts = 3
	cfg.RetryBaseDelay = time.Millisecond
	res, err := RunSweep(cfg)
	if err != nil {
		t.Fatalf("retried sweep should succeed, got: %v", err)
	}
	var retried *Cell
	for i := range res.Cells {
		c := &res.Cells[i]
		if c.Policy == KindPDC && c.Disks == 6 {
			retried = c
		}
	}
	if retried == nil || retried.Status != CellRetried || retried.Attempts != 2 || retried.Result == nil {
		t.Fatalf("retried cell = %+v", retried)
	}
	m, err := SweepManifest("retried", cfg, res)
	if err != nil {
		t.Fatal(err)
	}
	if m.Status != string(CellRetried) {
		t.Fatalf("manifest status = %q, want retried", m.Status)
	}
}

// TestSweepManifestIDIsStable checks the resume-skip ID matches the ID the
// recorded manifest actually gets.
func TestSweepManifestIDIsStable(t *testing.T) {
	cfg := tinySweep()
	id, err := SweepManifestID("cond", cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := SweepManifest("cond", cfg, res)
	if err != nil {
		t.Fatal(err)
	}
	if m.ID() != id {
		t.Fatalf("SweepManifestID %q != recorded ID %q", id, m.ID())
	}
	if m.Status != string(CellOK) {
		t.Fatalf("clean sweep status = %q", m.Status)
	}
}

package experiment

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/runstore"
)

// tinyFleetConfig is a seconds-scale fleet sweep: 2 cells, small trace.
func tinyFleetConfig() FleetSweepConfig {
	cfg := DefaultFleetSweepConfig()
	cfg.ArrayCounts = []int{2}
	cfg.Routings = []cluster.RoutingPolicy{cluster.RoundRobin, cluster.LeastLoaded}
	cfg.Policies = []PolicyKind{KindREAD}
	cfg.Scale = 0.002
	cfg.Seed = 7
	return cfg
}

func TestFleetCellKeys(t *testing.T) {
	cfg := tinyFleetConfig()
	keys := cfg.CellKeys()
	want := []string{"fleet.read.round-robin.2", "fleet.read.least-loaded.2"}
	if len(keys) != len(want) {
		t.Fatalf("CellKeys = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("CellKeys = %v, want %v", keys, want)
		}
	}
}

// TestRunFleetSweepDeterministic runs the same sweep twice and requires
// every cell's summary metrics to be bit-identical — the property the CI
// fleet determinism gate enforces end-to-end through the CLI.
func TestRunFleetSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet sweep in -short mode")
	}
	run := func() map[string]float64 {
		res, err := RunFleetSweep(tinyFleetConfig())
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]float64{}
		for _, c := range res.Cells {
			s := FleetSummary(c.Result, false)
			for k, v := range s.Metrics() {
				out[c.Key()+"."+k] = v
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("metric sets differ in size: %d vs %d", len(a), len(b))
	}
	for k, av := range a {
		if bv, ok := b[k]; !ok || av != bv {
			t.Fatalf("metric %s drifted across identical sweeps: %v vs %v", k, av, bv)
		}
	}
}

// TestFleetManifestShape pins the manifest contract: stable digest for a
// fixed config, per-cell Extra keys under the cell.<key>. prefix, and the
// FleetOn typed block filled.
func TestFleetManifestShape(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet sweep in -short mode")
	}
	cfg := tinyFleetConfig()
	res, err := RunFleetSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := FleetManifest("fleet-test", cfg, res)
	if err != nil {
		t.Fatal(err)
	}
	id1, err := FleetManifestID("fleet-test", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.ID() != id1 {
		t.Fatalf("FleetManifestID %s != manifest ID %s", id1, m.ID())
	}
	// Execution knobs must not move the digest.
	cfg2 := cfg
	cfg2.Parallelism = 7
	cfg2.CellAttempts = 3
	id2, err := FleetManifestID("fleet-test", cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatal("execution knobs changed the fleet manifest digest")
	}
	// Axis changes must move it.
	cfg3 := cfg
	cfg3.Seed = 99
	id3, err := FleetManifestID("fleet-test", cfg3)
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id3 {
		t.Fatal("seed change did not move the fleet manifest digest")
	}

	if !m.Summary.FleetOn || m.Summary.FleetArrays == 0 {
		t.Fatalf("fleet summary block not filled: %+v", m.Summary)
	}
	for _, key := range []string{
		"cell.fleet.read.round-robin.2.attempts",
		"cell.fleet.read.round-robin.2.served",
		"cell.fleet.read.least-loaded.2.energy_j",
		"cell.fleet.read.least-loaded.2.p99_response_s",
	} {
		if _, ok := m.Summary.Extra[key]; !ok {
			t.Fatalf("manifest Extra lacks %q (keys: %d)", key, len(m.Summary.Extra))
		}
	}

	// The CSV and rendered table carry one row per cell.
	var csv strings.Builder
	if err := WriteFleetCSV(&csv, res); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(csv.String(), "\n"); n != 1+len(res.Cells) {
		t.Fatalf("fleet CSV has %d lines, want %d", n, 1+len(res.Cells))
	}
}

// TestFleetSummaryMapsResult spot-checks the Result → Summary field mapping.
func TestFleetSummaryMapsResult(t *testing.T) {
	r := &cluster.Result{
		Arrays: 4, Routing: cluster.AFRAware,
		Duration: 100, EventsFired: 999,
		Requests: 50, Served: 48, MeanResponse: 0.01, P99Response: 0.05,
		Retries: 7, Hedges: 3, HedgeWins: 1, Failovers: 2, Timeouts: 9,
		Deferred: 4, Shed: 1, Failed: 1, ShocksInjected: 5,
		EnergyJ: 1234, WorstAFR: 13.5, DiskFailures: 2, LostRequests: 6,
	}
	s := FleetSummary(r, false)
	if !s.FleetOn || s.FleetArrays != 4 || s.FleetServed != 48 ||
		s.FleetRetries != 7 || s.FleetHedges != 3 || s.FleetHedgeWins != 1 ||
		s.FleetFailovers != 2 || s.FleetTimeouts != 9 || s.FleetDeferred != 4 ||
		s.FleetShed != 1 || s.FleetFailedRequests != 1 || s.FleetShocks != 5 ||
		s.FleetLostRequests != 6 {
		t.Fatalf("fleet block mis-mapped: %+v", s)
	}
	if s.EnergyJ != 1234 || s.ArrayAFRPct != 13.5 || s.Requests != 50 ||
		s.EventsFired != 999 || s.P99ResponseS != 0.05 {
		t.Fatalf("scalar block mis-mapped: %+v", s)
	}
	if s.FaultsOn {
		t.Fatal("faults-off summary set FaultsOn")
	}
	var zero runstore.Summary
	if s.DiskFailures != zero.DiskFailures {
		t.Fatal("faults-off summary leaked disk failures")
	}
}

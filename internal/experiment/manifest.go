package experiment

import (
	"fmt"

	"repro/internal/array"
	"repro/internal/runstore"
	"repro/internal/telemetry"
)

// SweepManifestConfig is the digested configuration block of one sweep
// condition's manifest. It carries exactly the parameters that determine the
// sweep's results — execution knobs (Parallelism, Progress) and the
// non-serializable Press override are deliberately excluded, the latter
// surfaced as a marker instead so a custom-model run never shares a digest
// with a default-model run.
type SweepManifestConfig struct {
	DiskCounts     []int          `json:"disk_counts"`
	Policies       []PolicyKind   `json:"policies"`
	Workload       map[string]any `json:"workload"`
	Scale          float64        `json:"scale"`
	Intensity      float64        `json:"intensity"`
	EpochSeconds   float64        `json:"epoch_seconds,omitempty"`
	EpochsPerTrace int            `json:"epochs_per_trace,omitempty"`
	CustomPress    bool           `json:"custom_press,omitempty"`
	Faults         map[string]any `json:"faults,omitempty"`
	Spares         int            `json:"spares,omitempty"`
	RebuildMBps    float64        `json:"rebuild_mbps,omitempty"`
	// RAID axis; omitted (and digest-neutral) when the sweep has none.
	RAIDLevels      []array.RAIDLevel `json:"raid_levels,omitempty"`
	RAIDStripeWidth int               `json:"raid_stripe_width,omitempty"`
}

// SweepManifest condenses one finished sweep condition into a runstore
// manifest: the digested configuration, an aggregate summary over all cells,
// and every cell's headline metrics flattened into Summary.Extra under
// "cell.<policy>.<disks>.<metric>" keys, so arrayreport diff compares sweeps
// cell by cell, not just in aggregate.
func SweepManifest(name string, cfg SweepConfig, res *SweepResult) (*runstore.Manifest, error) {
	m, err := newSweepManifest(name, cfg)
	if err != nil {
		return nil, err
	}
	cfg.setDefaults()

	faultsOn := cfg.Faults != nil && cfg.Faults.Enabled
	var sum runstore.Summary
	sum.Extra = make(map[string]float64, 4*len(res.Cells))
	status := string(CellOK)
	okCells := 0
	perfCells := make(map[string]runstore.PerfSample)
	for _, c := range res.Cells {
		// The RAID segment appears only on RAID-axis sweeps, so the cell
		// keys (and therefore diffs against pre-RAID manifests) of plain
		// sweeps are unchanged.
		prefix := "cell." + c.Key() + "."
		if c.Perf != nil {
			perfCells[c.Key()] = *c.Perf
		}
		if c.Attempts > 0 {
			sum.Extra[prefix+"attempts"] = float64(c.Attempts)
		}
		if c.Status == CellFailed || c.Result == nil {
			// A failed cell contributes a marker instead of metrics, so the
			// diff toolchain flags it as a metric-set mismatch rather than
			// comparing against silent zeros.
			sum.Extra[prefix+"failed"] = 1
			status = string(CellFailed)
			continue
		}
		if c.Status == CellRetried && status != string(CellFailed) {
			status = string(CellRetried)
		}
		okCells++
		cs := runstore.SummaryFromResult(c.Result, faultsOn)
		sum.EnergyJ += cs.EnergyJ
		sum.ArrayAFRPct += cs.ArrayAFRPct
		sum.MeanResponseS += cs.MeanResponseS
		sum.P50ResponseS += cs.P50ResponseS
		sum.P95ResponseS += cs.P95ResponseS
		sum.P99ResponseS += cs.P99ResponseS
		sum.P999ResponseS += cs.P999ResponseS
		if cs.MaxResponseS > sum.MaxResponseS {
			sum.MaxResponseS = cs.MaxResponseS
		}
		sum.TransitionsPerDay += cs.TransitionsPerDay
		sum.Requests += cs.Requests
		sum.EventsFired += cs.EventsFired
		if faultsOn {
			sum.FaultsOn = true
			sum.DiskFailures += cs.DiskFailures
			sum.DataLossEvents += cs.DataLossEvents
		}
		sum.Extra[prefix+"energy_j"] = cs.EnergyJ
		sum.Extra[prefix+"array_afr_pct"] = cs.ArrayAFRPct
		sum.Extra[prefix+"mean_response_s"] = cs.MeanResponseS
		sum.Extra[prefix+"events_fired"] = cs.EventsFired
		if faultsOn {
			sum.Extra[prefix+"disk_failures"] = cs.DiskFailures
			sum.Extra[prefix+"data_loss_events"] = cs.DataLossEvents
		}
		if faultsOn && c.Result.LSEModeled {
			sum.Extra[prefix+"lse_errors"] = float64(c.Result.LSEErrors)
			sum.Extra[prefix+"lse_cleared"] = float64(c.Result.LSECleared)
			sum.Extra[prefix+"scrubs"] = float64(c.Result.Scrubs)
		}
		if c.RAID != "" && c.Result.RAIDLevel != "" {
			sum.Extra[prefix+"raid_loss_events"] = float64(c.Result.RAIDDataLossEvents)
			sum.Extra[prefix+"mttdl_est_hours"] = c.Result.MTTDLEstHours
		}
	}
	// Intensive metrics average over the cells that completed; energy,
	// requests, events, and the fault counts stay extensive (sums).
	if n := float64(okCells); n > 0 {
		sum.ArrayAFRPct /= n
		sum.MeanResponseS /= n
		sum.P50ResponseS /= n
		sum.P95ResponseS /= n
		sum.P99ResponseS /= n
		sum.P999ResponseS /= n
		sum.TransitionsPerDay /= n
	}
	m.Summary = sum
	m.Status = status
	m.Attribution = aggregateAttribution(res.Cells)
	if len(perfCells) > 0 {
		// Per-cell self-performance rides outside Summary (like
		// Attribution): wall-clocks differ run to run by construction and
		// must never join the diffed metric set. The caller fills Perf.Run.
		m.Perf = &runstore.Perf{Cells: perfCells}
	}
	return m, nil
}

// aggregateAttribution rolls the per-cell attribution reports into one
// sweep-wide report (nil when no cell traced decisions). Per-epoch rows are
// per-cell detail and do not aggregate meaningfully across cells, so only
// the totals and decision counts are merged.
func aggregateAttribution(cells []Cell) *telemetry.AttributionReport {
	var out *telemetry.AttributionReport
	for _, c := range cells {
		if c.Result == nil || c.Result.Attribution == nil {
			continue
		}
		a := c.Result.Attribution
		if out == nil {
			out = &telemetry.AttributionReport{}
		}
		out.Totals.Add(a.Totals)
		out.Decisions += a.Decisions
		out.SpinDowns += a.SpinDowns
		out.SpinUps += a.SpinUps
		out.Migrations += a.Migrations
		out.Reassigns += a.Reassigns
		out.RebuildPaces += a.RebuildPaces
		out.WakeRequests += a.WakeRequests
		out.ParkedSeconds += a.ParkedSeconds
		out.ParkNetSavedJ += a.ParkNetSavedJ
	}
	return out
}

// newSweepManifest builds the manifest shell — digested config, seed, policy
// list — without the summary block. Both SweepManifest and SweepManifestID
// derive from it, so the resume-skip ID always matches the recorded one.
func newSweepManifest(name string, cfg SweepConfig) (*runstore.Manifest, error) {
	cfg.setDefaults()
	mc := SweepManifestConfig{
		DiskCounts:      cfg.DiskCounts,
		Policies:        cfg.Policies,
		Workload:        asMap(cfg.Workload),
		Scale:           cfg.Scale,
		Intensity:       cfg.Intensity,
		EpochSeconds:    cfg.EpochSeconds,
		EpochsPerTrace:  cfg.EpochsPerTrace,
		CustomPress:     cfg.Press != nil,
		Spares:          cfg.Spares,
		RebuildMBps:     cfg.RebuildMBps,
		RAIDLevels:      cfg.RAIDLevels,
		RAIDStripeWidth: cfg.RAIDStripeWidth,
	}
	if cfg.Faults != nil {
		mc.Faults = asMap(*cfg.Faults)
	}
	m, err := runstore.New("experiments", name, mc)
	if err != nil {
		return nil, err
	}
	m.Seed = cfg.Workload.Seed
	m.Policy = policyList(cfg.Policies)
	m.Workload = fmt.Sprintf("scale %g intensity %g", cfg.Scale, cfg.Intensity)
	return m, nil
}

// SweepManifestID computes the run-store ID a sweep condition would be
// recorded under, without running the sweep. A resumable driver uses it to
// skip conditions whose store entry already exists with an ok status.
func SweepManifestID(name string, cfg SweepConfig) (string, error) {
	m, err := newSweepManifest(name, cfg)
	if err != nil {
		return "", err
	}
	return m.ID(), nil
}

// asMap flattens a config struct through its JSON form so the manifest's
// config block (and therefore the digest) only sees exported, serialized
// state.
func asMap(v any) map[string]any {
	out, err := runstore.ToJSONMap(v)
	if err != nil {
		// All config types here are plain data; failure is a programming
		// error surfaced at first use in tests.
		panic(fmt.Sprintf("experiment: config not serializable: %v", err))
	}
	return out
}

func policyList(ps []PolicyKind) string {
	s := ""
	for i, p := range ps {
		if i > 0 {
			s += "+"
		}
		s += string(p)
	}
	return s
}

package experiment

import (
	"strings"
	"testing"

	"repro/internal/runstore"
)

func manifestSweep(t *testing.T, seed int64) (*runstore.Manifest, SweepConfig) {
	t.Helper()
	cfg := DefaultSweepConfig()
	cfg.DiskCounts = []int{4, 6}
	cfg.Policies = []PolicyKind{KindREAD, KindMAID}
	cfg.Scale = 0.002
	cfg.Workload.Seed = seed
	res, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := SweepManifest("tiny", cfg, res)
	if err != nil {
		t.Fatal(err)
	}
	return m, cfg
}

// Two sweeps of the identical configuration must agree bit-for-bit: same
// config digest, and zero delta on every metric under zero tolerance — the
// determinism gate `arrayreport diff` applies in CI.
func TestSweepManifestDeterminism(t *testing.T) {
	a, _ := manifestSweep(t, 1)
	b, _ := manifestSweep(t, 1)
	if a.ConfigDigest != b.ConfigDigest {
		t.Fatalf("same config, different digests:\n%s\n%s", a.ConfigDigest, b.ConfigDigest)
	}
	deltas := runstore.Diff(a.Summary, b.Summary, runstore.Tolerances{})
	if n := runstore.Breaches(deltas); n != 0 {
		t.Fatalf("same-seed sweeps differ in %d metric(s): %+v", n, deltas)
	}
	for _, d := range deltas {
		if d.Rel != 0 {
			t.Fatalf("metric %s has nonzero delta %g between identical runs", d.Metric, d.Rel)
		}
	}
}

// A perturbed configuration (different workload seed) must change the digest
// and breach the zero-tolerance diff — a regression cannot hide behind an
// unchanged run name.
func TestSweepManifestPerturbedSeedBreaches(t *testing.T) {
	a, _ := manifestSweep(t, 1)
	b, _ := manifestSweep(t, 2)
	if a.ConfigDigest == b.ConfigDigest {
		t.Fatal("different seeds produced the same config digest")
	}
	deltas := runstore.Diff(a.Summary, b.Summary, runstore.Tolerances{})
	if runstore.Breaches(deltas) == 0 {
		t.Fatal("perturbed seed produced zero metric deltas")
	}
}

// The manifest's Extra block carries one entry set per sweep cell, named
// cell.<policy>.<disks>.<metric>.
func TestSweepManifestCellMetrics(t *testing.T) {
	m, cfg := manifestSweep(t, 1)
	for _, p := range cfg.Policies {
		for _, n := range []string{"4", "6"} {
			key := "cell." + string(p) + "." + n + ".energy_j"
			v, ok := m.Summary.Extra[key]
			if !ok || v <= 0 {
				t.Errorf("missing or non-positive cell metric %s (%v)", key, v)
			}
		}
	}
	if m.Policy != "read+maid" {
		t.Errorf("policy list = %q", m.Policy)
	}
	if m.Seed != 1 {
		t.Errorf("seed = %d", m.Seed)
	}
	if !strings.Contains(m.Workload, "scale 0.002") {
		t.Errorf("workload description = %q", m.Workload)
	}
}

// Execution knobs must not leak into the digest: parallelism and progress
// sinks change neither results nor identity.
func TestSweepManifestDigestIgnoresExecutionKnobs(t *testing.T) {
	cfg := DefaultSweepConfig()
	cfg.DiskCounts = []int{4}
	cfg.Policies = []PolicyKind{KindREAD}
	cfg.Scale = 0.002
	res, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := SweepManifest("knobs", cfg, res)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Parallelism = 1
	b, err := SweepManifest("knobs", cfg2, res)
	if err != nil {
		t.Fatal(err)
	}
	if a.ConfigDigest != b.ConfigDigest {
		t.Fatal("parallelism changed the config digest")
	}
}

package experiment

import (
	"fmt"
	"io"

	"repro/internal/array"
	"repro/internal/policy"
	"repro/internal/workload"
)

// AblationConfig parameterizes the single-workload ablation runs.
type AblationConfig struct {
	// Disks is the array size. Zero means 10.
	Disks int
	// Workload is the base generator configuration (churn and diurnal
	// profile from DefaultSweepConfig if zero-valued).
	Workload workload.GenConfig
	// Scale and Intensity as in SweepConfig. Zero means 0.05 / light.
	Scale     float64
	Intensity float64
	// EpochsPerTrace as in SweepConfig; zero means 24.
	EpochsPerTrace int
}

func (c *AblationConfig) setDefaults() {
	if c.Disks == 0 {
		c.Disks = 10
	}
	if c.Workload.NumFiles == 0 {
		c.Workload = DefaultSweepConfig().Workload
	}
	if c.Scale == 0 {
		c.Scale = 0.05
	}
	if c.Intensity == 0 {
		// The ablations probe transition behaviour, which needs idle
		// gaps to exist: run at the trace's native arrival rate, where
		// the diurnal valley leaves disks genuinely idle.
		c.Intensity = 1
	}
	if c.EpochsPerTrace <= 0 {
		c.EpochsPerTrace = 24
	}
}

// prepare builds the trace and epoch length for an ablation.
func (c AblationConfig) prepare() (*workload.Trace, float64, error) {
	wl := c.Workload
	var err error
	if c.Intensity != 1 {
		wl, err = wl.WithIntensity(c.Intensity)
		if err != nil {
			return nil, 0, err
		}
	}
	if c.Scale != 1 {
		wl, err = wl.Scaled(c.Scale)
		if err != nil {
			return nil, 0, err
		}
		wl.PhaseSeconds *= c.Scale
	}
	trace, err := workload.Generate(wl)
	if err != nil {
		return nil, 0, err
	}
	duration := float64(wl.NumRequests) * wl.MeanInterarrival
	return trace, duration / float64(c.EpochsPerTrace), nil
}

// VariantResult is one ablation cell: a named policy variant's outcome.
type VariantResult struct {
	Label  string
	Result *array.Result
}

// runVariants replays one trace through a list of policy variants.
func runVariants(cfg AblationConfig, variants []struct {
	label string
	make  func() array.Policy
}) ([]VariantResult, error) {
	cfg.setDefaults()
	trace, epoch, err := cfg.prepare()
	if err != nil {
		return nil, err
	}
	out := make([]VariantResult, 0, len(variants))
	for _, v := range variants {
		res, err := array.Run(array.Config{
			Disks:        cfg.Disks,
			Trace:        trace,
			Policy:       v.make(),
			EpochSeconds: epoch,
		})
		if err != nil {
			return nil, fmt.Errorf("experiment: ablation %q: %w", v.label, err)
		}
		out = append(out, VariantResult{Label: v.label, Result: res})
	}
	return out, nil
}

// TransitionCapAblation sweeps READ's daily transition cap S — the
// in-simulator version of the paper's "is it worthwhile above 65/day?"
// question.
func TransitionCapAblation(cfg AblationConfig, caps []int) ([]VariantResult, error) {
	if len(caps) == 0 {
		caps = []int{5, 20, 40, 65, 200, 1600}
	}
	variants := make([]struct {
		label string
		make  func() array.Policy
	}, 0, len(caps))
	for _, s := range caps {
		s := s
		variants = append(variants, struct {
			label string
			make  func() array.Policy
		}{
			label: fmt.Sprintf("S=%d", s),
			make: func() array.Policy {
				return policy.NewREAD(policy.READConfig{MaxTransitionsPerDay: s})
			},
		})
	}
	return runVariants(cfg, variants)
}

// READDesignAblation removes READ's design elements one at a time:
// the adaptive idleness threshold and the epoch migration.
func READDesignAblation(cfg AblationConfig) ([]VariantResult, error) {
	return runVariants(cfg, []struct {
		label string
		make  func() array.Policy
	}{
		{"read (full)", func() array.Policy {
			return policy.NewREAD(policy.READConfig{})
		}},
		{"no adaptive H", func() array.Policy {
			return policy.NewREAD(policy.READConfig{DisableAdaptiveThreshold: true})
		}},
		{"no migration", func() array.Policy {
			return policy.NewREAD(policy.READConfig{MaxMigrationsPerEpoch: -1})
		}},
		{"no cap (DRPM-like)", func() array.Policy {
			return policy.NewDRPM(policy.DRPMConfig{})
		}},
	})
}

// BaselinePanelAblation runs every implemented policy, including the
// extensions, on one workload for a side-by-side panel.
func BaselinePanelAblation(cfg AblationConfig) ([]VariantResult, error) {
	return runVariants(cfg, []struct {
		label string
		make  func() array.Policy
	}{
		{"always-on", func() array.Policy { return policy.NewAlwaysOn() }},
		{"read", func() array.Policy { return policy.NewREAD(policy.READConfig{}) }},
		{"read-replica", func() array.Policy {
			return policy.NewREADReplica(policy.READReplicaConfig{})
		}},
		{"maid", func() array.Policy { return policy.NewMAID(policy.MAIDConfig{}) }},
		{"pdc", func() array.Policy { return policy.NewPDC(policy.PDCConfig{}) }},
		{"drpm", func() array.Policy { return policy.NewDRPM(policy.DRPMConfig{}) }},
	})
}

// RenderVariants writes an ablation panel as an aligned table.
func RenderVariants(w io.Writer, vs []VariantResult, title string) {
	fmt.Fprintln(w, title)
	rows := [][]string{{"variant", "AFR%", "energy", "mean resp", "transitions", "migrations"}}
	for _, v := range vs {
		var trans int
		for _, d := range v.Result.PerDisk {
			trans += d.Transitions
		}
		rows = append(rows, []string{
			v.Label,
			fmt.Sprintf("%.3f", v.Result.ArrayAFR),
			formatMetric(MetricEnergy, v.Result.EnergyJ),
			formatMetric(MetricResponse, v.Result.MeanResponse),
			fmt.Sprintf("%d", trans),
			fmt.Sprintf("%d", v.Result.Migrations),
		})
	}
	writeAligned(w, rows)
}

package experiment

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/reliability"
)

func tinyAblation() AblationConfig {
	return AblationConfig{Disks: 6, Scale: 0.004}
}

func TestTransitionCapAblation(t *testing.T) {
	res, err := TransitionCapAblation(tinyAblation(), []int{5, 1600})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("variants = %d", len(res))
	}
	if res[0].Label != "S=5" || res[1].Label != "S=1600" {
		t.Fatalf("labels: %v, %v", res[0].Label, res[1].Label)
	}
	// A looser cap can never yield fewer transitions than a tight one on
	// the same trace.
	trans := func(v VariantResult) int {
		total := 0
		for _, d := range v.Result.PerDisk {
			total += d.Transitions
		}
		return total
	}
	if trans(res[1]) < trans(res[0]) {
		t.Fatalf("S=1600 made fewer transitions (%d) than S=5 (%d)",
			trans(res[1]), trans(res[0]))
	}
	// Defaults path.
	if _, err := TransitionCapAblation(tinyAblation(), nil); err != nil {
		t.Fatal(err)
	}
}

func TestREADDesignAblation(t *testing.T) {
	res, err := READDesignAblation(tinyAblation())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("variants = %d", len(res))
	}
	byLabel := map[string]VariantResult{}
	for _, v := range res {
		byLabel[v.Label] = v
	}
	full := byLabel["read (full)"].Result
	noMig := byLabel["no migration"].Result
	if noMig.Migrations != 0 {
		t.Fatalf("no-migration variant migrated %d times", noMig.Migrations)
	}
	if full.Requests != noMig.Requests {
		t.Fatal("variants served different request counts")
	}
	drpm := byLabel["no cap (DRPM-like)"].Result
	if drpm.ArrayAFR < full.ArrayAFR {
		t.Fatalf("uncapped DRPM AFR %.2f below capped READ %.2f", drpm.ArrayAFR, full.ArrayAFR)
	}
}

func TestBaselinePanelAblation(t *testing.T) {
	res, err := BaselinePanelAblation(tinyAblation())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 6 {
		t.Fatalf("variants = %d", len(res))
	}
	var buf bytes.Buffer
	RenderVariants(&buf, res, "panel")
	out := buf.String()
	for _, want := range []string{"panel", "read-replica", "drpm", "AFR%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("panel output missing %q:\n%s", want, out)
		}
	}
}

// TestEq3ReadingRobustness verifies the reproduction's central orderings
// survive the alternative (literal OCR) reading of the paper's scrambled
// Equation 3: READ must still have the lowest array AFR under both
// frequency functions — only the magnitudes may move.
func TestEq3ReadingRobustness(t *testing.T) {
	base := DefaultSweepConfig()
	base.Scale = 0.01
	base.DiskCounts = []int{10, 16}

	for _, variant := range []struct {
		name  string
		press *reliability.Model
	}{
		{"reconstructed", reliability.NewModel()},
		{"ocr-literal", reliability.NewModel(
			reliability.WithFreqFunction(reliability.PaperEq3OCRQuadratic()))},
	} {
		cfg := base
		cfg.Press = variant.press
		res, err := RunSweep(cfg)
		if err != nil {
			t.Fatalf("%s: %v", variant.name, err)
		}
		series, _, err := res.Series(MetricAFR)
		if err != nil {
			t.Fatal(err)
		}
		for i := range series[KindREAD] {
			if series[KindREAD][i] > series[KindMAID][i]+1e-9 {
				t.Errorf("%s: READ AFR %.3f above MAID %.3f at index %d",
					variant.name, series[KindREAD][i], series[KindMAID][i], i)
			}
			if series[KindREAD][i] > series[KindPDC][i]+1e-9 {
				t.Errorf("%s: READ AFR %.3f above PDC %.3f at index %d",
					variant.name, series[KindREAD][i], series[KindPDC][i], i)
			}
		}
	}
}

func TestIntensityScan(t *testing.T) {
	pts, err := IntensityScan(AblationConfig{Disks: 4, Scale: 0.003},
		[]float64{1, 4}, []PolicyKind{KindREAD, KindPDC})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d, want 4", len(pts))
	}
	// Higher intensity must raise the worst-disk utilization for the same
	// policy.
	byKey := map[string]IntensityPoint{}
	for _, p := range pts {
		byKey[string(p.Policy)+"@"+trimFloat(p.Intensity)] = p
	}
	if byKey["pdc@4"].WorstUtil <= byKey["pdc@1"].WorstUtil {
		t.Fatalf("PDC worst util did not grow with intensity: %v vs %v",
			byKey["pdc@4"].WorstUtil, byKey["pdc@1"].WorstUtil)
	}
	var buf bytes.Buffer
	RenderIntensityScan(&buf, pts, "calibration")
	if !strings.Contains(buf.String(), "worst util") {
		t.Fatal("render missing header")
	}
	// Defaults path.
	if _, err := IntensityScan(AblationConfig{Disks: 4, Scale: 0.002}, nil, nil); err != nil {
		t.Fatal(err)
	}
}

func trimFloat(v float64) string {
	if v == float64(int(v)) {
		return fmt.Sprintf("%d", int(v))
	}
	return fmt.Sprintf("%g", v)
}

package experiment

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/runstore"
)

// FleetManifestConfig is the digested configuration block of one fleet sweep
// condition. Execution knobs (Parallelism, CellAttempts, RetryBaseDelay,
// Progress, Track, TraceDecisions) are deliberately excluded: they never
// change results.
type FleetManifestConfig struct {
	ArrayCounts       []int                   `json:"array_counts"`
	Routings          []cluster.RoutingPolicy `json:"routings"`
	Policies          []PolicyKind            `json:"policies"`
	Replicas          int                     `json:"replicas"`
	Racks             int                     `json:"racks"`
	EnclosuresPerRack int                     `json:"enclosures_per_rack"`
	Disks             int                     `json:"disks"`
	Workload          map[string]any          `json:"workload"`
	Scale             float64                 `json:"scale"`
	Intensity         float64                 `json:"intensity"`
	EpochSeconds      float64                 `json:"epoch_seconds,omitempty"`
	EpochsPerTrace    int                     `json:"epochs_per_trace,omitempty"`

	DeadlineSeconds      float64 `json:"deadline_seconds,omitempty"`
	MaxAttempts          int     `json:"max_attempts,omitempty"`
	RetryBaseSeconds     float64 `json:"retry_base_seconds,omitempty"`
	RetryCapSeconds      float64 `json:"retry_cap_seconds,omitempty"`
	RetryJitterFrac      float64 `json:"retry_jitter_frac,omitempty"`
	HedgeAfterP99Mult    float64 `json:"hedge_after_p99_mult,omitempty"`
	HedgeFallbackSeconds float64 `json:"hedge_fallback_seconds,omitempty"`
	MaxBacklog           int     `json:"max_backlog,omitempty"`
	Seed                 int64   `json:"seed,omitempty"`

	Shocks     map[string]any `json:"shocks,omitempty"`
	Faults     map[string]any `json:"faults,omitempty"`
	Spares     int            `json:"spares,omitempty"`
	StallLimit uint64         `json:"stall_limit,omitempty"`
}

// FleetManifest condenses one finished fleet sweep condition into a runstore
// manifest: the digested configuration, an aggregate summary with the fleet
// resilience counters, and every cell's headline metrics flattened into
// Summary.Extra under "cell.fleet.<policy>.<routing>.<arrays>.<metric>" keys,
// so arrayreport diff compares fleets cell by cell.
func FleetManifest(name string, cfg FleetSweepConfig, res *FleetSweepResult) (*runstore.Manifest, error) {
	m, err := newFleetManifest(name, cfg)
	if err != nil {
		return nil, err
	}
	cfg.setDefaults()

	faultsOn := cfg.Faults != nil && cfg.Faults.Enabled
	var sum runstore.Summary
	sum.Extra = make(map[string]float64, 8*len(res.Cells))
	status := string(CellOK)
	okCells := 0
	perfCells := make(map[string]runstore.PerfSample)
	for _, c := range res.Cells {
		prefix := "cell." + c.Key() + "."
		if c.Perf != nil {
			perfCells[c.Key()] = *c.Perf
		}
		if c.Attempts > 0 {
			sum.Extra[prefix+"attempts"] = float64(c.Attempts)
		}
		if c.Status == CellFailed || c.Result == nil {
			sum.Extra[prefix+"failed"] = 1
			status = string(CellFailed)
			continue
		}
		if c.Status == CellRetried && status != string(CellFailed) {
			status = string(CellRetried)
		}
		okCells++
		cs := FleetSummary(c.Result, faultsOn)
		sum.EnergyJ += cs.EnergyJ
		sum.ArrayAFRPct += cs.ArrayAFRPct
		sum.MeanResponseS += cs.MeanResponseS
		sum.P50ResponseS += cs.P50ResponseS
		sum.P95ResponseS += cs.P95ResponseS
		sum.P99ResponseS += cs.P99ResponseS
		sum.P999ResponseS += cs.P999ResponseS
		if cs.MaxResponseS > sum.MaxResponseS {
			sum.MaxResponseS = cs.MaxResponseS
		}
		sum.TransitionsPerDay += cs.TransitionsPerDay
		sum.Requests += cs.Requests
		sum.EventsFired += cs.EventsFired
		sum.FleetOn = true
		sum.FleetArrays += cs.FleetArrays
		sum.FleetServed += cs.FleetServed
		sum.FleetRetries += cs.FleetRetries
		sum.FleetHedges += cs.FleetHedges
		sum.FleetHedgeWins += cs.FleetHedgeWins
		sum.FleetFailovers += cs.FleetFailovers
		sum.FleetTimeouts += cs.FleetTimeouts
		sum.FleetDeferred += cs.FleetDeferred
		sum.FleetShed += cs.FleetShed
		sum.FleetFailedRequests += cs.FleetFailedRequests
		sum.FleetShocks += cs.FleetShocks
		sum.FleetLostRequests += cs.FleetLostRequests
		if faultsOn {
			sum.FaultsOn = true
			sum.DiskFailures += cs.DiskFailures
			sum.DataLossEvents += cs.DataLossEvents
		}
		sum.Extra[prefix+"energy_j"] = cs.EnergyJ
		sum.Extra[prefix+"worst_afr_pct"] = cs.ArrayAFRPct
		sum.Extra[prefix+"mean_response_s"] = cs.MeanResponseS
		sum.Extra[prefix+"p99_response_s"] = cs.P99ResponseS
		sum.Extra[prefix+"events_fired"] = cs.EventsFired
		sum.Extra[prefix+"served"] = cs.FleetServed
		sum.Extra[prefix+"retries"] = cs.FleetRetries
		sum.Extra[prefix+"hedges"] = cs.FleetHedges
		sum.Extra[prefix+"hedge_wins"] = cs.FleetHedgeWins
		sum.Extra[prefix+"failovers"] = cs.FleetFailovers
		sum.Extra[prefix+"timeouts"] = cs.FleetTimeouts
		sum.Extra[prefix+"deferred"] = cs.FleetDeferred
		sum.Extra[prefix+"shed"] = cs.FleetShed
		sum.Extra[prefix+"failed_requests"] = cs.FleetFailedRequests
		sum.Extra[prefix+"shocks"] = cs.FleetShocks
		sum.Extra[prefix+"lost_requests"] = cs.FleetLostRequests
		if faultsOn {
			sum.Extra[prefix+"disk_failures"] = cs.DiskFailures
			sum.Extra[prefix+"data_loss_events"] = cs.DataLossEvents
		}
	}
	// Intensive metrics average over completed cells; energy, requests,
	// events, and every counter stay extensive (sums).
	if n := float64(okCells); n > 0 {
		sum.ArrayAFRPct /= n
		sum.MeanResponseS /= n
		sum.P50ResponseS /= n
		sum.P95ResponseS /= n
		sum.P99ResponseS /= n
		sum.P999ResponseS /= n
		sum.TransitionsPerDay /= n
	}
	m.Summary = sum
	m.Status = status
	if len(perfCells) > 0 {
		m.Perf = &runstore.Perf{Cells: perfCells}
	}
	return m, nil
}

// newFleetManifest builds the manifest shell — digested config, seed, axes —
// without the summary block, shared by FleetManifest and FleetManifestID.
func newFleetManifest(name string, cfg FleetSweepConfig) (*runstore.Manifest, error) {
	cfg.setDefaults()
	mc := FleetManifestConfig{
		ArrayCounts:          cfg.ArrayCounts,
		Routings:             cfg.Routings,
		Policies:             cfg.Policies,
		Replicas:             cfg.Replicas,
		Racks:                cfg.Racks,
		EnclosuresPerRack:    cfg.EnclosuresPerRack,
		Disks:                cfg.Disks,
		Workload:             asMap(cfg.Workload),
		Scale:                cfg.Scale,
		Intensity:            cfg.Intensity,
		EpochSeconds:         cfg.EpochSeconds,
		EpochsPerTrace:       cfg.EpochsPerTrace,
		DeadlineSeconds:      cfg.DeadlineSeconds,
		MaxAttempts:          cfg.MaxAttempts,
		RetryBaseSeconds:     cfg.RetryBaseSeconds,
		RetryCapSeconds:      cfg.RetryCapSeconds,
		RetryJitterFrac:      cfg.RetryJitterFrac,
		HedgeAfterP99Mult:    cfg.HedgeAfterP99Mult,
		HedgeFallbackSeconds: cfg.HedgeFallbackSeconds,
		MaxBacklog:           cfg.MaxBacklog,
		Seed:                 cfg.Seed,
		Spares:               cfg.Spares,
		StallLimit:           cfg.StallLimit,
	}
	if cfg.Shocks.Active() {
		mc.Shocks = asMap(cfg.Shocks)
	}
	if cfg.Faults != nil {
		mc.Faults = asMap(*cfg.Faults)
	}
	m, err := runstore.New("experiments", name, mc)
	if err != nil {
		return nil, err
	}
	m.Seed = cfg.Workload.Seed
	m.Policy = policyList(cfg.Policies)
	m.Workload = fmt.Sprintf("fleet scale %g intensity %g", cfg.Scale, cfg.Intensity)
	return m, nil
}

// FleetManifestID computes the run-store ID a fleet sweep condition would be
// recorded under, without running it; the resumable driver uses it to skip
// already-recorded conditions.
func FleetManifestID(name string, cfg FleetSweepConfig) (string, error) {
	m, err := newFleetManifest(name, cfg)
	if err != nil {
		return "", err
	}
	return m.ID(), nil
}

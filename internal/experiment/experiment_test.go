package experiment

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/reliability"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// tinySweep returns a fast two-point sweep config for tests.
func tinySweep() SweepConfig {
	cfg := DefaultSweepConfig()
	cfg.Scale = 0.004 // ~6k requests
	cfg.DiskCounts = []int{4, 6}
	return cfg
}

func TestNewPolicyAllKinds(t *testing.T) {
	for _, k := range []PolicyKind{KindREAD, KindMAID, KindPDC, KindAlwaysOn, KindDRPM} {
		p, err := NewPolicy(k)
		if err != nil {
			t.Errorf("%s: %v", k, err)
			continue
		}
		if p.Name() == "" {
			t.Errorf("%s: empty name", k)
		}
	}
	if _, err := NewPolicy("bogus"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestSweepConfigValidate(t *testing.T) {
	cfg := tinySweep()
	cfg.setDefaults()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := cfg
	bad.Scale = 0
	if bad.Validate() == nil {
		t.Error("zero scale accepted")
	}
	bad = cfg
	bad.Scale = 2
	if bad.Validate() == nil {
		t.Error("scale above 1 accepted")
	}
	bad = cfg
	bad.Intensity = -1
	if bad.Validate() == nil {
		t.Error("negative intensity accepted")
	}
	bad = cfg
	bad.DiskCounts = []int{1}
	if bad.Validate() == nil {
		t.Error("single-disk sweep accepted")
	}
	bad = cfg
	bad.Policies = []PolicyKind{"nope"}
	if bad.Validate() == nil {
		t.Error("unknown policy accepted")
	}
}

func TestRunSweepProducesFullGrid(t *testing.T) {
	res, err := RunSweep(tinySweep())
	if err != nil {
		t.Fatal(err)
	}
	want := len(res.Config.DiskCounts) * len(res.Config.Policies)
	if len(res.Cells) != want {
		t.Fatalf("cells = %d, want %d", len(res.Cells), want)
	}
	for _, c := range res.Cells {
		if c.Result == nil {
			t.Fatalf("cell %d/%s has nil result", c.Disks, c.Policy)
		}
		if c.Result.Requests == 0 {
			t.Fatalf("cell %d/%s served no requests", c.Disks, c.Policy)
		}
	}
}

// The ops-plane tracker is observation-only: a tracked sweep produces the
// same grid, every cell ends done, per-cell perf samples are recorded, and
// the manifest carries them in its perf section without touching Summary.
func TestRunSweepWithTrackerRecordsLifecycleAndPerf(t *testing.T) {
	cfg := tinySweep()
	track := telemetry.NewSweepTracker(cfg.CellKeys(), cfg.Parallelism)
	cfg.Track = track
	res, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := track.Snapshot()
	if snap.Total != len(res.Cells) || snap.Done != len(res.Cells) {
		t.Fatalf("tracker sees %d/%d done, want %d/%d", snap.Done, snap.Total, len(res.Cells), len(res.Cells))
	}
	if snap.ETASeconds != 0 {
		t.Errorf("finished sweep ETA = %v, want 0", snap.ETASeconds)
	}
	for _, c := range res.Cells {
		if c.Perf == nil {
			t.Fatalf("cell %s has no perf sample", c.Key())
		}
		if c.Perf.Events != float64(c.Result.EventsFired) {
			t.Errorf("cell %s perf events %v != result events %d", c.Key(), c.Perf.Events, c.Result.EventsFired)
		}
		if c.Perf.WallSeconds <= 0 {
			t.Errorf("cell %s perf wall %v", c.Key(), c.Perf.WallSeconds)
		}
	}

	m, err := SweepManifest("track-test", cfg, res)
	if err != nil {
		t.Fatal(err)
	}
	if m.Perf == nil || len(m.Perf.Cells) != len(res.Cells) {
		t.Fatalf("manifest perf cells = %v, want %d entries", m.Perf, len(res.Cells))
	}
	for _, c := range res.Cells {
		if _, ok := m.Perf.Cells[c.Key()]; !ok {
			t.Errorf("manifest perf missing cell %s", c.Key())
		}
	}
	// Perf must not leak into the diffed metric set.
	for k := range m.Summary.Metrics() {
		if strings.Contains(k, "wall") || strings.Contains(k, "alloc") || strings.Contains(k, "gc_") {
			t.Errorf("perf-looking metric %q in diffed summary", k)
		}
	}
}

// A tracked sweep and an untracked sweep of the same config remain
// bit-identical — the ops plane never perturbs results.
func TestSweepTrackerOnOffResultsIdentical(t *testing.T) {
	cfg := tinySweep()
	plain, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tracked := tinySweep()
	tracked.Track = telemetry.NewSweepTracker(tracked.CellKeys(), 2)
	got, err := RunSweep(tracked)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Cells {
		if !reflect.DeepEqual(plain.Cells[i].Result, got.Cells[i].Result) {
			t.Fatalf("cell %s diverged under tracking", plain.Cells[i].Key())
		}
	}
}

func TestSweepSeriesAndImprovements(t *testing.T) {
	res, err := RunSweep(tinySweep())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Metric{MetricAFR, MetricEnergy, MetricResponse} {
		series, disks, err := res.Series(m)
		if err != nil {
			t.Fatal(err)
		}
		if len(disks) != 2 || disks[0] != 4 || disks[1] != 6 {
			t.Fatalf("disks axis = %v", disks)
		}
		for p, vals := range series {
			for i, v := range vals {
				if v <= 0 {
					t.Errorf("%s/%s at %d disks: value %v", p, m, disks[i], v)
				}
			}
		}
	}
	imp, err := res.ImprovementOver(MetricAFR, KindREAD, KindPDC)
	if err != nil {
		t.Fatal(err)
	}
	if imp.Base != KindREAD || imp.Other != KindPDC {
		t.Fatal("improvement labels wrong")
	}
	if _, err := res.ImprovementOver(MetricAFR, "nope", KindPDC); err == nil {
		t.Fatal("unknown base accepted")
	}
	if _, err := res.ImprovementOver("bogus", KindREAD, KindPDC); err == nil {
		t.Fatal("unknown metric accepted")
	}
}

func TestMetricValue(t *testing.T) {
	res, err := RunSweep(tinySweep())
	if err != nil {
		t.Fatal(err)
	}
	r := res.Cells[0].Result
	if v, err := MetricAFR.Value(r); err != nil || v != r.ArrayAFR {
		t.Fatal("MetricAFR mismatch")
	}
	if v, err := MetricEnergy.Value(r); err != nil || v != r.EnergyJ {
		t.Fatal("MetricEnergy mismatch")
	}
	if v, err := MetricResponse.Value(r); err != nil || v != r.MeanResponse {
		t.Fatal("MetricResponse mismatch")
	}
}

func TestReliabilityFunctionFigures(t *testing.T) {
	m := reliability.NewModel()
	f2, err := Fig2bTemperatureFunction(m, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(f2) != 7 || f2[0].X != 20 || f2[6].X != 50 {
		t.Fatalf("Fig2b axis wrong: %+v", f2)
	}
	f3, err := Fig3bUtilizationFunction(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if f3[0].X != 0.25 || f3[3].X != 1.0 {
		t.Fatalf("Fig3b axis wrong: %+v", f3)
	}
	f4, err := Fig4bFrequencyFunction(m, 5)
	if err != nil {
		t.Fatal(err)
	}
	if f4[4].X != 1600 {
		t.Fatalf("Fig4b axis wrong: %+v", f4)
	}
	f4a, err := Fig4aIDEMAAdder(m, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f4 {
		if math.Abs(f4a[i].AFR-2*f4[i].AFR) > 1e-12 {
			t.Fatalf("Fig4a is not double Fig4b at %v", f4[i].X)
		}
	}
	if _, err := Fig2bTemperatureFunction(m, 1); err == nil {
		t.Fatal("degenerate sampling accepted")
	}
}

func TestFig5Surfaces(t *testing.T) {
	m := reliability.NewModel()
	a, b, err := Fig5Surfaces(m, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("surface sizes %d, %d", len(a), len(b))
	}
	for i := range a {
		if b[i].AFR <= a[i].AFR {
			t.Fatal("50C surface not above 40C surface")
		}
	}
}

func TestDerivationConstants(t *testing.T) {
	d := DerivationConstants()
	if math.Abs(d.DailyBudget5yr-65) > 2 {
		t.Fatalf("daily budget = %v", d.DailyBudget5yr)
	}
}

func TestRenderers(t *testing.T) {
	res, err := RunSweep(tinySweep())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderSweepTable(&buf, res, MetricAFR, "Fig 7a"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Fig 7a") || !strings.Contains(out, "read") {
		t.Fatalf("table missing content:\n%s", out)
	}
	buf.Reset()
	if err := RenderSweepTable(&buf, res, MetricEnergy, "e"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "kJ") && !strings.Contains(buf.String(), "MJ") {
		t.Fatal("energy units missing")
	}
	buf.Reset()
	if err := RenderImprovements(&buf, res, MetricAFR, KindREAD); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "read vs") {
		t.Fatal("improvements missing")
	}
	buf.Reset()
	pts, _ := Fig2bTemperatureFunction(reliability.NewModel(), 4)
	RenderFunctionTable(&buf, pts, "tempC", "Fig 2b")
	if !strings.Contains(buf.String(), "tempC") {
		t.Fatal("function table missing header")
	}
	buf.Reset()
	sp, _, err := Fig5Surfaces(reliability.NewModel(), 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	RenderSurfaceTable(&buf, sp, "Fig 5a")
	if !strings.Contains(buf.String(), "util\\freq") {
		t.Fatal("surface table missing header")
	}
	buf.Reset()
	RenderDerivation(&buf, DerivationConstants())
	if !strings.Contains(buf.String(), "118529") {
		t.Fatal("derivation table missing paper constant")
	}
}

func TestCSVWriters(t *testing.T) {
	res, err := RunSweep(tinySweep())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSweepCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(res.Cells) {
		t.Fatalf("CSV rows = %d, want %d", len(lines), 1+len(res.Cells))
	}
	if !strings.HasPrefix(lines[0], "disks,policy") {
		t.Fatalf("CSV header: %s", lines[0])
	}
	buf.Reset()
	pts, _ := Fig4bFrequencyFunction(reliability.NewModel(), 3)
	if err := WriteFunctionCSV(&buf, pts, "freq"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "freq,afr_percent") {
		t.Fatal("function CSV header wrong")
	}
}

func TestSweepDeterminism(t *testing.T) {
	a, err := RunSweep(tinySweep())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSweep(tinySweep())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Cells {
		ra, rb := a.Cells[i].Result, b.Cells[i].Result
		if ra.ArrayAFR != rb.ArrayAFR || ra.EnergyJ != rb.EnergyJ || ra.MeanResponse != rb.MeanResponse {
			t.Fatalf("cell %d differs across identical sweeps", i)
		}
	}
}

// TestSweepWorkerCountIdentity pins the worker pool's core contract: the
// sweep grid is bit-identical for every worker count. Everything except the
// wall-clock perf sample — results, decision logs, statuses, attempt counts
// — must deep-compare equal between a sequential run and a pooled one.
func TestSweepWorkerCountIdentity(t *testing.T) {
	seq := tinySweep()
	seq.Parallelism = 1
	par := tinySweep()
	par.Parallelism = 4

	a, err := RunSweep(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSweep(par)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("grid sizes differ: %d vs %d", len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		ca, cb := a.Cells[i], b.Cells[i]
		// Perf carries wall-clock readings, the one legitimately
		// nondeterministic field; everything else must match exactly.
		ca.Perf, cb.Perf = nil, nil
		if !reflect.DeepEqual(ca, cb) {
			t.Errorf("cell %d (disks=%d policy=%s) differs between -workers=1 and -workers=4", i, ca.Disks, ca.Policy)
		}
	}
}

// TestPaperShapeCriteria is the executable statement of the reproduction
// targets: on the light-workload sweep READ must win all three metrics on
// average, with AFR improvements in the paper's tens-of-percent range.
func TestPaperShapeCriteria(t *testing.T) {
	if testing.Short() {
		t.Skip("shape criteria sweep in -short mode")
	}
	cfg := DefaultSweepConfig()
	cfg.Scale = 0.02
	cfg.DiskCounts = []int{6, 10, 16}
	res, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Metric{MetricAFR, MetricEnergy, MetricResponse} {
		for _, other := range []PolicyKind{KindMAID, KindPDC} {
			imp, err := res.ImprovementOver(m, KindREAD, other)
			if err != nil {
				t.Fatal(err)
			}
			if imp.MeanPercent <= 0 {
				t.Errorf("READ does not beat %s on %s (mean %.1f%%)", other, m, imp.MeanPercent)
			}
		}
	}
	afrMAID, _ := res.ImprovementOver(MetricAFR, KindREAD, KindMAID)
	afrPDC, _ := res.ImprovementOver(MetricAFR, KindREAD, KindPDC)
	if afrMAID.MeanPercent < 10 || afrMAID.MeanPercent > 60 {
		t.Errorf("READ vs MAID AFR improvement %.1f%% outside the paper's band", afrMAID.MeanPercent)
	}
	if afrPDC.MeanPercent < 10 || afrPDC.MeanPercent > 70 {
		t.Errorf("READ vs PDC AFR improvement %.1f%% outside the paper's band", afrPDC.MeanPercent)
	}
}

func TestScaledPhasePreservation(t *testing.T) {
	// RunSweep at reduced scale must still produce multiple popularity
	// phases; this is a regression guard for scale-invariant churn.
	cfg := tinySweep()
	wl := cfg.Workload
	if wl.PhaseSeconds == 0 {
		t.Skip("no churn configured")
	}
	scaled, err := wl.Scaled(cfg.Scale)
	if err != nil {
		t.Fatal(err)
	}
	scaled.PhaseSeconds = wl.PhaseSeconds * cfg.Scale
	duration := float64(scaled.NumRequests) * scaled.MeanInterarrival
	phases := duration / scaled.PhaseSeconds
	wantPhases := float64(workload.DefaultGenConfig().NumRequests) * wl.MeanInterarrival / wl.PhaseSeconds
	if math.Abs(phases-wantPhases) > 1 {
		t.Fatalf("scaled run has %.1f phases, full run %.1f", phases, wantPhases)
	}
}

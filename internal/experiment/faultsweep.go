package experiment

// The fault sweep is the experiment the fault-injection subsystem exists
// for: the same policy comparison as Figure 7, but with Weibull failures
// (hazard-scaled by each disk's live PRESS AFR) actually injected, so the
// policies are compared on energy consumed AND data loss observed — the
// paper's trade-off measured on both sides instead of predicted on one.

import (
	"fmt"
	"io"

	"repro/internal/faults"
	"repro/internal/workload"
)

// FaultSweepAcceleration compresses the reliability timescale for the
// default fault sweep so that a trace lasting minutes of virtual time sees
// a handful of decade-scale Weibull failures per array. At 2×10^5 — with
// PRESS scaling multiplying the base hazard by a further ~3-4× at the
// default operating points — the default interactive trace produces roughly
// one to three failures per cell across the 6-16 disk sweep.
const FaultSweepAcceleration = 2e5

// DefaultFaultSweepConfig returns the light-workload policy comparison with
// fault injection enabled: PRESS-scaled hazard, accelerated timescale, one
// hot spare, and default-paced rebuilds.
func DefaultFaultSweepConfig() SweepConfig {
	cfg := DefaultSweepConfig()
	fc := faults.Default()
	fc.Acceleration = FaultSweepAcceleration
	cfg.Faults = &fc
	cfg.Spares = 1
	return cfg
}

// RenderFaultSummary writes the observed-reliability account of a
// fault-injecting sweep: for every (array size, policy) cell, the energy
// consumed next to the failures observed and what they cost — the "is it
// worthwhile?" question with both sides measured.
func RenderFaultSummary(w io.Writer, s *SweepResult, title string) {
	fmt.Fprintf(w, "%s\n", title)
	rows := [][]string{{
		"disks", "policy", "energy", "failures", "spares", "dataloss",
		"lost", "degraded", "reassigned", "rebuild", "MTTDL",
	}}
	for _, c := range s.Cells {
		r := c.Result
		if r == nil {
			rows = append(rows, []string{
				fmt.Sprintf("%d", c.Disks), string(c.Policy),
				"FAILED", "-", "-", "-", "-", "-", "-", "-", "-",
			})
			continue
		}
		mttdl := "-"
		if r.MTTDLHours > 0 {
			mttdl = fmt.Sprintf("%.2f h", r.MTTDLHours)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", c.Disks),
			string(c.Policy),
			formatMetric(MetricEnergy, r.EnergyJ),
			fmt.Sprintf("%d", r.DiskFailures),
			fmt.Sprintf("%d", r.SparesUsed),
			fmt.Sprintf("%d", r.DataLossEvents),
			fmt.Sprintf("%d", r.LostRequests),
			fmt.Sprintf("%d", r.DegradedRequests),
			fmt.Sprintf("%d", r.ReassignedFiles),
			fmt.Sprintf("%.0f MB", r.RebuildMB),
			mttdl,
		})
	}
	writeAligned(w, rows)
}

// TraceStatsOf is a small convenience for callers that need the trace
// duration a sweep's workload implies (e.g. to report failures per
// simulated hour).
func TraceStatsOf(cfg SweepConfig) (workload.Stats, error) {
	cfg.setDefaults()
	wl := cfg.Workload
	var err error
	if cfg.Intensity != 1 {
		if wl, err = wl.WithIntensity(cfg.Intensity); err != nil {
			return workload.Stats{}, err
		}
	}
	if cfg.Scale != 1 {
		if wl, err = wl.Scaled(cfg.Scale); err != nil {
			return workload.Stats{}, err
		}
	}
	tr, err := workload.Generate(wl)
	if err != nil {
		return workload.Stats{}, err
	}
	return tr.ComputeStats()
}

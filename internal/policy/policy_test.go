package policy

import (
	"math"
	"testing"

	"repro/internal/array"
	"repro/internal/diskmodel"
	"repro/internal/workload"
)

func genTrace(t *testing.T, files, requests int, interarrival, alpha float64) *workload.Trace {
	t.Helper()
	cfg := workload.DefaultGenConfig()
	cfg.NumFiles = files
	cfg.NumRequests = requests
	cfg.MeanInterarrival = interarrival
	cfg.ZipfAlpha = alpha
	tr, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func run(t *testing.T, cfg array.Config) *array.Result {
	t.Helper()
	res, err := array.Run(cfg)
	if err != nil {
		t.Fatalf("%s: %v", cfg.Policy.Name(), err)
	}
	return res
}

func TestAlwaysOnNeverTransitions(t *testing.T) {
	tr := genTrace(t, 100, 5000, 0.01, 0.8)
	res := run(t, array.Config{Disks: 6, Trace: tr, Policy: NewAlwaysOn()})
	for _, d := range res.PerDisk {
		if d.Transitions != 0 {
			t.Fatalf("disk %d transitioned %d times", d.ID, d.Transitions)
		}
		if d.FinalSpeed != diskmodel.High {
			t.Fatalf("disk %d not at high speed", d.ID)
		}
	}
	if res.Requests != 5000 {
		t.Fatalf("served %d", res.Requests)
	}
}

func TestAlwaysOnBalancesLoad(t *testing.T) {
	tr := genTrace(t, 200, 20000, 0.005, 0.8)
	res := run(t, array.Config{Disks: 4, Trace: tr, Policy: NewAlwaysOn()})
	var lo, hi float64 = math.Inf(1), 0
	for _, d := range res.PerDisk {
		b := d.BusyTime
		if b < lo {
			lo = b
		}
		if b > hi {
			hi = b
		}
	}
	if lo <= 0 {
		t.Fatal("an always-on disk did no work")
	}
	if hi/lo > 3 {
		t.Fatalf("load imbalance %vx despite LPT placement", hi/lo)
	}
}

func TestMAIDCacheMechanics(t *testing.T) {
	// Repeatedly hit a small set of files: first access misses, the rest
	// hit the cache disk.
	files := workload.FileSet{
		{ID: 0, SizeMB: 1, AccessRate: 1},
		{ID: 1, SizeMB: 1, AccessRate: 1},
	}
	var reqs []workload.Request
	for i := 0; i < 40; i++ {
		reqs = append(reqs, workload.Request{Arrival: float64(i) * 2, FileID: i % 2})
	}
	tr := &workload.Trace{Files: files, Requests: reqs}
	m := NewMAID(MAIDConfig{CacheDisks: 1, CacheCapacityMB: 10})
	res := run(t, array.Config{Disks: 3, Trace: tr, Policy: m})
	if m.Misses() != 2 {
		t.Fatalf("misses = %d, want 2 (one per file)", m.Misses())
	}
	if m.Hits() != 38 {
		t.Fatalf("hits = %d, want 38", m.Hits())
	}
	if m.Copies() != 2 {
		t.Fatalf("copies = %d, want 2", m.Copies())
	}
	// Cache disk (0) served the hits.
	if res.PerDisk[0].RequestsServed < 38 {
		t.Fatalf("cache disk served %d", res.PerDisk[0].RequestsServed)
	}
	// Cache disk never transitions.
	if res.PerDisk[0].Transitions != 0 {
		t.Fatal("cache disk transitioned")
	}
}

func TestMAIDStorageDisksSpinDown(t *testing.T) {
	// One early burst, then silence long enough for storage disks to pass
	// their idleness threshold.
	files := workload.FileSet{{ID: 0, SizeMB: 1, AccessRate: 1}}
	reqs := []workload.Request{
		{Arrival: 1, FileID: 0},
		{Arrival: 500, FileID: 0}, // cache hit; storage disks stay asleep
	}
	tr := &workload.Trace{Files: files, Requests: reqs}
	m := NewMAID(MAIDConfig{CacheDisks: 1, IdleThreshold: 50})
	res := run(t, array.Config{Disks: 3, Trace: tr, Policy: m})
	spunDown := 0
	for _, d := range res.PerDisk[1:] {
		if d.Transitions > 0 && d.FinalSpeed == diskmodel.Low {
			spunDown++
		}
	}
	if spunDown == 0 {
		t.Fatal("no storage disk spun down")
	}
}

func TestMAIDEvictionUnderTinyCache(t *testing.T) {
	// Cache holds ~1 file; alternating requests force evictions but the
	// policy must stay correct (every request served).
	files := workload.FileSet{
		{ID: 0, SizeMB: 1, AccessRate: 1},
		{ID: 1, SizeMB: 1, AccessRate: 1},
		{ID: 2, SizeMB: 1, AccessRate: 1},
	}
	var reqs []workload.Request
	for i := 0; i < 60; i++ {
		reqs = append(reqs, workload.Request{Arrival: float64(i), FileID: i % 3})
	}
	tr := &workload.Trace{Files: files, Requests: reqs}
	m := NewMAID(MAIDConfig{CacheDisks: 1, CacheCapacityMB: 1.5})
	res := run(t, array.Config{Disks: 3, Trace: tr, Policy: m})
	if res.Requests != 60 {
		t.Fatalf("served %d, want 60", res.Requests)
	}
	if m.Copies() <= 3 {
		t.Fatalf("copies = %d, want churn from evictions", m.Copies())
	}
}

func TestMAIDUncacheableFile(t *testing.T) {
	// A file larger than the cache capacity must bypass admission.
	files := workload.FileSet{{ID: 0, SizeMB: 10, AccessRate: 1}}
	var reqs []workload.Request
	for i := 0; i < 5; i++ {
		reqs = append(reqs, workload.Request{Arrival: float64(i * 30), FileID: 0})
	}
	tr := &workload.Trace{Files: files, Requests: reqs}
	m := NewMAID(MAIDConfig{CacheDisks: 1, CacheCapacityMB: 5})
	run(t, array.Config{Disks: 2, Trace: tr, Policy: m})
	if m.Copies() != 0 {
		t.Fatalf("uncacheable file copied %d times", m.Copies())
	}
	if m.Hits() != 0 {
		t.Fatal("phantom cache hits")
	}
}

func TestMAIDRejectsAllCacheArray(t *testing.T) {
	tr := genTrace(t, 10, 10, 0.1, 0.5)
	_, err := array.Run(array.Config{Disks: 2, Trace: tr, Policy: NewMAID(MAIDConfig{CacheDisks: 2})})
	if err == nil {
		t.Fatal("MAID with no storage disks accepted")
	}
}

func TestPDCConcentratesLoad(t *testing.T) {
	tr := genTrace(t, 300, 20000, 0.005, 0.9)
	res := run(t, array.Config{Disks: 6, Trace: tr, Policy: NewPDC(PDCConfig{}), EpochSeconds: 30})
	// Disk 0 must be the busiest; the last disk nearly idle.
	if res.PerDisk[0].BusyTime <= res.PerDisk[5].BusyTime {
		t.Fatalf("no concentration: disk0 busy %v vs disk5 %v",
			res.PerDisk[0].BusyTime, res.PerDisk[5].BusyTime)
	}
	if res.PerDisk[0].Utilization < 1.5*res.PerDisk[5].Utilization {
		t.Fatalf("weak skew: %v vs %v", res.PerDisk[0].Utilization, res.PerDisk[5].Utilization)
	}
}

func TestPDCTailDisksSpinDown(t *testing.T) {
	files := workload.FileSet{
		{ID: 0, SizeMB: 0.01, AccessRate: 10}, // hot
		{ID: 1, SizeMB: 0.01, AccessRate: 0.001},
	}
	var reqs []workload.Request
	for i := 0; i < 2000; i++ {
		reqs = append(reqs, workload.Request{Arrival: float64(i) * 0.1, FileID: 0})
	}
	tr := &workload.Trace{Files: files, Requests: reqs}
	res := run(t, array.Config{Disks: 3, Trace: tr, Policy: NewPDC(PDCConfig{IdleThreshold: 40})})
	// The unaccessed tail disks must be at low speed by the end.
	low := 0
	for _, d := range res.PerDisk[1:] {
		if d.FinalSpeed == diskmodel.Low {
			low++
		}
	}
	if low == 0 {
		t.Fatal("no tail disk at low speed")
	}
}

func TestPDCSpinsUpUnderQueueing(t *testing.T) {
	// A burst against a spun-down disk must trigger a spin-up once the
	// queue passes the threshold.
	files := workload.FileSet{{ID: 0, SizeMB: 2, AccessRate: 0.001}}
	var reqs []workload.Request
	// Long silence to let the disk sink, then a dense burst.
	for i := 0; i < 50; i++ {
		reqs = append(reqs, workload.Request{Arrival: 200 + float64(i)*0.01, FileID: 0})
	}
	tr := &workload.Trace{Files: files, Requests: reqs}
	res := run(t, array.Config{Disks: 2, Trace: tr, Policy: NewPDC(PDCConfig{IdleThreshold: 30, SpinUpQueue: 2})})
	if res.PerDisk[0].Transitions < 2 {
		t.Fatalf("disk 0 transitions = %d, want down+up", res.PerDisk[0].Transitions)
	}
	if res.PerDisk[0].FinalSpeed != diskmodel.High {
		t.Fatal("disk 0 not spun up by burst")
	}
}

func TestPDCEpochMigration(t *testing.T) {
	// File 1 becomes hot after t=100; PDC must migrate it toward disk 0.
	files := workload.FileSet{
		{ID: 0, SizeMB: 0.01, AccessRate: 5},
		{ID: 1, SizeMB: 0.01, AccessRate: 0.0001},
	}
	var reqs []workload.Request
	for i := 0; i < 500; i++ {
		reqs = append(reqs, workload.Request{Arrival: float64(i) * 0.2, FileID: 0})
	}
	for i := 0; i < 3000; i++ {
		reqs = append(reqs, workload.Request{Arrival: 100 + float64(i)*0.05, FileID: 1})
	}
	tr := &workload.Trace{Files: files, Requests: reqs}
	p := NewPDC(PDCConfig{LoadFraction: 0.0001}) // force separate disks
	run(t, array.Config{Disks: 3, Trace: tr, Policy: p, EpochSeconds: 50})
	if p.MigrationsRequested() == 0 {
		t.Fatal("PDC never migrated despite popularity flip")
	}
}

func TestREADZonesAndPlacement(t *testing.T) {
	tr := genTrace(t, 200, 1000, 0.05, 0.8)
	r := NewREAD(READConfig{})
	res := run(t, array.Config{Disks: 8, Trace: tr, Policy: r})
	hd := r.HotDisks()
	if hd < 1 || hd > 7 {
		t.Fatalf("hot disks = %d", hd)
	}
	if r.Theta() <= 0 || r.Theta() >= 1 {
		t.Fatalf("theta = %v", r.Theta())
	}
	// Cold zone ends at low speed (it started there and nothing forced it
	// up); the hot zone handled nearly all traffic.
	var hotReqs, coldReqs int
	for i, d := range res.PerDisk {
		if i < hd {
			hotReqs += d.RequestsServed
		} else {
			coldReqs += d.RequestsServed
		}
	}
	if hotReqs <= coldReqs {
		t.Fatalf("hot zone served %d, cold %d; skew inverted", hotReqs, coldReqs)
	}
}

func TestREADTransitionBudgetRespected(t *testing.T) {
	// A pathological on/off workload that tempts constant switching; READ
	// must keep each disk's daily transitions at or under S.
	files := workload.FileSet{{ID: 0, SizeMB: 0.1, AccessRate: 1}}
	var reqs []workload.Request
	clock := 0.0
	for burst := 0; burst < 300; burst++ {
		for i := 0; i < 3; i++ {
			reqs = append(reqs, workload.Request{Arrival: clock, FileID: 0})
			clock += 0.05
		}
		clock += 120 // silence long past any plausible H
	}
	tr := &workload.Trace{Files: files, Requests: reqs}
	const s = 10
	r := NewREAD(READConfig{MaxTransitionsPerDay: s, InitialIdleThreshold: 20})
	res := run(t, array.Config{Disks: 2, Trace: tr, Policy: r, EpochSeconds: 300})
	for _, d := range res.PerDisk {
		// Run is < 1 day, so the budget is exactly S (+1 tolerance for a
		// spin-up forced by a request landing after the last allowed
		// spin-down).
		if d.Transitions > s+1 {
			t.Fatalf("disk %d made %d transitions, budget %d", d.ID, d.Transitions, s)
		}
	}
}

func TestREADAdaptiveThresholdDoubles(t *testing.T) {
	files := workload.FileSet{{ID: 0, SizeMB: 0.1, AccessRate: 1}}
	var reqs []workload.Request
	clock := 0.0
	for burst := 0; burst < 100; burst++ {
		reqs = append(reqs, workload.Request{Arrival: clock, FileID: 0})
		clock += 100
	}
	tr := &workload.Trace{Files: files, Requests: reqs}
	r := NewREAD(READConfig{MaxTransitionsPerDay: 6, InitialIdleThreshold: 30})
	probe := &thresholdProbe{READ: r}
	run(t, array.Config{Disks: 2, Trace: tr, Policy: probe, EpochSeconds: 500})
	if !probe.doubled {
		t.Fatal("idleness threshold never doubled despite budget pressure")
	}
}

// thresholdProbe wraps READ to observe the adaptive threshold.
type thresholdProbe struct {
	*READ
	doubled bool
	initial float64
}

func (p *thresholdProbe) Init(ctx *array.Context) error {
	if err := p.READ.Init(ctx); err != nil {
		return err
	}
	p.initial = ctx.IdleTimeout(0)
	return nil
}

func (p *thresholdProbe) OnEpoch(ctx *array.Context) {
	p.READ.OnEpoch(ctx)
	for d := 0; d < ctx.NumDisks(); d++ {
		if ctx.IdleTimeout(d) > p.initial {
			p.doubled = true
		}
	}
}

func TestREADMigratesOnPopularityFlip(t *testing.T) {
	// Two files swap popularity mid-trace.
	files := workload.FileSet{
		{ID: 0, SizeMB: 0.01, AccessRate: 10},
		{ID: 1, SizeMB: 5, AccessRate: 0.01},
	}
	var reqs []workload.Request
	for i := 0; i < 1000; i++ {
		reqs = append(reqs, workload.Request{Arrival: float64(i) * 0.1, FileID: 0})
	}
	for i := 0; i < 3000; i++ {
		reqs = append(reqs, workload.Request{Arrival: 100 + float64(i)*0.03, FileID: 1})
	}
	tr := &workload.Trace{Files: files, Requests: reqs}
	r := NewREAD(READConfig{Theta: 0.5})
	run(t, array.Config{Disks: 4, Trace: tr, Policy: r, EpochSeconds: 60})
	if r.MigrationsRequested() == 0 {
		t.Fatal("READ never migrated despite popularity flip")
	}
}

func TestDRPMTransitionsALot(t *testing.T) {
	// Bursty workload: DRPM must rack up far more transitions than READ.
	files := workload.FileSet{{ID: 0, SizeMB: 0.1, AccessRate: 1}}
	var reqs []workload.Request
	clock := 0.0
	for burst := 0; burst < 150; burst++ {
		reqs = append(reqs, workload.Request{Arrival: clock, FileID: 0})
		clock += 60
	}
	tr := &workload.Trace{Files: files, Requests: reqs}
	drpmRes := run(t, array.Config{Disks: 2, Trace: tr, Policy: NewDRPM(DRPMConfig{IdleThreshold: 16})})
	r := NewREAD(READConfig{MaxTransitionsPerDay: 10, InitialIdleThreshold: 16})
	readRes := run(t, array.Config{Disks: 2, Trace: tr, Policy: r, EpochSeconds: 300})
	var drpmTrans, readTrans int
	for i := range drpmRes.PerDisk {
		drpmTrans += drpmRes.PerDisk[i].Transitions
		readTrans += readRes.PerDisk[i].Transitions
	}
	if drpmTrans <= readTrans {
		t.Fatalf("DRPM transitions %d not above READ %d", drpmTrans, readTrans)
	}
	if drpmRes.ArrayAFR <= readRes.ArrayAFR {
		t.Fatalf("DRPM AFR %v not above READ %v despite %dx transitions",
			drpmRes.ArrayAFR, readRes.ArrayAFR, drpmTrans)
	}
}

func TestPoliciesServeEverything(t *testing.T) {
	tr := genTrace(t, 150, 8000, 0.01, 0.8)
	policies := []array.Policy{
		NewAlwaysOn(),
		NewMAID(MAIDConfig{}),
		NewPDC(PDCConfig{}),
		NewREAD(READConfig{}),
		NewDRPM(DRPMConfig{}),
	}
	for _, p := range policies {
		res := run(t, array.Config{Disks: 6, Trace: tr, Policy: p, EpochSeconds: 20})
		if res.Requests != 8000 {
			t.Errorf("%s served %d of 8000", p.Name(), res.Requests)
		}
		if res.EnergyJ <= 0 || res.ArrayAFR <= 0 {
			t.Errorf("%s produced degenerate results: %+v", p.Name(), res)
		}
	}
}

package policy

import (
	"reflect"
	"testing"

	"repro/internal/array"
	"repro/internal/checkpoint"
)

// TestShippedPoliciesResumeBitIdentical runs every shipped policy with
// periodic in-process snapshots, resumes a mid-run snapshot into a freshly
// constructed instance, and requires the resumed result to equal the
// uninterrupted one exactly. This is the end-to-end exercise of each
// policy's SaveState/LoadState pair: any counter, cache entry, or adaptive
// threshold missing from the round trip shows up as a divergence.
func TestShippedPoliciesResumeBitIdentical(t *testing.T) {
	cases := []struct {
		name  string
		fresh func() array.Policy
	}{
		{"always-on", func() array.Policy { return NewAlwaysOn() }},
		{"drpm", func() array.Policy { return NewDRPM(DRPMConfig{}) }},
		{"read", func() array.Policy { return NewREAD(READConfig{}) }},
		{"maid", func() array.Policy { return NewMAID(MAIDConfig{}) }},
		{"pdc", func() array.Policy { return NewPDC(PDCConfig{}) }},
		{"read-replica", func() array.Policy { return NewREADReplica(READReplicaConfig{}) }},
		{"striped-always-on", func() array.Policy { return NewStripedAlwaysOn(StripedConfig{}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := genTrace(t, 60, 3000, 0.01, 0.9) // ~30 s of virtual time
			baseCfg := func(pol array.Policy, sink func([]byte) error) array.Config {
				return array.Config{
					Disks:        5,
					Trace:        tr,
					Policy:       pol,
					EpochSeconds: 4, // several epochs, so policies migrate/copy
					Checkpoint: &array.CheckpointSpec{
						EverySimSeconds: 2.5,
						Tool:            "policy-test",
						ConfigDigest:    "policy-digest",
						Sink:            sink,
					},
				}
			}

			var snaps [][]byte
			want, err := array.Run(baseCfg(tc.fresh(), func(data []byte) error {
				snaps = append(snaps, append([]byte(nil), data...))
				return nil
			}))
			if err != nil {
				t.Fatal(err)
			}
			if len(snaps) < 2 {
				t.Fatalf("only %d snapshots captured", len(snaps))
			}

			env, err := checkpoint.Decode(snaps[len(snaps)/2])
			if err != nil {
				t.Fatal(err)
			}
			got, err := array.Resume(baseCfg(tc.fresh(), func([]byte) error { return nil }), env.State)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("resume diverged from uninterrupted run:\nwant %+v\ngot  %+v", want, got)
			}
		})
	}
}

// TestPolicyStateRejectsGarbage checks LoadState surfaces malformed payloads
// instead of silently zeroing the policy.
func TestPolicyStateRejectsGarbage(t *testing.T) {
	bad := []byte(`{"theta": `)
	for _, p := range []array.CheckpointablePolicy{
		NewREAD(READConfig{}),
		NewMAID(MAIDConfig{}),
		NewPDC(PDCConfig{}),
		NewREADReplica(READReplicaConfig{}),
		NewStripedAlwaysOn(StripedConfig{}),
	} {
		if err := p.LoadState(bad); err == nil {
			t.Errorf("%s: LoadState accepted truncated JSON", p.Name())
		}
	}
}

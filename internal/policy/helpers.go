// Package policy implements the energy-saving strategies the paper
// evaluates on the two-speed disk-array simulator:
//
//   - READ — the paper's contribution (§4): reliability- and energy-aware
//     distribution with hot/cold zones, epoch migration, and a capped
//     speed-transition budget.
//   - MAID — Colarelli & Grunwald's massive array of idle disks, adapted to
//     two-speed drives as the paper does: cache disks absorb popular data,
//     storage disks drop to low speed when idle.
//   - PDC — Pinheiro & Bianchini's popular data concentration: popularity-
//     sorted placement skews load onto the first disks so the rest idle.
//   - AlwaysOn — the no-power-management baseline.
//   - DRPM — an aggressive per-disk dynamic speed policy used as an
//     ablation for the paper's "is frequent switching worthwhile?" question.
package policy

import (
	"sort"

	"repro/internal/array"
	"repro/internal/workload"
)

// byLoadDesc returns the files ordered by static load hi = λi·si,
// heaviest first, with ID tie-breaking for determinism.
func byLoadDesc(files workload.FileSet) workload.FileSet {
	out := files.Clone()
	sort.Slice(out, func(i, j int) bool {
		li, lj := out[i].Load(), out[j].Load()
		if li != lj {
			return li > lj
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// placeLeastLoaded assigns each file (in the given order) to the disk in
// `disks` with the least accumulated load so far (greedy LPT balancing).
func placeLeastLoaded(ctx *array.Context, files workload.FileSet, disks []int) error {
	load := make(map[int]float64, len(disks))
	for _, f := range files {
		best, bestLoad := disks[0], load[disks[0]]
		for _, d := range disks[1:] {
			if load[d] < bestLoad {
				best, bestLoad = d, load[d]
			}
		}
		if err := ctx.SetPlacement(f.ID, best); err != nil {
			return err
		}
		load[best] += f.Load()
	}
	return nil
}

// placeRoundRobin assigns files (in the given order) cyclically over disks,
// the paper's §4 assignment rule for both zones.
func placeRoundRobin(ctx *array.Context, files workload.FileSet, disks []int) error {
	for i, f := range files {
		if err := ctx.SetPlacement(f.ID, disks[i%len(disks)]); err != nil {
			return err
		}
	}
	return nil
}

// diskRange returns [lo, hi) as a slice of disk indices.
func diskRange(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for d := lo; d < hi; d++ {
		out = append(out, d)
	}
	return out
}

// estimateTheta derives the workload skew parameter from per-file access
// rates (Init time) by treating rates as expected counts.
func estimateTheta(files workload.FileSet) float64 {
	counts := make([]int, len(files))
	for i, f := range files {
		// Scale to integers; resolution of 1e-6 req/s is ample.
		counts[i] = int(f.AccessRate * 1e6)
	}
	th, err := workload.MeasureTheta(counts)
	if err != nil || th <= 0 {
		return 0.5
	}
	if th >= 1 {
		return 0.999
	}
	return th
}

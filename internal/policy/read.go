package policy

import (
	"sort"

	"repro/internal/array"
	"repro/internal/diskmodel"
	"repro/internal/workload"
)

// READConfig parameterizes the READ policy (paper Figure 6).
type READConfig struct {
	// MaxTransitionsPerDay is S: the per-disk daily speed-transition cap
	// (paper evaluation: 40).
	MaxTransitionsPerDay int
	// InitialIdleThreshold is H in seconds. Zero picks 2× the drive's
	// break-even idle time.
	InitialIdleThreshold float64
	// Theta overrides the initial skew parameter θ; zero estimates it
	// from the file set's access rates.
	Theta float64
	// MaxMigrationsPerEpoch bounds migration churn per epoch. Zero means
	// 256; a negative value disables epoch migration entirely (ablation).
	MaxMigrationsPerEpoch int
	// MaxIdleThreshold caps the adaptive doubling of H. Default 4 hours.
	MaxIdleThreshold float64
	// DisableAdaptiveThreshold turns off Figure 6's steps 20-24 (the
	// doubling of H under transition-budget pressure). Ablation only.
	DisableAdaptiveThreshold bool
}

func (c *READConfig) setDefaults() {
	if c.MaxTransitionsPerDay <= 0 {
		c.MaxTransitionsPerDay = 40
	}
	if c.MaxMigrationsPerEpoch == 0 {
		c.MaxMigrationsPerEpoch = 256
	}
	if c.MaxIdleThreshold <= 0 {
		c.MaxIdleThreshold = 4 * 3600
	}
}

// READ implements Reliability and Energy Aware Distribution (paper §4):
//
//  1. Estimate the workload skew θ and split files into popular/unpopular
//     sets (Eq. 4).
//  2. Size a hot zone (high-speed disks) and cold zone (low-speed disks)
//     from the load ratio γ (Eq. 5) and place popular files round-robin on
//     the hot zone, unpopular files round-robin on the cold zone.
//  3. Each epoch, re-rank files by observed accesses, re-derive θ, migrate
//     reclassified files between the (fixed) zones, and double any disk's
//     idleness threshold H once its transition count reaches half its
//     budget — keeping every disk under the daily transition rate cap S.
type READ struct {
	cfg READConfig

	theta    float64
	hotCount int
	popular  map[int]bool
	rrHot    int
	rrCold   int

	migrations int
}

// NewREAD builds a READ policy.
func NewREAD(cfg READConfig) *READ {
	cfg.setDefaults()
	return &READ{cfg: cfg}
}

// Name implements array.Policy.
func (r *READ) Name() string { return "read" }

// HotDisks returns the current hot-zone size.
func (r *READ) HotDisks() int { return r.hotCount }

// Theta returns the current skew estimate.
func (r *READ) Theta() float64 { return r.theta }

// MigrationsRequested returns the number of epoch migrations READ issued.
func (r *READ) MigrationsRequested() int { return r.migrations }

// classify splits the (already popularity-ordered, most popular first) files
// into popular/unpopular per Eq. 4 and returns the per-class loads for
// Eq. 5, using the paper's load definition hi = λi·si (§4: service time
// proportional to size). The byte-weighted load keeps the hot zone compact
// — popular web objects are small, so a small high-speed zone absorbs them
// and the cold majority of disks stays parked at low speed; this is where
// READ's energy savings come from. loadOf supplies each file's hi (static
// rates at init, observed per-epoch rates afterwards).
func classify(sorted workload.FileSet, theta float64, loadOf func(workload.File) float64) (popular map[int]bool, popLoad, unpopLoad float64) {
	np, _, err := workload.PopularSplit(theta, len(sorted))
	if err != nil {
		np = len(sorted) / 2
		if np == 0 {
			np = 1
		}
	}
	popular = make(map[int]bool, np)
	for i, f := range sorted {
		h := loadOf(f)
		if i < np {
			popular[f.ID] = true
			popLoad += h
		} else {
			unpopLoad += h
		}
	}
	return popular, popLoad, unpopLoad
}

// zoneSize derives the hot-disk count from the class loads (Eq. 5 +
// Figure 6 step 3).
func zoneSize(popLoad, unpopLoad float64, n int) int {
	gamma, err := workload.GammaRatio(popLoad, unpopLoad)
	if err != nil {
		gamma = 1
	}
	hd, err := workload.HotDiskCount(gamma, n)
	if err != nil {
		hd = n / 2
		if hd < 1 {
			hd = 1
		}
	}
	return hd
}

// Init runs Figure 6 steps 1-7.
func (r *READ) Init(ctx *array.Context) error {
	files := ctx.Files().Clone()
	// Original round: popularity proxied by size (smallest = hottest).
	files.SortBySizeAscending()

	r.theta = r.cfg.Theta
	if r.theta <= 0 || r.theta >= 1 {
		r.theta = estimateTheta(files)
	}
	var popLoad, unpopLoad float64
	r.popular, popLoad, unpopLoad = classify(files, r.theta,
		func(f workload.File) float64 { return f.Load() })
	n := ctx.NumDisks()
	r.hotCount = zoneSize(popLoad, unpopLoad, n)

	// Step 4: hot zone high speed, cold zone low speed (free at init).
	for d := 0; d < n; d++ {
		if d < r.hotCount {
			ctx.RequestTransition(d, diskmodel.High)
		} else {
			ctx.RequestTransition(d, diskmodel.Low)
		}
	}

	// Steps 5-7: round-robin placement per zone.
	var pop, unpop workload.FileSet
	for _, f := range files {
		if r.popular[f.ID] {
			pop = append(pop, f)
		} else {
			unpop = append(unpop, f)
		}
	}
	if err := placeRoundRobin(ctx, pop, diskRange(0, r.hotCount)); err != nil {
		return err
	}
	if err := placeRoundRobin(ctx, unpop, diskRange(r.hotCount, n)); err != nil {
		return err
	}

	h := r.cfg.InitialIdleThreshold
	if h <= 0 {
		h = 2 * ctx.DiskParams().BreakEvenIdle()
	}
	for d := 0; d < n; d++ {
		ctx.SetIdleTimeout(d, h)
	}
	return nil
}

// budget returns the transition allowance accumulated so far. S is a daily
// RATE cap, so the allowance accrues fractionally with elapsed time (with a
// small floor so the very start of a run is not frozen); a count-per-day
// interpretation would let a short run burn a full day's budget in minutes.
func (r *READ) budget(ctx *array.Context) int {
	accrued := int(float64(r.cfg.MaxTransitionsPerDay)*ctx.Now()/86400) + 1
	if accrued < 2 {
		return 2
	}
	return accrued
}

// TargetDisk serves from the placement disk; a hot-zone disk that idled down
// is spun back up (this transition is demanded by correctness — hot files
// must be served fast — and is what the S cap protects against).
func (r *READ) TargetDisk(ctx *array.Context, fileID int) int {
	d := ctx.Placement(fileID)
	if d < r.hotCount && ctx.DiskSpeed(d) == diskmodel.Low {
		ctx.SetDecisionCause("demand")
		ctx.RequestTransition(d, diskmodel.High)
	}
	return d
}

// OnRequestComplete implements array.Policy.
func (r *READ) OnRequestComplete(*array.Context, int, int) {}

// OnIdleTimeout lets a hot-zone disk sink to low speed only while its
// transition budget (with room for the return trip) is intact.
func (r *READ) OnIdleTimeout(ctx *array.Context, d int) {
	if d >= r.hotCount {
		return // cold zone is already low
	}
	if ctx.DiskSpeed(d) != diskmodel.High {
		return
	}
	if ctx.DiskTransitions(d)+2 > r.budget(ctx) {
		return // budget exhausted: stay at high speed
	}
	ctx.RequestTransition(d, diskmodel.Low)
}

// OnEpoch runs Figure 6 steps 9-24.
func (r *READ) OnEpoch(ctx *array.Context) {
	files := ctx.Files().Clone()
	counts := ctx.AccessCounts()

	// Step 10: re-sort by accesses during the current epoch.
	sort.Slice(files, func(i, j int) bool {
		ci, cj := counts[files[i].ID], counts[files[j].ID]
		if ci != cj {
			return ci > cj
		}
		if files[i].AccessRate != files[j].AccessRate {
			return files[i].AccessRate > files[j].AccessRate
		}
		return files[i].ID < files[j].ID
	})

	// Step 11: re-calculate θ and re-categorize. A sparse epoch window
	// (fewer observations than files) cannot support a skew estimate —
	// zero-count files would masquerade as extreme skew — so θ is only
	// refreshed from a reasonably dense window.
	countVec := make([]int, len(files))
	total := 0
	for i, f := range files {
		countVec[i] = counts[f.ID]
		total += counts[f.ID]
	}
	if total >= len(files) {
		if th, err := workload.MeasureTheta(countVec); err == nil && th > 0 && th < 1 {
			r.theta = th
		}
	}
	// Re-categorize with the refreshed θ. Zone sizes stay as Figure 6
	// step 3 set them: the paper's epoch loop (steps 8-25) migrates files
	// between the zones but never moves the hot/cold boundary — and an
	// epoch window cannot support Eq. 5 anyway, because the unpopular
	// class's observed load is near zero by construction (they are
	// unpopular precisely because the window barely touched them).
	newPopular, _, _ := classify(files, r.theta,
		func(f workload.File) float64 { return float64(counts[f.ID]) * f.SizeMB })
	n := ctx.NumDisks()

	// Steps 12-19: migrate reclassified files, round-robin per zone.
	moved := 0
	for _, f := range files {
		if moved >= r.cfg.MaxMigrationsPerEpoch {
			break
		}
		wasPopular := r.popular[f.ID]
		isPopular := newPopular[f.ID]
		cur := ctx.Placement(f.ID)
		switch {
		case wasPopular && !isPopular && cur < r.hotCount:
			target := r.hotCount + r.rrCold%(n-r.hotCount)
			r.rrCold++
			ctx.SetDecisionCause("popularity")
			if ctx.Migrate(f.ID, target) {
				r.migrations++
				moved++
			}
		case !wasPopular && isPopular && cur >= r.hotCount:
			target := r.rrHot % r.hotCount
			r.rrHot++
			ctx.SetDecisionCause("popularity")
			if ctx.Migrate(f.ID, target) {
				r.migrations++
				moved++
			}
		}
	}
	r.popular = newPopular

	// Steps 20-24: adaptive idleness threshold. Once a disk has spent half
	// its budget, double its H to slow future transitions.
	if r.cfg.DisableAdaptiveThreshold {
		return
	}
	for d := 0; d < n; d++ {
		if 2*ctx.DiskTransitions(d) >= r.budget(ctx) {
			h := ctx.IdleTimeout(d) * 2
			if h > r.cfg.MaxIdleThreshold {
				h = r.cfg.MaxIdleThreshold
			}
			ctx.SetIdleTimeout(d, h)
		}
	}
}

var _ array.Policy = (*READ)(nil)

package policy

// Failure-aware behaviour for the shipped policies (array.FailureAwarePolicy).
//
// The division of labour with the array core: the core consumes spares,
// drains the dead disk's queues, and rebuilds the replacement; the hooks
// here encode each policy's *placement* reaction. The rule every hook
// follows: when a hot spare covers the outage the data will be restored in
// place, so placements stay put and only policy-private bookkeeping (caches,
// replicas) is cleaned up; when no spare is left the disk's contents are
// re-homed onto survivors with Context.ReassignFile — modelling the
// administrator restoring from the surviving copy or backup — so the
// workload keeps flowing in degraded mode instead of every request being
// lost.

import (
	"container/list"

	"repro/internal/array"
	"repro/internal/diskmodel"
)

// survivors returns the non-failed disks in [lo, hi).
func survivors(ctx *array.Context, lo, hi int) []int {
	var out []int
	for d := lo; d < hi; d++ {
		if !ctx.DiskFailed(d) {
			out = append(out, d)
		}
	}
	return out
}

// reassignAcross re-homes every file on dead disk d round-robin across
// targets. FilesOn is sorted, so the redistribution is deterministic.
func reassignAcross(ctx *array.Context, d int, targets []int) {
	if len(targets) == 0 {
		return
	}
	for i, id := range ctx.FilesOn(d) {
		// The only failure mode left is a target dying inside this very
		// loop, which cannot happen: failures are delivered one at a time.
		ctx.SetDecisionCause("failover-rehome")
		_ = ctx.ReassignFile(id, targets[i%len(targets)])
	}
}

// raidTargets narrows a failover target set to dead disk d's stripe/replica
// group when a RAID organization is configured: the group's surviving
// members are the disks that can actually reconstruct d's data from parity
// or replicas, so re-homed placements should land there first. With no RAID
// layer, or a group with no overlap with the policy's candidates, the
// policy's own targets stand.
func raidTargets(ctx *array.Context, d int, fallback []int) []int {
	group := ctx.RAIDGroup(d)
	if group == nil {
		return fallback
	}
	allowed := make(map[int]bool, len(group))
	for _, m := range group {
		allowed[m] = true
	}
	var out []int
	for _, t := range fallback {
		if allowed[t] {
			out = append(out, t)
		}
	}
	if len(out) > 0 {
		return out
	}
	// The policy's candidates all live outside the group (or the group has
	// no survivors among them): fall back to any surviving group member
	// before giving up on group locality entirely.
	for _, m := range group {
		if m != d && !ctx.DiskFailed(m) {
			out = append(out, m)
		}
	}
	if len(out) > 0 {
		return out
	}
	return fallback
}

// --- READ ---

// OnDiskFailure re-zones around a dead disk: with no spare covering the
// outage, the disk's files are re-homed round-robin across the surviving
// disks of the same zone (hot files stay on high-speed disks, cold files on
// low-speed ones), falling back to any survivor if the zone is wiped out.
func (r *READ) OnDiskFailure(ctx *array.Context, d int) {
	if ctx.DiskCovered(d) {
		return // replacement + rebuild restores the data in place
	}
	lo, hi := 0, r.hotCount
	if d >= r.hotCount {
		lo, hi = r.hotCount, ctx.NumDisks()
	}
	targets := survivors(ctx, lo, hi)
	if len(targets) == 0 {
		targets = survivors(ctx, 0, ctx.NumDisks())
	}
	reassignAcross(ctx, d, raidTargets(ctx, d, targets))
}

// OnDiskRepair restores the replacement to its zone's speed.
func (r *READ) OnDiskRepair(ctx *array.Context, d int) {
	if d < r.hotCount {
		ctx.RequestTransition(d, diskmodel.High)
	} else {
		ctx.RequestTransition(d, diskmodel.Low)
	}
}

var _ array.FailureAwarePolicy = (*READ)(nil)

// --- MAID ---

// OnDiskFailure drops the cache bookkeeping for a dead cache disk (its
// contents are copies — the primaries on the storage disks are intact, and
// later misses repopulate the surviving cache disks), or re-homes a dead
// storage disk's files across the surviving storage disks when no spare
// covers the outage.
func (m *MAID) OnDiskFailure(ctx *array.Context, d int) {
	if d < m.cacheDisks {
		var next *list.Element
		for el := m.lru.Front(); el != nil; el = next {
			next = el.Next()
			if e := el.Value.(cacheEntry); e.cacheDisk == d {
				delete(m.entries, e.fileID)
				m.lru.Remove(el)
			}
		}
		m.usedMB[d] = 0
		for id, cd := range m.copying {
			// In-flight admissions to the dead disk were dropped with its
			// queue; their completion callbacks will never run.
			if cd == d {
				delete(m.copying, id)
			}
		}
		return
	}
	if ctx.DiskCovered(d) {
		return
	}
	reassignAcross(ctx, d, raidTargets(ctx, d, survivors(ctx, m.cacheDisks, ctx.NumDisks())))
}

// OnDiskRepair repowers the replacement: cache workhorses run at high speed
// permanently; a storage replacement spins high for its rebuild and sinks
// back to low speed at the next idle timeout.
func (m *MAID) OnDiskRepair(ctx *array.Context, d int) {
	ctx.RequestTransition(d, diskmodel.High)
}

var _ array.FailureAwarePolicy = (*MAID)(nil)

// --- PDC ---

// OnDiskFailure re-homes an uncovered dead disk's files across all
// survivors; the next epoch's re-pack restores the popularity concentration.
func (p *PDC) OnDiskFailure(ctx *array.Context, d int) {
	if ctx.DiskCovered(d) {
		return
	}
	reassignAcross(ctx, d, raidTargets(ctx, d, survivors(ctx, 0, ctx.NumDisks())))
}

// OnDiskRepair repowers the replacement for its rebuild; the idle timeout
// sinks it back down once the rebuild traffic stops.
func (p *PDC) OnDiskRepair(ctx *array.Context, d int) {
	ctx.RequestTransition(d, diskmodel.High)
}

var _ array.FailureAwarePolicy = (*PDC)(nil)

// --- READReplica ---

// OnDiskFailure first spends its replicas: a replica of a file whose primary
// just died IS a surviving copy, so the primary is re-homed onto the replica
// disk for free before the base READ hook re-homes whatever has no replica.
// Replicas that lived on the dead disk are dropped (their primaries are
// intact).
func (r *READReplica) OnDiskFailure(ctx *array.Context, d int) {
	for _, id := range sortedKeys(r.replica) {
		if r.replica[id] != d {
			continue
		}
		if f, ok := ctx.File(id); ok {
			r.replMB[d] -= f.SizeMB
		}
		delete(r.replica, id)
		r.replicasDropped++
	}
	r.replMB[d] = 0
	for id, rd := range r.copying {
		if rd == d {
			delete(r.copying, id)
		}
	}
	if !ctx.DiskCovered(d) {
		// Sorted order: ReassignFile mutates placement state, so the visit
		// order must not depend on map iteration.
		for _, id := range sortedKeys(r.replica) {
			if rd := r.replica[id]; ctx.Placement(id) == d && !ctx.DiskFailed(rd) {
				ctx.SetDecisionCause("replica-promote")
				_ = ctx.ReassignFile(id, rd)
			}
		}
	}
	r.READ.OnDiskFailure(ctx, d)
}

var _ array.FailureAwarePolicy = (*READReplica)(nil)

package policy

import (
	"sort"

	"repro/internal/array"
	"repro/internal/workload"
)

// StripedConfig parameterizes the striped always-on policy.
type StripedConfig struct {
	// StripeMB is the size threshold above which a file is striped
	// (paper §6: "for large files such as video clips, audio segments,
	// and office documents, stripping is needed. ... For the web server
	// environment, files are usually very small, and thus stripping is
	// not crucial"). Zero means 0.5 MB — matching the paper's remark
	// that average web files sit far below the typical 512 KB stripe
	// block.
	StripeMB float64
	// Width is the number of disks a striped file spans. Zero means 4,
	// clamped to the array size.
	Width int
}

// StripedAlwaysOn extends the always-on baseline with RAID-0-style striping
// for large files: an exploration of the paper's §6 future work. Small
// files behave exactly as in AlwaysOn; files at or above the threshold are
// split into Width chunks served in parallel, trading extra positioning
// operations for parallel transfer.
type StripedAlwaysOn struct {
	cfg     StripedConfig
	stripes map[int][]int
}

// NewStripedAlwaysOn builds the striping policy.
func NewStripedAlwaysOn(cfg StripedConfig) *StripedAlwaysOn {
	if cfg.StripeMB <= 0 {
		cfg.StripeMB = 0.5
	}
	if cfg.Width <= 0 {
		cfg.Width = 4
	}
	return &StripedAlwaysOn{cfg: cfg, stripes: make(map[int][]int)}
}

// Name implements array.Policy.
func (p *StripedAlwaysOn) Name() string { return "striped-always-on" }

// StripedFiles returns how many files were laid out striped.
func (p *StripedAlwaysOn) StripedFiles() int { return len(p.stripes) }

// Init places small files load-balanced and large files striped across
// consecutive disk groups.
func (p *StripedAlwaysOn) Init(ctx *array.Context) error {
	n := ctx.NumDisks()
	width := p.cfg.Width
	if width > n {
		width = n
	}
	var small, large workload.FileSet
	for _, f := range ctx.Files() {
		if f.SizeMB >= p.cfg.StripeMB {
			large = append(large, f)
		} else {
			small = append(small, f)
		}
	}
	// Large files first, heaviest load first, onto rotating disk groups.
	sort.Slice(large, func(i, j int) bool {
		li, lj := large[i].Load(), large[j].Load()
		if li != lj {
			return li > lj
		}
		return large[i].ID < large[j].ID
	})
	for i, f := range large {
		start := (i * width) % n
		targets := make([]int, 0, width)
		for k := 0; k < width; k++ {
			targets = append(targets, (start+k)%n)
		}
		p.stripes[f.ID] = targets
		// Primary placement anchors the file for bookkeeping; chunks
		// are dispatched via StripeTargets.
		if err := ctx.SetPlacement(f.ID, targets[0]); err != nil {
			return err
		}
	}
	if len(small) > 0 {
		if err := placeLeastLoaded(ctx, byLoadDesc(small), diskRange(0, n)); err != nil {
			return err
		}
	}
	return nil
}

// TargetDisk serves unstriped files from their placement disk.
func (p *StripedAlwaysOn) TargetDisk(ctx *array.Context, fileID int) int {
	return ctx.Placement(fileID)
}

// StripeTargets implements array.StripePolicy.
func (p *StripedAlwaysOn) StripeTargets(ctx *array.Context, fileID int) []int {
	return p.stripes[fileID]
}

// OnRequestComplete implements array.Policy.
func (*StripedAlwaysOn) OnRequestComplete(*array.Context, int, int) {}

// OnEpoch implements array.Policy.
func (*StripedAlwaysOn) OnEpoch(*array.Context) {}

// OnIdleTimeout implements array.Policy (never armed).
func (*StripedAlwaysOn) OnIdleTimeout(*array.Context, int) {}

var (
	_ array.Policy       = (*StripedAlwaysOn)(nil)
	_ array.StripePolicy = (*StripedAlwaysOn)(nil)
)

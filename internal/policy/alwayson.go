package policy

import (
	"repro/internal/array"
)

// AlwaysOn is the no-power-management baseline: every disk runs at high
// speed for the whole run and files are load-balanced across the array.
// It brackets the comparison from the performance side (best response time,
// worst energy) and provides the energy denominator for savings figures.
type AlwaysOn struct{}

// NewAlwaysOn returns the baseline policy.
func NewAlwaysOn() *AlwaysOn { return &AlwaysOn{} }

// Name implements array.Policy.
func (*AlwaysOn) Name() string { return "always-on" }

// Init load-balances files over all disks at high speed.
func (*AlwaysOn) Init(ctx *array.Context) error {
	return placeLeastLoaded(ctx, byLoadDesc(ctx.Files()), diskRange(0, ctx.NumDisks()))
}

// TargetDisk serves from the placement disk.
func (*AlwaysOn) TargetDisk(ctx *array.Context, fileID int) int {
	return ctx.Placement(fileID)
}

// OnRequestComplete implements array.Policy.
func (*AlwaysOn) OnRequestComplete(*array.Context, int, int) {}

// OnEpoch implements array.Policy.
func (*AlwaysOn) OnEpoch(*array.Context) {}

// OnIdleTimeout implements array.Policy (never armed).
func (*AlwaysOn) OnIdleTimeout(*array.Context, int) {}

var _ array.Policy = (*AlwaysOn)(nil)

package policy

import (
	"container/list"
	"errors"
	"fmt"

	"repro/internal/array"
	"repro/internal/diskmodel"
)

// MAIDConfig parameterizes the MAID policy.
type MAIDConfig struct {
	// CacheDisks is the number of always-on cache disks at the front of
	// the array (MAID's workhorses). Must leave at least one storage disk.
	CacheDisks int
	// CacheCapacityMB bounds the data cached per cache disk; LRU
	// replacement beyond it. Zero sizes the total cache region at 60% of
	// the dataset (split across cache disks): big enough that the steady
	// hot set fits, small enough that popularity drift keeps evicting —
	// so storage disks keep being disturbed, the dynamic the paper's
	// reliability analysis prices in.
	CacheCapacityMB float64
	// IdleThreshold is the storage-disk idleness threshold H in seconds
	// before dropping to low speed. Zero picks 15 s — aggressive (at the
	// drive's energy break-even point), maximizing nominal idle-time
	// capture at the cost of oscillation, which is exactly the behaviour
	// PRESS prices in.
	IdleThreshold float64
}

// MAID implements the Massive Array of Idle Disks scheme adapted to
// two-speed drives: requested data is copied to cache disks so storage
// disks can idle at low speed; a miss spins the storage disk back up.
type MAID struct {
	cfg MAIDConfig

	cacheDisks int
	// cache state
	entries  map[int]*list.Element // fileID -> LRU element
	lru      *list.List            // front = most recent; values are cacheEntry
	usedMB   []float64             // per cache disk
	capPerMB float64
	nextCD   int // round-robin cache-disk chooser
	// copying tracks in-flight cache admissions (fileID -> target cache
	// disk) so a burst of misses on one file admits it once — and so a
	// cache-disk failure can void the admissions headed its way.
	copying map[int]int

	copies int
	hits   int
	misses int
}

type cacheEntry struct {
	fileID    int
	cacheDisk int
	sizeMB    float64
}

// NewMAID builds a MAID policy.
func NewMAID(cfg MAIDConfig) *MAID {
	return &MAID{cfg: cfg}
}

// Name implements array.Policy.
func (m *MAID) Name() string { return "maid" }

// Hits and misses expose cache effectiveness for reports.
func (m *MAID) Hits() int { return m.hits }

// Misses returns the number of cache misses.
func (m *MAID) Misses() int { return m.misses }

// Copies returns the number of cache admissions performed.
func (m *MAID) Copies() int { return m.copies }

// Init places all files on the storage disks and configures cache disks.
func (m *MAID) Init(ctx *array.Context) error {
	n := ctx.NumDisks()
	m.cacheDisks = m.cfg.CacheDisks
	if m.cacheDisks <= 0 {
		// Default: one cache disk per 4 disks, at least 1 — raised when
		// the aggregate service demand would overload that many
		// workhorses (a two-speed adaptation: cache disks must be able
		// to absorb nearly the whole request stream).
		m.cacheDisks = n / 4
		if m.cacheDisks < 1 {
			m.cacheDisks = 1
		}
		params := ctx.DiskParams()
		var demand float64 // expected busy seconds per second
		for _, f := range ctx.Files() {
			demand += f.AccessRate * params.ServiceTime(f.SizeMB, diskmodel.High)
		}
		need := int(demand/0.5) + 1
		if need > m.cacheDisks {
			m.cacheDisks = need
		}
		if m.cacheDisks > n-1 {
			m.cacheDisks = n - 1
		}
	}
	if m.cacheDisks >= n {
		return fmt.Errorf("policy: maid needs a storage disk: %d cache disks of %d total", m.cacheDisks, n)
	}
	m.capPerMB = m.cfg.CacheCapacityMB
	if m.capPerMB <= 0 {
		m.capPerMB = 0.60 * ctx.Files().TotalSizeMB() / float64(m.cacheDisks)
	}
	if m.capPerMB <= 0 {
		return errors.New("policy: maid cache capacity must be positive")
	}
	m.entries = make(map[int]*list.Element)
	m.lru = list.New()
	m.usedMB = make([]float64, m.cacheDisks)
	m.copying = make(map[int]int)

	// Storage disks hold everything, load-balanced.
	storage := diskRange(m.cacheDisks, n)
	if err := placeLeastLoaded(ctx, byLoadDesc(ctx.Files()), storage); err != nil {
		return err
	}

	h := m.cfg.IdleThreshold
	if h <= 0 {
		h = 15
	}
	for _, d := range storage {
		ctx.SetIdleTimeout(d, h)
	}
	// Cache disks always on at high speed; no idle timers.
	return nil
}

// TargetDisk serves cache hits from the cache disk and misses from the
// storage disk. A miss activates the storage disk — the defining MAID
// dynamic: in the original MAID the drive is powered down and MUST spin up
// to serve; in the paper's two-speed "hybrid" form the access drives the
// disk to full speed. This demand-driven spin-up (and the spin-down that
// follows the next idle period) is exactly the transition churn PRESS
// prices in, and what READ's budget avoids.
func (m *MAID) TargetDisk(ctx *array.Context, fileID int) int {
	if el, ok := m.entries[fileID]; ok {
		m.hits++
		m.lru.MoveToFront(el)
		return el.Value.(cacheEntry).cacheDisk
	}
	m.misses++
	d := ctx.Placement(fileID)
	if ctx.DiskSpeed(d) == diskmodel.Low {
		ctx.SetDecisionCause("cache-miss")
		ctx.RequestTransition(d, diskmodel.High)
	}
	m.admit(ctx, fileID)
	return d
}

// admit copies fileID onto a cache disk chosen round-robin, evicting LRU
// entries from that disk until the copy fits.
func (m *MAID) admit(ctx *array.Context, fileID int) {
	if _, inflight := m.copying[fileID]; inflight {
		return
	}
	f, ok := ctx.File(fileID)
	if !ok || f.SizeMB > m.capPerMB {
		return // uncacheable
	}
	cd := m.nextCD
	m.nextCD = (m.nextCD + 1) % m.cacheDisks

	// Evict from the back of the global LRU, restricted to entries on cd,
	// until the file fits.
	for m.usedMB[cd]+f.SizeMB > m.capPerMB {
		victim := m.oldestOn(cd)
		if victim == nil {
			return // nothing evictable on this disk; skip admission
		}
		e := victim.Value.(cacheEntry)
		m.lru.Remove(victim)
		delete(m.entries, e.fileID)
		m.usedMB[cd] -= e.sizeMB
	}

	m.copying[fileID] = cd
	m.usedMB[cd] += f.SizeMB
	err := ctx.EnqueueWrite(cd, f.SizeMB, func() {
		delete(m.copying, fileID)
		// Admission may have been superseded by eviction bookkeeping;
		// only insert if still absent.
		if _, ok := m.entries[fileID]; !ok {
			el := m.lru.PushFront(cacheEntry{fileID: fileID, cacheDisk: cd, sizeMB: f.SizeMB})
			m.entries[fileID] = el
		}
		m.copies++
	})
	if err != nil {
		delete(m.copying, fileID)
		m.usedMB[cd] -= f.SizeMB
	}
}

func (m *MAID) oldestOn(cd int) *list.Element {
	for el := m.lru.Back(); el != nil; el = el.Prev() {
		if el.Value.(cacheEntry).cacheDisk == cd {
			return el
		}
	}
	return nil
}

// OnRequestComplete implements array.Policy.
func (m *MAID) OnRequestComplete(*array.Context, int, int) {}

// OnEpoch implements array.Policy. MAID is reactive; nothing to do.
func (m *MAID) OnEpoch(*array.Context) {}

// OnIdleTimeout drops idle storage disks to low speed.
func (m *MAID) OnIdleTimeout(ctx *array.Context, d int) {
	if d < m.cacheDisks {
		return // cache disks stay hot
	}
	if ctx.DiskSpeed(d) == diskmodel.High {
		ctx.RequestTransition(d, diskmodel.Low)
	}
}

var _ array.Policy = (*MAID)(nil)

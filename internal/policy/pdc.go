package policy

import (
	"sort"

	"repro/internal/array"
	"repro/internal/diskmodel"
	"repro/internal/workload"
)

// PDCConfig parameterizes the PDC policy.
type PDCConfig struct {
	// LoadFraction is the share of one disk's high-speed service capacity
	// that PDC is willing to pack onto a disk (measured on the day-average
	// load) before overflowing to the next one. Smaller values spread load
	// wider; larger values skew harder. Default 0.35, which keeps the
	// workhorse below saturation through a 2x diurnal peak.
	LoadFraction float64
	// IdleThreshold is the idleness threshold H before a disk drops to
	// low speed. Zero picks 30 s (~2x the drive's energy break-even
	// idle), a standard fixed-threshold choice; PDC's direct-serving tail
	// disks oscillate around it as popularity drifts.
	IdleThreshold float64
	// SpinUpQueue is the queue depth (including the arriving request) at
	// a low-speed disk that triggers a spin-up. Default 1: any access to
	// a sleeping disk activates it, the demand-driven power management
	// the paper's baselines integrate ("hybrid techniques"). Raising it
	// trades response time for fewer transitions.
	SpinUpQueue int
	// MaxMigrationsPerEpoch bounds migration churn. Default 1024 — PDC
	// re-packs the whole popularity order every epoch and is meant to be
	// migration-hungry; the bound is an overload stop, not a tuning knob.
	MaxMigrationsPerEpoch int
}

func (c *PDCConfig) setDefaults() {
	if c.LoadFraction <= 0 || c.LoadFraction > 1 {
		c.LoadFraction = 0.35
	}
	if c.SpinUpQueue <= 0 {
		c.SpinUpQueue = 1
	}
	if c.MaxMigrationsPerEpoch <= 0 {
		c.MaxMigrationsPerEpoch = 1024
	}
}

// PDC implements Popular Data Concentration: files are sorted by popularity
// and packed onto the lowest-numbered disks up to a per-disk load cap, so
// the highest-numbered disks see almost no traffic and sink to low speed.
// Every epoch the ranking is refreshed from observed counts and files whose
// disk changed are migrated.
type PDC struct {
	cfg        PDCConfig
	migrations int
}

// NewPDC builds a PDC policy.
func NewPDC(cfg PDCConfig) *PDC {
	cfg.setDefaults()
	return &PDC{cfg: cfg}
}

// Name implements array.Policy.
func (p *PDC) Name() string { return "pdc" }

// MigrationsRequested returns the number of epoch migrations PDC issued.
func (p *PDC) MigrationsRequested() int { return p.migrations }

// layout computes the concentrated placement for files already sorted by
// descending popularity. PDC is capacity-constrained: each disk receives an
// equal byte share of the dataset, filled in popularity order, so disk 0
// holds the hottest 1/n of the bytes (and with a skewed distribution, most
// of the request mass). A load cap additionally spills traffic to the next
// disk when one disk's expected service demand would saturate it (the
// heavy-workload guard).
func (p *PDC) layout(ctx *array.Context, sorted workload.FileSet) map[int]int {
	params := ctx.DiskParams()
	n := ctx.NumDisks()
	byteBudget := sorted.TotalSizeMB() / float64(n)
	loadCap := p.cfg.LoadFraction
	out := make(map[int]int, len(sorted))
	disk := 0
	var usedMB, usedLoad float64
	for _, f := range sorted {
		svc := params.ServiceTime(f.SizeMB, diskmodel.High)
		load := f.AccessRate * svc
		if disk < n-1 && usedMB > 0 &&
			(usedMB+f.SizeMB > byteBudget || usedLoad+load > loadCap) {
			disk++
			usedMB, usedLoad = 0, 0
		}
		out[f.ID] = disk
		usedMB += f.SizeMB
		usedLoad += load
	}
	return out
}

// Init places popularity-sorted files concentrated on the first disks.
func (p *PDC) Init(ctx *array.Context) error {
	sorted := ctx.Files().Clone()
	sorted.SortByRateDescending()
	layout := p.layout(ctx, sorted)
	for _, id := range sortedKeys(layout) {
		if err := ctx.SetPlacement(id, layout[id]); err != nil {
			return err
		}
	}
	h := p.cfg.IdleThreshold
	if h <= 0 {
		h = 30
	}
	for d := 0; d < ctx.NumDisks(); d++ {
		ctx.SetIdleTimeout(d, h)
	}
	return nil
}

// TargetDisk serves from the placement disk, spinning it up when the queue
// indicates sustained demand.
func (p *PDC) TargetDisk(ctx *array.Context, fileID int) int {
	d := ctx.Placement(fileID)
	if ctx.DiskSpeed(d) == diskmodel.Low && ctx.DiskQueueLen(d)+1 >= p.cfg.SpinUpQueue {
		ctx.SetDecisionCause("queue-depth")
		ctx.RequestTransition(d, diskmodel.High)
	}
	return d
}

// OnRequestComplete implements array.Policy.
func (p *PDC) OnRequestComplete(*array.Context, int, int) {}

// OnEpoch refreshes the popularity ranking from observed counts and
// migrates files whose concentrated position changed.
func (p *PDC) OnEpoch(ctx *array.Context) {
	files := ctx.Files().Clone()
	counts := ctx.AccessCounts()
	// Blend observed counts with the static rate for files unseen this
	// epoch, so quiet epochs do not randomize the tail.
	sort.Slice(files, func(i, j int) bool {
		ci, cj := counts[files[i].ID], counts[files[j].ID]
		if ci != cj {
			return ci > cj
		}
		if files[i].AccessRate != files[j].AccessRate {
			return files[i].AccessRate > files[j].AccessRate
		}
		return files[i].ID < files[j].ID
	})
	target := p.layout(ctx, files)
	moved := 0
	for _, f := range files {
		if moved >= p.cfg.MaxMigrationsPerEpoch {
			break
		}
		want := target[f.ID]
		if want != ctx.Placement(f.ID) && !ctx.Migrating(f.ID) {
			ctx.SetDecisionCause("popularity")
			if ctx.Migrate(f.ID, want) {
				p.migrations++
				moved++
			}
		}
	}
}

// OnIdleTimeout drops idle disks to low speed.
func (p *PDC) OnIdleTimeout(ctx *array.Context, d int) {
	if ctx.DiskSpeed(d) == diskmodel.High {
		ctx.RequestTransition(d, diskmodel.Low)
	}
}

var _ array.Policy = (*PDC)(nil)

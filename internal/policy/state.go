package policy

// Checkpoint state for the shipped policies (array.CheckpointablePolicy).
//
// Each SaveState captures only what the policy accumulated since Init —
// configuration is NOT serialized, because a resume constructs the policy
// fresh from the same configuration and then calls LoadState. Map-shaped
// state is serialized to JSON objects (deterministic: encoding/json sorts
// object keys), and MAID's LRU list is flattened front-to-back so recency
// order survives the round trip.

import (
	"container/list"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/array"
)

// --- READ ---

type readState struct {
	Theta      float64 `json:"theta"`
	HotCount   int     `json:"hot_count"`
	Popular    []int   `json:"popular,omitempty"`
	RRHot      int     `json:"rr_hot"`
	RRCold     int     `json:"rr_cold"`
	Migrations int     `json:"migrations"`
}

func (r *READ) saveState() readState {
	st := readState{
		Theta:      r.theta,
		HotCount:   r.hotCount,
		RRHot:      r.rrHot,
		RRCold:     r.rrCold,
		Migrations: r.migrations,
	}
	st.Popular = sortedKeys(r.popular)
	return st
}

func (r *READ) loadState(st readState) {
	r.theta = st.Theta
	r.hotCount = st.HotCount
	r.popular = make(map[int]bool, len(st.Popular))
	for _, id := range st.Popular {
		r.popular[id] = true
	}
	r.rrHot = st.RRHot
	r.rrCold = st.RRCold
	r.migrations = st.Migrations
}

// SaveState implements array.CheckpointablePolicy.
func (r *READ) SaveState() ([]byte, error) { return json.Marshal(r.saveState()) }

// LoadState implements array.CheckpointablePolicy.
func (r *READ) LoadState(data []byte) error {
	var st readState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("policy: read state: %w", err)
	}
	r.loadState(st)
	return nil
}

var _ array.CheckpointablePolicy = (*READ)(nil)

// --- MAID ---

type maidCacheEntry struct {
	FileID    int     `json:"file_id"`
	CacheDisk int     `json:"cache_disk"`
	SizeMB    float64 `json:"size_mb"`
}

type maidState struct {
	CacheDisks int       `json:"cache_disks"`
	CapPerMB   float64   `json:"cap_per_mb"`
	UsedMB     []float64 `json:"used_mb"`
	NextCD     int       `json:"next_cd"`
	// LRU lists the cache contents most-recent first.
	LRU     []maidCacheEntry `json:"lru,omitempty"`
	Copying map[int]int      `json:"copying,omitempty"`
	Copies  int              `json:"copies"`
	Hits    int              `json:"hits"`
	Misses  int              `json:"misses"`
}

// SaveState implements array.CheckpointablePolicy.
func (m *MAID) SaveState() ([]byte, error) {
	st := maidState{
		CacheDisks: m.cacheDisks,
		CapPerMB:   m.capPerMB,
		UsedMB:     append([]float64(nil), m.usedMB...),
		NextCD:     m.nextCD,
		Copying:    m.copying,
		Copies:     m.copies,
		Hits:       m.hits,
		Misses:     m.misses,
	}
	if m.lru != nil {
		for el := m.lru.Front(); el != nil; el = el.Next() {
			e := el.Value.(cacheEntry)
			st.LRU = append(st.LRU, maidCacheEntry{
				FileID: e.fileID, CacheDisk: e.cacheDisk, SizeMB: e.sizeMB,
			})
		}
	}
	return json.Marshal(st)
}

// LoadState implements array.CheckpointablePolicy. It overwrites the
// Init-derived cache geometry too (cache-disk count and capacity can be
// config-defaulted from the file set, which Init recomputes identically, but
// restoring them from the snapshot keeps LoadState self-contained).
func (m *MAID) LoadState(data []byte) error {
	var st maidState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("policy: maid state: %w", err)
	}
	m.cacheDisks = st.CacheDisks
	m.capPerMB = st.CapPerMB
	m.usedMB = append([]float64(nil), st.UsedMB...)
	m.nextCD = st.NextCD
	m.copying = st.Copying
	if m.copying == nil {
		m.copying = make(map[int]int)
	}
	m.copies = st.Copies
	m.hits = st.Hits
	m.misses = st.Misses
	m.entries = make(map[int]*list.Element, len(st.LRU))
	m.lru = list.New()
	for _, e := range st.LRU {
		el := m.lru.PushBack(cacheEntry{fileID: e.FileID, cacheDisk: e.CacheDisk, sizeMB: e.SizeMB})
		m.entries[e.FileID] = el
	}
	return nil
}

var _ array.CheckpointablePolicy = (*MAID)(nil)

// --- PDC ---

type pdcState struct {
	Migrations int `json:"migrations"`
}

// SaveState implements array.CheckpointablePolicy.
func (p *PDC) SaveState() ([]byte, error) {
	return json.Marshal(pdcState{Migrations: p.migrations})
}

// LoadState implements array.CheckpointablePolicy.
func (p *PDC) LoadState(data []byte) error {
	var st pdcState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("policy: pdc state: %w", err)
	}
	p.migrations = st.Migrations
	return nil
}

var _ array.CheckpointablePolicy = (*PDC)(nil)

// --- AlwaysOn / DRPM (stateless) ---

// SaveState implements array.CheckpointablePolicy.
func (*AlwaysOn) SaveState() ([]byte, error) { return []byte("{}"), nil }

// LoadState implements array.CheckpointablePolicy.
func (*AlwaysOn) LoadState([]byte) error { return nil }

var _ array.CheckpointablePolicy = (*AlwaysOn)(nil)

// SaveState implements array.CheckpointablePolicy.
func (*DRPM) SaveState() ([]byte, error) { return []byte("{}"), nil }

// LoadState implements array.CheckpointablePolicy.
func (*DRPM) LoadState([]byte) error { return nil }

var _ array.CheckpointablePolicy = (*DRPM)(nil)

// --- READReplica ---

type readReplicaState struct {
	READ readState `json:"read"`
	// ReplicaBudgetMB is Init-derived (sized from drive capacity when the
	// config leaves it zero), so it must ride along.
	ReplicaBudgetMB float64         `json:"replica_budget_mb"`
	Replica         map[int]int     `json:"replica,omitempty"`
	ReplMB          map[int]float64 `json:"repl_mb,omitempty"`
	Copying         map[int]int     `json:"copying,omitempty"`
	ReplicasMade    int             `json:"replicas_made"`
	ReplicasDropped int             `json:"replicas_dropped"`
}

// SaveState implements array.CheckpointablePolicy.
func (r *READReplica) SaveState() ([]byte, error) {
	return json.Marshal(readReplicaState{
		READ:            r.READ.saveState(),
		ReplicaBudgetMB: r.cfg.ReplicaBudgetMB,
		Replica:         r.replica,
		ReplMB:          r.replMB,
		Copying:         r.copying,
		ReplicasMade:    r.replicasMade,
		ReplicasDropped: r.replicasDropped,
	})
}

// LoadState implements array.CheckpointablePolicy.
func (r *READReplica) LoadState(data []byte) error {
	var st readReplicaState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("policy: read-replica state: %w", err)
	}
	r.READ.loadState(st.READ)
	r.cfg.ReplicaBudgetMB = st.ReplicaBudgetMB
	r.replica = st.Replica
	if r.replica == nil {
		r.replica = make(map[int]int)
	}
	r.replMB = st.ReplMB
	if r.replMB == nil {
		r.replMB = make(map[int]float64)
	}
	r.copying = st.Copying
	if r.copying == nil {
		r.copying = make(map[int]int)
	}
	r.replicasMade = st.ReplicasMade
	r.replicasDropped = st.ReplicasDropped
	return nil
}

var _ array.CheckpointablePolicy = (*READReplica)(nil)

// --- StripedAlwaysOn ---

type stripedState struct {
	Stripes map[int][]int `json:"stripes,omitempty"`
}

// SaveState implements array.CheckpointablePolicy.
func (p *StripedAlwaysOn) SaveState() ([]byte, error) {
	return json.Marshal(stripedState{Stripes: p.stripes})
}

// LoadState implements array.CheckpointablePolicy.
func (p *StripedAlwaysOn) LoadState(data []byte) error {
	var st stripedState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("policy: striped state: %w", err)
	}
	p.stripes = st.Stripes
	if p.stripes == nil {
		p.stripes = make(map[int][]int)
	}
	return nil
}

var _ array.CheckpointablePolicy = (*StripedAlwaysOn)(nil)

// sortedKeys returns the map's keys in ascending order. Policies iterate
// their maps through it whenever the loop body touches shared state, so map
// iteration order can never leak into simulation results.
func sortedKeys[V any](m map[int]V) []int {
	if len(m) == 0 {
		return nil
	}
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

package policy

import (
	"testing"

	"repro/internal/array"
	"repro/internal/diskmodel"
	"repro/internal/workload"
)

// videoTrace is a large-file workload: the regime the paper's §6 says
// striping exists for.
func videoTrace(requests int, interarrival float64) *workload.Trace {
	files := workload.FileSet{
		{ID: 0, SizeMB: 40, AccessRate: 1},
		{ID: 1, SizeMB: 60, AccessRate: 1},
		{ID: 2, SizeMB: 80, AccessRate: 1},
		{ID: 3, SizeMB: 0.01, AccessRate: 5}, // one small file stays unstriped
	}
	var reqs []workload.Request
	for i := 0; i < requests; i++ {
		reqs = append(reqs, workload.Request{Arrival: float64(i) * interarrival, FileID: i % 4})
	}
	return &workload.Trace{Files: files, Requests: reqs}
}

func TestStripedServesEverything(t *testing.T) {
	tr := videoTrace(400, 2.0)
	p := NewStripedAlwaysOn(StripedConfig{Width: 4})
	res := run(t, array.Config{Disks: 8, Trace: tr, Policy: p})
	if res.Requests != 400 {
		t.Fatalf("served %d of 400", res.Requests)
	}
	if p.StripedFiles() != 3 {
		t.Fatalf("striped %d files, want 3", p.StripedFiles())
	}
}

func TestStripingSpeedsUpLargeFiles(t *testing.T) {
	tr := videoTrace(300, 3.0) // light load: response ≈ service time
	plain := run(t, array.Config{Disks: 8, Trace: tr, Policy: NewAlwaysOn()})
	striped := run(t, array.Config{Disks: 8, Trace: tr,
		Policy: NewStripedAlwaysOn(StripedConfig{Width: 4})})
	// A 60 MB file takes ~1.1 s sequentially at 55 MB/s; striped over 4
	// disks it takes ~0.28 s + positioning. The mean must drop by well
	// over 2x.
	if striped.MeanResponse >= plain.MeanResponse/2 {
		t.Fatalf("striping did not pay off: %.3fs vs %.3fs",
			striped.MeanResponse, plain.MeanResponse)
	}
}

func TestStripingHurtsSmallFiles(t *testing.T) {
	// The inverse experiment — the reason the paper does NOT stripe web
	// objects: positioning dominates small transfers, and striping
	// multiplies positioning. Force tiny files to stripe and compare.
	files := workload.FileSet{{ID: 0, SizeMB: 0.02, AccessRate: 1}}
	var reqs []workload.Request
	for i := 0; i < 300; i++ {
		reqs = append(reqs, workload.Request{Arrival: float64(i) * 1.0, FileID: 0})
	}
	tr := &workload.Trace{Files: files, Requests: reqs}
	plain := run(t, array.Config{Disks: 8, Trace: tr, Policy: NewAlwaysOn()})
	striped := run(t, array.Config{Disks: 8, Trace: tr,
		Policy: NewStripedAlwaysOn(StripedConfig{StripeMB: 0.01, Width: 4})})
	// On an idle array latency barely moves (chunks run in parallel), but
	// the array performs ~4x the positioning work: total disk-seconds
	// must balloon. That wasted occupancy is why small files are not
	// striped.
	busy := func(r *array.Result) float64 {
		var sum float64
		for _, d := range r.PerDisk {
			sum += d.BusyTime
		}
		return sum
	}
	if busy(striped) < 3*busy(plain) {
		t.Fatalf("striping tiny files should multiply busy time: %.2fs vs %.2fs",
			busy(striped), busy(plain))
	}
}

func TestStripedChunkAccounting(t *testing.T) {
	// One striped request must count once in response stats but occupy
	// all member disks.
	files := workload.FileSet{{ID: 0, SizeMB: 55, AccessRate: 1}}
	tr := &workload.Trace{Files: files, Requests: []workload.Request{{Arrival: 0, FileID: 0}}}
	p := NewStripedAlwaysOn(StripedConfig{Width: 4})
	res := run(t, array.Config{Disks: 4, Trace: tr, Policy: p})
	if res.Requests != 1 {
		t.Fatalf("requests = %d, want 1", res.Requests)
	}
	busyDisks := 0
	var bytes float64
	for _, d := range res.PerDisk {
		if d.RequestsServed > 0 {
			busyDisks++
		}
		bytes += d.BytesServedMB
	}
	if busyDisks != 4 {
		t.Fatalf("%d disks served chunks, want 4", busyDisks)
	}
	if bytes < 54.9 || bytes > 55.1 {
		t.Fatalf("total bytes served %.2f, want 55", bytes)
	}
	// Response ≈ chunk service time at high speed: pos + (55/4)/55 ≈ 0.26 s.
	params := diskmodel.DefaultParams()
	want := params.ServiceTime(55.0/4, diskmodel.High)
	if res.MeanResponse < want*0.99 || res.MeanResponse > want*1.5 {
		t.Fatalf("striped response %.4f, want ≈%.4f", res.MeanResponse, want)
	}
}

func TestStripeWidthClampedToArray(t *testing.T) {
	files := workload.FileSet{{ID: 0, SizeMB: 10, AccessRate: 1}}
	tr := &workload.Trace{Files: files, Requests: []workload.Request{{Arrival: 0, FileID: 0}}}
	p := NewStripedAlwaysOn(StripedConfig{Width: 16})
	res := run(t, array.Config{Disks: 3, Trace: tr, Policy: p})
	busy := 0
	for _, d := range res.PerDisk {
		if d.RequestsServed > 0 {
			busy++
		}
	}
	if busy != 3 {
		t.Fatalf("width not clamped: %d disks busy", busy)
	}
}

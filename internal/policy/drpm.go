package policy

import (
	"repro/internal/array"
	"repro/internal/diskmodel"
)

// DRPMConfig parameterizes the aggressive dynamic-speed ablation policy.
type DRPMConfig struct {
	// IdleThreshold is the idle time in seconds before dropping to low
	// speed. DRPM-style control is deliberately twitchy; default is the
	// drive's break-even idle time (the energy-rational minimum) with no
	// cap on transition frequency.
	IdleThreshold float64
}

// DRPM is an uncapped per-disk dynamic speed-control policy in the spirit of
// Gurumurthi et al.'s DRPM, restricted to two speeds: every disk drops to
// low speed the moment the idleness threshold passes and spins back up on
// the next request. It exists as the ablation for the paper's central
// question — unconstrained speed switching maximizes transition counts, and
// PRESS prices that in AFR.
type DRPM struct {
	cfg DRPMConfig
}

// NewDRPM builds the ablation policy.
func NewDRPM(cfg DRPMConfig) *DRPM { return &DRPM{cfg: cfg} }

// Name implements array.Policy.
func (*DRPM) Name() string { return "drpm" }

// Init load-balances files and arms a short idle timer on every disk.
func (p *DRPM) Init(ctx *array.Context) error {
	if err := placeLeastLoaded(ctx, byLoadDesc(ctx.Files()), diskRange(0, ctx.NumDisks())); err != nil {
		return err
	}
	h := p.cfg.IdleThreshold
	if h <= 0 {
		h = ctx.DiskParams().BreakEvenIdle()
	}
	for d := 0; d < ctx.NumDisks(); d++ {
		ctx.SetIdleTimeout(d, h)
	}
	return nil
}

// TargetDisk spins the placement disk up on demand.
func (p *DRPM) TargetDisk(ctx *array.Context, fileID int) int {
	d := ctx.Placement(fileID)
	if ctx.DiskSpeed(d) == diskmodel.Low {
		ctx.SetDecisionCause("demand")
		ctx.RequestTransition(d, diskmodel.High)
	}
	return d
}

// OnRequestComplete implements array.Policy.
func (*DRPM) OnRequestComplete(*array.Context, int, int) {}

// OnEpoch implements array.Policy.
func (*DRPM) OnEpoch(*array.Context) {}

// OnIdleTimeout drops any idle disk to low speed, unconditionally.
func (p *DRPM) OnIdleTimeout(ctx *array.Context, d int) {
	if ctx.DiskSpeed(d) == diskmodel.High {
		ctx.RequestTransition(d, diskmodel.Low)
	}
}

var _ array.Policy = (*DRPM)(nil)

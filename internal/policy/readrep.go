package policy

import (
	"sort"

	"repro/internal/array"
	"repro/internal/workload"
)

// READReplicaConfig parameterizes the replication variant of READ.
type READReplicaConfig struct {
	// READ carries the base policy's parameters.
	READ READConfig
	// ReplicaBudgetMB bounds the replica bytes held per hot disk. Zero
	// means 10% of the drive capacity.
	ReplicaBudgetMB float64
}

// READReplica is the paper's §6 future-work variant of READ: in a highly
// dynamic environment the epoch migrations become expensive, so instead of
// MOVING a newly-popular file into the hot zone, the policy COPIES it there
// and serves from the replica. When the file cools again the replica is
// simply dropped — reclassification back and forth costs one transfer
// instead of two, and a popularity flap after the copy costs nothing.
//
// The base READ placement, zoning, transition budget, and adaptive idleness
// threshold are unchanged; only the promotion path differs.
type READReplica struct {
	READ

	cfg READReplicaConfig

	// replica maps fileID -> hot disk serving its copy.
	replica map[int]int
	// replMB tracks replica bytes per hot disk.
	replMB map[int]float64
	// copying guards in-flight replica transfers (fileID -> target hot
	// disk), so a hot-disk failure can void the transfers headed its way.
	copying map[int]int

	replicasMade    int
	replicasDropped int
}

// NewREADReplica builds the replication variant.
func NewREADReplica(cfg READReplicaConfig) *READReplica {
	cfg.READ.setDefaults()
	base := NewREAD(cfg.READ)
	return &READReplica{
		READ:    *base,
		cfg:     cfg,
		replica: make(map[int]int),
		replMB:  make(map[int]float64),
		copying: make(map[int]int),
	}
}

// Name implements array.Policy.
func (r *READReplica) Name() string { return "read-replica" }

// ReplicasMade returns the number of replicas created.
func (r *READReplica) ReplicasMade() int { return r.replicasMade }

// ReplicasDropped returns the number of replicas discarded.
func (r *READReplica) ReplicasDropped() int { return r.replicasDropped }

// Init delegates to READ and sizes the replica budget.
func (r *READReplica) Init(ctx *array.Context) error {
	if err := r.READ.Init(ctx); err != nil {
		return err
	}
	if r.cfg.ReplicaBudgetMB <= 0 {
		r.cfg.ReplicaBudgetMB = ctx.DiskParams().CapacityMB * 0.10
	}
	return nil
}

// TargetDisk prefers a hot replica when one exists.
func (r *READReplica) TargetDisk(ctx *array.Context, fileID int) int {
	if d, ok := r.replica[fileID]; ok {
		return d
	}
	return r.READ.TargetDisk(ctx, fileID)
}

// OnEpoch re-ranks files like READ but promotes by replication and demotes
// by dropping replicas. Files whose primary already sits in the hot zone
// are left to the base policy's bookkeeping.
func (r *READReplica) OnEpoch(ctx *array.Context) {
	files := ctx.Files().Clone()
	counts := ctx.AccessCounts()
	sort.Slice(files, func(i, j int) bool {
		ci, cj := counts[files[i].ID], counts[files[j].ID]
		if ci != cj {
			return ci > cj
		}
		if files[i].AccessRate != files[j].AccessRate {
			return files[i].AccessRate > files[j].AccessRate
		}
		return files[i].ID < files[j].ID
	})

	countVec := make([]int, len(files))
	total := 0
	for i, f := range files {
		countVec[i] = counts[f.ID]
		total += counts[f.ID]
	}
	if total >= len(files) {
		if th, err := workload.MeasureTheta(countVec); err == nil && th > 0 && th < 1 {
			r.theta = th
		}
	}
	newPopular, _, _ := classify(files, r.theta,
		func(f workload.File) float64 { return float64(counts[f.ID]) * f.SizeMB })

	hot := r.HotDisks()
	promoted := 0
	for _, f := range files {
		id := f.ID
		primary := ctx.Placement(id)
		_, hasReplica := r.replica[id]
		_, inflight := r.copying[id]
		isPopular := newPopular[id]
		switch {
		case isPopular && primary >= hot && !hasReplica && !inflight:
			if promoted >= r.cfg.READ.MaxMigrationsPerEpoch {
				continue
			}
			r.promote(ctx, f, hot)
			promoted++
		case !isPopular && hasReplica:
			// Cooled off: drop the replica, primary still lives in the
			// cold zone. No transfer needed.
			d := r.replica[id]
			delete(r.replica, id)
			r.replMB[d] -= f.SizeMB
			r.replicasDropped++
		}
	}
	r.popular = newPopular

	// Base policy's adaptive threshold maintenance (Figure 6 steps 20-24).
	for d := 0; d < ctx.NumDisks(); d++ {
		if 2*ctx.DiskTransitions(d) >= r.budget(ctx) {
			h := ctx.IdleTimeout(d) * 2
			if h > r.cfg.READ.MaxIdleThreshold {
				h = r.cfg.READ.MaxIdleThreshold
			}
			ctx.SetIdleTimeout(d, h)
		}
	}
}

// promote copies the file onto the least replica-loaded hot disk.
func (r *READReplica) promote(ctx *array.Context, f workload.File, hot int) {
	best, bestMB := -1, 0.0
	for d := 0; d < hot; d++ {
		if best == -1 || r.replMB[d] < bestMB {
			best, bestMB = d, r.replMB[d]
		}
	}
	if best < 0 || bestMB+f.SizeMB > r.cfg.ReplicaBudgetMB {
		return
	}
	id := f.ID
	r.copying[id] = best
	r.replMB[best] += f.SizeMB
	target := best
	if err := ctx.EnqueueWrite(target, f.SizeMB, func() {
		delete(r.copying, id)
		r.replica[id] = target
		r.replicasMade++
	}); err != nil {
		delete(r.copying, id)
		r.replMB[target] -= f.SizeMB
	}
}

var _ array.Policy = (*READReplica)(nil)

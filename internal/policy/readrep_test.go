package policy

import (
	"testing"

	"repro/internal/array"
	"repro/internal/workload"
)

// flipTrace builds a workload where file 1 is cold initially and turns hot
// mid-trace, which must trigger a hot-zone promotion.
func flipTrace() *workload.Trace {
	files := workload.FileSet{
		{ID: 0, SizeMB: 0.01, AccessRate: 10},
		{ID: 1, SizeMB: 2, AccessRate: 0.01},
		{ID: 2, SizeMB: 0.02, AccessRate: 5},
		{ID: 3, SizeMB: 3, AccessRate: 0.01},
	}
	var reqs []workload.Request
	for i := 0; i < 2000; i++ {
		reqs = append(reqs, workload.Request{Arrival: float64(i) * 0.05, FileID: i % 2 * 2}) // files 0,2
	}
	for i := 0; i < 4000; i++ {
		reqs = append(reqs, workload.Request{Arrival: 100 + float64(i)*0.05, FileID: 1})
	}
	return &workload.Trace{Files: files, Requests: reqs}
}

func TestREADReplicaPromotesByCopy(t *testing.T) {
	tr := flipTrace()
	r := NewREADReplica(READReplicaConfig{READ: READConfig{Theta: 0.5}})
	res := run(t, array.Config{Disks: 4, Trace: tr, Policy: r, EpochSeconds: 30})
	if r.ReplicasMade() == 0 {
		t.Fatal("popularity flip never produced a replica")
	}
	// Replication must not use the migration path (that is the point).
	if res.Migrations != 0 {
		t.Fatalf("replica policy migrated %d times", res.Migrations)
	}
	if res.Requests != 6000 {
		t.Fatalf("served %d", res.Requests)
	}
}

func TestREADReplicaServesFromHotCopy(t *testing.T) {
	tr := flipTrace()
	r := NewREADReplica(READReplicaConfig{READ: READConfig{Theta: 0.5}})
	res := run(t, array.Config{Disks: 4, Trace: tr, Policy: r, EpochSeconds: 30})
	hot := r.HotDisks()
	// After promotion, the bulk of file 1's 4000 requests must land on a
	// hot-zone disk even though its primary stays in the cold zone.
	var hotReqs int
	for i := 0; i < hot; i++ {
		hotReqs += res.PerDisk[i].RequestsServed
	}
	if hotReqs < 4000 {
		t.Fatalf("hot zone served only %d of 6000 requests despite replica", hotReqs)
	}
}

func TestREADReplicaDropsOnCooling(t *testing.T) {
	files := workload.FileSet{
		{ID: 0, SizeMB: 0.01, AccessRate: 10},
		{ID: 1, SizeMB: 1, AccessRate: 0.01},
	}
	var reqs []workload.Request
	// File 1 hot in the middle window only.
	for i := 0; i < 1000; i++ {
		reqs = append(reqs, workload.Request{Arrival: float64(i) * 0.05, FileID: 0})
	}
	for i := 0; i < 2000; i++ {
		reqs = append(reqs, workload.Request{Arrival: 50 + float64(i)*0.025, FileID: 1})
	}
	for i := 0; i < 2000; i++ {
		reqs = append(reqs, workload.Request{Arrival: 100 + float64(i)*0.05, FileID: 0})
	}
	tr := &workload.Trace{Files: files, Requests: reqs}
	r := NewREADReplica(READReplicaConfig{READ: READConfig{Theta: 0.5}})
	run(t, array.Config{Disks: 4, Trace: tr, Policy: r, EpochSeconds: 20})
	if r.ReplicasMade() == 0 {
		t.Fatal("no replica made")
	}
	if r.ReplicasDropped() == 0 {
		t.Fatal("cooled replica never dropped")
	}
}

func TestREADReplicaBudgetRespected(t *testing.T) {
	tr := flipTrace()
	// A budget too small for file 1 (2 MB) must prevent promotion.
	r := NewREADReplica(READReplicaConfig{
		READ:            READConfig{Theta: 0.5},
		ReplicaBudgetMB: 1,
	})
	run(t, array.Config{Disks: 4, Trace: tr, Policy: r, EpochSeconds: 30})
	if r.ReplicasMade() != 0 {
		t.Fatalf("replica made despite insufficient budget: %d", r.ReplicasMade())
	}
}

func TestREADReplicaComparableToREAD(t *testing.T) {
	// On a churning synthetic day the replica variant must serve the same
	// trace with sane metrics (this is the paper's future-work claim: the
	// dynamics survive with lower redistribution cost).
	cfg := workload.DefaultGenConfig()
	cfg.NumRequests = 20000
	cfg.PhaseSeconds = 100
	cfg.PhaseRotate = 0.2
	tr, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := NewREAD(READConfig{})
	baseRes := run(t, array.Config{Disks: 6, Trace: tr, Policy: base, EpochSeconds: 60})
	rep := NewREADReplica(READReplicaConfig{})
	repRes := run(t, array.Config{Disks: 6, Trace: tr, Policy: rep, EpochSeconds: 60})
	if repRes.Requests != baseRes.Requests {
		t.Fatalf("request counts differ: %d vs %d", repRes.Requests, baseRes.Requests)
	}
	if repRes.ArrayAFR > baseRes.ArrayAFR*1.25 {
		t.Fatalf("replica variant AFR %v far above READ %v", repRes.ArrayAFR, baseRes.ArrayAFR)
	}
	// Replication replaces two-transfer migrations with one-transfer
	// copies: total background transfers must not exceed READ's.
	if repRes.BackgroundOps > baseRes.BackgroundOps {
		t.Fatalf("replica variant moved more data (%d ops) than READ (%d ops)",
			repRes.BackgroundOps, baseRes.BackgroundOps)
	}
}

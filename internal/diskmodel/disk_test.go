package diskmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestDisk(s Speed) *Disk { return New(0, DefaultParams(), s) }

func TestIdleEnergyIntegration(t *testing.T) {
	d := newTestDisk(High)
	got := d.EnergyJ(100)
	want := DefaultParams().PowerIdleHigh * 100
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("idle energy = %v, want %v", got, want)
	}
}

func TestActiveEnergyIntegration(t *testing.T) {
	p := DefaultParams()
	d := New(1, p, High)
	dur := d.BeginService(10, 5)
	wantDur := p.ServiceTime(5, High)
	if math.Abs(dur-wantDur) > 1e-12 {
		t.Fatalf("service duration = %v, want %v", dur, wantDur)
	}
	d.EndService(10 + dur)
	got := d.EnergyJ(10 + dur)
	want := p.PowerIdleHigh*10 + p.PowerActiveHigh*dur
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("energy = %v, want %v", got, want)
	}
	if d.Requests() != 1 || d.BytesServedMB() != 5 {
		t.Fatalf("counters: requests=%d bytes=%v", d.Requests(), d.BytesServedMB())
	}
}

func TestTransitionEnergyAndSpeedChange(t *testing.T) {
	p := DefaultParams()
	d := New(2, p, High)
	dur := d.BeginTransition(50, Low)
	if dur != p.TransitionDownTime {
		t.Fatalf("down transition duration = %v, want %v", dur, p.TransitionDownTime)
	}
	if d.State() != Transitioning {
		t.Fatalf("state = %v during transition", d.State())
	}
	d.EndTransition(50 + dur)
	if d.Speed() != Low {
		t.Fatalf("speed = %v after down transition", d.Speed())
	}
	if d.State() != Idle {
		t.Fatalf("state = %v after transition", d.State())
	}
	got := d.EnergyJ(50 + dur)
	want := p.PowerIdleHigh*50 + p.TransitionDownEnergy
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("energy = %v, want %v", got, want)
	}
	if d.Transitions() != 1 || d.UpTransitions() != 0 {
		t.Fatalf("transitions=%d up=%d", d.Transitions(), d.UpTransitions())
	}
}

func TestUpTransitionCounted(t *testing.T) {
	d := newTestDisk(Low)
	dur := d.BeginTransition(0, High)
	d.EndTransition(dur)
	if d.Transitions() != 1 || d.UpTransitions() != 1 {
		t.Fatalf("transitions=%d up=%d, want 1/1", d.Transitions(), d.UpTransitions())
	}
	if d.Speed() != High {
		t.Fatalf("speed = %v after up transition", d.Speed())
	}
}

func TestUtilizationDefinition(t *testing.T) {
	d := newTestDisk(High)
	// Busy for 30s out of 100s elapsed.
	var clock float64 = 10
	for i := 0; i < 3; i++ {
		d.BeginService(clock, 0)
		// Force exactly 10s of service by ignoring the returned duration:
		// utilization accounting depends only on Begin/End timestamps.
		d.EndService(clock + 10)
		clock += 20
	}
	got := d.Utilization(100)
	if math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("utilization = %v, want 0.3", got)
	}
}

func TestUtilizationZeroAtTimeZero(t *testing.T) {
	d := newTestDisk(High)
	if got := d.Utilization(0); got != 0 {
		t.Fatalf("utilization at t=0 = %v, want 0", got)
	}
}

func TestIdleSinceTracking(t *testing.T) {
	d := newTestDisk(High)
	if d.IdleSince() != 0 {
		t.Fatalf("initial IdleSince = %v, want 0", d.IdleSince())
	}
	dur := d.BeginService(5, 1)
	if !math.IsInf(d.IdleSince(), 1) {
		t.Fatal("IdleSince not +Inf while busy")
	}
	d.EndService(5 + dur)
	if d.IdleSince() != 5+dur {
		t.Fatalf("IdleSince = %v, want %v", d.IdleSince(), 5+dur)
	}
}

func TestCanTransition(t *testing.T) {
	d := newTestDisk(High)
	if d.CanTransition(High) {
		t.Fatal("transition to current speed allowed")
	}
	if !d.CanTransition(Low) {
		t.Fatal("idle disk cannot transition")
	}
	d.BeginService(0, 1)
	if d.CanTransition(Low) {
		t.Fatal("busy disk can transition")
	}
}

func TestBeginServicePanicsWhenBusy(t *testing.T) {
	d := newTestDisk(High)
	d.BeginService(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on overlapping BeginService")
		}
	}()
	d.BeginService(0.001, 1)
}

func TestBeginTransitionPanicsWhenBusy(t *testing.T) {
	d := newTestDisk(High)
	d.BeginService(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on BeginTransition while active")
		}
	}()
	d.BeginTransition(0.001, Low)
}

func TestEndServicePanicsWhenIdle(t *testing.T) {
	d := newTestDisk(High)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on EndService while idle")
		}
	}()
	d.EndService(1)
}

func TestEndTransitionPanicsWhenIdle(t *testing.T) {
	d := newTestDisk(High)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on EndTransition while idle")
		}
	}()
	d.EndTransition(1)
}

func TestTimeMovingBackwardsPanics(t *testing.T) {
	d := newTestDisk(High)
	d.EnergyJ(10)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on time reversal")
		}
	}()
	d.BeginService(5, 1)
}

func TestTransitionsPerDay(t *testing.T) {
	d := newTestDisk(High)
	clock := 0.0
	for i := 0; i < 10; i++ {
		to := Low
		if d.Speed() == Low {
			to = High
		}
		dur := d.BeginTransition(clock, to)
		clock += dur
		d.EndTransition(clock)
		clock += 100
	}
	// Sub-day run: raw count.
	if got := d.TransitionsPerDay(clock); got != 10 {
		t.Fatalf("sub-day TransitionsPerDay = %v, want 10", got)
	}
	// Two-day run: averaged.
	if got := d.TransitionsPerDay(2 * 86400); got != 5 {
		t.Fatalf("two-day TransitionsPerDay = %v, want 5", got)
	}
}

func TestTimeAtSpeedAttribution(t *testing.T) {
	p := DefaultParams()
	d := New(0, p, High)
	// 100s idle at high, then transition down, then 100s idle at low.
	dur := d.BeginTransition(100, Low)
	d.EndTransition(100 + dur)
	end := 100 + dur + 100
	hi := d.TimeAtSpeed(end, High)
	lo := d.TimeAtSpeed(end, Low)
	if math.Abs(hi-100) > 1e-9 {
		t.Fatalf("TimeAtSpeed(High) = %v, want 100", hi)
	}
	// Transition time attributed to the target speed.
	if math.Abs(lo-(dur+100)) > 1e-9 {
		t.Fatalf("TimeAtSpeed(Low) = %v, want %v", lo, dur+100)
	}
}

func TestTimeDecomposition(t *testing.T) {
	d := newTestDisk(High)
	dur := d.BeginService(10, 3)
	d.EndService(10 + dur)
	tdur := d.BeginTransition(50, Low)
	d.EndTransition(50 + tdur)
	end := 200.0
	total := d.BusyTime(end) + d.IdleTimeTotal(end) + d.TransitionTimeTotal(end)
	if math.Abs(total-end) > 1e-9 {
		t.Fatalf("busy+idle+transition = %v, want %v", total, end)
	}
}

// Property: for any legal random schedule of services and transitions,
// total energy equals the sum of per-state integrals plus lump transition
// energies, and busy+idle+transition time equals elapsed time.
func TestPropertyEnergyConservation(t *testing.T) {
	p := DefaultParams()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := New(0, p, High)
		clock := 0.0
		var wantEnergy float64
		speed := High
		for i := 0; i < 50; i++ {
			gap := rng.Float64() * 20
			wantEnergy += p.IdlePower(speed) * gap
			clock += gap
			if rng.Intn(2) == 0 {
				size := rng.Float64() * 10
				dur := d.BeginService(clock, size)
				wantEnergy += p.ActivePower(speed) * dur
				clock += dur
				d.EndService(clock)
			} else {
				to := Low
				if speed == Low {
					to = High
				}
				dur := d.BeginTransition(clock, to)
				wantEnergy += p.TransitionEnergy(to)
				clock += dur
				d.EndTransition(clock)
				speed = to
			}
		}
		got := d.EnergyJ(clock)
		if math.Abs(got-wantEnergy) > 1e-6*math.Max(1, wantEnergy) {
			return false
		}
		total := d.BusyTime(clock) + d.IdleTimeTotal(clock) + d.TransitionTimeTotal(clock)
		return math.Abs(total-clock) <= 1e-6*math.Max(1, clock)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: TimeAtSpeed(Low)+TimeAtSpeed(High) always equals elapsed time.
func TestPropertySpeedResidencePartition(t *testing.T) {
	p := DefaultParams()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := New(0, p, Low)
		clock := 0.0
		for i := 0; i < 30; i++ {
			clock += rng.Float64() * 5
			if d.CanTransition(High) && rng.Intn(3) == 0 {
				dur := d.BeginTransition(clock, High)
				clock += dur
				d.EndTransition(clock)
			} else if d.CanTransition(Low) && rng.Intn(3) == 0 {
				dur := d.BeginTransition(clock, Low)
				clock += dur
				d.EndTransition(clock)
			} else {
				dur := d.BeginService(clock, rng.Float64())
				clock += dur
				d.EndService(clock)
			}
		}
		sum := d.TimeAtSpeed(clock, Low) + d.TimeAtSpeed(clock, High)
		return math.Abs(sum-clock) <= 1e-6*math.Max(1, clock)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

package diskmodel

// Additional two-speed drive profiles for sensitivity analysis. All follow
// the same derivation rule as DefaultParams: low-speed statistics scaled
// from the high-speed drive by the RPM ratio.

// EnterpriseParams returns a 15,000/6,000 RPM enterprise-class profile:
// faster positioning and transfer, higher power, costlier transitions.
func EnterpriseParams() Params {
	return Params{
		CapacityMB:           73 * 1024,
		RPMHigh:              15000,
		RPMLow:               6000,
		AvgSeek:              0.0035,
		TransferHigh:         85.0,
		PowerActiveHigh:      17.0,
		PowerIdleHigh:        12.0,
		PowerActiveLow:       7.5,
		PowerIdleLow:         4.2,
		TransitionUpTime:     9.0,
		TransitionUpEnergy:   160,
		TransitionDownTime:   5.0,
		TransitionDownEnergy: 15,
	}
}

// NearlineParams returns a 7,200/3,600 RPM nearline-class profile: slower
// and cooler, with a narrower speed gap, so speed transitions buy less.
func NearlineParams() Params {
	return Params{
		CapacityMB:           250 * 1024,
		RPMHigh:              7200,
		RPMLow:               3600,
		AvgSeek:              0.0085,
		TransferHigh:         40.0,
		PowerActiveHigh:      11.0,
		PowerIdleHigh:        7.2,
		PowerActiveLow:       5.0,
		PowerIdleLow:         3.4,
		TransitionUpTime:     7.0,
		TransitionUpEnergy:   90,
		TransitionDownTime:   4.0,
		TransitionDownEnergy: 10,
	}
}

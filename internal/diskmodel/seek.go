package diskmodel

import "math"

// SeekModel optionally refines the flat average-seek approximation with the
// standard distance-based curve used by disk simulators:
//
//	t(d) = SeekMin + (SeekMax − SeekMin) · sqrt(d / Cylinders)
//
// for a head travel of d cylinders, with t(0) = 0 (no seek for sequential
// hits on the same cylinder, modulo settle time folded into SeekMin).
// The square-root form captures the arm's accelerate/coast/settle profile.
type SeekModel struct {
	// Cylinders is the number of seek positions.
	Cylinders int
	// SeekMin is the single-track seek time in seconds (includes settle).
	SeekMin float64
	// SeekMax is the full-stroke seek time in seconds.
	SeekMax float64
}

// DefaultSeekModel returns a Cheetah-class 10k curve: 0.6 ms track-to-track,
// 8.3 ms full stroke over 50k cylinders (mean ≈ 4.7 ms, matching
// Params.AvgSeek).
func DefaultSeekModel() SeekModel {
	return SeekModel{Cylinders: 50000, SeekMin: 0.0006, SeekMax: 0.0083}
}

// Enabled reports whether the model is usable.
func (s SeekModel) Enabled() bool {
	return s.Cylinders > 1 && s.SeekMax > 0 && s.SeekMin >= 0 && s.SeekMax >= s.SeekMin
}

// Time returns the seek time for a head travel of dist cylinders.
func (s SeekModel) Time(dist int) float64 {
	if !s.Enabled() || dist <= 0 {
		return 0
	}
	if dist >= s.Cylinders {
		dist = s.Cylinders - 1
	}
	frac := float64(dist) / float64(s.Cylinders-1)
	return s.SeekMin + (s.SeekMax-s.SeekMin)*math.Sqrt(frac)
}

// MeanTime returns the analytic expected seek time over uniformly random
// start/end cylinders. For the sqrt curve the expected value of
// sqrt(|X−Y|/C) with X,Y uniform is 8/15·... computed numerically here for
// clarity and used by tests to cross-check the flat AvgSeek approximation.
func (s SeekModel) MeanTime() float64 {
	if !s.Enabled() {
		return 0
	}
	// E[sqrt(U)] where U = |X−Y|/(C−1), X,Y ~ U[0,1]: density of U is
	// 2(1−u), so E = ∫0..1 sqrt(u)·2(1−u) du = 2(2/3 − 2/5) = 8/15.
	const eSqrt = 8.0 / 15.0
	return s.SeekMin + (s.SeekMax-s.SeekMin)*eSqrt
}

// CylinderOf maps a file id onto a deterministic cylinder, spreading files
// pseudo-uniformly across the platter. Fibonacci hashing keeps neighbours
// in id space far apart on disk, the worst (and therefore conservative)
// case for seek locality.
func (s SeekModel) CylinderOf(fileID int) int {
	if !s.Enabled() {
		return 0
	}
	const phi64 = 0x9E3779B97F4A7C15
	h := uint64(fileID) * phi64
	return int(h % uint64(s.Cylinders))
}

package diskmodel

import (
	"testing"
)

// Snapshot must agree with the mutating accessors at every observation point
// while never committing an accrual itself: telemetry reads through it, and
// a read that changed summation order would make telemetry-on runs diverge
// in the last ulp.
func TestSnapshotMatchesMutatingAccessors(t *testing.T) {
	p := DefaultParams()
	// Two identical disks driven through the same history; one is observed
	// via Snapshot between events, the other is left alone. Both are then
	// read with the mutating accessors: the observed disk must report
	// exactly the same state as the undisturbed one.
	observed := New(0, p, High)
	control := New(1, p, High)

	type step func(d *Disk) float64
	steps := []struct {
		at float64
		do step
	}{
		{1.0, func(d *Disk) float64 { return d.BeginService(1.0, 4) }},
		{1.5, func(d *Disk) float64 { d.EndService(1.5); return 0 }},
		{2.0, func(d *Disk) float64 { return d.BeginTransition(2.0, Low) }},
		{5.0, func(d *Disk) float64 { d.EndTransition(5.0); return 0 }},
		{7.0, func(d *Disk) float64 { return d.BeginService(7.0, 2) }},
		{9.0, func(d *Disk) float64 { d.EndService(9.0); return 0 }},
	}
	for _, st := range steps {
		st.do(observed)
		st.do(control)
		// Observe mid-history at an instant strictly after the event.
		mid := st.at + 0.25
		snap := observed.Snapshot(mid)
		if snap.Speed != observed.Speed() || snap.State != observed.State() {
			t.Fatalf("t=%v: snapshot speed/state %v/%v, disk says %v/%v",
				mid, snap.Speed, snap.State, observed.Speed(), observed.State())
		}
		if snap.Transitions != observed.Transitions() {
			t.Fatalf("t=%v: snapshot transitions %d, disk says %d",
				mid, snap.Transitions, observed.Transitions())
		}
	}

	// Final readings through the mutating accessors must be bit-identical:
	// Snapshot never advanced the observed disk's accrual clock.
	end := 10.0
	snapEnd := observed.Snapshot(end)
	if got, want := observed.EnergyJ(end), control.EnergyJ(end); got != want {
		t.Fatalf("observed disk energy %v, control %v — Snapshot perturbed accrual", got, want)
	}
	if got, want := observed.Utilization(end), control.Utilization(end); got != want {
		t.Fatalf("observed disk utilization %v, control %v", got, want)
	}
	// And the snapshot taken at `end` agrees with those final values.
	if snapEnd.EnergyJ != control.EnergyJ(end) {
		t.Fatalf("snapshot energy %v, accessor %v", snapEnd.EnergyJ, control.EnergyJ(end))
	}
	if snapEnd.Utilization != control.Utilization(end) {
		t.Fatalf("snapshot utilization %v, accessor %v", snapEnd.Utilization, control.Utilization(end))
	}
}

func TestSnapshotExtendsOpenIntervals(t *testing.T) {
	p := DefaultParams()
	d := New(0, p, High)

	// Idle: energy grows at idle power, utilization stays 0.
	s := d.Snapshot(10)
	if want := p.IdlePower(High) * 10; s.EnergyJ != want {
		t.Fatalf("idle snapshot energy %v, want %v", s.EnergyJ, want)
	}
	if s.Utilization != 0 || s.BusyTime != 0 {
		t.Fatalf("idle snapshot util/busy = %v/%v, want 0/0", s.Utilization, s.BusyTime)
	}

	// Active: the open service interval counts as busy time.
	d.BeginService(10, 1)
	s = d.Snapshot(12)
	if s.BusyTime != 2 {
		t.Fatalf("active snapshot busy %v, want 2", s.BusyTime)
	}
	if s.Utilization != 2.0/12.0 {
		t.Fatalf("active snapshot util %v, want %v", s.Utilization, 2.0/12.0)
	}
	d.EndService(12)

	// Transitioning: no extra energy beyond the lump sum already charged.
	before := d.Snapshot(12).EnergyJ
	d.BeginTransition(12, Low)
	after := d.Snapshot(13).EnergyJ
	if want := before + p.TransitionEnergy(Low); after != want {
		t.Fatalf("transitioning snapshot energy %v, want lump-sum %v", after, want)
	}
}

func TestSnapshotAtTimeZero(t *testing.T) {
	d := New(0, DefaultParams(), Low)
	s := d.Snapshot(0)
	if s.EnergyJ != 0 || s.Utilization != 0 || s.TransitionRatePerDay != 0 {
		t.Fatalf("time-zero snapshot not zeroed: %+v", s)
	}
}

func TestSnapshotTransitionRate(t *testing.T) {
	p := DefaultParams()
	d := New(0, p, High)
	d.BeginTransition(0, Low)
	d.EndTransition(p.TransitionTime(Low))
	s := d.Snapshot(86400) // one day, one transition
	if s.TransitionRatePerDay != 1 {
		t.Fatalf("rate = %v, want 1/day", s.TransitionRatePerDay)
	}
}

func TestSnapshotPanicsOnBackwardsTime(t *testing.T) {
	d := New(0, DefaultParams(), High)
	d.EnergyJ(5) // accrue to t=5
	defer func() {
		if recover() == nil {
			t.Fatal("backwards snapshot accepted")
		}
	}()
	d.Snapshot(4)
}

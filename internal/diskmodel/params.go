// Package diskmodel models a two-speed hard disk drive: its service-time
// characteristics at each spindle speed, its power states, and the time and
// energy costs of switching speeds.
//
// The parameter set follows the derivation used by the paper (Xie & Sun,
// IPPS'08 §5.1), which in turn adopts the strategy of Pinheiro & Bianchini
// (ICS'04): start from a conventional Seagate Cheetah-class 10,000 RPM drive
// and derive the low-speed (3,600 RPM) statistics by scaling the
// rotation-dependent quantities with the RPM ratio. Transfer rate scales
// linearly with RPM, rotational latency inversely, and seek time is
// unaffected. Spin-up/transition costs follow the figures published for
// two-speed drives in that literature.
package diskmodel

import (
	"errors"
	"fmt"
)

// Speed is a spindle speed level of a two-speed disk.
type Speed int

const (
	// Low is the energy-saving spindle speed (3,600 RPM by default).
	Low Speed = iota
	// High is the full-performance spindle speed (10,000 RPM by default).
	High
)

// String returns "low" or "high".
func (s Speed) String() string {
	switch s {
	case Low:
		return "low"
	case High:
		return "high"
	default:
		return fmt.Sprintf("Speed(%d)", int(s))
	}
}

// Params describes a two-speed disk drive. All times are seconds, rates are
// MB/s, powers are watts, and energies are joules.
type Params struct {
	// CapacityMB is the formatted capacity of the drive.
	CapacityMB float64

	// RPMHigh and RPMLow are the two spindle speeds.
	RPMHigh float64
	RPMLow  float64

	// AvgSeek is the average seek time, identical at both speeds: seeking
	// is arm motion, not rotation.
	AvgSeek float64

	// TransferHigh is the sustained media transfer rate at high speed.
	// The low-speed rate is derived as TransferHigh * RPMLow / RPMHigh
	// unless TransferLow is set explicitly (> 0).
	TransferHigh float64
	TransferLow  float64

	// Power draw by state and speed.
	PowerActiveHigh float64
	PowerIdleHigh   float64
	PowerActiveLow  float64
	PowerIdleLow    float64

	// Speed-transition costs. During a transition the disk serves no
	// requests (paper §4: "no requests can be served when a disk is
	// switching its speed").
	TransitionUpTime     float64
	TransitionUpEnergy   float64
	TransitionDownTime   float64
	TransitionDownEnergy float64

	// Seek optionally replaces the flat AvgSeek with a distance-based
	// curve; the zero value keeps the flat approximation.
	Seek SeekModel
}

// DefaultParams returns the Cheetah-derived two-speed parameter set used
// throughout the reproduction.
func DefaultParams() Params {
	return Params{
		CapacityMB:      36 * 1024,
		RPMHigh:         10000,
		RPMLow:          3600,
		AvgSeek:         0.0047, // 4.7 ms
		TransferHigh:    55.0,   // MB/s at 10k RPM
		TransferLow:     0,      // derived: 55 * 3600/10000 = 19.8 MB/s
		PowerActiveHigh: 13.5,
		PowerIdleHigh:   9.5,
		PowerActiveLow:  5.4,
		PowerIdleLow:    2.9,
		// Spin-up-class cost for low->high; the reverse is cheaper.
		TransitionUpTime:     10.9,
		TransitionUpEnergy:   135,
		TransitionDownTime:   6.0,
		TransitionDownEnergy: 13,
	}
}

// Validate reports the first implausibility in the parameter set.
func (p Params) Validate() error {
	switch {
	case p.CapacityMB <= 0:
		return errors.New("diskmodel: capacity must be positive")
	case p.RPMHigh <= 0 || p.RPMLow <= 0:
		return errors.New("diskmodel: RPMs must be positive")
	case p.RPMLow >= p.RPMHigh:
		return errors.New("diskmodel: low RPM must be below high RPM")
	case p.AvgSeek < 0:
		return errors.New("diskmodel: negative seek time")
	case p.TransferHigh <= 0:
		return errors.New("diskmodel: high-speed transfer rate must be positive")
	case p.TransferLow < 0:
		return errors.New("diskmodel: negative low-speed transfer rate")
	case p.TransferLow > 0 && p.TransferLow >= p.TransferHigh:
		return errors.New("diskmodel: low-speed transfer rate must be below high-speed")
	case p.PowerActiveHigh <= 0 || p.PowerIdleHigh <= 0 ||
		p.PowerActiveLow <= 0 || p.PowerIdleLow <= 0:
		return errors.New("diskmodel: powers must be positive")
	case p.PowerIdleLow >= p.PowerIdleHigh:
		return errors.New("diskmodel: low-speed idle power must be below high-speed idle power")
	case p.TransitionUpTime < 0 || p.TransitionDownTime < 0 ||
		p.TransitionUpEnergy < 0 || p.TransitionDownEnergy < 0:
		return errors.New("diskmodel: negative transition cost")
	case p.Seek != SeekModel{} && !p.Seek.Enabled():
		return errors.New("diskmodel: malformed seek model")
	}
	return nil
}

// ServiceTimeAt is ServiceTime with a distance-based seek of dist cylinders
// (requires the Seek model; falls back to ServiceTime otherwise).
func (p Params) ServiceTimeAt(sizeMB float64, s Speed, dist int) float64 {
	if !p.Seek.Enabled() {
		return p.ServiceTime(sizeMB, s)
	}
	if sizeMB < 0 {
		sizeMB = 0
	}
	return p.Seek.Time(dist) + p.RotationalLatency(s) + sizeMB/p.TransferRate(s)
}

// TransferRate returns the sustained transfer rate in MB/s at speed s.
func (p Params) TransferRate(s Speed) float64 {
	if s == High {
		return p.TransferHigh
	}
	if p.TransferLow > 0 {
		return p.TransferLow
	}
	return p.TransferHigh * p.RPMLow / p.RPMHigh
}

// RotationalLatency returns the average rotational latency (half a
// revolution) in seconds at speed s.
func (p Params) RotationalLatency(s Speed) float64 {
	rpm := p.RPMLow
	if s == High {
		rpm = p.RPMHigh
	}
	return 30.0 / rpm // half of 60/RPM
}

// PositioningTime returns the average positioning overhead (seek plus
// rotational latency) at speed s.
func (p Params) PositioningTime(s Speed) float64 {
	return p.AvgSeek + p.RotationalLatency(s)
}

// ServiceTime returns the time to serve one whole-file request of sizeMB at
// speed s: one positioning operation followed by a sequential scan, matching
// the paper's whole-file access model (§4).
func (p Params) ServiceTime(sizeMB float64, s Speed) float64 {
	if sizeMB < 0 {
		sizeMB = 0
	}
	return p.PositioningTime(s) + sizeMB/p.TransferRate(s)
}

// ActivePower returns the active power draw at speed s.
func (p Params) ActivePower(s Speed) float64 {
	if s == High {
		return p.PowerActiveHigh
	}
	return p.PowerActiveLow
}

// IdlePower returns the idle power draw at speed s.
func (p Params) IdlePower(s Speed) float64 {
	if s == High {
		return p.PowerIdleHigh
	}
	return p.PowerIdleLow
}

// ActiveEnergyPerMB returns the paper's J/MB active energy rate (p_h, p_l in
// §4): active power divided by transfer rate.
func (p Params) ActiveEnergyPerMB(s Speed) float64 {
	return p.ActivePower(s) / p.TransferRate(s)
}

// TransitionTime returns the duration of a speed transition to the given
// target speed.
func (p Params) TransitionTime(to Speed) float64 {
	if to == High {
		return p.TransitionUpTime
	}
	return p.TransitionDownTime
}

// TransitionEnergy returns the energy cost of a speed transition to the
// given target speed.
func (p Params) TransitionEnergy(to Speed) float64 {
	if to == High {
		return p.TransitionUpEnergy
	}
	return p.TransitionDownEnergy
}

// BreakEvenIdle returns the minimum idle duration at low speed that repays
// the round-trip transition cost from high speed, the quantity a sensible
// idleness threshold must exceed (paper §5.2: "a disk spin down can cause
// more energy consumption if the idle time is not long enough").
func (p Params) BreakEvenIdle() float64 {
	roundTripEnergy := p.TransitionDownEnergy + p.TransitionUpEnergy
	roundTripTime := p.TransitionDownTime + p.TransitionUpTime
	saving := p.PowerIdleHigh - p.PowerIdleLow
	// Energy if we stay high for the idle gap t: PowerIdleHigh * t.
	// Energy if we dip low: roundTripEnergy + PowerIdleLow*(t-roundTripTime).
	// Break-even: t = (roundTripEnergy - PowerIdleLow*roundTripTime) / saving.
	return (roundTripEnergy - p.PowerIdleLow*roundTripTime) / saving
}

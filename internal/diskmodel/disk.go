package diskmodel

import (
	"fmt"
	"math"
)

// State is the activity state of a disk.
type State int

const (
	// Idle means the spindle is rotating at the current speed but no
	// request is in service.
	Idle State = iota
	// Active means a request is being served.
	Active
	// Transitioning means the spindle is changing speed; no service is
	// possible.
	Transitioning
)

// String returns a human-readable state name.
func (s State) String() string {
	switch s {
	case Idle:
		return "idle"
	case Active:
		return "active"
	case Transitioning:
		return "transitioning"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Disk is the runtime state of one simulated two-speed drive. It is passive:
// the array simulator calls the Begin*/End* methods at the appropriate
// virtual times and the disk integrates energy and busy time in between.
// Methods must be called with non-decreasing timestamps.
type Disk struct {
	id     int
	params Params

	speed Speed
	state State

	// Energy/time integration.
	lastAccrual float64
	energyJ     float64
	busyTime    float64
	idleTime    float64
	transTime   float64

	// Counters.
	transitions   int
	upTransitions int
	bytesServedMB float64
	requests      int

	// Pending transition target while state == Transitioning.
	transitionTarget Speed

	// Time the disk most recently became idle; math.Inf(1) while busy.
	idleSince float64

	// Per-speed residence time, used by the thermal model to produce a
	// time-weighted operating temperature.
	timeAtSpeed [2]float64

	// headCyl is the arm position for the distance-based seek model.
	headCyl int
}

// New returns a disk with the given id that starts idle at the given speed
// at virtual time 0.
func New(id int, p Params, initial Speed) *Disk {
	return &Disk{
		id:        id,
		params:    p,
		speed:     initial,
		state:     Idle,
		idleSince: 0,
	}
}

// ID returns the disk's identifier within its array.
func (d *Disk) ID() int { return d.id }

// Params returns the disk's parameter set.
func (d *Disk) Params() Params { return d.params }

// Speed returns the current spindle speed. During a transition it reports
// the speed being left (service is impossible either way).
func (d *Disk) Speed() Speed { return d.speed }

// State returns the current activity state.
func (d *Disk) State() State { return d.state }

// IdleSince returns the virtual time at which the disk last became idle.
// It returns +Inf while the disk is busy or transitioning.
func (d *Disk) IdleSince() float64 { return d.idleSince }

// accrue integrates power and residence time up to now.
func (d *Disk) accrue(now float64) {
	dt := now - d.lastAccrual
	if dt < 0 {
		panic(fmt.Sprintf("diskmodel: disk %d time moved backwards: %v -> %v", d.id, d.lastAccrual, now))
	}
	switch d.state {
	case Idle:
		d.energyJ += d.params.IdlePower(d.speed) * dt
		d.idleTime += dt
		d.timeAtSpeed[d.speed] += dt
	case Active:
		d.energyJ += d.params.ActivePower(d.speed) * dt
		d.busyTime += dt
		d.timeAtSpeed[d.speed] += dt
	case Transitioning:
		// Transition energy is charged as a lump sum in BeginTransition;
		// only time bookkeeping happens here. Residence is attributed to
		// the target speed: the spindle is being driven toward it.
		d.transTime += dt
		d.timeAtSpeed[d.transitionTarget] += dt
	}
	d.lastAccrual = now
}

// BeginService marks the start of serving a request of sizeMB at time now
// and returns the service duration (flat average-seek model). The caller
// must schedule EndService at now+duration. It panics if the disk is not
// idle: queueing is the array's responsibility, and overlapping service is
// a simulation bug rather than a recoverable condition.
func (d *Disk) BeginService(now, sizeMB float64) float64 {
	d.beginService(now, sizeMB)
	return d.params.ServiceTime(sizeMB, d.speed)
}

// BeginServiceAt is BeginService with a distance-based seek to the target
// cylinder; it requires Params.Seek to be configured and updates the head
// position.
func (d *Disk) BeginServiceAt(now, sizeMB float64, cylinder int) float64 {
	d.beginService(now, sizeMB)
	dist := cylinder - d.headCyl
	if dist < 0 {
		dist = -dist
	}
	d.headCyl = cylinder
	return d.params.ServiceTimeAt(sizeMB, d.speed, dist)
}

func (d *Disk) beginService(now, sizeMB float64) {
	d.accrue(now)
	if d.state != Idle {
		panic(fmt.Sprintf("diskmodel: disk %d BeginService while %v", d.id, d.state))
	}
	d.state = Active
	d.idleSince = math.Inf(1)
	d.bytesServedMB += sizeMB
	d.requests++
}

// HeadCylinder returns the arm position (only meaningful with a seek model).
func (d *Disk) HeadCylinder() int { return d.headCyl }

// EndService marks the completion of the in-flight request.
func (d *Disk) EndService(now float64) {
	d.accrue(now)
	if d.state != Active {
		panic(fmt.Sprintf("diskmodel: disk %d EndService while %v", d.id, d.state))
	}
	d.state = Idle
	d.idleSince = now
}

// CanTransition reports whether a speed transition to the target speed is
// currently possible and meaningful.
func (d *Disk) CanTransition(to Speed) bool {
	return d.state == Idle && d.speed != to
}

// BeginTransition starts a speed change at time now and returns its
// duration. The caller must schedule EndTransition at now+duration. The
// lump-sum transition energy is charged immediately. It panics when
// CanTransition(to) is false.
func (d *Disk) BeginTransition(now float64, to Speed) float64 {
	d.accrue(now)
	if d.state != Idle {
		panic(fmt.Sprintf("diskmodel: disk %d BeginTransition while %v", d.id, d.state))
	}
	if d.speed == to {
		panic(fmt.Sprintf("diskmodel: disk %d transition to current speed %v", d.id, to))
	}
	d.state = Transitioning
	d.transitionTarget = to
	d.idleSince = math.Inf(1)
	d.energyJ += d.params.TransitionEnergy(to)
	d.transitions++
	if to == High {
		d.upTransitions++
	}
	return d.params.TransitionTime(to)
}

// EndTransition completes the in-flight speed change.
func (d *Disk) EndTransition(now float64) {
	d.accrue(now)
	if d.state != Transitioning {
		panic(fmt.Sprintf("diskmodel: disk %d EndTransition while %v", d.id, d.state))
	}
	d.speed = d.transitionTarget
	d.state = Idle
	d.idleSince = now
}

// Close finalizes integration at the end of the simulation. Further state
// changes are still legal (Close just forces accrual).
func (d *Disk) Close(now float64) { d.accrue(now) }

// EnergyJ returns the total energy consumed through time now.
func (d *Disk) EnergyJ(now float64) float64 {
	d.accrue(now)
	return d.energyJ
}

// Utilization returns the fraction of elapsed time spent serving requests,
// the paper's definition: "the fraction of active time of a drive out of its
// total power-on-time" (§3.3). It returns 0 before any time has elapsed.
func (d *Disk) Utilization(now float64) float64 {
	d.accrue(now)
	if now <= 0 {
		return 0
	}
	return d.busyTime / now
}

// Transitions returns the total number of speed transitions started.
func (d *Disk) Transitions() int { return d.transitions }

// UpTransitions returns the number of low-to-high transitions started.
func (d *Disk) UpTransitions() int { return d.upTransitions }

// TransitionsPerDay returns the average daily speed-transition frequency
// over the elapsed simulated time, the PRESS frequency factor. For runs
// shorter than one simulated day the count is NOT extrapolated upward;
// sub-day runs report the raw count, which matches how a policy's daily cap
// is enforced.
func (d *Disk) TransitionsPerDay(now float64) float64 {
	const day = 86400.0
	if now <= 0 {
		return 0
	}
	days := now / day
	if days < 1 {
		days = 1
	}
	return float64(d.transitions) / days
}

// TransitionRatePerDay returns the speed-transition frequency extrapolated
// to a daily rate: transitions / (elapsed days), without the sub-day
// flooring of TransitionsPerDay. This is the PRESS frequency factor for runs
// shorter than one simulated day: a disk that switched 150 times in 2.5
// hours is being operated at a 1,440/day rate and must be priced that way.
func (d *Disk) TransitionRatePerDay(now float64) float64 {
	const day = 86400.0
	if now <= 0 {
		return 0
	}
	return float64(d.transitions) / (now / day)
}

// BusyTime returns total time spent in Active state through now.
func (d *Disk) BusyTime(now float64) float64 {
	d.accrue(now)
	return d.busyTime
}

// IdleTimeTotal returns total time spent in Idle state through now.
func (d *Disk) IdleTimeTotal(now float64) float64 {
	d.accrue(now)
	return d.idleTime
}

// TransitionTimeTotal returns total time spent transitioning through now.
func (d *Disk) TransitionTimeTotal(now float64) float64 {
	d.accrue(now)
	return d.transTime
}

// TimeAtSpeed returns the time spent at (or transitioning toward) speed s.
func (d *Disk) TimeAtSpeed(now float64, s Speed) float64 {
	d.accrue(now)
	return d.timeAtSpeed[s]
}

// BytesServedMB returns the cumulative data volume served.
func (d *Disk) BytesServedMB() float64 { return d.bytesServedMB }

// Snapshot is a read-only view of a disk's integrated quantities evaluated
// at one instant, used by telemetry sampling.
type Snapshot struct {
	// Speed is the current spindle speed level.
	Speed Speed
	// State is the current activity state.
	State State
	// EnergyJ is cumulative energy through the snapshot time.
	EnergyJ float64
	// BusyTime is cumulative Active time through the snapshot time.
	BusyTime float64
	// Utilization is BusyTime over elapsed time (0 at time zero).
	Utilization float64
	// Transitions is the cumulative speed-transition count.
	Transitions int
	// TransitionRatePerDay is the daily-rate extrapolation of Transitions
	// (see TransitionRatePerDay).
	TransitionRatePerDay float64
}

// Snapshot evaluates the disk's integrated quantities at time now WITHOUT
// committing the accrual. The mutating accessors (EnergyJ, Utilization, ...)
// fold the pending interval into the running sums, which changes the
// floating-point summation order of later accruals; a telemetry read that
// used them would perturb the simulation's results in the last ulp. Snapshot
// instead extends the integrals arithmetically and leaves the disk's state
// untouched, so sampling any number of times is observationally pure.
func (d *Disk) Snapshot(now float64) Snapshot {
	dt := now - d.lastAccrual
	if dt < 0 {
		panic(fmt.Sprintf("diskmodel: disk %d snapshot time moved backwards: %v -> %v", d.id, d.lastAccrual, now))
	}
	energy, busy := d.energyJ, d.busyTime
	switch d.state {
	case Idle:
		energy += d.params.IdlePower(d.speed) * dt
	case Active:
		energy += d.params.ActivePower(d.speed) * dt
		busy += dt
	case Transitioning:
		// Transition energy was charged as a lump sum at BeginTransition.
	}
	s := Snapshot{
		Speed:       d.speed,
		State:       d.state,
		EnergyJ:     energy,
		BusyTime:    busy,
		Transitions: d.transitions,
	}
	if now > 0 {
		s.Utilization = busy / now
		s.TransitionRatePerDay = float64(d.transitions) / (now / 86400.0)
	}
	return s
}

// Requests returns the number of requests this disk has begun serving.
func (d *Disk) Requests() int { return d.requests }

// Checkpoint is the complete serializable state of a Disk. It copies the raw
// accumulator fields without committing any pending accrual, so saving and
// restoring mid-run preserves the exact floating-point summation order of
// later accruals — the property that makes a resumed run bit-identical to an
// uninterrupted one. idleSince is +Inf while the disk is busy, which JSON
// cannot encode, so it is split into a Busy flag plus a finite value.
//
//simlint:checkpoint-for Disk ignore=id,params
type Checkpoint struct {
	Speed            Speed      `json:"speed"`
	State            State      `json:"state"`
	LastAccrual      float64    `json:"last_accrual"`
	EnergyJ          float64    `json:"energy_j"`
	BusyTime         float64    `json:"busy_time"`
	IdleTime         float64    `json:"idle_time"`
	TransTime        float64    `json:"trans_time"`
	Transitions      int        `json:"transitions"`
	UpTransitions    int        `json:"up_transitions"`
	BytesServedMB    float64    `json:"bytes_served_mb"`
	Requests         int        `json:"requests"`
	TransitionTarget Speed      `json:"transition_target"`
	Busy             bool       `json:"busy"` // idleSince == +Inf
	IdleSince        float64    `json:"idle_since"`
	TimeAtSpeed      [2]float64 `json:"time_at_speed"`
	HeadCyl          int        `json:"head_cyl"`
}

// Checkpoint captures the disk's raw state without mutating it.
func (d *Disk) Checkpoint() Checkpoint {
	c := Checkpoint{
		Speed:            d.speed,
		State:            d.state,
		LastAccrual:      d.lastAccrual,
		EnergyJ:          d.energyJ,
		BusyTime:         d.busyTime,
		IdleTime:         d.idleTime,
		TransTime:        d.transTime,
		Transitions:      d.transitions,
		UpTransitions:    d.upTransitions,
		BytesServedMB:    d.bytesServedMB,
		Requests:         d.requests,
		TransitionTarget: d.transitionTarget,
		TimeAtSpeed:      d.timeAtSpeed,
		HeadCyl:          d.headCyl,
	}
	if math.IsInf(d.idleSince, 1) {
		c.Busy = true
	} else {
		c.IdleSince = d.idleSince
	}
	return c
}

// Restore reconstructs a disk from a checkpoint. Params are supplied by the
// caller (they are configuration, not state).
func Restore(id int, p Params, c Checkpoint) *Disk {
	d := &Disk{
		id:               id,
		params:           p,
		speed:            c.Speed,
		state:            c.State,
		lastAccrual:      c.LastAccrual,
		energyJ:          c.EnergyJ,
		busyTime:         c.BusyTime,
		idleTime:         c.IdleTime,
		transTime:        c.TransTime,
		transitions:      c.Transitions,
		upTransitions:    c.UpTransitions,
		bytesServedMB:    c.BytesServedMB,
		requests:         c.Requests,
		transitionTarget: c.TransitionTarget,
		idleSince:        c.IdleSince,
		timeAtSpeed:      c.TimeAtSpeed,
		headCyl:          c.HeadCyl,
	}
	if c.Busy {
		d.idleSince = math.Inf(1)
	}
	return d
}

package diskmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestValidateCatchesEachField(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero capacity", func(p *Params) { p.CapacityMB = 0 }},
		{"zero high rpm", func(p *Params) { p.RPMHigh = 0 }},
		{"zero low rpm", func(p *Params) { p.RPMLow = 0 }},
		{"low rpm above high", func(p *Params) { p.RPMLow = p.RPMHigh + 1 }},
		{"negative seek", func(p *Params) { p.AvgSeek = -1 }},
		{"zero transfer", func(p *Params) { p.TransferHigh = 0 }},
		{"negative low transfer", func(p *Params) { p.TransferLow = -1 }},
		{"low transfer above high", func(p *Params) { p.TransferLow = p.TransferHigh * 2 }},
		{"zero active high power", func(p *Params) { p.PowerActiveHigh = 0 }},
		{"zero idle low power", func(p *Params) { p.PowerIdleLow = 0 }},
		{"idle low above idle high", func(p *Params) { p.PowerIdleLow = p.PowerIdleHigh + 1 }},
		{"negative up time", func(p *Params) { p.TransitionUpTime = -1 }},
		{"negative down energy", func(p *Params) { p.TransitionDownEnergy = -1 }},
	}
	for _, tc := range cases {
		p := DefaultParams()
		tc.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid params", tc.name)
		}
	}
}

func TestDerivedLowTransferRate(t *testing.T) {
	p := DefaultParams()
	want := p.TransferHigh * p.RPMLow / p.RPMHigh // 55 * 0.36 = 19.8
	if got := p.TransferRate(Low); math.Abs(got-want) > 1e-12 {
		t.Fatalf("TransferRate(Low) = %v, want %v", got, want)
	}
	if got := p.TransferRate(High); got != p.TransferHigh {
		t.Fatalf("TransferRate(High) = %v, want %v", got, p.TransferHigh)
	}
	// Explicit low-speed rate overrides derivation.
	p.TransferLow = 21
	if got := p.TransferRate(Low); got != 21 {
		t.Fatalf("explicit TransferRate(Low) = %v, want 21", got)
	}
}

func TestRotationalLatency(t *testing.T) {
	p := DefaultParams()
	if got := p.RotationalLatency(High); math.Abs(got-0.003) > 1e-12 {
		t.Fatalf("RotationalLatency(High) = %v, want 3ms", got)
	}
	if got := p.RotationalLatency(Low); math.Abs(got-30.0/3600) > 1e-12 {
		t.Fatalf("RotationalLatency(Low) = %v, want %v", got, 30.0/3600)
	}
}

func TestServiceTimeComposition(t *testing.T) {
	p := DefaultParams()
	size := 2.5 // MB
	want := p.AvgSeek + p.RotationalLatency(High) + size/p.TransferHigh
	if got := p.ServiceTime(size, High); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ServiceTime = %v, want %v", got, want)
	}
}

func TestServiceTimeLowSlowerThanHigh(t *testing.T) {
	p := DefaultParams()
	for _, size := range []float64{0, 0.01, 0.1, 1, 10, 100} {
		if p.ServiceTime(size, Low) <= p.ServiceTime(size, High) {
			t.Fatalf("size %v: low-speed service not slower than high-speed", size)
		}
	}
}

func TestServiceTimeNegativeSizeClamped(t *testing.T) {
	p := DefaultParams()
	if got, want := p.ServiceTime(-5, High), p.PositioningTime(High); got != want {
		t.Fatalf("ServiceTime(-5) = %v, want bare positioning time %v", got, want)
	}
}

func TestActiveEnergyPerMBOrdering(t *testing.T) {
	// J/MB at low speed exceeds high speed for this parameter set: the
	// power saving (13.5 -> 5.4 W) is smaller than the slowdown (55 ->
	// 19.8 MB/s), which is exactly why serving popular data on low-speed
	// disks wastes energy and why skew policies keep hot data on fast
	// disks.
	p := DefaultParams()
	if p.ActiveEnergyPerMB(Low) <= p.ActiveEnergyPerMB(High) {
		t.Fatalf("expected low-speed J/MB (%v) > high-speed J/MB (%v)",
			p.ActiveEnergyPerMB(Low), p.ActiveEnergyPerMB(High))
	}
}

func TestTransitionCostAccessors(t *testing.T) {
	p := DefaultParams()
	if p.TransitionTime(High) != p.TransitionUpTime {
		t.Fatal("TransitionTime(High) mismatch")
	}
	if p.TransitionTime(Low) != p.TransitionDownTime {
		t.Fatal("TransitionTime(Low) mismatch")
	}
	if p.TransitionEnergy(High) != p.TransitionUpEnergy {
		t.Fatal("TransitionEnergy(High) mismatch")
	}
	if p.TransitionEnergy(Low) != p.TransitionDownEnergy {
		t.Fatal("TransitionEnergy(Low) mismatch")
	}
}

func TestBreakEvenIdle(t *testing.T) {
	p := DefaultParams()
	te := p.BreakEvenIdle()
	if te <= 0 {
		t.Fatalf("break-even idle %v must be positive for default params", te)
	}
	// At exactly the break-even gap the two strategies cost the same.
	stayHigh := p.PowerIdleHigh * te
	dipLow := p.TransitionDownEnergy + p.TransitionUpEnergy +
		p.PowerIdleLow*(te-p.TransitionDownTime-p.TransitionUpTime)
	if math.Abs(stayHigh-dipLow) > 1e-9 {
		t.Fatalf("break-even not balanced: stay=%v dip=%v", stayHigh, dipLow)
	}
	// Longer gaps favour dipping low.
	long := te * 3
	stayHigh = p.PowerIdleHigh * long
	dipLow = p.TransitionDownEnergy + p.TransitionUpEnergy +
		p.PowerIdleLow*(long-p.TransitionDownTime-p.TransitionUpTime)
	if dipLow >= stayHigh {
		t.Fatal("long idle gap should favour the low-speed dip")
	}
}

func TestSpeedString(t *testing.T) {
	if Low.String() != "low" || High.String() != "high" {
		t.Fatal("Speed.String mismatch")
	}
	if Speed(9).String() != "Speed(9)" {
		t.Fatal("unknown speed String mismatch")
	}
}

func TestStateString(t *testing.T) {
	if Idle.String() != "idle" || Active.String() != "active" || Transitioning.String() != "transitioning" {
		t.Fatal("State.String mismatch")
	}
	if State(9).String() != "State(9)" {
		t.Fatal("unknown state String mismatch")
	}
}

// Property: service time is monotone non-decreasing in file size at both
// speeds.
func TestPropertyServiceTimeMonotone(t *testing.T) {
	p := DefaultParams()
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		return p.ServiceTime(lo, High) <= p.ServiceTime(hi, High) &&
			p.ServiceTime(lo, Low) <= p.ServiceTime(hi, Low)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

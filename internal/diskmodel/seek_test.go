package diskmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSeekModelEnabled(t *testing.T) {
	if (SeekModel{}).Enabled() {
		t.Fatal("zero model enabled")
	}
	if !DefaultSeekModel().Enabled() {
		t.Fatal("default model disabled")
	}
	bad := []SeekModel{
		{Cylinders: 1, SeekMin: 0.001, SeekMax: 0.01},
		{Cylinders: 100, SeekMin: 0.01, SeekMax: 0.001}, // min > max
		{Cylinders: 100, SeekMin: -1, SeekMax: 0.01},
	}
	for i, m := range bad {
		if m.Enabled() {
			t.Errorf("bad model %d enabled", i)
		}
	}
}

func TestSeekTimeCurve(t *testing.T) {
	m := DefaultSeekModel()
	if m.Time(0) != 0 {
		t.Fatal("zero-distance seek not free")
	}
	if m.Time(-5) != 0 {
		t.Fatal("negative distance not clamped")
	}
	if got := m.Time(1); math.Abs(got-m.SeekMin) > 1e-4 {
		t.Fatalf("single-track seek %v, want ≈SeekMin %v", got, m.SeekMin)
	}
	if got := m.Time(m.Cylinders - 1); math.Abs(got-m.SeekMax) > 1e-9 {
		t.Fatalf("full-stroke seek %v, want SeekMax %v", got, m.SeekMax)
	}
	// Beyond-full-stroke clamps.
	if m.Time(10*m.Cylinders) != m.Time(m.Cylinders-1) {
		t.Fatal("overlong distance not clamped")
	}
	// Monotone in distance.
	prev := 0.0
	for d := 1; d < m.Cylinders; d += 997 {
		cur := m.Time(d)
		if cur < prev {
			t.Fatalf("seek time decreasing at distance %d", d)
		}
		prev = cur
	}
}

func TestSeekMeanMatchesEmpirical(t *testing.T) {
	m := DefaultSeekModel()
	rng := rand.New(rand.NewSource(9))
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		a, b := rng.Intn(m.Cylinders), rng.Intn(m.Cylinders)
		d := a - b
		if d < 0 {
			d = -d
		}
		sum += m.Time(d)
	}
	analytic := m.MeanTime()
	empirical := sum / n
	if math.Abs(analytic-empirical)/analytic > 0.01 {
		t.Fatalf("MeanTime %v vs empirical %v", analytic, empirical)
	}
	// And close to the flat AvgSeek it replaces (same drive class).
	flat := DefaultParams().AvgSeek
	if math.Abs(analytic-flat)/flat > 0.25 {
		t.Fatalf("seek-curve mean %v far from flat AvgSeek %v", analytic, flat)
	}
}

func TestCylinderOfDeterministicAndInRange(t *testing.T) {
	m := DefaultSeekModel()
	seen := make(map[int]bool)
	for id := 0; id < 5000; id++ {
		c := m.CylinderOf(id)
		if c < 0 || c >= m.Cylinders {
			t.Fatalf("cylinder %d out of range for id %d", c, id)
		}
		if c != m.CylinderOf(id) {
			t.Fatal("CylinderOf not deterministic")
		}
		seen[c] = true
	}
	// Fibonacci hashing must spread: 5000 ids over 50000 cylinders should
	// produce nearly 5000 distinct values.
	if len(seen) < 4900 {
		t.Fatalf("poor spread: %d distinct cylinders for 5000 ids", len(seen))
	}
	if (SeekModel{}).CylinderOf(42) != 0 {
		t.Fatal("disabled model must map to cylinder 0")
	}
}

func TestServiceTimeAtFallback(t *testing.T) {
	p := DefaultParams() // no seek model
	if p.ServiceTimeAt(1, High, 100) != p.ServiceTime(1, High) {
		t.Fatal("fallback mismatch without seek model")
	}
	p.Seek = DefaultSeekModel()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	withSeek := p.ServiceTimeAt(1, High, p.Seek.Cylinders-1)
	noSeek := p.ServiceTimeAt(1, High, 0)
	if withSeek <= noSeek {
		t.Fatal("full-stroke service not slower than zero-seek")
	}
	if math.Abs((withSeek-noSeek)-p.Seek.SeekMax) > 1e-9 {
		t.Fatalf("seek component %v, want %v", withSeek-noSeek, p.Seek.SeekMax)
	}
}

func TestValidateRejectsMalformedSeek(t *testing.T) {
	p := DefaultParams()
	p.Seek = SeekModel{Cylinders: 10, SeekMin: 0.01, SeekMax: 0.001}
	if p.Validate() == nil {
		t.Fatal("malformed seek model accepted")
	}
}

func TestDiskBeginServiceAtTracksHead(t *testing.T) {
	p := DefaultParams()
	p.Seek = DefaultSeekModel()
	d := New(0, p, High)
	if d.HeadCylinder() != 0 {
		t.Fatal("head not at 0 initially")
	}
	dur1 := d.BeginServiceAt(0, 1, 30000)
	d.EndService(dur1)
	if d.HeadCylinder() != 30000 {
		t.Fatalf("head at %d, want 30000", d.HeadCylinder())
	}
	// Re-seeking to the same cylinder pays no seek.
	dur2 := d.BeginServiceAt(dur1, 1, 30000)
	d.EndService(dur1 + dur2)
	want := p.RotationalLatency(High) + 1/p.TransferRate(High)
	if math.Abs(dur2-want) > 1e-12 {
		t.Fatalf("same-cylinder service %v, want %v", dur2, want)
	}
	if dur1 <= dur2 {
		t.Fatal("long seek not slower than no seek")
	}
}

func TestDriveProfilesValid(t *testing.T) {
	for name, p := range map[string]Params{
		"default":    DefaultParams(),
		"enterprise": EnterpriseParams(),
		"nearline":   NearlineParams(),
	} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s profile invalid: %v", name, err)
		}
		if p.BreakEvenIdle() <= 0 {
			t.Errorf("%s profile has nonpositive break-even idle", name)
		}
	}
	// Ordering sanity across classes.
	if EnterpriseParams().TransferHigh <= DefaultParams().TransferHigh {
		t.Error("enterprise should out-transfer the default profile")
	}
	if NearlineParams().PowerIdleHigh >= DefaultParams().PowerIdleHigh {
		t.Error("nearline should idle cooler than the default profile")
	}
}

// Property: ServiceTimeAt is monotone in seek distance.
func TestPropertyServiceTimeAtMonotoneInDistance(t *testing.T) {
	p := DefaultParams()
	p.Seek = DefaultSeekModel()
	f := func(d1, d2 uint16) bool {
		a, b := int(d1), int(d2)
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return p.ServiceTimeAt(1, High, lo) <= p.ServiceTimeAt(1, High, hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

package flagcheck

import (
	"strings"
	"testing"
)

func TestChoice(t *testing.T) {
	cases := []struct {
		name    string
		flag    string
		got     string
		valid   []string
		wantErr string // substring; empty means accept
	}{
		{"exact match", "policy", "read", []string{"read", "maid", "pdc"}, ""},
		{"last entry", "policy", "pdc", []string{"read", "maid", "pdc"}, ""},
		{"typo rejected", "policy", "raed", []string{"read", "maid", "pdc"},
			`invalid -policy "raed": valid values: read | maid | pdc`},
		{"case sensitive", "raid", "RAID5", []string{"raid5", "raid6"},
			`invalid -raid "RAID5"`},
		{"empty value rejected", "fig", "", []string{"7", "all"},
			`invalid -fig ""`},
		{"empty valid set rejects", "x", "anything", nil, `invalid -x "anything"`},
		{"prefix is not a match", "routing", "round", []string{"round-robin"},
			`valid values: round-robin`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Choice(tc.flag, tc.got, tc.valid...)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Choice(%q, %q) = %v, want nil", tc.flag, tc.got, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Choice(%q, %q) = nil, want error containing %q", tc.flag, tc.got, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Choice(%q, %q) = %q, want substring %q", tc.flag, tc.got, err, tc.wantErr)
			}
		})
	}
}

type kind string

func TestStrings(t *testing.T) {
	got := Strings([]kind{"a", "b"})
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Strings = %v", got)
	}
	if err := Choice("k", "b", Strings([]kind{"a", "b"})...); err != nil {
		t.Fatalf("Choice through Strings: %v", err)
	}
}

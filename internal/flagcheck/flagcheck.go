// Package flagcheck validates enumerated command-line flag values. Every
// command that accepts a closed set of choices (-policy, -raid, -fig,
// -routing) funnels through Choice, so a typo always produces the same
// shape of error — naming the flag, the rejected value, and the full list
// of accepted values — instead of a bare "unknown X".
package flagcheck

import (
	"fmt"
	"strings"
)

// Choice returns nil when got is one of valid, and otherwise an error of the
// form `invalid -name "got": valid values: a | b | c`. An empty valid set is
// a programming error and always rejects.
func Choice(name, got string, valid ...string) error {
	for _, v := range valid {
		if got == v {
			return nil
		}
	}
	return fmt.Errorf("invalid -%s %q: valid values: %s", name, got, strings.Join(valid, " | "))
}

// Strings converts a slice of any string-kinded type (PolicyKind,
// RoutingPolicy, RAIDLevel, ...) into the []string Choice wants.
func Strings[T ~string](vals []T) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = string(v)
	}
	return out
}

package array

// Decision tracing and request attribution. traceState exists only when the
// run's telemetry recorder carries a DecisionLog (Config.Telemetry.Decisions
// non-nil); every instrumentation site below is gated on s.trc != nil, so a
// run without it pays one nil check per site, allocates nothing, and — since
// tracing only reads simulation state and appends to its own log — produces
// bit-identical results either way. The one deliberate exception is
// Config.DecisionOverrides, counterfactual replay's lever: an override
// changes which decisions execute, and is only ever set by replay runs.

import (
	"repro/internal/diskmodel"
	"repro/internal/telemetry"
)

// labelRequestSpan names the request-lifetime spans the engine's span
// tracer renders (arrival to completion, virtual time).
const labelRequestSpan = "request"

// Hook names used as fallback decision causes when a policy does not
// declare one via Context.SetDecisionCause.
const (
	hookArrival         = "arrival"
	hookRequestComplete = "request-complete"
	hookEpoch           = "epoch"
	hookIdleTimeout     = "idle-threshold"
	hookDiskFailure     = "disk-failure"
	hookDiskRepair      = "disk-repair"
	hookDomainShock     = "domain-shock"
)

// Override actions accepted in Config.DecisionOverrides.
const (
	// OverrideSkip suppresses the decision: a spin-down never starts its
	// transition, a migration or failover re-home never happens. Spin-up
	// and rebuild-pace decisions cannot be skipped (a parked disk with
	// queued work must eventually serve it).
	OverrideSkip = "skip"
)

// traceState is the per-run decision-tracing state.
type traceState struct {
	log       *telemetry.DecisionLog
	overrides map[uint64]string // decision seq -> override action (replay only)

	// cause is the explicit reason set by Context.SetDecisionCause for the
	// policy's next action; hook is the fallback naming the policy hook
	// currently running. Both live only within one hook invocation —
	// checkpoints are never written mid-hook, so neither is serialized.
	cause string
	hook  string

	// pendingCause[d] is the cause captured when disk d's transition was
	// requested, consumed when the transition actually begins (which may be
	// a later event if the disk was busy).
	pendingCause []string

	// Open decisions awaiting their observed outcome.
	parkSeq    []uint64       // per disk: spin-down decision, 0 = none
	parkT      []float64      // per disk: when the down transition completed
	wakeSeq    []uint64       // per disk: spin-up decision, 0 = none
	rebuildSeq []uint64       // per disk: rebuild-pace decision, 0 = none
	migSeq     map[int]uint64 // fileID -> migrate decision

	// Request attribution accumulators.
	attr      telemetry.Attribution // running totals
	lastSnap  telemetry.Attribution // totals at the last epoch boundary
	epochRows []telemetry.EpochAttribution
}

// newTraceState wires decision tracing for one run.
func newTraceState(cfg *Config) *traceState {
	return &traceState{
		log:          cfg.Telemetry.Decisions,
		overrides:    cfg.DecisionOverrides,
		pendingCause: make([]string, cfg.Disks),
		parkSeq:      make([]uint64, cfg.Disks),
		parkT:        make([]float64, cfg.Disks),
		wakeSeq:      make([]uint64, cfg.Disks),
		rebuildSeq:   make([]uint64, cfg.Disks),
		migSeq:       make(map[int]uint64),
	}
}

// takeCause returns the explicit cause if one was declared (consuming it),
// else the name of the hook currently running.
func (t *traceState) takeCause() string {
	if t.cause != "" {
		c := t.cause
		t.cause = ""
		return c
	}
	return t.hook
}

// setHook marks the policy hook about to run as the fallback cause; endHook
// clears it and any unconsumed explicit cause so neither leaks into
// decisions taken outside a hook.
func (s *sim) setHook(name string) {
	if s.trc != nil {
		s.trc.hook = name
	}
}

func (s *sim) endHook() {
	if s.trc != nil {
		s.trc.hook = ""
		s.trc.cause = ""
	}
}

// overrideFor returns the replay override for decision seq, marking the
// record when one applies.
func (t *traceState) overrideFor(seq uint64) string {
	act, ok := t.overrides[seq]
	if !ok {
		return ""
	}
	t.log.Resolve(seq, func(d *telemetry.Decision) { d.Overridden = act })
	return act
}

// recordSpinDown logs a spin-down decision for disk d and reports whether
// the transition should proceed (false under a skip override).
func (s *sim) recordSpinDown(d int, now float64) bool {
	t := s.trc
	p := s.cfg.DiskParams
	seq := t.log.Append(telemetry.Decision{
		T:     now,
		Epoch: s.epochs,
		Kind:  telemetry.DecisionSpinDown,
		Cause: t.consumePendingCause(d),
		Disk:  d,
		// The park must save the idle-power delta long enough to amortize
		// the down+up transition round trip; the next request pays the
		// spin-up time.
		PredictedSaveW: p.IdlePower(diskmodel.High) - p.IdlePower(diskmodel.Low),
		PredictedJ:     p.TransitionEnergy(diskmodel.Low) + p.TransitionEnergy(diskmodel.High),
		PredictedWaitS: p.TransitionTime(diskmodel.High),
	})
	if t.overrideFor(seq) == OverrideSkip {
		return false
	}
	t.parkSeq[d] = seq
	return true
}

// recordSpinUp logs a spin-up decision for disk d. Spin-ups cannot be
// skipped: queued work must eventually be served.
func (s *sim) recordSpinUp(d int, now float64) {
	t := s.trc
	seq := t.log.Append(telemetry.Decision{
		T:              now,
		Epoch:          s.epochs,
		Kind:           telemetry.DecisionSpinUp,
		Cause:          t.consumePendingCause(d),
		Disk:           d,
		PredictedJ:     s.cfg.DiskParams.TransitionEnergy(diskmodel.High),
		PredictedWaitS: s.cfg.DiskParams.TransitionTime(diskmodel.High),
	})
	t.wakeSeq[d] = seq
}

// consumePendingCause returns the cause captured when disk d's transition
// was requested, falling back to the current hook context.
func (t *traceState) consumePendingCause(d int) string {
	if c := t.pendingCause[d]; c != "" {
		t.pendingCause[d] = ""
		return c
	}
	return t.takeCause()
}

// onTransitionDone accrues the finished transition into disk d's spin-wait
// clock and resolves the open spin-up/spin-down decisions.
func (s *sim) onTransitionDone(d int, now float64) {
	t := s.trc
	ds := s.disks[d]
	to := ds.disk.Speed()
	dur := s.cfg.DiskParams.TransitionTime(to)
	ds.transBusy += dur
	ds.transStart = 0
	if to == diskmodel.Low {
		t.parkT[d] = now
		return
	}
	// Spun up: the spin-up decision resolves now, and with it the park it
	// ended. WakeRequests is the user work that sat out the transition.
	if seq := t.wakeSeq[d]; seq != 0 {
		t.wakeSeq[d] = 0
		waiting := ds.fg.len()
		t.log.Resolve(seq, func(rec *telemetry.Decision) {
			rec.Observed = true
			rec.ObservedWaitS = dur
			rec.WakeRequests = waiting
		})
	}
	if seq := t.parkSeq[d]; seq != 0 {
		t.parkSeq[d] = 0
		parked := (now - dur) - t.parkT[d]
		if parked < 0 {
			parked = 0
		}
		t.log.Resolve(seq, func(rec *telemetry.Decision) {
			rec.Observed = true
			rec.ObservedParkedS = parked
			rec.ObservedJ = parked*rec.PredictedSaveW - rec.PredictedJ
		})
	}
}

// recordMigrate logs a migration decision and reports whether it should
// proceed (false under a skip override). The predicted cost is the energy
// and disk occupancy of moving the file at high speed; the observed cost is
// how long the move actually took to land.
func (s *sim) recordMigrate(fileID, from, to int, sizeMB, now float64) bool {
	t := s.trc
	p := s.cfg.DiskParams
	seq := t.log.Append(telemetry.Decision{
		T:              now,
		Epoch:          s.epochs,
		Kind:           telemetry.DecisionMigrate,
		Cause:          t.takeCause(),
		FileID:         fileID,
		From:           from,
		To:             to,
		SizeMB:         sizeMB,
		PredictedJ:     2 * sizeMB * p.ActiveEnergyPerMB(diskmodel.High),
		PredictedWaitS: 2 * p.ServiceTime(sizeMB, diskmodel.High),
	})
	if t.overrideFor(seq) == OverrideSkip {
		return false
	}
	t.migSeq[fileID] = seq
	return true
}

// resolveMigration closes a migration decision when its write leg lands.
func (s *sim) resolveMigration(fileID int, now float64) {
	t := s.trc
	seq, ok := t.migSeq[fileID]
	if !ok {
		return
	}
	delete(t.migSeq, fileID)
	t.log.Resolve(seq, func(rec *telemetry.Decision) {
		rec.Observed = true
		rec.ObservedWaitS = now - rec.T
	})
}

// dropMigration abandons a migration decision whose transfer was discarded
// (its disk failed mid-move); the record stays unobserved.
func (s *sim) dropMigration(fileID int) {
	delete(s.trc.migSeq, fileID)
}

// recordReassign logs a failover re-home and reports whether it should
// proceed (false under a skip override). The action is instantaneous, so
// the record is observed immediately.
func (s *sim) recordReassign(fileID, from, to int, now float64) bool {
	t := s.trc
	seq := t.log.Append(telemetry.Decision{
		T:        now,
		Epoch:    s.epochs,
		Kind:     telemetry.DecisionReassign,
		Cause:    t.takeCause(),
		FileID:   fileID,
		From:     from,
		To:       to,
		Observed: true,
	})
	return t.overrideFor(seq) != OverrideSkip
}

// recordRebuildPace logs a rebuild pacing decision for disk d's
// replacement: totalMB at rate MB/s. Not overridable — a replacement must
// rebuild its data.
func (s *sim) recordRebuildPace(d int, totalMB, rate, now float64) {
	t := s.trc
	t.rebuildSeq[d] = t.log.Append(telemetry.Decision{
		T:              now,
		Epoch:          s.epochs,
		Kind:           telemetry.DecisionRebuildPace,
		Cause:          t.takeCause(),
		Disk:           d,
		SizeMB:         totalMB,
		PredictedJ:     totalMB * s.cfg.DiskParams.ActiveEnergyPerMB(diskmodel.High),
		PredictedWaitS: totalMB / rate,
	})
}

// resolveRebuild closes disk d's rebuild-pace decision when the rebuild
// drains (or abandons it unobserved when aborted by a new failure).
func (s *sim) resolveRebuild(d int, now float64, finished bool) {
	t := s.trc
	seq := t.rebuildSeq[d]
	if seq == 0 {
		return
	}
	t.rebuildSeq[d] = 0
	if !finished {
		return
	}
	t.log.Resolve(seq, func(rec *telemetry.Decision) {
		rec.Observed = true
		rec.ObservedWaitS = now - rec.T
	})
}

// noteEnqueue stamps op o with the state needed to split its eventual
// response time, relative to disk d right now.
func (s *sim) noteEnqueue(d int, o *op, now float64) {
	ds := s.disks[d]
	o.enqT = now
	o.spinBase = ds.transBusy
	if ds.disk.State() == diskmodel.Transitioning {
		// Mid-transition: the part that elapsed before this op arrived is
		// not its wait.
		o.spinBase += now - ds.transStart
	}
}

// attributeCompletion decomposes one completed operation's response time
// and energy into the running attribution totals. For striped requests the
// chunk-level components accumulate as chunks complete; the request itself
// (and its degraded flag) is counted by attributeStripe when the last chunk
// lands.
func (s *sim) attributeCompletion(d int, o *op, now float64) {
	ds := s.disks[d]
	p := s.cfg.DiskParams
	sp := ds.disk.Speed()
	a := &s.trc.attr
	transfer := o.sizeMB / p.TransferRate(sp)
	seek := o.svcDur - transfer
	if seek < 0 {
		seek = 0
	}
	queueWait := (now - o.svcDur) - o.enqT - o.waitSpin
	if queueWait < 0 {
		queueWait = 0
	}
	a.QueueWaitS += queueWait
	a.SpinupWaitS += o.waitSpin
	if o.waitSpin > 0 {
		a.SpinupWaits++
	}
	a.SeekS += seek
	a.TransferS += transfer
	a.ServiceEnergyJ += p.ActivePower(sp) * o.svcDur
	switch o.kind {
	case opUser:
		a.Requests++
		if o.rerouted {
			a.DegradedRequests++
			a.DegradedPenaltyS += now - o.arrival
		}
	}
}

// attributeStripe counts one completed striped request.
func (s *sim) attributeStripe(o *op, now float64) {
	a := &s.trc.attr
	a.Requests++
	if o.rerouted {
		a.DegradedRequests++
		a.DegradedPenaltyS += now - o.stripe.arrival
	}
}

// snapEpochAttribution closes the attribution row for the epoch ending now.
func (s *sim) snapEpochAttribution(epoch int) {
	t := s.trc
	row := t.attr.Delta(t.lastSnap)
	if row == (telemetry.Attribution{}) {
		return
	}
	t.epochRows = append(t.epochRows, telemetry.EpochAttribution{Epoch: epoch, Attribution: row})
	t.lastSnap = t.attr
}

// attributionReport assembles the run-level rollup for Result.
func (s *sim) attributionReport() *telemetry.AttributionReport {
	t := s.trc
	s.snapEpochAttribution(s.epochs + 1) // tail past the last epoch boundary
	rep := &telemetry.AttributionReport{Totals: t.attr, Epochs: t.epochRows}
	for _, rec := range t.log.Records() {
		rep.Decisions++
		switch rec.Kind {
		case telemetry.DecisionSpinDown:
			rep.SpinDowns++
			if rec.Observed {
				rep.ParkedSeconds += rec.ObservedParkedS
				rep.ParkNetSavedJ += rec.ObservedJ
			}
		case telemetry.DecisionSpinUp:
			rep.SpinUps++
			rep.WakeRequests += rec.WakeRequests
		case telemetry.DecisionMigrate:
			rep.Migrations++
		case telemetry.DecisionReassign:
			rep.Reassigns++
		case telemetry.DecisionRebuildPace:
			rep.RebuildPaces++
		}
	}
	return rep
}

// traceCkptState is the serializable form of a traceState. cause and hook
// live only within one policy hook invocation and overrides are replay
// configuration re-supplied by the caller, so none of the three travels.
//
//simlint:checkpoint-for traceState ignore=cause,hook,overrides alias=log:Decisions
type traceCkptState struct {
	Decisions    telemetry.DecisionLogState   `json:"decisions"`
	PendingCause []string                     `json:"pending_cause,omitempty"`
	ParkSeq      []uint64                     `json:"park_seq,omitempty"`
	ParkT        []float64                    `json:"park_t,omitempty"`
	WakeSeq      []uint64                     `json:"wake_seq,omitempty"`
	RebuildSeq   []uint64                     `json:"rebuild_seq,omitempty"`
	MigSeq       map[int]uint64               `json:"mig_seq,omitempty"`
	Attr         telemetry.Attribution        `json:"attr"`
	LastSnap     telemetry.Attribution        `json:"last_snap"`
	EpochRows    []telemetry.EpochAttribution `json:"epoch_rows,omitempty"`
}

// ckpt serializes the tracing state.
func (t *traceState) ckpt() *traceCkptState {
	return &traceCkptState{
		Decisions:    t.log.State(),
		PendingCause: t.pendingCause,
		ParkSeq:      t.parkSeq,
		ParkT:        t.parkT,
		WakeSeq:      t.wakeSeq,
		RebuildSeq:   t.rebuildSeq,
		MigSeq:       t.migSeq,
		Attr:         t.attr,
		LastSnap:     t.lastSnap,
		EpochRows:    t.epochRows,
	}
}

// restore loads a checkpointed tracing state into t. Per-disk slices are
// length-checked defensively; a mismatched checkpoint is rejected earlier by
// the disk-count guard in Resume.
func (t *traceState) restore(st *traceCkptState) {
	t.log.SetState(st.Decisions)
	copy(t.pendingCause, st.PendingCause)
	copy(t.parkSeq, st.ParkSeq)
	copy(t.parkT, st.ParkT)
	copy(t.wakeSeq, st.WakeSeq)
	copy(t.rebuildSeq, st.RebuildSeq)
	for id, seq := range st.MigSeq {
		t.migSeq[id] = seq
	}
	t.attr = st.Attr
	t.lastSnap = st.LastSnap
	t.epochRows = st.EpochRows
}

package array

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/des"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// telemetryRun executes the reference workload with the given recorder. The
// spin-down policy exercises transitions, idle timers, and both speeds.
func telemetryRun(t *testing.T, rec *telemetry.Recorder) *Result {
	t.Helper()
	tr := tinyTrace(t, 40, 3000, 0.02) // ~60 s
	res, err := Run(Config{
		Disks:          4,
		Trace:          tr,
		Policy:         &spinDownPolicy{h: 2},
		EpochSeconds:   10,
		SampleInterval: 5,
		Telemetry:      rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The central telemetry invariant: recording changes nothing. A run with a
// full file-backed recorder must produce a Result identical — every float,
// every timeline sample — to the same run with telemetry disabled.
func TestTelemetryOnOffResultsIdentical(t *testing.T) {
	off := telemetryRun(t, nil)

	dir := filepath.Join(t.TempDir(), "tel")
	rec, err := telemetry.Open(telemetry.Config{Dir: dir, TraceEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	on := telemetryRun(t, rec)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(off, on) {
		t.Fatalf("telemetry changed the result:\noff: %+v\non:  %+v", off, on)
	}

	// Golden timeline compare: the exported per-epoch rows are identical
	// byte-for-byte; telemetry adds files next to the run, not columns to it.
	var offCSV, onCSV bytes.Buffer
	if err := WriteTimelineCSV(&offCSV, off.Timeline); err != nil {
		t.Fatal(err)
	}
	if err := WriteTimelineCSV(&onCSV, on.Timeline); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(offCSV.Bytes(), onCSV.Bytes()) {
		t.Fatalf("timeline CSV diverged:\noff:\n%s\non:\n%s", offCSV.String(), onCSV.String())
	}
}

func TestTelemetryDiskSeriesContents(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "tel")
	rec, err := telemetry.Open(telemetry.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	res := telemetryRun(t, rec)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(filepath.Join(dir, "disks.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var rows []telemetry.DiskSample
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var s telemetry.DiskSample
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		rows = append(rows, s)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	// One row per disk per epoch boundary (epochs 0..E-1), one per disk at
	// the post-trace epoch event (E), and one per disk at run end (E+1).
	want := 4 * (res.Epochs + 2)
	if len(rows) != want {
		t.Fatalf("rows = %d, want %d (4 disks x (%d epochs + post-trace + final))",
			len(rows), want, res.Epochs)
	}
	lastT, lastEpoch := 0.0, 0
	perDisk := map[int]telemetry.DiskSample{}
	for i, r := range rows {
		if r.Disk < 0 || r.Disk >= 4 {
			t.Fatalf("row %d disk %d out of range", i, r.Disk)
		}
		if r.T < lastT || r.Epoch < lastEpoch {
			t.Fatalf("row %d goes backwards (t %v->%v, epoch %d->%d)", i, lastT, r.T, lastEpoch, r.Epoch)
		}
		lastT, lastEpoch = r.T, r.Epoch
		if r.Speed != "low" && r.Speed != "high" {
			t.Fatalf("row %d speed %q", i, r.Speed)
		}
		if r.Utilization < 0 || r.Utilization > 1 {
			t.Fatalf("row %d utilization %v", i, r.Utilization)
		}
		if prev, ok := perDisk[r.Disk]; ok && (r.EnergyJ < prev.EnergyJ || r.Transitions < prev.Transitions) {
			t.Fatalf("row %d disk %d cumulative fields decreased: %+v -> %+v", i, r.Disk, prev, r)
		}
		if r.AFRPct <= 0 {
			t.Fatalf("row %d AFR %v, want positive", i, r.AFRPct)
		}
		perDisk[r.Disk] = r
	}
	// The run-final rows agree with the Result's per-disk report.
	for d, last := range perDisk {
		if last.Epoch != res.Epochs+1 {
			t.Fatalf("disk %d final row epoch %d, want %d", d, last.Epoch, res.Epochs+1)
		}
		if last.Transitions != res.PerDisk[d].Transitions {
			t.Fatalf("disk %d final transitions %d, result says %d",
				d, last.Transitions, res.PerDisk[d].Transitions)
		}
	}
}

func TestTelemetryMetricsMatchResult(t *testing.T) {
	rec := &telemetry.Recorder{Metrics: telemetry.NewRegistry()}
	res := telemetryRun(t, rec)

	counter := func(name string) uint64 { return rec.Metrics.Counter(name).Value() }
	if got := counter("sim.arrivals"); got != uint64(res.Requests) {
		t.Fatalf("sim.arrivals = %d, want %d", got, res.Requests)
	}
	if got := counter("sim.completions"); got != uint64(res.Requests) {
		t.Fatalf("sim.completions = %d, want %d", got, res.Requests)
	}
	if got := counter("sim.epochs"); got != uint64(res.Epochs) {
		t.Fatalf("sim.epochs = %d, want %d", got, res.Epochs)
	}
	if got := counter("sim.migrations"); got != uint64(res.Migrations) {
		t.Fatalf("sim.migrations = %d, want %d", got, res.Migrations)
	}
	var transitions uint64
	for _, d := range res.PerDisk {
		transitions += uint64(d.Transitions)
	}
	if got := counter("sim.speed_transitions"); got != transitions {
		t.Fatalf("sim.speed_transitions = %d, want %d", got, transitions)
	}
	lat := rec.Metrics.Histogram("sim.response_seconds", telemetry.LatencyBounds())
	if lat.Count() != uint64(res.Requests) {
		t.Fatalf("latency observations = %d, want %d", lat.Count(), res.Requests)
	}
	// The histogram and the result's response stream accumulate the same
	// observations in different summation orders; agree to float slack.
	if mean := lat.Sum() / float64(lat.Count()); math.Abs(mean-res.MeanResponse) > 1e-9*res.MeanResponse {
		t.Fatalf("histogram mean %v != result mean %v", mean, res.MeanResponse)
	}
	if got := rec.Metrics.Gauge("sim.events_fired").Value(); got != float64(res.EventsFired) {
		t.Fatalf("sim.events_fired gauge = %v, want %d", got, res.EventsFired)
	}
}

// The ops plane inherits the central telemetry invariant: attaching a Live
// publisher and an engine Watch changes nothing about the result, and the
// handles end the run agreeing with it.
func TestOpsPlaneOnOffResultsIdentical(t *testing.T) {
	off := telemetryRun(t, nil)

	live := telemetry.NewLive()
	watch := des.NewWatch()
	tr := tinyTrace(t, 40, 3000, 0.02)
	on, err := Run(Config{
		Disks:          4,
		Trace:          tr,
		Policy:         &spinDownPolicy{h: 2},
		EpochSeconds:   10,
		SampleInterval: 5,
		Telemetry:      &telemetry.Recorder{Live: live},
		Watch:          watch,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(off, on) {
		t.Fatalf("ops plane changed the result:\noff: %+v\non:  %+v", off, on)
	}

	ws := watch.Snapshot()
	if ws.Fired != on.EventsFired {
		t.Errorf("watch fired = %d, want %d", ws.Fired, on.EventsFired)
	}
	if !ws.Done {
		t.Error("watch not marked done after a successful run")
	}
	ls := live.Snapshot()
	if ls.Requests != uint64(on.Requests) {
		t.Errorf("live requests = %d, want %d", ls.Requests, on.Requests)
	}
	if ls.DisksHigh+ls.DisksLow != 4 {
		t.Errorf("live spin-state counts %d+%d, want 4 disks", ls.DisksHigh, ls.DisksLow)
	}
	if ls.EnergyJ <= 0 || ls.SimSeconds <= 0 {
		t.Errorf("live aggregates not published: energy %v, sim time %v", ls.EnergyJ, ls.SimSeconds)
	}
}

// A disabled telemetry sink must add no allocations to the whole run: the
// same simulation allocates exactly as much with a zero-value (all-sinks-nil)
// Recorder attached as with Config.Telemetry == nil.
func TestTelemetryOffAddsNoAllocs(t *testing.T) {
	tr := tinyTrace(t, 20, 800, 0.02)
	run := func(rec *telemetry.Recorder) func() {
		return func() {
			_, err := Run(Config{Disks: 2, Trace: tr, Policy: &staticPolicy{}, Telemetry: rec})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	base := testing.AllocsPerRun(5, run(nil))
	// A zero-value Recorder has nil Metrics/series/tracer: every handle the
	// sim binds is a nil no-op sink. Only the per-epoch sampleDisks walk
	// remains, which must not allocate.
	withSink := testing.AllocsPerRun(5, run(&telemetry.Recorder{}))
	if withSink > base {
		t.Fatalf("disabled sink added allocations: %v with, %v without", withSink, base)
	}
}

// benchTrace builds the workload once per benchmark binary.
func benchTrace(b *testing.B) *workload.Trace {
	b.Helper()
	cfg := workload.DefaultGenConfig()
	cfg.NumFiles = 40
	cfg.NumRequests = 5000
	cfg.MeanInterarrival = 0.01
	tr, err := workload.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func benchRun(b *testing.B, rec func() *telemetry.Recorder) {
	tr := benchTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := rec()
		if _, err := Run(Config{Disks: 4, Trace: tr, Policy: &staticPolicy{},
			EpochSeconds: 10, Telemetry: r}); err != nil {
			b.Fatal(err)
		}
		if err := r.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// The three telemetry regimes over an identical run: disabled, attached but
// all sinks nil (the pure dispatch overhead), and fully recording to disk.
func BenchmarkRunTelemetryOff(b *testing.B) {
	benchRun(b, func() *telemetry.Recorder { return nil })
}

func BenchmarkRunTelemetryNilSinks(b *testing.B) {
	benchRun(b, func() *telemetry.Recorder { return &telemetry.Recorder{} })
}

func BenchmarkRunTelemetryFull(b *testing.B) {
	dir := b.TempDir()
	i := 0
	benchRun(b, func() *telemetry.Recorder {
		i++
		rec, err := telemetry.Open(telemetry.Config{
			Dir:         filepath.Join(dir, strconv.Itoa(i)),
			TraceEvents: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		return rec
	})
}

package array

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/des"
	"repro/internal/diskmodel"
)

// Sample is one point of the run's time series.
type Sample struct {
	// T is the virtual time of the sample.
	T float64
	// PowerW is the mean array power over the interval ending at T.
	PowerW float64
	// HighDisks counts disks at (or transitioning toward) high speed.
	HighDisks int
	// Queued counts requests waiting (not in service) across the array.
	Queued int
	// InService counts disks currently serving.
	InService int
	// Completed is the cumulative user-request completions.
	Completed uint64
}

// installSampler arms periodic timeline sampling when cfg.SampleInterval is
// positive. Samples stop with the trace (plus one tail sample at drain).
func (s *sim) installSampler() {
	if s.cfg.SampleInterval <= 0 {
		return
	}
	s.schedule(s.cfg.SampleInterval, eventRecord{Kind: evSample, LastEnergy: 0})
}

// onSampleTick records one timeline sample. lastEnergy is the array energy
// at the previous sample, threaded through the event record (it used to be
// a closure variable) so the power delta survives a checkpoint/restore.
func (s *sim) onSampleTick(e *des.Engine, lastEnergy float64) {
	now := e.Now()
	var energy float64
	high, queued, serving := 0, 0, 0
	for _, ds := range s.disks {
		energy += ds.disk.EnergyJ(now)
		speed := ds.disk.Speed()
		if ds.disk.State() == diskmodel.Transitioning {
			// Attribute to the target, like the thermal model.
			if p := ds.pending; p != nil {
				speed = *p
			}
		}
		if speed == diskmodel.High {
			high++
		}
		queued += ds.queueLen()
		if ds.disk.State() == diskmodel.Active {
			serving++
		}
	}
	power := (energy - lastEnergy) / s.cfg.SampleInterval
	s.timeline = append(s.timeline, Sample{
		T:         now,
		PowerW:    power,
		HighDisks: high,
		Queued:    queued,
		InService: serving,
		Completed: s.respStream.N(),
	})
	if s.workRemains() {
		s.schedule(s.cfg.SampleInterval, eventRecord{Kind: evSample, LastEnergy: energy})
	}
}

// WriteTimelineCSV exports a timeline as CSV with a fixed header row. Floats
// are formatted with full round-trip precision so exported rows can be
// compared exactly across runs.
func WriteTimelineCSV(w io.Writer, samples []Sample) error {
	if _, err := fmt.Fprintln(w, "t,power_w,high_disks,queued,in_service,completed"); err != nil {
		return err
	}
	for _, s := range samples {
		_, err := fmt.Fprintf(w, "%s,%s,%d,%d,%d,%d\n",
			strconv.FormatFloat(s.T, 'g', -1, 64),
			strconv.FormatFloat(s.PowerW, 'g', -1, 64),
			s.HighDisks, s.Queued, s.InService, s.Completed)
		if err != nil {
			return err
		}
	}
	return nil
}

// RenderTimeline prints a compact fixed-width view of a timeline,
// downsampled to at most maxRows rows, with a power sparkbar.
func RenderTimeline(w io.Writer, samples []Sample, maxRows int) {
	if len(samples) == 0 {
		fmt.Fprintln(w, "(no timeline samples; set SimConfig.SampleInterval)")
		return
	}
	if maxRows < 1 {
		maxRows = 1
	}
	stride := (len(samples) + maxRows - 1) / maxRows
	var maxPower float64
	for _, s := range samples {
		if s.PowerW > maxPower {
			maxPower = s.PowerW
		}
	}
	fmt.Fprintf(w, "%10s %9s %6s %7s %8s %10s  %s\n",
		"time(s)", "power(W)", "high", "queue", "serving", "done", "power bar")
	for i := 0; i < len(samples); i += stride {
		s := samples[i]
		bar := ""
		if maxPower > 0 {
			n := int(s.PowerW / maxPower * 30)
			bar = strings.Repeat("#", n)
		}
		fmt.Fprintf(w, "%10.0f %9.1f %6d %7d %8d %10d  %s\n",
			s.T, s.PowerW, s.HighDisks, s.Queued, s.InService, s.Completed, bar)
	}
}

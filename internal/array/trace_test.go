package array

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/telemetry"
)

// decisionWorkload runs a workload whose idle threshold is short enough that
// disks actually park and wake — the decision mix these tests need.
func decisionWorkload(t *testing.T, rec *telemetry.Recorder, overrides map[uint64]string) *Result {
	t.Helper()
	res, err := Run(Config{
		Disks:             4,
		Trace:             tinyTrace(t, 40, 3000, 0.02), // ~60 s
		Policy:            &spinDownPolicy{h: 0.3},
		EpochSeconds:      10,
		SampleInterval:    5,
		Telemetry:         rec,
		DecisionOverrides: overrides,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// decisionRun executes the reference workload with decision tracing on and
// returns the result and the populated log.
func decisionRun(t *testing.T) (*Result, *telemetry.DecisionLog) {
	t.Helper()
	log := telemetry.NewDecisionLog()
	res := decisionWorkload(t, &telemetry.Recorder{Decisions: log}, nil)
	if log.Len() == 0 {
		t.Fatal("reference workload produced no decisions; the tests below exercise nothing")
	}
	return res, log
}

// Decision tracing obeys the same central invariant as the rest of
// telemetry: it observes the run, it never steers it. The only permitted
// difference in the traced Result is the attribution report itself.
func TestDecisionTracingOnOffResultsIdentical(t *testing.T) {
	off := decisionWorkload(t, nil, nil)
	on, _ := decisionRun(t)

	if off.Attribution != nil {
		t.Fatal("untraced run carries an attribution report")
	}
	if on.Attribution == nil {
		t.Fatal("traced run missing its attribution report")
	}
	on.Attribution = nil
	if !reflect.DeepEqual(off, on) {
		t.Fatalf("decision tracing changed the result:\noff: %+v\non:  %+v", off, on)
	}
}

func TestDecisionLogContents(t *testing.T) {
	res, log := decisionRun(t)

	var downs, ups, observedDowns int
	for i, rec := range log.Records() {
		if rec.Seq != uint64(i)+1 {
			t.Fatalf("record %d has seq %d; the log must be dense and 1-based", i, rec.Seq)
		}
		if rec.T < 0 || rec.Epoch < 0 {
			t.Fatalf("record %d has negative time or epoch: %+v", i, rec)
		}
		switch rec.Kind {
		case telemetry.DecisionSpinDown:
			downs++
			// The test policy spins down on idle timeout without declaring a
			// cause, so the hook-context fallback must have named it.
			if rec.Cause != "idle-threshold" {
				t.Fatalf("spin-down %d has cause %q, want idle-threshold", rec.Seq, rec.Cause)
			}
			if rec.PredictedSaveW <= 0 || rec.PredictedJ <= 0 || rec.PredictedWaitS <= 0 {
				t.Fatalf("spin-down %d missing predicted costs: %+v", rec.Seq, rec)
			}
			if rec.Observed {
				observedDowns++
				if rec.ObservedParkedS <= 0 {
					t.Fatalf("observed spin-down %d parked for %v s", rec.Seq, rec.ObservedParkedS)
				}
			}
		case telemetry.DecisionSpinUp:
			ups++
			if rec.Observed && rec.ObservedWaitS <= 0 {
				t.Fatalf("observed spin-up %d took %v s", rec.Seq, rec.ObservedWaitS)
			}
		}
	}
	if downs == 0 || ups == 0 || observedDowns == 0 {
		t.Fatalf("workload too tame: %d spin-downs (%d observed), %d spin-ups", downs, observedDowns, ups)
	}

	// The attribution rollup decomposes every completed request and its
	// decision counters partition the log.
	rep := res.Attribution
	if rep.Totals.Requests != res.Requests {
		t.Fatalf("attributed %d requests, run completed %d", rep.Totals.Requests, res.Requests)
	}
	if rep.Decisions != log.Len() {
		t.Fatalf("report counts %d decisions, log holds %d", rep.Decisions, log.Len())
	}
	if got := rep.SpinDowns + rep.SpinUps + rep.Migrations + rep.Reassigns + rep.RebuildPaces; got != rep.Decisions {
		t.Fatalf("kind counters sum to %d, want %d", got, rep.Decisions)
	}
	if rep.Totals.SeekS <= 0 || rep.Totals.TransferS <= 0 || rep.Totals.ServiceEnergyJ <= 0 {
		t.Fatalf("latency decomposition empty: %+v", rep.Totals)
	}
	if rep.Totals.SpinupWaitS <= 0 || rep.Totals.SpinupWaits == 0 {
		t.Fatalf("no request ever waited on a spin-up despite %d spin-downs: %+v", downs, rep.Totals)
	}

	// Per-epoch rows are slices of the totals: they must sum back exactly.
	var sum telemetry.Attribution
	for _, row := range rep.Epochs {
		sum.Add(row.Attribution)
	}
	if sum != rep.Totals {
		t.Fatalf("epoch rows do not sum to totals:\nsum:    %+v\ntotals: %+v", sum, rep.Totals)
	}
}

func TestDecisionLogRecordsMigrations(t *testing.T) {
	tr := tinyTrace(t, 40, 3000, 0.02)
	log := telemetry.NewDecisionLog()
	res, err := Run(Config{
		Disks:        4,
		Trace:        tr,
		Policy:       &ckptMigrator{ckptSpinDown: ckptSpinDown{spinDownPolicy{h: 2}}},
		EpochSeconds: 5,
		Telemetry:    &telemetry.Recorder{Decisions: log},
	})
	if err != nil {
		t.Fatal(err)
	}
	var migrates, observed int
	for _, rec := range log.Records() {
		if rec.Kind != telemetry.DecisionMigrate {
			continue
		}
		migrates++
		if rec.Cause != "epoch" {
			t.Fatalf("undeclared migrate cause should fall back to the epoch hook, got %q", rec.Cause)
		}
		if rec.From == rec.To {
			t.Fatalf("migrate %d moves file %d nowhere", rec.Seq, rec.FileID)
		}
		if rec.Observed {
			observed++
			if rec.ObservedWaitS <= 0 {
				t.Fatalf("migrate %d landed in %v s", rec.Seq, rec.ObservedWaitS)
			}
		}
	}
	if migrates == 0 || observed == 0 {
		t.Fatalf("migrator produced %d migrations (%d observed)", migrates, observed)
	}
	if res.Attribution.Migrations != migrates {
		t.Fatalf("report counts %d migrations, log holds %d", res.Attribution.Migrations, migrates)
	}
}

// Killing a traced run at a checkpoint and resuming must yield a merged
// decision log bit-identical to the uninterrupted run's — including records
// that were still open (unresolved outcomes, migrations in flight) when the
// snapshot was taken.
func TestDecisionLogKillResumeBitIdentical(t *testing.T) {
	const interval = 0.9
	makeCfg := func(log *telemetry.DecisionLog) Config {
		return Config{
			Disks:        4,
			Trace:        tinyTrace(t, 40, 2000, 0.01),
			EpochSeconds: 1.5,
			Policy:       &ckptMigrator{ckptSpinDown: ckptSpinDown{spinDownPolicy{h: 0.3}}},
			Telemetry:    &telemetry.Recorder{Decisions: log},
		}
	}

	baseLog := telemetry.NewDecisionLog()
	want, snaps := runWithSnapshots(t, makeCfg(baseLog), interval)
	if baseLog.Len() == 0 {
		t.Fatal("uninterrupted run produced no decisions")
	}
	var wantBytes bytes.Buffer
	if err := baseLog.WriteNDJSON(&wantBytes); err != nil {
		t.Fatal(err)
	}

	for _, idx := range []int{0, len(snaps) / 2, len(snaps) - 1} {
		resLog := telemetry.NewDecisionLog()
		cfg := makeCfg(resLog)
		got := resumeFromSnapshot(t, cfg, cfg.Policy, snaps[idx], interval)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("resume from snapshot %d/%d diverged:\nwant %+v\ngot  %+v",
				idx+1, len(snaps), want, got)
		}
		var gotBytes bytes.Buffer
		if err := resLog.WriteNDJSON(&gotBytes); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantBytes.Bytes(), gotBytes.Bytes()) {
			t.Errorf("merged decision log from snapshot %d/%d not bit-identical to the uninterrupted run (%d vs %d records)",
				idx+1, len(snaps), resLog.Len(), baseLog.Len())
		}
	}
}

// Skipping one recorded spin-down changes the run: the disk never parks, so
// energy and the decision stream both move. This is the array-level contract
// counterfactual replay (arraysim -replay-decisions -override) builds on.
func TestDecisionOverrideSkipChangesOutcome(t *testing.T) {
	base, baseLog := decisionRun(t)
	var target uint64
	for _, rec := range baseLog.Records() {
		if rec.Kind == telemetry.DecisionSpinDown && rec.Observed {
			target = rec.Seq
			break
		}
	}
	if target == 0 {
		t.Fatal("baseline has no observed spin-down to skip")
	}

	overLog := telemetry.NewDecisionLog()
	res := decisionWorkload(t, &telemetry.Recorder{Decisions: overLog},
		map[uint64]string{target: OverrideSkip})

	skipped := overLog.Records()[target-1]
	if skipped.Overridden != OverrideSkip {
		t.Fatalf("decision %d not marked overridden: %+v", target, skipped)
	}
	if skipped.Observed {
		t.Fatalf("skipped spin-down %d still resolved an outcome: %+v", target, skipped)
	}
	if res.EnergyJ == base.EnergyJ {
		t.Fatalf("skipping spin-down %d left energy unchanged at %v J", target, res.EnergyJ)
	}
	// Up to the forced decision the two runs are identical, so the prefix of
	// the decision stream must agree record for record.
	for i := 0; i < int(target); i++ {
		b, o := baseLog.Records()[i], overLog.Records()[i]
		b.Overridden, o.Overridden = "", ""
		if i == int(target)-1 {
			// The skipped record never resolves; compare its decision half.
			b.Observed, b.ObservedJ, b.ObservedParkedS, b.ObservedWaitS, b.WakeRequests = false, 0, 0, 0, 0
		}
		if b != o {
			t.Fatalf("decision stream diverged before the override at record %d:\nbase: %+v\nover: %+v", i+1, b, o)
		}
	}
}

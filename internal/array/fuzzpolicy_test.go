package array

import (
	"math/rand"
	"testing"

	"repro/internal/diskmodel"
	"repro/internal/workload"
)

// chaosPolicy exercises the Context API with random-but-legal calls from
// every hook: a robustness fuzzer for the simulator's invariants. Whatever
// it does, the run must complete, serve every request, and keep the
// accounting consistent.
type chaosPolicy struct {
	rng *rand.Rand
}

func (p *chaosPolicy) Name() string { return "chaos" }

func (p *chaosPolicy) Init(ctx *Context) error {
	for _, f := range ctx.Files() {
		if err := ctx.SetPlacement(f.ID, p.rng.Intn(ctx.NumDisks())); err != nil {
			return err
		}
	}
	for d := 0; d < ctx.NumDisks(); d++ {
		if p.rng.Intn(2) == 0 {
			ctx.RequestTransition(d, diskmodel.Low)
		}
		ctx.SetIdleTimeout(d, float64(p.rng.Intn(60)))
	}
	return nil
}

func (p *chaosPolicy) TargetDisk(ctx *Context, fileID int) int {
	if p.rng.Intn(10) == 0 {
		d := p.rng.Intn(ctx.NumDisks())
		ctx.RequestTransition(d, diskmodel.Speed(p.rng.Intn(2)))
	}
	if p.rng.Intn(20) == 0 {
		ctx.Migrate(fileID, p.rng.Intn(ctx.NumDisks()))
	}
	return ctx.Placement(fileID)
}

func (p *chaosPolicy) OnRequestComplete(ctx *Context, fileID, disk int) {
	if p.rng.Intn(30) == 0 {
		_ = ctx.EnqueueWrite(p.rng.Intn(ctx.NumDisks()), p.rng.Float64(), nil)
	}
}

func (p *chaosPolicy) OnEpoch(ctx *Context) {
	n := ctx.NumDisks()
	for i := 0; i < 5; i++ {
		switch p.rng.Intn(4) {
		case 0:
			ctx.RequestTransition(p.rng.Intn(n), diskmodel.Speed(p.rng.Intn(2)))
		case 1:
			files := ctx.Files()
			f := files[p.rng.Intn(len(files))]
			ctx.Migrate(f.ID, p.rng.Intn(n))
		case 2:
			ctx.SetIdleTimeout(p.rng.Intn(n), float64(p.rng.Intn(120)))
		case 3:
			_ = ctx.AccessCounts()
		}
	}
}

func (p *chaosPolicy) OnIdleTimeout(ctx *Context, d int) {
	if p.rng.Intn(2) == 0 {
		ctx.RequestTransition(d, diskmodel.Speed(p.rng.Intn(2)))
	}
}

func TestChaosPolicyNeverBreaksInvariants(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		cfg := workload.DefaultGenConfig()
		cfg.NumRequests = 4000
		cfg.NumFiles = 120
		cfg.MeanInterarrival = 0.02
		cfg.Seed = seed + 100
		tr, err := workload.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{
			Disks:        5,
			Trace:        tr,
			Policy:       &chaosPolicy{rng: rand.New(rand.NewSource(seed))},
			EpochSeconds: 7,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Requests != 4000 {
			t.Fatalf("seed %d: served %d of 4000", seed, res.Requests)
		}
		if res.MeanResponse <= 0 || res.EnergyJ <= 0 {
			t.Fatalf("seed %d: degenerate metrics %+v", seed, res)
		}
		var busy, idle, trans float64
		for _, d := range res.PerDisk {
			if d.Utilization < 0 || d.Utilization > 1 {
				t.Fatalf("seed %d: utilization %v out of range", seed, d.Utilization)
			}
			if d.MeanTempC < 39.9 || d.MeanTempC > 50.1 {
				t.Fatalf("seed %d: temperature %v out of band", seed, d.MeanTempC)
			}
			if d.AFR < 0 {
				t.Fatalf("seed %d: negative AFR", seed)
			}
			busy += d.BusyTime
			_ = idle
			trans += float64(d.Transitions)
		}
		if busy <= 0 {
			t.Fatalf("seed %d: no work recorded", seed)
		}
	}
}

// TestSeekModelEndToEnd runs the same trace with and without the
// distance-based seek model; both must serve everything, and the per-seek
// differences must stay within the curve's min/max bounds.
func TestSeekModelEndToEnd(t *testing.T) {
	cfg := workload.DefaultGenConfig()
	cfg.NumRequests = 6000
	cfg.NumFiles = 200
	cfg.MeanInterarrival = 0.01
	tr, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Run(Config{Disks: 4, Trace: tr, Policy: &staticPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	params := diskmodel.DefaultParams()
	params.Seek = diskmodel.DefaultSeekModel()
	seeky, err := Run(Config{Disks: 4, Trace: tr, Policy: &staticPolicy{}, DiskParams: params})
	if err != nil {
		t.Fatal(err)
	}
	if seeky.Requests != flat.Requests {
		t.Fatalf("request counts differ: %d vs %d", seeky.Requests, flat.Requests)
	}
	// With randomly hashed cylinders the mean seek matches the flat
	// average closely; responses should agree within ~20%.
	ratio := seeky.MeanResponse / flat.MeanResponse
	if ratio < 0.8 || ratio > 1.2 {
		t.Fatalf("seek-model response ratio %v vs flat", ratio)
	}
}

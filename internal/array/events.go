package array

// Event reification: every event the simulator schedules is described by a
// typed eventRecord, and every op completion by a typed cont, instead of an
// anonymous closure. The records carry exactly the data the old closures
// captured, and the dispatch methods replicate the old closure bodies, so
// runtime behaviour is unchanged — but because records are plain data, a
// checkpoint can serialize the pending event queue and a resume can rebuild
// it, which is impossible with closures. The one escape hatch is the
// "opaque" continuation (a policy callback passed to Context.EnqueueWrite);
// those cannot be serialized, so checkpoint writes are skipped while any is
// in flight (see sim.opaqueLive).

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/diskmodel"
)

// Event kinds. Each maps to a tracer label via recLabel; the labels are the
// same strings the pre-reification closures used, so event traces are
// unchanged.
const (
	evArrival      = "arrival"
	evEpoch        = "epoch"
	evFaultTick    = "fault-tick"
	evTransition   = "transition"
	evService      = "service"
	evIdleArm      = "idle-arm"
	evIdleRearm    = "idle-rearm"
	evSample       = "sample"
	evMigrateStart = "migrate-start"
	evRepair       = "repair"
	evRebuildNext  = "rebuild-next"
	evScrub        = "scrub"
	evCheckpoint   = "checkpoint"
)

func recLabel(kind string) string {
	switch kind {
	case evArrival:
		return labelArrival
	case evEpoch:
		return labelEpoch
	case evFaultTick:
		return labelFaultTick
	case evTransition:
		return labelTransition
	case evService:
		return labelService
	case evIdleArm, evIdleRearm:
		return labelIdleTimer
	case evSample:
		return labelSample
	case evMigrateStart:
		return labelMigrate
	case evRepair:
		return labelRepair
	case evRebuildNext:
		return labelRebuild
	case evScrub:
		return labelScrub
	case evCheckpoint:
		return labelCheckpoint
	default:
		return kind
	}
}

// eventRecord is the serializable description of one scheduled event. One
// flat struct covers every kind; unused fields stay zero.
type eventRecord struct {
	Kind        string
	Disk        int
	Gen         uint64  // service: diskState generation at dispatch
	Deadline    float64 // idle-arm: absolute deadline the timer was armed for
	Timeout     float64 // idle timers: the timeout captured at arm time
	LastEnergy  float64 // sample: array energy at the previous sample
	RemainingMB float64 // rebuild-next: data left to rebuild
	FileID      int     // migrate-start
	From        int     // migrate-start: source disk
	To          int     // migrate-start: target disk
	SizeMB      float64 // migrate-start
	Op          *op     // service: the operation in service
}

// Continuation kinds (op.done).
const (
	contMigrateRead  = "migrate-read"
	contMigrateWrite = "migrate-write"
	contRebuild      = "rebuild-chunk"
	contScrub        = "scrub-pass"
	contOpaque       = "opaque"
	contFleet        = "fleet-done"
)

// cont is the serializable continuation run when an op completes, replacing
// the old op.onDone closure. An opaque cont wraps a policy callback and is
// the one non-serializable case.
type cont struct {
	kind        string
	fileID      int
	to          int
	disk        int
	sizeMB      float64
	nextIssue   float64
	remainingMB float64
	reqID       uint64            // contFleet: cluster request the op belongs to
	attempt     int               // contFleet: the request's attempt ordinal
	fn          func(now float64) // contOpaque only
}

// at schedules rec at absolute virtual time t and registers it in the
// record table. Every record is scheduled with the sim's one cached
// dispatch handler, which looks the record up by the engine's FiringID and
// removes the table entry when the event fires — so scheduling an event
// allocates no per-event closure.
//
//simlint:hotpath
func (s *sim) at(t float64, rec eventRecord) error {
	id, err := s.eng.AtLabeled(t, recLabel(rec.Kind), s.dispatchH)
	if err != nil {
		return err
	}
	s.events[id] = rec
	return nil
}

// schedule is `at` with a delay relative to now, panicking on the
// programming errors MustScheduleLabeled used to panic on.
func (s *sim) schedule(delay float64, rec eventRecord) {
	if err := s.at(s.eng.Now()+delay, rec); err != nil {
		panic(err)
	}
}

// dispatch runs the handler body for one fired event record.
func (s *sim) dispatch(rec eventRecord, e *des.Engine) {
	switch rec.Kind {
	case evArrival:
		s.onArrival(e)
	case evEpoch:
		s.onEpoch(e)
	case evFaultTick:
		s.onFaultTick(e)
	case evTransition:
		s.onTransitionEnd(rec.Disk)
	case evService:
		s.onServiceEnd(rec.Disk, rec.Gen, rec.Op)
	case evIdleArm:
		s.onIdleTimer(rec.Disk, rec.Deadline, rec.Timeout, false)
	case evIdleRearm:
		s.onIdleTimer(rec.Disk, 0, rec.Timeout, true)
	case evSample:
		s.onSampleTick(e, rec.LastEnergy)
	case evMigrateStart:
		s.startMigration(rec.FileID, rec.From, rec.To, rec.SizeMB)
	case evRepair:
		s.repairDisk(rec.Disk)
	case evRebuildNext:
		s.issueRebuild(rec.Disk, rec.RemainingMB)
	case evScrub:
		s.onScrubTick(rec.Disk)
	case evCheckpoint:
		s.onCheckpointTick(e)
	default:
		s.fail(fmt.Errorf("array: unknown event kind %q", rec.Kind))
	}
}

// onTransitionEnd completes a speed transition on disk d.
func (s *sim) onTransitionEnd(d int) {
	ds := s.disks[d]
	ds.disk.EndTransition(s.eng.Now())
	ds.temp.SetSpeed(s.eng.Now(), ds.disk.Speed())
	if s.trc != nil {
		s.onTransitionDone(d, s.eng.Now())
	}
	s.kick(d)
}

// onServiceEnd completes the in-flight op on disk d.
func (s *sim) onServiceEnd(d int, gen uint64, o *op) {
	ds := s.disks[d]
	end := s.eng.Now()
	ds.disk.EndService(end)
	if ds.failed || ds.gen != gen {
		// The disk died mid-service (and was possibly even replaced
		// already): the op's work is void and the op is re-routed or lost.
		s.routeAroundFailure(d, *o)
		if !ds.failed {
			s.kick(d)
		}
		return
	}
	s.complete(d, *o, end)
	s.kick(d)
}

// onIdleTimer handles both idle-timer variants. rearm distinguishes them:
// the two compare the idle start against different references and must stay
// separate to preserve the exact floating-point comparisons of the original
// closures.
func (s *sim) onIdleTimer(d int, deadline, timeout float64, rearm bool) {
	ds := s.disks[d]
	ds.idleArmed = false
	now := s.eng.Now()
	// Still idle and has been since before the timer was armed?
	if ds.failed || ds.disk.State() != diskmodel.Idle || ds.queueLen() > 0 {
		return
	}
	stillCounting := false
	if rearm {
		stillCounting = now-ds.disk.IdleSince() < timeout
	} else {
		stillCounting = ds.disk.IdleSince() > deadline-timeout
	}
	if stillCounting {
		// Activity happened since arming; rearm relative to the most
		// recent idle start.
		remaining := ds.disk.IdleSince() + timeout - now
		if remaining > 0 {
			s.rearmIdleTimer(d, remaining)
			return
		}
	}
	ctx := s.ctx
	s.setHook(hookIdleTimeout)
	s.cfg.Policy.OnIdleTimeout(ctx, d)
	s.endHook()
	s.kick(d)
}

// startMigration enqueues the read leg of a file migration; the write leg
// and the placement flip follow as continuations.
func (s *sim) startMigration(fileID, from, to int, sizeMB float64) {
	s.enqueue(from, op{
		kind:   opBackground,
		fileID: fileID,
		sizeMB: sizeMB,
		mig:    true,
		done:   &cont{kind: contMigrateRead, fileID: fileID, to: to, sizeMB: sizeMB},
	})
}

// runCont executes an op's completion continuation at virtual time now.
func (s *sim) runCont(c *cont, now float64) {
	switch c.kind {
	case contMigrateRead:
		s.enqueue(c.to, op{
			kind:   opBackground,
			fileID: c.fileID,
			sizeMB: c.sizeMB,
			mig:    true,
			done:   &cont{kind: contMigrateWrite, fileID: c.fileID, to: c.to},
		})
	case contMigrateWrite:
		s.place[c.fileID] = c.to
		delete(s.migrating, c.fileID)
		if s.trc != nil {
			s.resolveMigration(c.fileID, now)
		}
	case contRebuild:
		f := s.flt
		f.rebuildMB += c.sizeMB
		sp := s.disks[c.disk].disk.Speed()
		f.rebuildEnergyJ += s.cfg.DiskParams.ActivePower(sp) * s.cfg.DiskParams.ServiceTime(c.sizeMB, sp)
		delay := c.nextIssue - now
		if delay < 0 {
			delay = 0
		}
		s.schedule(delay, eventRecord{Kind: evRebuildNext, Disk: c.disk, RemainingMB: c.remainingMB - c.sizeMB})
	case contScrub:
		s.completeScrub(c)
	case contOpaque:
		s.opaqueLive--
		c.fn(now)
	case contFleet:
		s.hostDone(c, now, false)
	default:
		s.fail(fmt.Errorf("array: unknown continuation kind %q", c.kind))
	}
}

// hostDone reports a cluster-submitted request's resolution to the host.
func (s *sim) hostDone(c *cont, now float64, lost bool) {
	if s.host == nil {
		s.fail(fmt.Errorf("array: fleet continuation without a host"))
		return
	}
	s.host.RequestDone(c.reqID, c.attempt, now, lost)
}

// dropCont releases bookkeeping for a continuation whose op was discarded
// without completing (a background transfer on a failed disk). A dropped
// scrub pass must still reschedule the disk's scrub cycle — the pass found
// no readable media, but the replacement drive will need scrubbing again.
func (s *sim) dropCont(c *cont) {
	if c == nil {
		return
	}
	switch c.kind {
	case contOpaque:
		s.opaqueLive--
	case contScrub:
		if s.scrubChainLives() {
			s.schedule(s.flt.inj.SampleScrubIntervalSeconds(), eventRecord{Kind: evScrub, Disk: c.disk})
		}
	}
}

// Package array simulates a parallel array of two-speed disks serving a
// whole-file request trace under a pluggable energy-saving policy, and
// reports the performance / energy / reliability triple the paper evaluates
// (mean response time, energy consumed, PRESS array AFR).
//
// The simulator is execution-driven in the paper's sense: every request
// occupies a specific disk for its computed service time, requests queue
// FCFS per disk, speed transitions block service, and file migrations are
// real background transfers that compete with foreground work.
package array

// Policy is an energy-saving strategy for a two-speed disk array. The array
// calls the hooks below; the policy steers behaviour exclusively through the
// Context it receives (placement, speed-transition requests, background
// transfers, idle timeouts).
//
// Implementations live in internal/policy: READ (the paper's contribution),
// MAID, PDC, and the always-on baseline.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string

	// Init is called once at virtual time zero. The policy must place
	// every file (Context.SetPlacement) and may set initial disk speeds
	// and idle timeouts.
	Init(ctx *Context) error

	// TargetDisk picks the disk that will serve a request for fileID,
	// normally the placement disk. A policy may redirect (MAID's cache
	// hit), trigger a spin-up of the target before service
	// (Context.RequestTransition), or start background copies.
	TargetDisk(ctx *Context, fileID int) int

	// OnRequestComplete is called when a user request finishes service.
	OnRequestComplete(ctx *Context, fileID, disk int)

	// OnEpoch is called every Config.EpochSeconds of virtual time (if
	// non-zero). Policies re-evaluate popularity and migrate files here.
	// The array resets per-epoch access counts after this hook returns.
	OnEpoch(ctx *Context)

	// OnIdleTimeout is called when a disk has been continuously idle for
	// its configured idle timeout. Policies typically request a
	// transition to low speed here.
	OnIdleTimeout(ctx *Context, disk int)
}

// FailureAwarePolicy optionally extends Policy with disk fail/repair hooks.
// When fault injection is enabled (Config.Faults) the array calls
// OnDiskFailure the instant a disk dies — before the dead disk's queue is
// drained, so placements moved with Context.ReassignFile catch the queued
// requests — and OnDiskRepair when its replacement comes up (before the
// rebuild traffic starts). Policies that do not implement the interface
// still run under failures; they simply never react, which is itself one of
// the conditions the paper's reliability argument wants measured.
type FailureAwarePolicy interface {
	Policy

	// OnDiskFailure is called exactly once per failure of `disk`.
	// Context.ReassignFile is valid only inside this hook.
	OnDiskFailure(ctx *Context, disk int)

	// OnDiskRepair is called when a replacement for `disk` enters service.
	OnDiskRepair(ctx *Context, disk int)
}

// StripePolicy optionally extends Policy with striped placement (the
// paper's §6 future work: large files — video clips, audio segments —
// benefit from striping while small web objects do not). When a policy
// implements it and returns two or more target disks for a file, each
// request for that file is split into equal chunks served in parallel, one
// per disk; the request completes when its last chunk does. Each chunk pays
// its own positioning overhead, which is exactly why striping only pays off
// for large files.
//
// Returning nil or a single disk falls back to Policy.TargetDisk.
type StripePolicy interface {
	Policy

	// StripeTargets returns the disks serving fileID's chunks.
	StripeTargets(ctx *Context, fileID int) []int
}

// CheckpointablePolicy optionally extends Policy with state serialization
// for checkpoint/restore. SaveState must capture everything the policy
// accumulated since Init — counters, caches, adaptive thresholds — because a
// resume does NOT re-run Init (SetPlacement is only legal at t=0); instead
// the policy is constructed fresh from the same configuration and LoadState
// overwrites its mutable state. A policy without the interface cannot be
// checkpointed; Run rejects Config.Checkpoint for it up front rather than
// producing snapshots that silently resume wrong.
type CheckpointablePolicy interface {
	Policy

	// SaveState serializes the policy's mutable state.
	SaveState() ([]byte, error)

	// LoadState restores state captured by SaveState on a freshly
	// constructed policy with the same configuration.
	LoadState(data []byte) error
}

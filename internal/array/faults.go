package array

// Fault-injection lifecycle: this file wires internal/faults into the event
// loop. A periodic tick integrates each disk's Weibull hazard (scaled by its
// live PRESS AFR, so the predicted failure rates become observed events); a
// crossing fails the disk, which drains its queues around the failure,
// consumes a hot spare (or records a data-loss event when the pool is empty),
// and schedules a repair. The repaired replacement then rebuilds its resident
// data as paced background traffic that competes with foreground requests.

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/des"
	"repro/internal/faults"
	"repro/internal/reliability"
)

// rebuildChunkMB is the granularity of rebuild background transfers. Chunks
// are issued one at a time at the configured rebuild rate, so rebuild
// bandwidth competes with — but cannot starve — foreground service.
const rebuildChunkMB = 64.0

// FailureEvent is one observed disk failure.
type FailureEvent struct {
	// Disk is the failed disk's index.
	Disk int
	// Time is the failure time in virtual seconds.
	Time float64
	// SpareUsed reports whether a hot spare absorbed the failure.
	SpareUsed bool
	// DataLoss reports whether the failure found the spare pool empty.
	DataLoss bool
}

// faultState is the simulator-side bookkeeping for fault injection. It exists
// only when Config.Faults is enabled; every fault-path branch in the
// simulator is gated on it so a disabled run is bit-identical to one that
// predates the subsystem.
type faultState struct {
	cfg faults.Config
	inj *faults.Injector

	spares     int // hot spares remaining
	sparesUsed int

	failures     int
	repairs      int
	dataLoss     int
	firstLoss    float64 // virtual seconds of first data-loss event; -1 = none
	lostRequests int
	degraded     int
	reassigned   int

	rebuildMB      float64
	rebuildEnergyJ float64

	// Latent-sector-error and scrub outcomes (zero when LSE modeling off).
	lseCleared int
	scrubs     int
	scrubMB    float64

	// raid is the redundancy-group overlay; nil when Config.RAID is off.
	raid *raidState

	// inFailover is true only while a policy's OnDiskFailure hook runs;
	// Context.ReassignFile is valid only then.
	inFailover bool

	log []FailureEvent
}

// installFaults sets up the injector and schedules the first hazard tick.
// It is a no-op when fault injection is disabled.
func (s *sim) installFaults() error {
	if s.cfg.Faults == nil || !s.cfg.Faults.Enabled {
		return nil
	}
	cfg := s.cfg.Faults.Normalized()
	inj, err := faults.NewInjector(cfg, len(s.disks))
	if err != nil {
		return err
	}
	s.flt = &faultState{cfg: cfg, inj: inj, spares: s.cfg.Spares, firstLoss: -1}
	if s.cfg.RAID.Enabled() {
		raid, err := newRAIDState(s.cfg.RAID, len(s.disks))
		if err != nil {
			return err
		}
		s.flt.raid = raid
	}
	s.schedule(cfg.CheckIntervalSeconds, eventRecord{Kind: evFaultTick})
	// Each disk runs its own scrub cycle; the first pass of every disk is
	// drawn at install time, in disk order, so the draw sequence is fixed.
	if cfg.ScrubActive() {
		for d := range s.disks {
			s.schedule(inj.SampleScrubIntervalSeconds(), eventRecord{Kind: evScrub, Disk: d})
		}
	}
	return nil
}

// onFaultTick integrates the hazard window that just elapsed and fires any
// failures it produced.
func (s *sim) onFaultTick(e *des.Engine) {
	if s.failure != nil {
		return
	}
	var scale func(int) float64
	if s.flt.cfg.PRESSScaling {
		scale = s.hazardScale
	}
	for _, f := range s.flt.inj.Advance(e.Now(), scale) {
		s.failDisk(f.Disk, f.Time)
		if s.failure != nil {
			return
		}
	}
	// Latent sector errors accumulate under the same operating-condition
	// scaling as whole-disk hazard. Failures for this window are applied
	// first, so a disk that died mid-window accumulates no further errors.
	for _, ev := range s.flt.inj.AdvanceLSE(e.Now(), scale) {
		s.raidOnLSE(ev.Disk, ev.Time)
	}
	// Keep ticking only while the simulation still has work; otherwise the
	// tick chain would hold the event loop open forever.
	if s.workRemains() {
		s.schedule(s.flt.cfg.CheckIntervalSeconds, eventRecord{Kind: evFaultTick})
	}
}

// scrubChainLives reports whether a scrub chain should stay scheduled. The
// chain must NOT gate on workRemains(): scrub passes themselves keep disks
// busy, so under accelerated timescales the chains of different disks would
// sustain each other's busyness and hold the event loop open forever. The
// chain instead dies with the trace — once the last arrival has been
// delivered no further passes start and the in-flight work drains normally.
func (s *sim) scrubChainLives() bool {
	return s.arrivalsRemain()
}

// onScrubTick starts disk d's next scrub pass: a background read of the
// configured volume, queued behind foreground traffic on the disk itself.
// The *next* pass is drawn only when this one's I/O completes, so a disk
// that an energy policy keeps spun down — or that is saturated — scrubs
// late, and its latent errors survive longer. A pass that lands on a failed
// disk is skipped and the cycle re-drawn: the replacement drive arrives with
// clean media.
func (s *sim) onScrubTick(d int) {
	if s.failure != nil {
		return
	}
	if !s.scrubChainLives() {
		return
	}
	f := s.flt
	if s.disks[d].failed {
		s.schedule(f.inj.SampleScrubIntervalSeconds(), eventRecord{Kind: evScrub, Disk: d})
		return
	}
	size := f.cfg.ScrubPassMB()
	s.enqueue(d, op{
		kind:   opBackground,
		sizeMB: size,
		done:   &cont{kind: contScrub, disk: d, sizeMB: size},
	})
}

// completeScrub finishes disk d's scrub pass: every pending latent error on
// the disk is detected and rewritten from redundancy, and the next pass is
// scheduled.
func (s *sim) completeScrub(c *cont) {
	f := s.flt
	f.lseCleared += f.inj.MarkScrubbed(c.disk)
	f.scrubs++
	f.scrubMB += c.sizeMB
	if s.scrubChainLives() {
		s.schedule(f.inj.SampleScrubIntervalSeconds(), eventRecord{Kind: evScrub, Disk: c.disk})
	}
}

// hazardScale returns disk d's current PRESS AFR relative to the reference
// AFR — the multiplier that couples predicted reliability to observed
// failures. A disk PRESS rates at twice the reference AFR accumulates hazard
// twice as fast.
func (s *sim) hazardScale(d int) float64 {
	ds := s.disks[d]
	now := s.eng.Now()
	afr, err := s.cfg.Press.DiskAFR(reliability.Factors{
		TempC:             ds.temp.MeanTemp(now),
		Utilization:       ds.disk.Utilization(now),
		TransitionsPerDay: ds.disk.TransitionRatePerDay(now),
	})
	if err != nil || afr <= 0 || math.IsNaN(afr) {
		return 1
	}
	return afr / s.flt.cfg.ReferenceAFRPercent
}

// failDisk takes disk d out of service at virtual time `at`: it consumes a
// spare (or records data loss), gives the policy a chance to re-route
// placements, drains the dead disk's queues around the failure, and schedules
// the repair.
func (s *sim) failDisk(d int, at float64) {
	ds := s.disks[d]
	if ds.failed {
		return
	}
	f := s.flt
	f.failures++
	ev := FailureEvent{Disk: d, Time: at}
	if f.spares > 0 {
		f.spares--
		f.sparesUsed++
		ev.SpareUsed = true
		ds.spareAssigned = true
	} else {
		f.dataLoss++
		ev.DataLoss = true
		if f.firstLoss < 0 {
			f.firstLoss = at
		}
	}
	f.log = append(f.log, ev)
	ds.failed = true
	ds.rebuilding = false
	ds.rebuildMBps = 0
	ds.gen++ // voids the in-flight service completion, if any

	// RAID loss rules run with the failure applied but before failover
	// re-routing: the combination check reads raw member availability.
	s.raidOnDiskFailure(d, at)

	// Policy failover hook first, so re-assigned placements are visible to
	// the queue drain below.
	if fp, ok := s.cfg.Policy.(FailureAwarePolicy); ok {
		f.inFailover = true
		s.setHook(hookDiskFailure)
		fp.OnDiskFailure(s.ctx, d)
		s.endHook()
		f.inFailover = false
	}
	// A rebuild that was streaming on this disk died with it.
	if s.trc != nil {
		s.resolveRebuild(d, at, false)
	}

	// Drain queues via snapshots: routeAroundFailure may push an op back
	// onto this very disk (the wait-for-spare path), so popping in place
	// would never terminate.
	var fg, bg []op
	for ds.fg.len() > 0 {
		fg = append(fg, ds.fg.pop())
	}
	for ds.bg.len() > 0 {
		bg = append(bg, ds.bg.pop())
	}
	for _, o := range fg {
		s.routeAroundFailure(d, o)
	}
	for _, o := range bg {
		s.dropBackground(o)
	}

	s.schedule(f.inj.SampleRepairSeconds(), eventRecord{Kind: evRepair, Disk: d})
}

// routeAroundFailure re-disposes an op whose disk d is (or just went) down:
// deliver it degraded via a live placement, park it for the spare
// replacement, or count it lost.
func (s *sim) routeAroundFailure(d int, o op) {
	if o.kind == opBackground {
		s.dropBackground(o)
		return
	}
	f := s.flt
	if p, ok := s.place[o.fileID]; ok && !s.disks[p].failed {
		// A live copy exists — the policy re-assigned the file, a replica
		// holds it, or the original disk is already back up. Deliver
		// degraded.
		f.degraded++
		o.rerouted = true
		s.enqueue(p, o)
		return
	}
	if s.disks[d].spareAssigned {
		// A hot spare covers this outage: the op waits out the repair on
		// the dead disk's queue and is served by the replacement.
		f.degraded++
		o.rerouted = true
		s.disks[d].fg.push(o)
		s.checkQueue(d)
		return
	}
	s.loseOp(o)
}

// loseOp records a user request (or striped chunk) whose data is gone. A
// fleet continuation is reported lost immediately so the cluster router can
// fail the attempt over to another replica without waiting for a timeout.
func (s *sim) loseOp(o op) {
	switch o.kind {
	case opUser:
		s.flt.lostRequests++
		if o.done != nil && o.done.kind == contFleet {
			s.hostDone(o.done, s.eng.Now(), true)
		}
	case opChunk:
		o.stripe.lost = true
		o.stripe.remaining--
		if o.stripe.remaining == 0 {
			s.flt.lostRequests++
			if o.stripe.done != nil {
				s.hostDone(o.stripe.done, s.eng.Now(), true)
			}
		}
	}
}

// dropBackground discards a background transfer queued on a failed disk,
// releasing any migration bookkeeping so the file can move again later and
// any continuation accounting (an opaque policy callback that will never
// run must stop blocking checkpoints).
func (s *sim) dropBackground(o op) {
	if o.mig {
		delete(s.migrating, o.fileID)
		if s.trc != nil {
			s.dropMigration(o.fileID)
		}
	}
	s.dropCont(o.done)
}

// repairDisk brings a replacement for disk d into service: the injector
// restarts its hazard clock from age zero, the policy is notified, and the
// replacement rebuilds its resident data as paced background traffic.
func (s *sim) repairDisk(d int) {
	if s.failure != nil {
		return
	}
	ds := s.disks[d]
	if !ds.failed {
		return
	}
	now := s.eng.Now()
	f := s.flt
	ds.failed = false
	ds.spareAssigned = false
	f.repairs++
	f.inj.MarkRepaired(d, now)

	if fp, ok := s.cfg.Policy.(FailureAwarePolicy); ok {
		s.setHook(hookDiskRepair)
		fp.OnDiskRepair(s.ctx, d)
		s.endHook()
	}

	// Rebuild everything placed on the replacement. File IDs are walked in
	// sorted order so the float summation — and with it the whole run — is
	// deterministic (map iteration order is not).
	ids := make([]int, 0, 16)
	for id, p := range s.place {
		if p == d {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	var totalMB float64
	for _, id := range ids {
		totalMB += s.files[id].SizeMB
	}
	if totalMB > 0 {
		if f.cfg.RebuildTime != nil {
			// Weibull-distributed rebuild: draw the total duration and pace
			// this disk's chunks to finish in it. The draw happens only when
			// there is data to rebuild, keeping the RNG stream identical for
			// empty replacements.
			if dur := f.inj.SampleRebuildSeconds(); dur > 0 {
				ds.rebuildMBps = totalMB / dur
			}
		}
		if ds.rebuildMBps > 0 || s.cfg.RebuildMBps > 0 {
			ds.rebuilding = true
			if s.trc != nil {
				rate := ds.rebuildMBps
				if rate <= 0 {
					rate = s.cfg.RebuildMBps
				}
				s.recordRebuildPace(d, totalMB, rate, now)
			}
			s.issueRebuild(d, totalMB)
		}
	}
	s.kick(d)
}

// issueRebuild streams the next rebuild chunk onto disk d's background
// queue. Chunks are paced so the long-run rebuild rate approximates
// Config.RebuildMBps: the next chunk is issued at the later of this chunk's
// completion and its nominal pacing slot.
func (s *sim) issueRebuild(d int, remainingMB float64) {
	ds := s.disks[d]
	if ds.failed || remainingMB <= 0 {
		if s.trc != nil && !ds.failed {
			s.resolveRebuild(d, s.eng.Now(), true)
		}
		ds.rebuilding = false
		ds.rebuildMBps = 0
		return
	}
	rate := ds.rebuildMBps
	if rate <= 0 {
		rate = s.cfg.RebuildMBps
	}
	size := math.Min(rebuildChunkMB, remainingMB)
	nextIssue := s.eng.Now() + size/rate
	s.enqueue(d, op{
		kind:   opBackground,
		sizeMB: size,
		done: &cont{
			kind:        contRebuild,
			disk:        d,
			sizeMB:      size,
			nextIssue:   nextIssue,
			remainingMB: remainingMB,
		},
	})
}

// --- Context surface for failure-aware policies ---

// DiskFailed reports whether disk d is currently down.
func (c *Context) DiskFailed(d int) bool { return c.s.disks[d].failed }

// DiskRebuilding reports whether disk d's replacement is still rebuilding.
func (c *Context) DiskRebuilding(d int) bool { return c.s.disks[d].rebuilding }

// DiskCovered reports whether a hot spare is absorbing disk d's current
// outage: queued and arriving requests wait for the replacement instead of
// being lost. Meaningful only while d is failed.
func (c *Context) DiskCovered(d int) bool { return c.s.disks[d].spareAssigned }

// RAIDGroup returns the member disk indices of disk d's redundancy group
// (including d itself), or nil when no RAID organization is configured.
// Failover hooks use it to prefer keeping re-assigned placements inside the
// stripe/replica group that can actually reconstruct the data.
func (c *Context) RAIDGroup(d int) []int {
	if c.s.flt == nil || c.s.flt.raid == nil {
		return nil
	}
	r := c.s.flt.raid
	return append([]int(nil), r.groups[r.groupOf[d]]...)
}

// SparesLeft returns the number of hot spares remaining in the pool.
func (c *Context) SparesLeft() int {
	if c.s.flt == nil {
		return c.s.cfg.Spares
	}
	return c.s.flt.spares
}

// FilesOn returns the IDs of files currently placed on disk d, sorted.
func (c *Context) FilesOn(d int) []int {
	var ids []int
	for id, p := range c.s.place {
		if p == d {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// ReassignFile moves fileID's placement to a live disk without modeling a
// transfer. It is valid only inside OnDiskFailure: the data's home just
// died, so there is nothing left to copy — the policy is declaring where the
// surviving copy (replica, parity reconstruction, cache) lives. Outside
// failover it is rejected, exactly like a late SetPlacement.
func (c *Context) ReassignFile(fileID, to int) error {
	s := c.s
	if s.flt == nil || !s.flt.inFailover {
		return errors.New("array: ReassignFile outside OnDiskFailure")
	}
	if to < 0 || to >= len(s.disks) {
		return fmt.Errorf("array: reassign target disk %d out of range", to)
	}
	if s.disks[to].failed {
		return fmt.Errorf("array: reassign target disk %d is failed", to)
	}
	if _, ok := s.files[fileID]; !ok {
		return fmt.Errorf("array: reassign of unknown file %d", fileID)
	}
	if s.trc != nil {
		from := -1
		if p, ok := s.place[fileID]; ok {
			from = p
		}
		if !s.recordReassign(fileID, from, to, c.Now()) {
			// Replay override: the re-home never happens; the file stays
			// where it was (typically on the failed disk, so its requests
			// wait for the spare or are lost).
			return nil
		}
	}
	s.place[fileID] = to
	s.flt.reassigned++
	return nil
}

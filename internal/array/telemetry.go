package array

import (
	"repro/internal/diskmodel"
	"repro/internal/reliability"
	"repro/internal/telemetry"
)

// simMetrics holds the pre-bound registry handles the simulation updates on
// its hot path. With telemetry disabled every field is nil and each update
// is a single nil check — the zero-overhead-when-off invariant is enforced
// by TestTelemetryOffAddsNoAllocs and the dispatch benchmarks.
type simMetrics struct {
	arrivals    *telemetry.Counter
	completions *telemetry.Counter
	transitions *telemetry.Counter
	migrations  *telemetry.Counter
	epochs      *telemetry.Counter
	respLatency *telemetry.Histogram
	queueDepth  *telemetry.Histogram
	simTime     *telemetry.Gauge
	eventsFired *telemetry.Gauge
}

// newSimMetrics binds the simulation's metric handles. A nil registry (the
// disabled case) yields nil handles throughout.
func newSimMetrics(r *telemetry.Registry) simMetrics {
	return simMetrics{
		arrivals:    r.Counter("sim.arrivals"),
		completions: r.Counter("sim.completions"),
		transitions: r.Counter("sim.speed_transitions"),
		migrations:  r.Counter("sim.migrations"),
		epochs:      r.Counter("sim.epochs"),
		respLatency: r.Histogram("sim.response_seconds", telemetry.LatencyBounds()),
		queueDepth:  r.Histogram("sim.queue_depth_at_enqueue", telemetry.QueueDepthBounds()),
		simTime:     r.Gauge("sim.virtual_seconds"),
		eventsFired: r.Gauge("sim.events_fired"),
	}
}

// Tracer labels for the simulator's event classes; constants so attaching
// them costs nothing.
const (
	labelArrival    = "arrival"
	labelService    = "service"
	labelTransition = "transition"
	labelEpoch      = "epoch"
	labelIdleTimer  = "idle-timer"
	labelSample     = "timeline-sample"
	labelMigrate    = "migrate-start"
	labelFaultTick  = "fault-tick"
	labelRepair     = "repair"
	labelRebuild    = "rebuild"
	labelScrub      = "scrub"
	labelCheckpoint = "checkpoint"
)

// sampleDisks appends one DiskSample per disk to the telemetry recorder at
// virtual time now. It reads only snapshot (non-mutating) accessors, so
// sampling never perturbs the simulation: a run with telemetry enabled is
// result-identical to the same run with it disabled, not merely close.
//
//simlint:hotpath
func (s *sim) sampleDisks(now float64, epoch int) {
	rec := s.cfg.Telemetry
	if rec == nil {
		return
	}
	var (
		energyJ            float64
		worstAFR           float64
		queueDepth         uint64
		disksHigh, disksLo uint64
	)
	for i, ds := range s.disks {
		snap := ds.disk.Snapshot(now)
		temp := ds.temp.PeekMeanTemp(now)
		afr := s.cfg.Press.SnapshotAFR(reliability.Factors{
			TempC:             temp,
			Utilization:       snap.Utilization,
			TransitionsPerDay: snap.TransitionRatePerDay,
		})
		speed := "low"
		if snap.Speed == diskmodel.High {
			speed = "high"
			disksHigh++
		} else {
			disksLo++
		}
		energyJ += snap.EnergyJ
		if afr > worstAFR {
			worstAFR = afr
		}
		queueDepth += uint64(ds.queueLen())
		if err := rec.RecordDiskSample(telemetry.DiskSample{
			T:           now,
			Epoch:       epoch,
			Disk:        i,
			Utilization: snap.Utilization,
			TempC:       temp,
			Speed:       speed,
			Transitions: snap.Transitions,
			AFRPct:      afr,
			QueueDepth:  ds.queueLen(),
			EnergyJ:     snap.EnergyJ,
		}); err != nil {
			// Telemetry I/O failure must not abort the simulation; drop the
			// recorder and keep running.
			s.cfg.Telemetry = nil
			return
		}
	}
	s.met.simTime.Set(now)
	s.met.eventsFired.Set(float64(s.eng.Fired()))
	// Epoch-cadence ops-plane aggregates, piggybacking on the disk walk
	// above. No-op (one nil check) when the recorder carries no Live.
	s.live.PublishEpoch(uint64(epoch), energyJ, worstAFR, queueDepth, disksHigh, disksLo)
}

package array

import (
	"fmt"

	"repro/internal/diskmodel"
	"repro/internal/workload"
)

// Context is the policy's window into the running simulation. A Context is
// only valid for the duration of the hook call it was passed to.
type Context struct {
	s *sim
}

// Now returns the current virtual time in seconds.
func (c *Context) Now() float64 { return c.s.eng.Now() }

// NumDisks returns the array size.
func (c *Context) NumDisks() int { return len(c.s.disks) }

// Files returns the workload's file set (shared; do not mutate).
func (c *Context) Files() workload.FileSet { return c.s.cfg.Trace.Files }

// File returns the file with the given id.
func (c *Context) File(id int) (workload.File, bool) {
	f, ok := c.s.files[id]
	return f, ok
}

// Placement returns the disk currently holding fileID (-1 if unplaced).
func (c *Context) Placement(fileID int) int {
	if d, ok := c.s.place[fileID]; ok {
		return d
	}
	return -1
}

// SetPlacement assigns a file to a disk without modeling a transfer. It is
// intended for Init-time layout; using it later teleports data and is
// rejected to keep migrations honest.
func (c *Context) SetPlacement(fileID, disk int) error {
	if c.Now() != 0 {
		return fmt.Errorf("array: SetPlacement after start (t=%v); use Migrate", c.Now())
	}
	if disk < 0 || disk >= len(c.s.disks) {
		return fmt.Errorf("array: placement disk %d out of range", disk)
	}
	if _, ok := c.s.files[fileID]; !ok {
		return fmt.Errorf("array: placement of unknown file %d", fileID)
	}
	c.s.place[fileID] = disk
	return nil
}

// DiskParams returns the drive parameter set shared by all disks.
func (c *Context) DiskParams() diskmodel.Params { return c.s.cfg.DiskParams }

// DiskSpeed returns the disk's current spindle speed.
func (c *Context) DiskSpeed(d int) diskmodel.Speed { return c.s.disks[d].disk.Speed() }

// DiskState returns the disk's activity state.
func (c *Context) DiskState(d int) diskmodel.State { return c.s.disks[d].disk.State() }

// DiskQueueLen returns the number of queued (not yet started) user
// requests — the demand signal policies use for spin-up decisions.
// Background transfers are excluded; see DiskBacklog.
func (c *Context) DiskQueueLen(d int) int { return c.s.disks[d].fg.len() }

// DiskBacklog returns all queued operations, including background
// transfers.
func (c *Context) DiskBacklog(d int) int { return c.s.disks[d].queueLen() }

// DiskTransitions returns the number of speed transitions disk d has made.
func (c *Context) DiskTransitions(d int) int { return c.s.disks[d].disk.Transitions() }

// DiskUtilization returns the disk's lifetime utilization so far.
func (c *Context) DiskUtilization(d int) float64 {
	return c.s.disks[d].disk.Utilization(c.Now())
}

// PendingSpeed reports the outstanding transition request, if any.
func (c *Context) PendingSpeed(d int) (diskmodel.Speed, bool) {
	if p := c.s.disks[d].pending; p != nil {
		return *p, true
	}
	return 0, false
}

// RequestTransition asks the array to move disk d to the target speed as
// soon as the disk is free. Before the simulation starts (Init) this sets
// the initial speed for free. A later request overwrites an earlier pending
// one; requesting the current speed clears any pending request.
func (c *Context) RequestTransition(d int, to diskmodel.Speed) {
	ds := c.s.disks[d]
	t := to
	ds.pending = &t
	if trc := c.s.trc; trc != nil {
		// Capture the cause now: the transition may only begin much later
		// (when the disk next goes idle), long after the hook returned.
		trc.pendingCause[d] = trc.takeCause()
	}
	if c.Now() > 0 || c.s.eng.Fired() > 0 {
		c.s.kick(d)
	}
}

// SetDecisionCause declares the reason for the policy's next traced action
// (transition request, migration, re-home): "idle-threshold", "heat",
// "afr-signal", and the like. The cause is consumed by the next decision
// and cleared when the current hook returns; without one, decisions are
// attributed to the hook they were taken in. A no-op when decision tracing
// is off.
func (c *Context) SetDecisionCause(cause string) {
	if c.s.trc != nil {
		c.s.trc.cause = cause
	}
}

// SetIdleTimeout configures disk d's idleness threshold H in seconds; the
// policy's OnIdleTimeout fires after the disk has been continuously idle
// that long. Zero disables the timer.
func (c *Context) SetIdleTimeout(d int, seconds float64) {
	if seconds < 0 {
		seconds = 0
	}
	c.s.disks[d].idleTimeout = seconds
	if seconds > 0 {
		c.s.armIdleTimer(d)
	}
}

// IdleTimeout returns disk d's current idleness threshold.
func (c *Context) IdleTimeout(d int) float64 { return c.s.disks[d].idleTimeout }

// AccessCount returns the number of requests for fileID observed during the
// current epoch (the paper's File Popularity Table).
func (c *Context) AccessCount(fileID int) int { return c.s.counts[fileID] }

// AccessCounts returns a copy of the current epoch's popularity table.
func (c *Context) AccessCounts() map[int]int {
	out := make(map[int]int, len(c.s.counts))
	for k, v := range c.s.counts {
		out[k] = v
	}
	return out
}

// Migrate moves fileID to disk `to` as a background transfer: a read
// occupies the source disk, then a write occupies the target, and only then
// does placement flip (requests meanwhile keep hitting the source). Returns
// false if the file is already on `to`, unknown, or mid-migration.
//
// Migration starts issued within one epoch are staggered across the epoch
// rather than dumped at the boundary instant: a real redistribution daemon
// trickles transfers, and a synchronous burst would serialize hundreds of
// non-preemptible transfers in front of user requests.
func (c *Context) Migrate(fileID, to int) bool {
	s := c.s
	if to < 0 || to >= len(s.disks) {
		return false
	}
	f, ok := s.files[fileID]
	if !ok {
		return false
	}
	from, ok := s.place[fileID]
	if !ok || from == to || s.migrating[fileID] {
		return false
	}
	if s.disks[from].failed || s.disks[to].failed {
		return false
	}
	if s.trc != nil && !s.recordMigrate(fileID, from, to, f.SizeMB, c.Now()) {
		// Replay override: this migration never happens.
		return false
	}
	s.migrating[fileID] = true
	s.migrations++
	s.met.migrations.Inc()
	delay := 0.0
	if s.cfg.EpochSeconds > 0 {
		const slotsPerEpoch = 400
		delay = float64(s.migsThisEpoch) * s.cfg.EpochSeconds / slotsPerEpoch
		s.migsThisEpoch++
	}
	if delay <= 0 {
		s.startMigration(fileID, from, to, f.SizeMB)
		return true
	}
	s.schedule(delay, eventRecord{
		Kind: evMigrateStart, FileID: fileID, From: from, To: to, SizeMB: f.SizeMB,
	})
	return true
}

// Migrating reports whether fileID has a migration in flight.
func (c *Context) Migrating(fileID int) bool { return c.s.migrating[fileID] }

// EnqueueWrite schedules a background write of sizeMB on disk d (MAID's
// cache-disk copy). onDone, if non-nil, runs at completion.
func (c *Context) EnqueueWrite(d int, sizeMB float64, onDone func()) error {
	if d < 0 || d >= len(c.s.disks) {
		return fmt.Errorf("array: background write to invalid disk %d", d)
	}
	if c.s.disks[d].failed {
		return fmt.Errorf("array: background write to failed disk %d", d)
	}
	if sizeMB < 0 {
		return fmt.Errorf("array: negative write size %v", sizeMB)
	}
	var done *cont
	if onDone != nil {
		// A policy callback is opaque to the checkpoint subsystem: it
		// cannot be serialized, so snapshot writes are skipped while one is
		// in flight (tracked by opaqueLive, released on run or drop).
		done = &cont{kind: contOpaque, fn: func(float64) { onDone() }}
		c.s.opaqueLive++
	}
	c.s.enqueue(d, op{kind: opBackground, sizeMB: sizeMB, done: done})
	return nil
}

package array

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/diskmodel"
	"repro/internal/workload"
)

// TestMD1QueueingTheory validates the simulator's queueing behaviour
// against closed-form theory: a single disk fed Poisson arrivals of
// fixed-size requests is an M/D/1 queue, whose mean response is
// S + ρS/(2(1−ρ)) by Pollaczek–Khinchine. The simulator must agree within
// sampling error — this pins down the FCFS service path, the clock, and
// the response accounting all at once.
func TestMD1QueueingTheory(t *testing.T) {
	params := diskmodel.DefaultParams()
	const sizeMB = 2.0
	service := params.ServiceTime(sizeMB, diskmodel.High)

	for _, rho := range []float64{0.3, 0.6, 0.8} {
		lambda := rho / service
		rng := rand.New(rand.NewSource(42))
		const n = 60000
		files := workload.FileSet{{ID: 0, SizeMB: sizeMB, AccessRate: lambda}}
		reqs := make([]workload.Request, n)
		clock := 0.0
		for i := range reqs {
			clock += rng.ExpFloat64() / lambda
			reqs[i] = workload.Request{Arrival: clock, FileID: 0}
		}
		tr := &workload.Trace{Files: files, Requests: reqs}
		res, err := Run(Config{Disks: 2, Trace: tr, Policy: &staticPolicy{}})
		if err != nil {
			t.Fatal(err)
		}
		want := service + rho*service/(2*(1-rho))
		got := res.MeanResponse
		tol := 0.06
		if rho >= 0.8 {
			tol = 0.15 // heavy-traffic means converge slowly
		}
		if math.Abs(got-want)/want > tol {
			t.Errorf("rho=%.1f: mean response %.5fs, M/D/1 predicts %.5fs (%.1f%% off)",
				rho, got, want, 100*math.Abs(got-want)/want)
		}
		// Utilization of the serving disk must equal rho.
		if u := res.PerDisk[0].Utilization; math.Abs(u-rho) > 0.02 {
			t.Errorf("rho=%.1f: measured utilization %.3f", rho, u)
		}
	}
}

// TestLittlesLaw cross-checks L = λW on a multi-disk run: the time-average
// number of requests in the system (measured through busy time and
// response) must satisfy Little's law within sampling error.
func TestLittlesLaw(t *testing.T) {
	cfg := workload.DefaultGenConfig()
	cfg.NumRequests = 40000
	cfg.MeanInterarrival = 0.004
	tr, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Disks: 4, Trace: tr, Policy: &staticPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	lambda := float64(res.Requests) / res.Duration
	// L from the response-time side.
	l := lambda * res.MeanResponse
	// L from the occupancy side: sum of busy time (requests in service)
	// is a lower bound of L·duration; with low queueing they are close.
	var busy float64
	for _, d := range res.PerDisk {
		busy += d.BusyTime
	}
	lOccupancy := busy / res.Duration
	if l < lOccupancy*0.95 {
		t.Fatalf("Little's law violated: L=λW gives %.4f but occupancy alone is %.4f", l, lOccupancy)
	}
	// And not wildly above it either on this lightly-queued system.
	if l > lOccupancy*2.5 {
		t.Fatalf("implausible queueing: L=%.4f vs occupancy %.4f", l, lOccupancy)
	}
}

// TestEnergyLowerBound: no run can consume less than every disk idling at
// low speed for the duration, nor more than every disk active at high
// speed plus all transition energy.
func TestEnergyBounds(t *testing.T) {
	tr := tinyTrace(t, 60, 4000, 0.01)
	for _, pol := range []Policy{&staticPolicy{}, &spinDownPolicy{h: 5}} {
		res, err := Run(Config{Disks: 4, Trace: tr, Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		p := diskmodel.DefaultParams()
		lower := float64(res.Disks) * p.PowerIdleLow * res.Duration
		var transitions int
		for _, d := range res.PerDisk {
			transitions += d.Transitions
		}
		upper := float64(res.Disks)*p.PowerActiveHigh*res.Duration +
			float64(transitions)*math.Max(p.TransitionUpEnergy, p.TransitionDownEnergy)
		if res.EnergyJ < lower {
			t.Errorf("%s: energy %.0f below all-idle-low floor %.0f", pol.Name(), res.EnergyJ, lower)
		}
		if res.EnergyJ > upper {
			t.Errorf("%s: energy %.0f above all-active-high ceiling %.0f", pol.Name(), res.EnergyJ, upper)
		}
	}
}

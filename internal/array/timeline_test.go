package array

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/diskmodel"
)

func TestTimelineSampling(t *testing.T) {
	tr := tinyTrace(t, 40, 3000, 0.02) // ~60 s
	res, err := Run(Config{Disks: 4, Trace: tr, Policy: &staticPolicy{}, SampleInterval: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) < 10 {
		t.Fatalf("timeline samples = %d, want >= 10 over ~60 s", len(res.Timeline))
	}
	p := diskmodel.DefaultParams()
	prev := 0.0
	var lastCompleted uint64
	for i, s := range res.Timeline {
		if s.T <= prev {
			t.Fatalf("sample %d time %v not increasing", i, s.T)
		}
		prev = s.T
		// Power bounded by the physical envelope.
		if s.PowerW < 4*p.PowerIdleLow-1e-9 || s.PowerW > 4*p.PowerActiveHigh+50 {
			t.Fatalf("sample %d power %v outside envelope", i, s.PowerW)
		}
		if s.HighDisks != 4 {
			t.Fatalf("always-on run: %d high disks at sample %d", s.HighDisks, i)
		}
		if s.Completed < lastCompleted {
			t.Fatalf("completions decreased at sample %d", i)
		}
		lastCompleted = s.Completed
		if s.Queued < 0 || s.InService < 0 || s.InService > 4 {
			t.Fatalf("sample %d occupancy out of range: %+v", i, s)
		}
	}
	if lastCompleted == 0 {
		t.Fatal("timeline never observed completions")
	}
}

func TestTimelineDisabledByDefault(t *testing.T) {
	tr := tinyTrace(t, 10, 100, 0.01)
	res, err := Run(Config{Disks: 2, Trace: tr, Policy: &staticPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) != 0 {
		t.Fatalf("timeline recorded without SampleInterval: %d samples", len(res.Timeline))
	}
}

func TestTimelineNegativeIntervalRejected(t *testing.T) {
	tr := tinyTrace(t, 10, 100, 0.01)
	if _, err := Run(Config{Disks: 2, Trace: tr, Policy: &staticPolicy{}, SampleInterval: -1}); err == nil {
		t.Fatal("negative sample interval accepted")
	}
}

func TestRenderTimeline(t *testing.T) {
	tr := tinyTrace(t, 40, 2000, 0.02)
	res, err := Run(Config{Disks: 4, Trace: tr, Policy: &spinDownPolicy{h: 2}, SampleInterval: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderTimeline(&buf, res.Timeline, 10)
	out := buf.String()
	if !strings.Contains(out, "power(W)") {
		t.Fatalf("missing header:\n%s", out)
	}
	rows := strings.Count(out, "\n") - 1
	if rows < 1 || rows > 11 {
		t.Fatalf("rendered %d rows, want <= 10 + header", rows)
	}
	// Empty timeline message.
	buf.Reset()
	RenderTimeline(&buf, nil, 10)
	if !strings.Contains(buf.String(), "no timeline samples") {
		t.Fatal("empty-timeline message missing")
	}
}

func TestWriteTimelineCSV(t *testing.T) {
	samples := []Sample{
		{T: 2.5, PowerW: 103.0625, HighDisks: 4, Queued: 1, InService: 2, Completed: 10},
		{T: 5, PowerW: 98.5, HighDisks: 3, Queued: 0, InService: 1, Completed: 25},
	}
	var buf bytes.Buffer
	if err := WriteTimelineCSV(&buf, samples); err != nil {
		t.Fatal(err)
	}
	want := "t,power_w,high_disks,queued,in_service,completed\n" +
		"2.5,103.0625,4,1,2,10\n" +
		"5,98.5,3,0,1,25\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
	// Empty timeline still writes the header so the file is self-describing.
	buf.Reset()
	if err := WriteTimelineCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "t,power_w,high_disks,queued,in_service,completed\n" {
		t.Fatalf("empty CSV = %q", buf.String())
	}
}

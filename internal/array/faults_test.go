package array

import (
	"testing"
	"time"

	"repro/internal/faults"
)

// TestScrubChainsTerminateWithTrace pins the scrub-liveness contract
// (scrubChainLives): scrub rescheduling must die with the trace, not with
// queue emptiness. Scrub passes are real background I/O, so at accelerated
// timescales — where the virtual scrub interval is shorter than a pass's
// service time — every disk's chain keeps some disk busy at every check,
// and a "reschedule while work remains" guard lets twelve chains sustain
// each other's busyness forever. This exact configuration (default scrub
// interval and pass size, acceleration 5×10⁵, 12 disks) hung the simulator
// before the fix; the watchdog turns a regression back into a test failure
// instead of a suite timeout.
func TestScrubChainsTerminateWithTrace(t *testing.T) {
	tr := tinyTrace(t, 30, 4000, 0.01)
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := Run(Config{
			Disks:  12,
			Trace:  tr,
			Policy: &staticPolicy{},
			Faults: &faults.Config{
				Enabled:              true,
				Seed:                 7,
				Acceleration:         5e5,
				CheckIntervalSeconds: 0.05,
				LSERatePerHour:       faults.DefaultLSERatePerHour,
			},
		})
		done <- outcome{res, err}
	}()
	var res *Result
	select {
	case o := <-done:
		if o.err != nil {
			t.Fatal(o.err)
		}
		res = o.res
	case <-time.After(2 * time.Minute):
		t.Fatal("simulation did not terminate: scrub chains are keeping each other alive past trace exhaustion")
	}
	if res.Scrubs == 0 {
		t.Fatal("no scrub passes ran — the scenario no longer exercises the scrub chains")
	}
	// The trace spans ~40 virtual seconds; scrub passes trailing the last
	// arrival may extend the run, but only by in-flight work, not by fresh
	// cycles. A bound of minutes (vs the trace's seconds) catches any
	// return to self-sustaining rescheduling that still happens to end.
	if res.Duration > 600 {
		t.Fatalf("run lasted %.0f virtual seconds for a ~40 s trace: scrub chains outlived the trace", res.Duration)
	}
}

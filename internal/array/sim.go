package array

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/des"
	"repro/internal/diskmodel"
	"repro/internal/faults"
	"repro/internal/reliability"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// Config describes one simulation run.
type Config struct {
	// Disks is the array size (paper sweep: 6..16).
	Disks int
	// DiskParams describes the two-speed drives; zero value means
	// diskmodel.DefaultParams().
	DiskParams diskmodel.Params
	// Thermal describes the temperature model; zero value means
	// thermal.Default().
	Thermal thermal.Model
	// Trace is the workload to replay.
	Trace *workload.Trace
	// Policy is the energy-saving strategy under test.
	Policy Policy
	// EpochSeconds is the period of Policy.OnEpoch; zero disables epochs.
	EpochSeconds float64
	// Press is the reliability model used for the final AFR; nil means
	// reliability.NewModel().
	Press *reliability.Model
	// MaxQueue guards against runaway simulations: a per-disk queue
	// exceeding it aborts the run with an error. Zero means 1,000,000.
	MaxQueue int
	// SampleInterval, when positive, records a timeline Sample of array
	// power, speeds, and queues every that many seconds of virtual time.
	SampleInterval float64
	// Faults configures failure injection. Nil (or a config with Enabled
	// false) disables the subsystem entirely, leaving results identical
	// to a run without it.
	Faults *faults.Config
	// Spares is the hot-spare pool: each failure consumes one spare (the
	// replacement absorbs queued work across the outage); a failure that
	// finds the pool empty is a data-loss event and its requests are lost.
	Spares int
	// RebuildMBps paces the post-repair rebuild traffic. Zero means 50.
	// When Faults.RebuildTime is set, each rebuild instead draws its total
	// duration from that distribution and paces itself to finish in it.
	RebuildMBps float64
	// RAID overlays a redundancy organization on the array: data loss is
	// then declared only when a failure combination defeats a group's
	// redundancy (see raid.go). The zero value disables the layer; enabling
	// it requires fault injection.
	RAID RAIDConfig
	// StallLimit is the event-loop watchdog: the run fails with a
	// diagnostic if this many consecutive events fire without the virtual
	// clock advancing. Zero means 1,000,000.
	StallLimit uint64
	// Telemetry, when non-nil, receives the run's instrumentation: registry
	// metrics, per-disk time-series samples on epoch boundaries, a DES
	// event trace (when the recorder has one), and progress lines. Nil
	// disables all instrumentation; the hot path then pays only nil checks
	// and zero allocations, and results are identical either way — the
	// sampler reads exclusively through non-mutating snapshot accessors and
	// schedules no events of its own.
	Telemetry *telemetry.Recorder
	// Watch, when non-nil, receives the engine's live position (virtual
	// time, events fired, pending queue depth, watchdog streak) through a
	// lock-free snapshot an ops server can read concurrently. Like
	// Telemetry it is observation-only: results are bit-identical with or
	// without it, and a nil watch costs the hot path one nil check.
	Watch *des.Watch
	// Checkpoint, when non-nil with a positive interval, snapshots the
	// complete simulation state periodically so an interrupted run can be
	// resumed bit-identically (see checkpoint.go). Nil disables the
	// subsystem; a run without it schedules no checkpoint events and is
	// identical to one that predates it. NOTE: the checkpoint tick is a real
	// DES event, so an uninterrupted run and its resumed twin only compare
	// bit-identically (EventsFired included) when both use the same
	// interval.
	Checkpoint *CheckpointSpec
	// DecisionOverrides forces the outcome of individual decisions during
	// counterfactual replay, keyed by decision sequence number (see
	// telemetry.Decision.Seq) with an override action (OverrideSkip). It
	// requires Telemetry with a DecisionLog — sequence numbers only exist
	// when decisions are being recorded — and deliberately changes results:
	// it is the one tracing feature that is not read-only.
	DecisionOverrides map[uint64]string
}

func (c *Config) setDefaults() {
	if c.DiskParams == (diskmodel.Params{}) {
		c.DiskParams = diskmodel.DefaultParams()
	}
	if c.Thermal == (thermal.Model{}) {
		c.Thermal = thermal.Default()
	}
	if c.Press == nil {
		c.Press = reliability.NewModel()
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 1_000_000
	}
	if c.RebuildMBps == 0 {
		c.RebuildMBps = 50
	}
	if c.StallLimit == 0 {
		c.StallLimit = 1_000_000
	}
}

// Validate reports the first configuration error.
func (c *Config) Validate() error {
	switch {
	case c.Disks < 2:
		return errors.New("array: need at least 2 disks")
	case c.Trace == nil:
		return errors.New("array: nil trace")
	case c.Policy == nil:
		return errors.New("array: nil policy")
	case c.EpochSeconds < 0:
		return errors.New("array: negative epoch")
	case c.MaxQueue < 0:
		return errors.New("array: negative max queue")
	case c.SampleInterval < 0:
		return errors.New("array: negative sample interval")
	case c.Spares < 0:
		return errors.New("array: negative spare count")
	case c.RebuildMBps < 0:
		return errors.New("array: negative rebuild rate")
	case len(c.DecisionOverrides) > 0 && (c.Telemetry == nil || c.Telemetry.Decisions == nil):
		return errors.New("array: DecisionOverrides requires a telemetry recorder with a DecisionLog")
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
	}
	if c.RAID.Enabled() {
		if c.Faults == nil || !c.Faults.Enabled {
			return errors.New("array: RAID organization requires fault injection")
		}
		if err := c.RAID.Validate(c.Disks); err != nil {
			return err
		}
	}
	if err := c.DiskParams.Validate(); err != nil {
		return err
	}
	if err := c.Thermal.Validate(); err != nil {
		return err
	}
	return c.Trace.Validate()
}

// DiskResult is the per-disk outcome of a run.
type DiskResult struct {
	ID                int
	EnergyJ           float64
	Utilization       float64
	Transitions       int
	TransitionsPerDay float64
	MeanTempC         float64
	BusyTime          float64
	RequestsServed    int
	BytesServedMB     float64
	AFR               float64
	FinalSpeed        diskmodel.Speed
}

// Result is the outcome of one simulation run.
type Result struct {
	PolicyName string
	Disks      int

	// Duration is the virtual time at which the run finished (last
	// completion, including drain).
	Duration float64

	// Response-time statistics over user requests (seconds).
	MeanResponse float64
	P50Response  float64
	P95Response  float64
	P99Response  float64
	P999Response float64
	MaxResponse  float64
	Requests     int

	// EnergyJ is total array energy over Duration.
	EnergyJ float64

	// ArrayAFR is the PRESS integrator output: the AFR of the least
	// reliable disk, in percent.
	ArrayAFR float64

	// WorstDisk is the index of the disk that set ArrayAFR.
	WorstDisk int

	PerDisk []DiskResult

	// Bookkeeping counters.
	Migrations    int
	BackgroundOps int
	Epochs        int

	// EventsFired is the total number of DES events the run executed.
	EventsFired uint64

	// Timeline holds periodic samples when Config.SampleInterval > 0.
	Timeline []Sample

	// Attribution is the decision-tracing rollup: per-request latency and
	// energy decomposition plus per-kind decision counts and realized park
	// economics. Nil unless the run's telemetry recorder carried a
	// DecisionLog.
	Attribution *telemetry.AttributionReport

	// Fault-injection outcomes. All zero when Config.Faults is nil or
	// disabled.

	// DiskFailures counts injected disk failures.
	DiskFailures int
	// DiskRepairs counts replacements that came back up within the run.
	DiskRepairs int
	// SparesUsed counts failures absorbed by the hot-spare pool.
	SparesUsed int
	// DataLossEvents counts failures that found the spare pool empty.
	DataLossEvents int
	// MTTDLHours is the virtual time of the first data-loss event in
	// hours — the run's observed mean-time-to-data-loss sample. Zero
	// when no data loss occurred.
	MTTDLHours float64
	// LostRequests counts user requests dropped because their data was
	// on a failed disk with no spare and no re-assigned placement.
	LostRequests int
	// DegradedRequests counts user requests that were re-routed around a
	// failure, waited out an outage for a replacement drive, or arrived
	// at a disk that was rebuilding.
	DegradedRequests int
	// ReassignedFiles counts placements moved by policy failover
	// (Context.ReassignFile).
	ReassignedFiles int
	// RebuildMB is the data volume rewritten by rebuilds.
	RebuildMB float64
	// RebuildEnergyJ estimates the energy spent serving rebuild traffic.
	RebuildEnergyJ float64
	// FailureLog lists every observed failure in time order.
	FailureLog []FailureEvent

	// ExposureHours is the run's duration on the reliability timescale:
	// virtual hours multiplied by the fault acceleration factor. It is the
	// denominator of every rate estimated from injected events. Zero when
	// faults are off.
	ExposureHours float64

	// Latent-sector-error outcomes. All zero unless Faults.LSERatePerHour
	// is positive; LSEModeled distinguishes "modeled, none occurred" from
	// "not modeled".
	LSEModeled bool
	// LSEErrors counts latent sector errors that accumulated.
	LSEErrors int
	// LSECleared counts latent errors detected and repaired by scrubbing.
	LSECleared int
	// LSEPending is the count still latent at the end of the run.
	LSEPending int
	// Scrubs counts completed scrub passes; ScrubMB is their I/O volume.
	Scrubs  int
	ScrubMB float64

	// RAID-organization outcomes. All zero unless Config.RAID is enabled.

	// RAIDLevel echoes the configured organization ("" when disabled).
	RAIDLevel string
	// RAIDGroups is the number of redundancy groups.
	RAIDGroups int
	// RAIDDataLossEvents counts failure combinations that defeated a
	// group's redundancy; the next two split it by kind.
	RAIDDataLossEvents int
	RAIDLSELosses      int
	RAIDOverlapLosses  int
	// RAIDFirstLossHours is the virtual time of the first RAID data-loss
	// event in hours; zero when none occurred.
	RAIDFirstLossHours float64
	// MTTDLEstHours is ExposureHours divided by RAIDDataLossEvents — the
	// Monte-Carlo MTTDL estimate on the reliability timescale. Zero when no
	// loss was observed (the exposure is then a censored lower bound).
	MTTDLEstHours float64
	// RAIDLossLog lists every declared loss in time order.
	RAIDLossLog []RAIDLossEvent
}

type opKind int

const (
	opUser opKind = iota
	opBackground
	opChunk
)

type op struct {
	kind     opKind
	fileID   int
	sizeMB   float64
	arrival  float64    // user request arrival time
	done     *cont      // completion continuation (see events.go); nil = none
	stripe   *stripeJob // for opChunk: the parent request
	mig      bool       // background leg of a Context.Migrate transfer
	rerouted bool       // already re-routed around a failure once

	// Latency-decomposition stamps, written only when decision tracing is
	// on (sim.trc != nil) and read only by trace.go.
	enqT     float64 // when the op entered its disk's queue
	spinBase float64 // disk's transition-busy clock at enqueue
	waitSpin float64 // transition time that elapsed while queued
	svcDur   float64 // service duration at dispatch
}

// stripeJob tracks one striped user request across its chunks.
type stripeJob struct {
	fileID    int
	arrival   float64
	remaining int
	lost      bool  // a chunk was lost to a failure: the request is lost
	done      *cont // fleet continuation run when the request resolves; nil = none
}

// fifo is a slice-backed queue with amortized compaction.
type fifo struct {
	buf  []op
	head int
}

func (q *fifo) len() int { return len(q.buf) - q.head }

func (q *fifo) push(o op) { q.buf = append(q.buf, o) }

func (q *fifo) pop() op {
	o := q.buf[q.head]
	q.buf[q.head] = op{} // release references
	q.head++
	if q.head > 64 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return o
}

// diskState is the scheduler state the array keeps per disk on top of the
// physical diskmodel.Disk. User requests and background transfers live in
// separate queues: foreground work always dispatches first, so migrations
// and cache copies soak up idle capacity instead of inflating user response
// times.
type diskState struct {
	disk        *diskmodel.Disk
	temp        *thermal.Tracker
	fg          fifo
	bg          fifo
	pending     *diskmodel.Speed // requested transition target
	idleTimeout float64          // 0 = disabled
	idleArmed   bool

	// Fault lifecycle (only ever set when fault injection is enabled).
	failed        bool    // disk is down; rejects all I/O
	spareAssigned bool    // a spare absorbs this outage: queued work waits
	rebuilding    bool    // replacement is up and streaming rebuild traffic
	rebuildMBps   float64 // per-rebuild pacing from a Weibull duration draw; 0 = Config.RebuildMBps
	gen           uint64  // bumped on each failure; voids in-flight service

	// Spin-wait clock, maintained only when decision tracing is on
	// (sim.trc != nil): cumulative completed transition seconds, plus the
	// start time of the transition currently in progress (0 = none).
	transBusy  float64
	transStart float64
}

func (ds *diskState) queueLen() int { return ds.fg.len() + ds.bg.len() }

func (ds *diskState) push(o op) {
	if o.kind == opBackground {
		ds.bg.push(o)
		return
	}
	ds.fg.push(o)
}

func (ds *diskState) pop() op {
	if ds.fg.len() > 0 {
		return ds.fg.pop()
	}
	return ds.bg.pop()
}

// sim is the running simulation.
type sim struct {
	cfg     Config
	eng     *des.Engine
	disks   []*diskState
	files   map[int]workload.File
	place   map[int]int // fileID -> disk
	counts  map[int]int // per-epoch access counts
	nextReq int

	respStream stats.Stream
	respHist   *stats.LatencyHistogram

	migrations    int
	backgroundOps int
	epochs        int
	migrating     map[int]bool // fileID -> migration in flight
	migsThisEpoch int          // for staggering migration starts
	timeline      []Sample

	met simMetrics // nil handles (no-ops) unless cfg.Telemetry is set

	// live is the ops-plane snapshot publisher, cached from
	// cfg.Telemetry.Live (nil when off: every publish is then a single
	// nil-receiver check and zero allocations).
	live *telemetry.Live

	flt *faultState // nil unless fault injection is enabled

	// trc is the decision-tracing state; nil unless the telemetry recorder
	// carries a DecisionLog (see trace.go).
	trc *traceState

	// events mirrors the engine's pending queue as serializable records
	// (events.go); entries are removed as events fire.
	events map[des.EventID]eventRecord
	// dispatchH is the one engine handler every record is scheduled with;
	// it keys the record table by the engine's FiringID. Caching it here
	// means `at` allocates no per-event closure.
	dispatchH des.Handler
	// ctx is the one Context handed to policy callbacks. Context carries
	// only the sim pointer, so a single cached instance replaces a heap
	// allocation at every callback site.
	ctx *Context
	// opaqueLive counts in-flight non-serializable continuations (policy
	// callbacks from Context.EnqueueWrite); checkpoint writes are skipped
	// while it is nonzero.
	opaqueLive int

	// host is non-nil when this sim is a fleet member driven by a cluster
	// router over a shared engine (see member.go): arrivals come from
	// Member.Submit instead of the trace, liveness questions defer to the
	// host, and contFleet continuations report completions back to it.
	host Host

	failure error // sticky abort (queue explosion etc.)
}

// newSim builds the simulation shell shared by Run and Resume: metric
// bindings, file table, and empty disk scheduler states. Disk contents and
// the event queue are filled in by the caller (fresh for Run, from a
// snapshot for Resume).
func newSim(cfg Config) (*sim, error) {
	return newSimOn(cfg, nil, nil)
}

// newSimOn is newSim with an optional shared engine and host for fleet
// members. When eng is non-nil the sim schedules onto it instead of owning
// one, and leaves the engine's tracer/watch alone — the cluster that owns
// the engine installs those exactly once.
func newSimOn(cfg Config, eng *des.Engine, host Host) (*sim, error) {
	hist, err := stats.NewLatencyHistogram(-6, 5, 50)
	if err != nil {
		return nil, err
	}
	shared := eng != nil
	if eng == nil {
		eng = des.New()
	}
	s := &sim{
		cfg:       cfg,
		eng:       eng,
		host:      host,
		files:     make(map[int]workload.File, len(cfg.Trace.Files)),
		place:     make(map[int]int, len(cfg.Trace.Files)),
		counts:    make(map[int]int),
		respHist:  hist,
		migrating: make(map[int]bool),
		events:    make(map[des.EventID]eventRecord),
	}
	s.ctx = &Context{s: s}
	s.dispatchH = func(e *des.Engine) {
		id := e.FiringID()
		rec := s.events[id]
		delete(s.events, id)
		s.dispatch(rec, e)
	}
	if cfg.Telemetry != nil {
		s.met = newSimMetrics(cfg.Telemetry.Metrics)
		s.live = cfg.Telemetry.Live
		if tr := cfg.Telemetry.Tracer(); tr != nil && !shared {
			s.eng.SetTracer(tr)
		}
		if cfg.Telemetry.Decisions != nil {
			s.trc = newTraceState(&cfg)
		}
	}
	if !shared {
		s.eng.SetWatch(cfg.Watch)
	}
	for _, f := range cfg.Trace.Files {
		s.files[f.ID] = f
	}
	s.disks = make([]*diskState, cfg.Disks)
	for i := range s.disks {
		s.disks[i] = &diskState{}
	}
	return s, nil
}

// Run executes one simulation and returns its result.
func Run(cfg Config) (*Result, error) {
	cfg.setDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := validateCheckpointSpec(&cfg); err != nil {
		return nil, err
	}
	s, err := newSim(cfg)
	if err != nil {
		return nil, err
	}
	for i := range s.disks {
		s.disks[i].disk = diskmodel.New(i, cfg.DiskParams, diskmodel.High)
		s.disks[i].temp = thermal.NewTracker(cfg.Thermal, diskmodel.High)
	}

	ctx := s.ctx
	if err := cfg.Policy.Init(ctx); err != nil {
		return nil, fmt.Errorf("array: policy init: %w", err)
	}
	// Every file must be placed. Check in sorted ID order so the reported
	// file is the lowest unplaced one, not whichever map iteration found.
	ids := make([]int, 0, len(s.files))
	for id := range s.files {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if _, ok := s.place[id]; !ok {
			return nil, fmt.Errorf("array: policy %q left file %d unplaced", cfg.Policy.Name(), id)
		}
	}
	// Apply initial speeds instantly: Init-time transitions model the
	// configuration of the array before the workload starts, not run-time
	// transitions, so they are free and uncounted.
	for i, ds := range s.disks {
		if ds.pending != nil && *ds.pending != ds.disk.Speed() {
			target := *ds.pending
			ds.disk = diskmodel.New(i, cfg.DiskParams, target)
			ds.temp = thermal.NewTracker(cfg.Thermal, target)
		}
		ds.pending = nil
	}

	// Arm initial idle timers.
	for i := range s.disks {
		s.armIdleTimer(i)
	}

	// Schedule the first arrival and epochs.
	if len(cfg.Trace.Requests) > 0 {
		first := cfg.Trace.Requests[0].Arrival
		if err := s.at(first, eventRecord{Kind: evArrival}); err != nil {
			return nil, err
		}
	}
	if cfg.EpochSeconds > 0 {
		s.schedule(cfg.EpochSeconds, eventRecord{Kind: evEpoch})
	}
	s.installSampler()
	if err := s.installFaults(); err != nil {
		return nil, err
	}
	s.installCheckpoints()
	return s.finish()
}

// finish drives the event loop to completion and collects the result; it is
// the common tail of Run and Resume.
func (s *sim) finish() (*Result, error) {
	watchdogErr := s.eng.RunGuarded(s.cfg.StallLimit)
	if s.failure != nil {
		return nil, s.failure
	}
	if watchdogErr != nil {
		return nil, fmt.Errorf("array: %w (policy %q, %d disks, %d/%d requests delivered)",
			watchdogErr, s.cfg.Policy.Name(), len(s.disks), s.nextReq, len(s.cfg.Trace.Requests))
	}
	s.cfg.Watch.MarkDone()
	return s.collect()
}

// onArrival injects the next trace request and schedules its successor.
func (s *sim) onArrival(e *des.Engine) {
	if s.failure != nil {
		return
	}
	req := s.cfg.Trace.Requests[s.nextReq]
	s.nextReq++
	s.met.arrivals.Inc()
	if s.nextReq < len(s.cfg.Trace.Requests) {
		next := s.cfg.Trace.Requests[s.nextReq].Arrival
		if next < e.Now() {
			next = e.Now()
		}
		if err := s.at(next, eventRecord{Kind: evArrival}); err != nil {
			s.fail(err)
			return
		}
	}

	f, ok := s.files[req.FileID]
	if !ok {
		s.fail(fmt.Errorf("array: request for unknown file %d", req.FileID))
		return
	}
	s.counts[req.FileID]++
	ctx := s.ctx
	s.setHook(hookArrival)
	defer s.endHook()

	if sp, ok := s.cfg.Policy.(StripePolicy); ok {
		targets := sp.StripeTargets(ctx, req.FileID)
		if len(targets) >= 2 {
			s.dispatchStriped(req.FileID, f.SizeMB, req.Arrival, targets)
			return
		}
	}
	target := s.cfg.Policy.TargetDisk(ctx, req.FileID)
	if target < 0 || target >= len(s.disks) {
		s.fail(fmt.Errorf("array: policy %q targeted invalid disk %d", s.cfg.Policy.Name(), target))
		return
	}
	s.enqueue(target, op{kind: opUser, fileID: req.FileID, sizeMB: f.SizeMB, arrival: req.Arrival})
}

// dispatchStriped fans a request out as equal chunks, one per target disk.
func (s *sim) dispatchStriped(fileID int, sizeMB, arrival float64, targets []int) {
	s.dispatchStripedDone(fileID, sizeMB, arrival, targets, nil)
}

// dispatchStripedDone is dispatchStriped with a fleet continuation attached
// to the stripe job; done runs once, when the whole request resolves.
func (s *sim) dispatchStripedDone(fileID int, sizeMB, arrival float64, targets []int, done *cont) {
	for _, d := range targets {
		if d < 0 || d >= len(s.disks) {
			s.fail(fmt.Errorf("array: policy %q striped file %d to invalid disk %d",
				s.cfg.Policy.Name(), fileID, d))
			return
		}
	}
	job := &stripeJob{fileID: fileID, arrival: arrival, remaining: len(targets), done: done}
	chunk := sizeMB / float64(len(targets))
	for _, d := range targets {
		s.enqueue(d, op{kind: opChunk, fileID: fileID, sizeMB: chunk, arrival: arrival, stripe: job})
		if s.failure != nil {
			return
		}
	}
}

func (s *sim) fail(err error) {
	if s.failure == nil {
		s.failure = err
	}
	s.eng.Stop()
}

func (s *sim) enqueue(disk int, o op) {
	ds := s.disks[disk]
	if ds.failed {
		s.routeAroundFailure(disk, o)
		return
	}
	if ds.rebuilding && o.kind != opBackground && !o.rerouted {
		s.flt.degraded++
	}
	if s.trc != nil {
		s.noteEnqueue(disk, &o, s.eng.Now())
	}
	s.met.queueDepth.Observe(float64(ds.queueLen()))
	ds.push(o)
	if !s.checkQueue(disk) {
		return
	}
	s.kick(disk)
}

// checkQueue enforces the overload guard; it reports false when the run
// was aborted.
func (s *sim) checkQueue(disk int) bool {
	if s.disks[disk].queueLen() > s.cfg.MaxQueue {
		s.fail(fmt.Errorf("array: disk %d queue exceeded %d (overload); policy %q cannot sustain this workload",
			disk, s.cfg.MaxQueue, s.cfg.Policy.Name()))
		return false
	}
	return true
}

// kick lets disk d start its next action if it is free.
//
//simlint:hotpath
func (s *sim) kick(d int) {
	ds := s.disks[d]
	if ds.failed {
		return
	}
	if ds.disk.State() != diskmodel.Idle {
		return
	}
	now := s.eng.Now()
	if ds.pending != nil {
		target := *ds.pending
		switch {
		case target == ds.disk.Speed():
			ds.pending = nil
		case target == diskmodel.Low && ds.queueLen() > 0:
			// Work arrived after a spin-down was requested: cancel it.
			ds.pending = nil
		default:
			ds.pending = nil
			if s.trc != nil {
				if target == diskmodel.Low {
					if !s.recordSpinDown(d, now) {
						// Replay override: this spin-down never happens.
						break
					}
				} else {
					s.recordSpinUp(d, now)
				}
				ds.transStart = now
			}
			dur := ds.disk.BeginTransition(now, target)
			s.met.transitions.Inc()
			s.schedule(dur, eventRecord{Kind: evTransition, Disk: d})
			return
		}
	}
	if ds.queueLen() > 0 {
		o := ds.pop()
		var dur float64
		if seek := s.cfg.DiskParams.Seek; seek.Enabled() {
			dur = ds.disk.BeginServiceAt(now, o.sizeMB, seek.CylinderOf(o.fileID))
		} else {
			dur = ds.disk.BeginService(now, o.sizeMB)
		}
		if s.trc != nil {
			o.waitSpin = ds.transBusy - o.spinBase
			o.svcDur = dur
		}
		s.schedule(dur, eventRecord{Kind: evService, Disk: d, Gen: ds.gen, Op: &o})
		return
	}
	// Disk idle with empty queue: arm idle timer.
	s.armIdleTimer(d)
}

// complete retires a finished op: response-time accounting, policy
// callback, and continuation dispatch. One call per completed request.
//
//simlint:hotpath
func (s *sim) complete(d int, o op, now float64) {
	if s.trc != nil && o.kind != opBackground {
		s.attributeCompletion(d, &o, now)
	}
	switch o.kind {
	case opUser:
		resp := now - o.arrival
		s.respStream.Add(resp)
		s.respHist.Add(resp)
		s.met.completions.Inc()
		s.met.respLatency.Observe(resp)
		s.live.Tick(now, s.eng.Fired(), s.respStream.N(), uint64(s.nextReq))
		s.eng.EmitSpan(labelRequestSpan, o.arrival, now)
		ctx := s.ctx
		s.setHook(hookRequestComplete)
		s.cfg.Policy.OnRequestComplete(ctx, o.fileID, d)
		s.endHook()
	case opChunk:
		o.stripe.remaining--
		if o.stripe.lost {
			// A sibling chunk was lost to a failure; when the last
			// outstanding chunk resolves, the whole request counts lost.
			if o.stripe.remaining == 0 {
				s.flt.lostRequests++
				if o.stripe.done != nil {
					s.hostDone(o.stripe.done, now, true)
				}
			}
			break
		}
		if o.stripe.remaining == 0 {
			// The striped request completes with its slowest chunk.
			resp := now - o.stripe.arrival
			s.respStream.Add(resp)
			s.respHist.Add(resp)
			s.met.completions.Inc()
			s.met.respLatency.Observe(resp)
			s.live.Tick(now, s.eng.Fired(), s.respStream.N(), uint64(s.nextReq))
			s.eng.EmitSpan(labelRequestSpan, o.stripe.arrival, now)
			if s.trc != nil {
				s.attributeStripe(&o, now)
			}
			ctx := s.ctx
			s.setHook(hookRequestComplete)
			s.cfg.Policy.OnRequestComplete(ctx, o.stripe.fileID, d)
			s.endHook()
			if o.stripe.done != nil {
				s.runCont(o.stripe.done, now)
			}
		}
	case opBackground:
		s.backgroundOps++
	}
	if o.done != nil {
		s.runCont(o.done, now)
	}
}

// arrivalsRemain reports whether more foreground arrivals can still occur:
// undelivered trace requests for a standalone run, or whatever the host
// knows about the fleet's arrival stream for a member.
func (s *sim) arrivalsRemain() bool {
	if s.host != nil {
		return s.host.ArrivalsRemain()
	}
	return s.nextReq < len(s.cfg.Trace.Requests)
}

// workRemains reports whether the simulation can still produce activity:
// undelivered arrivals or queued/in-service operations. Idle timers are
// pointless (and would keep the event loop alive forever) once it is false.
// A fleet member defers to its host, which sees the whole fleet: another
// array's retry may yet land here, so local quiescence proves nothing.
func (s *sim) workRemains() bool {
	if s.host != nil {
		return s.host.FleetWorkRemains()
	}
	if s.arrivalsRemain() {
		return true
	}
	return s.busyDisks() > 0
}

func (s *sim) armIdleTimer(d int) {
	ds := s.disks[d]
	if ds.idleTimeout <= 0 || ds.idleArmed || ds.failed {
		return
	}
	if !s.workRemains() {
		return
	}
	if ds.disk.State() != diskmodel.Idle || ds.queueLen() > 0 {
		return
	}
	ds.idleArmed = true
	timeout := ds.idleTimeout
	deadline := s.eng.Now() + timeout
	s.schedule(timeout, eventRecord{Kind: evIdleArm, Disk: d, Deadline: deadline, Timeout: timeout})
}

func (s *sim) rearmIdleTimer(d int, delay float64) {
	ds := s.disks[d]
	if ds.idleArmed || !s.workRemains() {
		return
	}
	ds.idleArmed = true
	s.schedule(delay, eventRecord{Kind: evIdleRearm, Disk: d, Timeout: ds.idleTimeout})
}

func (s *sim) onEpoch(e *des.Engine) {
	if s.failure != nil {
		return
	}
	// Sample the per-disk time series at every epoch boundary, including
	// the post-trace one below: sampling is read-only and schedules
	// nothing, so it cannot perturb the run.
	if s.cfg.Telemetry != nil {
		s.sampleDisks(e.Now(), s.epochs)
		s.cfg.Telemetry.Progress.Tick(e.Now(), e.Fired())
	}
	if s.trc != nil {
		s.snapEpochAttribution(s.epochs)
	}
	// Epochs exist to adapt placement to the live request stream; once
	// the trace is exhausted there is nothing to adapt to, and post-trace
	// migrations would only stretch the run and dilute utilization.
	if !s.arrivalsRemain() {
		return
	}
	s.epochs++
	s.met.epochs.Inc()
	s.migsThisEpoch = 0
	ctx := s.ctx
	s.setHook(hookEpoch)
	s.cfg.Policy.OnEpoch(ctx)
	s.endHook()
	// Fresh popularity window per epoch (the paper's FPT records counts
	// "during the current epoch").
	s.counts = make(map[int]int)
	s.schedule(s.cfg.EpochSeconds, eventRecord{Kind: evEpoch})
}

func (s *sim) busyDisks() int {
	n := 0
	for _, ds := range s.disks {
		if ds.disk.State() != diskmodel.Idle || ds.queueLen() > 0 {
			n++
		}
	}
	return n
}

func (s *sim) collect() (*Result, error) {
	now := s.eng.Now()
	if last := len(s.cfg.Trace.Requests); last > 0 {
		// Account at least the full trace span even if the last
		// completions landed earlier (possible when the tail of the
		// trace hits an already-warm disk).
		if t := s.cfg.Trace.Requests[last-1].Arrival; t > now {
			now = t
		}
	}
	// Close the time series with a run-final sample (epoch index one past
	// the last boundary) before the mutating result accessors below commit
	// their accruals.
	if s.cfg.Telemetry != nil {
		s.sampleDisks(now, s.epochs+1)
	}
	res := &Result{
		PolicyName:    s.cfg.Policy.Name(),
		Disks:         len(s.disks),
		Duration:      now,
		Requests:      int(s.respStream.N()),
		MeanResponse:  s.respStream.Mean(),
		MaxResponse:   s.respStream.Max(),
		Migrations:    s.migrations,
		BackgroundOps: s.backgroundOps,
		Epochs:        s.epochs,
		EventsFired:   s.eng.Fired(),
		Timeline:      s.timeline,
	}
	if s.respHist.N() > 0 {
		p50, err := s.respHist.Quantile(0.50)
		if err != nil {
			return nil, err
		}
		p95, err := s.respHist.Quantile(0.95)
		if err != nil {
			return nil, err
		}
		p99, err := s.respHist.Quantile(0.99)
		if err != nil {
			return nil, err
		}
		p999, err := s.respHist.Quantile(0.999)
		if err != nil {
			return nil, err
		}
		res.P50Response, res.P95Response, res.P99Response, res.P999Response = p50, p95, p99, p999
	}
	if s.trc != nil {
		res.Attribution = s.attributionReport()
	}

	factors := make([]reliability.Factors, len(s.disks))
	res.PerDisk = make([]DiskResult, len(s.disks))
	worst := math.Inf(-1)
	for i, ds := range s.disks {
		util := ds.disk.Utilization(now)
		meanTemp := ds.temp.MeanTemp(now)
		perDay := ds.disk.TransitionRatePerDay(now)
		factors[i] = reliability.Factors{
			TempC:             meanTemp,
			Utilization:       util,
			TransitionsPerDay: perDay,
		}
		afr, err := s.cfg.Press.DiskAFR(factors[i])
		if err != nil {
			return nil, fmt.Errorf("array: disk %d AFR: %w", i, err)
		}
		res.PerDisk[i] = DiskResult{
			ID:                i,
			EnergyJ:           ds.disk.EnergyJ(now),
			Utilization:       util,
			Transitions:       ds.disk.Transitions(),
			TransitionsPerDay: perDay,
			MeanTempC:         meanTemp,
			BusyTime:          ds.disk.BusyTime(now),
			RequestsServed:    ds.disk.Requests(),
			BytesServedMB:     ds.disk.BytesServedMB(),
			AFR:               afr,
			FinalSpeed:        ds.disk.Speed(),
		}
		res.EnergyJ += res.PerDisk[i].EnergyJ
		if afr > worst {
			worst = afr
			res.WorstDisk = i
		}
	}
	res.ArrayAFR = worst
	if f := s.flt; f != nil {
		res.DiskFailures = f.failures
		res.DiskRepairs = f.repairs
		res.SparesUsed = f.sparesUsed
		res.DataLossEvents = f.dataLoss
		if f.firstLoss >= 0 {
			res.MTTDLHours = f.firstLoss / 3600
		}
		res.LostRequests = f.lostRequests
		res.DegradedRequests = f.degraded
		res.ReassignedFiles = f.reassigned
		res.RebuildMB = f.rebuildMB
		res.RebuildEnergyJ = f.rebuildEnergyJ
		res.FailureLog = f.log
		res.ExposureHours = now / 3600 * f.cfg.Acceleration
		if f.cfg.LSEActive() {
			res.LSEModeled = true
			res.LSEErrors = f.inj.LSECount()
			res.LSECleared = f.lseCleared
			res.LSEPending = f.inj.PendingLSETotal()
			res.Scrubs = f.scrubs
			res.ScrubMB = f.scrubMB
		}
		if r := f.raid; r != nil {
			res.RAIDLevel = string(r.cfg.Level)
			res.RAIDGroups = len(r.groups)
			res.RAIDDataLossEvents = r.losses
			res.RAIDLSELosses = r.lseLosses
			res.RAIDOverlapLosses = r.overlapLosses
			if r.firstLoss >= 0 {
				res.RAIDFirstLossHours = r.firstLoss / 3600
			}
			if r.losses > 0 {
				res.MTTDLEstHours = stats.MTTDL{
					ExposureHours: res.ExposureHours,
					Events:        r.losses,
				}.Hours()
			}
			res.RAIDLossLog = r.log
		}
	}
	return res, nil
}

package array

// Fleet membership: a Member is one array simulation mounted on a SHARED
// des.Engine and driven by a cluster router instead of its own trace. The
// member keeps every internal mechanism of a standalone run — policies,
// epochs, idle timers, fault injection, scrubbing, RAID — but three seams
// change:
//
//   - Arrivals come from Member.Submit (called by the router's own arrival
//     events) instead of evArrival trace replay; each submitted request
//     carries a contFleet continuation that reports its resolution back
//     through the Host interface.
//   - Liveness questions ("does work remain?") defer to the Host, which sees
//     the whole fleet: a locally idle member must keep its fault-tick chain
//     alive while another array's retry may still land here.
//   - The engine is run by the cluster, exactly once, after every member is
//     constructed; NewMember therefore performs Run's entire setup but stops
//     short of RunGuarded.
//
// Determinism note: construction order is the scheduling order. The cluster
// constructs members in index order, so member i's initial events (idle
// timers, epoch, sampler, fault tick) occupy lower engine sequence numbers
// than member i+1's, and a fleet of one reproduces the standalone
// simulator's event sequence exactly (the firstArrival callback slots the
// router's arrival chain where Run schedules its first trace arrival).

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"repro/internal/des"
	"repro/internal/diskmodel"
	"repro/internal/reliability"
	"repro/internal/thermal"
)

// Host is the cluster-side surface a fleet member reports into. The router
// implements it; members never call each other.
type Host interface {
	// ArrivalsRemain reports whether the fleet's arrival stream can still
	// produce requests (epochs and scrub chains die when it goes false).
	ArrivalsRemain() bool
	// FleetWorkRemains reports whether any fleet activity is still possible:
	// undelivered arrivals, in-flight requests anywhere, or pending retries.
	FleetWorkRemains() bool
	// RequestDone reports the resolution of one submitted attempt. lost
	// means the data was unrecoverable on this array (failure with no spare
	// and no reassignment) — the router may fail over to a replica.
	RequestDone(reqID uint64, attempt int, now float64, lost bool)
}

// Member is one array of a fleet, sharing its engine with the cluster.
type Member struct {
	s *sim
}

// NewMember builds a fleet member on the shared engine eng. cfg.Trace must
// carry the member's file set with an empty request list (arrivals come from
// Submit), and cfg.Checkpoint must be nil (the cluster owns the checkpoint
// cadence and calls CheckpointState from its own tick). firstArrival, when
// non-nil, runs at the exact point Run would schedule its first trace
// arrival — after idle timers are armed, before the epoch event — so the
// router can slot its arrival chain into the same sequence position.
func NewMember(cfg Config, eng *des.Engine, host Host, firstArrival func() error) (*Member, error) {
	if eng == nil || host == nil {
		return nil, errors.New("array: member needs a shared engine and a host")
	}
	cfg.setDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Trace.Requests) != 0 {
		return nil, errors.New("array: member trace must have no requests; arrivals come from Submit")
	}
	if cfg.Checkpoint != nil {
		return nil, errors.New("array: member checkpointing is driven by the cluster, not Config.Checkpoint")
	}
	s, err := newSimOn(cfg, eng, host)
	if err != nil {
		return nil, err
	}
	for i := range s.disks {
		s.disks[i].disk = diskmodel.New(i, cfg.DiskParams, diskmodel.High)
		s.disks[i].temp = thermal.NewTracker(cfg.Thermal, diskmodel.High)
	}

	ctx := s.ctx
	if err := cfg.Policy.Init(ctx); err != nil {
		return nil, fmt.Errorf("array: policy init: %w", err)
	}
	ids := make([]int, 0, len(s.files))
	for id := range s.files {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if _, ok := s.place[id]; !ok {
			return nil, fmt.Errorf("array: policy %q left file %d unplaced", cfg.Policy.Name(), id)
		}
	}
	// Init-time transitions are free, exactly as in Run.
	for i, ds := range s.disks {
		if ds.pending != nil && *ds.pending != ds.disk.Speed() {
			target := *ds.pending
			ds.disk = diskmodel.New(i, cfg.DiskParams, target)
			ds.temp = thermal.NewTracker(cfg.Thermal, target)
		}
		ds.pending = nil
	}
	for i := range s.disks {
		s.armIdleTimer(i)
	}
	if firstArrival != nil {
		if err := firstArrival(); err != nil {
			return nil, err
		}
	}
	if cfg.EpochSeconds > 0 {
		s.schedule(cfg.EpochSeconds, eventRecord{Kind: evEpoch})
	}
	s.installSampler()
	if err := s.installFaults(); err != nil {
		return nil, err
	}
	return &Member{s: s}, nil
}

// Submit injects one request attempt, mirroring the body of onArrival.
// arrival is the latency reference point for the member's own response
// statistics: the fleet arrival time for first attempts, the retry/hedge
// issue time for later ones.
func (m *Member) Submit(reqID uint64, attempt, fileID int, arrival float64) {
	s := m.s
	if s.failure != nil {
		return
	}
	f, ok := s.files[fileID]
	if !ok {
		s.fail(fmt.Errorf("array: request for unknown file %d", fileID))
		return
	}
	s.counts[fileID]++
	s.met.arrivals.Inc()
	ctx := s.ctx
	s.setHook(hookArrival)
	defer s.endHook()

	done := &cont{kind: contFleet, reqID: reqID, attempt: attempt}
	if sp, ok := s.cfg.Policy.(StripePolicy); ok {
		targets := sp.StripeTargets(ctx, fileID)
		if len(targets) >= 2 {
			s.dispatchStripedDone(fileID, f.SizeMB, arrival, targets, done)
			return
		}
	}
	target := s.cfg.Policy.TargetDisk(ctx, fileID)
	if target < 0 || target >= len(s.disks) {
		s.fail(fmt.Errorf("array: policy %q targeted invalid disk %d", s.cfg.Policy.Name(), target))
		return
	}
	s.enqueue(target, op{kind: opUser, fileID: fileID, sizeMB: f.SizeMB, arrival: arrival, done: done})
}

// Err returns the member's sticky failure, if any (queue overload, policy
// contract violation). The cluster aborts the whole fleet run on it.
func (m *Member) Err() error { return m.s.failure }

// Collect computes the member's Result after the shared engine has drained.
func (m *Member) Collect() (*Result, error) {
	if m.s.failure != nil {
		return nil, m.s.failure
	}
	return m.s.collect()
}

// Busy reports whether any disk is non-idle or has queued work.
func (m *Member) Busy() bool { return m.s.busyDisks() > 0 }

// Backlog is the total foreground queue depth across disks — the router's
// saturation signal.
func (m *Member) Backlog() int {
	n := 0
	for _, ds := range m.s.disks {
		n += ds.fg.len()
	}
	return n
}

// Rebuilding reports whether any disk is streaming rebuild traffic.
func (m *Member) Rebuilding() bool {
	for _, ds := range m.s.disks {
		if ds.rebuilding {
			return true
		}
	}
	return false
}

// FailedDisks counts disks currently down.
func (m *Member) FailedDisks() int {
	n := 0
	for _, ds := range m.s.disks {
		if ds.failed {
			n++
		}
	}
	return n
}

// DataLoss reports whether the member has declared unrecoverable data loss
// (spare-pool exhaustion or a defeated RAID group) — the router's ejection
// signal.
func (m *Member) DataLoss() bool {
	f := m.s.flt
	if f == nil {
		return false
	}
	if f.dataLoss > 0 {
		return true
	}
	return f.raid != nil && f.raid.losses > 0
}

// PeekWorstAFR returns the highest current per-disk PRESS AFR (percent)
// without mutating any accumulator, for AFR-aware routing. It returns 0 on a
// model error (routing then treats the member as nominal).
func (m *Member) PeekWorstAFR() float64 {
	s := m.s
	now := s.eng.Now()
	worst := 0.0
	for _, ds := range s.disks {
		snap := ds.disk.Snapshot(now)
		afr := s.cfg.Press.SnapshotAFR(reliability.Factors{
			TempC:             ds.temp.PeekMeanTemp(now),
			Utilization:       snap.Utilization,
			TransitionsPerDay: snap.TransitionRatePerDay,
		})
		if afr > worst {
			worst = afr
		}
	}
	return worst
}

// ForceSpeedAll requests a transition of every live disk to target with the
// given decision cause — the cluster's domain-shock lever: Low on outage
// ("emergency spin-down"), High on restore ("re-heat"). Requests follow the
// normal transition discipline (they apply when a disk goes idle, and a
// spin-down cancels if work is queued), so a busy disk rides the shock out
// and transitions afterwards.
func (m *Member) ForceSpeedAll(target diskmodel.Speed, cause string) {
	s := m.s
	if s.failure != nil {
		return
	}
	ctx := s.ctx
	s.setHook(hookDomainShock)
	defer s.endHook()
	for d := range s.disks {
		if s.disks[d].failed {
			continue
		}
		ctx.SetDecisionCause(cause)
		ctx.RequestTransition(d, target)
	}
}

// CheckpointState serializes the member's complete state (the same payload a
// standalone checkpoint carries, with foreign shared-engine events skipped
// and per-event sequence numbers recorded for the cluster's merge).
func (m *Member) CheckpointState() ([]byte, error) {
	if _, ok := m.s.cfg.Policy.(CheckpointablePolicy); !ok {
		return nil, fmt.Errorf("array: policy %q does not support checkpointing", m.s.cfg.Policy.Name())
	}
	if m.s.opaqueLive > 0 {
		return nil, errOpaqueLive
	}
	st, err := m.s.buildState()
	if err != nil {
		return nil, err
	}
	return json.Marshal(st)
}

// ErrOpaqueLive reports a checkpoint attempt while a non-serializable policy
// callback is in flight; the cluster skips the tick and retries on the next.
var errOpaqueLive = errors.New("array: opaque continuation in flight; checkpoint skipped")

// IsOpaqueLive reports whether err is the skippable mid-callback checkpoint
// condition.
func IsOpaqueLive(err error) bool { return errors.Is(err, errOpaqueLive) }

// ResumeMember rebuilds a member from a CheckpointState payload. The decoded
// pending events are returned WITHOUT being scheduled: the cluster merges
// them with the router's own saved events by Seq and schedules the union in
// global order between the shared engine's BeginRestore and FinishRestore.
func ResumeMember(cfg Config, eng *des.Engine, host Host, stateJSON []byte) (*Member, []RestoredEvent, error) {
	if eng == nil || host == nil {
		return nil, nil, errors.New("array: member needs a shared engine and a host")
	}
	cfg.setDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if len(cfg.Trace.Requests) != 0 {
		return nil, nil, errors.New("array: member trace must have no requests; arrivals come from Submit")
	}
	if cfg.Checkpoint != nil {
		return nil, nil, errors.New("array: member checkpointing is driven by the cluster, not Config.Checkpoint")
	}
	var st simState
	if err := json.Unmarshal(stateJSON, &st); err != nil {
		return nil, nil, fmt.Errorf("array: resume member: parse state: %w", err)
	}
	s, evs, err := restoreSim(cfg, &st, eng, host)
	if err != nil {
		return nil, nil, err
	}
	return &Member{s: s}, evs, nil
}

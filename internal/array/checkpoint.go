package array

// Checkpoint/restore for the array simulator. A snapshot captures the
// complete simulation state at one quiescent instant between events: the DES
// clock and pending event queue (as the serializable records of events.go),
// every disk's raw energy/thermal accumulators and scheduler queues, the
// policy's saved state, the fault injector's hazard state and RNG position,
// the response statistics, and the telemetry counters. Raw accumulator
// fields are serialized verbatim — never through the mutating accessors —
// so the floating-point summation order after a resume is identical to the
// uninterrupted run's, making the two bit-identical, not merely close.

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/des"
	"repro/internal/diskmodel"
	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/thermal"
)

// CheckpointSpec configures periodic snapshotting for one run.
type CheckpointSpec struct {
	// EverySimSeconds is the snapshot period in virtual seconds. The
	// checkpoint tick is a DES event, so runs being compared bit-for-bit
	// must share the same period (or both disable it).
	EverySimSeconds float64
	// Path is the snapshot file, rewritten atomically on every tick.
	Path string
	// Tool and ConfigDigest identify the producing run in the envelope;
	// Resume refuses a snapshot whose digest does not match its config.
	Tool         string
	ConfigDigest string
	// Sink, when non-nil, receives the encoded envelope instead of Path —
	// the in-process hook the kill/resume equivalence test uses.
	Sink func(data []byte) error
}

// validateCheckpointSpec rejects unusable checkpoint configurations up
// front, including a policy that cannot be serialized.
func validateCheckpointSpec(cfg *Config) error {
	spec := cfg.Checkpoint
	if spec == nil {
		return nil
	}
	if spec.EverySimSeconds <= 0 || math.IsNaN(spec.EverySimSeconds) {
		return fmt.Errorf("array: checkpoint interval %v must be positive", spec.EverySimSeconds)
	}
	if spec.Path == "" && spec.Sink == nil {
		return fmt.Errorf("array: checkpoint needs a path or a sink")
	}
	if _, ok := cfg.Policy.(CheckpointablePolicy); !ok {
		return fmt.Errorf("array: policy %q does not support checkpointing", cfg.Policy.Name())
	}
	return nil
}

// installCheckpoints arms the periodic checkpoint tick.
func (s *sim) installCheckpoints() {
	spec := s.cfg.Checkpoint
	if spec == nil || spec.EverySimSeconds <= 0 {
		return
	}
	s.schedule(spec.EverySimSeconds, eventRecord{Kind: evCheckpoint})
}

// onCheckpointTick snapshots the simulation. The next tick is scheduled
// BEFORE the snapshot is taken so the saved pending set includes it and the
// resumed run keeps checkpointing on the same cadence as the original.
func (s *sim) onCheckpointTick(e *des.Engine) {
	if s.failure != nil || s.cfg.Checkpoint == nil {
		return
	}
	if s.workRemains() {
		s.schedule(s.cfg.Checkpoint.EverySimSeconds, eventRecord{Kind: evCheckpoint})
	}
	if s.opaqueLive > 0 {
		// A non-serializable policy callback is in flight; skip this
		// snapshot and try again next tick. The previous snapshot stays
		// valid on disk.
		return
	}
	if err := s.writeCheckpoint(); err != nil {
		s.fail(fmt.Errorf("array: checkpoint: %w", err))
	}
}

// --- wire schema ---

// contState is the serializable form of a cont. fn is the opaque-callback
// case: it cannot be serialized, and checkpoint writes are skipped while any
// opaque continuation is live.
//
//simlint:checkpoint-for cont ignore=fn
type contState struct {
	Kind        string  `json:"kind"`
	FileID      int     `json:"file_id,omitempty"`
	To          int     `json:"to,omitempty"`
	Disk        int     `json:"disk,omitempty"`
	SizeMB      float64 `json:"size_mb,omitempty"`
	NextIssue   float64 `json:"next_issue,omitempty"`
	RemainingMB float64 `json:"remaining_mb,omitempty"`
	ReqID       uint64  `json:"req_id,omitempty"`
	Attempt     int     `json:"attempt,omitempty"`
}

// encodeCont serializes a continuation, rejecting the opaque kind.
func encodeCont(c *cont) (*contState, error) {
	if c == nil {
		return nil, nil
	}
	if c.kind == contOpaque {
		return nil, fmt.Errorf("array: opaque continuation cannot be checkpointed")
	}
	return &contState{
		Kind:        c.kind,
		FileID:      c.fileID,
		To:          c.to,
		Disk:        c.disk,
		SizeMB:      c.sizeMB,
		NextIssue:   c.nextIssue,
		RemainingMB: c.remainingMB,
		ReqID:       c.reqID,
		Attempt:     c.attempt,
	}, nil
}

// opState is the serializable form of an op. Stripe is an index into
// simState.Stripes (-1 when the op is not a chunk), so chunks of one striped
// request share their parent across the restore exactly as they shared the
// pointer before it.
//
//simlint:checkpoint-for op
type opState struct {
	Kind     int        `json:"kind"`
	FileID   int        `json:"file_id,omitempty"`
	SizeMB   float64    `json:"size_mb,omitempty"`
	Arrival  float64    `json:"arrival,omitempty"`
	Stripe   int        `json:"stripe"`
	Mig      bool       `json:"mig,omitempty"`
	Rerouted bool       `json:"rerouted,omitempty"`
	Done     *contState `json:"done,omitempty"`
	EnqT     float64    `json:"enq_t,omitempty"`
	SpinBase float64    `json:"spin_base,omitempty"`
	WaitSpin float64    `json:"wait_spin,omitempty"`
	SvcDur   float64    `json:"svc_dur,omitempty"`
}

// stripeState is the serializable form of a stripeJob.
//
//simlint:checkpoint-for stripeJob
type stripeState struct {
	FileID    int        `json:"file_id"`
	Arrival   float64    `json:"arrival"`
	Remaining int        `json:"remaining"`
	Lost      bool       `json:"lost,omitempty"`
	Done      *contState `json:"done,omitempty"`
}

// savedEvent is one pending DES event: its absolute fire time plus the
// eventRecord payload. Events are saved in ascending original-sequence
// order; restoring re-schedules them in that order so same-instant FIFO
// ties break identically. Seq carries the engine's original sequence number
// so a cluster restore can merge-sort the pending sets of several owners
// (router + members) of one shared engine back into the global order.
//
//simlint:checkpoint-for eventRecord
type savedEvent struct {
	Time        float64  `json:"time"`
	Seq         uint64   `json:"seq,omitempty"`
	Kind        string   `json:"kind"`
	Disk        int      `json:"disk,omitempty"`
	Gen         uint64   `json:"gen,omitempty"`
	Deadline    float64  `json:"deadline,omitempty"`
	Timeout     float64  `json:"timeout,omitempty"`
	LastEnergy  float64  `json:"last_energy,omitempty"`
	RemainingMB float64  `json:"remaining_mb,omitempty"`
	FileID      int      `json:"file_id,omitempty"`
	From        int      `json:"from,omitempty"`
	To          int      `json:"to,omitempty"`
	SizeMB      float64  `json:"size_mb,omitempty"`
	Op          *opState `json:"op,omitempty"`
}

// diskCkptState is the serializable form of a diskState.
//
//simlint:checkpoint-for diskState
type diskCkptState struct {
	Disk          diskmodel.Checkpoint `json:"disk"`
	Temp          thermal.Checkpoint   `json:"temp"`
	Pending       *diskmodel.Speed     `json:"pending,omitempty"`
	IdleTimeout   float64              `json:"idle_timeout,omitempty"`
	IdleArmed     bool                 `json:"idle_armed,omitempty"`
	Failed        bool                 `json:"failed,omitempty"`
	SpareAssigned bool                 `json:"spare_assigned,omitempty"`
	Rebuilding    bool                 `json:"rebuilding,omitempty"`
	RebuildMBps   float64              `json:"rebuild_mbps,omitempty"`
	Gen           uint64               `json:"gen,omitempty"`
	TransBusy     float64              `json:"trans_busy,omitempty"`
	TransStart    float64              `json:"trans_start,omitempty"`
	FG            []opState            `json:"fg,omitempty"`
	BG            []opState            `json:"bg,omitempty"`
}

// faultCkptState is the serializable form of a faultState. cfg is
// configuration re-supplied on restore; inFailover is true only inside a
// policy failure hook, and checkpoints are never written mid-hook.
//
//simlint:checkpoint-for faultState ignore=cfg,inFailover alias=inj:Injector
type faultCkptState struct {
	Injector       faults.Checkpoint `json:"injector"`
	Spares         int               `json:"spares"`
	SparesUsed     int               `json:"spares_used"`
	Failures       int               `json:"failures"`
	Repairs        int               `json:"repairs"`
	DataLoss       int               `json:"data_loss"`
	FirstLoss      float64           `json:"first_loss"`
	LostRequests   int               `json:"lost_requests"`
	Degraded       int               `json:"degraded"`
	Reassigned     int               `json:"reassigned"`
	RebuildMB      float64           `json:"rebuild_mb"`
	RebuildEnergyJ float64           `json:"rebuild_energy_j"`
	LSECleared     int               `json:"lse_cleared,omitempty"`
	Scrubs         int               `json:"scrubs,omitempty"`
	ScrubMB        float64           `json:"scrub_mb,omitempty"`
	RAID           *raidCkptState    `json:"raid,omitempty"`
	Log            []FailureEvent    `json:"log,omitempty"`
}

// raidCkptState is the serializable form of a raidState. The group layout
// (cfg, groups, groupOf, tol) is derived from the configuration on restore;
// only the observed counters travel.
//
//simlint:checkpoint-for raidState ignore=cfg,groups,groupOf,tol
type raidCkptState struct {
	Losses        int             `json:"losses"`
	LSELosses     int             `json:"lse_losses,omitempty"`
	OverlapLosses int             `json:"overlap_losses,omitempty"`
	FirstLoss     float64         `json:"first_loss"`
	Log           []RAIDLossEvent `json:"log,omitempty"`
}

// simState is the checkpoint payload: the complete mutable state of a run.
// The ignored fields are re-supplied or rebuilt on restore: cfg and files
// come back from the caller's CheckpointSpec, eng is reconstructed and its
// state carried as Clock/Seq/Fired, opaqueLive is zero by construction (a
// snapshot is never written while an opaque continuation is live), live is
// observation-only (re-cached from cfg.Telemetry on restore), failure
// aborts the run before a checkpoint could be taken, and ctx/dispatchH are
// stateless singletons rebuilt by newSimOn (ctx carries only the sim
// pointer; dispatchH re-reads the restored events table by FiringID).
//
//simlint:checkpoint-for sim ignore=cfg,eng,files,opaqueLive,failure,live,host,ctx,dispatchH alias=met:Metrics,flt:Faults,trc:Trace
type simState struct {
	Clock         float64                     `json:"clock"`
	Seq           uint64                      `json:"seq"`
	Fired         uint64                      `json:"fired"`
	PolicyName    string                      `json:"policy_name"`
	NextReq       int                         `json:"next_req"`
	Migrations    int                         `json:"migrations"`
	BackgroundOps int                         `json:"background_ops"`
	Epochs        int                         `json:"epochs"`
	MigsThisEpoch int                         `json:"migs_this_epoch"`
	Place         map[int]int                 `json:"place"`
	Counts        map[int]int                 `json:"counts,omitempty"`
	Migrating     []int                       `json:"migrating,omitempty"`
	RespStream    stats.StreamState           `json:"resp_stream"`
	RespHist      stats.LatencyHistogramState `json:"resp_hist"`
	Disks         []diskCkptState             `json:"disks"`
	Stripes       []stripeState               `json:"stripes,omitempty"`
	Timeline      []Sample                    `json:"timeline,omitempty"`
	Policy        json.RawMessage             `json:"policy"`
	Faults        *faultCkptState             `json:"faults,omitempty"`
	Events        []savedEvent                `json:"events"`
	Metrics       *telemetry.RegistryState    `json:"metrics,omitempty"`
	Trace         *traceCkptState             `json:"trace,omitempty"`
}

// stripeTable assigns dense IDs to stripeJob pointers in the deterministic
// order they are first encountered during serialization.
type stripeTable struct {
	ids  map[*stripeJob]int
	list []stripeState
	err  error // first continuation-encoding failure, surfaced by buildState
}

func (t *stripeTable) id(j *stripeJob) int {
	if j == nil {
		return -1
	}
	if id, ok := t.ids[j]; ok {
		return id
	}
	id := len(t.list)
	t.ids[j] = id
	done, err := encodeCont(j.done)
	if err != nil && t.err == nil {
		t.err = err
	}
	t.list = append(t.list, stripeState{
		FileID: j.fileID, Arrival: j.arrival, Remaining: j.remaining, Lost: j.lost, Done: done,
	})
	return id
}

func (t *stripeTable) encodeOp(o op) (opState, error) {
	st := opState{
		Kind:     int(o.kind),
		FileID:   o.fileID,
		SizeMB:   o.sizeMB,
		Arrival:  o.arrival,
		Stripe:   t.id(o.stripe),
		Mig:      o.mig,
		Rerouted: o.rerouted,
		EnqT:     o.enqT,
		SpinBase: o.spinBase,
		WaitSpin: o.waitSpin,
		SvcDur:   o.svcDur,
	}
	done, err := encodeCont(o.done)
	if err != nil {
		return opState{}, err
	}
	st.Done = done
	return st, nil
}

// items returns the queue's live entries in FIFO order (read-only view).
func (q *fifo) items() []op { return q.buf[q.head:] }

// buildState serializes the complete simulation state.
func (s *sim) buildState() (*simState, error) {
	st := &simState{
		Clock:         s.eng.Now(),
		Seq:           s.eng.Seq(),
		Fired:         s.eng.Fired(),
		PolicyName:    s.cfg.Policy.Name(),
		NextReq:       s.nextReq,
		Migrations:    s.migrations,
		BackgroundOps: s.backgroundOps,
		Epochs:        s.epochs,
		MigsThisEpoch: s.migsThisEpoch,
		Place:         s.place,
		Counts:        s.counts,
		RespStream:    s.respStream.State(),
		RespHist:      s.respHist.State(),
		Timeline:      s.timeline,
	}
	for id := range s.migrating {
		st.Migrating = append(st.Migrating, id)
	}
	sort.Ints(st.Migrating)

	table := &stripeTable{ids: make(map[*stripeJob]int)}
	st.Disks = make([]diskCkptState, len(s.disks))
	for i, ds := range s.disks {
		dc := diskCkptState{
			Disk:          ds.disk.Checkpoint(),
			Temp:          ds.temp.Checkpoint(),
			IdleTimeout:   ds.idleTimeout,
			IdleArmed:     ds.idleArmed,
			Failed:        ds.failed,
			SpareAssigned: ds.spareAssigned,
			Rebuilding:    ds.rebuilding,
			RebuildMBps:   ds.rebuildMBps,
			Gen:           ds.gen,
			TransBusy:     ds.transBusy,
			TransStart:    ds.transStart,
		}
		if ds.pending != nil {
			p := *ds.pending
			dc.Pending = &p
		}
		for _, o := range ds.fg.items() {
			os, err := table.encodeOp(o)
			if err != nil {
				return nil, err
			}
			dc.FG = append(dc.FG, os)
		}
		for _, o := range ds.bg.items() {
			os, err := table.encodeOp(o)
			if err != nil {
				return nil, err
			}
			dc.BG = append(dc.BG, os)
		}
		st.Disks[i] = dc
	}

	for _, id := range s.eng.PendingIDs() {
		rec, ok := s.events[id]
		if !ok {
			if s.host != nil {
				// Shared engine: this pending event belongs to another owner
				// (the router or a sibling member), which saves it itself.
				continue
			}
			return nil, fmt.Errorf("array: pending event %d has no record; cannot checkpoint", id)
		}
		t, _ := s.eng.EventTime(id)
		se := savedEvent{
			Time:        t,
			Seq:         uint64(id),
			Kind:        rec.Kind,
			Disk:        rec.Disk,
			Gen:         rec.Gen,
			Deadline:    rec.Deadline,
			Timeout:     rec.Timeout,
			LastEnergy:  rec.LastEnergy,
			RemainingMB: rec.RemainingMB,
			FileID:      rec.FileID,
			From:        rec.From,
			To:          rec.To,
			SizeMB:      rec.SizeMB,
		}
		if rec.Op != nil {
			os, err := table.encodeOp(*rec.Op)
			if err != nil {
				return nil, err
			}
			se.Op = &os
		}
		st.Events = append(st.Events, se)
	}
	if table.err != nil {
		return nil, table.err
	}
	st.Stripes = table.list

	pol := s.cfg.Policy.(CheckpointablePolicy) // verified by validateCheckpointSpec
	data, err := pol.SaveState()
	if err != nil {
		return nil, fmt.Errorf("array: policy %q save: %w", pol.Name(), err)
	}
	st.Policy = data

	if f := s.flt; f != nil {
		st.Faults = &faultCkptState{
			Injector:       f.inj.Checkpoint(),
			Spares:         f.spares,
			SparesUsed:     f.sparesUsed,
			Failures:       f.failures,
			Repairs:        f.repairs,
			DataLoss:       f.dataLoss,
			FirstLoss:      f.firstLoss,
			LostRequests:   f.lostRequests,
			Degraded:       f.degraded,
			Reassigned:     f.reassigned,
			RebuildMB:      f.rebuildMB,
			RebuildEnergyJ: f.rebuildEnergyJ,
			LSECleared:     f.lseCleared,
			Scrubs:         f.scrubs,
			ScrubMB:        f.scrubMB,
			Log:            f.log,
		}
		if r := f.raid; r != nil {
			st.Faults.RAID = &raidCkptState{
				Losses:        r.losses,
				LSELosses:     r.lseLosses,
				OverlapLosses: r.overlapLosses,
				FirstLoss:     r.firstLoss,
				Log:           r.log,
			}
		}
	}
	if s.cfg.Telemetry != nil {
		st.Metrics = s.cfg.Telemetry.Metrics.State()
	}
	if s.trc != nil {
		st.Trace = s.trc.ckpt()
	}
	return st, nil
}

// writeCheckpoint snapshots the run into its envelope and commits it to the
// configured sink or path (atomically).
func (s *sim) writeCheckpoint() error {
	st, err := s.buildState()
	if err != nil {
		return err
	}
	data, err := json.Marshal(st)
	if err != nil {
		return err
	}
	spec := s.cfg.Checkpoint
	env := &checkpoint.Envelope{
		Version:      checkpoint.Version,
		Tool:         spec.Tool,
		ConfigDigest: spec.ConfigDigest,
		SimTime:      s.eng.Now(),
		EventsFired:  s.eng.Fired(),
		State:        data,
	}
	if spec.Sink != nil {
		enc, err := checkpoint.Encode(env)
		if err != nil {
			return err
		}
		return spec.Sink(enc)
	}
	return checkpoint.Write(spec.Path, env)
}

func decodeCont(cs *contState) (*cont, error) {
	if cs == nil {
		return nil, nil
	}
	switch cs.Kind {
	case contMigrateRead, contMigrateWrite, contRebuild, contScrub, contFleet:
	case contOpaque:
		return nil, fmt.Errorf("array: opaque continuation in checkpoint")
	default:
		return nil, fmt.Errorf("array: unknown continuation kind %q", cs.Kind)
	}
	return &cont{
		kind:        cs.Kind,
		fileID:      cs.FileID,
		to:          cs.To,
		disk:        cs.Disk,
		sizeMB:      cs.SizeMB,
		nextIssue:   cs.NextIssue,
		remainingMB: cs.RemainingMB,
		reqID:       cs.ReqID,
		attempt:     cs.Attempt,
	}, nil
}

// RestoredEvent is one pending DES event decoded from a checkpoint but not
// yet re-scheduled. Resume schedules its own events directly; a cluster
// restore first merge-sorts the RestoredEvents of every owner of the shared
// engine (router + members) by Seq, then schedules them in that global order
// so same-instant FIFO ties break exactly as in the original run.
type RestoredEvent struct {
	// Seq is the event's sequence number in the original engine.
	Seq uint64
	// Time is the event's absolute virtual fire time.
	Time float64

	s   *sim
	rec eventRecord
}

// Schedule re-schedules the event onto its sim's engine. Calls must happen
// between the engine's BeginRestore and FinishRestore, in ascending Seq
// order across all owners.
func (re RestoredEvent) Schedule() error { return re.s.at(re.Time, re.rec) }

// Resume reconstructs a simulation from a checkpoint payload produced under
// the same configuration and runs it to completion. The policy is NOT
// re-initialized (Init-time placement is only legal at t=0); it must be a
// freshly constructed instance with the same configuration, and its saved
// state is loaded into it.
func Resume(cfg Config, stateJSON []byte) (*Result, error) {
	cfg.setDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := validateCheckpointSpec(&cfg); err != nil {
		return nil, err
	}
	var st simState
	if err := json.Unmarshal(stateJSON, &st); err != nil {
		return nil, fmt.Errorf("array: resume: parse state: %w", err)
	}
	if cfg.Checkpoint == nil {
		// A snapshot with pending checkpoint ticks must keep the original
		// cadence, or EventsFired (and the whole event sequence) diverges
		// from the uninterrupted run the resume claims to equal.
		for _, se := range st.Events {
			if se.Kind == evCheckpoint {
				return nil, fmt.Errorf("array: resume: snapshot has pending checkpoint ticks; set Config.Checkpoint to the original interval")
			}
		}
	}
	s, evs, err := restoreSim(cfg, &st, nil, nil)
	if err != nil {
		return nil, err
	}
	if err := s.eng.BeginRestore(st.Clock); err != nil {
		return nil, fmt.Errorf("array: resume: %w", err)
	}
	for _, re := range evs {
		if err := re.Schedule(); err != nil {
			return nil, fmt.Errorf("array: resume: re-schedule %s@%v: %w", re.rec.Kind, re.Time, err)
		}
	}
	if err := s.eng.FinishRestore(st.Seq, st.Fired); err != nil {
		return nil, fmt.Errorf("array: resume: %w", err)
	}
	return s.finish()
}

// restoreSim rebuilds a sim from a decoded checkpoint payload: disks,
// queues, counters, policy, faults, and telemetry are restored, and the
// saved pending events are decoded into RestoredEvents (in saved order,
// which is ascending original Seq) for the caller to schedule. The engine is
// NOT touched — the caller brackets Schedule calls with BeginRestore and
// FinishRestore, which lets a cluster restore interleave the events of
// several sims sharing one engine.
func restoreSim(cfg Config, st *simState, eng *des.Engine, host Host) (*sim, []RestoredEvent, error) {
	pol, ok := cfg.Policy.(CheckpointablePolicy)
	if !ok {
		return nil, nil, fmt.Errorf("array: resume: policy %q does not support checkpointing", cfg.Policy.Name())
	}
	if st.PolicyName != cfg.Policy.Name() {
		return nil, nil, fmt.Errorf("array: resume: checkpoint was taken under policy %q, config has %q",
			st.PolicyName, cfg.Policy.Name())
	}
	if len(st.Disks) != cfg.Disks {
		return nil, nil, fmt.Errorf("array: resume: checkpoint has %d disks, config has %d",
			len(st.Disks), cfg.Disks)
	}
	s, err := newSimOn(cfg, eng, host)
	if err != nil {
		return nil, nil, err
	}

	stripes := make([]*stripeJob, len(st.Stripes))
	for i, ss := range st.Stripes {
		done, err := decodeCont(ss.Done)
		if err != nil {
			return nil, nil, err
		}
		stripes[i] = &stripeJob{
			fileID: ss.FileID, arrival: ss.Arrival, remaining: ss.Remaining, lost: ss.Lost, done: done,
		}
	}
	decodeOp := func(os opState) (op, error) {
		o := op{
			kind:     opKind(os.Kind),
			fileID:   os.FileID,
			sizeMB:   os.SizeMB,
			arrival:  os.Arrival,
			mig:      os.Mig,
			rerouted: os.Rerouted,
			enqT:     os.EnqT,
			spinBase: os.SpinBase,
			waitSpin: os.WaitSpin,
			svcDur:   os.SvcDur,
		}
		if os.Stripe >= 0 {
			if os.Stripe >= len(stripes) {
				return op{}, fmt.Errorf("array: resume: stripe %d out of range", os.Stripe)
			}
			o.stripe = stripes[os.Stripe]
		}
		c, err := decodeCont(os.Done)
		if err != nil {
			return op{}, err
		}
		o.done = c
		return o, nil
	}

	for i, dc := range st.Disks {
		ds := s.disks[i]
		ds.disk = diskmodel.Restore(i, cfg.DiskParams, dc.Disk)
		ds.temp = thermal.RestoreTracker(cfg.Thermal, dc.Temp)
		if dc.Pending != nil {
			p := *dc.Pending
			ds.pending = &p
		}
		ds.idleTimeout = dc.IdleTimeout
		ds.idleArmed = dc.IdleArmed
		ds.failed = dc.Failed
		ds.spareAssigned = dc.SpareAssigned
		ds.rebuilding = dc.Rebuilding
		ds.rebuildMBps = dc.RebuildMBps
		ds.gen = dc.Gen
		ds.transBusy = dc.TransBusy
		ds.transStart = dc.TransStart
		for _, os := range dc.FG {
			o, err := decodeOp(os)
			if err != nil {
				return nil, nil, err
			}
			ds.fg.push(o)
		}
		for _, os := range dc.BG {
			o, err := decodeOp(os)
			if err != nil {
				return nil, nil, err
			}
			ds.bg.push(o)
		}
	}

	s.nextReq = st.NextReq
	s.migrations = st.Migrations
	s.backgroundOps = st.BackgroundOps
	s.epochs = st.Epochs
	s.migsThisEpoch = st.MigsThisEpoch
	if st.Place != nil {
		s.place = st.Place
	}
	if st.Counts != nil {
		s.counts = st.Counts
	}
	for _, id := range st.Migrating {
		s.migrating[id] = true
	}
	s.respStream.SetState(st.RespStream)
	if err := s.respHist.SetState(st.RespHist); err != nil {
		return nil, nil, fmt.Errorf("array: resume: %w", err)
	}
	s.timeline = st.Timeline

	if err := pol.LoadState(st.Policy); err != nil {
		return nil, nil, fmt.Errorf("array: resume: policy %q load: %w", pol.Name(), err)
	}

	faultsOn := cfg.Faults != nil && cfg.Faults.Enabled
	switch {
	case st.Faults != nil && !faultsOn:
		return nil, nil, fmt.Errorf("array: resume: checkpoint has fault state but faults are disabled")
	case st.Faults == nil && faultsOn:
		return nil, nil, fmt.Errorf("array: resume: faults enabled but checkpoint has no fault state")
	case st.Faults != nil:
		fcfg := cfg.Faults.Normalized()
		inj, err := faults.RestoreInjector(fcfg, st.Faults.Injector)
		if err != nil {
			return nil, nil, fmt.Errorf("array: resume: %w", err)
		}
		s.flt = &faultState{
			cfg:            fcfg,
			inj:            inj,
			spares:         st.Faults.Spares,
			sparesUsed:     st.Faults.SparesUsed,
			failures:       st.Faults.Failures,
			repairs:        st.Faults.Repairs,
			dataLoss:       st.Faults.DataLoss,
			firstLoss:      st.Faults.FirstLoss,
			lostRequests:   st.Faults.LostRequests,
			degraded:       st.Faults.Degraded,
			reassigned:     st.Faults.Reassigned,
			rebuildMB:      st.Faults.RebuildMB,
			rebuildEnergyJ: st.Faults.RebuildEnergyJ,
			lseCleared:     st.Faults.LSECleared,
			scrubs:         st.Faults.Scrubs,
			scrubMB:        st.Faults.ScrubMB,
			log:            st.Faults.Log,
		}
		switch {
		case st.Faults.RAID != nil && !cfg.RAID.Enabled():
			return nil, nil, fmt.Errorf("array: resume: checkpoint has RAID state but no RAID organization is configured")
		case st.Faults.RAID == nil && cfg.RAID.Enabled():
			return nil, nil, fmt.Errorf("array: resume: RAID organization configured but checkpoint has no RAID state")
		case st.Faults.RAID != nil:
			raid, err := newRAIDState(cfg.RAID, cfg.Disks)
			if err != nil {
				return nil, nil, fmt.Errorf("array: resume: %w", err)
			}
			raid.losses = st.Faults.RAID.Losses
			raid.lseLosses = st.Faults.RAID.LSELosses
			raid.overlapLosses = st.Faults.RAID.OverlapLosses
			raid.firstLoss = st.Faults.RAID.FirstLoss
			raid.log = st.Faults.RAID.Log
			s.flt.raid = raid
		}
	}

	if cfg.Telemetry != nil {
		cfg.Telemetry.Metrics.SetState(st.Metrics)
	}
	switch {
	case st.Trace != nil && s.trc == nil:
		return nil, nil, fmt.Errorf("array: resume: checkpoint has decision-trace state but the recorder has no DecisionLog")
	case st.Trace == nil && s.trc != nil:
		return nil, nil, fmt.Errorf("array: resume: decision tracing enabled but checkpoint has no trace state")
	case st.Trace != nil:
		s.trc.restore(st.Trace)
	}

	evs := make([]RestoredEvent, 0, len(st.Events))
	for _, se := range st.Events {
		rec := eventRecord{
			Kind:        se.Kind,
			Disk:        se.Disk,
			Gen:         se.Gen,
			Deadline:    se.Deadline,
			Timeout:     se.Timeout,
			LastEnergy:  se.LastEnergy,
			RemainingMB: se.RemainingMB,
			FileID:      se.FileID,
			From:        se.From,
			To:          se.To,
			SizeMB:      se.SizeMB,
		}
		if se.Op != nil {
			o, err := decodeOp(*se.Op)
			if err != nil {
				return nil, nil, err
			}
			rec.Op = &o
		}
		evs = append(evs, RestoredEvent{Seq: se.Seq, Time: se.Time, s: s, rec: rec})
	}
	return s, evs, nil
}

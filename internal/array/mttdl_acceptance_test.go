package array

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/reliability"
)

// TestMTTDLMatchesClosedForms is the RAID layer's calibration contract: with
// memoryless lifetimes (Weibull β = 1), fixed repair windows, PRESS scaling
// off, and LSEs disabled, the Monte-Carlo MTTDL estimate from counted loss
// combinations must land near the textbook Markov formulas for each
// organization. The closed forms are first-order approximations valid only
// for MTTR ≪ MTTF (the error term grows like group-size·MTTR/MTTF), so each
// case picks its own regime: MTTR/MTTF small enough for the formula to hold,
// acceleration high enough to still collect enough loss events for the
// estimate to have statistics. Tolerances are loose — they absorb the
// residual regime error plus Monte-Carlo noise on O(100) events — but tight
// enough to catch a wrong tolerance count, a missed unavailability state, or
// a broken timescale conversion.
func TestMTTDLMatchesClosedForms(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo calibration run")
	}
	const disks = 6

	cases := []struct {
		level RAIDLevel
		mttf  float64 // hours; β=1 Weibull ⇒ exponential with this mean
		mttr  float64 // hours; fixed, so the unavailability window is exact
		accel float64
		// closed returns the array-level closed form: the per-group formula
		// divided by the number of independent groups racing to lose data.
		closed func(mttf, mttr float64) (float64, error)
		// tolFactor bounds estimate/closed-form in [1/tolFactor, tolFactor].
		tolFactor float64
	}{
		{
			level: RAID5, mttf: 600, mttr: 20, accel: 1.2e6,
			closed: func(mttf, mttr float64) (float64, error) {
				return reliability.MTTDLRaid5Hours(disks, mttf, mttr)
			},
			tolFactor: 1.45,
		},
		{
			// Triple overlaps compound the regime error, so RAID-6 gets the
			// smallest MTTR/MTTF and the widest band.
			level: RAID6, mttf: 300, mttr: 15, accel: 1.6e6,
			closed: func(mttf, mttr float64) (float64, error) {
				return reliability.MTTDLRaid6Hours(disks, mttf, mttr)
			},
			tolFactor: 1.6,
		},
		{
			// Three mirrored pairs: per-group loss rates add, so the array
			// MTTDL is the group formula over three groups.
			level: Repl2, mttf: 200, mttr: 20, accel: 1.2e6,
			closed: func(mttf, mttr float64) (float64, error) {
				h, err := reliability.MTTDLReplicationHours(2, mttf, mttr)
				return h / 3, err
			},
			tolFactor: 1.45,
		},
		{
			// Two triplets.
			level: Repl3, mttf: 150, mttr: 15, accel: 2e6,
			closed: func(mttf, mttr float64) (float64, error) {
				h, err := reliability.MTTDLReplicationHours(3, mttf, mttr)
				return h / 2, err
			},
			tolFactor: 1.6,
		},
	}
	// ~220 virtual seconds; per-case acceleration turns that into 7e4–1.2e5
	// accelerated hours of exposure.
	tr := tinyTrace(t, 40, 22000, 0.01)
	for _, tc := range cases {
		t.Run(string(tc.level), func(t *testing.T) {
			want, err := tc.closed(tc.mttf, tc.mttr)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(Config{
				Disks:  disks,
				Trace:  tr,
				Policy: &staticPolicy{},
				Spares: 1 << 20,
				// Effectively instantaneous rebuilds: the unavailability
				// window is the fixed repair time alone, matching the
				// closed forms' MTTR.
				RebuildMBps: 1e12,
				Faults: &faults.Config{
					Enabled:              true,
					Seed:                 3,
					Failure:              reliability.Weibull{Shape: 1, ScaleHours: tc.mttf},
					FixedRepairHours:     tc.mttr,
					PRESSScaling:         false,
					Acceleration:         tc.accel,
					CheckIntervalSeconds: 0.01,
				},
				RAID: RAIDConfig{Level: tc.level},
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.RAIDDataLossEvents < 50 {
				t.Fatalf("only %d loss events over %.3g h of exposure — not enough statistics to validate against the closed form",
					res.RAIDDataLossEvents, res.ExposureHours)
			}
			if res.RAIDLSELosses != 0 {
				t.Fatalf("%d LSE-mediated losses with LSE modeling off", res.RAIDLSELosses)
			}
			got := res.MTTDLEstHours
			ratio := got / want
			t.Logf("%s: estimate %.1f h vs closed form %.1f h (ratio %.3f, %d losses, exposure %.3g h)",
				tc.level, got, want, ratio, res.RAIDDataLossEvents, res.ExposureHours)
			if ratio < 1/tc.tolFactor || ratio > tc.tolFactor {
				t.Errorf("%s: MTTDL estimate %.1f h vs closed form %.1f h — ratio %.3f outside [%.2f, %.2f]",
					tc.level, got, want, ratio, 1/tc.tolFactor, tc.tolFactor)
			}
		})
	}
}

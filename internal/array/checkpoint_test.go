package array

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/faults"
	"repro/internal/reliability"
)

// ckptSpinDown is spinDownPolicy plus checkpoint support: the counters are
// the only mutable state.
type ckptSpinDown struct {
	spinDownPolicy
}

type ckptSpinDownState struct {
	Timeouts int `json:"timeouts"`
	SpinUps  int `json:"spin_ups"`
}

func (p *ckptSpinDown) SaveState() ([]byte, error) {
	return json.Marshal(ckptSpinDownState{Timeouts: p.timeouts, SpinUps: p.spinUps})
}

func (p *ckptSpinDown) LoadState(data []byte) error {
	var st ckptSpinDownState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	p.timeouts = st.Timeouts
	p.spinUps = st.SpinUps
	return nil
}

// ckptMigrator additionally moves one file to the next disk every epoch, so
// snapshots land while migrations (and their continuations) are in flight.
type ckptMigrator struct {
	ckptSpinDown
	next int
}

func (p *ckptMigrator) Name() string { return "ckpt-migrator" }

func (p *ckptMigrator) OnEpoch(ctx *Context) {
	files := ctx.Files()
	if len(files) == 0 {
		return
	}
	f := files[p.next%len(files)]
	ctx.Migrate(f.ID, (ctx.Placement(f.ID)+1)%ctx.NumDisks())
	p.next++
}

type ckptMigratorState struct {
	ckptSpinDownState
	Next int `json:"next"`
}

func (p *ckptMigrator) SaveState() ([]byte, error) {
	return json.Marshal(ckptMigratorState{
		ckptSpinDownState: ckptSpinDownState{Timeouts: p.timeouts, SpinUps: p.spinUps},
		Next:              p.next,
	})
}

func (p *ckptMigrator) LoadState(data []byte) error {
	var st ckptMigratorState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	p.timeouts = st.Timeouts
	p.spinUps = st.SpinUps
	p.next = st.Next
	return nil
}

// runWithSnapshots runs cfg to completion while capturing every checkpoint
// envelope through the in-process sink.
func runWithSnapshots(t *testing.T, cfg Config, everySimSeconds float64) (*Result, [][]byte) {
	t.Helper()
	var snaps [][]byte
	cfg.Checkpoint = &CheckpointSpec{
		EverySimSeconds: everySimSeconds,
		Tool:            "array-test",
		ConfigDigest:    "test-digest",
		Sink: func(data []byte) error {
			snaps = append(snaps, append([]byte(nil), data...))
			return nil
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 2 {
		t.Fatalf("only %d snapshots captured; interval %v too coarse for the trace",
			len(snaps), everySimSeconds)
	}
	return res, snaps
}

// resumeFromSnapshot decodes one captured envelope and resumes it under the
// same configuration with a fresh policy instance.
func resumeFromSnapshot(t *testing.T, cfg Config, freshPolicy Policy, snap []byte, everySimSeconds float64) *Result {
	t.Helper()
	env, err := checkpoint.Decode(snap)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Policy = freshPolicy
	cfg.Checkpoint = &CheckpointSpec{
		EverySimSeconds: everySimSeconds,
		Tool:            "array-test",
		ConfigDigest:    "test-digest",
		Sink:            func([]byte) error { return nil },
	}
	res, err := Resume(cfg, env.State)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestKillResumeBitIdentical is the subsystem's headline contract: killing a
// run at any checkpoint and resuming from the snapshot must reproduce the
// uninterrupted run exactly — same event count, bit-equal floats — not
// merely approximately.
func TestKillResumeBitIdentical(t *testing.T) {
	const interval = 0.9 // deliberately offset from the 1.5 s epoch

	cases := []struct {
		name   string
		policy func() Policy
		mut    func(cfg *Config)
		// check, when set, guards against the case silently not exercising
		// the machinery it was written for.
		check func(t *testing.T, r *Result)
	}{
		{
			name:   "spin-down",
			policy: func() Policy { return &ckptSpinDown{spinDownPolicy{h: 0.3}} },
		},
		{
			name:   "migrations in flight",
			policy: func() Policy { return &ckptMigrator{ckptSpinDown: ckptSpinDown{spinDownPolicy{h: 0.3}}} },
			mut:    func(cfg *Config) { cfg.EpochSeconds = 1.5 },
		},
		{
			name:   "fault injection",
			policy: func() Policy { return &ckptSpinDown{spinDownPolicy{h: 0.3}} },
			mut: func(cfg *Config) {
				// A scripted mid-trace failure with a sampled (not fixed)
				// repair time, so the resume must replay the injector's RNG
				// draw log to stay on the same random sequence.
				cfg.Faults = &faults.Config{
					Enabled:              true,
					Seed:                 7,
					Acceleration:         3600,
					CheckIntervalSeconds: 1,
					Scripted:             []faults.ScriptedEvent{{Disk: 1, At: 5}},
				}
				cfg.Spares = 1
			},
		},
		{
			name:   "lse, scrub, and raid rebuild in flight",
			policy: func() Policy { return &ckptSpinDown{spinDownPolicy{h: 0.3}} },
			mut: func(cfg *Config) {
				// Every second-generation failure mechanism at once: latent
				// errors accumulating, scrub passes as live background I/O,
				// a Weibull-drawn rebuild after the scripted failure, and a
				// RAID-5 group watching it all. The acceleration squeezes
				// the weekly scrub cycle to ~3 virtual seconds so snapshots
				// land with scrub passes and LSE state in flight.
				cfg.Faults = &faults.Config{
					Enabled:              true,
					Seed:                 11,
					Acceleration:         2e5,
					CheckIntervalSeconds: 0.5,
					Scripted:             []faults.ScriptedEvent{{Disk: 2, At: 5}},
					LSERatePerHour:       2e-3,
					ScrubIOMB:            4,
					RebuildTime:          &reliability.Weibull{Shape: 1, ScaleHours: 12},
				}
				cfg.Spares = 1
				cfg.RAID = RAIDConfig{Level: RAID5}
			},
			check: func(t *testing.T, r *Result) {
				if r.LSEErrors == 0 || r.Scrubs == 0 {
					t.Fatalf("case exercised nothing: %d LSEs, %d scrubs", r.LSEErrors, r.Scrubs)
				}
				if r.RebuildMB == 0 {
					t.Fatalf("no rebuild traffic after the scripted failure")
				}
				if r.RAIDLevel != string(RAID5) {
					t.Fatalf("RAID layer inactive (level %q)", r.RAIDLevel)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := tinyTrace(t, 40, 2000, 0.01) // ~20 s of virtual time
			cfg := Config{
				Disks:          4,
				Trace:          tr,
				SampleInterval: 2,
			}
			if tc.mut != nil {
				tc.mut(&cfg)
			}
			cfg.Policy = tc.policy()
			want, snaps := runWithSnapshots(t, cfg, interval)
			if tc.check != nil {
				tc.check(t, want)
			}

			// Resume from an early, a middle, and the last snapshot: the
			// contract holds wherever the kill lands.
			for _, idx := range []int{0, len(snaps) / 2, len(snaps) - 1} {
				got := resumeFromSnapshot(t, cfg, tc.policy(), snaps[idx], interval)
				if !reflect.DeepEqual(want, got) {
					t.Errorf("resume from snapshot %d/%d diverged:\nwant %+v\ngot  %+v",
						idx+1, len(snaps), want, got)
				}
			}
		})
	}
}

// TestResumeSnapshotFields sanity-checks the envelope metadata the CLI
// verifies before resuming.
func TestResumeSnapshotFields(t *testing.T) {
	tr := tinyTrace(t, 20, 500, 0.01)
	cfg := Config{Disks: 3, Trace: tr, Policy: &ckptSpinDown{spinDownPolicy{h: 0.3}}}
	_, snaps := runWithSnapshots(t, cfg, 1)
	env, err := checkpoint.Decode(snaps[len(snaps)/2])
	if err != nil {
		t.Fatal(err)
	}
	if env.Tool != "array-test" || env.ConfigDigest != "test-digest" {
		t.Fatalf("envelope identity = %q/%q", env.Tool, env.ConfigDigest)
	}
	if env.SimTime <= 0 || env.EventsFired == 0 {
		t.Fatalf("envelope progress = t=%v fired=%d", env.SimTime, env.EventsFired)
	}
}

func TestCheckpointSpecValidation(t *testing.T) {
	tr := tinyTrace(t, 10, 100, 0.01)
	base := func() Config {
		return Config{Disks: 2, Trace: tr, Policy: &ckptSpinDown{spinDownPolicy{h: 0.3}}}
	}
	sink := func([]byte) error { return nil }

	cases := []struct {
		name string
		mut  func(cfg *Config)
		want string
	}{
		{
			name: "zero interval",
			mut: func(cfg *Config) {
				cfg.Checkpoint = &CheckpointSpec{EverySimSeconds: 0, Sink: sink}
			},
			want: "interval",
		},
		{
			name: "no destination",
			mut: func(cfg *Config) {
				cfg.Checkpoint = &CheckpointSpec{EverySimSeconds: 1}
			},
			want: "path or a sink",
		},
		{
			name: "non-checkpointable policy",
			mut: func(cfg *Config) {
				cfg.Policy = &staticPolicy{}
				cfg.Checkpoint = &CheckpointSpec{EverySimSeconds: 1, Sink: sink}
			},
			want: "does not support checkpointing",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mut(&cfg)
			_, err := Run(cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestResumeRejectsMismatches(t *testing.T) {
	tr := tinyTrace(t, 20, 500, 0.01)
	cfg := Config{Disks: 3, Trace: tr, Policy: &ckptSpinDown{spinDownPolicy{h: 0.3}}}
	_, snaps := runWithSnapshots(t, cfg, 1)
	env, err := checkpoint.Decode(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	spec := func() *CheckpointSpec {
		return &CheckpointSpec{EverySimSeconds: 1, Sink: func([]byte) error { return nil }}
	}

	cases := []struct {
		name string
		mut  func(cfg *Config)
		want string
	}{
		{
			name: "wrong policy",
			mut: func(cfg *Config) {
				cfg.Policy = &ckptMigrator{ckptSpinDown: ckptSpinDown{spinDownPolicy{h: 0.3}}}
				cfg.Checkpoint = spec()
			},
			want: "policy",
		},
		{
			name: "wrong disk count",
			mut: func(cfg *Config) {
				cfg.Disks = 4
				cfg.Policy = &ckptSpinDown{spinDownPolicy{h: 0.3}}
				cfg.Checkpoint = spec()
			},
			want: "disks",
		},
		{
			name: "missing checkpoint spec",
			mut: func(cfg *Config) {
				cfg.Policy = &ckptSpinDown{spinDownPolicy{h: 0.3}}
				cfg.Checkpoint = nil
			},
			want: "pending checkpoint ticks",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := cfg
			tc.mut(&c)
			_, err := Resume(c, env.State)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}

	t.Run("corrupt state", func(t *testing.T) {
		c := cfg
		c.Policy = &ckptSpinDown{spinDownPolicy{h: 0.3}}
		c.Checkpoint = spec()
		if _, err := Resume(c, []byte(`{"clock": `)); err == nil {
			t.Fatal("want parse error for truncated state")
		}
	})
}

// TestCheckpointEveryTickOverwrites drives the path-based writer and checks
// the file always holds the latest complete snapshot.
func TestCheckpointEveryTickOverwrites(t *testing.T) {
	tr := tinyTrace(t, 20, 500, 0.01)
	path := t.TempDir() + "/checkpoint.json"
	cfg := Config{
		Disks:  3,
		Trace:  tr,
		Policy: &ckptSpinDown{spinDownPolicy{h: 0.3}},
		Checkpoint: &CheckpointSpec{
			EverySimSeconds: 1,
			Path:            path,
			Tool:            "array-test",
			ConfigDigest:    "test-digest",
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	env, err := checkpoint.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	// The surviving file is the LAST snapshot taken; when all work drains
	// before the final tick, that tick can be the run's last event, so
	// equality is legal here.
	if env.EventsFired == 0 || env.EventsFired > res.EventsFired {
		t.Fatalf("final snapshot at %d events, run fired %d", env.EventsFired, res.EventsFired)
	}
	// And the file resumes to the same end state.
	got := resumeFromSnapshot(t, cfg, &ckptSpinDown{spinDownPolicy{h: 0.3}},
		mustEncode(t, env), 1)
	if !reflect.DeepEqual(res, got) {
		t.Fatalf("resume from on-disk snapshot diverged:\nwant %+v\ngot  %+v", res, got)
	}
}

func mustEncode(t *testing.T, env *checkpoint.Envelope) []byte {
	t.Helper()
	data, err := checkpoint.Encode(env)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

package array

// RAID organization layer: partitions the array into redundancy groups and
// declares data loss only when a failure *combination* defeats the group's
// redundancy — overlapping whole-disk failures, or a disk failure whose
// rebuild trips over an unscrubbed latent sector error on a surviving
// member. This is the loss model of Thomasian's RAID tutorial and of the
// Gray & van Ingen field studies: in redundant arrays single failures are
// routine, and MTTDL is set by the second fault that lands inside a repair
// window.

import (
	"fmt"
)

// RAIDLevel names a supported redundancy organization.
type RAIDLevel string

const (
	// RAID5 tolerates one unavailable member per parity group.
	RAID5 RAIDLevel = "raid5"
	// RAID6 tolerates two unavailable members per parity group.
	RAID6 RAIDLevel = "raid6"
	// Repl2 is 2-way replication: groups of two mirrored disks.
	Repl2 RAIDLevel = "repl2"
	// Repl3 is 3-way replication: groups of three mirrored disks.
	Repl3 RAIDLevel = "repl3"
)

// RAIDLevels lists the accepted organizations, in documentation order.
func RAIDLevels() []RAIDLevel {
	return []RAIDLevel{RAID5, RAID6, Repl2, Repl3}
}

// RAIDConfig selects the redundancy organization overlaid on the array.
// The zero value disables the layer entirely.
type RAIDConfig struct {
	// Level is the organization; empty disables the RAID layer.
	Level RAIDLevel `json:"Level,omitempty"`
	// StripeWidth is the disks per redundancy group. Zero means the level's
	// natural default: the whole array for RAID-5/6, the replica count for
	// replication. The array size must divide evenly into groups.
	StripeWidth int `json:"StripeWidth,omitempty"`
}

// Enabled reports whether the RAID layer is active.
func (c RAIDConfig) Enabled() bool { return c.Level != "" }

// Tolerance returns the number of simultaneously unavailable members a
// group survives: one for RAID-5 and 2-way replication, two for RAID-6 and
// 3-way replication.
func (c RAIDConfig) Tolerance() (int, error) {
	switch c.Level {
	case RAID5, Repl2:
		return 1, nil
	case RAID6, Repl3:
		return 2, nil
	default:
		return 0, fmt.Errorf("array: unknown RAID level %q", c.Level)
	}
}

// Width returns the effective group width for an array of `disks` drives.
func (c RAIDConfig) Width(disks int) int {
	if c.StripeWidth > 0 {
		return c.StripeWidth
	}
	switch c.Level {
	case Repl2:
		return 2
	case Repl3:
		return 3
	default:
		return disks
	}
}

// Validate rejects organizations that cannot be laid out on `disks` drives.
func (c RAIDConfig) Validate(disks int) error {
	if !c.Enabled() {
		return nil
	}
	tol, err := c.Tolerance()
	if err != nil {
		return err
	}
	w := c.Width(disks)
	switch {
	case c.StripeWidth < 0:
		return fmt.Errorf("array: negative stripe width %d", c.StripeWidth)
	case w > disks:
		return fmt.Errorf("array: stripe width %d exceeds %d disks", w, disks)
	case w < tol+1:
		return fmt.Errorf("array: stripe width %d cannot hold %s (needs at least %d disks per group)",
			w, c.Level, tol+1)
	case disks%w != 0:
		return fmt.Errorf("array: %d disks do not divide into groups of %d", disks, w)
	}
	if (c.Level == Repl2 || c.Level == Repl3) && c.StripeWidth > 0 && c.StripeWidth != tol+1 {
		return fmt.Errorf("array: %s requires stripe width %d, got %d", c.Level, tol+1, c.StripeWidth)
	}
	return nil
}

// RAIDLossEvent is one declared data-loss event in a redundancy group.
type RAIDLossEvent struct {
	// Time is the loss time in virtual seconds.
	Time float64 `json:"time"`
	// Group is the redundancy group that lost data.
	Group int `json:"group"`
	// Disk is the member whose fault completed the losing combination.
	Disk int `json:"disk"`
	// Kind is "overlap" (too many simultaneous member failures) or
	// "lse-rebuild" (a rebuild at zero redundancy met an unscrubbed latent
	// error on a surviving member).
	Kind string `json:"kind"`
}

// RAID loss kinds.
const (
	raidLossOverlap    = "overlap"
	raidLossLSERebuild = "lse-rebuild"
)

// raidState is the derived bookkeeping of the RAID layer. The group layout
// (groups, groupOf, tol) is a pure function of the configuration and disk
// count, so only the counters and log are checkpointed.
type raidState struct {
	cfg     RAIDConfig
	groups  [][]int // group -> member disk indices
	groupOf []int   // disk -> group
	tol     int

	losses        int
	lseLosses     int
	overlapLosses int
	firstLoss     float64 // virtual seconds of first loss; -1 = none
	log           []RAIDLossEvent
}

// newRAIDState lays the array out into redundancy groups of the configured
// width, in disk order: disks [0,w) form group 0, [w,2w) group 1, and so on.
func newRAIDState(cfg RAIDConfig, disks int) (*raidState, error) {
	if err := cfg.Validate(disks); err != nil {
		return nil, err
	}
	tol, err := cfg.Tolerance()
	if err != nil {
		return nil, err
	}
	w := cfg.Width(disks)
	r := &raidState{cfg: cfg, tol: tol, groupOf: make([]int, disks), firstLoss: -1}
	for g := 0; g*w < disks; g++ {
		members := make([]int, 0, w)
		for d := g * w; d < (g+1)*w; d++ {
			members = append(members, d)
			r.groupOf[d] = g
		}
		r.groups = append(r.groups, members)
	}
	return r, nil
}

// unavailable counts group members that currently hold no trustworthy data:
// failed outright, or back up but still rebuilding.
func (s *sim) raidUnavailable(group int) int {
	n := 0
	for _, d := range s.flt.raid.groups[group] {
		ds := s.disks[d]
		if ds.failed || ds.rebuilding {
			n++
		}
	}
	return n
}

// raidRecordLoss books one data-loss event against disk d's group.
func (s *sim) raidRecordLoss(d int, at float64, kind string) {
	r := s.flt.raid
	r.losses++
	switch kind {
	case raidLossOverlap:
		r.overlapLosses++
	case raidLossLSERebuild:
		r.lseLosses++
	}
	if r.firstLoss < 0 {
		r.firstLoss = at
	}
	r.log = append(r.log, RAIDLossEvent{Time: at, Group: r.groupOf[d], Disk: d, Kind: kind})
}

// raidOnDiskFailure evaluates the loss rules when disk d fails at time
// `at`, after the disk has been marked failed. Loss is declared when the
// failure overflows the group's tolerance outright, or exactly exhausts it
// while a surviving member carries an unscrubbed latent sector error — the
// rebuild must read every surviving member, and the latent error makes one
// of those reads unrecoverable.
func (s *sim) raidOnDiskFailure(d int, at float64) {
	r := s.flt.raid
	if r == nil {
		return
	}
	g := r.groupOf[d]
	unavail := s.raidUnavailable(g)
	if unavail > r.tol {
		s.raidRecordLoss(d, at, raidLossOverlap)
		return
	}
	if unavail == r.tol {
		for _, m := range r.groups[g] {
			ds := s.disks[m]
			if !ds.failed && !ds.rebuilding && s.flt.inj.PendingLSE(m) > 0 {
				s.raidRecordLoss(d, at, raidLossLSERebuild)
				return
			}
		}
	}
}

// raidOnLSE evaluates the loss rules when disk d accumulates a latent
// sector error at time `at`: if the group's redundancy is already fully
// consumed by failures or in-flight rebuilds, the new latent error sits on
// data with no surviving copy.
func (s *sim) raidOnLSE(d int, at float64) {
	r := s.flt.raid
	if r == nil {
		return
	}
	ds := s.disks[d]
	if ds.failed || ds.rebuilding {
		// The erroring disk holds no trustworthy data anyway; its sectors
		// are already part of the unavailable count.
		return
	}
	g := r.groupOf[d]
	if n := s.raidUnavailable(g); n > 0 && n >= r.tol {
		s.raidRecordLoss(d, at, raidLossLSERebuild)
	}
}

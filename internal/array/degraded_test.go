package array

import (
	"reflect"
	"testing"

	"repro/internal/faults"
)

// hookPolicy is staticPolicy plus failure-lifecycle instrumentation: it
// counts every OnDiskFailure/OnDiskRepair call per disk, optionally
// re-homes the dead disk's files during failover, and probes that
// ReassignFile is rejected outside the failover window.
type hookPolicy struct {
	staticPolicy
	reassignOnFailure bool

	failures        map[int]int
	repairs         map[int]int
	lateReassignErr error // ReassignFile attempted from OnDiskRepair
}

func (p *hookPolicy) OnDiskFailure(ctx *Context, d int) {
	if p.failures == nil {
		p.failures = make(map[int]int)
	}
	p.failures[d]++
	if !p.reassignOnFailure || ctx.DiskCovered(d) {
		return
	}
	for _, id := range ctx.FilesOn(d) {
		to := (d + 1) % ctx.NumDisks()
		for ctx.DiskFailed(to) {
			to = (to + 1) % ctx.NumDisks()
		}
		if err := ctx.ReassignFile(id, to); err != nil {
			panic(err)
		}
	}
}

func (p *hookPolicy) OnDiskRepair(ctx *Context, d int) {
	if p.repairs == nil {
		p.repairs = make(map[int]int)
	}
	p.repairs[d]++
	// Outside OnDiskFailure the reassignment window is closed; remember
	// the (expected) rejection so the test can assert it.
	p.lateReassignErr = ctx.ReassignFile(0, d)
}

// scriptedFaults builds a deterministic fault config: the listed failures
// happen at the listed times, and repairs take exactly repairSeconds of
// virtual time (acceleration 3600 turns FixedRepairHours into seconds).
func scriptedFaults(repairSeconds float64, events ...faults.ScriptedEvent) *faults.Config {
	return &faults.Config{
		Enabled:          true,
		Seed:             1,
		Acceleration:     3600,
		FixedRepairHours: repairSeconds,
		// Scripted events fire at the first hazard tick at or after their
		// time; tick every second so they land on schedule mid-trace.
		CheckIntervalSeconds: 1,
		Scripted:             events,
	}
}

// TestDegradedDispatch drives scripted failures through the simulator and
// checks how in-flight and queued requests are re-dispatched: absorbed by a
// spare, re-routed to a policy-assigned live copy, or counted lost.
func TestDegradedDispatch(t *testing.T) {
	cases := []struct {
		name         string
		spares       int
		reassign     bool
		repairS      float64 // virtual seconds; trace lasts ~20 s
		interarrival float64 // 0 means the default 0.01 s
		events       []faults.ScriptedEvent
		check        func(t *testing.T, res *Result, pol *hookPolicy)
	}{
		{
			// The spare absorbs a failure in the middle of the request
			// burst: queued work waits out the 5 s outage on the dead
			// disk's queue and is served degraded by the replacement.
			name:    "spare covers failure mid-burst",
			spares:  1,
			repairS: 5,
			events:  []faults.ScriptedEvent{{Disk: 1, At: 5}},
			check: func(t *testing.T, res *Result, pol *hookPolicy) {
				if res.DiskFailures != 1 || res.SparesUsed != 1 {
					t.Errorf("failures/spares = %d/%d, want 1/1", res.DiskFailures, res.SparesUsed)
				}
				if res.DataLossEvents != 0 || res.LostRequests != 0 {
					t.Errorf("loss events/requests = %d/%d, want 0/0", res.DataLossEvents, res.LostRequests)
				}
				if res.DegradedRequests == 0 {
					t.Error("spare-covered outage produced no degraded requests")
				}
				if res.DiskRepairs != 1 {
					t.Errorf("repairs = %d, want 1 (repair lands mid-trace)", res.DiskRepairs)
				}
				if res.RebuildMB == 0 || res.RebuildEnergyJ == 0 {
					t.Errorf("rebuild = %.0f MB / %.1f J, want both > 0", res.RebuildMB, res.RebuildEnergyJ)
				}
				if res.MTTDLHours != 0 {
					t.Errorf("MTTDL = %v h on a run with no data loss", res.MTTDLHours)
				}
			},
		},
		{
			// Same failure with an empty spare pool and a policy that
			// does not re-home data: the resident files are gone, so
			// requests for them are lost and the data-loss clock starts.
			name:    "empty spare pool loses data",
			spares:  0,
			repairS: 5,
			events:  []faults.ScriptedEvent{{Disk: 1, At: 5}},
			check: func(t *testing.T, res *Result, pol *hookPolicy) {
				if res.DataLossEvents != 1 {
					t.Errorf("data-loss events = %d, want 1", res.DataLossEvents)
				}
				if res.LostRequests == 0 {
					t.Error("uncovered failure lost no requests")
				}
				want := 5.0 / 3600
				if res.MTTDLHours != want {
					t.Errorf("MTTDL = %v h, want %v (failure at t=5 s)", res.MTTDLHours, want)
				}
				if res.SparesUsed != 0 {
					t.Errorf("spares used = %d with an empty pool", res.SparesUsed)
				}
			},
		},
		{
			// Empty pool again, but the policy re-homes every resident
			// file during failover: the loss event is still recorded
			// (the primary copy died) but no request is dropped — they
			// are all delivered degraded from the re-assigned disks.
			name:     "failover reassignment averts lost requests",
			spares:   0,
			reassign: true,
			repairS:  5,
			// Saturate the array (trace compresses to ~4 s) so the dead
			// disk has queued work at the failure instant — that backlog
			// is what gets re-routed degraded; post-failover arrivals are
			// served normally off the re-homed placements.
			interarrival: 0.002,
			events:       []faults.ScriptedEvent{{Disk: 1, At: 2}},
			check: func(t *testing.T, res *Result, pol *hookPolicy) {
				if res.DataLossEvents != 1 {
					t.Errorf("data-loss events = %d, want 1", res.DataLossEvents)
				}
				if res.LostRequests != 0 {
					t.Errorf("lost requests = %d, want 0 after reassignment", res.LostRequests)
				}
				if res.ReassignedFiles == 0 {
					t.Error("no files re-homed despite reassigning policy")
				}
				if res.DegradedRequests == 0 {
					t.Error("re-routed requests were not counted degraded")
				}
			},
		},
		{
			// The repair takes longer than the trace: queued requests
			// wait on the dead disk past the last arrival, and the
			// replacement (plus its rebuild) completes after the drain.
			name:    "spare rebuild completes after drain",
			spares:  1,
			repairS: 60,
			events:  []faults.ScriptedEvent{{Disk: 1, At: 5}},
			check: func(t *testing.T, res *Result, pol *hookPolicy) {
				if res.DiskRepairs != 1 {
					t.Errorf("repairs = %d, want 1 (repair after drain must still land)", res.DiskRepairs)
				}
				if res.LostRequests != 0 {
					t.Errorf("lost requests = %d, want 0 (spare covers the outage)", res.LostRequests)
				}
				if res.DegradedRequests == 0 {
					t.Error("requests waiting out the outage were not counted degraded")
				}
				if res.RebuildMB == 0 {
					t.Error("post-drain replacement did not rebuild its data")
				}
				if res.Duration < 60 {
					t.Errorf("duration = %.1f s, want ≥ 60 (run extends to the repair)", res.Duration)
				}
			},
		},
		{
			// Two distinct failures: the lifecycle hooks must fire
			// exactly once per failure and once per repair, per disk.
			name:    "hooks fire exactly once per failure",
			spares:  2,
			repairS: 4,
			events:  []faults.ScriptedEvent{{Disk: 0, At: 4}, {Disk: 2, At: 9}},
			check: func(t *testing.T, res *Result, pol *hookPolicy) {
				if res.DiskFailures != 2 || res.SparesUsed != 2 {
					t.Errorf("failures/spares = %d/%d, want 2/2", res.DiskFailures, res.SparesUsed)
				}
				for _, d := range []int{0, 2} {
					if pol.failures[d] != 1 {
						t.Errorf("OnDiskFailure(disk %d) fired %d times, want 1", d, pol.failures[d])
					}
					if pol.repairs[d] != 1 {
						t.Errorf("OnDiskRepair(disk %d) fired %d times, want 1", d, pol.repairs[d])
					}
				}
				if len(pol.failures) != 2 || len(pol.repairs) != 2 {
					t.Errorf("hooks touched disks %v / %v, want exactly {0, 2}", pol.failures, pol.repairs)
				}
				if len(res.FailureLog) != 2 {
					t.Fatalf("failure log has %d events, want 2", len(res.FailureLog))
				}
				if res.FailureLog[0].Time != 4 || res.FailureLog[1].Time != 9 {
					t.Errorf("failure times %v/%v, want 4/9",
						res.FailureLog[0].Time, res.FailureLog[1].Time)
				}
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ia := tc.interarrival
			if ia == 0 {
				ia = 0.01
			}
			tr := tinyTrace(t, 50, 2000, ia)
			pol := &hookPolicy{reassignOnFailure: tc.reassign}
			res, err := Run(Config{
				Disks:       4,
				Trace:       tr,
				Policy:      pol,
				Faults:      scriptedFaults(tc.repairS, tc.events...),
				Spares:      tc.spares,
				RebuildMBps: 200,
			})
			if err != nil {
				t.Fatal(err)
			}
			tc.check(t, res, pol)
			for d, n := range pol.failures {
				if n != 1 {
					t.Errorf("OnDiskFailure(disk %d) fired %d times, want 1", d, n)
				}
			}
			if pol.lateReassignErr == nil && len(pol.repairs) > 0 {
				t.Error("ReassignFile from OnDiskRepair was accepted; it must only work inside OnDiskFailure")
			}
		})
	}
}

// TestFaultsDisabledBitIdentical pins the acceptance criterion that the
// fault subsystem is invisible when off: a nil Faults config and an
// explicit Enabled:false config must both reproduce the pre-fault result
// exactly, event for event.
func TestFaultsDisabledBitIdentical(t *testing.T) {
	run := func(fc *faults.Config) *Result {
		t.Helper()
		tr := tinyTrace(t, 50, 2000, 0.01)
		res, err := Run(Config{Disks: 4, Trace: tr, Policy: &staticPolicy{}, Faults: fc, EpochSeconds: 5})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(nil)
	off := run(&faults.Config{Enabled: false, Seed: 99})
	if !reflect.DeepEqual(base, off) {
		t.Errorf("Enabled:false diverged from nil Faults:\n nil: %+v\n off: %+v", base, off)
	}
	if base.DiskFailures != 0 || base.FailureLog != nil {
		t.Errorf("fault counters set on a no-fault run: %+v", base)
	}
}

// TestFaultsDeterministicUnderSeed pins determinism of the stochastic
// path: with a fixed seed, two runs — failures, repairs, rebuilds and all —
// must be identical.
func TestFaultsDeterministicUnderSeed(t *testing.T) {
	run := func() *Result {
		t.Helper()
		tr := tinyTrace(t, 50, 2000, 0.01)
		fc := faults.Default()
		fc.Acceleration = 2e7 // ~12 effective years per disk over the ~20 s trace
		res, err := Run(Config{
			Disks:  4,
			Trace:  tr,
			Policy: &staticPolicy{},
			Faults: &fc,
			Spares: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run()
	b := run()
	if a.DiskFailures == 0 {
		t.Fatal("acceleration produced no failures; the determinism check is vacuous")
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different results:\n a: %+v\n b: %+v", a, b)
	}
}

package array

import (
	"math"
	"strings"
	"testing"

	"repro/internal/diskmodel"
	"repro/internal/workload"
)

// staticPolicy places files round-robin and keeps every disk at high speed.
type staticPolicy struct {
	initErr   error
	badTarget bool
}

func (p *staticPolicy) Name() string { return "static" }

func (p *staticPolicy) Init(ctx *Context) error {
	if p.initErr != nil {
		return p.initErr
	}
	for i, f := range ctx.Files() {
		if err := ctx.SetPlacement(f.ID, i%ctx.NumDisks()); err != nil {
			return err
		}
	}
	return nil
}

func (p *staticPolicy) TargetDisk(ctx *Context, fileID int) int {
	if p.badTarget {
		return 999
	}
	return ctx.Placement(fileID)
}

func (p *staticPolicy) OnRequestComplete(*Context, int, int) {}
func (p *staticPolicy) OnEpoch(*Context)                     {}
func (p *staticPolicy) OnIdleTimeout(*Context, int)          {}

// spinDownPolicy mimics the power-management skeleton: all disks idle down
// after H seconds and spin up on demand.
type spinDownPolicy struct {
	h        float64
	timeouts int
	spinUps  int
}

func (p *spinDownPolicy) Name() string { return "spindown" }

func (p *spinDownPolicy) Init(ctx *Context) error {
	for i, f := range ctx.Files() {
		if err := ctx.SetPlacement(f.ID, i%ctx.NumDisks()); err != nil {
			return err
		}
	}
	for d := 0; d < ctx.NumDisks(); d++ {
		ctx.SetIdleTimeout(d, p.h)
	}
	return nil
}

func (p *spinDownPolicy) TargetDisk(ctx *Context, fileID int) int {
	d := ctx.Placement(fileID)
	if ctx.DiskSpeed(d) == diskmodel.Low {
		p.spinUps++
		ctx.RequestTransition(d, diskmodel.High)
	}
	return d
}

func (p *spinDownPolicy) OnRequestComplete(*Context, int, int) {}
func (p *spinDownPolicy) OnEpoch(*Context)                     {}

func (p *spinDownPolicy) OnIdleTimeout(ctx *Context, d int) {
	p.timeouts++
	if ctx.DiskSpeed(d) == diskmodel.High {
		ctx.RequestTransition(d, diskmodel.Low)
	}
}

func tinyTrace(t *testing.T, files, requests int, interarrival float64) *workload.Trace {
	t.Helper()
	cfg := workload.DefaultGenConfig()
	cfg.NumFiles = files
	cfg.NumRequests = requests
	cfg.MeanInterarrival = interarrival
	tr, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRunStaticBasics(t *testing.T) {
	tr := tinyTrace(t, 50, 2000, 0.01)
	res, err := Run(Config{Disks: 4, Trace: tr, Policy: &staticPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 2000 {
		t.Fatalf("served %d requests, want 2000", res.Requests)
	}
	if res.MeanResponse <= 0 {
		t.Fatalf("mean response %v", res.MeanResponse)
	}
	if res.EnergyJ <= 0 {
		t.Fatalf("energy %v", res.EnergyJ)
	}
	if res.Duration <= 0 {
		t.Fatalf("duration %v", res.Duration)
	}
	if len(res.PerDisk) != 4 {
		t.Fatalf("per-disk results %d", len(res.PerDisk))
	}
	var reqSum int
	var energySum float64
	for _, d := range res.PerDisk {
		reqSum += d.RequestsServed
		energySum += d.EnergyJ
		if d.Transitions != 0 {
			t.Fatalf("static policy made %d transitions on disk %d", d.Transitions, d.ID)
		}
		if d.FinalSpeed != diskmodel.High {
			t.Fatalf("disk %d final speed %v", d.ID, d.FinalSpeed)
		}
		// All-high disks sit at the 50C steady state.
		if math.Abs(d.MeanTempC-50) > 1e-6 {
			t.Fatalf("disk %d mean temp %v, want 50", d.ID, d.MeanTempC)
		}
	}
	if reqSum != 2000 {
		t.Fatalf("per-disk request sum %d", reqSum)
	}
	if math.Abs(energySum-res.EnergyJ) > 1e-6 {
		t.Fatalf("per-disk energy sum %v != total %v", energySum, res.EnergyJ)
	}
	if res.ArrayAFR <= 0 {
		t.Fatalf("array AFR %v", res.ArrayAFR)
	}
	// Worst disk index consistent.
	if res.PerDisk[res.WorstDisk].AFR != res.ArrayAFR {
		t.Fatal("WorstDisk inconsistent with ArrayAFR")
	}
}

func TestRunResponseTimeAtLeastService(t *testing.T) {
	tr := tinyTrace(t, 10, 500, 1.0) // light load: no queueing
	res, err := Run(Config{Disks: 4, Trace: tr, Policy: &staticPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	p := diskmodel.DefaultParams()
	minService := p.PositioningTime(diskmodel.High)
	if res.MeanResponse < minService {
		t.Fatalf("mean response %v below positioning floor %v", res.MeanResponse, minService)
	}
	// With 1s inter-arrival and ~8ms services, queueing is negligible:
	// p99 should stay within a couple of service times.
	if res.P99Response > 10*minService+1 {
		t.Fatalf("p99 %v unexpectedly high for unloaded array", res.P99Response)
	}
}

func TestSpinDownAndOnDemandSpinUp(t *testing.T) {
	// 2 files on 2 disks, requests spaced far apart so disks idle down
	// between requests.
	files := workload.FileSet{
		{ID: 0, SizeMB: 1, AccessRate: 0.01},
		{ID: 1, SizeMB: 1, AccessRate: 0.01},
	}
	var reqs []workload.Request
	for i := 0; i < 10; i++ {
		reqs = append(reqs, workload.Request{Arrival: float64(i) * 300, FileID: i % 2})
	}
	tr := &workload.Trace{Files: files, Requests: reqs}
	pol := &spinDownPolicy{h: 60}
	res, err := Run(Config{Disks: 2, Trace: tr, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	if pol.timeouts == 0 {
		t.Fatal("idle timeout never fired")
	}
	if pol.spinUps == 0 {
		t.Fatal("no spin-ups despite spun-down disks")
	}
	totalTrans := 0
	for _, d := range res.PerDisk {
		totalTrans += d.Transitions
	}
	if totalTrans == 0 {
		t.Fatal("no transitions recorded")
	}
	// Requests that hit a spun-down disk must absorb the spin-up delay.
	p := diskmodel.DefaultParams()
	if res.MaxResponse < p.TransitionUpTime {
		t.Fatalf("max response %v does not include any spin-up delay %v",
			res.MaxResponse, p.TransitionUpTime)
	}
}

func TestSpinDownEnergySavings(t *testing.T) {
	// Mostly-idle workload: the spin-down policy must consume less energy
	// than always-on.
	files := workload.FileSet{{ID: 0, SizeMB: 1, AccessRate: 0.001}}
	var reqs []workload.Request
	for i := 0; i < 5; i++ {
		reqs = append(reqs, workload.Request{Arrival: float64(i) * 2000, FileID: 0})
	}
	tr := &workload.Trace{Files: files, Requests: reqs}
	still, err := Run(Config{Disks: 2, Trace: tr, Policy: &staticPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	saver, err := Run(Config{Disks: 2, Trace: tr, Policy: &spinDownPolicy{h: 100}})
	if err != nil {
		t.Fatal(err)
	}
	if saver.EnergyJ >= still.EnergyJ {
		t.Fatalf("spin-down energy %v not below always-on %v", saver.EnergyJ, still.EnergyJ)
	}
}

func TestMigrationMovesPlacement(t *testing.T) {
	files := workload.FileSet{
		{ID: 0, SizeMB: 10, AccessRate: 1},
		{ID: 1, SizeMB: 10, AccessRate: 1},
	}
	// Requests span several epochs: epochs only fire while the trace is
	// still delivering arrivals.
	var migReqs []workload.Request
	for i := 0; i < 12; i++ {
		migReqs = append(migReqs, workload.Request{Arrival: 0.5 + float64(i), FileID: 0})
	}
	tr := &workload.Trace{Files: files, Requests: migReqs}
	pol := &migratingPolicy{}
	res, err := Run(Config{Disks: 2, Trace: tr, Policy: pol, EpochSeconds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations != 1 {
		t.Fatalf("migrations = %d, want 1", res.Migrations)
	}
	if res.BackgroundOps != 2 {
		t.Fatalf("background ops = %d, want 2 (read+write)", res.BackgroundOps)
	}
	if !pol.moved {
		t.Fatal("placement never flipped to target disk")
	}
}

// migratingPolicy moves file 0 from disk 0 to disk 1 at the first epoch and
// verifies the placement flip on a later epoch.
type migratingPolicy struct {
	started bool
	moved   bool
}

func (p *migratingPolicy) Name() string { return "migrator" }

func (p *migratingPolicy) Init(ctx *Context) error {
	for _, f := range ctx.Files() {
		if err := ctx.SetPlacement(f.ID, 0); err != nil {
			return err
		}
	}
	return nil
}

func (p *migratingPolicy) TargetDisk(ctx *Context, fileID int) int {
	return ctx.Placement(fileID)
}

func (p *migratingPolicy) OnRequestComplete(*Context, int, int) {}
func (p *migratingPolicy) OnIdleTimeout(*Context, int)          {}

func (p *migratingPolicy) OnEpoch(ctx *Context) {
	if !p.started {
		p.started = true
		if !ctx.Migrate(0, 1) {
			panic("migration rejected")
		}
		// Double migration of the same file must be rejected.
		if ctx.Migrate(0, 1) {
			panic("concurrent duplicate migration accepted")
		}
		if !ctx.Migrating(0) {
			panic("Migrating(0) false during migration")
		}
		return
	}
	if ctx.Placement(0) == 1 {
		p.moved = true
	}
}

func TestPolicyErrors(t *testing.T) {
	tr := tinyTrace(t, 10, 100, 0.01)
	// Invalid target disk.
	_, err := Run(Config{Disks: 2, Trace: tr, Policy: &staticPolicy{badTarget: true}})
	if err == nil || !strings.Contains(err.Error(), "invalid disk") {
		t.Fatalf("bad target error = %v", err)
	}
	// Unplaced files.
	_, err = Run(Config{Disks: 2, Trace: tr, Policy: &lazyPolicy{}})
	if err == nil || !strings.Contains(err.Error(), "unplaced") {
		t.Fatalf("unplaced error = %v", err)
	}
}

type lazyPolicy struct{}

func (lazyPolicy) Name() string                         { return "lazy" }
func (lazyPolicy) Init(*Context) error                  { return nil }
func (lazyPolicy) TargetDisk(*Context, int) int         { return 0 }
func (lazyPolicy) OnRequestComplete(*Context, int, int) {}
func (lazyPolicy) OnEpoch(*Context)                     {}
func (lazyPolicy) OnIdleTimeout(*Context, int)          {}

func TestConfigValidation(t *testing.T) {
	tr := tinyTrace(t, 5, 10, 0.1)
	cases := []Config{
		{Disks: 1, Trace: tr, Policy: &staticPolicy{}},
		{Disks: 4, Trace: nil, Policy: &staticPolicy{}},
		{Disks: 4, Trace: tr, Policy: nil},
		{Disks: 4, Trace: tr, Policy: &staticPolicy{}, EpochSeconds: -1},
		{Disks: 4, Trace: tr, Policy: &staticPolicy{}, MaxQueue: -5},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestQueueOverflowAborts(t *testing.T) {
	// A single slow disk receiving a dense burst overflows a tiny queue
	// bound.
	files := workload.FileSet{{ID: 0, SizeMB: 100, AccessRate: 100}}
	var reqs []workload.Request
	for i := 0; i < 100; i++ {
		reqs = append(reqs, workload.Request{Arrival: float64(i) * 1e-4, FileID: 0})
	}
	tr := &workload.Trace{Files: files, Requests: reqs}
	_, err := Run(Config{Disks: 2, Trace: tr, Policy: &staticPolicy{}, MaxQueue: 10})
	if err == nil || !strings.Contains(err.Error(), "overload") {
		t.Fatalf("overflow error = %v", err)
	}
}

func TestEpochsFire(t *testing.T) {
	tr := tinyTrace(t, 20, 1000, 0.05) // ~50 s of trace
	res, err := Run(Config{Disks: 3, Trace: tr, Policy: &staticPolicy{}, EpochSeconds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs < 4 {
		t.Fatalf("epochs = %d, want >= 4 over ~50 s", res.Epochs)
	}
}

func TestEpochAccessCountsReset(t *testing.T) {
	files := workload.FileSet{{ID: 0, SizeMB: 1, AccessRate: 1}}
	var reqs []workload.Request
	// 5 requests in epoch 1 (t<10), then a lone straggler in epoch 3 to
	// keep the trace (and hence epochs) alive.
	for i := 0; i < 5; i++ {
		reqs = append(reqs, workload.Request{Arrival: float64(i) + 1, FileID: 0})
	}
	reqs = append(reqs, workload.Request{Arrival: 25, FileID: 0})
	tr := &workload.Trace{Files: files, Requests: reqs}
	pol := &countingPolicy{}
	if _, err := Run(Config{Disks: 2, Trace: tr, Policy: pol, EpochSeconds: 10}); err != nil {
		t.Fatal(err)
	}
	if len(pol.epochCounts) < 2 {
		t.Fatalf("observed %d epochs, want >= 2", len(pol.epochCounts))
	}
	if pol.epochCounts[0] != 5 {
		t.Fatalf("epoch 1 count = %d, want 5", pol.epochCounts[0])
	}
	if pol.epochCounts[1] != 0 {
		t.Fatalf("epoch 2 count = %d, want 0 (reset failed)", pol.epochCounts[1])
	}
}

type countingPolicy struct {
	epochCounts []int
}

func (p *countingPolicy) Name() string { return "counter" }

func (p *countingPolicy) Init(ctx *Context) error {
	for _, f := range ctx.Files() {
		if err := ctx.SetPlacement(f.ID, 0); err != nil {
			return err
		}
	}
	return nil
}

func (p *countingPolicy) TargetDisk(ctx *Context, fileID int) int { return ctx.Placement(fileID) }
func (p *countingPolicy) OnRequestComplete(*Context, int, int)    {}
func (p *countingPolicy) OnIdleTimeout(*Context, int)             {}

func (p *countingPolicy) OnEpoch(ctx *Context) {
	p.epochCounts = append(p.epochCounts, ctx.AccessCount(0))
}

func TestSetPlacementRestrictions(t *testing.T) {
	tr := tinyTrace(t, 5, 50, 0.01)
	pol := &placementAbuser{}
	if _, err := Run(Config{Disks: 2, Trace: tr, Policy: pol, EpochSeconds: 0.1}); err != nil {
		t.Fatal(err)
	}
	if !pol.rejected {
		t.Fatal("late SetPlacement was not rejected")
	}
}

type placementAbuser struct {
	rejected bool
	tried    bool
}

func (p *placementAbuser) Name() string { return "abuser" }

func (p *placementAbuser) Init(ctx *Context) error {
	for _, f := range ctx.Files() {
		if err := ctx.SetPlacement(f.ID, 0); err != nil {
			return err
		}
	}
	if err := ctx.SetPlacement(-42, 0); err == nil {
		return nil // unknown file must error; caught by rejected staying false
	}
	if err := ctx.SetPlacement(ctx.Files()[0].ID, 99); err == nil {
		return nil
	}
	return nil
}

func (p *placementAbuser) TargetDisk(ctx *Context, fileID int) int { return ctx.Placement(fileID) }
func (p *placementAbuser) OnRequestComplete(*Context, int, int)    {}
func (p *placementAbuser) OnIdleTimeout(*Context, int)             {}

func (p *placementAbuser) OnEpoch(ctx *Context) {
	if p.tried {
		return
	}
	p.tried = true
	if err := ctx.SetPlacement(ctx.Files()[0].ID, 1); err != nil {
		p.rejected = true
	}
}

func TestMigrateRejections(t *testing.T) {
	tr := tinyTrace(t, 5, 20, 0.05)
	pol := &migrateRejectPolicy{}
	if _, err := Run(Config{Disks: 2, Trace: tr, Policy: pol, EpochSeconds: 0.2}); err != nil {
		t.Fatal(err)
	}
	if !pol.checked {
		t.Fatal("rejection checks never ran")
	}
}

type migrateRejectPolicy struct {
	checked bool
}

func (p *migrateRejectPolicy) Name() string { return "migrate-reject" }

func (p *migrateRejectPolicy) Init(ctx *Context) error {
	for _, f := range ctx.Files() {
		if err := ctx.SetPlacement(f.ID, 0); err != nil {
			return err
		}
	}
	return nil
}

func (p *migrateRejectPolicy) TargetDisk(ctx *Context, fileID int) int { return ctx.Placement(fileID) }
func (p *migrateRejectPolicy) OnRequestComplete(*Context, int, int)    {}
func (p *migrateRejectPolicy) OnIdleTimeout(*Context, int)             {}

func (p *migrateRejectPolicy) OnEpoch(ctx *Context) {
	if p.checked {
		return
	}
	p.checked = true
	id := ctx.Files()[0].ID
	if ctx.Migrate(id, 0) {
		panic("migration to current disk accepted")
	}
	if ctx.Migrate(-1, 1) {
		panic("migration of unknown file accepted")
	}
	if ctx.Migrate(id, 99) {
		panic("migration to invalid disk accepted")
	}
}

func TestDeterministicRuns(t *testing.T) {
	tr := tinyTrace(t, 100, 5000, 0.005)
	run := func() *Result {
		res, err := Run(Config{Disks: 5, Trace: tr, Policy: &spinDownPolicy{h: 1}, EpochSeconds: 5})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.MeanResponse != b.MeanResponse || a.EnergyJ != b.EnergyJ || a.ArrayAFR != b.ArrayAFR {
		t.Fatalf("runs diverge: %+v vs %+v", a, b)
	}
}

func TestEmptyTraceRuns(t *testing.T) {
	tr := &workload.Trace{Files: workload.FileSet{{ID: 0, SizeMB: 1}}}
	res, err := Run(Config{Disks: 2, Trace: tr, Policy: &staticPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 0 {
		t.Fatalf("requests = %d", res.Requests)
	}
}

func TestContextAccessors(t *testing.T) {
	tr := tinyTrace(t, 8, 50, 0.01)
	pol := &accessorPolicy{t: t}
	if _, err := Run(Config{Disks: 3, Trace: tr, Policy: pol}); err != nil {
		t.Fatal(err)
	}
	if !pol.ran {
		t.Fatal("accessor checks never ran")
	}
}

type accessorPolicy struct {
	t   *testing.T
	ran bool
}

func (p *accessorPolicy) Name() string { return "accessors" }

func (p *accessorPolicy) Init(ctx *Context) error {
	if ctx.NumDisks() != 3 {
		p.t.Error("NumDisks mismatch")
	}
	if ctx.Placement(ctx.Files()[0].ID) != -1 {
		p.t.Error("unplaced file should report -1")
	}
	for _, f := range ctx.Files() {
		if err := ctx.SetPlacement(f.ID, 0); err != nil {
			return err
		}
	}
	if _, ok := ctx.File(ctx.Files()[0].ID); !ok {
		p.t.Error("File lookup failed")
	}
	if _, ok := ctx.File(-99); ok {
		p.t.Error("File lookup of unknown id succeeded")
	}
	if ctx.DiskState(0) != diskmodel.Idle {
		p.t.Error("initial state not idle")
	}
	if _, ok := ctx.PendingSpeed(0); ok {
		p.t.Error("phantom pending speed")
	}
	ctx.SetIdleTimeout(0, -5)
	if ctx.IdleTimeout(0) != 0 {
		p.t.Error("negative timeout not clamped")
	}
	return nil
}

func (p *accessorPolicy) TargetDisk(ctx *Context, fileID int) int {
	if !p.ran {
		p.ran = true
		if ctx.DiskQueueLen(0) != 0 {
			p.t.Error("queue should be empty before first dispatch")
		}
		if ctx.DiskUtilization(0) < 0 {
			p.t.Error("negative utilization")
		}
		if ctx.DiskTransitions(0) != 0 {
			p.t.Error("phantom transitions")
		}
	}
	return ctx.Placement(fileID)
}

func (p *accessorPolicy) OnRequestComplete(*Context, int, int) {}
func (p *accessorPolicy) OnEpoch(*Context)                     {}
func (p *accessorPolicy) OnIdleTimeout(*Context, int)          {}

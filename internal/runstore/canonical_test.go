package runstore

import (
	"strings"
	"testing"
)

func TestCanonicalJSONSortsKeys(t *testing.T) {
	a := map[string]any{"b": 1, "a": 2, "c": map[string]any{"z": 1, "y": 2}}
	got, err := CanonicalJSON(a)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"a":2,"b":1,"c":{"y":2,"z":1}}`
	if string(got) != want {
		t.Fatalf("canonical form %s, want %s", got, want)
	}
}

func TestDigestIgnoresFieldOrder(t *testing.T) {
	type ab struct {
		A int     `json:"a"`
		B float64 `json:"b"`
	}
	type ba struct {
		B float64 `json:"b"`
		A int     `json:"a"`
	}
	d1, err := Digest(ab{A: 1, B: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Digest(ba{B: 2.5, A: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("digests differ across field order: %s vs %s", d1, d2)
	}
	if len(d1) != 64 || strings.ToLower(d1) != d1 {
		t.Fatalf("digest %q is not lowercase hex sha-256", d1)
	}
}

func TestDigestSeparatesConfigs(t *testing.T) {
	type cfg struct {
		Seed int64 `json:"seed"`
	}
	d1, err := Digest(cfg{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Digest(cfg{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d1 == d2 {
		t.Fatal("different configs share a digest")
	}
}

func TestDigestPreservesFloatPrecision(t *testing.T) {
	// Two nearby but distinct floats must not collapse to one digest via
	// lossy number re-formatting.
	d1, err := Digest(map[string]float64{"x": 0.1})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Digest(map[string]float64{"x": 0.1 + 1e-16})
	if err != nil {
		t.Fatal(err)
	}
	if (0.1 != 0.1+1e-16) && d1 == d2 {
		t.Fatal("distinct floats share a digest")
	}
	// And the same value always digests the same.
	d3, err := Digest(map[string]float64{"x": 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d3 {
		t.Fatal("digest not deterministic")
	}
}

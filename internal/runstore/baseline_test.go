package runstore

import (
	"path/filepath"
	"testing"
)

func TestBaselineCheckRoundTrip(t *testing.T) {
	m := testManifest(t, "fig7-light", 1)
	bf := BaselineFromManifests([]*Manifest{m}, 0.01, "2026-08-06", "go run ./cmd/experiments")
	path := filepath.Join(t.TempDir(), "BENCH_runs.json")
	if err := WriteBaselineFile(path, bf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadBaselineFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.DefaultTolerance != 0.01 || len(loaded.Runs) != 1 {
		t.Fatalf("baseline round-trip: %+v", loaded)
	}

	// A fresh identical run passes.
	res, err := loaded.Check(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Breached() || res.ConfigDrift {
		t.Fatalf("identical run breached: %+v", res)
	}

	// A drifted metric beyond tolerance fails.
	bad := testManifest(t, "fig7-light", 1)
	bad.Summary.EnergyJ *= 1.05
	res, err = loaded.Check(bad)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Breached() {
		t.Fatal("5% energy drift passed a 1% gate")
	}

	// Within tolerance passes.
	ok := testManifest(t, "fig7-light", 1)
	ok.Summary.EnergyJ *= 1.005
	res, err = loaded.Check(ok)
	if err != nil {
		t.Fatal(err)
	}
	if res.Breached() {
		t.Fatal("0.5% energy drift failed a 1% gate")
	}
}

func TestBaselineCheckReportsConfigDrift(t *testing.T) {
	m := testManifest(t, "cond", 1)
	bf := BaselineFromManifests([]*Manifest{m}, 0.01, "", "")
	perturbed := testManifest(t, "cond", 99) // different seed → different digest
	res, err := bf.Check(perturbed)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ConfigDrift {
		t.Fatal("config drift not detected for a different seed")
	}
}

func TestBaselineCheckUnknownRunErrors(t *testing.T) {
	bf := BaselineFromManifests(nil, 0.01, "", "")
	if _, err := bf.Check(testManifest(t, "new-condition", 1)); err == nil {
		t.Fatal("expected error for a run without a baseline entry")
	}
}

func TestBaselinePerMetricTolerance(t *testing.T) {
	m := testManifest(t, "cond", 1)
	bf := BaselineFromManifests([]*Manifest{m}, 0.001, "", "")
	bf.Runs[0].Tolerances = map[string]float64{"energy_j": 0.1}
	drifted := testManifest(t, "cond", 1)
	drifted.Summary.EnergyJ *= 1.05 // 5%: over default, under per-metric override
	res, err := bf.Check(drifted)
	if err != nil {
		t.Fatal(err)
	}
	if res.Breached() {
		t.Fatal("per-metric tolerance override not applied")
	}
}

package runstore

import (
	"encoding/xml"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleCSV = `t,epoch,disk,util,temp_c,speed,transitions,afr_pct,queue,energy_j
100,0,0,0.5,42,high,1,12.5,0,1000
100,0,1,0.2,40,low,0,11.0,1,800
200,1,0,0.55,42.5,high,2,12.7,0,2100
200,1,1,0.25,40.2,low,1,11.1,0,1650
`

func TestLoadSeries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disks.csv")
	if err := os.WriteFile(path, []byte(sampleCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	series, err := LoadSeries(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("got %d disks, want 2", len(series))
	}
	d0 := series[0]
	if d0.Disk != 0 || len(d0.T) != 2 || d0.T[1] != 200 || d0.Util[1] != 0.55 ||
		d0.AFRPct[0] != 12.5 || d0.EnergyJ[1] != 2100 {
		t.Fatalf("disk 0 series wrong: %+v", d0)
	}
}

func TestLoadSeriesRejectsMissingColumns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disks.csv")
	if err := os.WriteFile(path, []byte("t,disk\n1,0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSeries(path); err == nil {
		t.Fatal("expected error for missing columns")
	}
}

func TestWriteHTMLReport(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := testManifest(t, "demo<run>", 1) // name needs escaping
	dir, err := st.RunDir(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "disks.csv"), []byte(sampleCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Write(m); err != nil {
		t.Fatal(err)
	}
	run, err := LoadReportRun(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Series) != 2 {
		t.Fatalf("report run loaded %d series, want 2", len(run.Series))
	}

	var buf strings.Builder
	if err := WriteHTMLReport(&buf, "test report", []*ReportRun{run}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "polyline", "array AFR", "demo&lt;run&gt;"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report lacks %q:\n%.500s", want, out)
		}
	}
	if strings.Contains(out, "demo<run>") {
		t.Fatal("run name not HTML-escaped")
	}
	// The report must be well-formed markup: every inline SVG parses as XML.
	for _, chunk := range strings.Split(out, "<svg")[1:] {
		end := strings.Index(chunk, "</svg>")
		if end < 0 {
			t.Fatal("unterminated svg element")
		}
		svg := "<svg" + chunk[:end+len("</svg>")]
		dec := xml.NewDecoder(strings.NewReader(svg))
		for {
			_, err := dec.Token()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("svg not well-formed: %v\n%.300s", err, svg)
			}
		}
	}
}

func TestWriteHTMLReportNoSeries(t *testing.T) {
	m := testManifest(t, "bare", 1)
	var buf strings.Builder
	if err := WriteHTMLReport(&buf, "bare", []*ReportRun{{Manifest: m}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bare") {
		t.Fatal("report missing run row")
	}
}

// TestWriteHTMLReportFleetColumns checks the fleet routing-tier columns
// appear exactly when a run is a fleet, mirroring the ShowReliability
// gating: single-array reports are unchanged.
func TestWriteHTMLReportFleetColumns(t *testing.T) {
	single := testManifest(t, "solo", 1)
	var buf strings.Builder
	if err := WriteHTMLReport(&buf, "r", []*ReportRun{{Manifest: single}}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<th>failovers</th>") {
		t.Fatal("fleet columns shown for a non-fleet report")
	}

	fleet := testManifest(t, "fleet", 2)
	fleet.Summary.FleetOn = true
	fleet.Summary.FleetArrays = 4
	fleet.Summary.FleetRetries = 12
	fleet.Summary.FleetHedges = 3
	fleet.Summary.FleetFailovers = 2
	fleet.Summary.FleetTimeouts = 15
	fleet.Summary.FleetShed = 5
	fleet.Summary.FleetFailedRequests = 1
	fleet.Summary.FleetShocks = 6
	buf.Reset()
	if err := WriteHTMLReport(&buf, "r", []*ReportRun{{Manifest: single}, {Manifest: fleet}}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<th>arrays</th>", "<th>retries</th>", "<th>hedges</th>",
		"<th>failovers</th>", "<th>timeouts</th>", "<th>shed</th>",
		"<th>failed</th>", "<th>shocks</th>",
		"<td>4</td>", "<td>12</td>",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("fleet report lacks %q", want)
		}
	}
	// The non-fleet row renders dashes under the fleet columns.
	if !strings.Contains(out, "<td>-</td>") {
		t.Fatal("non-fleet row should render '-' in fleet columns")
	}
}

package runstore

import (
	"strings"
	"testing"

	"repro/internal/array"
)

func TestSummaryFromResult(t *testing.T) {
	r := &array.Result{
		EnergyJ:      5000,
		ArrayAFR:     12.5,
		MeanResponse: 0.01,
		P50Response:  0.006,
		P95Response:  0.03,
		P99Response:  0.08,
		Requests:     1000,
		EventsFired:  4321,
		PerDisk: []array.DiskResult{
			{TransitionsPerDay: 10},
			{TransitionsPerDay: 30},
		},
		DiskFailures:   2,
		DataLossEvents: 1,
		MTTDLHours:     3.5,
	}
	s := SummaryFromResult(r, false)
	if s.TransitionsPerDay != 20 {
		t.Fatalf("transitions/day %v, want mean 20", s.TransitionsPerDay)
	}
	if s.FaultsOn || s.DiskFailures != 0 {
		t.Fatal("faults-off summary leaked fault metrics")
	}
	if _, ok := s.Metrics()["disk_failures"]; ok {
		t.Fatal("faults-off metrics map includes disk_failures")
	}

	s = SummaryFromResult(r, true)
	if !s.FaultsOn || s.DiskFailures != 2 || s.MTTDLHours != 3.5 {
		t.Fatalf("faults-on summary wrong: %+v", s)
	}
	m := s.Metrics()
	if m["disk_failures"] != 2 || m["energy_j"] != 5000 || m["p50_response_s"] != 0.006 {
		t.Fatalf("metrics map wrong: %v", m)
	}
	if len(m) != 14 {
		t.Fatalf("metrics map has %d entries, want 14", len(m))
	}
}

func TestNewManifestStampsDigestAndBuild(t *testing.T) {
	m, err := New("arraysim", "demo", testConfig{Policy: "maid", Disks: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if m.Schema != SchemaVersion || m.Tool != "arraysim" || m.Name != "demo" {
		t.Fatalf("manifest header wrong: %+v", m)
	}
	if len(m.ConfigDigest) != 64 {
		t.Fatalf("digest %q not sha-256 hex", m.ConfigDigest)
	}
	if m.Build.GoVersion == "" {
		t.Fatal("build info missing")
	}
	if !strings.Contains(string(m.Config), `"policy":"maid"`) {
		t.Fatalf("config not embedded: %s", m.Config)
	}
	if !strings.HasPrefix(m.ID(), "demo-") || len(m.ID()) != len("demo-")+12 {
		t.Fatalf("ID %q not name-digest12", m.ID())
	}
}

func TestVersionLine(t *testing.T) {
	line := VersionLine("tracegen")
	if !strings.HasPrefix(line, "tracegen: ") || !strings.Contains(line, "go1") {
		t.Fatalf("version line %q", line)
	}
}

// TestSummaryMetricsFleetGating mirrors the faults-on gating test for the
// fleet block: fleet keys appear in the flattened metric map only when
// FleetOn is set, so single-array baselines never grow fleet keys.
func TestSummaryMetricsFleetGating(t *testing.T) {
	s := Summary{EnergyJ: 100, Requests: 10, FleetRetries: 5}
	if _, ok := s.Metrics()["fleet_retries"]; ok {
		t.Fatal("fleet-off metrics map includes fleet_retries")
	}
	s.FleetOn = true
	s.FleetArrays = 4
	s.FleetServed = 9
	s.FleetHedges = 2
	s.FleetFailovers = 1
	s.FleetTimeouts = 7
	s.FleetDeferred = 3
	s.FleetShed = 1
	s.FleetFailedRequests = 1
	s.FleetShocks = 6
	s.FleetLostRequests = 2
	s.FleetHedgeWins = 1
	m := s.Metrics()
	for k, want := range map[string]float64{
		"fleet_arrays": 4, "fleet_served": 9, "fleet_retries": 5,
		"fleet_hedges": 2, "fleet_hedge_wins": 1, "fleet_failovers": 1,
		"fleet_timeouts": 7, "fleet_deferred": 3, "fleet_shed": 1,
		"fleet_failed_requests": 1, "fleet_shocks": 6, "fleet_lost_requests": 2,
	} {
		if m[k] != want {
			t.Fatalf("metric %s = %v, want %v", k, m[k], want)
		}
	}
}

package runstore

import (
	"runtime"
	"time"
)

// PerfSample is one self-performance accounting record: how fast one run (or
// one sweep cell) executed and what it cost the Go runtime. Perf data rides
// in the manifest's `perf` section, *outside* Summary — like Attribution, it
// never joins the diffed metric set, so two bit-identical simulations with
// different wall-clocks still diff clean at tolerance 0.
type PerfSample struct {
	// WallSeconds is the wall-clock duration of the run.
	WallSeconds float64 `json:"wall_seconds"`
	// SimSeconds is the virtual time simulated.
	SimSeconds float64 `json:"sim_seconds,omitempty"`
	// Events is the DES event count executed.
	Events float64 `json:"events,omitempty"`
	// EventsPerWallSecond is the simulated-event throughput.
	EventsPerWallSecond float64 `json:"events_per_wall_second,omitempty"`
	// AllocBytes / Mallocs are runtime.MemStats deltas (TotalAlloc,
	// Mallocs) across the run.
	AllocBytes float64 `json:"alloc_bytes,omitempty"`
	Mallocs    float64 `json:"mallocs,omitempty"`
	// GCPauseSeconds / GCCycles are the GC stop-the-world pause total and
	// completed-cycle count accrued during the run.
	GCPauseSeconds float64 `json:"gc_pause_seconds,omitempty"`
	GCCycles       float64 `json:"gc_cycles,omitempty"`
	// SharedProcess marks samples taken while other work shared the
	// process — parallel sweep cells overlap, and runtime.MemStats is
	// process-wide, so their memory/GC deltas are upper bounds, not
	// exclusive attributions. Wall-clock and event counts remain exact.
	SharedProcess bool `json:"shared_process,omitempty"`
}

// Perf is the manifest's self-performance section: one sample for the whole
// run/sweep and, for sweeps, one per cell keyed like the Summary.Extra cell
// metrics ("<policy>[.<raid>].<disks>").
type Perf struct {
	Run   *PerfSample           `json:"run,omitempty"`
	Cells map[string]PerfSample `json:"cells,omitempty"`
}

// PerfCapture marks the start of a measured region. Value semantics: copy it
// per cell, call Sample at the end.
type PerfCapture struct {
	start time.Time
	ms    runtime.MemStats
}

// StartPerf snapshots the wall clock and runtime stats at region entry.
func StartPerf() PerfCapture {
	var c PerfCapture
	c.start = time.Now()
	runtime.ReadMemStats(&c.ms)
	return c
}

// Sample closes the region: wall-clock elapsed, simulated time and events
// attributed to it, and the runtime deltas since StartPerf. sharedProcess
// should be true when other work (parallel cells) ran concurrently.
func (c PerfCapture) Sample(simSeconds float64, events uint64, sharedProcess bool) PerfSample {
	wall := time.Since(c.start).Seconds()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := PerfSample{
		WallSeconds:    wall,
		SimSeconds:     simSeconds,
		Events:         float64(events),
		AllocBytes:     float64(ms.TotalAlloc - c.ms.TotalAlloc),
		Mallocs:        float64(ms.Mallocs - c.ms.Mallocs),
		GCPauseSeconds: float64(ms.PauseTotalNs-c.ms.PauseTotalNs) / 1e9,
		GCCycles:       float64(ms.NumGC - c.ms.NumGC),
		SharedProcess:  sharedProcess,
	}
	if wall > 0 {
		s.EventsPerWallSecond = s.Events / wall
	}
	return s
}

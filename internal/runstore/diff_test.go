package runstore

import (
	"strings"
	"testing"
)

func baseSummary() Summary {
	return Summary{
		EnergyJ:           2.5e6,
		ArrayAFRPct:       13.0,
		MeanResponseS:     0.008,
		P50ResponseS:      0.005,
		P95ResponseS:      0.02,
		P99ResponseS:      0.05,
		TransitionsPerDay: 42,
		Requests:          50000,
		EventsFired:       123456,
	}
}

func TestDiffIdenticalSummariesIsClean(t *testing.T) {
	a, b := baseSummary(), baseSummary()
	deltas := Diff(a, b, Tolerances{}) // zero tolerance: exact equality demanded
	if n := Breaches(deltas); n != 0 {
		t.Fatalf("identical summaries produced %d breaches: %+v", n, deltas)
	}
	for _, d := range deltas {
		if d.Rel != 0 {
			t.Fatalf("metric %s has nonzero rel delta %v on identical inputs", d.Metric, d.Rel)
		}
	}
	if len(deltas) != 11 {
		t.Fatalf("compared %d metrics, want 11", len(deltas))
	}
}

func TestDiffDetectsDriftUnderDefaultTolerance(t *testing.T) {
	a, b := baseSummary(), baseSummary()
	b.EnergyJ *= 1.001 // 0.1% drift
	deltas := Diff(a, b, Tolerances{})
	if n := Breaches(deltas); n != 1 {
		t.Fatalf("expected exactly 1 breach, got %d", n)
	}
	for _, d := range deltas {
		if d.Metric == "energy_j" && !d.Breach {
			t.Fatal("energy drift not flagged")
		}
	}
}

func TestDiffRespectsTolerances(t *testing.T) {
	a, b := baseSummary(), baseSummary()
	b.EnergyJ *= 1.01  // 1% drift
	b.ArrayAFRPct *= 2 // 50% rel drift
	tol := Tolerances{Default: 0.02, PerMetric: map[string]float64{"array_afr_pct": 0.6}}
	deltas := Diff(a, b, tol)
	if n := Breaches(deltas); n != 0 {
		t.Fatalf("tolerances not honoured: %d breaches", n)
	}
	tol.PerMetric["array_afr_pct"] = 0.1
	if n := Breaches(Diff(a, b, tol)); n != 1 {
		t.Fatalf("tightened per-metric tolerance should breach once, got %d", n)
	}
}

func TestDiffFlagsOneSidedMetrics(t *testing.T) {
	a, b := baseSummary(), baseSummary()
	b.FaultsOn = true
	b.DiskFailures = 3
	deltas := Diff(a, b, Tolerances{Default: 1e9}) // huge tolerance: only set-mismatch can breach
	breached := map[string]string{}
	for _, d := range deltas {
		if d.Breach {
			breached[d.Metric] = d.MissingIn
		}
	}
	for _, want := range []string{"disk_failures", "data_loss_events", "mttdl_hours"} {
		if breached[want] != "a" {
			t.Fatalf("metric %s missing-in-a not flagged (breached=%v)", want, breached)
		}
	}
}

func TestDiffExtraMetrics(t *testing.T) {
	a, b := baseSummary(), baseSummary()
	a.Extra = map[string]float64{"cell.read.6.energy_j": 100}
	b.Extra = map[string]float64{"cell.read.6.energy_j": 100}
	if n := Breaches(Diff(a, b, Tolerances{})); n != 0 {
		t.Fatalf("equal extras breached: %d", n)
	}
	b.Extra["cell.read.6.energy_j"] = 101
	if n := Breaches(Diff(a, b, Tolerances{})); n != 1 {
		t.Fatalf("drifted extra not flagged: %d breaches", n)
	}
}

func TestRelDeltaEdgeCases(t *testing.T) {
	cases := []struct {
		a, b, want float64
	}{
		{0, 0, 0},
		{1, 1, 0},
		{0, 1, 1},
		{1, 0, 1},
		{100, 110, 10.0 / 110},
		{-10, 10, 2},
	}
	for _, c := range cases {
		if got := relDelta(c.a, c.b); got != c.want {
			t.Errorf("relDelta(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestRenderDeltas(t *testing.T) {
	a, b := baseSummary(), baseSummary()
	b.EnergyJ *= 2
	var buf strings.Builder
	RenderDeltas(&buf, Diff(a, b, Tolerances{}), false)
	out := buf.String()
	if !strings.Contains(out, "energy_j") || !strings.Contains(out, "1 breach(es)") {
		t.Fatalf("unexpected render:\n%s", out)
	}
}

func TestBreachedMetricsNamesTheKeys(t *testing.T) {
	a, b := baseSummary(), baseSummary()
	b.EnergyJ *= 2
	b.Extra = map[string]float64{"cell.read.6.attempts": 2}
	got := BreachedMetrics(Diff(a, b, Tolerances{}))
	want := []string{"cell.read.6.attempts", "energy_j"}
	if len(got) != len(want) {
		t.Fatalf("breached keys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("breached keys = %v, want %v (sorted)", got, want)
		}
	}
	if n := BreachedMetrics(Diff(a, a, Tolerances{})); len(n) != 0 {
		t.Fatalf("clean diff returned breached keys %v", n)
	}
}

package runstore

import (
	"encoding/json"
	"fmt"

	"repro/internal/array"
	"repro/internal/telemetry"
)

// SchemaVersion is the manifest schema this package writes. Readers accept
// only matching versions; bump it on any breaking field change.
const SchemaVersion = 1

// ManifestName is the file every run directory carries.
const ManifestName = "manifest.json"

// Summary is the manifest's summary-metrics block: the headline scalars of
// one run, flattened so they can be diffed metric-by-metric across runs.
// Fault metrics are omitted when faults were off (omitempty), so a
// faults-on/faults-off pair diffs as a metric-set mismatch, not as zeros.
type Summary struct {
	// EnergyJ is the total array energy over the run, in joules.
	EnergyJ float64 `json:"energy_j"`
	// ArrayAFRPct is the PRESS array AFR (worst disk), in percent.
	ArrayAFRPct float64 `json:"array_afr_pct"`
	// Response-time statistics over user requests, in seconds.
	MeanResponseS float64 `json:"mean_response_s"`
	P50ResponseS  float64 `json:"p50_response_s"`
	P95ResponseS  float64 `json:"p95_response_s"`
	P99ResponseS  float64 `json:"p99_response_s"`
	P999ResponseS float64 `json:"p999_response_s"`
	MaxResponseS  float64 `json:"max_response_s"`
	// TransitionsPerDay is the mean per-disk speed-transition rate.
	TransitionsPerDay float64 `json:"transitions_per_day"`
	// Requests is the number of user requests served.
	Requests float64 `json:"requests"`
	// EventsFired is the exact DES event count — a cheap witness of
	// bit-identical determinism between two runs.
	EventsFired float64 `json:"events_fired"`

	// FaultsOn records whether fault injection was enabled; the fault
	// metrics below participate in diffs only when it was, so a faults-off
	// run never gates on them.
	FaultsOn       bool    `json:"faults_on,omitempty"`
	DiskFailures   float64 `json:"disk_failures,omitempty"`
	DataLossEvents float64 `json:"data_loss_events,omitempty"`
	MTTDLHours     float64 `json:"mttdl_hours,omitempty"`

	// LSEOn / RAIDOn gate the latent-sector-error and RAID-organization
	// metrics the same way FaultsOn gates the fault metrics: a run without
	// the feature never diffs against them.
	LSEOn          bool    `json:"lse_on,omitempty"`
	LSEErrors      float64 `json:"lse_errors,omitempty"`
	LSECleared     float64 `json:"lse_cleared,omitempty"`
	Scrubs         float64 `json:"scrubs,omitempty"`
	RAIDOn         bool    `json:"raid_on,omitempty"`
	RAIDLossEvents float64 `json:"raid_loss_events,omitempty"`
	MTTDLEstHours  float64 `json:"mttdl_est_hours,omitempty"`

	// FleetOn gates the multi-array cluster metrics: the routing tier's
	// resilience counters exist only when a run simulated a fleet, so a
	// single-array run never diffs against them. FleetLostRequests counts
	// member-level losses BEFORE failover recovery; FleetFailedRequests
	// counts requests the fleet ultimately failed to serve.
	FleetOn             bool    `json:"fleet_on,omitempty"`
	FleetArrays         float64 `json:"fleet_arrays,omitempty"`
	FleetServed         float64 `json:"fleet_served,omitempty"`
	FleetRetries        float64 `json:"fleet_retries,omitempty"`
	FleetHedges         float64 `json:"fleet_hedges,omitempty"`
	FleetHedgeWins      float64 `json:"fleet_hedge_wins,omitempty"`
	FleetFailovers      float64 `json:"fleet_failovers,omitempty"`
	FleetTimeouts       float64 `json:"fleet_timeouts,omitempty"`
	FleetDeferred       float64 `json:"fleet_deferred,omitempty"`
	FleetShed           float64 `json:"fleet_shed,omitempty"`
	FleetFailedRequests float64 `json:"fleet_failed_requests,omitempty"`
	FleetShocks         float64 `json:"fleet_shocks,omitempty"`
	FleetLostRequests   float64 `json:"fleet_lost_requests,omitempty"`

	// Extra holds additional named metrics (e.g. per-cell values of a sweep
	// condition, keyed "cell.<policy>.<disks>.<metric>"). Extra keys must not
	// collide with the JSON names of the fixed fields above.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// SummaryFromResult condenses one simulation result into the manifest
// summary block. faultsOn records the fault metrics even when their values
// are zero, so a faults-on run with no observed failures still declares that
// failures were possible.
func SummaryFromResult(r *array.Result, faultsOn bool) Summary {
	s := Summary{
		EnergyJ:       r.EnergyJ,
		ArrayAFRPct:   r.ArrayAFR,
		MeanResponseS: r.MeanResponse,
		P50ResponseS:  r.P50Response,
		P95ResponseS:  r.P95Response,
		P99ResponseS:  r.P99Response,
		P999ResponseS: r.P999Response,
		MaxResponseS:  r.MaxResponse,
		Requests:      float64(r.Requests),
		EventsFired:   float64(r.EventsFired),
	}
	for _, d := range r.PerDisk {
		s.TransitionsPerDay += d.TransitionsPerDay
	}
	if len(r.PerDisk) > 0 {
		s.TransitionsPerDay /= float64(len(r.PerDisk))
	}
	if faultsOn {
		s.FaultsOn = true
		s.DiskFailures = float64(r.DiskFailures)
		s.DataLossEvents = float64(r.DataLossEvents)
		s.MTTDLHours = r.MTTDLHours
		if r.LSEModeled {
			s.LSEOn = true
			s.LSEErrors = float64(r.LSEErrors)
			s.LSECleared = float64(r.LSECleared)
			s.Scrubs = float64(r.Scrubs)
		}
		if r.RAIDLevel != "" {
			s.RAIDOn = true
			s.RAIDLossEvents = float64(r.RAIDDataLossEvents)
			s.MTTDLEstHours = r.MTTDLEstHours
		}
	}
	return s
}

// Metrics flattens the summary into name → value for diffing: the fixed
// metrics, the fault metrics when FaultsOn, and Extra merged in.
func (s Summary) Metrics() map[string]float64 {
	out := map[string]float64{
		"energy_j":            s.EnergyJ,
		"array_afr_pct":       s.ArrayAFRPct,
		"mean_response_s":     s.MeanResponseS,
		"p50_response_s":      s.P50ResponseS,
		"p95_response_s":      s.P95ResponseS,
		"p99_response_s":      s.P99ResponseS,
		"p999_response_s":     s.P999ResponseS,
		"max_response_s":      s.MaxResponseS,
		"transitions_per_day": s.TransitionsPerDay,
		"requests":            s.Requests,
		"events_fired":        s.EventsFired,
	}
	if s.FaultsOn {
		out["disk_failures"] = s.DiskFailures
		out["data_loss_events"] = s.DataLossEvents
		out["mttdl_hours"] = s.MTTDLHours
	}
	if s.LSEOn {
		out["lse_errors"] = s.LSEErrors
		out["lse_cleared"] = s.LSECleared
		out["scrubs"] = s.Scrubs
	}
	if s.RAIDOn {
		out["raid_loss_events"] = s.RAIDLossEvents
		out["mttdl_est_hours"] = s.MTTDLEstHours
	}
	if s.FleetOn {
		out["fleet_arrays"] = s.FleetArrays
		out["fleet_served"] = s.FleetServed
		out["fleet_retries"] = s.FleetRetries
		out["fleet_hedges"] = s.FleetHedges
		out["fleet_hedge_wins"] = s.FleetHedgeWins
		out["fleet_failovers"] = s.FleetFailovers
		out["fleet_timeouts"] = s.FleetTimeouts
		out["fleet_deferred"] = s.FleetDeferred
		out["fleet_shed"] = s.FleetShed
		out["fleet_failed_requests"] = s.FleetFailedRequests
		out["fleet_shocks"] = s.FleetShocks
		out["fleet_lost_requests"] = s.FleetLostRequests
	}
	for k, v := range s.Extra {
		out[k] = v
	}
	return out
}

// Manifest is the self-description of one run directory.
type Manifest struct {
	// Schema is the manifest schema version (SchemaVersion).
	Schema int `json:"schema"`
	// Tool is the command that produced the run (arraysim, experiments).
	Tool string `json:"tool"`
	// Name is the human-readable run name (e.g. "fig7-light"); together
	// with the config digest it forms the run directory name.
	Name string `json:"name"`
	// ConfigDigest is the hex SHA-256 of Config's canonical JSON.
	ConfigDigest string `json:"config_digest"`
	// Config is the full configuration block the digest covers.
	Config json.RawMessage `json:"config"`
	// Seed is the primary RNG seed (also inside Config; surfaced for
	// listings).
	Seed int64 `json:"seed"`
	// Policy names the policy (single runs) or policy set (sweeps).
	Policy string `json:"policy,omitempty"`
	// Workload is a short human description of the workload condition.
	Workload string `json:"workload,omitempty"`
	// Build identifies the producing binary.
	Build BuildInfo `json:"build"`
	// CreatedAt is the wall-clock start time, RFC3339. It is informational
	// and never part of the digest.
	CreatedAt string `json:"created_at,omitempty"`
	// Status records how the run finished: "ok", "retried" (succeeded
	// after per-cell retries), or "failed" (at least one sweep cell never
	// succeeded). Empty means ok — manifests written before the field
	// existed, and single runs, which abort instead of writing a manifest
	// on failure.
	Status string `json:"status,omitempty"`
	// WallSeconds is the wall-clock duration of the run.
	WallSeconds float64 `json:"wall_seconds"`
	// Summary is the headline-metrics block.
	Summary Summary `json:"summary"`
	// Attribution is the decision-tracing rollup (request latency
	// decomposition, energy attribution, decision counts), present only when
	// the run traced decisions. It rides outside Summary so its fields never
	// join the diff metric set — a traced and an untraced run of the same
	// configuration still diff clean at tolerance 0.
	Attribution *telemetry.AttributionReport `json:"attribution,omitempty"`
	// Perf is the self-performance accounting section (wall-clock,
	// events/s, allocation and GC deltas) for the run and, on sweeps, each
	// cell. Like Attribution it rides outside Summary: performance varies
	// run to run by construction and must never join the diffed metric set.
	Perf *Perf `json:"perf,omitempty"`
	// Artifacts lists the telemetry files present in the run directory
	// (disks.csv, disks.ndjson, metrics.json, trace.json).
	Artifacts []string `json:"artifacts,omitempty"`
}

// New starts a manifest for the given tool, run name, and configuration
// block, computing the config digest and stamping the build info. The caller
// fills Summary, WallSeconds, CreatedAt, and Artifacts after the run.
func New(tool, name string, config any) (*Manifest, error) {
	digest, err := Digest(config)
	if err != nil {
		return nil, err
	}
	raw, err := json.Marshal(config)
	if err != nil {
		return nil, fmt.Errorf("runstore: marshal config: %w", err)
	}
	return &Manifest{
		Schema:       SchemaVersion,
		Tool:         tool,
		Name:         name,
		ConfigDigest: digest,
		Config:       raw,
		Build:        CurrentBuildInfo(),
	}, nil
}

// ID is the run's directory name: "<name>-<digest prefix>". Same name, same
// config → same ID, so re-running an identical configuration overwrites its
// own run directory rather than accumulating duplicates.
func (m *Manifest) ID() string {
	d := m.ConfigDigest
	if len(d) > 12 {
		d = d[:12]
	}
	return m.Name + "-" + d
}

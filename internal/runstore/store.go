package runstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/atomicio"
)

// Store is a directory of run directories plus an index.json that lists them
// by ID and digest. The layout is flat: <root>/<name>-<digest12>/manifest.json
// with that run's telemetry artifacts as siblings of the manifest.
type Store struct {
	root string
}

// IndexEntry is one run in the store's index.json.
type IndexEntry struct {
	ID           string `json:"id"`
	Name         string `json:"name"`
	Tool         string `json:"tool"`
	ConfigDigest string `json:"config_digest"`
	CreatedAt    string `json:"created_at,omitempty"`
}

// indexName is the store-level listing file, regenerated on every Write.
const indexName = "index.json"

// Open opens (creating if needed) a run store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("runstore: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (st *Store) Root() string { return st.root }

// RunDir returns the directory a manifest's run occupies (creating it), so a
// producer can write telemetry artifacts into it before committing the
// manifest with Write.
func (st *Store) RunDir(m *Manifest) (string, error) {
	dir := filepath.Join(st.root, m.ID())
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("runstore: %w", err)
	}
	return dir, nil
}

// artifactNames are the telemetry files a run directory may carry; Write
// records the ones present in the manifest's Artifacts list.
var artifactNames = []string{"disks.csv", "disks.ndjson", "metrics.json", "trace.json"}

// Write commits m into its run directory (manifest.json, indented for
// reviewability), records which telemetry artifacts are present, and
// refreshes the store index.
func (st *Store) Write(m *Manifest) (string, error) {
	dir, err := st.RunDir(m)
	if err != nil {
		return "", err
	}
	m.Artifacts = m.Artifacts[:0]
	for _, name := range artifactNames {
		if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
			m.Artifacts = append(m.Artifacts, name)
		}
	}
	if err := writeJSONFile(filepath.Join(dir, ManifestName), m); err != nil {
		return "", err
	}
	if err := st.writeIndex(); err != nil {
		return "", err
	}
	return dir, nil
}

// writeJSONFile writes v as indented JSON via an atomic replace (temp file,
// fsync, rename), so a manifest or index killed mid-write never leaves a
// truncated file behind — readers see the old version or the new one.
func writeJSONFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("runstore: encode %s: %w", path, err)
	}
	if err := atomicio.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	return nil
}

func (st *Store) writeIndex() error {
	runs, err := st.List()
	if err != nil {
		return err
	}
	entries := make([]IndexEntry, 0, len(runs))
	for _, m := range runs {
		entries = append(entries, IndexEntry{
			ID:           m.ID(),
			Name:         m.Name,
			Tool:         m.Tool,
			ConfigDigest: m.ConfigDigest,
			CreatedAt:    m.CreatedAt,
		})
	}
	return writeJSONFile(filepath.Join(st.root, indexName), struct {
		Schema int          `json:"schema"`
		Runs   []IndexEntry `json:"runs"`
	}{SchemaVersion, entries})
}

// List loads every manifest in the store, sorted by run ID. Problem
// directories are skipped; use ListChecked to learn about them.
func (st *Store) List() ([]*Manifest, error) {
	runs, _, err := st.ListChecked()
	return runs, err
}

// ListChecked loads every manifest in the store, sorted by run ID, and
// reports the directories it had to skip. A subdirectory with no
// manifest.json at all is skipped silently — it may be mid-write or foreign —
// but a manifest that exists and fails to parse (truncated, corrupt, wrong
// schema) produces a warning, so `arrayreport check` can fail loudly instead
// of a damaged run quietly vanishing from listings and diffs.
func (st *Store) ListChecked() (runs []*Manifest, warnings []string, err error) {
	entries, err := os.ReadDir(st.root)
	if err != nil {
		return nil, nil, fmt.Errorf("runstore: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(st.root, e.Name())
		if _, statErr := os.Stat(filepath.Join(dir, ManifestName)); os.IsNotExist(statErr) {
			continue
		}
		m, readErr := ReadManifest(dir)
		if readErr != nil {
			warnings = append(warnings, fmt.Sprintf("skipping %s: %v", e.Name(), readErr))
			continue
		}
		runs = append(runs, m)
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].ID() < runs[j].ID() })
	return runs, warnings, nil
}

// Load resolves ref to one run: an exact run ID (directory name), an exact
// run name, or a unique prefix of a config digest. Ambiguous or unknown refs
// are errors that name the candidates.
func (st *Store) Load(ref string) (*Manifest, error) {
	runs, err := st.List()
	if err != nil {
		return nil, err
	}
	var matches []*Manifest
	for _, m := range runs {
		if m.ID() == ref || m.Name == ref ||
			(ref != "" && strings.HasPrefix(m.ConfigDigest, ref)) {
			matches = append(matches, m)
		}
	}
	switch len(matches) {
	case 1:
		return matches[0], nil
	case 0:
		return nil, fmt.Errorf("runstore: no run matches %q in %s (have %s)",
			ref, st.root, idList(runs))
	default:
		return nil, fmt.Errorf("runstore: ref %q is ambiguous in %s (matches %s)",
			ref, st.root, idList(matches))
	}
}

func idList(runs []*Manifest) string {
	if len(runs) == 0 {
		return "no runs"
	}
	ids := make([]string, len(runs))
	for i, m := range runs {
		ids[i] = m.ID()
	}
	return strings.Join(ids, ", ")
}

// ReadManifest loads a manifest from a run directory or a direct path to a
// manifest.json.
func ReadManifest(path string) (*Manifest, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	if fi.IsDir() {
		path = filepath.Join(path, ManifestName)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("runstore: parse %s: %w", path, err)
	}
	if m.Schema != SchemaVersion {
		return nil, fmt.Errorf("runstore: %s has schema %d, want %d", path, m.Schema, SchemaVersion)
	}
	return &m, nil
}

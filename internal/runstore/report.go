package runstore

import (
	"encoding/csv"
	"fmt"
	"html/template"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// This file renders the single-file HTML report: the paper's energy-vs-AFR
// trade-off as a scatter over all runs in a store, plus per-disk utilization
// and AFR timelines reconstructed from each run's recorded disks.csv. The
// output is self-contained inline SVG — no scripts, no external assets.

// DiskSeries is one disk's recorded time series, loaded back from a run
// directory's disks.csv.
type DiskSeries struct {
	Disk    int
	T       []float64 // virtual seconds
	Util    []float64 // lifetime utilization fraction
	AFRPct  []float64 // live PRESS AFR estimate
	EnergyJ []float64 // cumulative joules
}

// ReportRun is one run as the report sees it: its manifest plus any series
// artifacts found next to it.
type ReportRun struct {
	Manifest *Manifest
	Series   []DiskSeries
}

// LoadReportRun reads a run directory's manifest and, when present, its
// disks.csv series.
func LoadReportRun(dir string) (*ReportRun, error) {
	m, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	run := &ReportRun{Manifest: m}
	csvPath := filepath.Join(dir, "disks.csv")
	if _, err := os.Stat(csvPath); err == nil {
		series, err := LoadSeries(csvPath)
		if err != nil {
			return nil, err
		}
		run.Series = series
	}
	return run, nil
}

// LoadSeries parses a telemetry disks.csv back into per-disk series. Columns
// are resolved by header name, so the loader tolerates schema extensions.
func LoadSeries(path string) ([]DiskSeries, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	defer f.Close()
	r := csv.NewReader(f)
	rows, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("runstore: parse %s: %w", path, err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("runstore: %s is empty", path)
	}
	col := map[string]int{}
	for i, name := range rows[0] {
		col[name] = i
	}
	for _, need := range []string{"t", "disk", "util", "afr_pct", "energy_j"} {
		if _, ok := col[need]; !ok {
			return nil, fmt.Errorf("runstore: %s lacks column %q", path, need)
		}
	}
	byDisk := map[int]*DiskSeries{}
	var order []int
	for _, row := range rows[1:] {
		get := func(name string) (float64, error) {
			return strconv.ParseFloat(row[col[name]], 64)
		}
		diskF, err := get("disk")
		if err != nil {
			return nil, fmt.Errorf("runstore: %s: bad disk id: %w", path, err)
		}
		disk := int(diskF)
		ds, ok := byDisk[disk]
		if !ok {
			ds = &DiskSeries{Disk: disk}
			byDisk[disk] = ds
			order = append(order, disk)
		}
		t, err1 := get("t")
		util, err2 := get("util")
		afr, err3 := get("afr_pct")
		energy, err4 := get("energy_j")
		for _, err := range []error{err1, err2, err3, err4} {
			if err != nil {
				return nil, fmt.Errorf("runstore: %s: bad row: %w", path, err)
			}
		}
		ds.T = append(ds.T, t)
		ds.Util = append(ds.Util, util)
		ds.AFRPct = append(ds.AFRPct, afr)
		ds.EnergyJ = append(ds.EnergyJ, energy)
	}
	out := make([]DiskSeries, 0, len(order))
	for _, d := range order {
		out = append(out, *byDisk[d])
	}
	return out, nil
}

// ---- SVG construction -------------------------------------------------

const (
	chartW, chartH         = 640.0, 320.0
	marginL, marginR       = 64.0, 16.0
	marginT, marginB       = 24.0, 40.0
	plotW                  = chartW - marginL - marginR
	plotH                  = chartH - marginT - marginB
	maxTimelineDisks       = 32
	timelinePointsPerTrack = 2 // minimum points for a polyline
)

// palette cycles across disks/series; chosen for contrast on white.
var palette = []string{
	"#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#3ca951",
	"#ff8ab7", "#a463f2", "#97bbf5", "#9c6b4e", "#9498a0",
}

type axis struct{ lo, hi float64 }

func newAxis(vals ...[]float64) axis {
	a := axis{math.Inf(1), math.Inf(-1)}
	for _, vs := range vals {
		for _, v := range vs {
			if v < a.lo {
				a.lo = v
			}
			if v > a.hi {
				a.hi = v
			}
		}
	}
	if math.IsInf(a.lo, 1) { // no data
		a.lo, a.hi = 0, 1
	}
	if a.lo == a.hi { // flat series: pad so the line sits mid-plot
		pad := math.Abs(a.lo) * 0.1
		if pad == 0 {
			pad = 1
		}
		a.lo, a.hi = a.lo-pad, a.hi+pad
	}
	return a
}

func (a axis) x(v float64) float64 { return marginL + (v-a.lo)/(a.hi-a.lo)*plotW }
func (a axis) y(v float64) float64 { return marginT + plotH - (v-a.lo)/(a.hi-a.lo)*plotH }

func fmtTick(v float64) string { return strconv.FormatFloat(v, 'g', 4, 64) }

// frame draws the plot border, the four corner tick labels, and the axis
// titles shared by every chart.
func frame(b *strings.Builder, xs, ys axis, xlabel, ylabel string) {
	fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#ccc"/>`,
		marginL, marginT, plotW, plotH)
	fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="11" text-anchor="start" fill="#555">%s</text>`,
		marginL, chartH-24, fmtTick(xs.lo))
	fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="11" text-anchor="end" fill="#555">%s</text>`,
		chartW-marginR, chartH-24, fmtTick(xs.hi))
	fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="11" text-anchor="end" fill="#555">%s</text>`,
		marginL-6, marginT+plotH, fmtTick(ys.lo))
	fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="11" text-anchor="end" fill="#555">%s</text>`,
		marginL-6, marginT+10, fmtTick(ys.hi))
	fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="12" text-anchor="middle" fill="#333">%s</text>`,
		marginL+plotW/2, chartH-8, template.HTMLEscapeString(xlabel))
	fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="12" text-anchor="middle" fill="#333" transform="rotate(-90 14 %.1f)">%s</text>`,
		14.0, marginT+plotH/2, marginT+plotH/2, template.HTMLEscapeString(ylabel))
}

func svgOpen(b *strings.Builder) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 %.0f %.0f" width="%.0f" height="%.0f">`,
		chartW, chartH, chartW, chartH)
}

// tradeoffSVG renders the energy-vs-AFR scatter — the paper's title question
// as one picture over every run in the report.
func tradeoffSVG(runs []*ReportRun) template.HTML {
	var xs, ys []float64
	for _, r := range runs {
		xs = append(xs, r.Manifest.Summary.EnergyJ)
		ys = append(ys, r.Manifest.Summary.ArrayAFRPct)
	}
	ax, ay := newAxis(xs), newAxis(ys)
	var b strings.Builder
	svgOpen(&b)
	frame(&b, ax, ay, "total energy (J)", "array AFR (%)")
	for i, r := range runs {
		color := palette[i%len(palette)]
		x, y := ax.x(xs[i]), ay.y(ys[i])
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="5" fill="%s"><title>%s</title></circle>`,
			x, y, color, template.HTMLEscapeString(r.Manifest.ID()))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" fill="#333">%s</text>`,
			x+7, y+4, template.HTMLEscapeString(r.Manifest.Name))
	}
	b.WriteString(`</svg>`)
	return template.HTML(b.String())
}

// timelineSVG renders one per-disk metric over virtual time, one polyline
// per disk.
func timelineSVG(series []DiskSeries, pick func(DiskSeries) []float64, xlabel, ylabel string) template.HTML {
	if len(series) > maxTimelineDisks {
		series = series[:maxTimelineDisks]
	}
	var ts, vs [][]float64
	for _, s := range series {
		ts = append(ts, s.T)
		vs = append(vs, pick(s))
	}
	ax, ay := newAxis(ts...), newAxis(vs...)
	var b strings.Builder
	svgOpen(&b)
	frame(&b, ax, ay, xlabel, ylabel)
	for i, s := range series {
		v := pick(s)
		if len(s.T) < timelinePointsPerTrack {
			continue
		}
		var pts strings.Builder
		for j := range s.T {
			fmt.Fprintf(&pts, "%.1f,%.1f ", ax.x(s.T[j]), ay.y(v[j]))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.3"><title>disk %d</title></polyline>`,
			strings.TrimSpace(pts.String()), palette[i%len(palette)], s.Disk)
	}
	b.WriteString(`</svg>`)
	return template.HTML(b.String())
}

// ---- report assembly --------------------------------------------------

type reportRunView struct {
	ID, Tool, Name, Policy, Workload    string
	Digest12                            string
	Created                             string
	EnergyKJ, AFRPct                    string
	MeanMs, P95Ms, P99Ms, P999Ms, MaxMs string
	TransPerDay                         string
	LSEErrors, RAIDLosses, MTTDLEst     string
	FleetArrays, FleetRetries           string
	FleetHedges, FleetFailovers         string
	FleetTimeouts, FleetShed            string
	FleetFailed, FleetShocks            string
	UtilSVG, AFRSVG                     template.HTML
	HasSeries                           bool
	Attr                                *attributionView
}

// attributionView is the pre-formatted decision-tracing rollup of one run.
type attributionView struct {
	Requests         string
	QueueWaitS       string
	SpinupWaitS      string
	SeekS            string
	TransferS        string
	ServiceEnergyKJ  string
	DegradedRequests string
	DegradedPenaltyS string
	SpinupWaits      string
	Decisions        string
	SpinDowns        string
	SpinUps          string
	Migrations       string
	Reassigns        string
	RebuildPaces     string
	WakeRequests     string
	ParkedHours      string
	ParkNetSavedKJ   string
}

type reportView struct {
	Title       string
	Build       string
	TradeoffSVG template.HTML
	// ShowReliability adds the LSE / RAID-loss / MTTDL columns; set when at
	// least one run recorded them, so feature-off reports are unchanged.
	ShowReliability bool
	// ShowFleet adds the cluster routing-tier columns (arrays, retries,
	// hedges, failovers, ...) when at least one run is a fleet.
	ShowFleet bool
	Runs      []reportRunView
}

var reportTmpl = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8"><title>{{.Title}}</title>
<style>
body { font: 14px/1.45 system-ui, sans-serif; margin: 2rem auto; max-width: 72rem; color: #222; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.15rem; margin-top: 2rem; } h3 { font-size: 1rem; }
table { border-collapse: collapse; margin: 1rem 0; }
th, td { padding: .3rem .7rem; border-bottom: 1px solid #ddd; text-align: right; }
th:first-child, td:first-child { text-align: left; }
code { background: #f4f4f4; padding: .1rem .3rem; border-radius: 3px; }
.meta { color: #777; font-size: .85rem; }
.charts { display: flex; flex-wrap: wrap; gap: 1rem; }
</style></head><body>
<h1>{{.Title}}</h1>
<p class="meta">{{.Build}}</p>

<h2>Energy vs. reliability — the paper's trade-off, per run</h2>
{{.TradeoffSVG}}

<h2>Runs</h2>
<table>
<tr><th>run</th><th>tool</th><th>policy</th><th>workload</th><th>energy (kJ)</th><th>AFR (%)</th><th>mean (ms)</th><th>p95 (ms)</th><th>p99 (ms)</th><th>p999 (ms)</th><th>max (ms)</th><th>trans/day</th>{{if .ShowReliability}}<th>LSEs</th><th>RAID losses</th><th>MTTDL est (h)</th>{{end}}{{if .ShowFleet}}<th>arrays</th><th>retries</th><th>hedges</th><th>failovers</th><th>timeouts</th><th>shed</th><th>failed</th><th>shocks</th>{{end}}</tr>
{{range .Runs}}<tr><td><code>{{.ID}}</code></td><td>{{.Tool}}</td><td>{{.Policy}}</td><td>{{.Workload}}</td><td>{{.EnergyKJ}}</td><td>{{.AFRPct}}</td><td>{{.MeanMs}}</td><td>{{.P95Ms}}</td><td>{{.P99Ms}}</td><td>{{.P999Ms}}</td><td>{{.MaxMs}}</td><td>{{.TransPerDay}}</td>{{if $.ShowReliability}}<td>{{.LSEErrors}}</td><td>{{.RAIDLosses}}</td><td>{{.MTTDLEst}}</td>{{end}}{{if $.ShowFleet}}<td>{{.FleetArrays}}</td><td>{{.FleetRetries}}</td><td>{{.FleetHedges}}</td><td>{{.FleetFailovers}}</td><td>{{.FleetTimeouts}}</td><td>{{.FleetShed}}</td><td>{{.FleetFailed}}</td><td>{{.FleetShocks}}</td>{{end}}</tr>
{{end}}</table>

{{range .Runs}}{{if .Attr}}
<h2>{{.Name}} — decision &amp; latency attribution</h2>
<div class="charts">
<div><h3>request latency decomposition</h3>
<table>
<tr><th>component</th><th>total (s)</th></tr>
<tr><td>queue wait</td><td>{{.Attr.QueueWaitS}}</td></tr>
<tr><td>spin-up wait</td><td>{{.Attr.SpinupWaitS}}</td></tr>
<tr><td>seek / positioning</td><td>{{.Attr.SeekS}}</td></tr>
<tr><td>transfer</td><td>{{.Attr.TransferS}}</td></tr>
<tr><td>degraded-reroute penalty</td><td>{{.Attr.DegradedPenaltyS}}</td></tr>
</table>
<p class="meta">{{.Attr.Requests}} requests attributed · {{.Attr.SpinupWaits}} waited on a spin-up · {{.Attr.DegradedRequests}} served degraded · service energy {{.Attr.ServiceEnergyKJ}} kJ</p>
</div>
<div><h3>policy decisions</h3>
<table>
<tr><th>kind</th><th>count</th></tr>
<tr><td>spin-down</td><td>{{.Attr.SpinDowns}}</td></tr>
<tr><td>spin-up</td><td>{{.Attr.SpinUps}}</td></tr>
<tr><td>migrate</td><td>{{.Attr.Migrations}}</td></tr>
<tr><td>reassign (failover)</td><td>{{.Attr.Reassigns}}</td></tr>
<tr><td>rebuild pace</td><td>{{.Attr.RebuildPaces}}</td></tr>
<tr><td><b>total</b></td><td>{{.Attr.Decisions}}</td></tr>
</table>
<p class="meta">{{.Attr.ParkedHours}} disk-hours parked · net park saving {{.Attr.ParkNetSavedKJ}} kJ · {{.Attr.WakeRequests}} requests behind wakes</p>
</div>
</div>
{{end}}{{end}}

{{range .Runs}}{{if .HasSeries}}
<h2>{{.Name}} — per-disk timelines</h2>
<p class="meta">config {{.Digest12}}{{if .Created}} · {{.Created}}{{end}}</p>
<div class="charts">
<div><h3>utilization</h3>{{.UtilSVG}}</div>
<div><h3>PRESS AFR (%)</h3>{{.AFRSVG}}</div>
</div>
{{end}}{{end}}
</body></html>
`))

// WriteHTMLReport renders the report for the given runs: a run-summary
// table, the energy-vs-AFR scatter, and per-disk timelines for every run
// that recorded a series. The output is one self-contained HTML file.
func WriteHTMLReport(w io.Writer, title string, runs []*ReportRun) error {
	view := reportView{
		Title:       title,
		Build:       VersionLine("arrayreport"),
		TradeoffSVG: tradeoffSVG(runs),
	}
	ms := func(v float64) string { return strconv.FormatFloat(v*1e3, 'f', 2, 64) }
	for _, r := range runs {
		m := r.Manifest
		rv := reportRunView{
			ID:          m.ID(),
			Tool:        m.Tool,
			Name:        m.Name,
			Policy:      m.Policy,
			Workload:    m.Workload,
			Digest12:    m.ConfigDigest[:min(12, len(m.ConfigDigest))],
			Created:     m.CreatedAt,
			EnergyKJ:    strconv.FormatFloat(m.Summary.EnergyJ/1e3, 'f', 1, 64),
			AFRPct:      strconv.FormatFloat(m.Summary.ArrayAFRPct, 'f', 3, 64),
			MeanMs:      ms(m.Summary.MeanResponseS),
			P95Ms:       ms(m.Summary.P95ResponseS),
			P99Ms:       ms(m.Summary.P99ResponseS),
			P999Ms:      ms(m.Summary.P999ResponseS),
			MaxMs:       ms(m.Summary.MaxResponseS),
			TransPerDay: strconv.FormatFloat(m.Summary.TransitionsPerDay, 'f', 1, 64),
			LSEErrors:   "-",
			RAIDLosses:  "-",
			MTTDLEst:    "-",
			FleetArrays: "-", FleetRetries: "-",
			FleetHedges: "-", FleetFailovers: "-",
			FleetTimeouts: "-", FleetShed: "-",
			FleetFailed: "-", FleetShocks: "-",
			HasSeries: len(r.Series) > 0,
		}
		if m.Summary.LSEOn {
			view.ShowReliability = true
			rv.LSEErrors = strconv.FormatFloat(m.Summary.LSEErrors, 'f', 0, 64)
		}
		if m.Summary.RAIDOn {
			view.ShowReliability = true
			rv.RAIDLosses = strconv.FormatFloat(m.Summary.RAIDLossEvents, 'f', 0, 64)
			if m.Summary.MTTDLEstHours > 0 {
				rv.MTTDLEst = strconv.FormatFloat(m.Summary.MTTDLEstHours, 'g', 4, 64)
			}
		}
		if m.Summary.FleetOn {
			view.ShowFleet = true
			count := func(v float64) string { return strconv.FormatFloat(v, 'f', 0, 64) }
			rv.FleetArrays = count(m.Summary.FleetArrays)
			rv.FleetRetries = count(m.Summary.FleetRetries)
			rv.FleetHedges = count(m.Summary.FleetHedges)
			rv.FleetFailovers = count(m.Summary.FleetFailovers)
			rv.FleetTimeouts = count(m.Summary.FleetTimeouts)
			rv.FleetShed = count(m.Summary.FleetShed)
			rv.FleetFailed = count(m.Summary.FleetFailedRequests)
			rv.FleetShocks = count(m.Summary.FleetShocks)
		}
		if a := m.Attribution; a != nil {
			sec := func(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }
			n := func(v int) string { return strconv.Itoa(v) }
			rv.Attr = &attributionView{
				Requests:         n(a.Totals.Requests),
				QueueWaitS:       sec(a.Totals.QueueWaitS),
				SpinupWaitS:      sec(a.Totals.SpinupWaitS),
				SeekS:            sec(a.Totals.SeekS),
				TransferS:        sec(a.Totals.TransferS),
				ServiceEnergyKJ:  strconv.FormatFloat(a.Totals.ServiceEnergyJ/1e3, 'f', 2, 64),
				DegradedRequests: n(a.Totals.DegradedRequests),
				DegradedPenaltyS: sec(a.Totals.DegradedPenaltyS),
				SpinupWaits:      n(a.Totals.SpinupWaits),
				Decisions:        n(a.Decisions),
				SpinDowns:        n(a.SpinDowns),
				SpinUps:          n(a.SpinUps),
				Migrations:       n(a.Migrations),
				Reassigns:        n(a.Reassigns),
				RebuildPaces:     n(a.RebuildPaces),
				WakeRequests:     n(a.WakeRequests),
				ParkedHours:      strconv.FormatFloat(a.ParkedSeconds/3600, 'f', 2, 64),
				ParkNetSavedKJ:   strconv.FormatFloat(a.ParkNetSavedJ/1e3, 'f', 2, 64),
			}
		}
		if rv.HasSeries {
			rv.UtilSVG = timelineSVG(r.Series, func(s DiskSeries) []float64 { return s.Util },
				"virtual time (s)", "utilization")
			rv.AFRSVG = timelineSVG(r.Series, func(s DiskSeries) []float64 { return s.AFRPct },
				"virtual time (s)", "AFR (%)")
		}
		view.Runs = append(view.Runs, rv)
	}
	return reportTmpl.Execute(w, view)
}

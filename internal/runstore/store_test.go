package runstore

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

type testConfig struct {
	Policy string `json:"policy"`
	Disks  int    `json:"disks"`
	Seed   int64  `json:"seed"`
}

func testManifest(t *testing.T, name string, seed int64) *Manifest {
	t.Helper()
	m, err := New("arraysim", name, testConfig{Policy: "read", Disks: 8, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	m.Seed = seed
	m.Policy = "read"
	m.Summary = Summary{EnergyJ: 1000, ArrayAFRPct: 13, MeanResponseS: 0.008,
		Requests: 5000, EventsFired: 12345}
	return m
}

func TestStoreWriteListLoad(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m1 := testManifest(t, "alpha", 1)
	m2 := testManifest(t, "beta", 2)
	for _, m := range []*Manifest{m1, m2} {
		if _, err := st.Write(m); err != nil {
			t.Fatal(err)
		}
	}

	runs, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("listed %d runs, want 2", len(runs))
	}
	if runs[0].Name != "alpha" || runs[1].Name != "beta" {
		t.Fatalf("unexpected order: %s, %s", runs[0].Name, runs[1].Name)
	}

	// Load by name, by full ID, and by digest prefix.
	for _, ref := range []string{"alpha", m1.ID(), m1.ConfigDigest[:8]} {
		got, err := st.Load(ref)
		if err != nil {
			t.Fatalf("Load(%q): %v", ref, err)
		}
		if got.ConfigDigest != m1.ConfigDigest {
			t.Fatalf("Load(%q) returned %s", ref, got.Name)
		}
	}
	if _, err := st.Load("nonexistent"); err == nil {
		t.Fatal("expected error for unknown ref")
	}

	// The index is regenerated and lists both runs.
	idx, err := os.ReadFile(filepath.Join(dir, "index.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{m1.ID(), m2.ID()} {
		if !strings.Contains(string(idx), want) {
			t.Fatalf("index.json lacks %s", want)
		}
	}
}

func TestStoreRoundTripsManifest(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := testManifest(t, "round", 7)
	m.Summary.FaultsOn = true
	m.Summary.DiskFailures = 2
	m.WallSeconds = 1.5
	dir, err := st.Write(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID() != m.ID() || got.Schema != SchemaVersion {
		t.Fatalf("round-trip identity: got %s schema %d", got.ID(), got.Schema)
	}
	if !reflect.DeepEqual(summaryWithoutExtra(got.Summary), summaryWithoutExtra(m.Summary)) {
		t.Fatalf("summary round-trip: got %+v want %+v", got.Summary, m.Summary)
	}
	if got.Build.GoVersion == "" {
		t.Fatal("build info lost in round-trip")
	}
}

// summaryWithoutExtra normalizes the nil-vs-empty Extra map for comparison.
func summaryWithoutExtra(s Summary) Summary {
	s.Extra = nil
	return s
}

func TestStoreRecordsArtifacts(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := testManifest(t, "with-artifacts", 3)
	dir, err := st.RunDir(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"disks.csv", "metrics.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Write(m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Artifacts) != 2 || got.Artifacts[0] != "disks.csv" || got.Artifacts[1] != "metrics.json" {
		t.Fatalf("artifacts %v, want [disks.csv metrics.json]", got.Artifacts)
	}
}

func TestSameConfigSameID(t *testing.T) {
	a := testManifest(t, "x", 5)
	b := testManifest(t, "x", 5)
	if a.ID() != b.ID() {
		t.Fatalf("identical configs got different IDs: %s vs %s", a.ID(), b.ID())
	}
	c := testManifest(t, "x", 6)
	if a.ID() == c.ID() {
		t.Fatal("different seeds share an ID")
	}
}

func TestReadManifestRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, ManifestName)
	if err := os.WriteFile(path, []byte(`{"schema": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(dir); err == nil {
		t.Fatal("expected schema-version error")
	}
}

func TestListCheckedSkipsCorruptManifests(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := testManifest(t, "good", 1)
	if _, err := st.Write(good); err != nil {
		t.Fatal(err)
	}

	// A run directory whose manifest is garbage: listed as a warning, not an
	// error, and never returned as a run.
	corrupt := filepath.Join(dir, "deadbeef-corrupt")
	if err := os.MkdirAll(corrupt, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(corrupt, ManifestName),
		[]byte(`{"schema": "array`), 0o644); err != nil {
		t.Fatal(err)
	}

	// A directory with no manifest at all (e.g. a killed run that only got
	// as far as creating its directory): silently ignored.
	if err := os.MkdirAll(filepath.Join(dir, "no-manifest-yet"), 0o755); err != nil {
		t.Fatal(err)
	}

	runs, warnings, err := st.ListChecked()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].Name != "good" {
		t.Fatalf("runs = %+v, want just the valid one", runs)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "deadbeef-corrupt") {
		t.Fatalf("warnings = %q, want one naming the corrupt dir", warnings)
	}

	// Plain List keeps working past the corruption too.
	runs, err = st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("List returned %d runs, want 1", len(runs))
	}
}

package runstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// CanonicalJSON encodes v in a canonical form: object keys sorted, no
// insignificant whitespace, and numbers kept as the literal tokens Go's
// encoder produced for them. Two configurations digest equal if and only if
// they encode to the same canonical bytes, regardless of field declaration
// order in the originating struct or map iteration order.
func CanonicalJSON(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("runstore: canonicalize: %w", err)
	}
	// Round-trip through an untyped document: maps re-marshal with sorted
	// keys, and UseNumber preserves numeric literals exactly so the digest
	// does not depend on float re-formatting.
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var doc any
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("runstore: canonicalize: %w", err)
	}
	out, err := json.Marshal(doc)
	if err != nil {
		return nil, fmt.Errorf("runstore: canonicalize: %w", err)
	}
	return out, nil
}

// ToJSONMap flattens a struct through its JSON encoding into a generic map,
// so callers can embed foreign config types in a manifest config block while
// exposing only their exported, serialized state. Numbers decode with
// UseNumber, keeping the digest independent of float re-formatting.
func ToJSONMap(v any) (map[string]any, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("runstore: to map: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var out map[string]any
	if err := dec.Decode(&out); err != nil {
		return nil, fmt.Errorf("runstore: to map: %w", err)
	}
	return out, nil
}

// Digest returns the hex SHA-256 of v's canonical JSON — the identity of a
// run configuration.
func Digest(v any) (string, error) {
	b, err := CanonicalJSON(v)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

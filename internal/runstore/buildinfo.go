// Package runstore gives simulation runs a memory: every arraysim or
// experiments invocation can write a self-describing run directory — a
// manifest.json carrying the exact configuration (and its canonical-JSON
// SHA-256 digest), the RNG seeds, the build that produced it, and a
// summary-metrics block — alongside the telemetry artifacts of that run.
// A Store indexes such directories so runs can be listed, loaded by digest,
// diffed against each other, and gated against committed baselines
// (BENCH_runs.json) by cmd/arrayreport.
package runstore

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// BuildInfo identifies the binary that produced a run: the Go toolchain, the
// module version, and (when the binary was built inside a VCS checkout) the
// revision and dirty bit. It is embedded in every Manifest and shared by the
// -version flag of all four commands.
type BuildInfo struct {
	// GoVersion is the toolchain that built the binary (runtime.Version).
	GoVersion string `json:"go_version"`
	// ModulePath is the main module path ("repro").
	ModulePath string `json:"module_path,omitempty"`
	// ModuleVersion is the main module version ("(devel)" for source builds).
	ModuleVersion string `json:"module_version,omitempty"`
	// VCSRevision is the commit hash the binary was built from, when known.
	VCSRevision string `json:"vcs_revision,omitempty"`
	// VCSTime is the commit timestamp, when known.
	VCSTime string `json:"vcs_time,omitempty"`
	// VCSModified marks a build from a dirty working tree.
	VCSModified bool `json:"vcs_modified,omitempty"`
}

// CurrentBuildInfo reads the running binary's build metadata via
// debug.ReadBuildInfo. It degrades gracefully: binaries built without module
// or VCS stamping still report the Go version.
func CurrentBuildInfo() BuildInfo {
	b := BuildInfo{GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.ModulePath = info.Main.Path
	b.ModuleVersion = info.Main.Version
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.VCSRevision = s.Value
		case "vcs.time":
			b.VCSTime = s.Value
		case "vcs.modified":
			b.VCSModified = s.Value == "true"
		}
	}
	return b
}

// String renders the one-line form printed by the -version flags, e.g.
//
//	repro (devel) go1.22.1 rev 5a6af67… (dirty)
func (b BuildInfo) String() string {
	s := b.ModulePath
	if s == "" {
		s = "unknown-module"
	}
	if b.ModuleVersion != "" {
		s += " " + b.ModuleVersion
	}
	s += " " + b.GoVersion
	if b.VCSRevision != "" {
		rev := b.VCSRevision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " rev " + rev
	}
	if b.VCSModified {
		s += " (dirty)"
	}
	return s
}

// VersionLine renders "tool: build" for a command's -version output.
func VersionLine(tool string) string {
	return fmt.Sprintf("%s: %s", tool, CurrentBuildInfo())
}

package runstore

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Tolerances configures the per-metric relative tolerance of a diff or
// baseline check. The zero value demands exact equality on every metric —
// the right default for same-seed determinism checks, where any drift at
// all is a regression.
type Tolerances struct {
	// Default applies to metrics without a PerMetric entry. A relative
	// tolerance of 0.02 allows 2% drift.
	Default float64
	// PerMetric overrides Default for specific metric names.
	PerMetric map[string]float64
}

// For returns the tolerance in force for one metric.
func (t Tolerances) For(metric string) float64 {
	if v, ok := t.PerMetric[metric]; ok {
		return v
	}
	return t.Default
}

// Delta is one metric's comparison between two runs.
type Delta struct {
	// Metric is the flattened summary-metric name.
	Metric string
	// A and B are the two values (baseline first).
	A, B float64
	// Rel is |B−A| / max(|A|,|B|), 0 when both sides are 0.
	Rel float64
	// Tolerance is the relative tolerance that was applied.
	Tolerance float64
	// MissingIn is "a" or "b" when one side lacks the metric ("" otherwise);
	// a one-sided metric always breaches.
	MissingIn string
	// Breach marks the delta as out of tolerance.
	Breach bool
}

// relDelta is the symmetric relative difference used throughout: it is 0
// only for exact equality and well-defined when either side is 0.
func relDelta(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(b-a) / den
}

// DiffMetrics compares two flattened metric maps under the given tolerances.
// The result covers the union of metric names, sorted, with metrics present
// on only one side marked as breaches.
func DiffMetrics(a, b map[string]float64, tol Tolerances) []Delta {
	names := make(map[string]struct{}, len(a)+len(b))
	for k := range a {
		names[k] = struct{}{}
	}
	for k := range b {
		names[k] = struct{}{}
	}
	sorted := make([]string, 0, len(names))
	for k := range names {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	deltas := make([]Delta, 0, len(sorted))
	for _, k := range sorted {
		av, aok := a[k]
		bv, bok := b[k]
		d := Delta{Metric: k, A: av, B: bv, Tolerance: tol.For(k)}
		switch {
		case !aok:
			d.MissingIn, d.Breach = "a", true
		case !bok:
			d.MissingIn, d.Breach = "b", true
		default:
			d.Rel = relDelta(av, bv)
			d.Breach = d.Rel > d.Tolerance
		}
		deltas = append(deltas, d)
	}
	return deltas
}

// Diff compares two run summaries. See DiffMetrics.
func Diff(a, b Summary, tol Tolerances) []Delta {
	return DiffMetrics(a.Metrics(), b.Metrics(), tol)
}

// Breaches counts the out-of-tolerance deltas.
func Breaches(deltas []Delta) int {
	n := 0
	for _, d := range deltas {
		if d.Breach {
			n++
		}
	}
	return n
}

// BreachedMetrics lists the names of the out-of-tolerance metrics, in the
// deltas' (sorted) order — so a gate can say WHICH baseline key breached on
// its status line, not just that one did.
func BreachedMetrics(deltas []Delta) []string {
	var names []string
	for _, d := range deltas {
		if d.Breach {
			names = append(names, d.Metric)
		}
	}
	return names
}

// RenderDeltas writes the aligned per-metric comparison table. With onlyBreaches
// it prints breaching rows only (plus a summary line either way).
func RenderDeltas(w io.Writer, deltas []Delta, onlyBreaches bool) {
	wrote := 0
	for _, d := range deltas {
		if onlyBreaches && !d.Breach {
			continue
		}
		mark := "  "
		if d.Breach {
			mark = "✗ "
		}
		switch d.MissingIn {
		case "a":
			fmt.Fprintf(w, "%s%-34s %16s %16.9g  only in B\n", mark, d.Metric, "-", d.B)
		case "b":
			fmt.Fprintf(w, "%s%-34s %16.9g %16s  only in A\n", mark, d.Metric, d.A, "-")
		default:
			fmt.Fprintf(w, "%s%-34s %16.9g %16.9g  rel %.3g (tol %.3g)\n",
				mark, d.Metric, d.A, d.B, d.Rel, d.Tolerance)
		}
		wrote++
	}
	if onlyBreaches && wrote == 0 {
		fmt.Fprintln(w, "  (no breaches)")
	}
	fmt.Fprintf(w, "%d metric(s) compared, %d breach(es)\n", len(deltas), Breaches(deltas))
}

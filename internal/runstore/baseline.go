package runstore

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// BaselineFile is the committed benchmark-trajectory format (BENCH_runs.json):
// one entry per named run condition, each pinning the summary metrics a fresh
// run of that condition must reproduce within tolerance. `arrayreport check`
// gates CI on it; `arrayreport baseline` regenerates it from a run store.
type BaselineFile struct {
	Schema int `json:"schema"`
	// Generated is an informational date stamp (not compared).
	Generated string `json:"generated,omitempty"`
	// Command records how to regenerate the runs this file pins.
	Command string `json:"command,omitempty"`
	// DefaultTolerance is the relative tolerance applied to metrics without
	// a per-run override.
	DefaultTolerance float64 `json:"default_tolerance"`
	// Runs are the pinned conditions, sorted by name.
	Runs []Baseline `json:"runs"`
}

// Baseline pins one run condition.
type Baseline struct {
	// Name matches Manifest.Name.
	Name string `json:"name"`
	// ConfigDigest is the canonical-config digest the metrics were recorded
	// under. A fresh run whose digest differs is config drift: its metrics
	// are still compared, but the drift is reported.
	ConfigDigest string `json:"config_digest,omitempty"`
	// Tolerances overrides the file's default tolerance per metric.
	Tolerances map[string]float64 `json:"tolerances,omitempty"`
	// Metrics is the pinned flattened summary.
	Metrics map[string]float64 `json:"metrics"`
}

// ReadBaselineFile loads and validates a BENCH_runs.json.
func ReadBaselineFile(path string) (*BaselineFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	var bf BaselineFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		return nil, fmt.Errorf("runstore: parse %s: %w", path, err)
	}
	if bf.Schema != SchemaVersion {
		return nil, fmt.Errorf("runstore: %s has schema %d, want %d", path, bf.Schema, SchemaVersion)
	}
	return &bf, nil
}

// WriteBaselineFile writes bf as indented JSON.
func WriteBaselineFile(path string, bf *BaselineFile) error {
	return writeJSONFile(path, bf)
}

// Find returns the baseline entry for a run name, or nil.
func (bf *BaselineFile) Find(name string) *Baseline {
	for i := range bf.Runs {
		if bf.Runs[i].Name == name {
			return &bf.Runs[i]
		}
	}
	return nil
}

// CheckResult is the outcome of gating one manifest against its baseline.
type CheckResult struct {
	Name string
	// Deltas is the per-metric comparison (baseline as side A).
	Deltas []Delta
	// ConfigDrift is set when the manifest's config digest differs from the
	// recorded one — the metrics may differ legitimately, but the committed
	// baseline no longer describes this configuration.
	ConfigDrift bool
}

// Breached reports whether any metric was out of tolerance.
func (c CheckResult) Breached() bool { return Breaches(c.Deltas) > 0 }

// Check gates a manifest against the baseline entry matching its run name.
// A missing entry is an error — a new condition must be added to the
// baseline file deliberately, not slip through unchecked.
func (bf *BaselineFile) Check(m *Manifest) (CheckResult, error) {
	b := bf.Find(m.Name)
	if b == nil {
		return CheckResult{}, fmt.Errorf("runstore: run %q has no baseline entry", m.Name)
	}
	tol := Tolerances{Default: bf.DefaultTolerance, PerMetric: b.Tolerances}
	return CheckResult{
		Name:        m.Name,
		Deltas:      DiffMetrics(b.Metrics, m.Summary.Metrics(), tol),
		ConfigDrift: b.ConfigDigest != "" && b.ConfigDigest != m.ConfigDigest,
	}, nil
}

// BaselineFromManifests seeds a baseline file from finished runs (sorted by
// name). generated and command are informational stamps.
func BaselineFromManifests(runs []*Manifest, defaultTol float64, generated, command string) *BaselineFile {
	bf := &BaselineFile{
		Schema:           SchemaVersion,
		Generated:        generated,
		Command:          command,
		DefaultTolerance: defaultTol,
	}
	for _, m := range runs {
		bf.Runs = append(bf.Runs, Baseline{
			Name:         m.Name,
			ConfigDigest: m.ConfigDigest,
			Metrics:      m.Summary.Metrics(),
		})
	}
	sort.Slice(bf.Runs, func(i, j int) bool { return bf.Runs[i].Name < bf.Runs[j].Name })
	return bf
}

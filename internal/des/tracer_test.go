package des

import (
	"testing"
)

// recordingTracer captures every tracer callback for inspection.
type recordingTracer struct {
	scheduled []string
	fired     []string
	canceled  []string
	wallNanos []int64
}

func (t *recordingTracer) EventScheduled(id uint64, label string, at, now float64) {
	t.scheduled = append(t.scheduled, label)
}

func (t *recordingTracer) EventFired(id uint64, label string, at float64, wallNanos int64) {
	t.fired = append(t.fired, label)
	t.wallNanos = append(t.wallNanos, wallNanos)
}

func (t *recordingTracer) EventCanceled(id uint64, label string, now float64) {
	t.canceled = append(t.canceled, label)
}

func TestTracerObservesLifecycle(t *testing.T) {
	e := New()
	tr := &recordingTracer{}
	e.SetTracer(tr)

	e.MustScheduleLabeled(1, "arrival", func(*Engine) {})
	id := e.MustScheduleLabeled(2, "idle-timer", func(*Engine) {})
	if _, err := e.AtLabeled(3, "epoch", func(*Engine) {}); err != nil {
		t.Fatal(err)
	}
	e.MustSchedule(4, func(*Engine) {}) // unlabeled
	e.Cancel(id)
	e.Run()

	wantScheduled := []string{"arrival", "idle-timer", "epoch", ""}
	if len(tr.scheduled) != len(wantScheduled) {
		t.Fatalf("scheduled = %v, want %v", tr.scheduled, wantScheduled)
	}
	for i := range wantScheduled {
		if tr.scheduled[i] != wantScheduled[i] {
			t.Fatalf("scheduled = %v, want %v", tr.scheduled, wantScheduled)
		}
	}
	wantFired := []string{"arrival", "epoch", ""}
	if len(tr.fired) != len(wantFired) {
		t.Fatalf("fired = %v, want %v", tr.fired, wantFired)
	}
	for i := range wantFired {
		if tr.fired[i] != wantFired[i] {
			t.Fatalf("fired = %v, want %v", tr.fired, wantFired)
		}
	}
	if len(tr.canceled) != 1 || tr.canceled[0] != "idle-timer" {
		t.Fatalf("canceled = %v, want [idle-timer]", tr.canceled)
	}
	for i, ns := range tr.wallNanos {
		if ns < 0 {
			t.Fatalf("wallNanos[%d] = %d, want >= 0", i, ns)
		}
	}
}

func TestTracerDoesNotChangeResults(t *testing.T) {
	run := func(tr Tracer) []float64 {
		e := New()
		e.SetTracer(tr)
		var times []float64
		for _, d := range []float64{3, 1, 2, 1} {
			e.MustScheduleLabeled(d, "tick", func(en *Engine) {
				times = append(times, en.Now())
			})
		}
		e.Run()
		return times
	}
	plain, traced := run(nil), run(&recordingTracer{})
	if len(plain) != len(traced) {
		t.Fatalf("fired %d vs %d events", len(plain), len(traced))
	}
	for i := range plain {
		if plain[i] != traced[i] {
			t.Fatalf("fire times diverge at %d: %v vs %v", i, plain, traced)
		}
	}
}

func TestSetTracerNilRemoves(t *testing.T) {
	e := New()
	tr := &recordingTracer{}
	e.SetTracer(tr)
	e.MustScheduleLabeled(1, "a", func(*Engine) {})
	e.SetTracer(nil)
	e.MustScheduleLabeled(2, "b", func(*Engine) {})
	e.Run()
	if len(tr.scheduled) != 1 || len(tr.fired) != 0 {
		t.Fatalf("removed tracer still observed events: %+v", tr)
	}
}

// The dispatch hot path with no tracer installed must not allocate: firing a
// pre-scheduled event is pop + handler call, and the nil-tracer branch adds
// neither a time.Now() call nor any allocation.
func TestStepWithoutTracerDoesNotAllocate(t *testing.T) {
	e := New()
	h := func(*Engine) {}
	// Warm up heap and pending-map capacity so growth doesn't count.
	for i := 0; i < 1024; i++ {
		e.MustScheduleLabeled(float64(i), "warm", h)
	}
	for e.Step() {
	}
	ids := make([]EventID, 0, 1024)
	for i := 0; i < 1024; i++ {
		ids = append(ids, e.MustScheduleLabeled(float64(2000+i), "hot", h))
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		if i < len(ids) {
			e.Step()
			i++
		}
	})
	if allocs != 0 {
		t.Fatalf("Step allocated %v times per run with no tracer, want 0", allocs)
	}
}

// nullTracer is the cheapest possible live tracer; the delta between this
// and the no-tracer hot loop is the fixed cost of enabling tracing (two
// wall-clock reads per event).
type nullTracer struct{}

func (nullTracer) EventScheduled(uint64, string, float64, float64) {}
func (nullTracer) EventFired(uint64, string, float64, int64)       {}
func (nullTracer) EventCanceled(uint64, string, float64)           {}

func BenchmarkHotLoopTraced(b *testing.B) {
	e := New()
	e.SetTracer(nullTracer{})
	n := 0
	var tick Handler
	tick = func(en *Engine) {
		n++
		if n < b.N {
			en.MustScheduleLabeled(0.001, "tick", tick)
		}
	}
	e.MustScheduleLabeled(0.001, "tick", tick)
	b.ResetTimer()
	e.Run()
}

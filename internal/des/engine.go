// Package des implements a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and a priority queue of scheduled
// events. Events fire in non-decreasing time order; events scheduled for the
// same instant fire in the order they were scheduled (FIFO tie-breaking via a
// monotone sequence number), which makes every simulation run fully
// deterministic for a fixed input.
//
// The kernel is single-threaded by design: disk-array simulations are
// causally ordered and the profitable parallelism lives one level up, across
// independent simulation runs (parameter sweeps), not inside one run.
package des

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// Handler is the callback invoked when an event fires. The engine passes
// itself so handlers can schedule follow-up events without capturing the
// engine in every closure.
type Handler func(e *Engine)

// Tracer observes engine activity for diagnostics. All times are virtual
// seconds except wallNanos, the handler's wall-clock execution time. The
// interface uses only builtin types so implementations (e.g. the telemetry
// package's Chrome trace writer) need no dependency on this package.
//
// A tracer must not mutate the engine. When no tracer is installed the
// engine pays one nil check per operation and never reads the wall clock,
// so disabled tracing adds zero allocations and no nondeterminism.
type Tracer interface {
	// EventScheduled fires when an event is enqueued to run at time at.
	EventScheduled(id uint64, label string, at, now float64)
	// EventFired fires after an event's handler returns.
	EventFired(id uint64, label string, at float64, wallNanos int64)
	// EventCanceled fires when a pending event is canceled.
	EventCanceled(id uint64, label string, now float64)
}

// SpanTracer is an optional Tracer extension for logical intervals that are
// not single events — e.g. a request's life from arrival to completion.
// Both times are virtual seconds. Like Tracer it uses only builtin types so
// implementations need no dependency on this package; tracers that do not
// implement it simply never see spans.
type SpanTracer interface {
	Span(label string, start, end float64)
}

// EventID identifies a scheduled event for cancellation. The zero EventID is
// never issued.
type EventID uint64

// ErrStalled is returned by Run when the event queue drains before the
// requested end time was reached with RunUntil semantics. It is informational
// rather than fatal: a drained queue simply means the simulation reached
// quiescence early.
var ErrStalled = errors.New("des: event queue drained before end time")

type event struct {
	time     float64
	seq      uint64 // FIFO tie-breaker and identity
	handler  Handler
	label    string // tracer annotation; "" for unlabeled events
	canceled bool
	index    int // heap index, -1 once popped
}

// eventHeap is a binary min-heap ordered by (time, seq), flattened into
// direct sift methods rather than container/heap: the interface-based API
// boxes every element through `any` and cannot be inlined, and push/pop is
// the kernel's innermost loop. Index maintenance mirrors container/heap so
// Remove-by-index still works for Cancel.
type eventHeap []*event

func (h eventHeap) less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

// siftUp restores the heap property after an insertion at index i.
//
//simlint:hotpath
func (h eventHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

// siftDown restores the heap property after the element at index i shrank
// in priority. It reports whether the element moved.
//
//simlint:hotpath
func (h eventHeap) siftDown(i int) bool {
	start := i
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n || left < 0 { // left < 0 after int overflow
			break
		}
		child := left
		if right := left + 1; right < n && h.less(right, left) {
			child = right
		}
		if !h.less(child, i) {
			break
		}
		h.swap(i, child)
		i = child
	}
	return i > start
}

// push inserts ev, maintaining heap order.
//
//simlint:hotpath
func (h *eventHeap) push(ev *event) {
	ev.index = len(*h)
	*h = append(*h, ev)
	h.siftUp(ev.index)
}

// pop removes and returns the earliest event.
//
//simlint:hotpath
func (h *eventHeap) pop() *event {
	old := *h
	n := len(old) - 1
	old.swap(0, n)
	ev := old[n]
	old[n] = nil
	ev.index = -1
	*h = old[:n]
	h.siftDown(0)
	return ev
}

// remove deletes the event at index i (container/heap.Remove, inlined).
func (h *eventHeap) remove(i int) {
	old := *h
	n := len(old) - 1
	if i != n {
		old.swap(i, n)
	}
	old[n].index = -1
	old[n] = nil
	*h = old[:n]
	if i < n && !(*h).siftDown(i) {
		(*h).siftUp(i)
	}
}

// Engine is a discrete-event simulation engine. The zero value is ready to
// use and starts at virtual time zero.
type Engine struct {
	now       float64
	seq       uint64
	queue     eventHeap
	free      []*event // recycled event records; see alloc/recycle
	firing    EventID  // ID of the event whose handler is running; 0 between events
	pending   map[EventID]*event
	fired     uint64
	stopped   bool
	tracer    Tracer
	spans     SpanTracer // tracer's SpanTracer side, cached; nil when absent
	watch     *Watch     // live ops view; nil when no observer is attached
	lastLabel string     // label of the most recently fired event
}

// alloc returns a zeroed event record, reusing a recycled one when
// available so steady-state scheduling allocates nothing.
//
//simlint:hotpath
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		*ev = event{}
		return ev
	}
	return &event{} //simlint:allow hotalloc -- freelist grow path: runs once per peak-queue-depth slot, then never again
}

// recycle returns a popped event record to the freelist. The caller must
// hold the only reference: records are recycled after their handler ran or
// after cancellation, and EventIDs never dangle because identity lives in
// the pending map, not the record.
//
//simlint:hotpath
func (e *Engine) recycle(ev *event) {
	e.free = append(e.free, ev)
}

// SetTracer installs (or, with nil, removes) the engine's activity tracer.
// The tracer's SpanTracer extension, if implemented, is cached here so
// EmitSpan costs one nil check — not a type assertion — per call.
func (e *Engine) SetTracer(t Tracer) {
	e.tracer = t
	e.spans, _ = t.(SpanTracer)
}

// EmitSpan forwards a logical interval to the tracer's SpanTracer side.
// It is a no-op (and allocation-free) when no span tracer is installed.
func (e *Engine) EmitSpan(label string, start, end float64) {
	if e.spans != nil {
		e.spans.Span(label, start, end)
	}
}

// SetWatch installs (or, with nil, removes) a lock-free live view updated by
// RunGuarded after every fired event. With no watch installed the run loop
// pays one nil check per event and allocates nothing.
func (e *Engine) SetWatch(w *Watch) { e.watch = w }

// New returns an engine with its clock at zero.
func New() *Engine {
	return &Engine{pending: make(map[EventID]*event)}
}

func (e *Engine) ensure() {
	if e.pending == nil {
		e.pending = make(map[EventID]*event)
	}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled, not-yet-fired, not-canceled
// events.
func (e *Engine) Pending() int { return len(e.pending) }

// Schedule arranges for h to run delay seconds after the current virtual
// time. A negative delay is an error because it would rewind causality;
// a zero delay fires at the current instant, after all events already
// scheduled for that instant.
func (e *Engine) Schedule(delay float64, h Handler) (EventID, error) {
	return e.ScheduleLabeled(delay, "", h)
}

// ScheduleLabeled is Schedule with a tracer label attached to the event.
// Labels should be constant strings ("arrival", "service", ...): attaching
// one costs nothing and gives the event trace readable handler names.
func (e *Engine) ScheduleLabeled(delay float64, label string, h Handler) (EventID, error) {
	if delay < 0 || math.IsNaN(delay) {
		return 0, fmt.Errorf("des: negative or NaN delay %v", delay)
	}
	return e.AtLabeled(e.now+delay, label, h)
}

// MustSchedule is Schedule for delays the caller has already validated;
// it panics on a negative or NaN delay, which always indicates a programming
// error in the model rather than bad input.
func (e *Engine) MustSchedule(delay float64, h Handler) EventID {
	return e.MustScheduleLabeled(delay, "", h)
}

// MustScheduleLabeled is MustSchedule with a tracer label.
func (e *Engine) MustScheduleLabeled(delay float64, label string, h Handler) EventID {
	id, err := e.ScheduleLabeled(delay, label, h)
	if err != nil {
		panic(err)
	}
	return id
}

// At arranges for h to run at absolute virtual time t, which must not be in
// the past.
func (e *Engine) At(t float64, h Handler) (EventID, error) {
	return e.AtLabeled(t, "", h)
}

// AtLabeled is At with a tracer label. It is the kernel's scheduling hot
// path: one call per simulated event, allocation-free in steady state
// thanks to the event freelist.
//
//simlint:hotpath
func (e *Engine) AtLabeled(t float64, label string, h Handler) (EventID, error) {
	if h == nil {
		return 0, errors.New("des: nil handler")
	}
	if t < e.now || math.IsNaN(t) {
		return 0, fmt.Errorf("des: schedule time %v is before now %v", t, e.now) //simlint:allow hotalloc -- error branch: fires once on a caller bug, never in steady state
	}
	e.ensure()
	e.seq++
	ev := e.alloc()
	ev.time, ev.seq, ev.handler, ev.label = t, e.seq, h, label
	e.queue.push(ev)
	id := EventID(ev.seq)
	e.pending[id] = ev
	if e.tracer != nil {
		e.tracer.EventScheduled(ev.seq, label, t, e.now)
	}
	return id, nil
}

// Cancel removes a scheduled event. Canceling an event that already fired,
// was already canceled, or never existed reports false.
func (e *Engine) Cancel(id EventID) bool {
	ev, ok := e.pending[id]
	if !ok {
		return false
	}
	delete(e.pending, id)
	ev.canceled = true
	if e.tracer != nil {
		e.tracer.EventCanceled(ev.seq, ev.label, e.now)
	}
	// A pending event is always still queued (index >= 0); the guard only
	// protects against a record popped concurrently, which cannot happen
	// on this single-threaded engine.
	if ev.index >= 0 {
		e.queue.remove(ev.index)
		e.recycle(ev)
	}
	return true
}

// Stop makes the current Run call return after the in-flight event handler
// finishes. Scheduled events remain queued and a later Run resumes them.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the single earliest pending event, advancing the clock to its
// timestamp. It reports false when the queue is empty. While the handler
// runs, FiringID reports the event's ID; the record itself is recycled to
// the freelist once the handler (and tracer) are done with it.
//
//simlint:hotpath
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := e.queue.pop()
		if ev.canceled {
			e.recycle(ev)
			continue
		}
		id := EventID(ev.seq)
		delete(e.pending, id)
		e.now = ev.time
		e.fired++
		e.lastLabel = ev.label
		e.firing = id
		if tr := e.tracer; tr != nil {
			start := time.Now() //simlint:allow detrand -- wall-clock handler timing feeds the trace file only, never simulation state
			ev.handler(e)
			tr.EventFired(ev.seq, ev.label, ev.time, time.Since(start).Nanoseconds()) //simlint:allow detrand -- see above
		} else {
			ev.handler(e)
		}
		e.firing = 0
		e.recycle(ev)
		return true
	}
	return false
}

// FiringID returns the ID of the event whose handler is currently running,
// or 0 between events. Dispatchers that demultiplex one shared handler over
// many scheduled events key their lookup on it, which lets them schedule a
// single cached closure instead of allocating one closure per event.
func (e *Engine) FiringID() EventID { return e.firing }

// Run fires events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunGuarded is Run with a watchdog: if stallLimit consecutive events fire
// without the virtual clock advancing — the signature of a handler that
// keeps rescheduling itself at the current instant — it stops and returns a
// diagnostic error instead of spinning forever. Legitimate same-instant
// bursts (simultaneous arrivals, zero-delay kicks) are fine as long as they
// stay below the limit, so callers should pick a limit far above any
// plausible burst. It returns nil when the queue drains or Stop is called.
func (e *Engine) RunGuarded(stallLimit uint64) error {
	if stallLimit == 0 {
		return errors.New("des: watchdog stall limit must be positive")
	}
	e.watch.setLimit(stallLimit)
	e.stopped = false
	var streak uint64
	last := math.Inf(-1)
	for !e.stopped {
		if !e.Step() {
			e.watch.publish(e.now, e.fired, uint64(len(e.pending)), streak, e.lastLabel)
			return nil
		}
		if e.now != last {
			last = e.now
			streak = 1
		} else {
			streak++
		}
		if w := e.watch; w != nil {
			w.publish(e.now, e.fired, uint64(len(e.pending)), streak, e.lastLabel)
		}
		if streak >= stallLimit {
			serr := &StallError{
				Streak:    streak,
				SimTime:   e.now,
				Fired:     e.fired,
				Pending:   len(e.pending),
				LastLabel: e.lastLabel,
			}
			e.watch.setStall(serr)
			return serr
		}
	}
	return nil
}

// RunUntil fires events with timestamps <= end, then sets the clock to end.
// It returns ErrStalled if the queue drained strictly before end (the clock
// is still advanced to end so energy integration over wall time stays
// consistent).
func (e *Engine) RunUntil(end float64) error {
	if end < e.now {
		return fmt.Errorf("des: end time %v is before now %v", end, e.now)
	}
	e.stopped = false
	for !e.stopped {
		next, ok := e.peek()
		if !ok {
			stalled := e.now < end
			e.now = end
			if stalled {
				return ErrStalled
			}
			return nil
		}
		if next > end {
			e.now = end
			return nil
		}
		e.Step()
	}
	return nil
}

// Seq returns the engine's monotone event sequence counter: the number of
// events ever scheduled. Together with Fired it pins an engine's position in
// its deterministic trajectory, which is what checkpoint/restore preserves.
func (e *Engine) Seq() uint64 { return e.seq }

// PendingIDs returns the IDs of all live (scheduled, not fired, not
// canceled) events in ascending sequence order — i.e. the order they were
// originally scheduled. A checkpoint serializes pending events in this order
// so a restore can re-schedule them with identical FIFO tie-breaking.
func (e *Engine) PendingIDs() []EventID {
	ids := make([]EventID, 0, len(e.pending))
	for id := range e.pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// EventTime returns the absolute virtual time a pending event will fire at.
func (e *Engine) EventTime(id EventID) (float64, bool) {
	ev, ok := e.pending[id]
	if !ok {
		return 0, false
	}
	return ev.time, true
}

// BeginRestore prepares a fresh engine to be reloaded from a checkpoint
// taken at virtual time now. It is only valid on an engine that has never
// scheduled or fired anything; the caller then re-schedules the snapshot's
// pending events (in their original sequence order, at their original
// absolute times, via At/AtLabeled) and calls FinishRestore.
func (e *Engine) BeginRestore(now float64) error {
	if e.seq != 0 || e.fired != 0 || len(e.pending) != 0 {
		return errors.New("des: BeginRestore requires a fresh engine")
	}
	if now < 0 || math.IsNaN(now) {
		return fmt.Errorf("des: BeginRestore time %v invalid", now)
	}
	e.now = now
	return nil
}

// FinishRestore pins the sequence and fired counters to the checkpoint's
// values after the pending events have been re-scheduled. seq must be at
// least as large as the restore-time counter so future events keep sorting
// after the restored ones exactly as they would have in the original run.
func (e *Engine) FinishRestore(seq, fired uint64) error {
	if seq < e.seq {
		return fmt.Errorf("des: FinishRestore seq %d below already-scheduled %d", seq, e.seq)
	}
	e.seq = seq
	e.fired = fired
	return nil
}

// peek returns the timestamp of the earliest live event.
func (e *Engine) peek() (float64, bool) {
	for len(e.queue) > 0 {
		if e.queue[0].canceled {
			e.recycle(e.queue.pop())
			continue
		}
		return e.queue[0].time, true
	}
	return 0, false
}

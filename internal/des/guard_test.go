package des

import (
	"strings"
	"testing"
)

// TestRunGuardedEdgeCases covers the watchdog's boundary behaviour: an empty
// queue, a zero (already-expired) stall limit, a same-instant burst exactly
// at the limit, and the watchdog firing on the very last pending event.
func TestRunGuardedEdgeCases(t *testing.T) {
	cases := []struct {
		name       string
		setup      func(e *Engine)
		stallLimit uint64
		wantErr    string // "" means nil error
		wantFired  uint64
	}{
		{
			name:       "zero pending events drains immediately",
			setup:      func(e *Engine) {},
			stallLimit: 10,
			wantErr:    "",
			wantFired:  0,
		},
		{
			name: "zero stall limit is an already-expired deadline",
			setup: func(e *Engine) {
				e.MustSchedule(1, func(*Engine) {})
			},
			stallLimit: 0,
			wantErr:    "stall limit must be positive",
			wantFired:  0,
		},
		{
			name: "burst below the limit is fine",
			setup: func(e *Engine) {
				for i := 0; i < 4; i++ {
					e.MustSchedule(0, func(*Engine) {})
				}
				e.MustSchedule(1, func(*Engine) {})
			},
			stallLimit: 5,
			wantErr:    "",
			wantFired:  5,
		},
		{
			name: "watchdog fires during the final event",
			// Three same-instant events and nothing after them: the stall
			// limit is reached exactly when the last pending event fires, so
			// the watchdog must still report the stall rather than letting
			// the drained queue mask it.
			setup: func(e *Engine) {
				for i := 0; i < 3; i++ {
					e.MustSchedule(0, func(*Engine) {})
				}
			},
			stallLimit: 3,
			wantErr:    "event loop stalled",
			wantFired:  3,
		},
		{
			name: "self-rescheduling handler trips the watchdog",
			setup: func(e *Engine) {
				var loop Handler
				loop = func(e *Engine) { e.MustSchedule(0, loop) }
				e.MustSchedule(0, loop)
			},
			stallLimit: 50,
			wantErr:    "event loop stalled",
			wantFired:  50,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := New()
			tc.setup(e)
			err := e.RunGuarded(tc.stallLimit)
			switch {
			case tc.wantErr == "" && err != nil:
				t.Fatalf("RunGuarded: %v", err)
			case tc.wantErr != "" && err == nil:
				t.Fatalf("RunGuarded: want error containing %q, got nil", tc.wantErr)
			case tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr):
				t.Fatalf("RunGuarded: error %v does not contain %q", err, tc.wantErr)
			}
			if e.Fired() != tc.wantFired {
				t.Fatalf("fired %d events, want %d", e.Fired(), tc.wantFired)
			}
		})
	}
}

// TestRestorePreservesOrdering checkpoints a running engine's pending set by
// hand and verifies a restored engine fires the remaining events in the
// identical order, including same-instant FIFO ties with newly scheduled
// events.
func TestRestorePreservesOrdering(t *testing.T) {
	var origOrder []string
	record := func(log *[]string, name string) Handler {
		return func(*Engine) { *log = append(*log, name) }
	}

	build := func(log *[]string) *Engine {
		e := New()
		e.MustSchedule(1, record(log, "a"))
		e.MustSchedule(2, record(log, "b1"))
		e.MustSchedule(2, record(log, "b2"))
		e.MustSchedule(3, record(log, "c"))
		return e
	}

	orig := build(&origOrder)
	if !orig.Step() { // fire "a"; b1,b2,c remain pending
		t.Fatal("no event fired")
	}

	// Snapshot: pending IDs in scheduling order with their absolute times.
	type saved struct {
		t    float64
		name string
	}
	names := map[EventID]string{2: "b1", 3: "b2", 4: "c"}
	var snap []saved
	for _, id := range orig.PendingIDs() {
		at, ok := orig.EventTime(id)
		if !ok {
			t.Fatalf("pending event %d has no time", id)
		}
		snap = append(snap, saved{at, names[id]})
	}
	savedNow, savedSeq, savedFired := orig.Now(), orig.Seq(), orig.Fired()

	// Restore into a fresh engine.
	var restoredOrder []string
	re := New()
	if err := re.BeginRestore(savedNow); err != nil {
		t.Fatal(err)
	}
	for _, s := range snap {
		if _, err := re.At(s.t, record(&restoredOrder, s.name)); err != nil {
			t.Fatal(err)
		}
	}
	if err := re.FinishRestore(savedSeq, savedFired); err != nil {
		t.Fatal(err)
	}
	if re.Now() != savedNow || re.Seq() != savedSeq || re.Fired() != savedFired {
		t.Fatalf("restored counters now=%v seq=%d fired=%d, want %v/%d/%d",
			re.Now(), re.Seq(), re.Fired(), savedNow, savedSeq, savedFired)
	}

	// Schedule one more same-instant event on both engines: it must sort
	// after the restored t=2 pair in both.
	orig.MustSchedule(1, record(&origOrder, "late"))
	re.MustSchedule(1, record(&restoredOrder, "late"))

	orig.Run()
	re.Run()

	if strings.Join(origOrder[1:], ",") != strings.Join(restoredOrder, ",") {
		t.Fatalf("orders diverge: original %v, restored %v", origOrder[1:], restoredOrder)
	}
	if orig.Fired() != re.Fired() {
		t.Fatalf("fired counts diverge: %d vs %d", orig.Fired(), re.Fired())
	}
}

func TestBeginRestoreRequiresFreshEngine(t *testing.T) {
	e := New()
	e.MustSchedule(1, func(*Engine) {})
	if err := e.BeginRestore(5); err == nil {
		t.Fatal("BeginRestore on a used engine should fail")
	}
	fresh := New()
	if err := fresh.BeginRestore(5); err != nil {
		t.Fatal(err)
	}
	fresh.MustSchedule(0, func(*Engine) {})
	if err := fresh.FinishRestore(0, 0); err == nil {
		t.Fatal("FinishRestore with a too-small seq should fail")
	}
}

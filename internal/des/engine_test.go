package des

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestZeroValueReady(t *testing.T) {
	var e Engine
	ran := false
	if _, err := e.Schedule(1, func(*Engine) { ran = true }); err != nil {
		t.Fatalf("Schedule on zero value: %v", err)
	}
	e.Run()
	if !ran {
		t.Fatal("event did not fire")
	}
	if e.Now() != 1 {
		t.Fatalf("Now = %v, want 1", e.Now())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var got []float64
	for _, d := range []float64{5, 1, 3, 2, 4} {
		d := d
		e.MustSchedule(d, func(en *Engine) { got = append(got, en.Now()) })
	}
	e.Run()
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events fired out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

func TestFIFOTieBreaking(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.MustSchedule(7, func(*Engine) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired in order %v, want FIFO", order)
		}
	}
}

func TestZeroDelayFiresAfterCurrentInstant(t *testing.T) {
	e := New()
	var order []string
	e.MustSchedule(1, func(en *Engine) {
		order = append(order, "first")
		en.MustSchedule(0, func(*Engine) { order = append(order, "nested") })
	})
	e.MustSchedule(1, func(*Engine) { order = append(order, "second") })
	e.Run()
	want := []string{"first", "second", "nested"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestNegativeDelayRejected(t *testing.T) {
	e := New()
	if _, err := e.Schedule(-1, func(*Engine) {}); err == nil {
		t.Fatal("negative delay accepted")
	}
	if _, err := e.Schedule(math.NaN(), func(*Engine) {}); err == nil {
		t.Fatal("NaN delay accepted")
	}
	if _, err := e.At(-0.5, func(*Engine) {}); err == nil {
		t.Fatal("past absolute time accepted")
	}
}

func TestNilHandlerRejected(t *testing.T) {
	e := New()
	if _, err := e.At(1, nil); err == nil {
		t.Fatal("nil handler accepted")
	}
}

func TestMustSchedulePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSchedule did not panic on negative delay")
		}
	}()
	New().MustSchedule(-1, func(*Engine) {})
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	id := e.MustSchedule(1, func(*Engine) { fired = true })
	if !e.Cancel(id) {
		t.Fatal("Cancel reported false for live event")
	}
	if e.Cancel(id) {
		t.Fatal("double Cancel reported true")
	}
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after cancel+run, want 0", e.Pending())
	}
}

func TestCancelFromWithinHandler(t *testing.T) {
	e := New()
	fired := false
	var victim EventID
	victim = e.MustSchedule(2, func(*Engine) { fired = true })
	e.MustSchedule(1, func(en *Engine) {
		if !en.Cancel(victim) {
			t.Error("in-handler cancel failed")
		}
	})
	e.Run()
	if fired {
		t.Fatal("event canceled from a handler still fired")
	}
}

func TestCancelUnknownID(t *testing.T) {
	e := New()
	if e.Cancel(12345) {
		t.Fatal("Cancel of unknown id reported true")
	}
}

func TestRunUntilAdvancesClockToEnd(t *testing.T) {
	e := New()
	e.MustSchedule(1, func(*Engine) {})
	if err := e.RunUntil(10); err != ErrStalled {
		t.Fatalf("RunUntil = %v, want ErrStalled", err)
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %v, want 10", e.Now())
	}
}

func TestRunUntilLeavesLaterEventsQueued(t *testing.T) {
	e := New()
	fired := 0
	e.MustSchedule(1, func(*Engine) { fired++ })
	e.MustSchedule(5, func(*Engine) { fired++ })
	if err := e.RunUntil(2); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d at t=2, want 1", fired)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.Run()
	if fired != 2 {
		t.Fatalf("fired = %d after Run, want 2", fired)
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	e := New()
	fired := false
	e.MustSchedule(3, func(*Engine) { fired = true })
	if err := e.RunUntil(3); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if !fired {
		t.Fatal("event at exactly end time did not fire")
	}
}

func TestRunUntilPastRejected(t *testing.T) {
	e := New()
	e.MustSchedule(5, func(*Engine) {})
	if err := e.RunUntil(5); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if err := e.RunUntil(1); err == nil {
		t.Fatal("RunUntil into the past accepted")
	}
}

func TestStop(t *testing.T) {
	e := New()
	fired := 0
	e.MustSchedule(1, func(en *Engine) { fired++; en.Stop() })
	e.MustSchedule(2, func(*Engine) { fired++ })
	e.Run()
	if fired != 1 {
		t.Fatalf("fired = %d after Stop, want 1", fired)
	}
	e.Run() // resumes
	if fired != 2 {
		t.Fatalf("fired = %d after resume, want 2", fired)
	}
}

func TestChainedScheduling(t *testing.T) {
	e := New()
	count := 0
	var tick Handler
	tick = func(en *Engine) {
		count++
		if count < 100 {
			en.MustSchedule(0.5, tick)
		}
	}
	e.MustSchedule(0.5, tick)
	e.Run()
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
	if math.Abs(e.Now()-50) > 1e-9 {
		t.Fatalf("Now = %v, want 50", e.Now())
	}
	if e.Fired() != 100 {
		t.Fatalf("Fired = %d, want 100", e.Fired())
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []float64 {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		var trace []float64
		var ids []EventID
		for i := 0; i < 500; i++ {
			id := e.MustSchedule(rng.Float64()*100, func(en *Engine) {
				trace = append(trace, en.Now())
			})
			ids = append(ids, id)
		}
		for i := 0; i < 100; i++ {
			e.Cancel(ids[rng.Intn(len(ids))])
		}
		e.Run()
		return trace
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: for any set of non-negative delays, the engine fires exactly one
// event per schedule and the observed fire times are the sorted delays.
func TestPropertyFireTimesAreSortedDelays(t *testing.T) {
	f := func(raw []float64) bool {
		e := New()
		var want []float64
		for _, d := range raw {
			d = math.Abs(d)
			if math.IsNaN(d) || math.IsInf(d, 0) {
				continue
			}
			want = append(want, d)
			e.MustSchedule(d, func(*Engine) {})
		}
		var got []float64
		for e.Step() {
			got = append(got, e.Now())
		}
		sort.Float64s(want)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: canceling a random subset leaves exactly the complement firing.
func TestPropertyCancelComplement(t *testing.T) {
	f := func(n uint8, mask uint64) bool {
		e := New()
		total := int(n%64) + 1
		fired := make([]bool, total)
		ids := make([]EventID, total)
		for i := 0; i < total; i++ {
			i := i
			ids[i] = e.MustSchedule(float64(i), func(*Engine) { fired[i] = true })
		}
		for i := 0; i < total; i++ {
			if mask&(1<<uint(i)) != 0 {
				e.Cancel(ids[i])
			}
		}
		e.Run()
		for i := 0; i < total; i++ {
			wantFired := mask&(1<<uint(i)) == 0
			if fired[i] != wantFired {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	e := New()
	h := func(*Engine) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.MustSchedule(float64(i%97)*0.001, h)
		if i%64 == 63 {
			for e.Step() {
			}
		}
	}
	for e.Step() {
	}
}

func BenchmarkHotLoop(b *testing.B) {
	// Self-rescheduling event chain: the dominant pattern in the array
	// simulator (request completion scheduling the next service).
	e := New()
	n := 0
	var tick Handler
	tick = func(en *Engine) {
		n++
		if n < b.N {
			en.MustSchedule(0.001, tick)
		}
	}
	e.MustSchedule(0.001, tick)
	b.ResetTimer()
	e.Run()
}

func TestRunGuardedDetectsStall(t *testing.T) {
	e := New()
	// A handler that reschedules itself with zero delay forever: virtual
	// time never advances, so an unguarded Run would spin indefinitely.
	var spin Handler
	spin = func(en *Engine) { en.MustSchedule(0, spin) }
	e.MustSchedule(1, spin)
	err := e.RunGuarded(1000)
	if err == nil {
		t.Fatal("expected watchdog error for zero-delay self-rescheduling loop")
	}
	if e.Now() != 1 {
		t.Fatalf("clock should be pinned at the stall instant, got %v", e.Now())
	}
}

func TestRunGuardedPassesHealthyLoop(t *testing.T) {
	e := New()
	n := 0
	var tick Handler
	tick = func(en *Engine) {
		n++
		if n < 5000 {
			en.MustSchedule(0.001, tick)
		}
	}
	e.MustSchedule(0.001, tick)
	if err := e.RunGuarded(10); err != nil {
		t.Fatalf("healthy advancing loop tripped the watchdog: %v", err)
	}
	if n != 5000 {
		t.Fatalf("fired %d of 5000 events", n)
	}
}

func TestRunGuardedAllowsBoundedBursts(t *testing.T) {
	e := New()
	fired := 0
	for i := 0; i < 50; i++ {
		e.MustSchedule(1, func(*Engine) { fired++ }) // same-instant burst
	}
	if err := e.RunGuarded(100); err != nil {
		t.Fatalf("burst below the limit tripped the watchdog: %v", err)
	}
	if fired != 50 {
		t.Fatalf("fired %d of 50", fired)
	}
}

func TestRunGuardedZeroLimitRejected(t *testing.T) {
	if err := New().RunGuarded(0); err == nil {
		t.Fatal("expected error for zero stall limit")
	}
}

package des

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

// TestWatchPublishesEnginePosition runs a guarded engine with a watch
// attached and checks the final snapshot matches the engine's own counters.
func TestWatchPublishesEnginePosition(t *testing.T) {
	e := New()
	w := NewWatch()
	e.SetWatch(w)
	for i := 0; i < 5; i++ {
		e.MustScheduleLabeled(float64(i), "tick", func(*Engine) {})
	}
	if err := e.RunGuarded(100); err != nil {
		t.Fatal(err)
	}
	snap := w.Snapshot()
	if snap.Fired != e.Fired() {
		t.Fatalf("snapshot fired %d, engine fired %d", snap.Fired, e.Fired())
	}
	if snap.SimTime != e.Now() {
		t.Fatalf("snapshot sim time %v, engine now %v", snap.SimTime, e.Now())
	}
	if snap.LastLabel != "tick" {
		t.Fatalf("snapshot last label %q, want %q", snap.LastLabel, "tick")
	}
	if snap.StallLimit != 100 {
		t.Fatalf("snapshot stall limit %d, want 100", snap.StallLimit)
	}
	if snap.Stall != nil {
		t.Fatalf("unexpected stall record %+v", snap.Stall)
	}
	w.MarkDone()
	if !w.Snapshot().Done {
		t.Fatal("MarkDone not visible in snapshot")
	}
}

// TestWatchStallRecordsStructuredError checks the watchdog surfaces a
// *StallError (extractable with errors.As) and mirrors it into the watch.
func TestWatchStallRecordsStructuredError(t *testing.T) {
	e := New()
	w := NewWatch()
	e.SetWatch(w)
	var loop Handler
	loop = func(e *Engine) { e.MustScheduleLabeled(0, "spin", loop) }
	e.MustScheduleLabeled(0, "spin", loop)
	err := e.RunGuarded(25)
	if err == nil {
		t.Fatal("expected a stall error")
	}
	var serr *StallError
	if !errors.As(err, &serr) {
		t.Fatalf("error %T is not a *StallError", err)
	}
	if serr.Streak != 25 || serr.LastLabel != "spin" {
		t.Fatalf("stall record %+v, want streak 25 label spin", serr)
	}
	if serr.Fired != e.Fired() || serr.SimTime != e.Now() {
		t.Fatalf("stall record %+v does not match engine fired=%d now=%v",
			serr, e.Fired(), e.Now())
	}
	if got := w.Snapshot().Stall; got != serr {
		t.Fatalf("watch stall %+v, want the returned error %+v", got, serr)
	}
}

// TestWatchSnapshotConsistentUnderConcurrentReads hammers Snapshot from
// several goroutines while the engine runs: every observed snapshot must be
// internally consistent (fired never decreases, sim time never decreases),
// which is what the seqlock guarantees. Run under -race this also proves the
// single-writer/many-reader protocol is data-race-free.
func TestWatchSnapshotConsistentUnderConcurrentReads(t *testing.T) {
	e := New()
	w := NewWatch()
	e.SetWatch(w)
	const n = 20000
	for i := 0; i < n; i++ {
		e.MustScheduleLabeled(float64(i)*1e-3, "tick", func(*Engine) {})
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastFired uint64
			var lastTime float64
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := w.Snapshot()
				if s.Fired < lastFired {
					t.Errorf("fired went backwards: %d -> %d", lastFired, s.Fired)
					return
				}
				if s.SimTime < lastTime {
					t.Errorf("sim time went backwards: %v -> %v", lastTime, s.SimTime)
					return
				}
				lastFired, lastTime = s.Fired, s.SimTime
			}
		}()
	}
	if err := e.RunGuarded(1000); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if s := w.Snapshot(); s.Fired != n {
		t.Fatalf("final snapshot fired %d, want %d", s.Fired, n)
	}
}

// TestWatchNilSafe exercises every Watch method on a nil receiver: like all
// telemetry handles, a nil watch is a valid no-op sink.
func TestWatchNilSafe(t *testing.T) {
	var w *Watch
	w.publish(1, 2, 3, 4, "x")
	w.setLimit(10)
	w.setStall(&StallError{})
	w.MarkDone()
	if s := w.Snapshot(); s != (WatchSnapshot{}) {
		t.Fatalf("nil watch snapshot %+v, want zero", s)
	}
	e := New()
	e.SetWatch(nil)
	e.MustSchedule(0, func(*Engine) {})
	if err := e.RunGuarded(10); err != nil {
		t.Fatal(err)
	}
}

// TestStallErrorFormatAndFields pins the watchdog error's message shape and
// field round-trip: ops surfaces (/healthz, sweep-cell failure markers)
// report these fields verbatim, and existing callers match on the
// "event loop stalled" phrasing.
func TestStallErrorFormatAndFields(t *testing.T) {
	e := &StallError{
		Streak:    1000,
		SimTime:   86400.5,
		Fired:     123456,
		Pending:   7,
		LastLabel: "rebuild-step",
	}
	msg := e.Error()
	for _, want := range []string{
		"event loop stalled",
		"1000 consecutive events",
		"t=86400.5",
		`last event "rebuild-step"`,
		"total fired 123456",
		"pending 7",
	} {
		if !strings.Contains(msg, want) {
			t.Fatalf("StallError message %q missing %q", msg, want)
		}
	}
	// An unlabeled stall renders the empty label explicitly rather than
	// dropping the clause.
	if msg := (&StallError{}).Error(); !strings.Contains(msg, `last event ""`) {
		t.Fatalf("zero StallError message %q does not render the empty label", msg)
	}
}

package des

import (
	"fmt"
	"math"
	"sync/atomic"
)

// StallError is the structured diagnostic RunGuarded returns when the
// watchdog trips: stallLimit consecutive events fired without the virtual
// clock advancing. It carries enough state to identify the spinning chain —
// the label of the last fired event is the chain id for every event class
// the simulator schedules — so an ops plane (/healthz) and sweep-cell
// failure markers can report *what* wedged, not just that something did.
type StallError struct {
	// Streak is the number of consecutive same-instant events fired when
	// the watchdog tripped.
	Streak uint64
	// SimTime is the virtual time (seconds) the loop is pinned at.
	SimTime float64
	// Fired is the total number of events executed by the engine.
	Fired uint64
	// Pending is the number of scheduled, not-yet-fired events.
	Pending int
	// LastLabel is the tracer label of the last fired event — the event
	// chain spinning at the stall instant ("" for unlabeled events).
	LastLabel string
}

// Error keeps the historical "event loop stalled" phrasing so existing
// callers matching on the message keep working.
func (e *StallError) Error() string {
	return fmt.Sprintf(
		"des: watchdog: event loop stalled — %d consecutive events at t=%v without progress (last event %q, total fired %d, pending %d)",
		e.Streak, e.SimTime, e.LastLabel, e.Fired, e.Pending)
}

// Watch is a lock-free live view of a running engine for observers on other
// goroutines (the ops server's /metrics and /healthz handlers). The engine
// is single-threaded by design, so the Watch has exactly one writer — the
// simulation goroutine inside RunGuarded — and any number of readers.
//
// Consistency is a seqlock: the writer bumps seq to odd, stores the fields
// (each individually atomic, so the race detector sees only synchronized
// access), and bumps seq to even; readers retry until they observe the same
// even seq on both sides of the field loads. Snapshot therefore returns a
// cross-field-consistent view without the writer ever taking a lock.
//
// A nil *Watch is a valid no-op sink, matching the telemetry handle idiom:
// an engine with no watch installed pays one nil check per event and zero
// allocations. The Watch itself never reads the wall clock — staleness
// detection against real time belongs to the observer, keeping this package
// inside the detrand determinism contract.
type Watch struct {
	seq     atomic.Uint64
	simTime atomic.Uint64 // math.Float64bits
	fired   atomic.Uint64
	pending atomic.Uint64
	streak  atomic.Uint64
	limit   atomic.Uint64
	label   atomic.Pointer[string]
	stall   atomic.Pointer[StallError]
	done    atomic.Bool

	// interned maps event labels to stable pointers so the per-event
	// publish settles to zero allocations: labels are a small fixed set of
	// compile-time constants. Writer-local; never iterated.
	interned map[string]*string
}

// WatchSnapshot is one consistent reading of a Watch.
type WatchSnapshot struct {
	SimTime    float64
	Fired      uint64
	Pending    uint64
	Streak     uint64
	StallLimit uint64
	LastLabel  string
	Done       bool
	Stall      *StallError
}

// NewWatch returns an empty watch ready to be installed via SetWatch.
func NewWatch() *Watch {
	return &Watch{interned: make(map[string]*string)}
}

// publish records the engine's position after one fired event. Called only
// from the engine goroutine.
func (w *Watch) publish(simTime float64, fired, pending, streak uint64, label string) {
	if w == nil {
		return
	}
	lp, ok := w.interned[label]
	if !ok {
		s := label
		lp = &s
		w.interned[label] = lp
	}
	w.seq.Add(1) // odd: snapshot in progress
	w.simTime.Store(math.Float64bits(simTime))
	w.fired.Store(fired)
	w.pending.Store(pending)
	w.streak.Store(streak)
	w.label.Store(lp)
	w.seq.Add(1) // even: snapshot consistent
}

// setLimit records the active watchdog stall limit so observers can report
// streak pressure as a fraction of the trip point.
func (w *Watch) setLimit(limit uint64) {
	if w == nil {
		return
	}
	w.limit.Store(limit)
}

// setStall records the watchdog diagnostic when the loop trips.
func (w *Watch) setStall(err *StallError) {
	if w == nil {
		return
	}
	w.stall.Store(err)
}

// MarkDone flags the watched run as finished, so observers distinguish "no
// events advancing because the run completed" from a hang.
func (w *Watch) MarkDone() {
	if w == nil {
		return
	}
	w.done.Store(true)
}

// Snapshot returns a consistent view of the watch. Safe to call from any
// goroutine; a nil watch yields the zero snapshot.
func (w *Watch) Snapshot() WatchSnapshot {
	if w == nil {
		return WatchSnapshot{}
	}
	var snap WatchSnapshot
	for {
		s1 := w.seq.Load()
		if s1%2 != 0 {
			continue // writer mid-publish; retry
		}
		snap.SimTime = math.Float64frombits(w.simTime.Load())
		snap.Fired = w.fired.Load()
		snap.Pending = w.pending.Load()
		snap.Streak = w.streak.Load()
		if w.seq.Load() == s1 {
			break
		}
	}
	snap.StallLimit = w.limit.Load()
	if lp := w.label.Load(); lp != nil {
		snap.LastLabel = *lp
	}
	snap.Done = w.done.Load()
	snap.Stall = w.stall.Load()
	return snap
}

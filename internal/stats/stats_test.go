package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestStreamBasics(t *testing.T) {
	var s Stream
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 {
		t.Fatal("zero value not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	// Population variance is 4; sample variance = 32/7.
	if math.Abs(s.Variance()-32.0/7) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", s.Variance(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.Sum() != 40 {
		t.Fatalf("Sum = %v", s.Sum())
	}
	if math.Abs(s.StdDev()-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("StdDev = %v", s.StdDev())
	}
}

func TestStreamSingleObservation(t *testing.T) {
	var s Stream
	s.Add(3)
	if s.Variance() != 0 || s.Min() != 3 || s.Max() != 3 || s.Mean() != 3 {
		t.Fatalf("single-observation stats wrong: %+v", s)
	}
}

func TestStreamMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var whole, a, b Stream
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*5 + 2
		whole.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-9 {
		t.Fatalf("merged mean %v, want %v", a.Mean(), whole.Mean())
	}
	if math.Abs(a.Variance()-whole.Variance()) > 1e-9 {
		t.Fatalf("merged variance %v, want %v", a.Variance(), whole.Variance())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatal("merged min/max mismatch")
	}
}

func TestStreamMergeEmptyCases(t *testing.T) {
	var a, b Stream
	a.Add(1)
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 1 {
		t.Fatal("merge with empty changed N")
	}
	var c Stream
	c.Merge(&a) // merging into empty copies
	if c.N() != 1 || c.Mean() != 1 {
		t.Fatal("merge into empty failed")
	}
}

func TestHistogramConstruction(t *testing.T) {
	if _, err := NewLatencyHistogram(0, 0, 10); err == nil {
		t.Fatal("empty range accepted")
	}
	if _, err := NewLatencyHistogram(0, 2, 0); err == nil {
		t.Fatal("zero resolution accepted")
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h, err := NewLatencyHistogram(-6, 4, 50)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var xs []float64
	for i := 0; i < 100000; i++ {
		// Lognormal latencies centered around 10 ms.
		x := math.Exp(math.Log(0.01) + rng.NormFloat64())
		xs = append(xs, x)
		h.Add(x)
	}
	sort.Float64s(xs)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		got, err := h.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		want := xs[int(q*float64(len(xs)))-1]
		if math.Abs(got-want)/want > 0.07 {
			t.Errorf("q=%v: got %v, want ≈%v", q, got, want)
		}
	}
	if h.N() != 100000 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Max() != xs[len(xs)-1] {
		t.Fatal("exact max not preserved")
	}
}

func TestHistogramEdgeMass(t *testing.T) {
	h, _ := NewLatencyHistogram(-3, 1, 10)
	h.Add(0)    // under (zero)
	h.Add(-5)   // under (negative)
	h.Add(1e-9) // under range
	h.Add(1e9)  // over range
	h.Add(math.NaN())
	q, err := h.Quantile(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q-1e-3) > 1e-12 {
		t.Fatalf("under-range quantile = %v, want range floor 1e-3", q)
	}
	q, err = h.Quantile(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q-10) > 1e-9 {
		t.Fatalf("over-range quantile = %v, want range ceiling 10", q)
	}
}

func TestHistogramQuantileValidation(t *testing.T) {
	h, _ := NewLatencyHistogram(-3, 1, 10)
	if _, err := h.Quantile(0.5); err == nil {
		t.Fatal("quantile of empty histogram accepted")
	}
	h.Add(0.01)
	if _, err := h.Quantile(-0.1); err == nil {
		t.Fatal("negative quantile accepted")
	}
	if _, err := h.Quantile(1.1); err == nil {
		t.Fatal("quantile above 1 accepted")
	}
	if _, err := h.Quantile(math.NaN()); err == nil {
		t.Fatal("NaN quantile accepted")
	}
}

func TestTimeWeightedMean(t *testing.T) {
	var tw TimeWeighted
	// Signal: 0 on [0,10), 4 on [10,20), 2 on [20,40).
	if err := tw.Set(10, 4); err != nil {
		t.Fatal(err)
	}
	if err := tw.Set(20, 2); err != nil {
		t.Fatal(err)
	}
	got, err := tw.Mean(40)
	if err != nil {
		t.Fatal(err)
	}
	want := (0.0*10 + 4*10 + 2*20) / 40
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
}

func TestTimeWeightedErrors(t *testing.T) {
	var tw TimeWeighted
	if err := tw.Set(-1, 5); err == nil {
		t.Fatal("negative start accepted")
	}
	tw = TimeWeighted{}
	if err := tw.Set(5, 1); err != nil {
		t.Fatal(err)
	}
	if err := tw.Set(3, 2); err == nil {
		t.Fatal("time reversal accepted")
	}
	if _, err := tw.Mean(1); err == nil {
		t.Fatal("mean before last set accepted")
	}
}

func TestTimeWeightedMeanAtZero(t *testing.T) {
	var tw TimeWeighted
	got, err := tw.Mean(0)
	if err != nil || got != 0 {
		t.Fatalf("Mean(0) = %v, %v", got, err)
	}
}

// Property: stream mean is bounded by min and max; variance is non-negative.
func TestPropertyStreamInvariants(t *testing.T) {
	f := func(xs []float64) bool {
		var s Stream
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				continue
			}
			s.Add(x)
		}
		if s.N() == 0 {
			return true
		}
		return s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9 && s.Variance() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: merging any split of a sample reproduces the whole-sample
// moments.
func TestPropertyMergeEquivalence(t *testing.T) {
	f := func(xs []float64, cut uint8) bool {
		var clean []float64
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e50 {
				continue
			}
			clean = append(clean, x)
		}
		if len(clean) == 0 {
			return true
		}
		k := int(cut) % (len(clean) + 1)
		var whole, a, b Stream
		for i, x := range clean {
			whole.Add(x)
			if i < k {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(&b)
		if a.N() != whole.N() {
			return false
		}
		tol := 1e-6 * (1 + math.Abs(whole.Mean()))
		return math.Abs(a.Mean()-whole.Mean()) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram quantiles are monotone in q.
func TestPropertyQuantileMonotone(t *testing.T) {
	h, _ := NewLatencyHistogram(-6, 4, 30)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		h.Add(math.Exp(rng.NormFloat64() * 2))
	}
	f := func(q1, q2 float64) bool {
		q1 = math.Mod(math.Abs(q1), 1)
		q2 = math.Mod(math.Abs(q2), 1)
		if math.IsNaN(q1) || math.IsNaN(q2) {
			return true
		}
		lo, hi := math.Min(q1, q2), math.Max(q1, q2)
		a, err1 := h.Quantile(lo)
		b, err2 := h.Quantile(hi)
		return err1 == nil && err2 == nil && a <= b+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

package stats

import "math"

// MTTDL is a Monte-Carlo mean-time-to-data-loss estimator: data-loss events
// counted over an exposure measured in reliability-timescale hours (virtual
// hours multiplied by the fault-injection acceleration factor). Loss events
// in a renewal process are approximately Poisson over long exposures, which
// gives the normal-approximation interval below.
type MTTDL struct {
	// ExposureHours is the observed exposure on the reliability timescale.
	ExposureHours float64
	// Events is the number of data-loss events observed.
	Events int
}

// Hours returns the point estimate exposure/events; +Inf when no loss was
// observed (the estimate is then a lower-bounded censored observation).
func (m MTTDL) Hours() float64 {
	if m.Events <= 0 {
		return math.Inf(1)
	}
	return m.ExposureHours / float64(m.Events)
}

// LowerHours returns the lower edge of an approximate 95% confidence
// interval: exposure/(n + 1.96·√n). With zero events it is exposure/3.69
// (the one-sided Poisson bound), a usable "at least this good" floor.
func (m MTTDL) LowerHours() float64 {
	n := float64(m.Events)
	if m.Events <= 0 {
		return m.ExposureHours / 3.69
	}
	return m.ExposureHours / (n + 1.96*math.Sqrt(n))
}

// UpperHours returns the upper edge of the approximate 95% interval:
// exposure/(n − 1.96·√n), or +Inf when the denominator is non-positive.
func (m MTTDL) UpperHours() float64 {
	n := float64(m.Events)
	den := n - 1.96*math.Sqrt(n)
	if den <= 0 {
		return math.Inf(1)
	}
	return m.ExposureHours / den
}

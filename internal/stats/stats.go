// Package stats provides the small set of streaming statistics the
// simulator needs: Welford moments, a log-bucketed histogram for latency
// quantiles without retaining samples, and a time-weighted mean for
// piecewise-constant signals.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// Stream accumulates count, mean, variance (Welford), min, max, and sum in
// O(1) space. The zero value is ready to use.
type Stream struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
	sum  float64
}

// Add records one observation.
func (s *Stream) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.sum += x
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the observation count.
func (s *Stream) N() uint64 { return s.n }

// Mean returns the sample mean (0 when empty).
func (s *Stream) Mean() float64 { return s.mean }

// Sum returns the sum of observations.
func (s *Stream) Sum() float64 { return s.sum }

// Min returns the smallest observation (0 when empty).
func (s *Stream) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Stream) Max() float64 { return s.max }

// Variance returns the unbiased sample variance (0 for fewer than two
// observations).
func (s *Stream) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (s *Stream) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Merge folds other into s (parallel-reduction form of Welford).
func (s *Stream) Merge(other *Stream) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	n1, n2 := float64(s.n), float64(other.n)
	delta := other.mean - s.mean
	total := n1 + n2
	s.mean += delta * n2 / total
	s.m2 += other.m2 + delta*delta*n1*n2/total
	s.n += other.n
	s.sum += other.sum
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
}

// LatencyHistogram is a logarithmically bucketed histogram for positive
// durations, supporting approximate quantiles with bounded relative error
// set by the buckets-per-decade resolution.
type LatencyHistogram struct {
	loExp   int // smallest representable value is 10^loExp
	perDec  int
	buckets []uint64
	under   uint64 // values below the range (including zero/negative)
	over    uint64
	n       uint64
	stream  Stream
}

// NewLatencyHistogram covers [10^loExp, 10^hiExp) with perDecade buckets per
// decade. For response times, NewLatencyHistogram(-6, 4, 50) spans 1 µs to
// 10,000 s with <5% relative quantile error.
func NewLatencyHistogram(loExp, hiExp, perDecade int) (*LatencyHistogram, error) {
	if hiExp <= loExp {
		return nil, errors.New("stats: histogram range empty")
	}
	if perDecade < 1 {
		return nil, errors.New("stats: need at least one bucket per decade")
	}
	decades := hiExp - loExp
	return &LatencyHistogram{
		loExp:   loExp,
		perDec:  perDecade,
		buckets: make([]uint64, decades*perDecade),
	}, nil
}

// Add records a duration.
func (h *LatencyHistogram) Add(x float64) {
	h.n++
	h.stream.Add(x)
	if x <= 0 || math.IsNaN(x) {
		h.under++
		return
	}
	pos := (math.Log10(x) - float64(h.loExp)) * float64(h.perDec)
	idx := int(math.Floor(pos))
	switch {
	case idx < 0:
		h.under++
	case idx >= len(h.buckets):
		h.over++
	default:
		h.buckets[idx]++
	}
}

// N returns the number of recorded durations.
func (h *LatencyHistogram) N() uint64 { return h.n }

// Mean returns the exact mean of recorded durations.
func (h *LatencyHistogram) Mean() float64 { return h.stream.Mean() }

// Max returns the exact maximum recorded duration.
func (h *LatencyHistogram) Max() float64 { return h.stream.Max() }

// Quantile returns an approximation of the q-th quantile (q in [0,1]).
// Under- and over-range mass is attributed to the range edges.
func (h *LatencyHistogram) Quantile(q float64) (float64, error) {
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v outside [0,1]", q)
	}
	if h.n == 0 {
		return 0, errors.New("stats: empty histogram")
	}
	target := uint64(math.Ceil(q * float64(h.n)))
	if target == 0 {
		target = 1
	}
	var cum uint64 = h.under
	if cum >= target {
		return math.Pow(10, float64(h.loExp)), nil
	}
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			// Upper edge of bucket i.
			exp := float64(h.loExp) + float64(i+1)/float64(h.perDec)
			return math.Pow(10, exp), nil
		}
	}
	// Remaining mass is over-range.
	hiExp := float64(h.loExp) + float64(len(h.buckets))/float64(h.perDec)
	return math.Pow(10, hiExp), nil
}

// StreamState is the serializable form of a Stream, for checkpointing.
//
//simlint:checkpoint-for Stream
type StreamState struct {
	N    uint64  `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	Sum  float64 `json:"sum"`
}

// State exports the stream's raw accumulators.
func (s *Stream) State() StreamState {
	return StreamState{N: s.n, Mean: s.mean, M2: s.m2, Min: s.min, Max: s.max, Sum: s.sum}
}

// SetState overwrites the stream with previously exported accumulators.
func (s *Stream) SetState(st StreamState) {
	s.n, s.mean, s.m2, s.min, s.max, s.sum = st.N, st.Mean, st.M2, st.Min, st.Max, st.Sum
}

// LatencyHistogramState is the serializable form of a LatencyHistogram. The
// bucket geometry (loExp, perDec, bucket count) is included so a restore
// into a histogram with different resolution fails loudly.
//
//simlint:checkpoint-for LatencyHistogram
type LatencyHistogramState struct {
	LoExp   int         `json:"lo_exp"`
	PerDec  int         `json:"per_dec"`
	Buckets []uint64    `json:"buckets"`
	Under   uint64      `json:"under"`
	Over    uint64      `json:"over"`
	N       uint64      `json:"n"`
	Stream  StreamState `json:"stream"`
}

// State exports the histogram's raw counters.
func (h *LatencyHistogram) State() LatencyHistogramState {
	return LatencyHistogramState{
		LoExp:   h.loExp,
		PerDec:  h.perDec,
		Buckets: append([]uint64(nil), h.buckets...),
		Under:   h.under,
		Over:    h.over,
		N:       h.n,
		Stream:  h.stream.State(),
	}
}

// SetState overwrites the histogram with previously exported counters. The
// receiver's bucket geometry must match the state's.
func (h *LatencyHistogram) SetState(st LatencyHistogramState) error {
	if st.LoExp != h.loExp || st.PerDec != h.perDec || len(st.Buckets) != len(h.buckets) {
		return fmt.Errorf("stats: histogram geometry mismatch: state (%d,%d,%d) vs receiver (%d,%d,%d)",
			st.LoExp, st.PerDec, len(st.Buckets), h.loExp, h.perDec, len(h.buckets))
	}
	copy(h.buckets, st.Buckets)
	h.under, h.over, h.n = st.Under, st.Over, st.N
	h.stream.SetState(st.Stream)
	return nil
}

// TimeWeighted tracks the time-weighted mean of a piecewise-constant signal
// observed from time zero.
type TimeWeighted struct {
	last     float64
	value    float64
	integral float64
	started  bool
}

// Set records that the signal takes value v from time now onward. Times must
// be non-decreasing.
func (tw *TimeWeighted) Set(now, v float64) error {
	if !tw.started {
		if now < 0 {
			return fmt.Errorf("stats: negative start time %v", now)
		}
		// Signal assumed to hold its first value from t=0.
		tw.integral += tw.value * now
		tw.started = true
	} else if now < tw.last {
		return fmt.Errorf("stats: time moved backwards: %v -> %v", tw.last, now)
	} else {
		tw.integral += tw.value * (now - tw.last)
	}
	tw.last = now
	tw.value = v
	return nil
}

// Mean returns the time-weighted mean over [0, now].
func (tw *TimeWeighted) Mean(now float64) (float64, error) {
	if now < tw.last {
		return 0, fmt.Errorf("stats: time moved backwards: %v -> %v", tw.last, now)
	}
	if now <= 0 {
		return tw.value, nil
	}
	total := tw.integral + tw.value*(now-tw.last)
	return total / now, nil
}

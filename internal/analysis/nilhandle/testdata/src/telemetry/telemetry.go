// Package telemetry is a miniature stand-in for repro/internal/telemetry:
// just enough surface (handle types + registry constructors) for the
// nilhandle fixtures to type-check. The analyzer matches it by its package
// path suffix, exactly as it matches the real package.
package telemetry

// Counter is a monotonically increasing count; nil is a no-op sink.
type Counter struct{ v uint64 }

// Add increments the counter.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Gauge is a last-value metric; nil is a no-op sink.
type Gauge struct{ v float64 }

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Histogram is a value distribution; nil is a no-op sink.
type Histogram struct{ sum float64 }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h != nil {
		h.sum += v
	}
}

// DecisionLog records policy decisions; nil is a no-op sink.
type DecisionLog struct{ n int }

// Append records one decision.
func (l *DecisionLog) Append(v int) {
	if l != nil {
		l.n++
	}
}

// NewDecisionLog returns an empty decision log.
func NewDecisionLog() *DecisionLog { return &DecisionLog{} }

// Registry hands out registered handles.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Package a exercises the nilhandle analyzer: directly constructed or
// value-typed telemetry handles are flagged; registry-obtained pointers and
// nil no-op sinks are not.
package a

import "telemetry"

type metrics struct {
	served *telemetry.Counter
	inline telemetry.Counter // want `field/parameter declared with value type telemetry\.Counter`
}

func direct() {
	c := &telemetry.Counter{} // want `telemetry handle telemetry\.Counter constructed directly`
	c.Add(1)
	g := new(telemetry.Gauge) // want `new\(telemetry\.Gauge\) bypasses the telemetry registry`
	g.Set(1)
	var h telemetry.Histogram // want `variable declared with value type telemetry\.Histogram`
	h.Observe(1)
	l := &telemetry.DecisionLog{} // want `telemetry handle telemetry\.DecisionLog constructed directly`
	l.Append(1)
}

func byValue(c telemetry.Counter) { // want `field/parameter declared with value type telemetry\.Counter`
	c.Add(1)
}

func good(r *telemetry.Registry) {
	served := r.Counter("served")
	served.Add(1)
	var off *telemetry.Counter // nil pointer: the sanctioned no-op sink
	off.Add(1)
	_ = r.Gauge("temp")
	log := telemetry.NewDecisionLog() // constructor-built: fine
	log.Append(1)
	var offLog *telemetry.DecisionLog // nil no-op sink: fine
	offLog.Append(1)
}

package nilhandle_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/nilhandle"
)

func TestNilhandle(t *testing.T) {
	analysistest.Run(t, "testdata", nilhandle.Analyzer, "a")
}

// Package nilhandle implements the simlint analyzer that protects the
// telemetry package's "off = zero alloc, nil-safe" contract.
//
// Every telemetry handle type (*Counter, *Gauge, *Histogram, *DecisionLog)
// treats the nil pointer as a valid no-op sink, and hot paths update
// pre-bound handles unconditionally. That only works if every handle is
// either nil or was produced by a sanctioned constructor
// (Registry.Counter/Gauge/Histogram, NewDecisionLog): a handle built
// directly with a composite literal, new(), or a value-typed variable/field
// is never registered, silently drops its measurements from WriteJSON/State,
// and — for value types — re-introduces per-copy state.
//
// The analyzer flags, outside the telemetry package itself:
//
//   - composite literals of a handle type (telemetry.Counter{...},
//     &telemetry.Counter{...});
//   - new(telemetry.Counter) and friends;
//   - variables, parameters, return values and struct fields declared with
//     the non-pointer (value) handle type.
package nilhandle

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the nilhandle check.
var Analyzer = &framework.Analyzer{
	Name: "nilhandle",
	Doc:  "require telemetry handles to come from Registry constructors (nil-safe), never direct construction or value types",
	Run:  run,
}

var handleNames = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true, "DecisionLog": true}

// isHandle reports whether t is one of the telemetry handle named types.
func isHandle(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !handleNames[obj.Name()] {
		return false
	}
	p := obj.Pkg().Path()
	return p == "telemetry" || p == "repro/internal/telemetry" ||
		len(p) > len("/telemetry") && p[len(p)-len("/telemetry"):] == "/telemetry"
}

func run(pass *framework.Pass) error {
	if isTelemetryPkg(pass.Pkg) {
		return nil // the implementation constructs its own handles
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CompositeLit:
				if t := pass.TypesInfo.TypeOf(x); t != nil && isHandle(t) {
					pass.Reportf(x.Pos(), "telemetry handle %s constructed directly; obtain it from a telemetry.Registry constructor so it is registered and nil-safe when telemetry is off", t.String())
				}
			case *ast.CallExpr:
				if fn, ok := x.Fun.(*ast.Ident); ok && len(x.Args) == 1 {
					if b, ok := pass.TypesInfo.Uses[fn].(*types.Builtin); ok && b.Name() == "new" {
						if t := pass.TypesInfo.TypeOf(x.Args[0]); t != nil && isHandle(t) {
							pass.Reportf(x.Pos(), "new(%s) bypasses the telemetry registry; obtain the handle from a telemetry.Registry constructor", t.String())
						}
					}
				}
			case *ast.Field:
				if t := pass.TypesInfo.TypeOf(x.Type); t != nil && isHandle(t) {
					pass.Reportf(x.Pos(), "field/parameter declared with value type %s; telemetry handles must be *pointers* obtained from a Registry (a nil pointer is the no-op sink)", t.String())
				}
			case *ast.ValueSpec:
				if t := pass.TypesInfo.TypeOf(x.Type); x.Type != nil && t != nil && isHandle(t) {
					pass.Reportf(x.Pos(), "variable declared with value type %s; telemetry handles must be *pointers* obtained from a Registry", t.String())
				}
			}
			return true
		})
	}
	return nil
}

func isTelemetryPkg(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == "telemetry" || p == "repro/internal/telemetry" ||
		len(p) > len("/telemetry") && p[len(p)-len("/telemetry"):] == "/telemetry"
}

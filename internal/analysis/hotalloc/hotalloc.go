// Package hotalloc implements the simlint analyzer that keeps annotated hot
// paths allocation-free (DESIGN.md §16).
//
// A function whose doc comment carries the directive
//
//	//simlint:hotpath
//
// declares that it runs once per simulated event (or per disk per epoch) and
// must not allocate in steady state. The analyzer flags the
// allocation-inducing constructs inside such functions:
//
//   - function literals (a closure allocates its capture frame);
//   - escaping composite literals and new(T);
//   - interface boxing: passing a non-pointer concrete value to an
//     interface-typed parameter;
//   - fmt calls and non-constant string concatenation;
//   - append to a slice declared in the function without preallocated
//     capacity.
//
// Syntax overcounts — a by-value composite literal or an inlined closure
// never touches the heap — so the driver feeds the pass the compiler's
// `go build -gcflags=-m=2` escape output (framework.ParseEscapes) and the
// escape-validated checks only fire when the compiler confirms a heap
// allocation on that line. Without escape data (the analysistest fixture
// runner) those checks trust the syntax, which is what the fixtures pin.
//
// A steady-state-free construct on a cold sub-path (freelist growth, error
// reporting) is waived with `//simlint:allow hotalloc -- reason`.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the hotalloc check.
var Analyzer = &framework.Analyzer{
	Name: "hotalloc",
	Doc:  "flag allocation-inducing constructs in //simlint:hotpath functions, validated against the compiler's escape analysis",
	Run:  run,
}

const directive = "//simlint:hotpath"

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// isHotpath reports whether the function's doc comment carries the hotpath
// directive.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	// prealloc records slice variables assigned from make(...) — appends to
	// those are amortized by the reserved capacity.
	prealloc := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != len(asg.Rhs) {
			return true
		}
		for i, rhs := range asg.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltin(pass, call.Fun, "make") || len(call.Args) < 2 {
				continue
			}
			if id, ok := asg.Lhs[i].(*ast.Ident); ok {
				if obj := objOf(pass, id); obj != nil {
					prealloc[obj] = true
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if pass.HeapAllocAt(x.Pos(), true) {
				pass.Reportf(x.Pos(), "closure allocation in hot path %s; hoist the closure out of the hot path or replace it with a method value cached at construction", name)
			}
			return false // the literal runs elsewhere; its body is not this hot path
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := x.X.(*ast.CompositeLit); ok && pass.HeapAllocAt(x.Pos(), true) {
					pass.Reportf(x.Pos(), "escaping composite literal in hot path %s; reuse a cached instance or a freelist instead of allocating per event", name)
					return false
				}
			}
		case *ast.CompositeLit:
			// By-value literals are only a finding when the compiler proves
			// they escape; without escape data they pass.
			if pass.HeapAllocAt(x.Pos(), false) {
				pass.Reportf(x.Pos(), "escaping composite literal in hot path %s; reuse a cached instance or a freelist instead of allocating per event", name)
				return false
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isNonConstString(pass, x) {
				pass.Reportf(x.Pos(), "string concatenation in hot path %s allocates; precompute the string or record components separately", name)
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 {
				if t := pass.TypesInfo.TypeOf(x.Lhs[0]); t != nil && isString(t) {
					pass.Reportf(x.Pos(), "string concatenation in hot path %s allocates; precompute the string or record components separately", name)
				}
			}
		case *ast.CallExpr:
			checkCall(pass, name, prealloc, x)
		}
		return true
	})
}

func checkCall(pass *framework.Pass, name string, prealloc map[types.Object]bool, call *ast.CallExpr) {
	// fmt calls allocate for formatting and box every operand.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "fmt" {
				pass.Reportf(call.Pos(), "fmt.%s in hot path %s allocates; format on the cold path or record raw fields", sel.Sel.Name, name)
				return
			}
		}
	}
	// new(T) allocates by definition (modulo escape analysis).
	if isBuiltin(pass, call.Fun, "new") && pass.HeapAllocAt(call.Pos(), true) {
		pass.Reportf(call.Pos(), "new(...) in hot path %s; reuse a cached instance or a freelist instead of allocating per event", name)
		return
	}
	// append to a slice declared here without capacity grows on the hot path.
	if isBuiltin(pass, call.Fun, "append") && len(call.Args) > 0 {
		if id, ok := call.Args[0].(*ast.Ident); ok {
			if obj := objOf(pass, id); obj != nil && !prealloc[obj] && declaredWithin(obj, call, pass) {
				pass.Reportf(call.Pos(), "append to un-preallocated slice %s in hot path %s; size it with make(..., 0, n) up front", id.Name, name)
			}
		}
		return
	}
	// Interface boxing: a non-pointer concrete argument bound to an
	// interface parameter allocates unless escape analysis rescues it.
	sig := signatureOf(pass, call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i)
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil || !boxes(at) {
			continue
		}
		if pass.HeapAllocAt(arg.Pos(), true) {
			pass.Reportf(arg.Pos(), "interface boxing of %s argument in hot path %s allocates; pass a pointer or restructure the call", at.String(), name)
		}
	}
}

// boxes reports whether storing a value of type t in an interface requires a
// heap copy: pointer-shaped kinds (pointers, channels, maps, funcs, unsafe
// pointers) and interfaces do not.
func boxes(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return false
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		if b.Kind() == types.UnsafePointer || b.Kind() == types.UntypedNil {
			return false
		}
	}
	return true
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isNonConstString(pass *framework.Pass, x *ast.BinaryExpr) bool {
	t := pass.TypesInfo.TypeOf(x)
	if t == nil || !isString(t) {
		return false
	}
	// Constant folding handles all-constant concatenations at compile time.
	if tv, ok := pass.TypesInfo.Types[x]; ok && tv.Value != nil {
		return false
	}
	return true
}

func isBuiltin(pass *framework.Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

func objOf(pass *framework.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}

// declaredWithin reports whether obj is declared in the same function body
// the call appears in — appends to fields or parameters amortize across
// calls and stay unflagged.
func declaredWithin(obj types.Object, call *ast.CallExpr, pass *framework.Pass) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	// Parameters and results live at the function signature; a variable
	// declared in the body sits strictly before the call and after the
	// function's opening position. The cheap proxy: local scope parent is a
	// block scope, not the package scope, and the object is not a parameter.
	if v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
		return false
	}
	sig := enclosingFuncType(pass, call)
	if sig != nil && v.Pos() >= sig.Pos() && v.Pos() <= sig.End() {
		return false // parameter or named result
	}
	return true
}

// enclosingFuncType finds the type of the function declaration containing
// pos, for parameter detection.
func enclosingFuncType(pass *framework.Pass, call *ast.CallExpr) *ast.FuncType {
	for _, f := range pass.Files {
		if f.Pos() <= call.Pos() && call.Pos() <= f.End() {
			var ft *ast.FuncType
			ast.Inspect(f, func(n ast.Node) bool {
				if fd, ok := n.(*ast.FuncDecl); ok {
					if fd.Pos() <= call.Pos() && call.Pos() <= fd.End() {
						ft = fd.Type
					}
				}
				return true
			})
			return ft
		}
	}
	return nil
}

// signatureOf resolves the static signature of a call, or nil for builtins,
// conversions, and dynamic calls the checker cannot see through.
func signatureOf(pass *framework.Pass, call *ast.CallExpr) *types.Signature {
	t := pass.TypesInfo.TypeOf(call.Fun)
	sig, _ := t.(*types.Signature)
	return sig
}

// paramTypeAt returns the type of parameter i, expanding the variadic tail.
func paramTypeAt(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	n := params.Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		last := params.At(n - 1).Type()
		if sl, ok := last.(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i >= n {
		return nil
	}
	return params.At(i).Type()
}

package hotalloc_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/load"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.Analyzer, "a")
}

// TestEscapeValidation pins the escape-validated mode the fixture runner
// cannot exercise: with compiler escape data attached, an address-taken
// composite literal is only reported when the compiler confirmed the heap
// allocation, and a by-value literal the compiler moved to the heap is
// reported even though syntax alone would pass it.
func TestEscapeValidation(t *testing.T) {
	const src = `package p

type ev struct{ t float64 }

type eng struct{ last *ev }

//simlint:hotpath
func hot(e *eng, t float64) {
	rescued := &ev{t: t}
	_ = rescued.t
	e.last = &ev{t: t}
}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	loader := load.NewLoader(".")
	pkg, info, errs, err := loader.CheckFiles("p", fset, []*ast.File{file}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range errs {
		t.Fatalf("type error: %v", e)
	}

	// The compiler view: only the literal on line 11 (stored into the
	// struct) escapes; the first one is rescued to the stack.
	esc := framework.ParseEscapes("p.go:11:11: &ev{...} escapes to heap\n")
	diags, err := framework.RunWithEscapes(hotalloc.Analyzer, fset, []*ast.File{file}, pkg, info, esc)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	pos := fset.Position(diags[0].Pos)
	if pos.Line != 11 || !strings.Contains(diags[0].Message, "escaping composite literal") {
		t.Fatalf("unexpected diagnostic %s: %s", pos, diags[0].Message)
	}
}

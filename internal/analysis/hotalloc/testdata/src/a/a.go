// Package a exercises the hotalloc analyzer in syntax mode (no escape data
// attached, as in this fixture runner): address-taken composite literals,
// new(T), closures, fmt calls, string concatenation, interface boxing, and
// un-preallocated appends inside //simlint:hotpath functions are flagged;
// by-value literals, preallocated appends, field appends, pointer arguments,
// waived sites, and unannotated functions are not.
package a

import "fmt"

type event struct {
	time float64
	seq  uint64
}

type engine struct {
	queue []*event
	free  []*event
	log   []string
}

func sink(v any) { _ = v }

func sinkPtr(p *event) { _ = p }

// fire is the annotated hot path: one call per simulated event.
//
//simlint:hotpath
func fire(e *engine, t float64, seq uint64, tag string) {
	ev := &event{time: t, seq: seq} // want `escaping composite literal in hot path fire`
	p := new(event)                 // want `new\(\.\.\.\) in hot path fire`
	h := func() { sinkPtr(ev) }     // want `closure allocation in hot path fire`
	h()
	msg := fmt.Sprintf("event %d", seq) // want `fmt\.Sprintf in hot path fire allocates`
	label := "fire:" + tag              // want `string concatenation in hot path fire allocates`
	label += tag                        // want `string concatenation in hot path fire allocates`
	sink(seq)                           // want `interface boxing of uint64 argument in hot path fire`
	sinkPtr(p)
	var trace []string
	trace = append(trace, msg) // want `append to un-preallocated slice trace in hot path fire`
	_ = trace
	_ = label
}

// steady is the allocation-free shape the hot path should take: by-value
// records, preallocated or field-backed appends, pointer arguments, and
// constant strings.
//
//simlint:hotpath
func steady(e *engine, ev *event, scratch []*event) {
	rec := event{time: ev.time, seq: ev.seq} // by value: no heap
	_ = rec
	e.queue = append(e.queue, ev) // field-backed: amortized elsewhere
	pre := make([]*event, 0, 8)
	pre = append(pre, ev) // preallocated: legal
	_ = pre
	scratch = append(scratch, ev) // parameter-backed: caller owns sizing
	_ = scratch
	sinkPtr(ev)           // pointer argument: no boxing
	const label = "fire:" // constant strings fold at compile time
	_ = label + "x"
}

// waived documents a deliberate cold-path allocation inside a hot function.
//
//simlint:hotpath
func waived(e *engine) *event {
	if len(e.free) == 0 {
		return &event{} //simlint:allow hotalloc -- fixture: freelist grow path, cold by construction
	}
	ev := e.free[len(e.free)-1]
	e.free = e.free[:len(e.free)-1]
	return ev
}

// cold is unannotated: the same constructs pass without comment.
func cold(seq uint64) *event {
	_ = fmt.Sprintf("event %d", seq)
	sink(seq)
	return &event{seq: seq}
}

// Package framework is a minimal, offline stand-in for
// golang.org/x/tools/go/analysis: it defines the Analyzer/Pass/Diagnostic
// trio the simlint checkers are written against, plus the repository's
// `//simlint:allow` escape hatch. The API deliberately mirrors go/analysis
// so the checkers can be ported to the real multichecker mechanically if the
// dependency ever becomes available.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and in
	// //simlint:allow comments.
	Name string
	// Doc is the one-paragraph description shown by `simlint -list`.
	Doc string
	// Run performs the check on one package and reports findings through
	// pass.Report/Reportf.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Escapes is the compiler's escape-analysis view of the package when the
	// driver supplied one (see ParseEscapes); nil when unavailable, e.g. in
	// the analysistest fixture runner. Analyzers that validate allocation
	// findings use HeapAllocAt and fall back to syntax-only reporting on nil.
	Escapes *EscapeIndex

	diags    []Diagnostic
	suppress *suppressions
}

// HeapAllocAt reports whether the compiler confirmed a heap allocation at
// pos. With no escape data attached it reports defaultTo, so analyzers can
// choose to trust syntax alone in fixture mode.
func (p *Pass) HeapAllocAt(pos token.Pos, defaultTo bool) bool {
	if p.Escapes == nil {
		return defaultTo
	}
	position := p.Fset.Position(pos)
	return p.Escapes.HeapAllocAt(position.Filename, position.Line)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// NewPass assembles a pass over the given package for a. The suppression
// index is built from the files' comments once per pass.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		suppress:  buildSuppressions(fset, files),
	}
}

// Reportf records a diagnostic at pos unless a //simlint:allow directive
// covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	if p.suppress.covers(p.Analyzer.Name, p.Fset, pos) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the pass's findings sorted by position.
func (p *Pass) Diagnostics() []Diagnostic {
	sort.SliceStable(p.diags, func(i, j int) bool { return p.diags[i].Pos < p.diags[j].Pos })
	return p.diags
}

// Run executes a over one package and returns the surviving diagnostics.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	return RunWithEscapes(a, fset, files, pkg, info, nil)
}

// RunWithEscapes is Run with compiler escape-analysis data attached to the
// pass (nil esc behaves exactly like Run).
func RunWithEscapes(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, esc *EscapeIndex) ([]Diagnostic, error) {
	pass := NewPass(a, fset, files, pkg, info)
	pass.Escapes = esc
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	return pass.Diagnostics(), nil
}

// --- suppression directives ---
//
// Two comment forms switch a finding off:
//
//	//simlint:allow <name>[,<name>...] [-- reason]
//	//simlint:allowfile <name>[,<name>...] [-- reason]
//
// The first suppresses matching diagnostics on its own line — either as a
// trailing comment on the offending line or as a standalone comment on the
// line immediately above it. The second suppresses matching diagnostics in
// the whole file and is meant for files whose entire purpose is exempt
// (e.g. the wall-clock progress logger). The name "all" matches every
// analyzer. A reason after " -- " is encouraged and ignored by the parser.

type suppressions struct {
	// byFile maps filename -> analyzer name (or "all") -> suppressed lines.
	byFile map[string]map[string]map[int]bool
	// fileWide maps filename -> analyzer names suppressed everywhere.
	fileWide map[string]map[string]bool
}

func buildSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{
		byFile:   make(map[string]map[string]map[int]bool),
		fileWide: make(map[string]map[string]bool),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, fileWide, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Slash)
				if fileWide {
					m := s.fileWide[pos.Filename]
					if m == nil {
						m = make(map[string]bool)
						s.fileWide[pos.Filename] = m
					}
					for _, n := range names {
						m[n] = true
					}
					continue
				}
				byName := s.byFile[pos.Filename]
				if byName == nil {
					byName = make(map[string]map[int]bool)
					s.byFile[pos.Filename] = byName
				}
				for _, n := range names {
					lines := byName[n]
					if lines == nil {
						lines = make(map[int]bool)
						byName[n] = lines
					}
					// The directive covers its own line (trailing-comment
					// form) and the next line (standalone-comment form).
					lines[pos.Line] = true
					lines[pos.Line+1] = true
				}
			}
		}
	}
	return s
}

// parseDirective parses one comment; ok is false when it is not a simlint
// directive.
func parseDirective(text string) (names []string, fileWide bool, ok bool) {
	const linePrefix, filePrefix = "//simlint:allow ", "//simlint:allowfile "
	var rest string
	switch {
	case strings.HasPrefix(text, filePrefix):
		fileWide, rest = true, text[len(filePrefix):]
	case strings.HasPrefix(text, linePrefix):
		rest = text[len(linePrefix):]
	default:
		return nil, false, false
	}
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = rest[:i]
	}
	for _, n := range strings.Split(rest, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, fileWide, len(names) > 0
}

func (s *suppressions) covers(analyzer string, fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	if m := s.fileWide[p.Filename]; m[analyzer] || m["all"] {
		return true
	}
	byName := s.byFile[p.Filename]
	if byName == nil {
		return false
	}
	return byName[analyzer][p.Line] || byName["all"][p.Line]
}

// Inspect walks every file in the pass in source order, calling fn for each
// node; fn returning false prunes the subtree (ast.Inspect semantics).
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

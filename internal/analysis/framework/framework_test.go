package framework_test

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/load"
)

// toycall is a minimal analyzer used to pin framework behavior independent
// of any real contract: it flags every call to a function whose name starts
// with "boom", unwrapping generic instantiation (IndexExpr/IndexListExpr)
// in callee position.
var toycall = &framework.Analyzer{
	Name: "toycall",
	Doc:  "flags calls to boom* functions (framework test fixture)",
	Run: func(pass *framework.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fun := call.Fun
				switch x := fun.(type) {
				case *ast.IndexExpr:
					fun = x.X
				case *ast.IndexListExpr:
					fun = x.X
				}
				var name string
				switch x := fun.(type) {
				case *ast.Ident:
					name = x.Name
				case *ast.SelectorExpr:
					name = x.Sel.Name
				}
				if strings.HasPrefix(name, "boom") {
					pass.Reportf(call.Pos(), "call to %s", name)
				}
				return true
			})
		}
		return nil
	},
}

// TestGenericsFixture pins the framework on type-parameterized code: the
// loader type-checks generic declarations and instantiations, and findings
// inside a generic body are reported once at the declaration, not once per
// instantiation.
func TestGenericsFixture(t *testing.T) {
	analysistest.Run(t, "testdata", toycall, "generics")
}

// TestAllowOnSameLine pins directive placement: a //simlint:allow trailing
// the finding's own line suppresses it, the `all` analyzer name matches any
// analyzer, and the directive's reach (own line plus the next) ends there.
func TestAllowOnSameLine(t *testing.T) {
	analysistest.Run(t, "testdata", toycall, "sameline")
}

// TestVendorAndStdlibScopeExclusion pins the loader's scope model: `./...`
// never matches a vendor tree, standard-library dependencies come back
// DepOnly-only (not as analyzable roots), and therefore a driver that
// analyzes what Load returns touches exactly the module's own code.
func TestVendorAndStdlibScopeExclusion(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scopetest\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "a", "a.go"), `package a

import "strings"

func boom() {}

func f() string {
	boom()
	return strings.ToUpper("x")
}
`)
	// A vendor tree with its own boom() calls: if pattern expansion ever
	// descended into it, the diagnostic count below would change.
	writeFile(t, filepath.Join(dir, "vendor", "v", "v.go"), `package v

func boomVendored() {}

func g() { boomVendored() }
`)

	loader := load.NewLoader(dir)
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "scopetest/a" {
		paths := make([]string, len(pkgs))
		for i, p := range pkgs {
			paths[i] = p.Path
		}
		t.Fatalf("Load(./...) matched %v, want exactly [scopetest/a]", paths)
	}
	pkg := pkgs[0]
	if pkg.DepOnly {
		t.Fatal("matched package marked DepOnly")
	}
	if pkg.TypesInfo == nil {
		t.Fatal("matched package has no TypesInfo")
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("type errors: %v", pkg.TypeErrors)
	}
	diags, err := framework.Run(toycall, pkg.Fset, pkg.Files, pkg.Types, pkg.TypesInfo)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1 (the module's own boom call)", len(diags))
	}
	if got := pkg.Fset.Position(diags[0].Pos).Filename; filepath.Base(got) != "a.go" {
		t.Fatalf("diagnostic anchored in %s, want the module's a.go", got)
	}
}

// TestParseEscapes pins the -m=2 parser: heap lines are indexed by
// basename:line (the compiler emits module-relative paths, the analysis
// fset absolute ones), non-allocation chatter is ignored, and a nil index
// is always a miss.
func TestParseEscapes(t *testing.T) {
	esc := framework.ParseEscapes(`# repro/internal/des
/root/repo/internal/des/engine.go:100:9: &event{} escapes to heap:
internal/des/engine.go:120:6: moved to heap: o
engine.go:130:2: inlining call to foo
not a position line: escapes to heap mentioned without file
`)
	if esc.Len() != 2 {
		t.Fatalf("indexed %d lines, want 2", esc.Len())
	}
	if !esc.HeapAllocAt("/any/abs/path/engine.go", 100) {
		t.Error("absolute-path escape line not found by basename")
	}
	if !esc.HeapAllocAt("engine.go", 120) {
		t.Error("moved-to-heap line not indexed")
	}
	if esc.HeapAllocAt("engine.go", 130) {
		t.Error("inlining chatter indexed as a heap allocation")
	}
	if esc.HeapAllocAt("other.go", 100) {
		t.Error("wrong basename matched")
	}
	var nilIdx *framework.EscapeIndex
	if nilIdx.HeapAllocAt("engine.go", 100) {
		t.Error("nil index reported a heap allocation")
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

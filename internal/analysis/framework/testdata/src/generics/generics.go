// Package generics pins the framework on type-parameterized code: the
// loader type-checks generic declarations and instantiations, findings
// inside a generic body are reported once at the declaration (not once per
// instantiation), and a generic callee behind an explicit instantiation
// (IndexExpr) is still recognized.
package generics

func boom() {}

func boomOf[T any](v T) T { return v }

// Pair is a generic container; the framework must traverse its methods
// with type parameters in scope.
type Pair[T any] struct{ a, b T }

func (p Pair[T]) First() T {
	boom() // want `call to boom`
	return p.a
}

func apply[T any](v T, f func(T) T) T {
	boom() // want `call to boom`
	return f(v)
}

func use() {
	p := Pair[int]{a: 1, b: 2}
	q := Pair[string]{a: "x", b: "y"}
	// Two instantiations of the same generic body: the boom inside First
	// is reported once, at its declaration, not here.
	_ = p.First()
	_ = q.First()
	_ = apply(1, func(i int) int {
		boom() // want `call to boom`
		return i
	})
	// Explicitly instantiated generic callee: the callee is an IndexExpr,
	// not an Ident, and must still be unwrapped.
	_ = boomOf[int](3)       // want `call to boomOf`
	_ = boomOf[Pair[int]](p) // want `call to boomOf`
}

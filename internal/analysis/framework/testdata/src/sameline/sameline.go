// Package sameline pins //simlint:allow placement: a directive trailing
// the finding's own line suppresses exactly that finding, `all` matches any
// analyzer, the directive's reach is its own line plus the next, and a
// directive naming a different analyzer suppresses nothing.
package sameline

func boom() {}

func sameLine() {
	boom() // want `call to boom`
	boom() //simlint:allow toycall -- fixture: same-line directive suppresses this finding
	_ = 0  // spacer: the directive above also covers this (finding-free) line
	boom() // want `call to boom`
}

func allKeyword() {
	boom() //simlint:allow all -- fixture: the all keyword suppresses any analyzer
	_ = 0  // spacer
	boom() // want `call to boom`
}

func precedingLine() {
	//simlint:allow toycall -- fixture: a directive on its own line covers the next line
	boom()
	boom() // want `call to boom`
}

func wrongAnalyzer() {
	//simlint:allow detrand -- fixture: names a different analyzer, suppresses nothing
	boom() // want `call to boom`
}

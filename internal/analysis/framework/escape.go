package framework

// Escape-analysis integration. The hotalloc analyzer reasons about
// allocation-inducing constructs syntactically, but syntax alone overcounts:
// a composite literal passed by value never touches the heap, and the
// compiler's inliner rescues many closures. To keep findings honest, the
// driver runs `go build -gcflags=<pkg>=-m=2` and feeds the compiler's own
// escape diagnostics to the pass; an analyzer then only reports a
// syntactic candidate when the compiler confirms a heap allocation on that
// line. Passes without escape data (the analysistest fixture runner) report
// on syntax alone, which is what the `// want` fixtures pin down.

import (
	"bufio"
	"path/filepath"
	"strconv"
	"strings"
)

// EscapeIndex records, per source line, whether the compiler reported a heap
// allocation there. Lines are keyed by file base name + line number: within
// one package base names are unique, and the compiler emits module-relative
// paths while the analysis fset holds absolute ones, so the base name is the
// stable common suffix.
type EscapeIndex struct {
	lines map[string]bool
}

// escapeKey builds the lookup key for one position.
func escapeKey(file string, line int) string {
	return filepath.Base(file) + ":" + strconv.Itoa(line)
}

// HeapAllocAt reports whether the compiler flagged a heap allocation on the
// given file/line. A nil index reports false for every position.
func (x *EscapeIndex) HeapAllocAt(file string, line int) bool {
	if x == nil {
		return false
	}
	return x.lines[escapeKey(file, line)]
}

// Len returns the number of distinct lines with recorded heap allocations.
func (x *EscapeIndex) Len() int {
	if x == nil {
		return 0
	}
	return len(x.lines)
}

// ParseEscapes builds an index from raw `go build -gcflags=-m=2` output.
// The diagnostics of interest all carry a file:line:col: prefix and one of
// the compiler's heap phrases:
//
//	internal/des/engine.go:213:9: &event{...} escapes to heap:
//	internal/array/sim.go:765:10: moved to heap: ctx
//
// Everything else (-m=2 is chatty: inlining decisions, "does not escape",
// parameter leak notes) is ignored.
func ParseEscapes(output string) *EscapeIndex {
	idx := &EscapeIndex{lines: make(map[string]bool)}
	sc := bufio.NewScanner(strings.NewReader(output))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.Contains(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
			continue
		}
		file, ln, ok := splitPosPrefix(line)
		if !ok {
			continue
		}
		idx.lines[escapeKey(file, ln)] = true
	}
	return idx
}

// splitPosPrefix extracts the file and line from a "file.go:line:col: ..."
// compiler diagnostic; ok is false for lines without that shape.
func splitPosPrefix(s string) (file string, line int, ok bool) {
	i := strings.Index(s, ".go:")
	if i < 0 {
		return "", 0, false
	}
	file = strings.TrimSpace(s[:i+len(".go")])
	rest := s[i+len(".go:"):]
	j := strings.IndexByte(rest, ':')
	if j < 0 {
		return "", 0, false
	}
	n, err := strconv.Atoi(rest[:j])
	if err != nil || n <= 0 {
		return "", 0, false
	}
	return file, n, true
}

package engineaffinity_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"strings"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/engineaffinity"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/load"
)

func TestEngineAffinity(t *testing.T) {
	analysistest.Run(t, "testdata", engineaffinity.Analyzer, "a")
}

// TestExemptNeedsReason pins the reasonless-directive behavior the fixture
// cannot express (a want comment cannot share a line with the directive
// comment): //simlint:affinity-exempt without `-- <reason>` is itself a
// finding, and it does not suppress the cross-goroutine call it sits on.
func TestExemptNeedsReason(t *testing.T) {
	const src = `package b

import "des"

func leak(eng *des.Engine, out chan<- float64) {
	go func() {
		out <- eng.Now() //simlint:affinity-exempt
	}()
}
`
	fset := token.NewFileSet()
	loader := load.NewLoader("testdata")

	desSrc, err := os.ReadFile("testdata/src/des/des.go")
	if err != nil {
		t.Fatal(err)
	}
	desFile, err := parser.ParseFile(fset, "des/des.go", desSrc, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	desPkg, _, errs, err := loader.CheckFiles("des", fset, []*ast.File{desFile}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range errs {
		t.Fatalf("type error in des fixture: %v", e)
	}

	file, err := parser.ParseFile(fset, "b/b.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg, info, errs, err := loader.CheckFiles("b", fset, []*ast.File{file}, func(path string) (*types.Package, error) {
		if path == "des" {
			return desPkg, nil
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range errs {
		t.Fatalf("type error: %v", e)
	}

	diags, err := framework.Run(engineaffinity.Analyzer, fset, []*ast.File{file}, pkg, info)
	if err != nil {
		t.Fatal(err)
	}
	var sawDirective, sawCall bool
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "affinity-exempt directive without a reason"):
			sawDirective = true
		case strings.Contains(d.Message, "cross-goroutine call to (des.Engine).Now"):
			sawCall = true
		default:
			t.Errorf("unexpected diagnostic: %s", d.Message)
		}
	}
	if !sawDirective {
		t.Errorf("reasonless directive was not reported; got %v", diags)
	}
	if !sawCall {
		t.Errorf("reasonless directive suppressed the cross-goroutine call; got %v", diags)
	}
}

// Package engineaffinity implements the simlint analyzer that enforces
// goroutine affinity for simulation state (DESIGN.md §16).
//
// A des.Engine, a policy instance, and the plain telemetry handles
// (Registry, Counter, Gauge, Histogram, DecisionLog, Recorder) are
// single-goroutine objects: the goroutine that constructs a cell owns them
// for the cell's whole life, and nothing else may call their methods. The
// sanctioned cross-goroutine views are the mediated APIs — des.Watch
// (seqlock), telemetry.Live/FleetLive (seqlock), telemetry.SweepTracker,
// telemetry.Progress, and telemetry.Logger (mutex) — which exist precisely
// so observers never touch the affine objects.
//
// The analyzer inspects every function literal launched as a goroutine (a
// `go` statement or a Go/Submit worker-pool submission) and flags method
// calls on affine state that reaches the literal by capture: the call runs
// on a different goroutine than the one that constructed the receiver.
//
// Ops-plane readers that are safe for a documented reason (e.g. a server
// goroutine that only touches the engine after Run returned) annotate the
// call site:
//
//	//simlint:affinity-exempt -- <reason>
//
// A directive without a reason is itself a finding: every exemption must
// say why it is safe.
package engineaffinity

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the engineaffinity check.
var Analyzer = &framework.Analyzer{
	Name: "engineaffinity",
	Doc:  "require des.Engine, policy, and telemetry handle methods to be called only from the constructing goroutine; cross-goroutine reads go through des.Watch/telemetry.Live",
	Run:  run,
}

// affineTelemetry are the telemetry types whose methods are goroutine-affine.
var affineTelemetry = map[string]bool{
	"Registry":    true,
	"Counter":     true,
	"Gauge":       true,
	"Histogram":   true,
	"DecisionLog": true,
	"Recorder":    true,
}

// mediated are the types designed for cross-goroutine access, by package
// suffix and type name.
var mediated = map[string]map[string]bool{
	"des": {"Watch": true},
	"telemetry": {
		"Live":         true,
		"FleetLive":    true,
		"SweepTracker": true,
		"Progress":     true,
		"Logger":       true,
	},
}

func pkgIs(pkg *types.Package, name string) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == name || strings.HasSuffix(p, "/"+name)
}

// classify returns the affinity class of a receiver type: "affine" for
// single-goroutine simulation state, "mediated" for the sanctioned
// cross-goroutine views, "" for everything else.
func classify(t types.Type) (class string, display string) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", ""
	}
	name := obj.Name()
	for suffix, names := range mediated {
		if pkgIs(obj.Pkg(), suffix) && names[name] {
			return "mediated", name
		}
	}
	switch {
	case pkgIs(obj.Pkg(), "des") && name == "Engine":
		return "affine", "des.Engine"
	case pkgIs(obj.Pkg(), "telemetry") && affineTelemetry[name]:
		return "affine", "telemetry." + name
	case pkgIs(obj.Pkg(), "policy"):
		return "affine", "policy." + name
	}
	return "", ""
}

// exemptions indexes //simlint:affinity-exempt directives: filename -> line
// -> true. A directive covers its own line and the next (trailing and
// standalone comment forms), mirroring //simlint:allow.
type exemptions map[string]map[int]bool

const directive = "//simlint:affinity-exempt"

func buildExemptions(pass *framework.Pass) exemptions {
	ex := make(exemptions)
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directive) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directive)
				reason := ""
				if i := strings.Index(rest, "--"); i >= 0 {
					reason = strings.TrimSpace(rest[i+2:])
				}
				pos := pass.Fset.Position(c.Slash)
				if reason == "" {
					pass.Reportf(c.Slash, "affinity-exempt directive without a reason; write //simlint:affinity-exempt -- <why this cross-goroutine access is safe>")
					continue
				}
				m := ex[pos.Filename]
				if m == nil {
					m = make(map[int]bool)
					ex[pos.Filename] = m
				}
				m[pos.Line] = true
				m[pos.Line+1] = true
			}
		}
	}
	return ex
}

func (ex exemptions) covers(pass *framework.Pass, pos ast.Node) bool {
	p := pass.Fset.Position(pos.Pos())
	return ex[p.Filename][p.Line]
}

func run(pass *framework.Pass) error {
	ex := buildExemptions(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if lit := goroutineLit(n); lit != nil {
				checkLit(pass, ex, lit)
			}
			return true
		})
	}
	return nil
}

// goroutineLit mirrors sharedcapture's launch detection: `go func(){...}()`
// and worker-pool Go/Submit calls with a function-literal argument.
func goroutineLit(n ast.Node) *ast.FuncLit {
	switch x := n.(type) {
	case *ast.GoStmt:
		if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
			return lit
		}
	case *ast.CallExpr:
		sel, ok := x.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Go" && sel.Sel.Name != "Submit") {
			return nil
		}
		for _, arg := range x.Args {
			if lit, ok := arg.(*ast.FuncLit); ok {
				return lit
			}
		}
	}
	return nil
}

// checkLit flags affine method calls on captured receivers inside one
// goroutine literal.
func checkLit(pass *framework.Pass, ex exemptions, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection := pass.TypesInfo.Selections[sel]
		if selection == nil || selection.Kind() != types.MethodVal {
			return true
		}
		class, display := classify(selection.Recv())
		if class != "affine" {
			return true
		}
		root := rootIdent(sel)
		if root == nil {
			return true
		}
		obj, isVar := pass.TypesInfo.Uses[root].(*types.Var)
		if !isVar || obj.IsField() {
			return true
		}
		// Receivers constructed inside the literal are this goroutine's own.
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true
		}
		if ex.covers(pass, call) {
			return true
		}
		pass.Reportf(call.Pos(), "cross-goroutine call to (%s).%s on captured %s; the receiver is goroutine-affine — read through des.Watch/telemetry.Live instead, or annotate //simlint:affinity-exempt -- <reason>", display, sel.Sel.Name, root.Name)
		return true
	})
}

// rootIdent returns the leftmost identifier of a selector chain.
func rootIdent(sel *ast.SelectorExpr) *ast.Ident {
	for {
		switch x := sel.X.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			sel = x
		default:
			return nil
		}
	}
}

// Package telemetry is a miniature stand-in for repro/internal/telemetry
// for the engineaffinity fixtures: affine handles plus mediated views.
package telemetry

// Registry hands out handles; goroutine-affine.
type Registry struct{ n int }

// Counter returns the named counter handle.
func (r *Registry) Counter(name string) *Counter { return &Counter{} }

// Counter is an affine metric handle.
type Counter struct{ v uint64 }

// Inc increments the counter.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Histogram is an affine distribution handle.
type Histogram struct{ sum float64 }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h != nil {
		h.sum += v
	}
}

// DecisionLog is the affine decision recorder.
type DecisionLog struct{ n int }

// Append records one decision.
func (l *DecisionLog) Append(v int) {
	if l != nil {
		l.n++
	}
}

// Live is the seqlock-published view; safe cross-goroutine.
type Live struct{ v uint64 }

// Snapshot returns a coherent view.
func (l *Live) Snapshot() uint64 { return l.v }

// SweepTracker tracks cells under a mutex; safe cross-goroutine.
type SweepTracker struct{ n int }

// CellDone marks one cell finished.
func (t *SweepTracker) CellDone(key string) {
	if t != nil {
		t.n++
	}
}

// Logger is mutex-serialized; safe cross-goroutine.
type Logger struct{ n int }

// Infof logs at the default level.
func (l *Logger) Infof(format string, args ...any) {
	if l != nil {
		l.n++
	}
}

// Package des is a miniature stand-in for repro/internal/des for the
// engineaffinity fixtures.
package des

// Engine is the goroutine-affine simulation kernel.
type Engine struct{ now float64 }

// Now returns the virtual clock.
func (e *Engine) Now() float64 { return e.now }

// Fired returns the event count.
func (e *Engine) Fired() uint64 { return 0 }

// Watch is the seqlock-mediated live view; cross-goroutine reads go here.
type Watch struct{ v uint64 }

// Snapshot returns a coherent view.
func (w *Watch) Snapshot() uint64 { return w.v }

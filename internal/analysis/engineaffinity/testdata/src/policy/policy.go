// Package policy is a miniature stand-in for repro/internal/policy for the
// engineaffinity fixtures: every named type here is goroutine-affine state.
package policy

// FPT is a stateful placement policy.
type FPT struct{ epoch int }

// OnEpoch advances the policy's internal state.
func (p *FPT) OnEpoch() { p.epoch++ }

// Package a exercises the engineaffinity analyzer: cross-goroutine method
// calls on captured engines, telemetry handles, and policy state are
// flagged; calls on state constructed inside the goroutine, mediated
// watch/live/tracker/logger reads, and reasoned affinity-exempt sites are
// not. An exempt directive without a reason is itself a finding.
package a

import (
	"des"
	"policy"
	"telemetry"
)

// crossEngine reads a captured engine from another goroutine.
func crossEngine(eng *des.Engine, out chan<- float64) {
	go func() {
		out <- eng.Now() // want `cross-goroutine call to \(des\.Engine\)\.Now on captured eng`
	}()
}

// crossHandles touches captured telemetry handles off-goroutine.
func crossHandles(c *telemetry.Counter, h *telemetry.Histogram, dlog *telemetry.DecisionLog) {
	go func() {
		c.Inc()        // want `cross-goroutine call to \(telemetry\.Counter\)\.Inc on captured c`
		h.Observe(1)   // want `cross-goroutine call to \(telemetry\.Histogram\)\.Observe on captured h`
		dlog.Append(1) // want `cross-goroutine call to \(telemetry\.DecisionLog\)\.Append on captured dlog`
	}()
}

// crossPolicy advances captured policy state off-goroutine.
func crossPolicy(p *policy.FPT) {
	go func() {
		p.OnEpoch() // want `cross-goroutine call to \(policy\.FPT\)\.OnEpoch on captured p`
	}()
}

// crossRegistryViaField reaches affine state through a captured struct.
type cellState struct {
	reg *telemetry.Registry
}

// crossField flags calls reached through a selector chain too.
func crossField(cs *cellState) {
	go func() {
		_ = cs.reg.Counter("x") // want `cross-goroutine call to \(telemetry\.Registry\)\.Counter on captured cs`
	}()
}

// pool is a minimal worker-pool submission surface.
type pool struct{}

// Go runs f on a pool worker.
func (pool) Go(f func()) { f() }

// submitted catches the Go/Submit launch form.
func submitted(p pool, eng *des.Engine) {
	p.Go(func() {
		_ = eng.Fired() // want `cross-goroutine call to \(des\.Engine\)\.Fired on captured eng`
	})
}

// ownState constructs its state inside the goroutine: every call is on the
// constructing goroutine, so nothing is flagged.
func ownState(run func(*des.Engine) uint64) {
	go func() {
		eng := &des.Engine{}
		reg := &telemetry.Registry{}
		reg.Counter("events").Inc()
		_ = run(eng)
		_ = eng.Fired()
	}()
}

// mediatedReads go through the sanctioned cross-goroutine APIs.
func mediatedReads(w *des.Watch, lv *telemetry.Live, tr *telemetry.SweepTracker, lg *telemetry.Logger) {
	go func() {
		_ = w.Snapshot()
		_ = lv.Snapshot()
		tr.CellDone("cell")
		lg.Infof("scraped")
	}()
}

// exempted documents why its cross-goroutine read is safe.
func exempted(eng *des.Engine, out chan<- float64) {
	go func() {
		//simlint:affinity-exempt -- fixture: the engine is quiescent; Run returned before this goroutine starts
		out <- eng.Now()
	}()
}

// A directive without a reason neither suppresses nor passes silently; that
// behavior is pinned by TestExemptNeedsReason in engineaffinity_test.go,
// since the directive comment and the want expectation cannot share a line.

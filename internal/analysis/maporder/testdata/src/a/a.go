// Package a exercises the maporder analyzer: order-dependent loop bodies are
// flagged; provably order-insensitive bodies, collect-and-sort loops and
// allow-annotated loops are not.
package a

import "sort"

func observe(int) {}

// Float accumulation is order-sensitive in rounding.
func sumFloats(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `iteration over map m has order-dependent effects`
		total += v
	}
	return total
}

// Calling out of the loop body makes the visit order observable.
func callsOut(m map[int]int) {
	for k := range m { // want `iteration over map m has order-dependent effects`
		observe(k)
	}
}

// Appending without a later sort leaks map order into the slice.
func appendUnsorted(m map[int]bool) []int {
	var out []int
	for k := range m { // want `iteration over map m has order-dependent effects`
		out = append(out, k)
	}
	return out
}

// break makes the set of processed entries order-dependent.
func breaksEarly(m map[int]int) {
	n := 0
	for range m { // want `iteration over map m has order-dependent effects`
		n++
		if n > 3 {
			break
		}
	}
}

// Integer accumulation commutes exactly.
func sumInts(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Writes keyed by the range key land in disjoint entries.
func double(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// Deleting entries commutes; continue only skips per-element work.
func prune(m map[int]int) {
	for k, v := range m {
		if v >= 0 {
			continue
		}
		delete(m, k)
	}
}

// Collect-and-sort: the append target is sorted after the loop.
func keys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// An explicitly waived loop the prover cannot follow.
func waived(m map[int]float64) float64 {
	var total float64
	//simlint:allow maporder -- fixture: explicitly waived loop
	for _, v := range m {
		total += v
	}
	return total
}

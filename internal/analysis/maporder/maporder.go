// Package maporder implements the simlint analyzer that guards against
// iteration-order dependence on Go maps inside the deterministic simulation
// and artifact-rendering packages.
//
// Go randomizes map iteration order per run. A `for k := range m` loop whose
// body accumulates floating-point values, appends to an output slice, or
// calls into the simulator therefore produces run-dependent results — the
// exact class of bug that breaks the repository's zero-tolerance manifest
// diffs and checkpoint bit-identity tests, and the hardest to catch after
// the fact because any single run looks plausible.
//
// A range over a map is accepted only when the analyzer can prove one of:
//
//  1. The body is order-insensitive: every statement only writes map
//     entries keyed (directly or derivedly) by the range key, deletes map
//     entries, or accumulates into integer variables with commutative
//     operations. Floating-point accumulation is deliberately NOT accepted:
//     float addition does not commute in rounding, which is precisely how
//     map order leaks into "bit-identical" results.
//
//  2. Collect-and-sort: the body (possibly under `if` guards) only appends
//     to one or more slices (plus order-insensitive statements), and every
//     such slice is passed to a sort.* or slices.Sort* call later in the
//     same function.
//
// Anything else is reported; genuinely order-free loops the prover cannot
// follow may carry `//simlint:allow maporder -- reason`.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the maporder check.
var Analyzer = &framework.Analyzer{
	Name: "maporder",
	Doc:  "flag range-over-map loops whose effects depend on Go's randomized map iteration order",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

// checkFunc examines every map-range loop in one function body. funcBody is
// retained so the collect-and-sort rule can look for sort calls positioned
// after the loop anywhere in the same function.
func checkFunc(pass *framework.Pass, funcBody *ast.BlockStmt) {
	ast.Inspect(funcBody, func(n ast.Node) bool {
		// Nested function literals are separate functions: their sort calls
		// should not vouch for our loops and vice versa.
		if fl, ok := n.(*ast.FuncLit); ok {
			checkFunc(pass, fl.Body)
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		c := &checker{pass: pass, key: rangeKeyIdent(rs)}
		if c.stmtsOK(rs.Body.List) {
			if len(c.appended) == 0 {
				return true // rule 1: provably order-insensitive
			}
			if sortedAfter(pass, funcBody, rs, c.appended) {
				return true // rule 2: collect-and-sort
			}
		}
		pass.Reportf(rs.For, "iteration over map %s has order-dependent effects (Go map order is randomized); collect and sort the keys first, or annotate //simlint:allow maporder -- <why order cannot matter>", types.ExprString(rs.X))
		return true
	})
}

// rangeKeyIdent returns the loop's key identifier, or nil for `for range m`.
func rangeKeyIdent(rs *ast.RangeStmt) *ast.Ident {
	if id, ok := rs.Key.(*ast.Ident); ok && id.Name != "_" {
		return id
	}
	return nil
}

// checker proves one loop body order-insensitive (modulo slice appends,
// which it records for the collect-and-sort rule).
type checker struct {
	pass *framework.Pass
	key  *ast.Ident
	// appended holds the canonical text of every slice expression the body
	// appends to.
	appended []string
}

func (c *checker) stmtsOK(stmts []ast.Stmt) bool {
	for _, s := range stmts {
		if !c.stmtOK(s) {
			return false
		}
	}
	return true
}

func (c *checker) stmtOK(s ast.Stmt) bool {
	switch st := s.(type) {
	case *ast.AssignStmt:
		return c.assignOK(st)
	case *ast.IncDecStmt:
		return isIntegerType(c.pass.TypesInfo.TypeOf(st.X))
	case *ast.ExprStmt:
		// Only the delete builtin: removing entries commutes with itself
		// regardless of key.
		call, ok := st.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		return ok && isBuiltin(c.pass.TypesInfo, fn, "delete")
	case *ast.IfStmt:
		if st.Init != nil && !c.stmtOK(st.Init) {
			return false
		}
		if !c.pureExpr(st.Cond) {
			return false
		}
		if !c.stmtsOK(st.Body.List) {
			return false
		}
		if st.Else != nil {
			return c.stmtOK(st.Else)
		}
		return true
	case *ast.BlockStmt:
		return c.stmtsOK(st.List)
	case *ast.BranchStmt:
		// continue skips work per element — fine. break (and goto) make the
		// set of processed elements order-dependent.
		return st.Tok == token.CONTINUE
	case *ast.EmptyStmt:
		return true
	default:
		return false
	}
}

func (c *checker) assignOK(st *ast.AssignStmt) bool {
	for _, rhs := range st.Rhs {
		if app, target := c.appendCall(rhs); app {
			// x = append(x, pure...) — recorded for collect-and-sort.
			if st.Tok != token.ASSIGN || len(st.Lhs) != 1 || len(st.Rhs) != 1 {
				return false
			}
			if types.ExprString(st.Lhs[0]) != target {
				return false
			}
			c.appended = append(c.appended, target)
			return true
		}
		if !c.pureExpr(rhs) {
			return false
		}
	}
	switch st.Tok {
	case token.ASSIGN:
		for _, lhs := range st.Lhs {
			if !c.disjointWrite(lhs) {
				return false
			}
		}
		return true
	case token.DEFINE:
		return true // new temporaries with pure initializers
	case token.ADD_ASSIGN, token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
		// Commutative accumulation — but only on integers: float addition
		// is order-sensitive in rounding.
		return len(st.Lhs) == 1 && isIntegerType(c.pass.TypesInfo.TypeOf(st.Lhs[0]))
	default:
		return false
	}
}

// disjointWrite reports whether writing lhs in different iteration orders
// yields the same final state: a blank ident, or a map entry whose index
// involves the range key (distinct keys → disjoint entries).
func (c *checker) disjointWrite(lhs ast.Expr) bool {
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return true
	}
	ix, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return false
	}
	base := c.pass.TypesInfo.TypeOf(ix.X)
	if base == nil {
		return false
	}
	if _, isMap := base.Underlying().(*types.Map); !isMap {
		return false
	}
	return c.key != nil && usesIdent(c.pass, ix.Index, c.key)
}

// appendCall recognizes append(target, pure args...) and returns target's
// canonical text.
func (c *checker) appendCall(e ast.Expr) (bool, string) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false, ""
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || !isBuiltin(c.pass.TypesInfo, fn, "append") || len(call.Args) < 1 {
		return false, ""
	}
	for _, a := range call.Args[1:] {
		if !c.pureExpr(a) {
			return false, ""
		}
	}
	return true, types.ExprString(call.Args[0])
}

// pureExpr reports whether evaluating e cannot have side effects. Calls are
// rejected except len/cap/min/max and type conversions.
func (c *checker) pureExpr(e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if fn, ok := x.Fun.(*ast.Ident); ok {
				if isBuiltin(c.pass.TypesInfo, fn, "len", "cap", "min", "max") {
					return true
				}
			}
			if tv, ok := c.pass.TypesInfo.Types[x.Fun]; ok && tv.IsType() {
				return true // conversion
			}
			pure = false
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW { // channel receive
				pure = false
				return false
			}
		case *ast.FuncLit:
			return false // building a closure is pure; don't descend
		}
		return true
	})
	return pure
}

// usesIdent reports whether expr references the given identifier's object.
func usesIdent(pass *framework.Pass, expr ast.Expr, key *ast.Ident) bool {
	obj := pass.TypesInfo.Defs[key]
	if obj == nil {
		obj = pass.TypesInfo.Uses[key]
	}
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

func isBuiltin(info *types.Info, id *ast.Ident, names ...string) bool {
	obj := info.Uses[id]
	if obj == nil {
		return false
	}
	if _, ok := obj.(*types.Builtin); !ok {
		return false
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return false
}

func isIntegerType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// sortFuncs lists the sorting entry points that discharge the
// collect-and-sort obligation; the key is "pkgpath.Func".
var sortFuncs = map[string]bool{
	"sort.Ints": true, "sort.Strings": true, "sort.Float64s": true,
	"sort.Sort": true, "sort.Stable": true, "sort.Slice": true,
	"sort.SliceStable": true,
	"slices.Sort":      true, "slices.SortFunc": true, "slices.SortStableFunc": true,
}

// sortedAfter reports whether every expression in targets is the first
// argument of a recognized sort call located after the loop within the same
// function body.
func sortedAfter(pass *framework.Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt, targets []string) bool {
	sorted := make(map[string]bool)
	ast.Inspect(funcBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || len(call.Args) < 1 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		if sortFuncs[obj.Pkg().Path()+"."+obj.Name()] {
			sorted[types.ExprString(call.Args[0])] = true
		}
		return true
	})
	for _, t := range targets {
		if !sorted[t] {
			return false
		}
	}
	return true
}

// Package load turns Go package patterns into parsed, type-checked package
// units for the simlint analyzers. It is a deliberately small stand-in for
// golang.org/x/tools/go/packages: the build environment for this repository
// is offline, so the loader leans only on the standard library plus the `go
// list` command that ships with the toolchain. Packages are enumerated with
// `go list -json -deps` (which emits dependencies before dependents, i.e. in
// type-checkable order) and type-checked from source with go/types;
// dependency-only packages are checked with IgnoreFuncBodies so a full
// `simlint ./...` run stays in the low seconds even though it re-checks the
// standard library from source.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one parsed and type-checked package unit.
type Package struct {
	Path    string // import path
	Dir     string // directory holding the source files
	GoFiles []string
	DepOnly bool // true when only loaded as a dependency of a pattern match

	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info

	// TypeErrors collects type-checker diagnostics. Analysis still runs on
	// packages with errors (the AST and partial type info survive), but the
	// driver surfaces them so a broken tree cannot silently pass lint.
	TypeErrors []error
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Loader loads and caches type-checked packages rooted at a module
// directory. It is not safe for concurrent use.
type Loader struct {
	dir  string
	fset *token.FileSet
	typ  map[string]*types.Package // import path -> checked package
	pkgs map[string]*Package
}

// NewLoader returns a loader that resolves patterns relative to dir (the
// module root).
func NewLoader(dir string) *Loader {
	return &Loader{
		dir:  dir,
		fset: token.NewFileSet(),
		typ:  make(map[string]*types.Package),
		pkgs: make(map[string]*Package),
	}
}

// Fset returns the file set shared by every package this loader produced.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load resolves patterns with `go list` and returns the matched (non-DepOnly)
// packages, fully type-checked. Dependencies are checked too (exports only)
// but not returned.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.dir
	// CGO off: every package, including net/os-adjacent parts of the
	// standard library, then has a pure-Go file set go/types can check.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}

	var roots []*Package
	dec := json.NewDecoder(&out)
	for dec.More() {
		var lp listPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("load: parse go list output: %v", err)
		}
		if lp.Error != nil && !lp.Standard {
			return nil, fmt.Errorf("load: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := l.check(&lp)
		if err != nil {
			return nil, err
		}
		if pkg != nil && !pkg.DepOnly {
			roots = append(roots, pkg)
		}
	}
	return roots, nil
}

// check parses and type-checks one listed package, memoizing the result.
func (l *Loader) check(lp *listPackage) (*Package, error) {
	if lp.ImportPath == "unsafe" {
		l.typ["unsafe"] = types.Unsafe
		return nil, nil
	}
	if prev, ok := l.pkgs[lp.ImportPath]; ok {
		// A package first seen as a dependency was checked with
		// IgnoreFuncBodies and has no TypesInfo; when a later pattern names
		// it as a root it must be re-checked in full, or the analyzers would
		// silently skip it. The fresh result replaces the memoized one, and
		// since `go list -deps` emits dependencies before dependents, later
		// dependents resolve against the upgraded package.
		if !prev.DepOnly || lp.DepOnly {
			return prev, nil
		}
		delete(l.pkgs, lp.ImportPath)
		delete(l.typ, lp.ImportPath)
	}
	if len(lp.CgoFiles) > 0 {
		return nil, fmt.Errorf("load: %s uses cgo; run with CGO_ENABLED=0", lp.ImportPath)
	}
	files := make([]*ast.File, 0, len(lp.GoFiles))
	names := make([]string, 0, len(lp.GoFiles))
	for _, f := range lp.GoFiles {
		path := filepath.Join(lp.Dir, f)
		af, err := parser.ParseFile(l.fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %v", err)
		}
		files = append(files, af)
		names = append(names, path)
	}
	pkg := &Package{
		Path:    lp.ImportPath,
		Dir:     lp.Dir,
		GoFiles: names,
		DepOnly: lp.DepOnly,
		Fset:    l.fset,
		Files:   files,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := types.Config{
		Importer:         importerFunc(l.importPkg),
		IgnoreFuncBodies: lp.DepOnly,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	tpkg, _ := cfg.Check(lp.ImportPath, l.fset, files, info)
	// On dependency-only packages (the standard library re-checked from
	// source) a stray type error must not kill the whole run; the partial
	// package is still usable for downstream checking.
	if !lp.DepOnly {
		pkg.TypesInfo = info
	}
	pkg.Types = tpkg
	l.typ[lp.ImportPath] = tpkg
	l.pkgs[lp.ImportPath] = pkg
	return pkg, nil
}

// EscapeOutput runs the compiler's escape analysis over one package and
// returns the raw -m=2 diagnostics for framework.ParseEscapes. The gcflags
// pattern restricts -m=2 to the target package, so dependencies compile
// quietly and (usually) from cache; the go tool replays the compiler output
// on cache hits, so repeated calls are cheap and deterministic.
func EscapeOutput(dir, pkgPath string) (string, error) {
	cmd := exec.Command("go", "build", "-o", os.DevNull, "-gcflags="+pkgPath+"=-m=2", pkgPath)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var out bytes.Buffer
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("load: go build -gcflags=-m=2 %s: %v\n%s", pkgPath, err, out.String())
	}
	return out.String(), nil
}

// Import returns the type-checked package for an import path, running
// `go list` on demand for paths not yet in the cache. The analysistest
// fixture runner uses this to resolve standard-library imports of testdata
// packages.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.typ[path]; ok && p != nil {
		return p, nil
	}
	if _, err := l.Load(path); err != nil {
		return nil, err
	}
	return l.importPkg(path)
}

func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.typ[path]; ok && p != nil {
		return p, nil
	}
	return nil, fmt.Errorf("load: package %q not yet loaded (go list order violated?)", path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// CheckFiles type-checks an ad-hoc package from already-parsed files whose
// imports resolve through resolve (falling back to the loader's cache). The
// analysistest fixture runner uses this to check GOPATH-style testdata
// packages that are not visible to `go list`.
func (l *Loader) CheckFiles(path string, fset *token.FileSet, files []*ast.File, resolve func(string) (*types.Package, error)) (*types.Package, *types.Info, []error, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var errs []error
	cfg := types.Config{
		Importer: importerFunc(func(p string) (*types.Package, error) {
			if resolve != nil {
				if tp, err := resolve(p); err == nil && tp != nil {
					return tp, nil
				}
			}
			return l.Import(p)
		}),
		Error: func(err error) { errs = append(errs, err) },
	}
	tpkg, err := cfg.Check(path, fset, files, info)
	if err != nil && len(errs) == 0 {
		errs = append(errs, err)
	}
	return tpkg, info, errs, nil
}

// Package ckptcover implements the simlint analyzer that cross-checks
// runtime state structs against their checkpoint (wire) records.
//
// The PR-4 snapshot format serializes live state structs (the array
// simulator's sim/diskState/eventRecord/cont/op, diskmodel.Disk, the thermal
// tracker, the fault injector, ...) into parallel plain-data record structs.
// The classic failure mode is "added a field to Disk, forgot the snapshot":
// builds stay green, runs stay plausible, and the kill/resume DeepEqual test
// only catches it if the new field happens to change value mid-run in the
// test's window. ckptcover makes the pairing explicit and mechanical.
//
// A checkpoint record struct declares which state struct it serializes with
// a directive in its doc comment:
//
//	//simlint:checkpoint-for Disk ignore=id,params alias=inj:Injector
//	type Checkpoint struct { ... }
//
// The analyzer then requires every field of the state struct to have a
// counterpart in the record: same name under case-insensitive comparison
// (fileID ↔ FileID), an explicit alias (inj ↔ Injector), or membership in
// the ignore list (for configuration re-supplied on restore and runtime
// scaffolding that is deliberately not serialized). Stale directives are
// errors too: ignore/alias entries naming fields the state struct no longer
// has are reported, so the contract cannot rot silently. Record-only fields
// (derived encodings like Busy for an infinite idleSince) are always
// allowed.
package ckptcover

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the ckptcover check.
var Analyzer = &framework.Analyzer{
	Name: "ckptcover",
	Doc:  "require every field of a snapshot state struct to appear in its declared checkpoint record",
	Run:  run,
}

const directive = "simlint:checkpoint-for"

type spec struct {
	state  string
	ignore map[string]bool
	alias  map[string]string // state field -> record field
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, s := range gd.Specs {
				ts, ok := s.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				sp, ok, err := parseSpec(doc)
				if err != nil {
					pass.Reportf(ts.Pos(), "ckptcover: %v", err)
					continue
				}
				if !ok {
					continue
				}
				checkPair(pass, ts, sp)
			}
		}
	}
	return nil
}

// parseSpec extracts a checkpoint-for directive from a doc comment.
func parseSpec(doc *ast.CommentGroup) (*spec, bool, error) {
	if doc == nil {
		return nil, false, nil
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if !strings.HasPrefix(text, directive) {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(text, directive))
		if len(fields) == 0 {
			return nil, false, fmt.Errorf("%s needs a state type name", directive)
		}
		sp := &spec{
			state:  fields[0],
			ignore: make(map[string]bool),
			alias:  make(map[string]string),
		}
		for _, f := range fields[1:] {
			switch {
			case strings.HasPrefix(f, "ignore="):
				for _, n := range strings.Split(strings.TrimPrefix(f, "ignore="), ",") {
					if n != "" {
						sp.ignore[n] = true
					}
				}
			case strings.HasPrefix(f, "alias="):
				for _, pair := range strings.Split(strings.TrimPrefix(f, "alias="), ",") {
					from, to, ok := strings.Cut(pair, ":")
					if !ok || from == "" || to == "" {
						return nil, false, fmt.Errorf("%s: bad alias %q (want state:Record)", directive, pair)
					}
					sp.alias[from] = to
				}
			default:
				return nil, false, fmt.Errorf("%s: unknown option %q", directive, f)
			}
		}
		return sp, true, nil
	}
	return nil, false, nil
}

// checkPair verifies one record struct against its declared state struct.
func checkPair(pass *framework.Pass, record *ast.TypeSpec, sp *spec) {
	recObj := pass.TypesInfo.Defs[record.Name]
	recStruct := structOf(recObj)
	if recStruct == nil {
		pass.Reportf(record.Pos(), "ckptcover: %s carries a %s directive but is not a struct", record.Name.Name, directive)
		return
	}
	stateObj := pass.Pkg.Scope().Lookup(sp.state)
	stateStruct := structOf(stateObj)
	if stateStruct == nil {
		pass.Reportf(record.Pos(), "ckptcover: state type %q not found in package %s (or not a struct)", sp.state, pass.Pkg.Path())
		return
	}

	recFields := make(map[string]bool, recStruct.NumFields())
	for i := 0; i < recStruct.NumFields(); i++ {
		recFields[strings.ToLower(recStruct.Field(i).Name())] = true
	}

	stateFields := make(map[string]bool, stateStruct.NumFields())
	var missing []string
	for i := 0; i < stateStruct.NumFields(); i++ {
		name := stateStruct.Field(i).Name()
		stateFields[name] = true
		if sp.ignore[name] {
			continue
		}
		want := name
		if a, ok := sp.alias[name]; ok {
			want = a
		}
		if !recFields[strings.ToLower(want)] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		pass.Reportf(record.Pos(),
			"ckptcover: checkpoint record %s does not cover field(s) %s of %s; serialize them (or add to ignore= with a reason if they are configuration re-supplied on restore)",
			record.Name.Name, strings.Join(missing, ", "), sp.state)
	}

	// Stale directive entries: names the state struct no longer has.
	var stale []string
	for n := range sp.ignore {
		if !stateFields[n] {
			stale = append(stale, "ignore="+n)
		}
	}
	for n := range sp.alias {
		if !stateFields[n] {
			stale = append(stale, "alias="+n)
		}
	}
	if len(stale) > 0 {
		sort.Strings(stale)
		pass.Reportf(record.Pos(), "ckptcover: directive on %s names field(s) %s that %s does not have; update the directive",
			record.Name.Name, strings.Join(stale, ", "), sp.state)
	}
}

// structOf unwraps a type object to its underlying struct, or nil.
func structOf(obj types.Object) *types.Struct {
	if obj == nil {
		return nil
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	st, _ := tn.Type().Underlying().(*types.Struct)
	return st
}

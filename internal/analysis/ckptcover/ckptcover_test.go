package ckptcover_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ckptcover"
)

func TestCkptcover(t *testing.T) {
	analysistest.Run(t, "testdata", ckptcover.Analyzer, "a")
}

// Package a exercises the ckptcover analyzer: records that miss state
// fields, carry stale directive entries, or name unknown state types are
// flagged; complete records with honest ignore/alias lists are not.
package a

type state struct {
	a       int
	b       float64
	cfg     string
	renamed bool
}

// Good covers every field of state: a and b by case-insensitive name,
// renamed through an alias, cfg through the ignore list.
//
//simlint:checkpoint-for state ignore=cfg alias=renamed:Moved
type Good struct {
	A     int
	B     float64
	Moved bool
	Extra int // record-only derived fields are always allowed
}

// Bad forgets to serialize b.
//
//simlint:checkpoint-for state ignore=cfg alias=renamed:Moved
type Bad struct { // want `checkpoint record Bad does not cover field\(s\) b of state`
	A     int
	Moved bool
}

// Stale ignores a field state no longer has.
//
//simlint:checkpoint-for state ignore=cfg,gone alias=renamed:Moved
type Stale struct { // want `directive on Stale names field\(s\) ignore=gone that state does not have`
	A     int
	B     float64
	Moved bool
}

// Orphan names a state type that does not exist.
//
//simlint:checkpoint-for vanished
type Orphan struct { // want `state type "vanished" not found in package a`
	A int
}

// Package detrand implements the simlint analyzer that keeps wall-clock
// time and ambient entropy out of the deterministic simulation packages.
//
// The whole reproduction rests on bit-identical replayable runs: sweep
// manifests are diffed at zero tolerance and checkpoint/resume equivalence
// is asserted with reflect.DeepEqual. One stray time.Now() or global
// math/rand call silently breaks both, usually long after the commit that
// introduced it. detrand turns that reviewer-memory invariant into a
// compile-time-style failure.
//
// Flagged inside a deterministic package:
//
//   - time.Now, time.Since, time.Until (wall-clock reads);
//   - the global top-level functions of math/rand and math/rand/v2
//     (rand.Intn, rand.Float64, rand.Seed, ...), whose shared source is
//     seeded from runtime entropy — seeded *rand.Rand values built with
//     rand.New(rand.NewSource(seed)) remain legal;
//   - anything from crypto/rand;
//   - os.Getpid, os.Getppid and os.Hostname (classic seed entropy).
//
// Legitimate wall-clock use (the DES stall watchdog, progress logging) is
// annotated at the call site with `//simlint:allow detrand -- reason` or
// file-wide with `//simlint:allowfile detrand -- reason`.
package detrand

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the detrand check.
var Analyzer = &framework.Analyzer{
	Name: "detrand",
	Doc:  "forbid wall-clock time and ambient entropy in deterministic simulation packages",
	Run:  run,
}

// bannedFuncs maps package path -> function name -> short reason.
var bannedFuncs = map[string]map[string]string{
	"time": {
		"Now":   "reads the wall clock",
		"Since": "reads the wall clock",
		"Until": "reads the wall clock",
	},
	"os": {
		"Getpid":   "is process entropy",
		"Getppid":  "is process entropy",
		"Hostname": "is host entropy",
	},
}

// randConstructors are the math/rand top-level functions that build a
// caller-seeded generator instead of touching the global source.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			// Only package-level objects: methods (e.g. time.Time.Sub on a
			// virtual timestamp) are fine.
			if fn, ok := obj.(*types.Func); ok && fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			path, name := obj.Pkg().Path(), obj.Name()
			switch path {
			case "time", "os":
				if reason, bad := bannedFuncs[path][name]; bad {
					pass.Reportf(id.Pos(), "%s.%s %s; deterministic packages must take time and randomness from the simulation (//simlint:allow detrand to override)", path, name, reason)
				}
			case "math/rand", "math/rand/v2":
				if _, isFunc := obj.(*types.Func); isFunc && !randConstructors[name] {
					pass.Reportf(id.Pos(), "global %s.%s draws from the shared runtime-seeded source; plumb a seeded *rand.Rand instead", path, name)
				}
			case "crypto/rand":
				pass.Reportf(id.Pos(), "crypto/rand.%s is non-deterministic by design; deterministic packages must use a seeded *rand.Rand", name)
			}
			return true
		})
	}
	return nil
}

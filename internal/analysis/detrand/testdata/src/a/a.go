// Package a exercises the detrand analyzer: wall-clock reads, the global
// math/rand source, crypto/rand and process entropy are flagged; seeded
// generators, virtual-time arithmetic and allow-annotated sites are not.
package a

import (
	crand "crypto/rand"
	"math/rand"
	"os"
	"time"
)

func wallClock() time.Duration {
	t := time.Now()      // want `time\.Now reads the wall clock`
	_ = time.Since(t)    // want `time\.Since reads the wall clock`
	return time.Until(t) // want `time\.Until reads the wall clock`
}

func globalRand() {
	_ = rand.Intn(10)                  // want `global math/rand\.Intn draws from the shared runtime-seeded source`
	_ = rand.Float64()                 // want `global math/rand\.Float64 draws from the shared runtime-seeded source`
	rand.Shuffle(3, func(i, j int) {}) // want `global math/rand\.Shuffle draws from the shared runtime-seeded source`
}

func processEntropy() {
	_ = os.Getpid()      // want `os\.Getpid is process entropy`
	_, _ = os.Hostname() // want `os\.Hostname is host entropy`
}

func cryptoEntropy() {
	buf := make([]byte, 8)
	_, _ = crand.Read(buf) // want `crypto/rand\.Read is non-deterministic by design`
}

// seeded generators built from an explicit seed stay legal.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// drawing from a plumbed *rand.Rand is the sanctioned pattern.
func plumbed(rng *rand.Rand) float64 {
	return rng.Float64()
}

// virtual-time arithmetic on time.Duration never touches the clock.
func virtual(d time.Duration) time.Duration {
	return d + time.Second
}

func waived() time.Time {
	return time.Now() //simlint:allow detrand -- fixture: explicitly waived site
}

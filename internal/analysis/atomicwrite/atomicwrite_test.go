package atomicwrite_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/atomicwrite"
)

func TestAtomicwrite(t *testing.T) {
	analysistest.Run(t, "testdata", atomicwrite.Analyzer, "a")
}

// Package atomicwrite implements the simlint analyzer that keeps artifact
// writes crash-safe.
//
// Run manifests, telemetry series, reports and checkpoints are the
// repository's ground truth: the crash-recovery CI job SIGKILLs a run
// mid-flight and requires every artifact a reader later touches to be either
// the previous complete file or the new complete file. internal/atomicio
// (temp file + fsync + rename) provides exactly that; a direct os.Create or
// os.WriteFile in an artifact-producing package reintroduces torn files.
//
// The analyzer flags calls to os.Create, os.WriteFile, os.OpenFile and
// io/ioutil.WriteFile. Writers that genuinely cannot commit atomically —
// e.g. pprof/runtime-trace streams that must hold a live *os.File for the
// whole process lifetime — carry `//simlint:allow atomicwrite -- reason`.
package atomicwrite

import (
	"go/ast"

	"repro/internal/analysis/framework"
)

// Analyzer is the atomicwrite check.
var Analyzer = &framework.Analyzer{
	Name: "atomicwrite",
	Doc:  "require artifact files to be written through internal/atomicio (temp+fsync+rename), not os.Create/os.WriteFile",
	Run:  run,
}

var banned = map[string]map[string]string{
	"os": {
		"Create":    "atomicio.Create",
		"WriteFile": "atomicio.WriteFile",
		"OpenFile":  "atomicio.Create",
	},
	"io/ioutil": {
		"WriteFile": "atomicio.WriteFile",
	},
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if repl, bad := banned[obj.Pkg().Path()][obj.Name()]; bad {
				pass.Reportf(id.Pos(), "%s.%s writes files non-atomically; artifacts must go through repro/internal/atomicio (%s) so a SIGKILL never leaves a torn file (//simlint:allow atomicwrite for streaming debug outputs)",
					obj.Pkg().Path(), obj.Name(), repl)
			}
			return true
		})
	}
	return nil
}

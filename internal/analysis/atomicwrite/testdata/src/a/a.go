// Package a exercises the atomicwrite analyzer: direct artifact writes are
// flagged; reads and allow-annotated streaming writers are not.
package a

import "os"

func bad(path string, data []byte) {
	_, _ = os.Create(path)                       // want `os\.Create writes files non-atomically`
	_ = os.WriteFile(path, data, 0o644)          // want `os\.WriteFile writes files non-atomically`
	_, _ = os.OpenFile(path, os.O_WRONLY, 0o644) // want `os\.OpenFile writes files non-atomically`
}

// Reading never tears an artifact.
func reads(path string) {
	_, _ = os.Open(path)
	_, _ = os.ReadFile(path)
	_, _ = os.Stat(path)
}

// A streaming writer that must hold a live file may be waived.
func waived(path string) {
	_, _ = os.Create(path) //simlint:allow atomicwrite -- fixture: streaming debug output
}

package simlint_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis/simlint"
)

// TestRepositoryIsClean is the meta-check: the committed tree must satisfy
// every contract the suite enforces. Any diagnostic here means either a real
// violation slipped in or an analyzer regressed into a false positive —
// both block the build, which is the point.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository; skipped with -short")
	}
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not found at %s: %v", root, err)
	}
	diags, loader, err := simlint.Run(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		pos := loader.Fset().Position(d.Pos)
		t.Errorf("%s: %s [%s]", pos, d.Message, d.Analyzer)
	}
}

// TestScopeMapping pins the package-scope model documented in DESIGN.md §11:
// which analyzers run where.
func TestScopeMapping(t *testing.T) {
	has := func(pkg, analyzer string) bool {
		for _, a := range simlint.AnalyzersFor(pkg) {
			if a.Name == analyzer {
				return true
			}
		}
		return false
	}
	cases := []struct {
		pkg      string
		analyzer string
		want     bool
	}{
		// The simulation core gets the determinism analyzers.
		{"repro/internal/array", "detrand", true},
		{"repro/internal/array", "maporder", true},
		{"repro/internal/des", "detrand", true},
		{"repro/internal/telemetry", "detrand", true},
		// Renderers get maporder but not detrand.
		{"repro/internal/runstore", "maporder", true},
		{"repro/internal/runstore", "detrand", false},
		{"repro/internal/experiment", "maporder", true},
		// The ops server renders the golden-tested OpenMetrics exposition.
		{"repro/internal/opsserver", "maporder", true},
		{"repro/internal/opsserver", "detrand", false},
		// Artifact writers get atomicwrite; atomicio itself is exempt.
		{"repro/internal/runstore", "atomicwrite", true},
		{"repro/internal/checkpoint", "atomicwrite", true},
		{"repro/cmd/arraysim", "atomicwrite", true},
		{"repro/internal/atomicio", "atomicwrite", false},
		// Commands are not part of the deterministic core.
		{"repro/cmd/arraysim", "detrand", false},
		// ckptcover and nilhandle are global.
		{"repro/internal/analysis/load", "ckptcover", true},
		{"repro/internal/analysis/load", "nilhandle", true},
		{"repro/examples/quickstart", "atomicwrite", false},
		// sharedcapture polices the goroutine-spawning sweep runners only.
		{"repro/internal/experiment", "sharedcapture", true},
		{"repro/internal/cluster", "sharedcapture", true},
		{"repro/internal/des", "sharedcapture", false},
		{"repro/internal/opsserver", "sharedcapture", false},
		// engineaffinity covers every multi-goroutine handle holder.
		{"repro/internal/experiment", "engineaffinity", true},
		{"repro/internal/cluster", "engineaffinity", true},
		{"repro/internal/opsserver", "engineaffinity", true},
		{"repro/cmd/experiments", "engineaffinity", true},
		{"repro/internal/des", "engineaffinity", false},
		// hotalloc is global; it acts only on annotated functions.
		{"repro/internal/des", "hotalloc", true},
		{"repro/internal/array", "hotalloc", true},
		{"repro/examples/quickstart", "hotalloc", true},
	}
	for _, c := range cases {
		if got := has(c.pkg, c.analyzer); got != c.want {
			t.Errorf("AnalyzersFor(%q) includes %s = %v, want %v", c.pkg, c.analyzer, got, c.want)
		}
	}
}

// Package simlint assembles the repository's determinism and checkpoint
// analyzers into one suite and maps each analyzer onto the package scope
// where its contract applies. cmd/simlint and the self-check meta-test are
// both thin wrappers around Run, so the command line, CI, and the test
// enforce exactly the same contract.
//
// Scope model (see DESIGN.md §11 "Determinism contract"):
//
//   - detrand and maporder guard the deterministic simulation core — every
//     package whose computation feeds results that are diffed at zero
//     tolerance or checkpointed, plus telemetry (whose reads must be
//     observationally pure and whose artifacts are diffed).
//   - maporder additionally covers the artifact renderers (runstore,
//     experiment): map-ordered rendering makes "identical" runs diff.
//   - atomicwrite covers every package that writes run artifacts, plus all
//     commands.
//   - ckptcover and nilhandle are global: directives and telemetry handles
//     can appear anywhere.
//
// Concurrency scope (see DESIGN.md §16 "Concurrency contract"):
//
//   - sharedcapture guards the packages that spawn per-cell goroutines
//     (experiment, cluster): closures launched there must not capture
//     mutable state shared across cells.
//   - engineaffinity covers every package that both holds engine/telemetry
//     handles and runs more than one goroutine (experiment, cluster, the
//     ops server, and the commands).
//   - hotalloc is global but acts only on functions annotated
//     //simlint:hotpath; its syntactic findings are validated against the
//     compiler's own escape analysis (-gcflags=-m=2) wherever a package
//     carries the annotation.
package simlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"repro/internal/analysis/atomicwrite"
	"repro/internal/analysis/ckptcover"
	"repro/internal/analysis/detrand"
	"repro/internal/analysis/engineaffinity"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/load"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/nilhandle"
	"repro/internal/analysis/sharedcapture"
)

// modulePath is the repository's module path (go.mod).
const modulePath = "repro"

// deterministicPkgs is the simulation core: wall-clock time, ambient
// entropy, and map-order effects are forbidden here.
var deterministicPkgs = []string{
	"internal/array",
	"internal/cluster",
	"internal/des",
	"internal/policy",
	"internal/faults",
	"internal/workload",
	"internal/diskmodel",
	"internal/thermal",
	"internal/stats",
	"internal/checkpoint",
	"internal/reliability",
	"internal/worth",
	"internal/telemetry",
}

// rendererPkgs produce artifacts that are diffed bit-for-bit across runs —
// or, for the ops server, a golden-tested exposition; map-ordered rendering
// would make identical state render differently.
var rendererPkgs = []string{
	"internal/runstore",
	"internal/experiment",
	"internal/opsserver",
}

// artifactPkgs write files a crash-recovery reader later trusts; they must
// write through internal/atomicio.
var artifactPkgs = []string{
	"internal/runstore",
	"internal/telemetry",
	"internal/checkpoint",
	"internal/experiment",
	"cmd",
}

// concurrencyPkgs spawn the per-cell goroutines of the parallel sweep
// runners; sharedcapture polices what their closures may capture.
var concurrencyPkgs = []string{
	"internal/experiment",
	"internal/cluster",
}

// affinityPkgs hold engine/telemetry handles while running more than one
// goroutine; engineaffinity confines affine state to its constructing
// goroutine there.
var affinityPkgs = []string{
	"internal/experiment",
	"internal/cluster",
	"internal/opsserver",
	"cmd",
}

// All returns every analyzer in the suite, for -list and documentation.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		detrand.Analyzer,
		maporder.Analyzer,
		ckptcover.Analyzer,
		atomicwrite.Analyzer,
		nilhandle.Analyzer,
		sharedcapture.Analyzer,
		engineaffinity.Analyzer,
		hotalloc.Analyzer,
	}
}

// inScope reports whether pkgPath falls under any of the module-relative
// prefixes.
func inScope(pkgPath string, prefixes []string) bool {
	for _, p := range prefixes {
		full := modulePath + "/" + p
		if pkgPath == full || strings.HasPrefix(pkgPath, full+"/") {
			return true
		}
	}
	return false
}

// AnalyzersFor returns the analyzers that apply to one package.
func AnalyzersFor(pkgPath string) []*framework.Analyzer {
	var as []*framework.Analyzer
	if inScope(pkgPath, deterministicPkgs) {
		as = append(as, detrand.Analyzer)
	}
	if inScope(pkgPath, deterministicPkgs) || inScope(pkgPath, rendererPkgs) {
		as = append(as, maporder.Analyzer)
	}
	if inScope(pkgPath, artifactPkgs) && pkgPath != modulePath+"/internal/atomicio" {
		as = append(as, atomicwrite.Analyzer)
	}
	if inScope(pkgPath, concurrencyPkgs) {
		as = append(as, sharedcapture.Analyzer)
	}
	if inScope(pkgPath, affinityPkgs) {
		as = append(as, engineaffinity.Analyzer)
	}
	// Global contracts. ckptcover only acts on declared directives,
	// nilhandle skips the telemetry implementation itself, and hotalloc
	// acts only on //simlint:hotpath-annotated functions.
	as = append(as, ckptcover.Analyzer, nilhandle.Analyzer, hotalloc.Analyzer)
	return as
}

// hasHotpathDirective reports whether any file in the package annotates a
// function with //simlint:hotpath — only then is the compiler's escape
// analysis worth running for the package.
func hasHotpathDirective(files []*ast.File) bool {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, "//simlint:hotpath") {
					return true
				}
			}
		}
	}
	return false
}

// Run loads the given patterns relative to dir and applies the suite,
// returning all surviving diagnostics sorted by position. Type errors in a
// matched package are returned as an error: a tree that does not compile
// must not pass lint.
func Run(dir string, patterns ...string) ([]framework.Diagnostic, *load.Loader, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := load.NewLoader(dir)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, loader, err
	}
	var diags []framework.Diagnostic
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			return nil, loader, fmt.Errorf("simlint: %s does not type-check: %v", pkg.Path, pkg.TypeErrors[0])
		}
		if pkg.TypesInfo == nil {
			continue
		}
		// Escape data is only gathered for packages that annotate a hot
		// path: the extra compile is pointless elsewhere, and hotalloc
		// degrades to syntax-only checks without it.
		var esc *framework.EscapeIndex
		if hasHotpathDirective(pkg.Files) {
			out, err := load.EscapeOutput(dir, pkg.Path)
			if err != nil {
				return nil, loader, fmt.Errorf("simlint: escape analysis for %s: %w", pkg.Path, err)
			}
			esc = framework.ParseEscapes(out)
		}
		for _, a := range AnalyzersFor(pkg.Path) {
			ds, err := framework.RunWithEscapes(a, pkg.Fset, pkg.Files, pkg.Types, pkg.TypesInfo, esc)
			if err != nil {
				return nil, loader, fmt.Errorf("simlint: %s on %s: %w", a.Name, pkg.Path, err)
			}
			diags = append(diags, ds...)
		}
	}
	fset := loader.Fset()
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return Dedupe(diags, fset), loader, nil
}

// Dedupe collapses diagnostics that share analyzer, position, and message.
// Duplicates arise when a package is matched by more than one pattern or a
// file-level finding is reported per type instantiation; the suite's output
// is a set, not a multiset. The input must already be position-sorted.
func Dedupe(diags []framework.Diagnostic, fset *token.FileSet) []framework.Diagnostic {
	out := diags[:0]
	type key struct {
		analyzer, file, msg string
		line, col           int
	}
	seen := make(map[key]bool, len(diags))
	for _, d := range diags {
		p := fset.Position(d.Pos)
		k := key{d.Analyzer, p.Filename, d.Message, p.Line, p.Column}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, d)
	}
	return out
}

// Package analysistest runs a simlint analyzer over GOPATH-style fixture
// packages and checks its diagnostics against `// want` expectations, the
// same convention as golang.org/x/tools/go/analysis/analysistest:
//
//	testdata/src/<pkg>/*.go
//
//	func f() {
//		t := time.Now() // want `time\.Now reads the wall clock`
//	}
//
// A want comment holds one or more back-quoted or double-quoted regular
// expressions, each of which must match a diagnostic reported on that line;
// conversely every diagnostic must be matched by some expectation. Fixture
// packages may import each other (by their directory name under src/) and
// the standard library; both resolve through the shared offline loader.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/load"
)

// fixture is one parsed and type-checked testdata package.
type fixture struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// runner memoizes fixture packages so helpers (e.g. a fake telemetry
// package) are checked once even when several fixtures import them.
type runner struct {
	t        *testing.T
	src      string // testdata/src
	loader   *load.Loader
	fixtures map[string]*fixture
}

// Run checks analyzer a against the named fixture packages under
// testdata/src and reports every unexpected or missing diagnostic through t.
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkgs ...string) {
	t.Helper()
	src := filepath.Join(testdata, "src")
	r := &runner{
		t:        t,
		src:      src,
		loader:   load.NewLoader(testdata),
		fixtures: make(map[string]*fixture),
	}
	for _, pkg := range pkgs {
		fx := r.load(pkg)
		diags, err := framework.Run(a, r.loader.Fset(), fx.files, fx.pkg, fx.info)
		if err != nil {
			t.Fatalf("%s: analyzer failed: %v", pkg, err)
		}
		r.compare(pkg, fx, diags)
	}
}

// load parses and type-checks one fixture package, resolving imports of
// sibling fixtures recursively.
func (r *runner) load(pkg string) *fixture {
	r.t.Helper()
	if fx, ok := r.fixtures[pkg]; ok {
		if fx == nil {
			r.t.Fatalf("fixture %q: import cycle", pkg)
		}
		return fx
	}
	r.fixtures[pkg] = nil // cycle guard
	dir := filepath.Join(r.src, pkg)
	entries, err := os.ReadDir(dir)
	if err != nil {
		r.t.Fatalf("fixture %q: %v", pkg, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		af, err := parser.ParseFile(r.loader.Fset(), filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			r.t.Fatalf("fixture %q: %v", pkg, err)
		}
		files = append(files, af)
	}
	if len(files) == 0 {
		r.t.Fatalf("fixture %q: no Go files in %s", pkg, dir)
	}
	resolve := func(path string) (*types.Package, error) {
		if _, err := os.Stat(filepath.Join(r.src, path)); err != nil {
			return nil, fmt.Errorf("not a fixture: %s", path)
		}
		return r.load(path).pkg, nil
	}
	tpkg, info, errs, err := r.loader.CheckFiles(pkg, r.loader.Fset(), files, resolve)
	if err != nil {
		r.t.Fatalf("fixture %q: %v", pkg, err)
	}
	for _, e := range errs {
		r.t.Errorf("fixture %q: type error: %v", pkg, e)
	}
	if r.t.Failed() {
		r.t.FailNow()
	}
	fx := &fixture{files: files, pkg: tpkg, info: info}
	r.fixtures[pkg] = fx
	return fx
}

// expectation is one `// want` regexp anchored to a file line.
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	text string
	hit  bool
}

// wantRE captures the payload of a want comment: everything after the
// keyword, holding one or more quoted regexps.
var wantRE = regexp.MustCompile("^//\\s*want\\s+(.*)$")

// quotedRE captures one back-quoted or double-quoted string.
var quotedRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// expectations collects the want comments of every file in the fixture.
func (r *runner) expectations(fx *fixture) []*expectation {
	r.t.Helper()
	var exps []*expectation
	for _, f := range fx.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := r.loader.Fset().Position(c.Slash)
				quoted := quotedRE.FindAllStringSubmatch(m[1], -1)
				if len(quoted) == 0 {
					r.t.Fatalf("%s:%d: want comment with no quoted pattern: %s", pos.Filename, pos.Line, c.Text)
				}
				for _, q := range quoted {
					text := q[1]
					if text == "" {
						text = q[2]
					}
					rx, err := regexp.Compile(text)
					if err != nil {
						r.t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, text, err)
					}
					exps = append(exps, &expectation{file: pos.Filename, line: pos.Line, rx: rx, text: text})
				}
			}
		}
	}
	return exps
}

// compare matches diagnostics against expectations one-to-one by line.
func (r *runner) compare(pkg string, fx *fixture, diags []framework.Diagnostic) {
	r.t.Helper()
	exps := r.expectations(fx)
	for _, d := range diags {
		pos := r.loader.Fset().Position(d.Pos)
		matched := false
		for _, e := range exps {
			if !e.hit && e.file == pos.Filename && e.line == pos.Line && e.rx.MatchString(d.Message) {
				e.hit = true
				matched = true
				break
			}
		}
		if !matched {
			r.t.Errorf("%s: unexpected diagnostic at %s:%d: %s [%s]", pkg, pos.Filename, pos.Line, d.Message, d.Analyzer)
		}
	}
	var missed []string
	for _, e := range exps {
		if !e.hit {
			missed = append(missed, fmt.Sprintf("%s:%d: no diagnostic matching %q", e.file, e.line, e.text))
		}
	}
	sort.Strings(missed)
	for _, m := range missed {
		r.t.Errorf("%s: %s", pkg, m)
	}
}

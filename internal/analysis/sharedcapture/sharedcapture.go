// Package sharedcapture implements the simlint analyzer that guards the
// parallel sweep runner's cell-ownership contract (DESIGN.md §16).
//
// Sweep cells run concurrently, and the whole bit-identity story rests on
// each cell owning its engine, RNG, and telemetry end-to-end. The one place
// that discipline can silently break is a goroutine closure: a `go` statement
// (or worker-pool submission) whose function literal captures a pointer to
// state another cell also touches. The analyzer inspects every goroutine
// launch and flags:
//
//   - capture of a loop variable that is declared *outside* its for
//     statement (`var i int; for i = ...`) — the only loop-capture form that
//     still aliases across iterations under Go ≥1.22 per-iteration semantics;
//   - capture of a pointer to goroutine-affine shared state: *des.Engine,
//     *telemetry.Registry, *telemetry.Recorder, *telemetry.DecisionLog, or
//     any map (manifest/index maps are the canonical offender);
//   - writes to captured variables (`done = true`, `lastErr = err`) — racy
//     unless the variable is moved inside the goroutine;
//   - writes to a captured slice indexed by anything other than the
//     goroutine's own work item (an index computed entirely from variables
//     declared inside the literal, e.g. `cells[j.idx]` with `j` ranged from
//     the jobs channel, stays legal).
//
// Captures of mediated constructs are always fine: channels, sync.* and
// sync/atomic.* types, des.Watch, and the telemetry types that are
// documented as cross-goroutine safe (Live, FleetLive, SweepTracker,
// Progress, Logger). Everything else needs a `//simlint:allow sharedcapture
// -- reason` at the capture site.
package sharedcapture

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the sharedcapture check.
var Analyzer = &framework.Analyzer{
	Name: "sharedcapture",
	Doc:  "flag goroutine closures capturing mutable state shared across sweep cells (loop variables, engines, registries, maps, captured writes)",
	Run:  run,
}

// sharedPtrTypes are the goroutine-affine types whose pointers must never be
// captured into a goroutine: each belongs to exactly one cell.
var sharedPtrTypes = map[string]bool{
	"Engine":      true, // des.Engine
	"Registry":    true, // telemetry.Registry
	"Recorder":    true, // telemetry.Recorder
	"DecisionLog": true, // telemetry.DecisionLog
}

// mediatedTelemetry are the telemetry types documented as safe to share
// across goroutines (seqlock- or mutex-mediated).
var mediatedTelemetry = map[string]bool{
	"Live":         true,
	"FleetLive":    true,
	"SweepTracker": true,
	"Progress":     true,
	"Logger":       true,
}

// pkgIs reports whether pkg's import path is name or ends in "/name", so the
// check works for both the real module layout and fixture packages.
func pkgIs(pkg *types.Package, name string) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == name || strings.HasSuffix(p, "/"+name)
}

// namedOf unwraps t to its named type, looking through one pointer.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// allowlisted reports whether capturing a variable of type t into a
// goroutine is always safe: channels, sync primitives, atomics, function
// values, and the mediated observation types.
func allowlisted(t types.Type) bool {
	switch u := t.(type) {
	case *types.Chan, *types.Signature:
		return true
	case *types.Pointer:
		return allowlisted(u.Elem())
	}
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	switch {
	case obj.Pkg() == nil:
		return false
	case obj.Pkg().Path() == "sync" || obj.Pkg().Path() == "sync/atomic":
		return true
	case pkgIs(obj.Pkg(), "telemetry") && mediatedTelemetry[obj.Name()]:
		return true
	case pkgIs(obj.Pkg(), "des") && obj.Name() == "Watch":
		return true
	}
	return false
}

// sharedPointer reports whether t is a pointer to one of the goroutine-affine
// shared types.
func sharedPointer(t types.Type) (string, bool) {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return "", false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if !sharedPtrTypes[obj.Name()] {
		return "", false
	}
	if pkgIs(obj.Pkg(), "des") || pkgIs(obj.Pkg(), "telemetry") {
		return types.TypeString(t, nil), true
	}
	return "", false
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		var stack []ast.Node
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if lit := goroutineLit(n); lit != nil {
				checkLit(pass, lit, stack)
			}
			return true
		}
		ast.Inspect(file, func(n ast.Node) bool { return walk(n) })
	}
	return nil
}

// goroutineLit returns the function literal launched by n when n is a `go`
// statement or a worker-pool submission (a call to a method named Go or
// Submit with a function-literal argument); nil otherwise.
func goroutineLit(n ast.Node) *ast.FuncLit {
	switch x := n.(type) {
	case *ast.GoStmt:
		if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
			return lit
		}
	case *ast.CallExpr:
		sel, ok := x.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Go" && sel.Sel.Name != "Submit") {
			return nil
		}
		for _, arg := range x.Args {
			if lit, ok := arg.(*ast.FuncLit); ok {
				return lit
			}
		}
	}
	return nil
}

// checkLit analyzes one goroutine literal. stack is the ancestor chain of
// the launching statement (innermost last), used to find enclosing loops.
func checkLit(pass *framework.Pass, lit *ast.FuncLit, stack []ast.Node) {
	captured := func(obj types.Object) bool {
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return false
		}
		// Declared inside the literal (including its parameters): own state.
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return false
		}
		// Package-level state is not a capture; detrand/maporder and code
		// review govern globals.
		if v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
			return false
		}
		return true
	}

	// One "captures shared type" report per variable per literal.
	flaggedVar := make(map[types.Object]bool)

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// Nested literals share the same capture frame; keep walking.
			return true
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				checkWrite(pass, lit, lhs, captured)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, lit, x.X, captured)
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[x]
			if obj == nil || !captured(obj) || flaggedVar[obj] {
				return true
			}
			if loopVarAssignedOutside(pass, obj, stack) {
				flaggedVar[obj] = true
				pass.Reportf(x.Pos(), "goroutine captures loop variable %s declared outside its for statement; iterations share one variable — pass it as a parameter or declare it in the loop", x.Name)
				return true
			}
			t := obj.Type()
			if allowlisted(t) {
				return true
			}
			if name, ok := sharedPointer(t); ok {
				flaggedVar[obj] = true
				pass.Reportf(x.Pos(), "goroutine captures %s %s; the pointee is goroutine-affine — give each cell its own instance or go through a mediated API (telemetry.Live, des.Watch)", name, x.Name)
				return true
			}
			if _, ok := t.Underlying().(*types.Map); ok {
				flaggedVar[obj] = true
				pass.Reportf(x.Pos(), "goroutine captures map %s; concurrent map access across cells is racy — pass per-cell data in or guard it with an allowlisted sync construct", x.Name)
			}
		}
		return true
	})
}

// checkWrite flags an assignment target inside the literal that aliases
// captured state.
func checkWrite(pass *framework.Pass, lit *ast.FuncLit, lhs ast.Expr, captured func(types.Object) bool) {
	switch x := lhs.(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[x]; obj != nil && captured(obj) && !allowlisted(obj.Type()) {
			pass.Reportf(x.Pos(), "goroutine writes to captured variable %s; the write races with the spawning goroutine — move the variable into the goroutine or guard it with an allowlisted sync construct", x.Name)
		}
	case *ast.SelectorExpr:
		if root := rootIdent(x); root != nil {
			if obj := pass.TypesInfo.Uses[root]; obj != nil && captured(obj) && !allowlisted(obj.Type()) {
				pass.Reportf(x.Pos(), "goroutine writes through captured variable %s; the write races with the spawning goroutine — move the state into the goroutine or guard it with an allowlisted sync construct", root.Name)
			}
		}
	case *ast.IndexExpr:
		base, ok := x.X.(*ast.Ident)
		if !ok {
			return
		}
		obj := pass.TypesInfo.Uses[base]
		if obj == nil || !captured(obj) {
			return
		}
		if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
			// Map index writes are covered by the map-capture report.
			return
		}
		if indexOwnedBy(pass, lit, x.Index) {
			return
		}
		pass.Reportf(x.Pos(), "goroutine writes to captured slice %s at an index not derived from its own work item; cells may only write their own index (e.g. cells[j.idx] with j received inside the goroutine)", base.Name)
	}
}

// indexOwnedBy reports whether every variable in an index expression is
// declared inside the literal — i.e. the index is derived from the
// goroutine's own work item (a parameter or a value received from the jobs
// channel), so the write cannot collide with another cell's.
func indexOwnedBy(pass *framework.Pass, lit *ast.FuncLit, index ast.Expr) bool {
	owned := true
	ast.Inspect(index, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		v, isVar := obj.(*types.Var)
		if !isVar || v.IsField() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			owned = false
		}
		return true
	})
	return owned
}

// rootIdent returns the leftmost identifier of a selector chain (a.b.c → a).
func rootIdent(sel *ast.SelectorExpr) *ast.Ident {
	for {
		switch x := sel.X.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			sel = x
		default:
			return nil
		}
	}
}

// loopVarAssignedOutside reports whether obj is the iteration variable of an
// enclosing for/range statement while being *declared outside* it — the one
// loop-capture shape Go ≥1.22 per-iteration variables do not fix.
func loopVarAssignedOutside(pass *framework.Pass, obj types.Object, stack []ast.Node) bool {
	for _, n := range stack {
		switch f := n.(type) {
		case *ast.ForStmt:
			if f.Post != nil && stmtAssigns(pass, f.Post, obj) && obj.Pos() < f.Pos() {
				return true
			}
		case *ast.RangeStmt:
			if f.Tok != token.ASSIGN {
				continue // := range declares per-iteration variables
			}
			for _, e := range []ast.Expr{f.Key, f.Value} {
				if id, ok := e.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					return true
				}
			}
		}
	}
	return false
}

// stmtAssigns reports whether a for-post statement assigns obj.
func stmtAssigns(pass *framework.Pass, stmt ast.Stmt, obj types.Object) bool {
	switch s := stmt.(type) {
	case *ast.IncDecStmt:
		id, ok := s.X.(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == obj
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				return true
			}
		}
	}
	return false
}

package sharedcapture_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/sharedcapture"
)

func TestSharedCapture(t *testing.T) {
	analysistest.Run(t, "testdata", sharedcapture.Analyzer, "a")
}

// Package a exercises the sharedcapture analyzer: goroutine closures
// capturing loop variables declared outside their for statement, shared
// affine pointers, maps, captured writes, and foreign-index slice writes are
// flagged; the bounded worker pool writing only its own cell index, mediated
// telemetry/watch captures, and sync/channel captures are not.
package a

import (
	"errors"
	"sync"
	"sync/atomic"

	"des"
	"telemetry"
)

type job struct{ idx int }

type cell struct{ n int }

// workerPool is the sanctioned runner shape: fixed workers draining a jobs
// channel, each writing only the cell belonging to the job it received.
func workerPool(jobs []job) []cell {
	cells := make([]cell, len(jobs))
	ch := make(chan job)
	var wg sync.WaitGroup
	var done atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				cells[j.idx] = cell{n: j.idx} // own index: legal
				done.Add(1)
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	return cells
}

// loopOutside declares the loop variable before the for statement — the one
// shape Go 1.22 per-iteration variables do not fix.
func loopOutside(jobs []job, use func(job)) {
	var wg sync.WaitGroup
	var i int
	for i = 0; i < len(jobs); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			use(jobs[i]) // want `captures loop variable i declared outside its for statement`
		}()
	}
	wg.Wait()
}

// rangeAssign ranges into a pre-declared variable: same aliasing hazard.
func rangeAssign(jobs []job, use func(job)) {
	var j job
	for _, j = range jobs {
		go func() {
			use(j) // want `captures loop variable j declared outside its for statement`
		}()
	}
}

// sharedEngine leaks one cell's engine into another goroutine.
func sharedEngine(eng *des.Engine) {
	go func() {
		eng.Step() // want `captures \*des\.Engine eng`
	}()
}

// sharedRegistry leaks a telemetry registry across the goroutine boundary.
func sharedRegistry(reg *telemetry.Registry) {
	go func() {
		_ = reg.Counter("x") // want `captures \*telemetry\.Registry reg`
	}()
}

// pool is a minimal worker-pool submission surface.
type pool struct{}

// Submit runs f on a pool worker.
func (pool) Submit(f func()) { f() }

// submitLog catches the Submit form of a goroutine launch.
func submitLog(p pool, dlog *telemetry.DecisionLog) {
	p.Submit(func() {
		_ = dlog // want `captures \*telemetry\.DecisionLog dlog`
	})
}

// manifestMap shares an index map across cells.
func manifestMap(m map[string]int) {
	go func() {
		m["k"] = 1 // want `captures map m`
	}()
}

// capturedWrite races the closure against the spawning goroutine.
func capturedWrite() error {
	var lastErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		lastErr = errors.New("boom") // want `writes to captured variable lastErr`
	}()
	wg.Wait()
	return lastErr
}

// selectorWrite mutates captured state through a field.
func selectorWrite() cell {
	var c cell
	go func() {
		c.n = 1 // want `writes through captured variable c`
	}()
	return c
}

// foreignIndex writes a captured slice at an index owned by the spawner.
func foreignIndex(cells []cell, n int) {
	go func() {
		cells[n] = cell{} // want `writes to captured slice cells at an index not derived from its own work item`
	}()
}

// mediated captures are always legal: channels, sync, atomics, the watch,
// and the mutex/seqlock telemetry types.
func mediatedCaptures(w *des.Watch, lv *telemetry.Live, tr *telemetry.SweepTracker, pr *telemetry.Progress, lg *telemetry.Logger) {
	results := make(chan uint64, 1)
	var mu sync.Mutex
	go func() {
		mu.Lock()
		defer mu.Unlock()
		lv.Tick(w.Snapshot())
		tr.CellDone("cell")
		pr.Stepf("done")
		lg.Infof("done")
		results <- w.Snapshot()
	}()
}

// waived documents a deliberate single-goroutine handoff.
func waived(eng *des.Engine) {
	go func() {
		eng.Step() //simlint:allow sharedcapture -- fixture: engine handed off before the spawner ever touches it again
	}()
}

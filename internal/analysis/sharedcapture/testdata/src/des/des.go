// Package des is a miniature stand-in for repro/internal/des: just enough
// surface for the sharedcapture fixtures to type-check. The analyzer matches
// it by package path suffix, exactly as it matches the real package.
package des

// Engine is a goroutine-affine simulation kernel.
type Engine struct{ now float64 }

// Step fires one event.
func (e *Engine) Step() bool { return false }

// Now returns the virtual clock.
func (e *Engine) Now() float64 { return e.now }

// Watch is the seqlock-mediated live view; safe to share across goroutines.
type Watch struct{ v uint64 }

// Snapshot returns a coherent view.
func (w *Watch) Snapshot() uint64 { return w.v }

// Package telemetry is a miniature stand-in for repro/internal/telemetry:
// the goroutine-affine handles plus the mediated cross-goroutine types the
// sharedcapture allowlist recognizes.
package telemetry

// Registry hands out registered handles; goroutine-affine.
type Registry struct{ n int }

// Counter returns a handle.
func (r *Registry) Counter(name string) int { return r.n }

// Recorder bundles a cell's observation sinks; goroutine-affine.
type Recorder struct{ n int }

// DecisionLog records policy decisions; goroutine-affine.
type DecisionLog struct{ n int }

// Live is the seqlock-published live view; safe to share.
type Live struct{ v uint64 }

// Tick publishes one observation.
func (l *Live) Tick(v uint64) { l.v = v }

// FleetLive is Live's fleet-wide sibling; safe to share.
type FleetLive struct{ v uint64 }

// SweepTracker tracks cell states under a mutex; safe to share.
type SweepTracker struct{ n int }

// CellDone marks a cell finished.
func (t *SweepTracker) CellDone(key string) {
	if t != nil {
		t.n++
	}
}

// Progress is the rate-limited progress reporter; safe to share.
type Progress struct{ n int }

// Stepf logs one step.
func (p *Progress) Stepf(format string, args ...any) {
	if p != nil {
		p.n++
	}
}

// Logger is the mutex-serialized leveled logger; safe to share.
type Logger struct{ n int }

// Infof logs at the default level.
func (l *Logger) Infof(format string, args ...any) {
	if l != nil {
		l.n++
	}
}

package cluster

// Checkpoint/restore for a fleet. A fleet snapshot embeds one complete
// member payload per array (the same JSON a standalone array checkpoint
// carries, with per-event engine sequence numbers recorded) plus the
// router's own state: request table, counters, latency histogram, shock
// depths, pending router events, and the decision log. Restoring rebuilds
// every owner of the shared engine, merge-sorts ALL saved pending events —
// router and members together — by their original engine sequence number,
// and re-schedules them in that global order between BeginRestore and
// FinishRestore, so same-instant FIFO ties break exactly as in the original
// run and the resumed fleet is bit-identical, not merely close.

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/array"
	"repro/internal/checkpoint"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// reqCkptState is the serializable form of a reqState, keyed by request ID.
//
//simlint:checkpoint-for reqState
type reqCkptState struct {
	ID          uint64  `json:"id"`
	File        int     `json:"file"`
	Arrival     float64 `json:"arrival"`
	Attempts    int     `json:"attempts"`
	Outstanding int     `json:"outstanding,omitempty"`
	Pending     uint64  `json:"pending,omitempty"`
	Hedge       int     `json:"hedge,omitempty"`
	RetryQueued bool    `json:"retry_queued,omitempty"`
	Done        bool    `json:"done,omitempty"`
	Last        int     `json:"last"`
}

// savedRouterEvent is one pending router event: absolute fire time, original
// engine sequence number, and the routerRecord payload.
//
//simlint:checkpoint-for routerRecord
type savedRouterEvent struct {
	Time    float64 `json:"time"`
	Seq     uint64  `json:"seq"`
	Kind    string  `json:"kind"`
	Req     uint64  `json:"req,omitempty"`
	Attempt int     `json:"attempt,omitempty"`
	Rack    int     `json:"rack,omitempty"`
	Shock   int     `json:"shock,omitempty"`
	Cause   string  `json:"cause,omitempty"`
}

// clusterState is the fleet checkpoint payload. Ignored clusterSim fields
// are re-derived on restore: cfg and traceEnd come from the caller's config,
// eng is reconstructed and carried as Clock/Seq/Fired, members and racks are
// rebuilt (member state travels in Members), and failure aborts a run before
// a checkpoint could be written.
//
//simlint:checkpoint-for clusterSim ignore=cfg,eng,members,racks,traceEnd,failure
type clusterState struct {
	Clock float64 `json:"clock"`
	Seq   uint64  `json:"seq"`
	Fired uint64  `json:"fired"`

	Delivered  int   `json:"delivered"`
	Retries    int   `json:"retries,omitempty"`
	Hedges     int   `json:"hedges,omitempty"`
	HedgeWins  int   `json:"hedge_wins,omitempty"`
	Failovers  int   `json:"failovers,omitempty"`
	Timeouts   int   `json:"timeouts,omitempty"`
	Deferred   int   `json:"deferred,omitempty"`
	Duplicates int   `json:"duplicates,omitempty"`
	Shed       int   `json:"shed,omitempty"`
	Failed     int   `json:"failed,omitempty"`
	Shocks     int   `json:"shocks,omitempty"`
	ShockDepth []int `json:"shock_depth"`

	Reqs   []reqCkptState              `json:"reqs,omitempty"`
	Events []savedRouterEvent          `json:"events,omitempty"`
	Hist   stats.LatencyHistogramState `json:"hist"`

	// Members holds each array's standalone checkpoint payload, in index
	// order.
	Members []json.RawMessage `json:"members"`

	// Decisions carries the fleet decision log when tracing is on.
	Decisions *telemetry.DecisionLogState `json:"decisions,omitempty"`
}

// buildState serializes the complete fleet state.
func (c *clusterSim) buildState() (*clusterState, error) {
	st := &clusterState{
		Clock:      c.eng.Now(),
		Seq:        c.eng.Seq(),
		Fired:      c.eng.Fired(),
		Delivered:  c.delivered,
		Retries:    c.retries,
		Hedges:     c.hedges,
		HedgeWins:  c.hedgeWins,
		Failovers:  c.failovers,
		Timeouts:   c.timeouts,
		Deferred:   c.deferred,
		Duplicates: c.duplicates,
		Shed:       c.shed,
		Failed:     c.failed,
		Shocks:     c.shocks,
		ShockDepth: append([]int(nil), c.shockDepth...),
		Hist:       c.hist.State(),
	}

	ids := make([]uint64, 0, len(c.reqs))
	for id := range c.reqs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		r := c.reqs[id]
		st.Reqs = append(st.Reqs, reqCkptState{
			ID: id, File: r.file, Arrival: r.arrival,
			Attempts: r.attempts, Outstanding: r.outstanding, Pending: r.pending,
			Hedge: r.hedge, RetryQueued: r.retryQueued, Done: r.done, Last: r.last,
		})
	}

	// Pending router events, in ascending engine sequence order (the event
	// ID IS the sequence number). Events owned by members are saved inside
	// their own payloads.
	for _, id := range c.eng.PendingIDs() {
		rec, ok := c.events[id]
		if !ok {
			continue
		}
		t, ok := c.eng.EventTime(id)
		if !ok {
			return nil, fmt.Errorf("cluster: pending event %d has no fire time", id)
		}
		st.Events = append(st.Events, savedRouterEvent{
			Time: t, Seq: uint64(id),
			Kind: rec.Kind, Req: rec.Req, Attempt: rec.Attempt,
			Rack: rec.Rack, Shock: rec.Shock, Cause: rec.Cause,
		})
	}

	for i, m := range c.members {
		data, err := m.CheckpointState()
		if err != nil {
			return nil, fmt.Errorf("cluster: array %d: %w", i, err)
		}
		st.Members = append(st.Members, data)
	}

	if log := c.decisions(); log != nil {
		s := log.State()
		st.Decisions = &s
	}
	return st, nil
}

// writeCheckpoint snapshots the fleet into its envelope and commits it to
// the configured sink or path (atomically).
func (c *clusterSim) writeCheckpoint() error {
	st, err := c.buildState()
	if err != nil {
		return err
	}
	data, err := json.Marshal(st)
	if err != nil {
		return err
	}
	spec := c.cfg.Checkpoint
	env := &checkpoint.Envelope{
		Version:      checkpoint.Version,
		Tool:         spec.Tool,
		ConfigDigest: spec.ConfigDigest,
		SimTime:      c.eng.Now(),
		EventsFired:  c.eng.Fired(),
		State:        data,
	}
	if spec.Sink != nil {
		enc, err := checkpoint.Encode(env)
		if err != nil {
			return err
		}
		return spec.Sink(enc)
	}
	return checkpoint.Write(spec.Path, env)
}

// onCheckpointTick snapshots the fleet. The next tick is scheduled BEFORE
// the snapshot so the saved pending set includes it, keeping the resumed
// run's cadence identical to the original's.
func (c *clusterSim) onCheckpointTick(now float64) {
	if c.failure != nil || c.cfg.Checkpoint == nil {
		return
	}
	if c.FleetWorkRemains() {
		c.rat(now+c.cfg.Checkpoint.EverySimSeconds, routerRecord{Kind: revCheckpoint})
	}
	if err := c.writeCheckpoint(); err != nil {
		if array.IsOpaqueLive(err) {
			// A member has a non-serializable policy callback in flight;
			// skip this snapshot and try again next tick.
			return
		}
		c.fail(fmt.Errorf("cluster: checkpoint: %w", err))
	}
}

// mergeEvent is one saved pending event from any owner of the shared engine,
// tagged with its original sequence number for the global re-schedule order.
type mergeEvent struct {
	seq      uint64
	schedule func() error
	desc     string
}

// Resume reconstructs a fleet from a checkpoint payload produced under the
// same configuration and runs it to completion. As with array.Resume, member
// policies must be freshly constructed instances of the original
// configuration; their saved states are loaded, never re-Init'ed.
func Resume(cfg Config, stateJSON []byte) (*Result, error) {
	cfg.setDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var st clusterState
	if err := json.Unmarshal(stateJSON, &st); err != nil {
		return nil, fmt.Errorf("cluster: resume: parse state: %w", err)
	}
	if cfg.Checkpoint == nil {
		for _, se := range st.Events {
			if se.Kind == revCheckpoint {
				return nil, fmt.Errorf("cluster: resume: snapshot has pending checkpoint ticks; set Config.Checkpoint to the original interval")
			}
		}
	}
	if len(st.Members) != cfg.Arrays {
		return nil, fmt.Errorf("cluster: resume: checkpoint has %d arrays, config has %d", len(st.Members), cfg.Arrays)
	}
	c, err := newClusterSim(&cfg)
	if err != nil {
		return nil, err
	}
	if len(st.ShockDepth) != cfg.Topology.Racks {
		return nil, fmt.Errorf("cluster: resume: checkpoint has %d racks, config has %d", len(st.ShockDepth), cfg.Topology.Racks)
	}

	c.delivered = st.Delivered
	c.retries = st.Retries
	c.hedges = st.Hedges
	c.hedgeWins = st.HedgeWins
	c.failovers = st.Failovers
	c.timeouts = st.Timeouts
	c.deferred = st.Deferred
	c.duplicates = st.Duplicates
	c.shed = st.Shed
	c.failed = st.Failed
	c.shocks = st.Shocks
	copy(c.shockDepth, st.ShockDepth)
	if err := c.hist.SetState(st.Hist); err != nil {
		return nil, fmt.Errorf("cluster: resume: %w", err)
	}
	for _, r := range st.Reqs {
		c.reqs[r.ID] = &reqState{
			file: r.File, arrival: r.Arrival,
			attempts: r.Attempts, outstanding: r.Outstanding, pending: r.Pending,
			hedge: r.Hedge, retryQueued: r.RetryQueued, done: r.Done, last: r.Last,
		}
	}
	if st.Decisions != nil {
		if log := c.decisions(); log != nil {
			log.SetState(*st.Decisions)
		}
	}

	// Rebuild every owner of the shared engine, collecting their saved
	// pending events WITHOUT scheduling, then merge the union by original
	// sequence number.
	var merged []mergeEvent
	for i := range st.Members {
		mc, err := cfg.memberConfig(i)
		if err != nil {
			return nil, err
		}
		m, evs, err := array.ResumeMember(mc, c.eng, c, st.Members[i])
		if err != nil {
			return nil, fmt.Errorf("cluster: resume: array %d: %w", i, err)
		}
		c.members = append(c.members, m)
		for _, re := range evs {
			merged = append(merged, mergeEvent{seq: re.Seq, schedule: re.Schedule,
				desc: fmt.Sprintf("array %d event seq %d", i, re.Seq)})
		}
	}
	for _, se := range st.Events {
		se := se
		rec := routerRecord{Kind: se.Kind, Req: se.Req, Attempt: se.Attempt,
			Rack: se.Rack, Shock: se.Shock, Cause: se.Cause}
		merged = append(merged, mergeEvent{seq: se.Seq,
			schedule: func() error { return c.ratErr(se.Time, rec) },
			desc:     fmt.Sprintf("router %s seq %d", se.Kind, se.Seq)})
	}
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].seq < merged[j].seq })

	if err := c.eng.BeginRestore(st.Clock); err != nil {
		return nil, fmt.Errorf("cluster: resume: %w", err)
	}
	for _, me := range merged {
		if err := me.schedule(); err != nil {
			return nil, fmt.Errorf("cluster: resume: re-schedule %s: %w", me.desc, err)
		}
	}
	if err := c.eng.FinishRestore(st.Seq, st.Fired); err != nil {
		return nil, fmt.Errorf("cluster: resume: %w", err)
	}
	return c.finish()
}

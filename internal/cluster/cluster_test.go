package cluster

import (
	"reflect"
	"testing"

	"repro/internal/array"
	"repro/internal/checkpoint"
	"repro/internal/faults"
	"repro/internal/policy"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func fleetTrace(t *testing.T, files, requests int, interarrival float64) *workload.Trace {
	t.Helper()
	cfg := workload.DefaultGenConfig()
	cfg.NumFiles = files
	cfg.NumRequests = requests
	cfg.MeanInterarrival = interarrival
	tr, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func alwaysOn(int) (array.Policy, error) { return policy.NewAlwaysOn(), nil }

// TestFleetOfOneMatchesStandalone: with the resilience tier disabled, a
// 1-array fleet must reproduce the standalone simulator exactly — same event
// count, same clock, same latency statistics, same energy.
func TestFleetOfOneMatchesStandalone(t *testing.T) {
	tr := fleetTrace(t, 40, 1500, 0.01)

	single, err := array.Run(array.Config{Disks: 4, Trace: tr, Policy: policy.NewAlwaysOn(), EpochSeconds: 2})
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := Run(Config{
		Arrays:     1,
		Trace:      tr,
		Proto:      array.Config{Disks: 4, EpochSeconds: 2},
		MakePolicy: alwaysOn,
	})
	if err != nil {
		t.Fatal(err)
	}

	if fleet.EventsFired != single.EventsFired {
		t.Errorf("events fired: fleet %d, standalone %d", fleet.EventsFired, single.EventsFired)
	}
	if fleet.Duration != single.Duration {
		t.Errorf("duration: fleet %v, standalone %v", fleet.Duration, single.Duration)
	}
	if fleet.Served != single.Requests {
		t.Errorf("served: fleet %d, standalone %d", fleet.Served, single.Requests)
	}
	if fleet.MeanResponse != single.MeanResponse {
		t.Errorf("mean response: fleet %v, standalone %v", fleet.MeanResponse, single.MeanResponse)
	}
	if fleet.P99Response != single.P99Response {
		t.Errorf("p99: fleet %v, standalone %v", fleet.P99Response, single.P99Response)
	}
	if fleet.EnergyJ != single.EnergyJ {
		t.Errorf("energy: fleet %v, standalone %v", fleet.EnergyJ, single.EnergyJ)
	}
	m := fleet.PerArray[0]
	if m.MeanResponse != single.MeanResponse || m.EnergyJ != single.EnergyJ ||
		m.EventsFired != single.EventsFired || m.ArrayAFR != single.ArrayAFR {
		t.Errorf("member result diverged from standalone:\n fleet %+v\n single %+v", m.Result, single)
	}
	if fleet.Retries != 0 || fleet.Hedges != 0 || fleet.Failovers != 0 || fleet.Timeouts != 0 {
		t.Errorf("resilience counters nonzero with the tier disabled: %+v", fleet)
	}
}

// resilientConfig is a fleet that exercises every router mechanism: tight
// deadlines (retries), hedging, shocks, vintage multipliers, and failures.
func resilientConfig(tr *workload.Trace) Config {
	return Config{
		Arrays:   4,
		Replicas: 2,
		Topology: Topology{Racks: 2, EnclosuresPerRack: 2},
		Trace:    tr,
		Proto: array.Config{
			Disks:        4,
			EpochSeconds: 2,
			Faults: &faults.Config{
				Enabled:      true,
				Seed:         7,
				Acceleration: 2e5,
				PRESSScaling: true,
			},
		},
		MakePolicy:           alwaysOn,
		Routing:              LeastLoaded,
		DeadlineSeconds:      0.25,
		MaxAttempts:          4,
		RetryBaseSeconds:     0.05,
		RetryCapSeconds:      1,
		RetryJitterFrac:      0.5,
		HedgeAfterP99Mult:    3,
		HedgeFallbackSeconds: 0.5,
		MaxBacklog:           64,
		Seed:                 42,
		Shocks: faults.ShockConfig{
			Enabled:             true,
			Seed:                11,
			MeanIntervalSeconds: 6,
			MeanOutageSeconds:   0.5,
		},
		VintageHazardMultipliers: []float64{1, 1, 3, 1},
	}
}

// TestFleetDeterminism: the same configuration must produce bit-identical
// results — including the decision log — on repeated runs.
func TestFleetDeterminism(t *testing.T) {
	tr := fleetTrace(t, 60, 3000, 0.005)

	run := func() (*Result, []telemetry.Decision) {
		cfg := resilientConfig(tr)
		rec := &telemetry.Recorder{Decisions: telemetry.NewDecisionLog()}
		cfg.Telemetry = rec
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res, rec.Decisions.Records()
	}
	r1, d1 := run()
	r2, d2 := run()
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("fleet results diverged across identical runs:\n%+v\n%+v", r1, r2)
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Errorf("decision logs diverged: %d vs %d records", len(d1), len(d2))
	}
	if r1.ShocksInjected == 0 {
		t.Error("expected at least one rack shock")
	}
	if r1.Timeouts == 0 || r1.Retries == 0 {
		t.Errorf("expected timeouts and retries under a 0.25s deadline: %+v", r1)
	}
	if r1.Served+r1.Shed+r1.Failed != r1.Requests {
		t.Errorf("request accounting leak: served %d + shed %d + failed %d != %d",
			r1.Served, r1.Shed, r1.Failed, r1.Requests)
	}
}

// TestFleetRoutingPolicies: every routing policy must run and serve the
// workload; results must differ only where the policy actually changes
// choices (sanity, not equality).
func TestFleetRoutingPolicies(t *testing.T) {
	tr := fleetTrace(t, 40, 1000, 0.01)
	for _, rp := range RoutingPolicies() {
		cfg := Config{
			Arrays:     3,
			Replicas:   2,
			Trace:      tr,
			Proto:      array.Config{Disks: 4},
			MakePolicy: alwaysOn,
			Routing:    rp,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", rp, err)
		}
		if res.Served != res.Requests {
			t.Errorf("%s: served %d of %d", rp, res.Served, res.Requests)
		}
	}
}

// TestFleetFailover: a scripted failure with no spares loses the in-flight
// requests on one array; the router must fail them over to the replica and
// still serve the full workload.
func TestFleetFailover(t *testing.T) {
	// Large files on saturated arrays: array 0's queues are deep when the
	// scripted failures hit, so in-flight requests are lost for certain.
	gen := workload.DefaultGenConfig()
	gen.NumFiles = 30
	gen.NumRequests = 1000
	gen.MeanInterarrival = 0.005
	gen.SizeMedianMB = 4
	tr, err := workload.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Arrays:     2,
		Replicas:   2,
		Trace:      tr,
		Proto:      array.Config{Disks: 2},
		MakePolicy: alwaysOn,
		PerArrayFaults: []*faults.Config{
			{Enabled: true, CheckIntervalSeconds: 0.1, Scripted: []faults.ScriptedEvent{{Disk: 0, At: 1}, {Disk: 1, At: 1.001}}},
			nil,
		},
		MaxAttempts: 3,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LostRequests == 0 {
		t.Fatal("scripted failure lost no member requests; scenario is vacuous")
	}
	if res.Failovers == 0 {
		t.Errorf("expected failovers after data loss: %+v", res)
	}
	if res.Served != res.Requests {
		t.Errorf("served %d of %d despite a full replica", res.Served, res.Requests)
	}
	if res.Failed != 0 || res.Shed != 0 {
		t.Errorf("no request should fail with a healthy replica: failed %d shed %d", res.Failed, res.Shed)
	}
}

// TestFleetKillResume: resuming from a mid-run snapshot must finish
// bit-identical to the uninterrupted run.
func TestFleetKillResume(t *testing.T) {
	tr := fleetTrace(t, 40, 2000, 0.005)
	var snaps [][]byte
	mkCfg := func(sink func([]byte) error) Config {
		cfg := resilientConfig(tr)
		cfg.Checkpoint = &CheckpointSpec{EverySimSeconds: 1.5, Sink: sink}
		return cfg
	}

	full, err := Run(mkCfg(func(data []byte) error {
		cp := append([]byte(nil), data...)
		snaps = append(snaps, cp)
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 2 {
		t.Fatalf("only %d snapshots taken; widen the trace", len(snaps))
	}

	// Resume from a mid-run snapshot ("the process was SIGKILLed there").
	env, err := checkpoint.Decode(snaps[len(snaps)/2])
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(mkCfg(func([]byte) error { return nil }), env.State)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full, resumed) {
		t.Errorf("resumed fleet diverged from uninterrupted run:\nfull    %+v\nresumed %+v", full, resumed)
	}
}

// TestBackoffScheduleDeterministicAndCapped: the backoff schedule is a pure
// function of (seed, request, attempt) — identical across clusterSim
// instances — grows exponentially, respects the cap, and keeps jitter within
// the configured fraction.
func TestBackoffScheduleDeterministicAndCapped(t *testing.T) {
	cfg := Config{RetryBaseSeconds: 0.5, RetryCapSeconds: 8, RetryJitterFrac: 0.25, Seed: 99}
	a := &clusterSim{cfg: &cfg}
	b := &clusterSim{cfg: &cfg}
	for req := uint64(1); req <= 20; req++ {
		for attempt := 1; attempt <= 8; attempt++ {
			da, db := a.backoff(req, attempt), b.backoff(req, attempt)
			if da != db {
				t.Fatalf("backoff(%d,%d) diverged: %v vs %v", req, attempt, da, db)
			}
			nominal := cfg.RetryBaseSeconds
			for i := 1; i < attempt && nominal < cfg.RetryCapSeconds; i++ {
				nominal *= 2
			}
			if nominal > cfg.RetryCapSeconds {
				nominal = cfg.RetryCapSeconds
			}
			lo, hi := nominal*(1-cfg.RetryJitterFrac), nominal*(1+cfg.RetryJitterFrac)
			if da < lo || da > hi {
				t.Fatalf("backoff(%d,%d)=%v outside [%v,%v]", req, attempt, da, lo, hi)
			}
		}
	}
	// Jitter actually varies by request.
	if a.backoff(1, 3) == a.backoff(2, 3) && a.backoff(2, 3) == a.backoff(3, 3) {
		t.Error("jitter is constant across requests")
	}
}

func TestTopologyMapping(t *testing.T) {
	topo := Topology{Racks: 3, EnclosuresPerRack: 2}
	for i := 0; i < 12; i++ {
		if r := topo.RackOf(i); r != i%3 {
			t.Errorf("array %d rack %d, want %d", i, r, i%3)
		}
	}
	if e := topo.EnclosureOf(9); e != 1 {
		t.Errorf("array 9 enclosure %d, want 1", e)
	}
}

func TestConfigValidation(t *testing.T) {
	tr := fleetTrace(t, 4, 10, 0.1)
	base := func() Config {
		return Config{Arrays: 2, Trace: tr, Proto: array.Config{Disks: 2}, MakePolicy: alwaysOn}
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no arrays", func(c *Config) { c.Arrays = 0 }},
		{"replicas exceed arrays", func(c *Config) { c.Replicas = 3 }},
		{"nil trace", func(c *Config) { c.Trace = nil }},
		{"nil policy factory", func(c *Config) { c.MakePolicy = nil }},
		{"negative deadline", func(c *Config) { c.DeadlineSeconds = -1 }},
		{"oversized attempts", func(c *Config) { c.MaxAttempts = 65 }},
		{"bad jitter", func(c *Config) { c.RetryJitterFrac = 1.5 }},
		{"unknown routing", func(c *Config) { c.Routing = "random" }},
		{"vintage length", func(c *Config) { c.VintageHazardMultipliers = []float64{1} }},
		{"negative vintage", func(c *Config) { c.VintageHazardMultipliers = []float64{1, -2} }},
		{"per-array faults length", func(c *Config) { c.PerArrayFaults = []*faults.Config{nil} }},
		{"proto trace set", func(c *Config) { c.Proto.Trace = tr }},
		{"checkpoint without target", func(c *Config) { c.Checkpoint = &CheckpointSpec{EverySimSeconds: 1} }},
	}
	for _, tc := range cases {
		cfg := base()
		cfg.setDefaults()
		tc.mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: Run accepted an invalid config", tc.name)
		}
	}
}

// TestFleetLivePublishing: the ops-plane fleet view reflects the run.
func TestFleetLivePublishing(t *testing.T) {
	tr := fleetTrace(t, 20, 500, 0.01)
	fl := telemetry.NewFleetLive(2)
	cfg := Config{
		Arrays:     2,
		Replicas:   2,
		Trace:      tr,
		Proto:      array.Config{Disks: 2},
		MakePolicy: alwaysOn,
		FleetLive:  fl,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := fl.Snapshot()
	if snap.Requests != uint64(res.Requests) || snap.Served != uint64(res.Served) {
		t.Errorf("fleet live counters %+v disagree with result %+v", snap, res)
	}
	if len(snap.PerArray) != 2 {
		t.Fatalf("expected 2 array rows, got %d", len(snap.PerArray))
	}
	for i, a := range snap.PerArray {
		if a.Health != telemetry.ArrayHealthy {
			t.Errorf("array %d health %q at end of a clean run", i, a.Health)
		}
	}
}

package cluster

// The routing tier. The router owns the fleet's request stream: it replays
// the fleet trace as its own DES events, picks a replica for every attempt
// under the configured routing policy and health gate, and reacts to
// timeouts (retry with capped exponential backoff and seeded jitter),
// sustained silence (hedged attempts), and member data loss (failover).
//
// Every router action is a reified routerRecord event on the shared engine,
// mirroring the array simulator's event table: records are plain data, so a
// checkpoint serializes the pending set and a resume rebuilds it. Events are
// never cancelled — a deadline, retry, or hedge that outlives its request
// fires and no-ops against the settled state — so no event IDs ever need to
// be persisted.

import (
	"fmt"

	"repro/internal/array"
	"repro/internal/des"
	"repro/internal/diskmodel"
	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Router event kinds.
const (
	revArrival    = "fleet-arrival"
	revDeadline   = "fleet-deadline"
	revRetry      = "fleet-retry"
	revHedge      = "fleet-hedge"
	revShockStart = "shock-start"
	revShockEnd   = "shock-end"
	revCheckpoint = "fleet-checkpoint"
)

// Decision causes the router declares.
const (
	causeTimeout      = "timeout"
	causeBackpressure = "backpressure"
	causeSlow         = "p99-exceeded"
	causeDataLoss     = "data-loss"
	causeShock        = "domain-shock"
	causeRestore      = "shock-restore"
)

// Attempt kinds, for counters and decision records.
const (
	attemptFirst = iota
	attemptRetry
	attemptHedge
	attemptFailover
)

// routerRecord is the serializable description of one scheduled router
// event. One flat struct covers every kind; unused fields stay zero.
type routerRecord struct {
	Kind    string `json:"kind"`
	Req     uint64 `json:"req,omitempty"`     // arrival: request ID to deliver; deadline/retry/hedge: subject
	Attempt int    `json:"attempt,omitempty"` // deadline/hedge: attempt watched; retry: attempt to issue
	Rack    int    `json:"rack,omitempty"`    // shocks: power domain hit
	Shock   int    `json:"shock,omitempty"`   // shocks: ordinal within the domain
	Cause   string `json:"cause,omitempty"`   // retry: declared cause (timeout or backpressure)
}

// reqState tracks one fleet request from arrival to settlement. A request is
// settled (and its state dropped) when it is done — served, failed, or shed
// — AND no attempt remains in flight on any member; until then late
// completions must still be attributable.
type reqState struct {
	file        int
	arrival     float64
	attempts    int    // attempts issued so far
	outstanding int    // attempts in flight on members
	pending     uint64 // bitmask of in-flight attempt ordinals
	hedge       int    // attempt ordinal issued as a hedge (0: none)
	retryQueued bool   // a fleet-retry event is pending
	done        bool
	last        int // array the newest attempt went to (-1 before the first)
}

// clusterSim is the fleet run: the shared engine, the members, and the
// router state machine. It implements array.Host.
type clusterSim struct {
	cfg     *Config
	eng     *des.Engine
	members []*array.Member
	racks   [][]int // arrays per rack, in index order

	reqs   map[uint64]*reqState
	events map[des.EventID]routerRecord

	// hist is the fleet latency distribution: arrival to FIRST successful
	// completion, across retries and hedges.
	hist *stats.LatencyHistogram

	delivered  int // fleet arrivals delivered
	retries    int
	hedges     int
	hedgeWins  int
	failovers  int
	timeouts   int
	deferred   int
	duplicates int
	shed       int
	failed     int
	shocks     int
	shockDepth []int // nested outage count per rack

	traceEnd float64 // last fleet arrival time; bounds the shock chains
	failure  error
}

func newClusterSim(cfg *Config) (*clusterSim, error) {
	hist, err := newFleetHist()
	if err != nil {
		return nil, err
	}
	c := &clusterSim{
		cfg:        cfg,
		eng:        des.New(),
		reqs:       make(map[uint64]*reqState),
		events:     make(map[des.EventID]routerRecord),
		hist:       hist,
		shockDepth: make([]int, cfg.Topology.Racks),
		racks:      make([][]int, cfg.Topology.Racks),
	}
	for i := 0; i < cfg.Arrays; i++ {
		r := cfg.Topology.RackOf(i)
		c.racks[r] = append(c.racks[r], i)
	}
	if n := len(cfg.Trace.Requests); n > 0 {
		c.traceEnd = cfg.Trace.Requests[n-1].Arrival
	}
	if cfg.Telemetry != nil {
		if tr := cfg.Telemetry.Tracer(); tr != nil {
			c.eng.SetTracer(tr)
		}
	}
	c.eng.SetWatch(cfg.Watch)
	return c, nil
}

// start builds the members in index order (construction order is scheduling
// order — see the package comment) and arms the router's own event chains.
func (c *clusterSim) start() error {
	for i := 0; i < c.cfg.Arrays; i++ {
		mc, err := c.cfg.memberConfig(i)
		if err != nil {
			return err
		}
		var first func() error
		if i == 0 && len(c.cfg.Trace.Requests) > 0 {
			// Slot the fleet arrival chain exactly where a standalone run
			// schedules its first trace arrival, so a fleet of one keeps the
			// standalone event sequence.
			first = func() error {
				return c.ratErr(c.cfg.Trace.Requests[0].Arrival, routerRecord{Kind: revArrival, Req: 1})
			}
		}
		m, err := array.NewMember(mc, c.eng, c, first)
		if err != nil {
			return fmt.Errorf("cluster: array %d: %w", i, err)
		}
		c.members = append(c.members, m)
	}
	if c.cfg.Shocks.Active() {
		for r := 0; r < c.cfg.Topology.Racks; r++ {
			if sh := c.cfg.Shocks.ShockAt(r, 0); sh.Start <= c.traceEnd {
				c.rat(sh.Start, routerRecord{Kind: revShockStart, Rack: r})
			}
		}
	}
	if c.cfg.Checkpoint != nil {
		c.rat(c.cfg.Checkpoint.EverySimSeconds, routerRecord{Kind: revCheckpoint})
	}
	return c.failure
}

// fail records the first fatal error and stops the engine.
func (c *clusterSim) fail(err error) {
	if c.failure == nil {
		c.failure = err
		c.eng.Stop()
	}
}

// ratErr schedules rec at absolute time t and registers it in the event
// table; the wrapper removes the entry when the event fires.
func (c *clusterSim) ratErr(t float64, rec routerRecord) error {
	var id des.EventID
	h := func(e *des.Engine) {
		delete(c.events, id)
		c.dispatch(rec, e)
	}
	eid, err := c.eng.AtLabeled(t, rec.Kind, h)
	if err != nil {
		return err
	}
	id = eid
	c.events[id] = rec
	return nil
}

// rat is ratErr with scheduling errors routed to fail.
func (c *clusterSim) rat(t float64, rec routerRecord) {
	if err := c.ratErr(t, rec); err != nil {
		c.fail(err)
	}
}

func (c *clusterSim) dispatch(rec routerRecord, e *des.Engine) {
	if c.failure != nil {
		return
	}
	now := e.Now()
	switch rec.Kind {
	case revArrival:
		c.onFleetArrival(rec, now)
	case revDeadline:
		c.onDeadline(rec, now)
	case revRetry:
		c.onRetry(rec, now)
	case revHedge:
		c.onHedge(rec, now)
	case revShockStart:
		c.onShockStart(rec)
	case revShockEnd:
		c.onShockEnd(rec)
	case revCheckpoint:
		c.onCheckpointTick(now)
	default:
		c.fail(fmt.Errorf("cluster: unknown router event %q", rec.Kind))
	}
}

// --- array.Host ---

// ArrivalsRemain reports whether undelivered fleet arrivals remain.
func (c *clusterSim) ArrivalsRemain() bool {
	return c.delivered < len(c.cfg.Trace.Requests)
}

// FleetWorkRemains reports whether any fleet activity is still possible.
func (c *clusterSim) FleetWorkRemains() bool {
	if c.ArrivalsRemain() || len(c.reqs) > 0 {
		return true
	}
	for _, m := range c.members {
		if m.Busy() {
			return true
		}
	}
	return false
}

// RequestDone is the member-side resolution of one attempt.
func (c *clusterSim) RequestDone(id uint64, attempt int, now float64, lost bool) {
	st := c.reqs[id]
	if st == nil {
		// The request settled and was dropped; this is a stray completion
		// (cannot normally happen — settlement waits for outstanding == 0).
		c.duplicates++
		return
	}
	if bit := uint64(1) << uint(attempt-1); st.pending&bit != 0 {
		st.pending &^= bit
		st.outstanding--
	}
	switch {
	case st.done:
		// A late completion for an already-served request (the hedge lost
		// the race, or a timed-out attempt finally landed).
		c.duplicates++
		c.settle(id, st)
	case !lost:
		st.done = true
		c.hist.Add(now - st.arrival)
		if st.hedge != 0 && attempt == st.hedge {
			c.hedgeWins++
		}
		c.settle(id, st)
	default:
		// The attempt's data was unrecoverable on its array. Fail over to a
		// replica immediately if an attempt slot remains; the member has
		// declared data loss, so the health gate ejects it from routing.
		if st.attempts < c.cfg.MaxAttempts && !st.retryQueued {
			c.issueAttempt(id, st.attempts+1, attemptFailover, causeDataLoss, now)
		} else if st.outstanding == 0 && !st.retryQueued {
			c.failRequest(id, st)
		}
	}
	c.publishLive()
}

// --- request lifecycle ---

func (c *clusterSim) onFleetArrival(rec routerRecord, now float64) {
	reqs := c.cfg.Trace.Requests
	idx := int(rec.Req) - 1
	if idx < 0 || idx >= len(reqs) {
		c.fail(fmt.Errorf("cluster: arrival for request %d of %d", rec.Req, len(reqs)))
		return
	}
	r := reqs[idx]
	c.delivered++
	if idx+1 < len(reqs) {
		next := reqs[idx+1].Arrival
		if next < now {
			next = now
		}
		c.rat(next, routerRecord{Kind: revArrival, Req: rec.Req + 1})
	}
	st := &reqState{file: r.FileID, arrival: r.Arrival, last: -1}
	c.reqs[rec.Req] = st
	c.issueAttempt(rec.Req, 1, attemptFirst, "", now)
	c.publishLive()
}

// issueAttempt routes one attempt (first, retry, hedge, or failover) of a
// live request, or defers/fails it when no replica is eligible.
func (c *clusterSim) issueAttempt(id uint64, attempt int, kind int, cause string, now float64) {
	st := c.reqs[id]
	if st == nil || st.done || attempt > c.cfg.MaxAttempts || attempt <= st.attempts {
		return
	}
	healthy, draining := c.eligible(st.file)
	if len(healthy) == 0 {
		st.attempts = attempt
		if draining > 0 {
			// Backpressure: every replica is draining. The attempt is
			// deferred — it consumes its slot and the request retries after
			// backoff instead of queueing on a saturated array.
			c.deferred++
			if attempt < c.cfg.MaxAttempts && !st.retryQueued {
				st.retryQueued = true
				c.rat(now+c.backoff(id, attempt),
					routerRecord{Kind: revRetry, Req: id, Attempt: attempt + 1, Cause: causeBackpressure})
			} else if st.outstanding == 0 && !st.retryQueued {
				c.failRequest(id, st)
			}
			return
		}
		// Every replica is ejected: nothing can ever serve this request.
		if kind == attemptFirst {
			c.shed++
			st.done = true
			c.settle(id, st)
		} else if st.outstanding == 0 && !st.retryQueued {
			c.failRequest(id, st)
		}
		return
	}
	target := c.pick(healthy, id, attempt)
	switch kind {
	case attemptRetry:
		c.retries++
		c.decide(telemetry.DecisionRetry, cause, st, target, now)
	case attemptHedge:
		c.hedges++
		st.hedge = attempt
		c.decide(telemetry.DecisionHedge, cause, st, target, now)
	case attemptFailover:
		c.failovers++
		c.decide(telemetry.DecisionFailover, cause, st, target, now)
	}
	st.attempts = attempt
	st.pending |= uint64(1) << uint(attempt-1)
	st.outstanding++
	arrival := now
	if kind == attemptFirst {
		// The member's own latency stats use the fleet arrival time for
		// first attempts, matching a standalone run.
		arrival = st.arrival
	}
	c.members[target].Submit(id, attempt, st.file, arrival)
	st.last = target
	if c.cfg.DeadlineSeconds > 0 {
		c.rat(now+c.cfg.DeadlineSeconds, routerRecord{Kind: revDeadline, Req: id, Attempt: attempt})
	}
	if c.cfg.HedgeAfterP99Mult > 0 && kind != attemptHedge && attempt < c.cfg.MaxAttempts && c.cfg.Replicas > 1 {
		c.rat(now+c.hedgeDelay(), routerRecord{Kind: revHedge, Req: id, Attempt: attempt})
	}
}

func (c *clusterSim) onDeadline(rec routerRecord, now float64) {
	st := c.reqs[rec.Req]
	if st == nil || st.done {
		return
	}
	if st.pending&(uint64(1)<<uint(rec.Attempt-1)) == 0 {
		return // the attempt completed before its deadline
	}
	c.timeouts++
	if st.attempts < c.cfg.MaxAttempts && !st.retryQueued {
		st.retryQueued = true
		c.rat(now+c.backoff(rec.Req, st.attempts),
			routerRecord{Kind: revRetry, Req: rec.Req, Attempt: st.attempts + 1, Cause: causeTimeout})
	}
	c.publishLive()
}

func (c *clusterSim) onRetry(rec routerRecord, now float64) {
	st := c.reqs[rec.Req]
	if st == nil {
		return
	}
	st.retryQueued = false
	if st.done {
		c.settle(rec.Req, st)
		return
	}
	c.issueAttempt(rec.Req, rec.Attempt, attemptRetry, rec.Cause, now)
	c.publishLive()
}

func (c *clusterSim) onHedge(rec routerRecord, now float64) {
	st := c.reqs[rec.Req]
	if st == nil || st.done {
		return
	}
	if st.attempts != rec.Attempt {
		return // superseded by a retry or failover
	}
	if st.pending&(uint64(1)<<uint(rec.Attempt-1)) == 0 {
		return // the watched attempt already resolved
	}
	c.issueAttempt(rec.Req, rec.Attempt+1, attemptHedge, causeSlow, now)
	c.publishLive()
}

func (c *clusterSim) failRequest(id uint64, st *reqState) {
	c.failed++
	st.done = true
	c.settle(id, st)
}

// settle drops a request's state once it is done and fully drained.
func (c *clusterSim) settle(id uint64, st *reqState) {
	if st.done && st.outstanding == 0 {
		delete(c.reqs, id)
	}
}

// backoff returns the capped exponential delay before issuing attempt+1,
// given that `attempt` attempts have been consumed. Jitter is a pure hash of
// (seed, request, attempt) — deterministic across resumes.
func (c *clusterSim) backoff(id uint64, attempt int) float64 {
	d := c.cfg.RetryBaseSeconds
	for i := 1; i < attempt && d < c.cfg.RetryCapSeconds; i++ {
		d *= 2
	}
	if d > c.cfg.RetryCapSeconds {
		d = c.cfg.RetryCapSeconds
	}
	if f := c.cfg.RetryJitterFrac; f > 0 {
		d *= 1 + f*(2*faults.Jitter01(c.cfg.Seed, id, uint64(attempt))-1)
	}
	return d
}

// hedgeDelay is the silence window before a hedged attempt: a multiple of
// the running fleet p99 once enough completions exist, else the fallback.
func (c *clusterSim) hedgeDelay() float64 {
	if c.hist.N() >= hedgeMinSamples {
		if p99, err := c.hist.Quantile(0.99); err == nil && p99 > 0 {
			return c.cfg.HedgeAfterP99Mult * p99
		}
	}
	return c.cfg.HedgeFallbackSeconds
}

// --- health gating and replica choice ---

// eligible partitions a file's replica set into healthy candidates and a
// draining count (ejected members appear in neither), publishing each
// evaluated member's health row to the ops plane.
func (c *clusterSim) eligible(file int) (healthy []int, draining int) {
	for _, a := range c.cfg.replicaArrays(file) {
		switch c.evalHealth(a) {
		case telemetry.ArrayHealthy:
			healthy = append(healthy, a)
		case telemetry.ArrayDraining:
			draining++
		}
	}
	return healthy, draining
}

// evalHealth gates one member: ejected on declared data loss (sticky by
// construction — data loss never un-happens), draining while its rack is in
// a power outage, while rebuilding, or while its backlog exceeds the limit.
func (c *clusterSim) evalHealth(a int) string {
	m := c.members[a]
	h := telemetry.ArrayHealthy
	switch {
	case m.DataLoss():
		h = telemetry.ArrayEjected
	case c.shockDepth[c.cfg.Topology.RackOf(a)] > 0 || m.Rebuilding():
		h = telemetry.ArrayDraining
	case c.cfg.MaxBacklog > 0 && m.Backlog() > c.cfg.MaxBacklog:
		h = telemetry.ArrayDraining
	}
	c.cfg.FleetLive.PublishArray(a, h, m.Backlog(), m.FailedDisks(), m.Rebuilding(), m.PeekWorstAFR())
	return h
}

// pick applies the routing policy over the healthy candidates (never empty).
func (c *clusterSim) pick(cands []int, id uint64, attempt int) int {
	switch c.cfg.Routing {
	case LeastLoaded:
		best, bestLoad := cands[0], c.members[cands[0]].Backlog()
		for _, a := range cands[1:] {
			if l := c.members[a].Backlog(); l < bestLoad {
				best, bestLoad = a, l
			}
		}
		return best
	case AFRAware:
		best, bestAFR := cands[0], c.members[cands[0]].PeekWorstAFR()
		for _, a := range cands[1:] {
			if v := c.members[a].PeekWorstAFR(); v < bestAFR {
				best, bestAFR = a, v
			}
		}
		return best
	default: // RoundRobin: rotate by request ID and attempt ordinal.
		return cands[int((id+uint64(attempt)-1)%uint64(len(cands)))]
	}
}

// --- correlated shocks ---

func (c *clusterSim) onShockStart(rec routerRecord) {
	c.shocks++
	c.shockDepth[rec.Rack]++
	if c.shockDepth[rec.Rack] == 1 {
		// Power is out: emergency spin-down across the rack.
		for _, a := range c.racks[rec.Rack] {
			c.members[a].ForceSpeedAll(diskmodel.Low, causeShock)
		}
	}
	sh := c.cfg.Shocks.ShockAt(rec.Rack, rec.Shock)
	c.rat(sh.End, routerRecord{Kind: revShockEnd, Rack: rec.Rack, Shock: rec.Shock})
	// Extend the chain only while it starts inside the trace window, so an
	// idle fleet's shock schedule cannot hold the event loop open.
	if next := c.cfg.Shocks.ShockAt(rec.Rack, rec.Shock+1); next.Start <= c.traceEnd {
		c.rat(next.Start, routerRecord{Kind: revShockStart, Rack: rec.Rack, Shock: rec.Shock + 1})
	}
	c.publishLive()
}

func (c *clusterSim) onShockEnd(rec routerRecord) {
	c.shockDepth[rec.Rack]--
	if c.shockDepth[rec.Rack] == 0 {
		// Power restored: re-heat — spin every disk back up.
		for _, a := range c.racks[rec.Rack] {
			c.members[a].ForceSpeedAll(diskmodel.High, causeRestore)
		}
	}
	c.publishLive()
}

// --- observability ---

func (c *clusterSim) decisions() *telemetry.DecisionLog {
	if c.cfg.Telemetry == nil {
		return nil
	}
	return c.cfg.Telemetry.Decisions
}

// decide records one routing-tier decision (retry, hedge, failover).
func (c *clusterSim) decide(kind, cause string, st *reqState, target int, now float64) {
	c.decisions().Append(telemetry.Decision{
		T:      now,
		Kind:   kind,
		Cause:  cause,
		FileID: st.file,
		From:   st.last,
		To:     target,
	})
}

func (c *clusterSim) publishLive() {
	c.cfg.FleetLive.PublishCounters(c.eng.Now(), uint64(c.delivered), c.hist.N(),
		uint64(c.retries), uint64(c.hedges), uint64(c.hedgeWins), uint64(c.failovers),
		uint64(c.timeouts), uint64(c.deferred), uint64(c.shed), uint64(c.failed), uint64(c.shocks))
}

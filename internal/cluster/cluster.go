// Package cluster simulates a fleet of disk arrays on one shared-clock DES.
// Each array is a full internal/array simulation mounted as a Member on the
// shared engine, mapped into a failure-domain topology (rack = power domain,
// subdivided into enclosures), and fronted by a routing tier that owns the
// fleet's request stream: per-request deadlines with deterministic timeout
// events, capped exponential backoff retries with seeded (pure-hash) jitter,
// optional hedged requests after a p99-derived delay, health gating
// (draining on outage/rebuild/backlog, ejection on data loss, backpressure
// instead of unbounded queuing), and cross-array failover for replicated
// placements. Correlated faults enter through internal/faults: per-rack
// power shocks force emergency spin-down and re-heat, and per-array vintage
// hazard multipliers model bad drive batches.
//
// Determinism rules for shared-clock fleets (DESIGN.md §15):
//
//   - One engine, one writer. Every member and the router schedule onto the
//     same des.Engine; ties at an instant break by scheduling sequence, so
//     CONSTRUCTION ORDER IS CONTRACT: members are built in index order, and
//     the router's first arrival is slotted inside member 0's construction
//     (exactly where a standalone run schedules its first trace arrival —
//     which is why a fleet of one with the resilience tier disabled
//     reproduces the single-array simulator event-for-event).
//   - No hidden randomness. Retry jitter and shock schedules are pure
//     splitmix64 hashes of (seed, request/domain, attempt/index) — there is
//     no RNG state to checkpoint and replay cannot perturb the members' own
//     draw logs.
//   - No cancellation. Deadline, hedge, and retry events are never removed
//     from the queue; stale ones fire and no-op against settled request
//     state. Checkpoints therefore never carry event IDs, only payloads.
package cluster

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/array"
	"repro/internal/des"
	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// RoutingPolicy selects which replica serves an attempt.
type RoutingPolicy string

const (
	// RoundRobin rotates deterministically over a file's replica set by
	// request ID and attempt ordinal.
	RoundRobin RoutingPolicy = "round-robin"
	// LeastLoaded picks the replica with the smallest foreground backlog
	// (lowest index on ties).
	LeastLoaded RoutingPolicy = "least-loaded"
	// AFRAware picks the replica whose worst disk has the lowest live PRESS
	// AFR — the heat/frequency-aware router (lowest index on ties).
	AFRAware RoutingPolicy = "afr-aware"
)

// RoutingPolicies lists the accepted values.
func RoutingPolicies() []RoutingPolicy {
	return []RoutingPolicy{RoundRobin, LeastLoaded, AFRAware}
}

// Topology maps arrays into failure domains. Array i lives in rack
// i % Racks and enclosure (i / Racks) % EnclosuresPerRack within it. The
// rack is the power domain: a shock takes down every array it holds.
type Topology struct {
	// Racks is the number of racks (= power domains). Zero means 1.
	Racks int
	// EnclosuresPerRack subdivides a rack for reporting. Zero means 1.
	EnclosuresPerRack int
}

func (t Topology) normalized() Topology {
	if t.Racks <= 0 {
		t.Racks = 1
	}
	if t.EnclosuresPerRack <= 0 {
		t.EnclosuresPerRack = 1
	}
	return t
}

// RackOf returns array i's rack (power domain).
func (t Topology) RackOf(i int) int { return i % t.Racks }

// EnclosureOf returns array i's enclosure within its rack.
func (t Topology) EnclosureOf(i int) int { return (i / t.Racks) % t.EnclosuresPerRack }

// CheckpointSpec configures periodic fleet snapshots; see
// array.CheckpointSpec for field semantics (the tick is a real DES event and
// part of the determinism contract).
type CheckpointSpec struct {
	EverySimSeconds float64
	Path            string
	Tool            string
	ConfigDigest    string
	Sink            func(data []byte) error
}

// Config describes one fleet run.
type Config struct {
	// Arrays is the fleet size.
	Arrays int
	// Replicas is the number of arrays each file is placed on (array
	// (f + j) % Arrays for j < Replicas). Zero means 1 (no replication;
	// failover and hedging then have nowhere to go).
	Replicas int
	// Topology maps arrays into failure domains.
	Topology Topology
	// Trace is the FLEET workload: the router replays its requests and
	// splits its files over the arrays by the replica placement.
	Trace *workload.Trace
	// Proto is the per-array configuration template. Its Trace, Policy,
	// Telemetry, Watch, Checkpoint, and DecisionOverrides fields must be
	// nil/zero — the cluster derives each member's trace and policy, owns
	// the engine instrumentation, and drives checkpointing itself.
	Proto array.Config
	// MakePolicy constructs member i's policy. Policies are stateful, so
	// every member needs a fresh instance.
	MakePolicy func(i int) (array.Policy, error)
	// Routing selects the replica-choice rule. Empty means RoundRobin.
	Routing RoutingPolicy

	// DeadlineSeconds is the per-attempt deadline; a deterministic timeout
	// event fires when it expires and the router retries (or gives up).
	// Zero disables deadlines, and with them retry-on-timeout.
	DeadlineSeconds float64
	// MaxAttempts bounds total attempts per request (first + retries +
	// hedges + failovers). Zero means 1.
	MaxAttempts int
	// RetryBaseSeconds is the backoff base: attempt k retries after
	// min(cap, base·2^(k-1)) scaled by seeded jitter. Zero means 0.5.
	RetryBaseSeconds float64
	// RetryCapSeconds caps the exponential backoff. Zero means 30.
	RetryCapSeconds float64
	// RetryJitterFrac spreads backoff by ±frac via a pure hash of
	// (Seed, request, attempt). Zero means no jitter; must be in [0, 1].
	RetryJitterFrac float64
	// HedgeAfterP99Mult, when positive, issues a hedged attempt to another
	// replica after mult × (running fleet p99) of silence.
	HedgeAfterP99Mult float64
	// HedgeFallbackSeconds seeds the hedge delay before the fleet latency
	// histogram has hedgeMinSamples completions. Zero means 1.
	HedgeFallbackSeconds float64
	// MaxBacklog, when positive, marks an array draining while its total
	// foreground backlog exceeds it — the router's backpressure signal.
	MaxBacklog int
	// Seed drives retry jitter (shocks carry their own seed).
	Seed int64

	// Shocks configures per-rack power events.
	Shocks faults.ShockConfig
	// VintageHazardMultipliers optionally scales each array's Weibull/LSE
	// hazard (a bad drive batch). Empty means all 1; otherwise the length
	// must equal Arrays. The multiplier composes with Proto.Faults.
	VintageHazardMultipliers []float64
	// PerArrayFaults optionally replaces Proto.Faults for individual
	// arrays (scripted per-array failures, heterogeneous populations).
	// Empty means every array shares Proto.Faults; otherwise the length
	// must equal Arrays and nil entries fall back to Proto.Faults.
	PerArrayFaults []*faults.Config

	// StallLimit is the shared engine's watchdog. Zero means 1,000,000.
	StallLimit uint64
	// Telemetry, when non-nil, supplies the engine tracer and the decision
	// log that records retry/hedge/failover decisions. Member simulations
	// always run bare (nil recorder): fleet observability lives at the
	// router.
	Telemetry *telemetry.Recorder
	// Watch receives the shared engine's live position for the ops plane.
	Watch *des.Watch
	// FleetLive, when non-nil, receives router counters and per-array
	// health rows for the ops plane. Observation-only.
	FleetLive *telemetry.FleetLive
	// Checkpoint, when non-nil, snapshots the whole fleet (router + every
	// member) periodically; see Resume.
	Checkpoint *CheckpointSpec
}

// hedgeMinSamples is the completions needed before the live p99 replaces
// HedgeFallbackSeconds in the hedge delay.
const hedgeMinSamples = 100

func (c *Config) setDefaults() {
	if c.Replicas == 0 {
		c.Replicas = 1
	}
	c.Topology = c.Topology.normalized()
	if c.Routing == "" {
		c.Routing = RoundRobin
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 1
	}
	if c.RetryBaseSeconds == 0 {
		c.RetryBaseSeconds = 0.5
	}
	if c.RetryCapSeconds == 0 {
		c.RetryCapSeconds = 30
	}
	if c.HedgeFallbackSeconds == 0 {
		c.HedgeFallbackSeconds = 1
	}
	if c.StallLimit == 0 {
		c.StallLimit = 1_000_000
	}
}

// Validate reports the first configuration error.
func (c *Config) Validate() error {
	switch {
	case c.Arrays < 1:
		return errors.New("cluster: need at least 1 array")
	case c.Replicas < 1 || c.Replicas > c.Arrays:
		return fmt.Errorf("cluster: replicas %d must be in [1, %d]", c.Replicas, c.Arrays)
	case c.Trace == nil:
		return errors.New("cluster: nil trace")
	case c.MakePolicy == nil:
		return errors.New("cluster: nil MakePolicy")
	case c.DeadlineSeconds < 0 || math.IsNaN(c.DeadlineSeconds):
		return errors.New("cluster: negative deadline")
	case c.MaxAttempts < 1 || c.MaxAttempts > 64:
		// The upper bound keeps the per-request attempt set a bitmask.
		return fmt.Errorf("cluster: MaxAttempts %d must be in [1, 64]", c.MaxAttempts)
	case c.RetryBaseSeconds <= 0 || c.RetryCapSeconds <= 0:
		return errors.New("cluster: retry backoff base and cap must be positive")
	case c.RetryJitterFrac < 0 || c.RetryJitterFrac > 1 || math.IsNaN(c.RetryJitterFrac):
		return fmt.Errorf("cluster: retry jitter fraction %v must be in [0, 1]", c.RetryJitterFrac)
	case c.HedgeAfterP99Mult < 0 || math.IsNaN(c.HedgeAfterP99Mult):
		return errors.New("cluster: negative hedge multiplier")
	case c.MaxBacklog < 0:
		return errors.New("cluster: negative backlog limit")
	}
	switch c.Routing {
	case RoundRobin, LeastLoaded, AFRAware:
	default:
		return fmt.Errorf("cluster: unknown routing policy %q", c.Routing)
	}
	if err := c.Shocks.Validate(); err != nil {
		return err
	}
	if n := len(c.VintageHazardMultipliers); n != 0 && n != c.Arrays {
		return fmt.Errorf("cluster: %d vintage multipliers for %d arrays", n, c.Arrays)
	}
	if n := len(c.PerArrayFaults); n != 0 && n != c.Arrays {
		return fmt.Errorf("cluster: %d per-array fault configs for %d arrays", n, c.Arrays)
	}
	for i, m := range c.VintageHazardMultipliers {
		if m < 0 || math.IsNaN(m) {
			return fmt.Errorf("cluster: vintage multiplier[%d] = %v must be non-negative", i, m)
		}
	}
	if c.Proto.Trace != nil || c.Proto.Policy != nil || c.Proto.Telemetry != nil ||
		c.Proto.Watch != nil || c.Proto.Checkpoint != nil || len(c.Proto.DecisionOverrides) > 0 {
		return errors.New("cluster: Proto must leave Trace/Policy/Telemetry/Watch/Checkpoint/DecisionOverrides unset")
	}
	if c.Checkpoint != nil {
		if c.Checkpoint.EverySimSeconds <= 0 || math.IsNaN(c.Checkpoint.EverySimSeconds) {
			return fmt.Errorf("cluster: checkpoint interval %v must be positive", c.Checkpoint.EverySimSeconds)
		}
		if c.Checkpoint.Path == "" && c.Checkpoint.Sink == nil {
			return errors.New("cluster: checkpoint needs a path or a sink")
		}
	}
	return c.Trace.Validate()
}

// replicaArrays returns the arrays holding file f, primary first.
func (c *Config) replicaArrays(f int) []int {
	out := make([]int, c.Replicas)
	for j := 0; j < c.Replicas; j++ {
		a := (f + j) % c.Arrays
		if a < 0 {
			a += c.Arrays
		}
		out[j] = a
	}
	return out
}

// memberTrace builds array a's trace: the fleet files placed on it (in fleet
// file order) and no requests.
func (c *Config) memberTrace(a int) *workload.Trace {
	t := &workload.Trace{}
	for _, f := range c.Trace.Files {
		for _, r := range c.replicaArrays(f.ID) {
			if r == a {
				t.Files = append(t.Files, f)
				break
			}
		}
	}
	return t
}

// memberConfig derives member a's array.Config from the prototype.
func (c *Config) memberConfig(a int) (array.Config, error) {
	cfg := c.Proto
	cfg.Trace = c.memberTrace(a)
	pol, err := c.MakePolicy(a)
	if err != nil {
		return array.Config{}, fmt.Errorf("cluster: policy for array %d: %w", a, err)
	}
	cfg.Policy = pol
	if len(c.PerArrayFaults) > 0 && c.PerArrayFaults[a] != nil {
		f := *c.PerArrayFaults[a]
		cfg.Faults = &f
	}
	if len(c.VintageHazardMultipliers) > 0 && cfg.Faults != nil {
		f := *cfg.Faults
		m := c.VintageHazardMultipliers[a]
		base := f.HazardMultiplier
		if base == 0 {
			base = 1
		}
		f.HazardMultiplier = base * m
		cfg.Faults = &f
	}
	return cfg, nil
}

// ArrayResult pairs one member's standalone result with its topology slot.
type ArrayResult struct {
	Array     int
	Rack      int
	Enclosure int
	*array.Result
}

// Result is the outcome of one fleet run.
type Result struct {
	Arrays   int
	Replicas int
	Routing  RoutingPolicy

	// Duration is the shared clock at drain.
	Duration float64
	// EventsFired counts every event on the shared engine.
	EventsFired uint64

	// Fleet latency, measured at the router from fleet arrival to FIRST
	// successful completion (retries and hedges included).
	Requests     int
	Served       int
	MeanResponse float64
	P50Response  float64
	P95Response  float64
	P99Response  float64
	P999Response float64
	MaxResponse  float64

	// Resilience counters.
	Retries    int // retry attempts issued after a timeout
	Hedges     int // hedged attempts issued
	HedgeWins  int // requests whose hedge finished first
	Failovers  int // attempts re-issued to a replica after data loss
	Timeouts   int // attempts that exceeded their deadline
	Deferred   int // attempts deferred by backpressure (all replicas draining)
	Duplicates int // late completions for already-settled requests
	Shed       int // requests dropped without service (no eligible replica)
	Failed     int // requests that exhausted every attempt and replica

	// ShocksInjected counts rack power events that fired.
	ShocksInjected int

	// Fleet roll-ups over members.
	EnergyJ      float64
	WorstAFR     float64 // max per-array PRESS AFR, percent
	DiskFailures int
	LostRequests int // member-level unrecoverable losses (pre-failover)

	PerArray []ArrayResult
}

// Run executes one fleet simulation.
func Run(cfg Config) (*Result, error) {
	cfg.setDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c, err := newClusterSim(&cfg)
	if err != nil {
		return nil, err
	}
	if err := c.start(); err != nil {
		return nil, err
	}
	return c.finish()
}

// finish drives the shared engine to completion and collects the result; it
// is the common tail of Run and Resume.
func (c *clusterSim) finish() (*Result, error) {
	watchdogErr := c.eng.RunGuarded(c.cfg.StallLimit)
	if c.failure != nil {
		return nil, c.failure
	}
	for i, m := range c.members {
		if err := m.Err(); err != nil {
			return nil, fmt.Errorf("cluster: array %d: %w", i, err)
		}
	}
	if watchdogErr != nil {
		return nil, fmt.Errorf("cluster: %w (routing %q, %d arrays, %d/%d requests delivered)",
			watchdogErr, c.cfg.Routing, c.cfg.Arrays, c.delivered, len(c.cfg.Trace.Requests))
	}
	c.cfg.Watch.MarkDone()
	return c.collect()
}

func (c *clusterSim) collect() (*Result, error) {
	res := &Result{
		Arrays:         c.cfg.Arrays,
		Replicas:       c.cfg.Replicas,
		Routing:        c.cfg.Routing,
		Duration:       c.eng.Now(),
		EventsFired:    c.eng.Fired(),
		Requests:       len(c.cfg.Trace.Requests),
		Served:         int(c.hist.N()),
		MeanResponse:   c.hist.Mean(),
		MaxResponse:    c.hist.Max(),
		Retries:        c.retries,
		Hedges:         c.hedges,
		HedgeWins:      c.hedgeWins,
		Failovers:      c.failovers,
		Timeouts:       c.timeouts,
		Deferred:       c.deferred,
		Duplicates:     c.duplicates,
		Shed:           c.shed,
		Failed:         c.failed,
		ShocksInjected: c.shocks,
	}
	if c.hist.N() > 0 {
		for _, q := range []struct {
			p   float64
			dst *float64
		}{
			{0.50, &res.P50Response}, {0.95, &res.P95Response},
			{0.99, &res.P99Response}, {0.999, &res.P999Response},
		} {
			v, err := c.hist.Quantile(q.p)
			if err != nil {
				return nil, err
			}
			*q.dst = v
		}
	}
	res.PerArray = make([]ArrayResult, len(c.members))
	for i, m := range c.members {
		ar, err := m.Collect()
		if err != nil {
			return nil, fmt.Errorf("cluster: array %d: %w", i, err)
		}
		res.PerArray[i] = ArrayResult{
			Array:     i,
			Rack:      c.cfg.Topology.RackOf(i),
			Enclosure: c.cfg.Topology.EnclosureOf(i),
			Result:    ar,
		}
		res.EnergyJ += ar.EnergyJ
		if ar.ArrayAFR > res.WorstAFR {
			res.WorstAFR = ar.ArrayAFR
		}
		res.DiskFailures += ar.DiskFailures
		res.LostRequests += ar.LostRequests
	}
	return res, nil
}

// newFleetHist builds the fleet latency histogram with the same geometry as
// the per-array one so quantiles are comparable.
func newFleetHist() (*stats.LatencyHistogram, error) {
	return stats.NewLatencyHistogram(-6, 5, 50)
}

package checkpoint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint.json")
	in := &Envelope{
		Version:      Version,
		Tool:         "arraysim",
		ConfigDigest: "abc123",
		SimTime:      1234.5,
		EventsFired:  99,
		State:        json.RawMessage(`{"disks":[{"id":0}]}`),
	}
	if err := Write(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Tool != in.Tool || out.ConfigDigest != in.ConfigDigest ||
		out.SimTime != in.SimTime || out.EventsFired != in.EventsFired {
		t.Fatalf("envelope fields changed across round trip: %+v", out)
	}
	if !bytes.Equal(out.State, in.State) {
		t.Fatalf("state changed: %s", out.State)
	}
}

func TestEncodeIsStable(t *testing.T) {
	e := &Envelope{Version: Version, Tool: "t", State: json.RawMessage(`{"a":1}`)}
	a, err := Encode(e)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(e)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("Encode is not deterministic")
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint.json")
	e := &Envelope{Version: Version, Tool: "arraysim", State: json.RawMessage(`{"clock":42}`)}
	if err := Write(path, e); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("flipped state byte", func(t *testing.T) {
		bad := bytes.Replace(data, []byte(`42`), []byte(`43`), 1)
		if bytes.Equal(bad, data) {
			t.Fatal("corruption did not apply")
		}
		if _, err := Decode(bad); err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("want checksum error, got %v", err)
		}
	})
	t.Run("truncated file", func(t *testing.T) {
		if _, err := Decode(data[:len(data)/2]); err == nil {
			t.Fatal("want parse error for truncated file")
		}
	})
	t.Run("wrong version", func(t *testing.T) {
		var env Envelope
		if err := json.Unmarshal(data, &env); err != nil {
			t.Fatal(err)
		}
		env.Version = Version + 1
		raw, err := json.Marshal(&env)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Decode(raw); err == nil || !strings.Contains(err.Error(), "version") {
			t.Fatalf("want version error, got %v", err)
		}
	})
	t.Run("missing file", func(t *testing.T) {
		if _, err := Read(filepath.Join(t.TempDir(), "nope.json")); err == nil {
			t.Fatal("want error for missing file")
		}
	})
}

// Package checkpoint defines the on-disk snapshot format for deterministic
// simulation checkpoint/restore.
//
// A checkpoint file is a single JSON envelope carrying a format version, the
// producing tool, the run's config digest (so a snapshot can never be resumed
// under a different configuration), the virtual time and event count at
// capture, a SHA-256 checksum of the state payload, and the payload itself as
// raw JSON. The payload's schema belongs to the producer (internal/array);
// this package only guarantees integrity and identification.
//
// Files are written atomically (temp file + fsync + rename, via
// internal/atomicio), so a crash during a checkpoint write leaves the
// previous complete snapshot intact rather than a truncated file.
package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/atomicio"
)

// Version is the checkpoint format version. Bump it whenever the envelope or
// the array's state schema changes incompatibly; Read rejects mismatches.
const Version = 1

// Envelope is the checkpoint file's framing around the serialized state.
type Envelope struct {
	Version      int     `json:"version"`
	Tool         string  `json:"tool"`
	ConfigDigest string  `json:"config_digest"`
	SimTime      float64 `json:"sim_time"`
	EventsFired  uint64  `json:"events_fired"`
	// Checksum is the hex SHA-256 of the State payload bytes exactly as
	// stored, detecting torn or bit-rotted snapshots before a resume trusts
	// them.
	Checksum string          `json:"checksum"`
	State    json.RawMessage `json:"state"`
}

// stateDigest hashes the state payload in compacted (canonical-whitespace)
// form, so the checksum survives the re-indentation json.MarshalIndent
// applies to nested raw JSON while still catching any content change.
func stateDigest(state json.RawMessage) string {
	var buf bytes.Buffer
	hashed := []byte(state)
	if err := json.Compact(&buf, state); err == nil {
		hashed = buf.Bytes()
	}
	sum := sha256.Sum256(hashed)
	return hex.EncodeToString(sum[:])
}

// Seal computes and stores the checksum of e.State.
func (e *Envelope) Seal() {
	e.Checksum = stateDigest(e.State)
}

// Verify checks version and checksum integrity.
func (e *Envelope) Verify() error {
	if e.Version != Version {
		return fmt.Errorf("checkpoint: format version %d, want %d", e.Version, Version)
	}
	if got := stateDigest(e.State); got != e.Checksum {
		return fmt.Errorf("checkpoint: state checksum mismatch (file corrupt or truncated)")
	}
	return nil
}

// Encode seals the envelope and returns its stable JSON encoding.
func Encode(e *Envelope) ([]byte, error) {
	e.Seal()
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("checkpoint: encode: %w", err)
	}
	return append(data, '\n'), nil
}

// Decode parses and integrity-checks an encoded envelope. The returned
// State is compacted, so a payload round-trips byte-identically regardless
// of the envelope's on-disk indentation.
func Decode(data []byte) (*Envelope, error) {
	var e Envelope
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("checkpoint: parse: %w", err)
	}
	if err := e.Verify(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, e.State); err == nil {
		e.State = buf.Bytes()
	}
	return &e, nil
}

// Write seals the envelope and writes it to path atomically.
func Write(path string, e *Envelope) error {
	data, err := Encode(e)
	if err != nil {
		return err
	}
	return atomicio.WriteFile(path, data, 0o644)
}

// Read loads, parses, and integrity-checks the checkpoint at path.
func Read(path string) (*Envelope, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	e, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return e, nil
}

// Package opsserver is the read-only live ops plane: an HTTP server a
// long-running simulation or sweep exposes when -ops-addr is set, serving
//
//   - /metrics  — OpenMetrics text exposition of the simulation's live
//     counters and gauges, the sweep's per-cell status, and the process's
//     own runtime stats;
//   - /progress — a JSON snapshot (or, with ?stream=sse or an
//     Accept: text/event-stream header, a Server-Sent Events stream) of
//     per-cell sweep state, throughput, and the wall-clock-derived ETA;
//   - /healthz  — liveness wired to the des.RunGuarded stall watchdog, so a
//     hung event chain is visible to an operator before the process dies.
//
// The server only ever *reads* the simulation through lock-free snapshot
// APIs (telemetry.Live, des.Watch — seqlocks with the simulation as sole
// writer) and the mutex-based telemetry.SweepTracker (touched at cell
// granularity only). It never feeds anything back, so ops-on runs are
// bit-identical to ops-off runs; with no server attached the simulation's
// hot path pays one nil check and zero allocations.
package opsserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/des"
	"repro/internal/telemetry"
)

// Options configures a Server.
type Options struct {
	// Addr is the listen address, e.g. "localhost:9100" or ":0".
	Addr string
	// Tool and Run identify the process in /metrics (sim_info) and /progress.
	Tool string
	Run  string
	// Live is the single-run live view (arraysim); nil when only a sweep
	// tracker is attached.
	Live *telemetry.Live
	// Watch is the single-run engine watch backing /healthz.
	Watch *des.Watch
	// Sweep is the sweep tracker (experiments); nil for single runs.
	Sweep *telemetry.SweepTracker
	// Fleet is the fleet live view (fleetsim): router counters and
	// per-array health rows; nil for single-array runs and sweeps.
	Fleet *telemetry.FleetLive
	// Log receives server lifecycle lines; nil is silent.
	Log *telemetry.Logger
	// StaleAfter is how long the event counters may sit still (while not
	// marked done) before /healthz reports the process stuck; zero means
	// 60 s. This catches hangs *outside* the DES loop — a deadlocked
	// worker, a wedged disk write — that the in-loop watchdog cannot see.
	StaleAfter time.Duration
	// SSEInterval is the /progress event-stream cadence; zero means 1 s.
	SSEInterval time.Duration
}

// Server is the live ops plane for one process. Create with Start; it
// listens immediately (so ":0" callers can read the bound Addr) and serves
// until Close.
type Server struct {
	mu   sync.Mutex // guards opts swaps and staleness bookkeeping
	opts Options
	ln   net.Listener
	srv  *http.Server
	done atomic.Bool

	lastFired    uint64
	lastFiredAt  time.Time
	now          func() time.Time        // injectable for tests
	readMemStats func(*runtime.MemStats) // injectable for the golden test
	goroutines   func() int              // injectable for the golden test
	start        time.Time
}

// Start opens the listener and begins serving in a background goroutine.
func Start(opts Options) (*Server, error) {
	if opts.StaleAfter <= 0 {
		opts.StaleAfter = 60 * time.Second
	}
	if opts.SSEInterval <= 0 {
		opts.SSEInterval = time.Second
	}
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("opsserver: listen %s: %w", opts.Addr, err)
	}
	s := &Server{
		opts:         opts,
		ln:           ln,
		now:          time.Now,
		readMemStats: runtime.ReadMemStats,
		goroutines:   runtime.NumGoroutine,
	}
	s.start = s.now()
	s.lastFiredAt = s.start
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/healthz", s.handleHealthz)
	s.srv = &http.Server{Handler: mux}
	go func() {
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			opts.Log.Errorf("ops server: %v", err)
		}
	}()
	opts.Log.Infof("ops server listening on http://%s (/metrics /progress /healthz)", ln.Addr())
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// SetSweep swaps the sweep tracker the server reports — experiments runs
// several sweeps sequentially through one server.
func (s *Server) SetSweep(tr *telemetry.SweepTracker) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.opts.Sweep = tr
}

// SetRun swaps the single-run live view and watch.
func (s *Server) SetRun(name string, live *telemetry.Live, watch *des.Watch) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.opts.Run = name
	s.opts.Live = live
	s.opts.Watch = watch
}

// SetFleet swaps the fleet live view the server reports.
func (s *Server) SetFleet(f *telemetry.FleetLive) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.opts.Fleet = f
}

// MarkDone flags the workload finished: /healthz keeps answering 200 with
// status "done" and staleness detection disarms.
func (s *Server) MarkDone() {
	if s == nil {
		return
	}
	s.done.Store(true)
}

// Close shuts the server down, waiting briefly for in-flight responses.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

// snapshotOpts returns a consistent copy of the swappable option fields.
func (s *Server) snapshotOpts() Options {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.opts
}

// totalFired sums event progress across everything the server watches; the
// staleness detector keys off it.
func totalFired(opts Options) uint64 {
	var fired uint64
	if opts.Watch != nil {
		fired += opts.Watch.Snapshot().Fired
	}
	if opts.Sweep != nil {
		snap := opts.Sweep.Snapshot()
		for _, c := range snap.Cells {
			fired += c.Events
		}
	}
	return fired
}

// observeProgress updates the staleness clock and reports how long the
// event counters have been flat.
func (s *Server) observeProgress(opts Options) time.Duration {
	fired := totalFired(opts)
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	if fired != s.lastFired {
		s.lastFired = fired
		s.lastFiredAt = now
		return 0
	}
	return now.Sub(s.lastFiredAt)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	opts := s.snapshotOpts()
	s.observeProgress(opts)
	fams := s.families(opts)
	w.Header().Set("Content-Type", ContentType)
	if err := WriteExposition(w, fams); err != nil {
		opts.Log.Debugf("ops /metrics write: %v", err)
	}
}

// healthReport is the /healthz JSON body.
type healthReport struct {
	Status string `json:"status"` // ok | done | stalling | stalled | stuck
	Detail string `json:"detail,omitempty"`
	// Watch mirrors the single-run watchdog position when present.
	SimSeconds float64         `json:"sim_seconds,omitempty"`
	Events     uint64          `json:"events,omitempty"`
	Streak     uint64          `json:"streak,omitempty"`
	StallLimit uint64          `json:"stall_limit,omitempty"`
	LastEvent  string          `json:"last_event,omitempty"`
	Stall      *des.StallError `json:"stall,omitempty"`
	// StalledCells lists sweep cells whose watchdog tripped or is past
	// half its limit.
	StalledCells []string `json:"stalled_cells,omitempty"`
}

// health derives the health state from the watchdog(s) and the wall-clock
// staleness of the event counters.
func (s *Server) health(opts Options) (int, healthReport) {
	rep := healthReport{Status: "ok"}
	code := http.StatusOK

	degrade := func(status string, detail string, serious bool) {
		rep.Status = status
		rep.Detail = detail
		if serious {
			code = http.StatusServiceUnavailable
		}
	}

	if opts.Watch != nil {
		ws := opts.Watch.Snapshot()
		rep.SimSeconds = ws.SimTime
		rep.Events = ws.Fired
		rep.Streak = ws.Streak
		rep.StallLimit = ws.StallLimit
		rep.LastEvent = ws.LastLabel
		rep.Stall = ws.Stall
		switch {
		case ws.Stall != nil:
			degrade("stalled", "watchdog tripped: "+ws.Stall.Error(), true)
		case ws.StallLimit > 0 && ws.Streak >= ws.StallLimit/2:
			degrade("stalling", fmt.Sprintf(
				"same-instant event streak %d is past half the stall limit %d (last event %q)",
				ws.Streak, ws.StallLimit, ws.LastLabel), false)
		}
	}
	if opts.Sweep != nil {
		snap := opts.Sweep.Snapshot()
		for _, c := range snap.Cells {
			switch {
			case c.Stall != nil:
				rep.StalledCells = append(rep.StalledCells, c.Cell)
				degrade("stalled", fmt.Sprintf("cell %s: watchdog tripped (%s)", c.Cell, c.Stall.Error()), true)
			case c.State == telemetry.CellStateRunning && c.StallLimit > 0 && c.Streak >= c.StallLimit/2:
				rep.StalledCells = append(rep.StalledCells, c.Cell)
				if rep.Status == "ok" {
					degrade("stalling", fmt.Sprintf("cell %s: streak %d past half the stall limit %d", c.Cell, c.Streak, c.StallLimit), false)
				}
			}
		}
	}
	if stale := s.observeProgress(opts); !s.done.Load() && stale > opts.StaleAfter {
		degrade("stuck", fmt.Sprintf(
			"no event progress for %s (threshold %s) and the run is not done — the process is wedged outside the event loop",
			stale.Round(time.Second), opts.StaleAfter), true)
	}
	if s.done.Load() && code == http.StatusOK {
		rep.Status = "done"
	}
	return code, rep
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	opts := s.snapshotOpts()
	code, rep := s.health(opts)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rep)
}

// progressReport is the /progress JSON body and the SSE event payload.
type progressReport struct {
	Tool           string                   `json:"tool,omitempty"`
	Run            string                   `json:"run,omitempty"`
	Status         string                   `json:"status"` // running | done
	ElapsedSeconds float64                  `json:"elapsed_seconds"`
	Live           *liveReport              `json:"live,omitempty"`
	Sweep          *telemetry.SweepSnapshot `json:"sweep,omitempty"`
	Fleet          *fleetReport             `json:"fleet,omitempty"`
}

// fleetReport mirrors telemetry.FleetSnapshot with JSON names.
type fleetReport struct {
	SimSeconds float64            `json:"sim_seconds"`
	Requests   uint64             `json:"requests"`
	Served     uint64             `json:"served"`
	Retries    uint64             `json:"retries"`
	Hedges     uint64             `json:"hedges"`
	HedgeWins  uint64             `json:"hedge_wins"`
	Failovers  uint64             `json:"failovers"`
	Timeouts   uint64             `json:"timeouts"`
	Deferred   uint64             `json:"deferred"`
	Shed       uint64             `json:"shed"`
	Failed     uint64             `json:"failed"`
	Shocks     uint64             `json:"shocks"`
	PerArray   []fleetArrayReport `json:"per_array"`
}

// fleetArrayReport is one array's row in a fleetReport.
type fleetArrayReport struct {
	Array       int     `json:"array"`
	Health      string  `json:"health"`
	Backlog     uint64  `json:"backlog"`
	FailedDisks uint64  `json:"failed_disks"`
	Rebuilding  bool    `json:"rebuilding,omitempty"`
	WorstAFRPct float64 `json:"worst_afr_pct"`
}

// liveReport mirrors telemetry.LiveSnapshot with JSON names.
type liveReport struct {
	SimSeconds  float64 `json:"sim_seconds"`
	Events      uint64  `json:"events"`
	Requests    uint64  `json:"requests"`
	Arrivals    uint64  `json:"arrivals"`
	EnergyJ     float64 `json:"energy_j"`
	WorstAFRPct float64 `json:"worst_afr_pct"`
	QueueDepth  uint64  `json:"queue_depth"`
	DisksHigh   uint64  `json:"disks_high"`
	DisksLow    uint64  `json:"disks_low"`
	Epoch       uint64  `json:"epoch"`
	EventsPerS  float64 `json:"events_per_second"`
}

func (s *Server) progress(opts Options) progressReport {
	s.observeProgress(opts)
	rep := progressReport{
		Tool:           opts.Tool,
		Run:            opts.Run,
		Status:         "running",
		ElapsedSeconds: s.now().Sub(s.start).Seconds(),
	}
	if s.done.Load() {
		rep.Status = "done"
	}
	if opts.Live != nil {
		ls := opts.Live.Snapshot()
		lr := &liveReport{
			SimSeconds:  ls.SimSeconds,
			Events:      ls.Events,
			Requests:    ls.Requests,
			Arrivals:    ls.Arrivals,
			EnergyJ:     ls.EnergyJ,
			WorstAFRPct: ls.WorstAFRPct,
			QueueDepth:  ls.QueueDepth,
			DisksHigh:   ls.DisksHigh,
			DisksLow:    ls.DisksLow,
			Epoch:       ls.Epoch,
		}
		if rep.ElapsedSeconds > 0 {
			lr.EventsPerS = float64(ls.Events) / rep.ElapsedSeconds
		}
		rep.Live = lr
	}
	if opts.Sweep != nil {
		snap := opts.Sweep.Snapshot()
		rep.Sweep = &snap
	}
	if opts.Fleet != nil {
		fs := opts.Fleet.Snapshot()
		fr := &fleetReport{
			SimSeconds: fs.SimSeconds,
			Requests:   fs.Requests,
			Served:     fs.Served,
			Retries:    fs.Retries,
			Hedges:     fs.Hedges,
			HedgeWins:  fs.HedgeWins,
			Failovers:  fs.Failovers,
			Timeouts:   fs.Timeouts,
			Deferred:   fs.Deferred,
			Shed:       fs.Shed,
			Failed:     fs.Failed,
			Shocks:     fs.Shocks,
		}
		for i, a := range fs.PerArray {
			fr.PerArray = append(fr.PerArray, fleetArrayReport{
				Array:       i,
				Health:      a.Health,
				Backlog:     a.Backlog,
				FailedDisks: a.FailedDisks,
				Rebuilding:  a.Rebuilding,
				WorstAFRPct: a.WorstAFRPct,
			})
		}
		rep.Fleet = fr
	}
	return rep
}

func wantsSSE(r *http.Request) bool {
	if r.URL.Query().Get("stream") == "sse" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	opts := s.snapshotOpts()
	if !wantsSSE(r) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.progress(opts))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	ticker := time.NewTicker(opts.SSEInterval)
	defer ticker.Stop()
	for {
		// Re-read swappable state each tick so a stream spanning sweeps
		// follows along.
		opts = s.snapshotOpts()
		rep := s.progress(opts)
		payload, err := json.Marshal(rep)
		if err != nil {
			return
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", payload); err != nil {
			return
		}
		fl.Flush()
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}

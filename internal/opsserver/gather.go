package opsserver

import (
	"fmt"
	"runtime"
)

// families assembles the full /metrics family set from whatever sources are
// attached: the single-run live view, the engine watch, the sweep tracker,
// and the process's own runtime stats. Everything is built from slices in
// deterministic order — no map iteration — so the exposition is byte-stable
// for fixed inputs (golden-tested, and structurally enforced by maporder).
func (s *Server) families(opts Options) []Family {
	var fams []Family

	fams = append(fams, Family{
		Name: "sim_info", Type: "gauge",
		Help: "Constant 1; labels identify the serving tool and run.",
		Samples: []Sample{{
			Labels: []Label{{"tool", opts.Tool}, {"run", opts.Run}},
			Value:  1,
		}},
	})

	if opts.Live != nil {
		ls := opts.Live.Snapshot()
		fams = append(fams,
			Family{Name: "sim_virtual_seconds", Type: "gauge",
				Help:    "Simulated (virtual) time reached.",
				Samples: []Sample{{Value: ls.SimSeconds}}},
			Family{Name: "sim_events", Type: "counter",
				Help:    "DES events fired.",
				Samples: []Sample{{Value: float64(ls.Events)}}},
			Family{Name: "sim_requests", Type: "counter",
				Help:    "User requests completed.",
				Samples: []Sample{{Value: float64(ls.Requests)}}},
			Family{Name: "sim_arrivals", Type: "counter",
				Help:    "User requests arrived.",
				Samples: []Sample{{Value: float64(ls.Arrivals)}}},
			Family{Name: "sim_energy_joules", Type: "counter",
				Help:    "Array energy consumed (epoch-fresh).",
				Samples: []Sample{{Value: ls.EnergyJ}}},
			Family{Name: "sim_worst_afr_percent", Type: "gauge",
				Help:    "Worst per-disk annualized failure rate (epoch-fresh).",
				Samples: []Sample{{Value: ls.WorstAFRPct}}},
			Family{Name: "sim_queue_depth", Type: "gauge",
				Help:    "Total requests queued across disks (epoch-fresh).",
				Samples: []Sample{{Value: float64(ls.QueueDepth)}}},
			Family{Name: "sim_epoch", Type: "gauge",
				Help:    "Policy epochs completed.",
				Samples: []Sample{{Value: float64(ls.Epoch)}}},
			Family{Name: "sim_disks_spinning", Type: "gauge",
				Help: "Disks by spin speed (epoch-fresh).",
				Samples: []Sample{
					{Labels: []Label{{"speed", "high"}}, Value: float64(ls.DisksHigh)},
					{Labels: []Label{{"speed", "low"}}, Value: float64(ls.DisksLow)},
				}},
		)
	}

	if opts.Watch != nil {
		ws := opts.Watch.Snapshot()
		stalled := 0.0
		if ws.Stall != nil {
			stalled = 1
		}
		fams = append(fams,
			Family{Name: "des_pending_events", Type: "gauge",
				Help:    "Events scheduled but not yet fired.",
				Samples: []Sample{{Value: float64(ws.Pending)}}},
			Family{Name: "des_watchdog_streak", Type: "gauge",
				Help:    "Consecutive same-instant events (stall pressure).",
				Samples: []Sample{{Value: float64(ws.Streak)}}},
			Family{Name: "des_watchdog_stall_limit", Type: "gauge",
				Help:    "Configured watchdog trip point.",
				Samples: []Sample{{Value: float64(ws.StallLimit)}}},
			Family{Name: "des_watchdog_stalled", Type: "gauge",
				Help:    "1 once the watchdog has tripped.",
				Samples: []Sample{{Value: stalled}}},
		)
	}

	if opts.Fleet != nil {
		fs := opts.Fleet.Snapshot()
		counters := []struct {
			name string
			help string
			v    uint64
		}{
			{"fleet_requests", "Fleet requests arrived at the router.", fs.Requests},
			{"fleet_served", "Fleet requests served (first successful completion).", fs.Served},
			{"fleet_retries", "Retry attempts issued after a timeout.", fs.Retries},
			{"fleet_hedges", "Hedged attempts issued.", fs.Hedges},
			{"fleet_hedge_wins", "Requests whose hedge finished first.", fs.HedgeWins},
			{"fleet_failovers", "Attempts re-issued to a replica after data loss.", fs.Failovers},
			{"fleet_timeouts", "Attempts that exceeded their deadline.", fs.Timeouts},
			{"fleet_deferred", "Attempts deferred by backpressure.", fs.Deferred},
			{"fleet_shed", "Requests dropped without service.", fs.Shed},
			{"fleet_failed", "Requests that exhausted every attempt and replica.", fs.Failed},
			{"fleet_shocks", "Rack power shocks injected.", fs.Shocks},
		}
		fams = append(fams, Family{Name: "fleet_virtual_seconds", Type: "gauge",
			Help:    "Simulated (virtual) time reached by the shared fleet clock.",
			Samples: []Sample{{Value: fs.SimSeconds}}})
		for _, c := range counters {
			fams = append(fams, Family{Name: c.name, Type: "counter",
				Help: c.help, Samples: []Sample{{Value: float64(c.v)}}})
		}
		health := Family{Name: "fleet_array_health", Type: "gauge",
			Help: "Constant 1 per array; the health label is the router's current gate state."}
		backlog := Family{Name: "fleet_array_backlog", Type: "gauge",
			Help: "Foreground requests queued on the array."}
		failedDisks := Family{Name: "fleet_array_failed_disks", Type: "gauge",
			Help: "Member disks currently failed."}
		rebuilding := Family{Name: "fleet_array_rebuilding", Type: "gauge",
			Help: "1 while any member disk is rebuilding."}
		afr := Family{Name: "fleet_array_worst_afr_percent", Type: "gauge",
			Help: "Worst per-disk annualized failure rate on the array."}
		for i, a := range fs.PerArray {
			key := []Label{{"array", fmt.Sprint(i)}}
			health.Samples = append(health.Samples, Sample{
				Labels: []Label{{"array", fmt.Sprint(i)}, {"health", a.Health}}, Value: 1})
			backlog.Samples = append(backlog.Samples, Sample{Labels: key, Value: float64(a.Backlog)})
			failedDisks.Samples = append(failedDisks.Samples, Sample{Labels: key, Value: float64(a.FailedDisks)})
			reb := 0.0
			if a.Rebuilding {
				reb = 1
			}
			rebuilding.Samples = append(rebuilding.Samples, Sample{Labels: key, Value: reb})
			afr.Samples = append(afr.Samples, Sample{Labels: key, Value: a.WorstAFRPct})
		}
		fams = append(fams, health, backlog, failedDisks, rebuilding, afr)
	}

	if opts.Sweep != nil {
		snap := opts.Sweep.Snapshot()
		states := []struct {
			name  string
			count int
		}{
			{"pending", snap.Pending},
			{"running", snap.Running},
			{"done", snap.Done},
			{"failed", snap.Failed},
			{"retried", snap.Retried},
		}
		byState := Family{Name: "sweep_cells", Type: "gauge",
			Help: "Sweep cells by lifecycle state."}
		for _, st := range states {
			byState.Samples = append(byState.Samples, Sample{
				Labels: []Label{{"state", st.name}}, Value: float64(st.count)})
		}
		fams = append(fams, byState,
			Family{Name: "sweep_cell_count", Type: "gauge",
				Help:    "Total cells in the sweep.",
				Samples: []Sample{{Value: float64(snap.Total)}}},
			Family{Name: "sweep_elapsed_seconds", Type: "gauge",
				Help:    "Wall-clock time since the sweep started.",
				Samples: []Sample{{Value: snap.ElapsedSeconds}}},
			Family{Name: "sweep_events_per_second", Type: "gauge",
				Help:    "Aggregate simulated events per wall second.",
				Samples: []Sample{{Value: snap.EventsPerSecond}}},
		)
		if snap.ETASeconds >= 0 {
			fams = append(fams, Family{Name: "sweep_eta_seconds", Type: "gauge",
				Help:    "Estimated wall seconds to sweep completion (from completed-cell wall-clocks).",
				Samples: []Sample{{Value: snap.ETASeconds}}})
		}
		cellState := Family{Name: "sweep_cell_state", Type: "gauge",
			Help: "Constant 1 per cell; the state label is the cell's current lifecycle state."}
		cellEvents := Family{Name: "sweep_cell_events", Type: "counter",
			Help: "DES events fired by the cell (live for running cells, final otherwise)."}
		cellSim := Family{Name: "sweep_cell_sim_seconds", Type: "gauge",
			Help: "Virtual time reached by the cell (running cells only)."}
		cellAttempts := Family{Name: "sweep_cell_attempts", Type: "gauge",
			Help: "Run attempts for the cell (>1 means retried)."}
		for _, c := range snap.Cells {
			key := []Label{{"cell", c.Cell}}
			cellState.Samples = append(cellState.Samples, Sample{
				Labels: []Label{{"cell", c.Cell}, {"state", string(c.State)}}, Value: 1})
			cellEvents.Samples = append(cellEvents.Samples, Sample{Labels: key, Value: float64(c.Events)})
			if c.State == "running" {
				cellSim.Samples = append(cellSim.Samples, Sample{Labels: key, Value: c.SimSeconds})
			}
			if c.Attempts > 0 {
				cellAttempts.Samples = append(cellAttempts.Samples, Sample{Labels: key, Value: float64(c.Attempts)})
			}
		}
		fams = append(fams, cellState, cellEvents, cellSim, cellAttempts)
	}

	var ms runtime.MemStats
	s.readMemStats(&ms)
	fams = append(fams,
		Family{Name: "process_uptime_seconds", Type: "gauge",
			Help:    "Wall-clock seconds since the ops server started.",
			Samples: []Sample{{Value: s.now().Sub(s.start).Seconds()}}},
		Family{Name: "go_goroutines", Type: "gauge",
			Help:    "Live goroutines.",
			Samples: []Sample{{Value: float64(s.goroutines())}}},
		Family{Name: "go_heap_alloc_bytes", Type: "gauge",
			Help:    "Bytes of allocated heap objects.",
			Samples: []Sample{{Value: float64(ms.HeapAlloc)}}},
		Family{Name: "go_alloc_bytes", Type: "counter",
			Help:    "Cumulative bytes allocated.",
			Samples: []Sample{{Value: float64(ms.TotalAlloc)}}},
		Family{Name: "go_gc_cycles", Type: "counter",
			Help:    "Completed GC cycles.",
			Samples: []Sample{{Value: float64(ms.NumGC)}}},
		Family{Name: "go_gc_pause_seconds", Type: "counter",
			Help:    "Cumulative GC stop-the-world pause time.",
			Samples: []Sample{{Value: float64(ms.PauseTotalNs) / 1e9}}},
	)
	return fams
}

package opsserver

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the OpenMetrics text exposition media type served on
// /metrics. Prometheus scrapers negotiate it; curl just sees text.
const ContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// Label is one name="value" pair on a sample.
type Label struct {
	Name, Value string
}

// Sample is one exposition line inside a family.
type Sample struct {
	Labels []Label
	Value  float64
}

// Family is one OpenMetrics metric family. For counters the family is named
// without the `_total` suffix (per the OpenMetrics spec) and the encoder
// appends `_total` to each sample line.
type Family struct {
	Name    string
	Type    string // "gauge" or "counter"
	Help    string
	Samples []Sample
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value. OpenMetrics accepts Go's shortest
// round-trip float syntax, including exponent form.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// renderLabels renders a sorted {a="b",c="d"} block ("" when unlabeled).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Name, escapeLabel(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// WriteExposition renders the families in OpenMetrics text format: families
// sorted by name, samples sorted by their rendered label block, terminated
// by the mandatory `# EOF`. Every ordering decision is explicit — the output
// is byte-stable for a fixed input, which the golden-file test pins and
// simlint's maporder analyzer (this package is in its renderer scope)
// enforces structurally.
func WriteExposition(w io.Writer, fams []Family) error {
	sorted := append([]Family(nil), fams...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for _, f := range sorted {
		if len(f.Samples) == 0 {
			continue
		}
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type); err != nil {
			return err
		}
		name := f.Name
		if f.Type == "counter" {
			name += "_total"
		}
		lines := make([]string, 0, len(f.Samples))
		for _, s := range f.Samples {
			lines = append(lines, fmt.Sprintf("%s%s %s\n", name, renderLabels(s.Labels), formatValue(s.Value)))
		}
		sort.Strings(lines)
		for _, line := range lines {
			if _, err := io.WriteString(w, line); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

package opsserver

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/telemetry"
)

func startTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	opts.Addr = "127.0.0.1:0"
	s, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestServerServesAllEndpoints(t *testing.T) {
	live := telemetry.NewLive()
	live.Tick(10, 1000, 300, 301)
	eng := des.New()
	watch := des.NewWatch()
	eng.SetWatch(watch)
	eng.MustScheduleLabeled(1, "service", func(*des.Engine) {})
	if err := eng.RunGuarded(100); err != nil {
		t.Fatal(err)
	}
	tr := telemetry.NewSweepTracker([]string{"read.4"}, 1)
	s := startTestServer(t, Options{Tool: "arraysim", Run: "smoke", Live: live, Watch: watch, Sweep: tr})

	code, body, hdr := get(t, "http://"+s.Addr()+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != ContentType {
		t.Fatalf("/metrics content type %q", ct)
	}
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Fatalf("/metrics does not end with # EOF:\n%s", body)
	}
	for _, want := range []string{"sim_virtual_seconds 10", "sim_events_total 1000", "sweep_cells{state=\"pending\"} 1"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body, hdr = get(t, "http://"+s.Addr()+"/progress")
	if code != 200 || hdr.Get("Content-Type") != "application/json" {
		t.Fatalf("/progress status %d type %q", code, hdr.Get("Content-Type"))
	}
	var rep progressReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/progress not JSON: %v\n%s", err, body)
	}
	if rep.Status != "running" || rep.Live == nil || rep.Live.Events != 1000 || rep.Sweep == nil {
		t.Fatalf("/progress content wrong: %s", body)
	}

	code, body, _ = get(t, "http://"+s.Addr()+"/healthz")
	if code != 200 || !strings.Contains(body, `"status": "ok"`) {
		t.Fatalf("/healthz status %d body %s", code, body)
	}

	s.MarkDone()
	code, body, _ = get(t, "http://"+s.Addr()+"/healthz")
	if code != 200 || !strings.Contains(body, `"status": "done"`) {
		t.Fatalf("/healthz after MarkDone: status %d body %s", code, body)
	}
}

func TestHealthzReportsWatchdogStall(t *testing.T) {
	eng := des.New()
	watch := des.NewWatch()
	eng.SetWatch(watch)
	var loop des.Handler
	loop = func(e *des.Engine) { e.MustScheduleLabeled(0, "spin", loop) }
	eng.MustScheduleLabeled(0, "spin", loop)
	if err := eng.RunGuarded(10); err == nil {
		t.Fatal("expected stall")
	}
	s := startTestServer(t, Options{Tool: "arraysim", Watch: watch})
	code, body, _ := get(t, "http://"+s.Addr()+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz status %d, want 503:\n%s", code, body)
	}
	var rep healthReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Status != "stalled" || rep.Stall == nil || rep.Stall.LastLabel != "spin" {
		t.Fatalf("healthz stall report wrong: %s", body)
	}
	// The stall is also visible in /metrics.
	_, metrics, _ := get(t, "http://"+s.Addr()+"/metrics")
	if !strings.Contains(metrics, "des_watchdog_stalled 1") {
		t.Fatalf("/metrics missing stalled gauge:\n%s", metrics)
	}
}

func TestHealthzReportsSweepCellStall(t *testing.T) {
	tr := telemetry.NewSweepTracker([]string{"read.4", "read.6"}, 2)
	_, watch := tr.StartCell("read.4")
	eng := des.New()
	eng.SetWatch(watch)
	var loop des.Handler
	loop = func(e *des.Engine) { e.MustScheduleLabeled(0, "spin", loop) }
	eng.MustScheduleLabeled(0, "spin", loop)
	if err := eng.RunGuarded(10); err == nil {
		t.Fatal("expected stall")
	}
	s := startTestServer(t, Options{Tool: "experiments", Sweep: tr})
	code, body, _ := get(t, "http://"+s.Addr()+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz status %d, want 503:\n%s", code, body)
	}
	var rep healthReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Status != "stalled" || len(rep.StalledCells) != 1 || rep.StalledCells[0] != "read.4" {
		t.Fatalf("healthz sweep stall report wrong: %s", body)
	}
}

func TestHealthzDetectsWallClockStuckness(t *testing.T) {
	live := telemetry.NewLive()
	watch := des.NewWatch()
	s := startTestServer(t, Options{Tool: "arraysim", Live: live, Watch: watch, StaleAfter: 30 * time.Second})
	// First probe arms the staleness clock at "now".
	if code, _, _ := get(t, "http://"+s.Addr()+"/healthz"); code != 200 {
		t.Fatalf("fresh server unhealthy")
	}
	// Jump the server's clock far forward with no event progress.
	s.mu.Lock()
	base := s.now()
	s.now = func() time.Time { return base.Add(5 * time.Minute) }
	s.mu.Unlock()
	code, body, _ := get(t, "http://"+s.Addr()+"/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, `"status": "stuck"`) {
		t.Fatalf("stuck not detected: status %d body %s", code, body)
	}
	// Done runs are not stuck, however long they sit.
	s.MarkDone()
	code, body, _ = get(t, "http://"+s.Addr()+"/healthz")
	if code != 200 || !strings.Contains(body, `"status": "done"`) {
		t.Fatalf("done run reported unhealthy: %d %s", code, body)
	}
}

func TestProgressSSEStreams(t *testing.T) {
	tr := telemetry.NewSweepTracker([]string{"a", "b"}, 1)
	tr.StartCell("a")
	s := startTestServer(t, Options{Tool: "experiments", Sweep: tr, SSEInterval: 20 * time.Millisecond})

	req, err := http.NewRequest("GET", "http://"+s.Addr()+"/progress?stream=sse", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	reader := bufio.NewReader(resp.Body)
	var events []string
	deadline := time.After(5 * time.Second)
	for len(events) < 3 {
		lineCh := make(chan string, 1)
		go func() {
			line, err := reader.ReadString('\n')
			if err != nil {
				close(lineCh)
				return
			}
			lineCh <- line
		}()
		select {
		case line, ok := <-lineCh:
			if !ok {
				t.Fatal("stream closed early")
			}
			if strings.HasPrefix(line, "data: ") {
				events = append(events, strings.TrimPrefix(strings.TrimSpace(line), "data: "))
			}
		case <-deadline:
			t.Fatalf("timed out waiting for SSE events; got %d", len(events))
		}
	}
	var rep progressReport
	if err := json.Unmarshal([]byte(events[0]), &rep); err != nil {
		t.Fatalf("SSE payload not JSON: %v\n%s", err, events[0])
	}
	if rep.Sweep == nil || rep.Sweep.Running != 1 {
		t.Fatalf("SSE payload wrong: %s", events[0])
	}
	// The Accept header route works too.
	req2, _ := http.NewRequest("GET", "http://"+s.Addr()+"/progress", nil)
	req2.Header.Set("Accept", "text/event-stream")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Accept-negotiated SSE content type %q", ct)
	}
}

func TestServerSetSweepSwapsTracker(t *testing.T) {
	tr1 := telemetry.NewSweepTracker([]string{"a"}, 1)
	s := startTestServer(t, Options{Tool: "experiments", Sweep: tr1})
	tr2 := telemetry.NewSweepTracker([]string{"x", "y", "z"}, 1)
	s.SetSweep(tr2)
	_, body, _ := get(t, "http://"+s.Addr()+"/progress")
	var rep progressReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Sweep == nil || rep.Sweep.Total != 3 {
		t.Fatalf("SetSweep not visible: %s", body)
	}
}

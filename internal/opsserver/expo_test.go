package opsserver

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestExpositionEscaping covers the format's escaping and ordering rules in
// isolation from the gatherer.
func TestExpositionEscaping(t *testing.T) {
	var buf bytes.Buffer
	err := WriteExposition(&buf, []Family{
		{Name: "zz_last", Type: "gauge", Samples: []Sample{{Value: 1}}},
		{Name: "aa_first", Type: "counter", Help: `line\one` + "\nline two",
			Samples: []Sample{
				{Labels: []Label{{"b", "2"}, {"a", `va"l\ue` + "\n"}}, Value: 1e6},
				{Labels: []Label{{"a", "a"}}, Value: -2.5},
			}},
		{Name: "mm_empty", Type: "gauge"}, // no samples: omitted entirely
	})
	if err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_first line\\one\nline two
# TYPE aa_first counter
aa_first_total{a="a"} -2.5
aa_first_total{a="va\"l\\ue\n",b="2"} 1e+06
# TYPE zz_last gauge
zz_last 1
# EOF
`
	if buf.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

// newGoldenServer builds a server over fully deterministic sources: a fixed
// clock, fixed runtime stats, a live view and watch driven to known values,
// and a sweep tracker on the same fixed clock.
func newGoldenServer(t *testing.T) *Server {
	t.Helper()
	base := time.Unix(1700000000, 0).UTC()
	clock := base
	now := func() time.Time { return clock }

	live := telemetry.NewLive()
	live.Tick(3600, 120000, 40000, 40010)
	live.PublishEpoch(12, 54321.5, 1.875, 9, 4, 2)

	// Drive a real engine so the watch carries engine-published values.
	eng := des.New()
	watch := des.NewWatch()
	eng.SetWatch(watch)
	for i := 0; i < 5; i++ {
		eng.MustScheduleLabeled(float64(i), "service", func(*des.Engine) {})
	}
	if err := eng.RunGuarded(1000); err != nil {
		t.Fatal(err)
	}

	tr := telemetry.NewSweepTracker([]string{"read.4", "read.6", "maid.4"}, 2)
	tr.SetClock(now)
	tr.StartCell("read.4")
	tr.CellDone("read.4", 2.5, 50000)
	cellLive, _ := tr.StartCell("read.6")
	cellLive.Tick(1800, 25000, 9000, 9001)
	// maid.4 stays pending.

	fleet := telemetry.NewFleetLive(2)
	fleet.PublishCounters(3600, 40010, 39990, 12, 4, 1, 2, 15, 3, 5, 0, 1)
	fleet.PublishArray(0, telemetry.ArrayHealthy, 3, 0, false, 1.875)
	fleet.PublishArray(1, telemetry.ArrayDraining, 17, 1, true, 6.25)

	s := &Server{
		opts: Options{
			Tool:  "experiments",
			Run:   "fig7-light",
			Live:  live,
			Watch: watch,
			Sweep: tr,
			Fleet: fleet,
		},
		now: now,
		readMemStats: func(ms *runtime.MemStats) {
			ms.HeapAlloc = 1 << 20
			ms.TotalAlloc = 10 << 20
			ms.NumGC = 7
			ms.PauseTotalNs = 1500000
		},
		goroutines: func() int { return 8 },
		start:      base.Add(-90 * time.Second),
	}
	s.lastFiredAt = s.start
	return s
}

// TestMetricsGolden pins the full /metrics exposition byte-for-byte. The
// encoder sorts families and samples explicitly (never by map order), so
// this file must be stable across runs and Go versions; `go test ./... -run
// Golden -update` rewrites it after intentional changes.
func TestMetricsGolden(t *testing.T) {
	s := newGoldenServer(t)
	var buf bytes.Buffer
	if err := WriteExposition(&buf, s.families(s.snapshotOpts())); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition differs from golden file:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestMetricsGoldenIsStable renders twice and requires identical bytes —
// the ordering must come from explicit sorts, not iteration luck.
func TestMetricsGoldenIsStable(t *testing.T) {
	s := newGoldenServer(t)
	var a, b bytes.Buffer
	if err := WriteExposition(&a, s.families(s.snapshotOpts())); err != nil {
		t.Fatal(err)
	}
	if err := WriteExposition(&b, s.families(s.snapshotOpts())); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two renders of identical state differ — nondeterministic ordering")
	}
}

// TestExpositionWellFormed applies the structural OpenMetrics rules to the
// golden output: every sample line belongs to a declared family, counter
// samples carry the _total suffix, and the body ends with # EOF.
func TestExpositionWellFormed(t *testing.T) {
	s := newGoldenServer(t)
	var buf bytes.Buffer
	if err := WriteExposition(&buf, s.families(s.snapshotOpts())); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if lines[len(lines)-1] != "# EOF" {
		t.Fatalf("exposition does not end with # EOF: %q", lines[len(lines)-1])
	}
	types := map[string]string{}
	var lastFamily string
	for _, line := range lines[:len(lines)-1] {
		switch {
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			name, typ := parts[2], parts[3]
			if name <= lastFamily {
				t.Fatalf("family %q out of sorted order (after %q)", name, lastFamily)
			}
			lastFamily = name
			types[name] = typ
		case strings.HasPrefix(line, "# HELP "):
		case strings.HasPrefix(line, "#"):
			t.Fatalf("unexpected comment line %q", line)
		default:
			name := line
			if i := strings.IndexAny(line, "{ "); i >= 0 {
				name = line[:i]
			}
			family := name
			if typ, ok := types[family]; ok {
				if typ == "counter" {
					t.Fatalf("counter family %q must expose samples as %s_total: %q", family, family, line)
				}
				continue
			}
			family = strings.TrimSuffix(name, "_total")
			typ, ok := types[family]
			if !ok {
				t.Fatalf("sample %q has no TYPE declaration", line)
			}
			if typ != "counter" {
				t.Fatalf("sample %q uses _total but family %q is %q", line, family, typ)
			}
		}
	}
}

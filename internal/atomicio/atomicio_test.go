package atomicio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFile(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("second"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Fatalf("content = %q, want %q", got, "second")
	}
	leftover, err := filepath.Glob(filepath.Join(dir, "*.tmp*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftover) != 0 {
		t.Fatalf("temp files left behind: %v", leftover)
	}
}

func TestWriteFileMissingDir(t *testing.T) {
	err := WriteFile(filepath.Join(t.TempDir(), "no-such-dir", "x"), []byte("x"), 0o644)
	if err == nil {
		t.Fatal("expected error writing into a missing directory")
	}
}

func TestFileInvisibleUntilClose(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stream.ndjson")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("line 1\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("destination visible before Close (stat err = %v)", err)
	}
	if _, err := f.Write([]byte("line 2\n")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("second Close should be a no-op, got %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), "line 2") {
		t.Fatalf("content = %q, want both lines", got)
	}
}

func TestFileAbortLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gone.csv")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	f.Abort()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("destination exists after Abort (stat err = %v)", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("directory not empty after Abort: %v", entries)
	}
	if _, err := f.Write([]byte("late")); err == nil {
		t.Fatal("write after Abort should fail")
	}
}

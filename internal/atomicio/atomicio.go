// Package atomicio provides crash-safe file writes: content lands in a
// temporary sibling file, is fsynced, and is renamed over the destination in
// one step. A reader therefore sees either the previous complete file or the
// new complete file — never a truncated half-write — which is the property
// the run store, the telemetry artifacts, and the checkpoint subsystem all
// rely on to survive a SIGKILL at any instant.
package atomicio

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data. The data is written to a
// temporary file in the same directory (so the rename never crosses a
// filesystem boundary), fsynced, renamed into place, and the directory entry
// is then fsynced so the rename itself survives a crash.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("atomicio: write %s: %w", path, err)
	}
	if err := tmp.Chmod(perm); err != nil {
		cleanup()
		return fmt.Errorf("atomicio: chmod %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("atomicio: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicio: close %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicio: rename %s: %w", path, err)
	}
	return syncDir(dir)
}

// File is a streaming writer with atomic commit semantics: writes accumulate
// in a hidden temporary file and only Close (sync + rename) makes them
// visible under the final name. Abort discards everything. A crash before
// Close leaves at most a stray *.tmp file, never a truncated artifact.
type File struct {
	f     *os.File
	path  string // final destination
	tmp   string // temporary name currently holding the data
	done  bool
	fsync bool
}

// Create opens a streaming atomic file that will become path on Close.
func Create(path string) (*File, error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, fmt.Errorf("atomicio: %w", err)
	}
	return &File{f: tmp, path: path, tmp: tmp.Name(), fsync: true}, nil
}

// Write appends to the in-flight temporary file.
func (a *File) Write(p []byte) (int, error) {
	if a.done {
		return 0, fmt.Errorf("atomicio: write to closed file %s", a.path)
	}
	return a.f.Write(p)
}

// Name returns the final destination path.
func (a *File) Name() string { return a.path }

// Close commits the file: fsync, rename into place, fsync the directory.
// Closing twice is an error-free no-op so deferred Abort-style cleanup can
// coexist with an explicit Close.
func (a *File) Close() error {
	if a.done {
		return nil
	}
	a.done = true
	if a.fsync {
		if err := a.f.Sync(); err != nil {
			a.f.Close()
			os.Remove(a.tmp)
			return fmt.Errorf("atomicio: sync %s: %w", a.path, err)
		}
	}
	if err := a.f.Close(); err != nil {
		os.Remove(a.tmp)
		return fmt.Errorf("atomicio: close %s: %w", a.path, err)
	}
	if err := os.Rename(a.tmp, a.path); err != nil {
		os.Remove(a.tmp)
		return fmt.Errorf("atomicio: rename %s: %w", a.path, err)
	}
	return syncDir(filepath.Dir(a.path))
}

// Abort discards the in-flight data without touching the destination.
func (a *File) Abort() {
	if a.done {
		return
	}
	a.done = true
	a.f.Close()
	os.Remove(a.tmp)
}

// syncDir fsyncs a directory so a just-completed rename is durable. Some
// filesystems refuse to sync directories; that is not worth failing the
// write over, so such errors are ignored.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}

package thermal

import (
	"testing"

	"repro/internal/diskmodel"
)

// PeekMeanTemp is the telemetry read path: it must return exactly what
// MeanTemp would, without committing the pending interval into the tracker's
// integral (which would change later summation order and so later values).
func TestPeekMeanTempMatchesMeanTemp(t *testing.T) {
	m := Default()
	peeked := NewTracker(m, diskmodel.High)
	advanced := NewTracker(m, diskmodel.High)

	script := []struct {
		at    float64
		speed diskmodel.Speed
	}{
		{600, diskmodel.Low},
		{1800, diskmodel.High},
		{2000, diskmodel.Low},
	}
	for _, st := range script {
		peeked.SetSpeed(st.at, st.speed)
		advanced.SetSpeed(st.at, st.speed)
		// Peek strictly inside the next open interval.
		at := st.at + 90
		if got, want := peeked.PeekMeanTemp(at), advanced.MeanTemp(at); got != want {
			t.Fatalf("t=%v: peek %v, mean %v", at, got, want)
		}
	}

	// After all that peeking, the peeked tracker's committed state must be
	// untouched: a final mutating read agrees bit-for-bit with the tracker
	// that only ever saw mutating reads.
	end := 4000.0
	if got, want := peeked.MeanTemp(end), advanced.MeanTemp(end); got != want {
		t.Fatalf("final mean %v, control %v — Peek perturbed the integral", got, want)
	}
	if got, want := peeked.TempAt(end), advanced.TempAt(end); got != want {
		t.Fatalf("final temp %v, control %v", got, want)
	}
}

func TestPeekMeanTempRepeatable(t *testing.T) {
	tr := NewTracker(Default(), diskmodel.Low)
	tr.SetSpeed(100, diskmodel.High)
	a := tr.PeekMeanTemp(500)
	b := tr.PeekMeanTemp(500)
	if a != b {
		t.Fatalf("repeated peeks differ: %v vs %v", a, b)
	}
}

func TestPeekMeanTempAtZero(t *testing.T) {
	tr := NewTracker(Default(), diskmodel.High)
	if got := tr.PeekMeanTemp(0); got != Default().HighSteadyC {
		t.Fatalf("peek at t=0 = %v, want initial steady %v", got, Default().HighSteadyC)
	}
}

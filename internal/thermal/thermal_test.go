package thermal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/diskmodel"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	m := Default()
	m.TimeConstant = 0
	if m.Validate() == nil {
		t.Fatal("zero time constant accepted")
	}
	m = Default()
	m.LowSteadyC = m.HighSteadyC
	if m.Validate() == nil {
		t.Fatal("equal steady temps accepted")
	}
	m = Default()
	m.AmbientC = 45
	if m.Validate() == nil {
		t.Fatal("ambient above low steady accepted")
	}
}

func TestSteadyMapping(t *testing.T) {
	m := Default()
	if m.Steady(diskmodel.Low) != 40 {
		t.Fatalf("Steady(Low) = %v, want 40", m.Steady(diskmodel.Low))
	}
	if m.Steady(diskmodel.High) != 50 {
		t.Fatalf("Steady(High) = %v, want 50", m.Steady(diskmodel.High))
	}
}

func TestCubeLawCalibration(t *testing.T) {
	m := Default()
	// Exactly the high point by construction.
	if got := m.CubeLawSteady(10000, 10000); math.Abs(got-50) > 1e-9 {
		t.Fatalf("CubeLawSteady at calibration point = %v, want 50", got)
	}
	// Cube law under-predicts the low-speed band, as documented.
	if got := m.CubeLawSteady(3600, 10000); got >= 35 {
		t.Fatalf("cube law at 3600 RPM = %v, expected below the empirical band", got)
	}
	if got := m.CubeLawSteady(0, 10000); got != m.AmbientC {
		t.Fatalf("cube law at 0 RPM = %v, want ambient", got)
	}
	if got := m.CubeLawSteady(5000, 0); got != m.AmbientC {
		t.Fatalf("cube law with zero rpmHigh = %v, want ambient", got)
	}
}

func TestConstantSpeedStaysAtSteady(t *testing.T) {
	tr := NewTracker(Default(), diskmodel.High)
	for _, now := range []float64{0, 10, 1000, 86400} {
		if got := tr.TempAt(now); math.Abs(got-50) > 1e-9 {
			t.Fatalf("TempAt(%v) = %v, want 50", now, got)
		}
	}
	if got := tr.MeanTemp(86400); math.Abs(got-50) > 1e-9 {
		t.Fatalf("MeanTemp = %v, want 50", got)
	}
}

func TestRelaxationTowardNewSteady(t *testing.T) {
	m := Default()
	tr := NewTracker(m, diskmodel.High)
	tr.SetSpeed(0, diskmodel.Low)
	// After one time constant: 50 - 10*(1-1/e) ≈ 43.68.
	got := tr.TempAt(m.TimeConstant)
	want := 40 + 10*math.Exp(-1)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("TempAt(τ) = %v, want %v", got, want)
	}
	// After many time constants the disk is at the low steady state.
	if got := tr.TempAt(50 * m.TimeConstant); math.Abs(got-40) > 1e-6 {
		t.Fatalf("TempAt(50τ) = %v, want ≈40", got)
	}
}

func TestSettleWithin48Minutes(t *testing.T) {
	// The calibration claim: a speed change settles to within 5% of the
	// gap in about 48 minutes (3τ).
	m := Default()
	tr := NewTracker(m, diskmodel.Low)
	tr.SetSpeed(0, diskmodel.High)
	got := tr.TempAt(48 * 60)
	if math.Abs(got-50) > 0.05*10 {
		t.Fatalf("temp after 48 min = %v, want within 0.5 of 50", got)
	}
}

func TestMeanTempBetweenExtremes(t *testing.T) {
	m := Default()
	tr := NewTracker(m, diskmodel.High)
	tr.SetSpeed(1000, diskmodel.Low)
	mean := tr.MeanTemp(20000)
	if mean <= 40 || mean >= 50 {
		t.Fatalf("MeanTemp = %v, want strictly inside (40,50)", mean)
	}
}

func TestMeanTempAtZero(t *testing.T) {
	tr := NewTracker(Default(), diskmodel.Low)
	if got := tr.MeanTemp(0); got != 40 {
		t.Fatalf("MeanTemp(0) = %v, want 40", got)
	}
}

func TestMaxTemp(t *testing.T) {
	m := Default()
	tr := NewTracker(m, diskmodel.Low)
	if got := tr.MaxTemp(100); got != 40 {
		t.Fatalf("MaxTemp at low = %v, want 40", got)
	}
	tr.SetSpeed(100, diskmodel.High)
	got := tr.MaxTemp(100 + 10*m.TimeConstant)
	if math.Abs(got-50) > 1e-3 {
		t.Fatalf("MaxTemp after long high period = %v, want ≈50", got)
	}
	// Dropping back to low does not reduce the recorded max.
	tr.SetSpeed(100+10*m.TimeConstant, diskmodel.Low)
	if tr.MaxTemp(1e6) < got {
		t.Fatal("MaxTemp decreased")
	}
}

func TestTimeReversalPanics(t *testing.T) {
	tr := NewTracker(Default(), diskmodel.High)
	tr.TempAt(100)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on time reversal")
		}
	}()
	tr.TempAt(50)
}

// Property: temperature always stays within [LowSteadyC, HighSteadyC] for
// any schedule of speed changes, and the mean is within the same band.
func TestPropertyTemperatureBounded(t *testing.T) {
	m := Default()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		speeds := []diskmodel.Speed{diskmodel.Low, diskmodel.High}
		tr := NewTracker(m, speeds[rng.Intn(2)])
		clock := 0.0
		for i := 0; i < 40; i++ {
			clock += rng.Float64() * 4000
			temp := tr.TempAt(clock)
			if temp < m.LowSteadyC-1e-9 || temp > m.HighSteadyC+1e-9 {
				return false
			}
			tr.SetSpeed(clock, speeds[rng.Intn(2)])
		}
		mean := tr.MeanTemp(clock + 1)
		return mean >= m.LowSteadyC-1e-9 && mean <= m.HighSteadyC+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the integral is additive — querying MeanTemp at intermediate
// points does not change the final mean.
func TestPropertyIntegralAdditive(t *testing.T) {
	m := Default()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewTracker(m, diskmodel.High)
		b := NewTracker(m, diskmodel.High)
		clock := 0.0
		for i := 0; i < 20; i++ {
			clock += rng.Float64() * 2000
			s := diskmodel.Speed(rng.Intn(2))
			a.SetSpeed(clock, s)
			b.SetSpeed(clock, s)
			// Interrogate a mid-run; b only at the end.
			a.MeanTemp(clock)
			a.TempAt(clock)
		}
		end := clock + 500
		return math.Abs(a.MeanTemp(end)-b.MeanTemp(end)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

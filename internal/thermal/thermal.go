// Package thermal models disk operating temperature as a function of
// spindle speed.
//
// The paper (§3.2) argues that once drive geometry and materials are fixed,
// RPM dominates operating temperature because heat dissipation grows with
// nearly the cube of RPM, and settles on two operating points for the
// two-speed disk: [35,40) °C at 3,600 RPM and [45,50) °C at 10,000 RPM, with
// the PRESS evaluation using the range tops — 40 °C for low speed and 50 °C
// for high speed. Gurumurthi et al. (ISCA'05) report a Cheetah reaching its
// thermal steady state after roughly 48 minutes, which calibrates the
// relaxation time constant used here.
//
// The package provides both the static speed→temperature mapping the paper
// uses in its model figures and a first-order exponential relaxation tracker
// that produces the time-weighted mean operating temperature of a disk whose
// speed changes during a simulation.
package thermal

import (
	"errors"
	"math"

	"repro/internal/diskmodel"
)

// Model holds the thermal constants of one drive bay.
type Model struct {
	// AmbientC is the machine-room ambient temperature (paper: 28 °C).
	AmbientC float64
	// LowSteadyC is the steady-state operating temperature at low speed
	// (paper: 40 °C, top of the [35,40) band).
	LowSteadyC float64
	// HighSteadyC is the steady-state operating temperature at high speed
	// (paper: 50 °C, top of the [45,50) band).
	HighSteadyC float64
	// TimeConstant is the first-order relaxation constant in seconds.
	// Settling (≈3τ) in 48 minutes gives τ ≈ 960 s.
	TimeConstant float64
}

// Default returns the paper's thermal operating points.
func Default() Model {
	return Model{
		AmbientC:     28,
		LowSteadyC:   40,
		HighSteadyC:  50,
		TimeConstant: 960,
	}
}

// Validate reports the first implausibility in the model constants.
func (m Model) Validate() error {
	switch {
	case m.TimeConstant <= 0:
		return errors.New("thermal: time constant must be positive")
	case m.LowSteadyC >= m.HighSteadyC:
		return errors.New("thermal: low-speed steady temperature must be below high-speed")
	case m.AmbientC > m.LowSteadyC:
		return errors.New("thermal: ambient above low-speed steady temperature")
	}
	return nil
}

// Steady returns the steady-state operating temperature at speed s.
func (m Model) Steady(s diskmodel.Speed) float64 {
	if s == diskmodel.High {
		return m.HighSteadyC
	}
	return m.LowSteadyC
}

// CubeLawSteady returns the steady-state temperature predicted by the pure
// cube-law argument calibrated at the high-speed point: rise above ambient
// proportional to RPM³. It documents why the paper's empirically reported
// low-speed band sits well above the naive cube-law value (enclosure and
// electronics heating dominate at low RPM) and is provided for analysis, not
// used by the simulator.
func (m Model) CubeLawSteady(rpm, rpmHigh float64) float64 {
	if rpmHigh <= 0 {
		return m.AmbientC
	}
	k := (m.HighSteadyC - m.AmbientC) / (rpmHigh * rpmHigh * rpmHigh)
	return m.AmbientC + k*rpm*rpm*rpm
}

// Tracker integrates the operating temperature of one disk over virtual
// time. Methods must be called with non-decreasing timestamps.
type Tracker struct {
	model    Model
	tempC    float64 // temperature at lastTime
	steadyC  float64 // current relaxation target
	lastTime float64
	integral float64 // ∫ temp dt from 0 to lastTime
	maxC     float64
}

// NewTracker returns a tracker for a disk that has been running at the given
// speed long enough to be at its steady-state temperature at time zero.
func NewTracker(m Model, initial diskmodel.Speed) *Tracker {
	t0 := m.Steady(initial)
	return &Tracker{model: m, tempC: t0, steadyC: t0, maxC: t0}
}

// advance integrates temperature up to now under the current target.
func (tr *Tracker) advance(now float64) {
	dt := now - tr.lastTime
	if dt < 0 {
		panic("thermal: time moved backwards")
	}
	if dt == 0 {
		return
	}
	tau := tr.model.TimeConstant
	decay := math.Exp(-dt / tau)
	// ∫[0,dt] (S + (T0-S)e^(-u/τ)) du = S·dt + (T0-S)·τ·(1-e^(-dt/τ))
	tr.integral += tr.steadyC*dt + (tr.tempC-tr.steadyC)*tau*(1-decay)
	tr.tempC = tr.steadyC + (tr.tempC-tr.steadyC)*decay
	if tr.tempC > tr.maxC {
		tr.maxC = tr.tempC
	}
	tr.lastTime = now
}

// SetSpeed records a spindle-speed change at time now; the temperature
// begins relaxing toward the new steady state.
func (tr *Tracker) SetSpeed(now float64, s diskmodel.Speed) {
	tr.advance(now)
	tr.steadyC = tr.model.Steady(s)
	if tr.steadyC > tr.maxC {
		// Target above current max: max will be approached asymptotically;
		// it is updated as time advances, not here.
		_ = tr.steadyC
	}
}

// TempAt returns the instantaneous temperature at time now.
func (tr *Tracker) TempAt(now float64) float64 {
	tr.advance(now)
	return tr.tempC
}

// MeanTemp returns the time-weighted mean operating temperature over [0,
// now]. For now == 0 it returns the initial temperature.
func (tr *Tracker) MeanTemp(now float64) float64 {
	tr.advance(now)
	if now <= 0 {
		return tr.tempC
	}
	return tr.integral / now
}

// MaxTemp returns the maximum temperature reached through time now.
func (tr *Tracker) MaxTemp(now float64) float64 {
	tr.advance(now)
	return tr.maxC
}

// Checkpoint is the complete serializable state of a Tracker (the model
// constants are configuration and travel separately). Raw fields are copied
// without committing the pending integration interval, preserving the exact
// floating-point summation order of later advances across a restore.
//
//simlint:checkpoint-for Tracker ignore=model
type Checkpoint struct {
	TempC    float64 `json:"temp_c"`
	SteadyC  float64 `json:"steady_c"`
	LastTime float64 `json:"last_time"`
	Integral float64 `json:"integral"`
	MaxC     float64 `json:"max_c"`
}

// Checkpoint captures the tracker's raw state without mutating it.
func (tr *Tracker) Checkpoint() Checkpoint {
	return Checkpoint{
		TempC:    tr.tempC,
		SteadyC:  tr.steadyC,
		LastTime: tr.lastTime,
		Integral: tr.integral,
		MaxC:     tr.maxC,
	}
}

// RestoreTracker reconstructs a tracker from a checkpoint under model m.
func RestoreTracker(m Model, c Checkpoint) *Tracker {
	return &Tracker{
		model:    m,
		tempC:    c.TempC,
		steadyC:  c.SteadyC,
		lastTime: c.LastTime,
		integral: c.Integral,
		maxC:     c.MaxC,
	}
}

// PeekMeanTemp returns the time-weighted mean operating temperature over
// [0, now] WITHOUT advancing the tracker. MeanTemp commits the pending
// interval into the running integral, which changes the floating-point
// summation order of later advances; telemetry sampling uses this pure
// variant so that reading the temperature mid-run cannot perturb the
// simulation's results.
func (tr *Tracker) PeekMeanTemp(now float64) float64 {
	dt := now - tr.lastTime
	if dt < 0 {
		panic("thermal: time moved backwards")
	}
	if now <= 0 {
		return tr.tempC
	}
	integral := tr.integral
	if dt > 0 {
		tau := tr.model.TimeConstant
		integral += tr.steadyC*dt + (tr.tempC-tr.steadyC)*tau*(1-math.Exp(-dt/tau))
	}
	return integral / now
}

package reliability

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestFactorsValidate(t *testing.T) {
	good := Factors{TempC: 45, Utilization: 0.5, TransitionsPerDay: 10}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid factors rejected: %v", err)
	}
	bad := []Factors{
		{TempC: -300, Utilization: 0.5},
		{TempC: math.NaN(), Utilization: 0.5},
		{TempC: 40, Utilization: -0.1},
		{TempC: 40, Utilization: 1.1},
		{TempC: 40, Utilization: math.NaN()},
		{TempC: 40, Utilization: 0.5, TransitionsPerDay: -1},
		{TempC: 40, Utilization: 0.5, TransitionsPerDay: math.NaN()},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("case %d: invalid factors accepted: %+v", i, f)
		}
	}
}

func TestDiskAFRRejectsInvalid(t *testing.T) {
	m := NewModel()
	if _, err := m.DiskAFR(Factors{TempC: 40, Utilization: 2}); err == nil {
		t.Fatal("invalid factors accepted by DiskAFR")
	}
}

func TestDiskAFRSharedBaseline(t *testing.T) {
	m := NewModel()
	f := Factors{TempC: 40, Utilization: 0.625, TransitionsPerDay: 0}
	got, err := m.DiskAFR(f)
	if err != nil {
		t.Fatal(err)
	}
	// TempAFR(40)=8.5, UtilAFR(0.625)=5.0, baseline=4.5, freq≈0.139.
	want := 8.5 + 5.0 - 4.5 + m.FreqAFR(0)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("DiskAFR = %v, want %v", got, want)
	}
}

func TestIntegrationModes(t *testing.T) {
	f := Factors{TempC: 50, Utilization: 0.875, TransitionsPerDay: 100}
	base := NewModel()
	temp, util, freq := base.TempAFR(50), base.UtilAFR(0.875), base.FreqAFR(100)

	cases := []struct {
		mode IntegrationMode
		want float64
	}{
		{SharedBaseline, temp + util - 4.5 + freq},
		{MaxFactor, math.Max(temp, util) + freq},
		{MeanFactor, (temp+util)/2 + freq},
	}
	for _, tc := range cases {
		m := NewModel(WithIntegrationMode(tc.mode))
		got, err := m.DiskAFR(f)
		if err != nil {
			t.Fatalf("%v: %v", tc.mode, err)
		}
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("%v: DiskAFR = %v, want %v", tc.mode, got, tc.want)
		}
	}
}

func TestIntegrationModeString(t *testing.T) {
	if SharedBaseline.String() != "shared-baseline" ||
		MaxFactor.String() != "max-factor" ||
		MeanFactor.String() != "mean-factor" {
		t.Fatal("mode String mismatch")
	}
	if !strings.Contains(IntegrationMode(42).String(), "42") {
		t.Fatal("unknown mode String mismatch")
	}
}

func TestUnknownIntegrationModeErrors(t *testing.T) {
	m := NewModel(WithIntegrationMode(IntegrationMode(42)))
	if _, err := m.DiskAFR(Factors{TempC: 40, Utilization: 0.5}); err == nil {
		t.Fatal("unknown integration mode accepted")
	}
}

func TestArrayAFRIsWorstDisk(t *testing.T) {
	m := NewModel()
	disks := []Factors{
		{TempC: 40, Utilization: 0.3, TransitionsPerDay: 5},
		{TempC: 50, Utilization: 0.9, TransitionsPerDay: 400}, // the workhorse
		{TempC: 40, Utilization: 0.4, TransitionsPerDay: 2},
	}
	got, err := m.ArrayAFR(disks)
	if err != nil {
		t.Fatal(err)
	}
	worst, err := m.DiskAFR(disks[1])
	if err != nil {
		t.Fatal(err)
	}
	if got != worst {
		t.Fatalf("ArrayAFR = %v, want worst disk %v", got, worst)
	}
}

func TestArrayAFREmpty(t *testing.T) {
	if _, err := NewModel().ArrayAFR(nil); err == nil {
		t.Fatal("empty array accepted")
	}
}

func TestArrayAFRPropagatesDiskError(t *testing.T) {
	_, err := NewModel().ArrayAFR([]Factors{{TempC: 40, Utilization: 5}})
	if err == nil {
		t.Fatal("invalid disk accepted")
	}
	if !strings.Contains(err.Error(), "disk 0") {
		t.Fatalf("error lacks disk index: %v", err)
	}
}

func TestHotterSurfaceDominates(t *testing.T) {
	// Figure 5b (50 °C) lies strictly above Figure 5a (40 °C) pointwise.
	m := NewModel()
	a, err := m.Surface(40, 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Surface(50, 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) != 54 {
		t.Fatalf("surface sizes %d, %d", len(a), len(b))
	}
	for i := range a {
		if b[i].AFR <= a[i].AFR {
			t.Fatalf("point %d: 50°C surface (%v) not above 40°C surface (%v)",
				i, b[i].AFR, a[i].AFR)
		}
	}
}

func TestSurfaceMonotoneInEachFactor(t *testing.T) {
	m := NewModel()
	pts, err := m.Surface(40, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Rows are utilization-major: for fixed utilization, AFR must be
	// non-decreasing in frequency beyond the tiny fit vertex.
	const freqSteps = 5
	for r := 0; r < 4; r++ {
		row := pts[r*freqSteps : (r+1)*freqSteps]
		for j := 1; j < len(row); j++ {
			if row[j].AFR < row[j-1].AFR-1e-9 {
				t.Fatalf("AFR decreases in frequency at util %v", row[j].Utilization)
			}
		}
	}
}

func TestSurfaceValidation(t *testing.T) {
	m := NewModel()
	if _, err := m.Surface(40, 1, 5); err == nil {
		t.Fatal("degenerate utilSteps accepted")
	}
	if _, err := m.Surface(40, 5, 1); err == nil {
		t.Fatal("degenerate freqSteps accepted")
	}
}

func TestModelOptions(t *testing.T) {
	flat := MustCurve([]float64{0, 100}, []float64{1, 1})
	q := FreqQuadratic{A2: 0, A1: 0, A0: 0.25, MaxPerDay: 100}
	m := NewModel(WithTempCurve(flat), WithUtilCurve(flat), WithFreqFunction(q))
	got, err := m.DiskAFR(Factors{TempC: 40, Utilization: 0.5, TransitionsPerDay: 10})
	if err != nil {
		t.Fatal(err)
	}
	// 1 + 1 - 1 (baseline of flat curve) + 0.25
	if math.Abs(got-1.25) > 1e-12 {
		t.Fatalf("DiskAFR with custom curves = %v, want 1.25", got)
	}
	if m.FreqFunction() != q {
		t.Fatal("FreqFunction accessor mismatch")
	}
	if m.Mode() != SharedBaseline {
		t.Fatal("default mode mismatch")
	}
}

// The paper's §3.5 factor ranking: over each factor's plausible operating
// range, frequency moves AFR the most, temperature second, utilization least.
func TestFactorSignificanceRanking(t *testing.T) {
	m := NewModel()
	freqSpread := m.FreqAFR(1600) - m.FreqAFR(0)
	tempSpread := m.TempAFR(50) - m.TempAFR(35)
	utilSpread := m.UtilAFR(1.0) - m.UtilAFR(0.5)
	if !(freqSpread > tempSpread && tempSpread > utilSpread) {
		t.Fatalf("factor ranking violated: freq=%v temp=%v util=%v",
			freqSpread, tempSpread, utilSpread)
	}
}

// Property: DiskAFR is monotone non-decreasing in every factor, in every
// integration mode.
func TestPropertyDiskAFRMonotone(t *testing.T) {
	for _, mode := range []IntegrationMode{SharedBaseline, MaxFactor, MeanFactor} {
		m := NewModel(WithIntegrationMode(mode))
		f := func(t1, t2, u1, u2, f1, f2 float64) bool {
			clampT := func(x float64) float64 { return 20 + math.Mod(math.Abs(x), 30) }
			clampU := func(x float64) float64 { return math.Mod(math.Abs(x), 1) }
			clampF := func(x float64) float64 { return math.Mod(math.Abs(x), 1600) }
			lo := Factors{
				TempC:             math.Min(clampT(t1), clampT(t2)),
				Utilization:       math.Min(clampU(u1), clampU(u2)),
				TransitionsPerDay: math.Max(4, math.Min(clampF(f1), clampF(f2))),
			}
			hi := Factors{
				TempC:             math.Max(clampT(t1), clampT(t2)),
				Utilization:       math.Max(clampU(u1), clampU(u2)),
				TransitionsPerDay: math.Max(4, math.Max(clampF(f1), clampF(f2))),
			}
			a, err1 := m.DiskAFR(lo)
			b, err2 := m.DiskAFR(hi)
			if err1 != nil || err2 != nil {
				return false
			}
			return b >= a-1e-9
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
	}
}

// Property: ArrayAFR is permutation-invariant and >= every member's AFR.
func TestPropertyArrayAFRIsMax(t *testing.T) {
	m := NewModel()
	f := func(seeds []uint8) bool {
		if len(seeds) == 0 {
			return true
		}
		if len(seeds) > 16 {
			seeds = seeds[:16]
		}
		var disks []Factors
		for _, s := range seeds {
			disks = append(disks, Factors{
				TempC:             30 + float64(s%20),
				Utilization:       float64(s%100) / 100,
				TransitionsPerDay: float64(s) * 2,
			})
		}
		arr, err := m.ArrayAFR(disks)
		if err != nil {
			return false
		}
		for _, d := range disks {
			afr, err := m.DiskAFR(d)
			if err != nil || afr > arr {
				return false
			}
		}
		// Reversed order gives the same result.
		rev := make([]Factors, len(disks))
		for i, d := range disks {
			rev[len(disks)-1-i] = d
		}
		arr2, err := m.ArrayAFR(rev)
		return err == nil && arr2 == arr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Package reliability implements PRESS — the Predictor of Reliability for
// Energy-Saving Schemes (Xie & Sun, IPPS'08 §3).
//
// PRESS maps the three energy-saving-related reliability-affecting (ESRRA)
// factors of a disk — operating temperature, utilization, and daily speed-
// transition frequency — to an Annualized Failure Rate (AFR, expressed in
// percent throughout this package), and integrates per-disk AFRs into a
// single array-level figure: the AFR of the least reliable disk.
package reliability

import (
	"errors"
	"math"
)

// BoltzmannEV is the Boltzmann constant in eV/K as used by the paper
// (§3.4, Equation 2).
const BoltzmannEV = 8.617e-5

// KelvinOffset converts Celsius to Kelvin per the paper (273.16 + °C).
const KelvinOffset = 273.16

// Arrhenius evaluates G(T) = A·exp(−Ea/(K·T)) (paper Equation 2) at the
// given temperature in Celsius. scaleA is the constant scaling factor A,
// eaEV the activation energy in eV.
func Arrhenius(scaleA, eaEV, tempC float64) float64 {
	return scaleA * math.Exp(-eaEV/(BoltzmannEV*(tempC+KelvinOffset)))
}

// CoffinManson holds the constants of the modified Coffin–Manson model
// (paper Equation 1): Nf = A0 · f^α · ΔT^(−β) · G(Tmax).
type CoffinManson struct {
	// Alpha is the cycling-frequency exponent (paper: ≈ −1/3).
	Alpha float64
	// Beta is the temperature-range exponent (paper: ≈ 2).
	Beta float64
	// EaEV is the activation energy in eV (paper: 1.25).
	EaEV float64
}

// DefaultCoffinManson returns the constants the paper uses.
func DefaultCoffinManson() CoffinManson {
	return CoffinManson{Alpha: -1.0 / 3.0, Beta: 2, EaEV: 1.25}
}

// effFreq converts a cycles-per-day rate into the effective cycling
// frequency the paper plugs into Equation 1. Reproducing the paper's
// published constants (A·A0 = 2.564317e26 from Nf = 50,000, 25 cycles/day,
// ΔT = 22 °C, Tmax = 50 °C) requires f = 1/cyclesPerDay; plugging the raw
// per-day count in gives a value ~8.5× larger. We follow the paper's
// arithmetic so its downstream numbers (N′f = 118,529 and the 65/day
// transition budget) are reproduced.
func effFreq(cyclesPerDay float64) float64 { return 1 / cyclesPerDay }

// CyclesToFailure evaluates Equation 1: the number of temperature cycles to
// failure given the combined material constant product A·A0, the cycling
// rate in cycles/day, the per-cycle temperature swing ΔT in °C, and the
// maximum temperature reached in each cycle.
func (cm CoffinManson) CyclesToFailure(aa0, cyclesPerDay, deltaTC, tmaxC float64) (float64, error) {
	if aa0 <= 0 || cyclesPerDay <= 0 || deltaTC <= 0 {
		return 0, errors.New("reliability: CoffinManson inputs must be positive")
	}
	g := Arrhenius(1, cm.EaEV, tmaxC)
	return aa0 * math.Pow(effFreq(cyclesPerDay), cm.Alpha) * math.Pow(deltaTC, -cm.Beta) * g, nil
}

// SolveAA0 inverts Equation 1 for the material-constant product A·A0 given
// a known cycles-to-failure rating.
func (cm CoffinManson) SolveAA0(cyclesToFailure, cyclesPerDay, deltaTC, tmaxC float64) (float64, error) {
	if cyclesToFailure <= 0 || cyclesPerDay <= 0 || deltaTC <= 0 {
		return 0, errors.New("reliability: CoffinManson inputs must be positive")
	}
	g := Arrhenius(1, cm.EaEV, tmaxC)
	denom := math.Pow(effFreq(cyclesPerDay), cm.Alpha) * math.Pow(deltaTC, -cm.Beta) * g
	return cyclesToFailure / denom, nil
}

// Derivation reproduces the paper's §3.4 chain of constants.
type Derivation struct {
	// GTmax is exp(−Ea/(K·Tmax)) at Tmax = 50 °C, i.e. G(Tmax)/A.
	// Paper: 3.2275e−20.
	GTmax float64
	// AA0 is the material-constant product. Paper: 2.564317e26.
	AA0 float64
	// TransitionsToFailure is N′f, the speed-transition analogue of the
	// 50,000 power-cycle rating. Paper: 118,529.
	TransitionsToFailure float64
	// TransitionToCycleRatio is N′f / Nf; the paper reads its value of
	// ≈2 as "a speed transition causes about 50% of the reliability
	// effect of a spindle start/stop".
	TransitionToCycleRatio float64
	// DailyBudget5yr is the transitions/day that exhaust N′f in exactly
	// five years. Paper: 65 (118529/5/365 ≈ 65).
	DailyBudget5yr float64
}

// Paper-anchored derivation inputs (§3.4).
const (
	// RatedPowerCycles is the datasheet start/stop cycle rating Nf.
	RatedPowerCycles = 50000
	// SuggestedDailyPowerCycles is the manufacturer-suggested power-cycle
	// cap used as the cycling rate in the derivation.
	SuggestedDailyPowerCycles = 25
	// PowerCycleDeltaT is ΔT for a full power cycle: ambient 28 °C to
	// the 50 °C high-speed operating point.
	PowerCycleDeltaT = 22
	// PowerCycleTmax is the maximum temperature in a power cycle.
	PowerCycleTmax = 50
	// TransitionDeltaT is ΔT for a speed transition: the 10 °C gap
	// between the low-speed and high-speed temperature bands.
	TransitionDeltaT = 10
	// TransitionTmax is the midway temperature (45 °C) used because a
	// transition is bi-directional.
	TransitionTmax = 45
	// WarrantyYears is the performance-warranty horizon for the daily
	// transition budget.
	WarrantyYears = 5
)

// Derive runs the paper's §3.4 derivation with the receiver's constants.
func (cm CoffinManson) Derive() Derivation {
	g := Arrhenius(1, cm.EaEV, PowerCycleTmax)
	aa0, err := cm.SolveAA0(RatedPowerCycles, SuggestedDailyPowerCycles, PowerCycleDeltaT, PowerCycleTmax)
	if err != nil {
		// Unreachable with the package constants; fail loudly if someone
		// breaks them.
		panic(err)
	}
	nft, err := cm.CyclesToFailure(aa0, SuggestedDailyPowerCycles, TransitionDeltaT, TransitionTmax)
	if err != nil {
		panic(err)
	}
	return Derivation{
		GTmax:                  g,
		AA0:                    aa0,
		TransitionsToFailure:   nft,
		TransitionToCycleRatio: nft / RatedPowerCycles,
		DailyBudget5yr:         nft / (WarrantyYears * 365),
	}
}

package reliability

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultWeibullCalibration(t *testing.T) {
	w := DefaultWeibull()
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	afr, err := w.AFRPercent(0)
	if err != nil {
		t.Fatal(err)
	}
	// First-year AFR inside the Schroeder/Gibson 2-4% field band.
	if afr < 2 || afr > 4 {
		t.Fatalf("first-year AFR = %v%%, want 2-4%%", afr)
	}
	mtbf, err := w.MTBFHours()
	if err != nil {
		t.Fatal(err)
	}
	// Far below the "1M hours" datasheet claim the paper criticizes.
	if mtbf >= 1e6 {
		t.Fatalf("MTBF %v implausibly datasheet-like", mtbf)
	}
	if mtbf < 1e5 {
		t.Fatalf("MTBF %v implausibly low", mtbf)
	}
}

func TestWeibullValidation(t *testing.T) {
	for _, w := range []Weibull{{0, 1000}, {1, 0}, {-1, 100}, {math.NaN(), 100}} {
		if w.Validate() == nil {
			t.Errorf("invalid %+v accepted", w)
		}
	}
	good := DefaultWeibull()
	if _, err := good.AFRPercent(-1); err == nil {
		t.Error("negative age accepted")
	}
}

func TestWeibullSurvivalShape(t *testing.T) {
	w := DefaultWeibull()
	if w.Survival(0) != 1 {
		t.Fatal("S(0) != 1")
	}
	if w.Survival(-5) != 1 {
		t.Fatal("negative age survival != 1")
	}
	prev := 1.0
	for h := 1000.0; h < 2e6; h *= 2 {
		s := w.Survival(h)
		if s >= prev {
			t.Fatalf("survival not strictly decreasing at %v", h)
		}
		prev = s
	}
}

func TestWeibullWearOutAFRGrows(t *testing.T) {
	w := DefaultWeibull() // beta > 1: AFR grows with age
	prev := -1.0
	for age := 0.0; age <= 5; age++ {
		afr, err := w.AFRPercent(age)
		if err != nil {
			t.Fatal(err)
		}
		if afr <= prev {
			t.Fatalf("wear-out AFR not increasing at age %v: %v <= %v", age, afr, prev)
		}
		prev = afr
	}
	// Infant-mortality regime: beta < 1 means decreasing AFR.
	im := Weibull{Shape: 0.7, ScaleHours: 310000}
	a0, _ := im.AFRPercent(0)
	a3, _ := im.AFRPercent(3)
	if a3 >= a0 {
		t.Fatalf("infant-mortality AFR should fall with age: %v -> %v", a0, a3)
	}
}

func TestWeibullHazard(t *testing.T) {
	w := Weibull{Shape: 1, ScaleHours: 100000}
	// beta=1 is exponential: constant hazard 1/eta.
	for _, h := range []float64{1, 1000, 500000} {
		if math.Abs(w.HazardPerHour(h)-1e-5) > 1e-12 {
			t.Fatalf("exponential hazard at %v = %v", h, w.HazardPerHour(h))
		}
	}
	if !math.IsInf((Weibull{Shape: 0.5, ScaleHours: 1000}).HazardPerHour(0), 1) {
		t.Fatal("infant-mortality hazard at t=0 should diverge")
	}
	if (Weibull{Shape: 2, ScaleHours: 1000}).HazardPerHour(-5) != 0 {
		t.Fatal("negative age hazard should clamp to t=0 behaviour")
	}
}

func TestWeibullMTBFExponentialCase(t *testing.T) {
	w := Weibull{Shape: 1, ScaleHours: 123456}
	mtbf, err := w.MTBFHours()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mtbf-123456) > 1e-6 {
		t.Fatalf("exponential MTBF = %v, want eta", mtbf)
	}
}

func TestFitScaleForAFR(t *testing.T) {
	w := Weibull{Shape: 1.1}
	fitted, err := Weibull{Shape: 1.1, ScaleHours: 1}.FitScaleForAFR(3)
	if err != nil {
		t.Fatal(err)
	}
	afr, err := fitted.AFRPercent(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(afr-3) > 1e-9 {
		t.Fatalf("fitted first-year AFR = %v, want 3", afr)
	}
	if _, err := w.FitScaleForAFR(3); err == nil {
		t.Fatal("invalid receiver accepted")
	}
	if _, err := fitted.FitScaleForAFR(0); err == nil {
		t.Fatal("zero target accepted")
	}
	if _, err := fitted.FitScaleForAFR(100); err == nil {
		t.Fatal("100% target accepted")
	}
}

// Property: AFR is always within [0,100] and survival within [0,1].
func TestPropertyWeibullBounds(t *testing.T) {
	f := func(shapeRaw, scaleRaw, ageRaw float64) bool {
		w := Weibull{
			Shape:      0.3 + math.Mod(math.Abs(shapeRaw), 3),
			ScaleHours: 1000 + math.Mod(math.Abs(scaleRaw), 1e6),
		}
		age := math.Mod(math.Abs(ageRaw), 20)
		if math.IsNaN(w.Shape) || math.IsNaN(w.ScaleHours) || math.IsNaN(age) {
			return true
		}
		afr, err := w.AFRPercent(age)
		if err != nil {
			return false
		}
		s := w.Survival(age * 8760)
		return afr >= 0 && afr <= 100 && s >= 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

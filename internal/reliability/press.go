package reliability

import (
	"errors"
	"fmt"
	"math"
)

// Factors are the three ESRRA inputs for one disk.
type Factors struct {
	// TempC is the operating temperature in Celsius (time-weighted mean
	// over the evaluation window).
	TempC float64
	// Utilization is the active-time fraction in [0,1]. Values below the
	// empirical range [0.25, 1.0] are clamped by the utilization curve.
	Utilization float64
	// TransitionsPerDay is the average daily speed-transition frequency.
	TransitionsPerDay float64
}

// Validate reports the first out-of-physical-range factor.
func (f Factors) Validate() error {
	switch {
	case math.IsNaN(f.TempC) || f.TempC < -KelvinOffset:
		return fmt.Errorf("reliability: impossible temperature %v °C", f.TempC)
	case math.IsNaN(f.Utilization) || f.Utilization < 0 || f.Utilization > 1:
		return fmt.Errorf("reliability: utilization %v outside [0,1]", f.Utilization)
	case math.IsNaN(f.TransitionsPerDay) || f.TransitionsPerDay < 0:
		return fmt.Errorf("reliability: negative transition frequency %v", f.TransitionsPerDay)
	}
	return nil
}

// IntegrationMode selects how the reliability integrator combines the three
// per-factor AFR estimates into one per-disk AFR. The paper specifies the
// integrator's array-level behaviour (maximum over disks) but not the
// per-disk combination rule, so the model exposes the defensible choices.
type IntegrationMode int

const (
	// SharedBaseline (default) treats the temperature and utilization
	// curves as two views of the same drive population sharing one
	// baseline failure rate: AFR = TempAFR + UtilAFR − Baseline + FreqAdder.
	// Adding two absolute estimates double-counts the population baseline
	// once, so one copy is subtracted; the frequency term is an adder by
	// construction (IDEMA).
	SharedBaseline IntegrationMode = iota
	// MaxFactor takes the worst single environmental estimate plus the
	// frequency adder: AFR = max(TempAFR, UtilAFR) + FreqAdder.
	MaxFactor
	// MeanFactor averages the environmental estimates:
	// AFR = (TempAFR + UtilAFR)/2 + FreqAdder.
	MeanFactor
)

// String names the integration mode.
func (m IntegrationMode) String() string {
	switch m {
	case SharedBaseline:
		return "shared-baseline"
	case MaxFactor:
		return "max-factor"
	case MeanFactor:
		return "mean-factor"
	default:
		return fmt.Sprintf("IntegrationMode(%d)", int(m))
	}
}

// Model is the assembled PRESS model.
type Model struct {
	temp *Curve
	util *Curve
	freq FreqQuadratic
	mode IntegrationMode
	// baselineAFR is the population baseline subtracted once in
	// SharedBaseline mode; the minimum of the utilization curve (the
	// least-stressed measured population).
	baselineAFR float64
}

// Option configures a Model.
type Option func(*Model)

// WithIntegrationMode selects the per-disk combination rule.
func WithIntegrationMode(m IntegrationMode) Option {
	return func(p *Model) { p.mode = m }
}

// WithTempCurve replaces the temperature-reliability function.
func WithTempCurve(c *Curve) Option {
	return func(p *Model) { p.temp = c }
}

// WithUtilCurve replaces the utilization-reliability function and refreshes
// the shared baseline.
func WithUtilCurve(c *Curve) Option {
	return func(p *Model) {
		p.util = c
		p.baselineAFR = curveMin(c)
	}
}

// WithFreqFunction replaces the frequency-reliability quadratic.
func WithFreqFunction(q FreqQuadratic) Option {
	return func(p *Model) { p.freq = q }
}

func curveMin(c *Curve) float64 {
	min := math.Inf(1)
	for _, y := range c.ys {
		if y < min {
			min = y
		}
	}
	return min
}

// NewModel assembles PRESS with the paper's default functions.
func NewModel(opts ...Option) *Model {
	m := &Model{
		temp: TempCurve3yr(),
		util: UtilCurve4yr(),
		freq: DefaultFreqQuadratic(),
		mode: SharedBaseline,
	}
	m.baselineAFR = curveMin(m.util)
	for _, o := range opts {
		o(m)
	}
	return m
}

// TempAFR evaluates the temperature-reliability function alone.
func (m *Model) TempAFR(tempC float64) float64 { return m.temp.At(tempC) }

// UtilAFR evaluates the utilization-reliability function alone.
func (m *Model) UtilAFR(util float64) float64 { return m.util.At(util) }

// FreqAFR evaluates the frequency-reliability adder alone.
func (m *Model) FreqAFR(perDay float64) float64 { return m.freq.At(perDay) }

// FreqFunction returns the frequency quadratic in use.
func (m *Model) FreqFunction() FreqQuadratic { return m.freq }

// Mode returns the integration mode in use.
func (m *Model) Mode() IntegrationMode { return m.mode }

// DiskAFR estimates the AFR (percent) of a single disk from its factors.
func (m *Model) DiskAFR(f Factors) (float64, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	t := m.temp.At(f.TempC)
	u := m.util.At(f.Utilization)
	fr := m.freq.At(f.TransitionsPerDay)
	var afr float64
	switch m.mode {
	case SharedBaseline:
		afr = t + u - m.baselineAFR + fr
	case MaxFactor:
		afr = math.Max(t, u) + fr
	case MeanFactor:
		afr = (t+u)/2 + fr
	default:
		return 0, fmt.Errorf("reliability: unknown integration mode %v", m.mode)
	}
	if afr < 0 {
		afr = 0
	}
	return afr, nil
}

// SnapshotAFR is DiskAFR for instrumentation hot paths: instead of
// rejecting out-of-range factors it clamps them into the model's domain and
// never returns an error, so a mid-run telemetry sample (taken while the
// integrators are still warming up) always yields a usable AFR estimate.
// NaN factors clamp to the nearest domain edge.
func (m *Model) SnapshotAFR(f Factors) float64 {
	if math.IsNaN(f.TempC) || f.TempC < -KelvinOffset {
		f.TempC = -KelvinOffset
	}
	if math.IsNaN(f.Utilization) || f.Utilization < 0 {
		f.Utilization = 0
	} else if f.Utilization > 1 {
		f.Utilization = 1
	}
	if math.IsNaN(f.TransitionsPerDay) || f.TransitionsPerDay < 0 {
		f.TransitionsPerDay = 0
	}
	afr, err := m.DiskAFR(f)
	if err != nil {
		// Unreachable with clamped factors unless the model itself is
		// misconfigured; report "no estimate" rather than panicking in an
		// observability path.
		return math.NaN()
	}
	return afr
}

// ArrayAFR runs the reliability integrator's second function (§3.5): the AFR
// of a disk array is the AFR of its least reliable disk.
func (m *Model) ArrayAFR(disks []Factors) (float64, error) {
	if len(disks) == 0 {
		return 0, errors.New("reliability: empty disk array")
	}
	worst := math.Inf(-1)
	for i, f := range disks {
		afr, err := m.DiskAFR(f)
		if err != nil {
			return 0, fmt.Errorf("disk %d: %w", i, err)
		}
		if afr > worst {
			worst = afr
		}
	}
	return worst, nil
}

// SurfacePoint is one sample of the PRESS surface (paper Figures 5a/5b).
type SurfacePoint struct {
	Utilization       float64
	TransitionsPerDay float64
	AFR               float64
}

// Surface samples the PRESS model at a fixed temperature over the
// utilization × frequency grid, reproducing Figures 5a (40 °C) and 5b
// (50 °C). Both step counts must be at least 2.
func (m *Model) Surface(tempC float64, utilSteps, freqSteps int) ([]SurfacePoint, error) {
	if utilSteps < 2 || freqSteps < 2 {
		return nil, errors.New("reliability: surface needs at least 2 steps per axis")
	}
	const (
		utilLo, utilHi = 0.25, 1.0
		freqLo         = 0.0
	)
	freqHi := m.freq.MaxPerDay
	pts := make([]SurfacePoint, 0, utilSteps*freqSteps)
	for i := 0; i < utilSteps; i++ {
		u := utilLo + (utilHi-utilLo)*float64(i)/float64(utilSteps-1)
		for j := 0; j < freqSteps; j++ {
			fq := freqLo + (freqHi-freqLo)*float64(j)/float64(freqSteps-1)
			afr, err := m.DiskAFR(Factors{TempC: tempC, Utilization: u, TransitionsPerDay: fq})
			if err != nil {
				return nil, err
			}
			pts = append(pts, SurfacePoint{Utilization: u, TransitionsPerDay: fq, AFR: afr})
		}
	}
	return pts, nil
}

package reliability

import (
	"errors"
	"fmt"
	"sort"
)

// Curve is a piecewise-linear function given by sorted breakpoints. Inputs
// outside the breakpoint range are clamped to the nearest endpoint, matching
// how the paper's empirical curves are defined only on the measured range.
type Curve struct {
	xs []float64
	ys []float64
}

// NewCurve builds a piecewise-linear curve from breakpoints. The xs must be
// strictly increasing and at least two points are required.
func NewCurve(xs, ys []float64) (*Curve, error) {
	if len(xs) != len(ys) {
		return nil, errors.New("reliability: xs and ys length mismatch")
	}
	if len(xs) < 2 {
		return nil, errors.New("reliability: need at least two breakpoints")
	}
	if !sort.Float64sAreSorted(xs) {
		return nil, errors.New("reliability: breakpoints must be sorted")
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] == xs[i-1] {
			return nil, fmt.Errorf("reliability: duplicate breakpoint %v", xs[i])
		}
	}
	c := &Curve{xs: append([]float64(nil), xs...), ys: append([]float64(nil), ys...)}
	return c, nil
}

// MustCurve is NewCurve for package-internal literals; it panics on error.
func MustCurve(xs, ys []float64) *Curve {
	c, err := NewCurve(xs, ys)
	if err != nil {
		panic(err)
	}
	return c
}

// At evaluates the curve with endpoint clamping.
func (c *Curve) At(x float64) float64 {
	if x <= c.xs[0] {
		return c.ys[0]
	}
	n := len(c.xs)
	if x >= c.xs[n-1] {
		return c.ys[n-1]
	}
	i := sort.SearchFloat64s(c.xs, x)
	// xs[i-1] < x <= xs[i]
	x0, x1 := c.xs[i-1], c.xs[i]
	y0, y1 := c.ys[i-1], c.ys[i]
	return y0 + (y1-y0)*(x-x0)/(x1-x0)
}

// Domain returns the breakpoint range.
func (c *Curve) Domain() (lo, hi float64) { return c.xs[0], c.xs[len(c.xs)-1] }

// TempCurve3yr is the temperature-reliability function (paper Figure 2b):
// AFR% versus operating temperature, digitized from the 3-year-old drive
// series of Pinheiro et al. (FAST'07) Figure 5. The paper selects the
// 3-year-old series because it is the youngest group in which accumulated
// high-temperature damage has become visible as failures (§3.2).
//
// The breakpoints are a digitization of a published figure, so their third
// significant digit is approximate; every consumer in this repository
// depends only on the curve's shape (monotone rise, steepening above 35 °C).
func TempCurve3yr() *Curve {
	return MustCurve(
		[]float64{20, 25, 30, 35, 40, 45, 50},
		[]float64{3.5, 4.0, 4.5, 6.0, 8.5, 10.5, 13.0},
	)
}

// UtilCurve4yr is the utilization-reliability function (paper Figure 3b):
// AFR% versus utilization, digitized from the 4-year-old drive series of
// Pinheiro et al. (FAST'07) Figure 3. The paper maps the study's low /
// medium / high utilization classes onto [25%,50%), [50%,75%), [75%,100%]
// (§3.3); the breakpoints sit at the class centers.
func UtilCurve4yr() *Curve {
	return MustCurve(
		[]float64{0.375, 0.625, 0.875},
		[]float64{4.5, 5.0, 7.0},
	)
}

// FreqQuadratic holds the coefficients of the frequency-reliability function
// (paper Equation 3): the AFR percentage points added by f speed transitions
// per day, R(f) = A2·f² + A1·f + A0, valid on [0, MaxPerDay].
//
// The printed equation in the paper's PDF is typographically scrambled, so
// the default below is RECONSTRUCTED from the constraints the paper states
// in prose: (1) the function is half of the IDEMA spindle start/stop
// failure-rate adder ("a disk speed transition causes about 50% of the
// effect of a spindle start/stop"); (2) the IDEMA adder is 0.15 AFR points
// at 10 start/stops per day, which anchors the halved curve at
// R(10) = 0.075; (3) the curve is a quadratic fit extended to 1600/day; and
// (4) no transitions means no adder, R(0) = 0. The quadratic term is chosen
// so the domain end matches the magnitude of the candidate OCR readings
// (R(1600) ≈ 38). PaperEq3OCRQuadratic preserves the best literal reading
// of the scrambled equation for comparison; both are exported so either can
// be swapped in.
type FreqQuadratic struct {
	A2, A1, A0 float64
	// MaxPerDay is the fitted domain limit; inputs are clamped to
	// [0, MaxPerDay] (paper: f ∈ [0, 1600]).
	MaxPerDay float64
}

// DefaultFreqQuadratic returns the reconstructed Equation 3:
// R(f) = 1.0e-5·f² + 7.5e-3·f, f ∈ [0, 1600].
func DefaultFreqQuadratic() FreqQuadratic {
	return FreqQuadratic{A2: 1.0e-5, A1: 7.5e-3, A0: 0, MaxPerDay: 1600}
}

// PaperEq3OCRQuadratic returns the most plausible literal reading of the
// scrambled printed equation (R(f) = 1.51e-5·f² − 1.09e-4·f + 1.39e-1).
// Its adder is negligible below ~400 transitions/day, which contradicts the
// paper's own conclusion that 65/day is the safe budget — hence it is not
// the default.
func PaperEq3OCRQuadratic() FreqQuadratic {
	return FreqQuadratic{A2: 1.51e-5, A1: -1.09e-4, A0: 1.39e-1, MaxPerDay: 1600}
}

// At evaluates the frequency adder at f transitions/day, clamping to the
// fitted domain and flooring at zero (a fit can dip fractionally negative
// near the origin; a negative failure-rate adder is meaningless).
func (q FreqQuadratic) At(f float64) float64 {
	if f < 0 {
		f = 0
	}
	if q.MaxPerDay > 0 && f > q.MaxPerDay {
		f = q.MaxPerDay
	}
	r := q.A2*f*f + q.A1*f + q.A0
	if r < 0 {
		return 0
	}
	return r
}

// IDEMAAdderAt returns the un-halved spindle start/stop failure-rate adder
// (paper Figure 4a, converted to per-day units): the paper concludes a speed
// transition causes about half the reliability effect of a start/stop, so
// Figure 4b is Figure 4a scaled by 0.5.
func (q FreqQuadratic) IDEMAAdderAt(startStopsPerDay float64) float64 {
	return 2 * q.At(startStopsPerDay)
}

// SolveBudget returns the largest transitions/day f whose adder stays at or
// below the given AFR budget (in percentage points), searched on the fitted
// domain. It returns 0 if even f=0 exceeds the budget and MaxPerDay if the
// whole domain fits.
func (q FreqQuadratic) SolveBudget(afrBudget float64) float64 {
	if q.At(0) > afrBudget {
		return 0
	}
	lo, hi := 0.0, q.MaxPerDay
	if q.At(hi) <= afrBudget {
		return hi
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if q.At(mid) <= afrBudget {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// quadraticDomainMax reports where the default quadratic becomes monotone
// increasing; used only in tests.
func (q FreqQuadratic) vertex() float64 {
	if q.A2 == 0 {
		return 0
	}
	return -q.A1 / (2 * q.A2)
}

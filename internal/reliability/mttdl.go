package reliability

import (
	"errors"
	"math"
)

// Closed-form mean-time-to-data-loss approximations for the classic RAID
// organizations, under the standard Markov assumptions: exponential disk
// lifetimes with mean mttfHours, exponential repairs with mean mttrHours,
// and MTTR ≪ MTTF. These are the textbook formulas (Patterson/Gibson/Katz
// for RAID-5, Thomasian's tutorial for the general k-of-n forms) that the
// simulator's Monte-Carlo MTTDL estimates are validated against.

// MTTDLRaid5Hours returns MTTF²/(n(n−1)·MTTR) for an n-disk RAID-5 group:
// loss requires a second failure during the first failure's repair window.
func MTTDLRaid5Hours(n int, mttfHours, mttrHours float64) (float64, error) {
	if err := checkMTTDLArgs(n, 2, mttfHours, mttrHours); err != nil {
		return 0, err
	}
	nf := float64(n)
	return mttfHours * mttfHours / (nf * (nf - 1) * mttrHours), nil
}

// MTTDLRaid6Hours returns MTTF³/(n(n−1)(n−2)·MTTR²) for an n-disk RAID-6
// group: loss requires a third failure during two overlapping repairs.
func MTTDLRaid6Hours(n int, mttfHours, mttrHours float64) (float64, error) {
	if err := checkMTTDLArgs(n, 3, mttfHours, mttrHours); err != nil {
		return 0, err
	}
	nf := float64(n)
	return math.Pow(mttfHours, 3) / (nf * (nf - 1) * (nf - 2) * mttrHours * mttrHours), nil
}

// MTTDLReplicationHours returns MTTF^k/(k!·MTTR^(k−1)) for one k-way
// replica group: data survives until every copy is simultaneously down.
func MTTDLReplicationHours(k int, mttfHours, mttrHours float64) (float64, error) {
	if err := checkMTTDLArgs(k, 2, mttfHours, mttrHours); err != nil {
		return 0, err
	}
	fact := 1.0
	for i := 2; i <= k; i++ {
		fact *= float64(i)
	}
	return math.Pow(mttfHours, float64(k)) / (fact * math.Pow(mttrHours, float64(k-1))), nil
}

func checkMTTDLArgs(n, min int, mttfHours, mttrHours float64) error {
	switch {
	case n < min:
		return errors.New("reliability: too few disks for organization")
	case mttfHours <= 0 || math.IsNaN(mttfHours):
		return errors.New("reliability: MTTF must be positive")
	case mttrHours <= 0 || math.IsNaN(mttrHours):
		return errors.New("reliability: MTTR must be positive")
	}
	return nil
}

package reliability

import (
	"math"
	"testing"
)

// SnapshotAFR is the telemetry read path: in-range factors must agree with
// DiskAFR exactly, and out-of-range factors (a disk mid-warm-up, a rate
// extrapolated from zero elapsed time) are clamped rather than erroring —
// an observability read must never abort a run.
func TestSnapshotAFRMatchesDiskAFR(t *testing.T) {
	m := NewModel()
	for _, f := range []Factors{
		{TempC: 40, Utilization: 0.3, TransitionsPerDay: 10},
		{TempC: 50, Utilization: 0.9, TransitionsPerDay: 0},
		{TempC: 28, Utilization: 0, TransitionsPerDay: 65},
	} {
		want, err := m.DiskAFR(f)
		if err != nil {
			t.Fatalf("DiskAFR(%+v): %v", f, err)
		}
		if got := m.SnapshotAFR(f); got != want {
			t.Fatalf("SnapshotAFR(%+v) = %v, DiskAFR = %v", f, got, want)
		}
	}
}

func TestSnapshotAFRClampsOutOfRange(t *testing.T) {
	m := NewModel()
	cases := []struct {
		name    string
		in      Factors
		clamped Factors
	}{
		{"util above 1", Factors{TempC: 45, Utilization: 1.7, TransitionsPerDay: 5},
			Factors{TempC: 45, Utilization: 1, TransitionsPerDay: 5}},
		{"negative util", Factors{TempC: 45, Utilization: -0.2, TransitionsPerDay: 5},
			Factors{TempC: 45, Utilization: 0, TransitionsPerDay: 5}},
		{"negative rate", Factors{TempC: 45, Utilization: 0.5, TransitionsPerDay: -3},
			Factors{TempC: 45, Utilization: 0.5, TransitionsPerDay: 0}},
		{"NaN rate", Factors{TempC: 45, Utilization: 0.5, TransitionsPerDay: math.NaN()},
			Factors{TempC: 45, Utilization: 0.5, TransitionsPerDay: 0}},
		{"below absolute zero", Factors{TempC: -400, Utilization: 0.5, TransitionsPerDay: 5},
			Factors{TempC: -KelvinOffset, Utilization: 0.5, TransitionsPerDay: 5}},
	}
	for _, c := range cases {
		got := m.SnapshotAFR(c.in)
		if math.IsNaN(got) {
			t.Fatalf("%s: SnapshotAFR returned NaN", c.name)
		}
		want, err := m.DiskAFR(c.clamped)
		if err != nil {
			t.Fatalf("%s: DiskAFR(%+v): %v", c.name, c.clamped, err)
		}
		if got != want {
			t.Fatalf("%s: SnapshotAFR = %v, want clamped DiskAFR %v", c.name, got, want)
		}
	}
}

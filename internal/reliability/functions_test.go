package reliability

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewCurveValidation(t *testing.T) {
	if _, err := NewCurve([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewCurve([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := NewCurve([]float64{2, 1}, []float64{1, 2}); err == nil {
		t.Error("unsorted xs accepted")
	}
	if _, err := NewCurve([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("duplicate xs accepted")
	}
	if _, err := NewCurve([]float64{1, 2}, []float64{3, 4}); err != nil {
		t.Errorf("valid curve rejected: %v", err)
	}
}

func TestMustCurvePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCurve did not panic")
		}
	}()
	MustCurve([]float64{1}, []float64{1})
}

func TestCurveInterpolation(t *testing.T) {
	c := MustCurve([]float64{0, 10, 20}, []float64{0, 100, 0})
	cases := []struct{ x, want float64 }{
		{0, 0}, {5, 50}, {10, 100}, {15, 50}, {20, 0},
		{-5, 0}, // clamp low
		{25, 0}, // clamp high
		{2.5, 25},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCurveDomain(t *testing.T) {
	c := MustCurve([]float64{-3, 7}, []float64{1, 2})
	lo, hi := c.Domain()
	if lo != -3 || hi != 7 {
		t.Fatalf("Domain = (%v,%v), want (-3,7)", lo, hi)
	}
}

func TestTempCurveShape(t *testing.T) {
	c := TempCurve3yr()
	// Monotone non-decreasing across the measured range.
	prev := c.At(20)
	for temp := 21.0; temp <= 50; temp++ {
		cur := c.At(temp)
		if cur < prev {
			t.Fatalf("temperature curve decreases at %v °C", temp)
		}
		prev = cur
	}
	// The paper's observation: effects are salient above 35 °C — the slope
	// on [35,50] must exceed the slope on [20,35].
	lowSlope := (c.At(35) - c.At(20)) / 15
	highSlope := (c.At(50) - c.At(35)) / 15
	if highSlope <= lowSlope {
		t.Fatalf("high-range slope %v not steeper than low-range %v", highSlope, lowSlope)
	}
	// Paper operating points: 40 °C (low speed) vs 50 °C (high speed) must
	// differ materially — this gap is what penalizes always-hot disks.
	if c.At(50)-c.At(40) < 2 {
		t.Fatalf("AFR gap between 40 and 50 °C too small: %v", c.At(50)-c.At(40))
	}
}

func TestUtilCurveShape(t *testing.T) {
	c := UtilCurve4yr()
	if c.At(0.3) > c.At(0.6) || c.At(0.6) > c.At(0.9) {
		t.Fatal("utilization curve not monotone over class centers")
	}
	// §3.5 insight: "differences in AFR between high and medium
	// utilizations are slim" relative to the temperature effect, yet
	// present.
	if c.At(0.875) <= c.At(0.625) {
		t.Fatal("high utilization must cost more than medium")
	}
	// Clamping to the measured band.
	if c.At(0) != c.At(0.375) {
		t.Fatal("below-band utilization not clamped")
	}
	if c.At(1) != c.At(0.875) {
		t.Fatal("above-band utilization not clamped")
	}
}

func TestFreqQuadraticDefaults(t *testing.T) {
	q := DefaultFreqQuadratic()
	// No transitions, no adder.
	if q.At(0) != 0 {
		t.Fatalf("R(0) = %v, want 0", q.At(0))
	}
	// The paper's anchor: half of IDEMA's 0.15 AFR at 10/day.
	if math.Abs(q.At(10)-0.075) > 0.005 {
		t.Fatalf("R(10) = %v, want ≈0.075 (half the IDEMA adder)", q.At(10))
	}
	// Modest but visible at the paper's 65/day budget.
	if q.At(65) < 0.2 || q.At(65) > 1.0 {
		t.Fatalf("R(65) = %v, want noticeable but below 1 point", q.At(65))
	}
	// Steep at the domain end: aggressive switching is catastrophic.
	if q.At(1600) < 10 {
		t.Fatalf("R(1600) = %v, want double-digit percentage points", q.At(1600))
	}
	// The OCR reading stays available and diverges at low frequencies.
	ocr := PaperEq3OCRQuadratic()
	if ocr.At(100) > 0.5 {
		t.Fatalf("OCR reading R(100) = %v, expected negligible", ocr.At(100))
	}
}

func TestFreqQuadraticClamping(t *testing.T) {
	q := DefaultFreqQuadratic()
	if q.At(-5) != q.At(0) {
		t.Fatal("negative frequency not clamped to 0")
	}
	if q.At(5000) != q.At(1600) {
		t.Fatal("frequency beyond domain not clamped")
	}
}

func TestFreqQuadraticNeverNegative(t *testing.T) {
	q := DefaultFreqQuadratic()
	for f := 0.0; f <= 1600; f += 1 {
		if q.At(f) < 0 {
			t.Fatalf("R(%v) = %v < 0", f, q.At(f))
		}
	}
}

func TestFreqMonotoneBeyondVertex(t *testing.T) {
	q := DefaultFreqQuadratic()
	v := q.vertex()
	if v > 10 {
		t.Fatalf("vertex at %v/day; fit should be increasing over nearly all of the domain", v)
	}
	prev := q.At(v)
	for f := v + 1; f <= 1600; f += 1 {
		cur := q.At(f)
		if cur < prev {
			t.Fatalf("R decreasing at %v/day", f)
		}
		prev = cur
	}
}

func TestIDEMAAdderIsDouble(t *testing.T) {
	q := DefaultFreqQuadratic()
	for _, f := range []float64{0, 10, 65, 400, 1600} {
		if got, want := q.IDEMAAdderAt(f), 2*q.At(f); got != want {
			t.Fatalf("IDEMAAdderAt(%v) = %v, want %v", f, got, want)
		}
	}
}

func TestSolveBudget(t *testing.T) {
	q := DefaultFreqQuadratic()
	budget := q.At(65)
	f := q.SolveBudget(budget)
	if math.Abs(f-65) > 0.5 {
		t.Fatalf("SolveBudget(R(65)) = %v, want ≈65", f)
	}
	if got := q.SolveBudget(-1); got != 0 {
		t.Fatalf("impossible budget: got %v, want 0", got)
	}
	if got := q.SolveBudget(1e9); got != q.MaxPerDay {
		t.Fatalf("unlimited budget: got %v, want MaxPerDay", got)
	}
}

// Property: curve evaluation is bounded by the min/max breakpoint values.
func TestPropertyCurveBounded(t *testing.T) {
	c := TempCurve3yr()
	lo, hi := 3.5, 13.0
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		y := c.At(x)
		return y >= lo-1e-12 && y <= hi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SolveBudget is the inverse of At up to the bisection tolerance
// on the increasing part of the domain.
func TestPropertySolveBudgetInverse(t *testing.T) {
	q := DefaultFreqQuadratic()
	f := func(raw float64) bool {
		fq := 10 + math.Mod(math.Abs(raw), 1500)
		if math.IsNaN(fq) {
			return true
		}
		solved := q.SolveBudget(q.At(fq))
		return math.Abs(solved-fq) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

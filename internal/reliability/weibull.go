package reliability

import (
	"errors"
	"math"
)

// Weibull is the manufacturer-style drive-lifetime model the paper's
// related-work section contrasts PRESS against (§2: Cole's Seagate analysis
// "using laboratory test data and Weibull parameters"). Lifetime T follows
// Weibull(shape β, scale η): infant mortality at β < 1, random failures at
// β = 1, wear-out at β > 1. It complements PRESS: PRESS prices *operating
// conditions*, Weibull prices *age*.
type Weibull struct {
	// Shape is β. Field disk studies fit β ≈ 0.7-1.2 in mid-life.
	Shape float64
	// ScaleHours is η in power-on hours. Datasheet MTBFs of ~1M hours are
	// the "unrealistic" anchor the paper criticizes; field data suggests
	// an order of magnitude less.
	ScaleHours float64
}

// DefaultWeibull returns a field-data-flavoured parameterization: β = 1.1
// (mild wear-out) and η chosen so the first-year failure rate is ≈2.5%,
// inside Schroeder & Gibson's observed 2-4% annual replacement band.
func DefaultWeibull() Weibull {
	return Weibull{Shape: 1.1, ScaleHours: 247500}
}

// Validate reports whether the parameters are usable.
func (w Weibull) Validate() error {
	if w.Shape <= 0 || w.ScaleHours <= 0 ||
		math.IsNaN(w.Shape) || math.IsNaN(w.ScaleHours) {
		return errors.New("reliability: Weibull parameters must be positive")
	}
	return nil
}

// Survival returns S(t) = exp(−(t/η)^β) at age t in hours.
func (w Weibull) Survival(hours float64) float64 {
	if hours <= 0 {
		return 1
	}
	return math.Exp(-math.Pow(hours/w.ScaleHours, w.Shape))
}

// HazardPerHour returns the instantaneous failure rate h(t) = (β/η)(t/η)^(β−1).
func (w Weibull) HazardPerHour(hours float64) float64 {
	if hours < 0 {
		hours = 0
	}
	if hours == 0 && w.Shape < 1 {
		return math.Inf(1)
	}
	return w.Shape / w.ScaleHours * math.Pow(hours/w.ScaleHours, w.Shape-1)
}

// AFRPercent returns the annualized failure rate over the year starting at
// ageYears: 100·(1 − S(t+1yr)/S(t)).
func (w Weibull) AFRPercent(ageYears float64) (float64, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	if ageYears < 0 || math.IsNaN(ageYears) {
		return 0, errors.New("reliability: negative age")
	}
	const hoursPerYear = 8760.0
	t0 := ageYears * hoursPerYear
	s0 := w.Survival(t0)
	s1 := w.Survival(t0 + hoursPerYear)
	if s0 == 0 {
		return 100, nil
	}
	return 100 * (1 - s1/s0), nil
}

// MTBFHours returns the mean time between failures E[T] = η·Γ(1+1/β) — the
// datasheet-style single number the paper calls "unrealistic and
// misleading" when quoted as >1M hours.
func (w Weibull) MTBFHours() (float64, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	return w.ScaleHours * math.Gamma(1+1/w.Shape), nil
}

// FitScaleForAFR returns the η that produces the target first-year AFR at
// the receiver's β — a calibration helper for matching PRESS baselines.
func (w Weibull) FitScaleForAFR(firstYearAFRPercent float64) (Weibull, error) {
	if err := w.Validate(); err != nil {
		return Weibull{}, err
	}
	if firstYearAFRPercent <= 0 || firstYearAFRPercent >= 100 {
		return Weibull{}, errors.New("reliability: target AFR outside (0,100)")
	}
	// 1 - exp(-(8760/η)^β) = afr -> η = 8760 / (-ln(1-afr))^(1/β)
	const hoursPerYear = 8760.0
	x := -math.Log(1 - firstYearAFRPercent/100)
	eta := hoursPerYear / math.Pow(x, 1/w.Shape)
	return Weibull{Shape: w.Shape, ScaleHours: eta}, nil
}

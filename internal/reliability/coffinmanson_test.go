package reliability

import (
	"math"
	"testing"
	"testing/quick"
)

// within reports whether got is within tol (relative) of want.
func within(got, want, tol float64) bool {
	if want == 0 {
		return math.Abs(got) <= tol
	}
	return math.Abs(got-want)/math.Abs(want) <= tol
}

func TestArrheniusPaperGTmax(t *testing.T) {
	// Paper §3.4: G(Tmax)/A at Tmax = 50 °C is 3.2275e-20.
	got := Arrhenius(1, 1.25, 50)
	if !within(got, 3.2275e-20, 0.015) {
		t.Fatalf("G(50°C)/A = %v, want ≈3.2275e-20", got)
	}
}

func TestArrheniusScalesLinearlyInA(t *testing.T) {
	a := Arrhenius(2, 1.25, 40)
	b := Arrhenius(1, 1.25, 40)
	if !within(a, 2*b, 1e-12) {
		t.Fatalf("Arrhenius not linear in A: %v vs 2*%v", a, b)
	}
}

func TestArrheniusMonotoneInTemperature(t *testing.T) {
	prev := Arrhenius(1, 1.25, 0)
	for temp := 5.0; temp <= 100; temp += 5 {
		cur := Arrhenius(1, 1.25, temp)
		if cur <= prev {
			t.Fatalf("Arrhenius term not increasing at %v °C", temp)
		}
		prev = cur
	}
}

func TestDerivationReproducesPaperConstants(t *testing.T) {
	d := DefaultCoffinManson().Derive()
	// Paper §3.4 published values. Tolerances absorb the paper's own
	// rounding of G(Tmax).
	if !within(d.GTmax, 3.2275e-20, 0.015) {
		t.Errorf("GTmax = %v, want ≈3.2275e-20", d.GTmax)
	}
	if !within(d.AA0, 2.564317e26, 0.02) {
		t.Errorf("AA0 = %v, want ≈2.564317e26", d.AA0)
	}
	if !within(d.TransitionsToFailure, 118529, 0.02) {
		t.Errorf("N'f = %v, want ≈118529", d.TransitionsToFailure)
	}
	// "roughly twice" Nf -> the 50% effect claim.
	if d.TransitionToCycleRatio < 2.0 || d.TransitionToCycleRatio > 2.8 {
		t.Errorf("N'f/Nf = %v, want ≈2.37 (paper: 'roughly twice')", d.TransitionToCycleRatio)
	}
	// 118529/5/365 ≈ 65 transitions/day budget.
	if !within(d.DailyBudget5yr, 65, 0.03) {
		t.Errorf("daily budget = %v, want ≈65", d.DailyBudget5yr)
	}
}

func TestSolveAA0RoundTrips(t *testing.T) {
	cm := DefaultCoffinManson()
	aa0, err := cm.SolveAA0(50000, 25, 22, 50)
	if err != nil {
		t.Fatal(err)
	}
	nf, err := cm.CyclesToFailure(aa0, 25, 22, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !within(nf, 50000, 1e-9) {
		t.Fatalf("round trip Nf = %v, want 50000", nf)
	}
}

func TestCoffinMansonInputValidation(t *testing.T) {
	cm := DefaultCoffinManson()
	if _, err := cm.CyclesToFailure(0, 25, 22, 50); err == nil {
		t.Error("zero AA0 accepted")
	}
	if _, err := cm.CyclesToFailure(1e26, 0, 22, 50); err == nil {
		t.Error("zero cycling rate accepted")
	}
	if _, err := cm.CyclesToFailure(1e26, 25, 0, 50); err == nil {
		t.Error("zero deltaT accepted")
	}
	if _, err := cm.SolveAA0(0, 25, 22, 50); err == nil {
		t.Error("zero Nf accepted")
	}
	if _, err := cm.SolveAA0(5e4, 25, -1, 50); err == nil {
		t.Error("negative deltaT accepted")
	}
}

func TestGentlerCyclesMeanMoreCyclesToFailure(t *testing.T) {
	cm := DefaultCoffinManson()
	aa0 := cm.Derive().AA0
	harsh, _ := cm.CyclesToFailure(aa0, 25, 22, 50)
	gentleSwing, _ := cm.CyclesToFailure(aa0, 25, 10, 50)
	if gentleSwing <= harsh {
		t.Errorf("smaller ΔT should raise cycles to failure: %v <= %v", gentleSwing, harsh)
	}
	// Note the paper's Equation 2 uses the NEGATIVE-exponent Arrhenius
	// form, under which a lower Tmax LOWERS the Arrhenius term and hence
	// the cycle count. (NIST's handbook form uses the positive exponent,
	// under which hotter is worse.) Reproducing the paper's published
	// N'f = 118,529 requires the paper's form — its derivation divides
	// through by G(45°C)/G(50°C) ≈ 0.49 — so this package follows the
	// paper and this test pins that convention down.
	lowerTmax, _ := cm.CyclesToFailure(aa0, 25, 22, 40)
	if lowerTmax >= harsh {
		t.Errorf("paper convention: lower Tmax must lower the cycle count: %v >= %v", lowerTmax, harsh)
	}
}

// Property: SolveAA0 and CyclesToFailure are exact inverses over positive
// inputs.
func TestPropertyCoffinMansonInverse(t *testing.T) {
	cm := DefaultCoffinManson()
	f := func(nfRaw, rateRaw, dtRaw, tmaxRaw float64) bool {
		nf := 1 + math.Mod(math.Abs(nfRaw), 1e12)
		rate := 0.1 + math.Mod(math.Abs(rateRaw), 100)
		dt := 1 + math.Mod(math.Abs(dtRaw), 50)
		tmax := math.Mod(math.Abs(tmaxRaw), 80)
		if math.IsInf(nf, 0) || math.IsNaN(nf) {
			return true
		}
		aa0, err := cm.SolveAA0(nf, rate, dt, tmax)
		if err != nil {
			return false
		}
		back, err := cm.CyclesToFailure(aa0, rate, dt, tmax)
		if err != nil {
			return false
		}
		return within(back, nf, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

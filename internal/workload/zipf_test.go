package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZipfValidate(t *testing.T) {
	if (ZipfLaw{Alpha: 0.7, N: 10}).Validate() != nil {
		t.Fatal("valid law rejected")
	}
	if (ZipfLaw{Alpha: 0.7, N: 0}).Validate() == nil {
		t.Fatal("zero N accepted")
	}
	if (ZipfLaw{Alpha: -1, N: 10}).Validate() == nil {
		t.Fatal("negative alpha accepted")
	}
	if (ZipfLaw{Alpha: math.NaN(), N: 10}).Validate() == nil {
		t.Fatal("NaN alpha accepted")
	}
}

func TestZipfProbabilitiesNormalizedAndSorted(t *testing.T) {
	p, err := ZipfLaw{Alpha: 0.8, N: 100}.Probabilities()
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i, v := range p {
		sum += v
		if i > 0 && v > p[i-1] {
			t.Fatalf("probabilities not non-increasing at %d", i)
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestZipfAlphaZeroUniform(t *testing.T) {
	p, err := ZipfLaw{Alpha: 0, N: 5}.Probabilities()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range p {
		if math.Abs(v-0.2) > 1e-12 {
			t.Fatalf("uniform probability %v, want 0.2", v)
		}
	}
}

func TestTopShare(t *testing.T) {
	z := ZipfLaw{Alpha: 1.0, N: 1000}
	s, err := z.TopShare(0.2)
	if err != nil {
		t.Fatal(err)
	}
	// Classic Zipf concentrates well over half the mass in the top 20%.
	if s < 0.5 || s > 1 {
		t.Fatalf("TopShare(0.2) = %v for alpha=1", s)
	}
	if _, err := z.TopShare(0); err == nil {
		t.Fatal("zero fraction accepted")
	}
	if _, err := z.TopShare(1.5); err == nil {
		t.Fatal("fraction above 1 accepted")
	}
	full, err := z.TopShare(1)
	if err != nil || math.Abs(full-1) > 1e-12 {
		t.Fatalf("TopShare(1) = %v, %v", full, err)
	}
}

func TestSkewTheta(t *testing.T) {
	// 80/20 rule: θ = ln0.8/ln0.2 ≈ 0.1386.
	got, err := SkewTheta(80, 20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-math.Log(0.8)/math.Log(0.2)) > 1e-12 {
		t.Fatalf("SkewTheta(80,20) = %v", got)
	}
	// No skew: A == B.
	if th, _ := SkewTheta(50, 50); math.Abs(th-1) > 1e-12 {
		t.Fatalf("SkewTheta(50,50) = %v, want 1", th)
	}
	if th, _ := SkewTheta(100, 100); th != 1 {
		t.Fatalf("SkewTheta(100,100) = %v, want 1", th)
	}
	if _, err := SkewTheta(0, 20); err == nil {
		t.Fatal("zero access percent accepted")
	}
	if _, err := SkewTheta(80, 120); err == nil {
		t.Fatal("file percent above 100 accepted")
	}
	if _, err := SkewTheta(80, 100); err == nil {
		t.Fatal("inconsistent 100% file share accepted")
	}
}

func TestSkewThetaMoreSkewSmallerTheta(t *testing.T) {
	mild, _ := SkewTheta(60, 20)
	strong, _ := SkewTheta(95, 20)
	if strong >= mild {
		t.Fatalf("stronger skew should give smaller theta: %v >= %v", strong, mild)
	}
}

func TestMeasureTheta(t *testing.T) {
	// Uniform counts -> theta 1 (top 20% holds 20%).
	uniform := make([]int, 100)
	for i := range uniform {
		uniform[i] = 7
	}
	th, err := MeasureTheta(uniform)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(th-1) > 1e-9 {
		t.Fatalf("uniform theta = %v, want 1", th)
	}
	// Extreme skew: everything in one file.
	extreme := make([]int, 100)
	extreme[0] = 1000
	th, err = MeasureTheta(extreme)
	if err != nil {
		t.Fatal(err)
	}
	if th <= 0 || th > 0.1 {
		t.Fatalf("extreme skew theta = %v, want small positive", th)
	}
	// Empty and invalid inputs.
	if _, err := MeasureTheta(nil); err == nil {
		t.Fatal("nil counts accepted")
	}
	if _, err := MeasureTheta([]int{-1, 5}); err == nil {
		t.Fatal("negative count accepted")
	}
	if th, err := MeasureTheta([]int{0, 0}); err != nil || th != 1 {
		t.Fatalf("zero-access counts: %v, %v", th, err)
	}
}

func TestMeasureThetaDoesNotMutateInput(t *testing.T) {
	counts := []int{1, 5, 3}
	if _, err := MeasureTheta(counts); err != nil {
		t.Fatal(err)
	}
	if counts[0] != 1 || counts[1] != 5 || counts[2] != 3 {
		t.Fatalf("input mutated: %v", counts)
	}
}

func TestPopularSplit(t *testing.T) {
	p, u, err := PopularSplit(0.2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if p != 80 || u != 20 {
		t.Fatalf("split = (%d,%d), want (80,20)", p, u)
	}
	// Clamps keep both classes non-empty.
	p, u, err = PopularSplit(1, 10)
	if err != nil || p != 1 || u != 9 {
		t.Fatalf("theta=1 split = (%d,%d), %v", p, u, err)
	}
	p, u, err = PopularSplit(0, 10)
	if err != nil || p != 9 || u != 1 {
		t.Fatalf("theta=0 split = (%d,%d), %v", p, u, err)
	}
	if _, _, err := PopularSplit(0.5, 0); err == nil {
		t.Fatal("zero file count accepted")
	}
	if _, _, err := PopularSplit(1.5, 10); err == nil {
		t.Fatal("theta above 1 accepted")
	}
}

func TestDeltaRatio(t *testing.T) {
	d, err := DeltaRatio(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-4) > 1e-12 {
		t.Fatalf("delta = %v, want 4", d)
	}
	if _, err := DeltaRatio(0); err == nil {
		t.Fatal("theta=0 accepted (division by zero)")
	}
}

func TestGammaRatio(t *testing.T) {
	// Eq. 5: popular load 50, unpopular load 10 -> γ = 5.
	g, err := GammaRatio(50, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-5) > 1e-12 {
		t.Fatalf("gamma = %v, want 5", g)
	}
	if g, err := GammaRatio(10, 0); err != nil || !math.IsInf(g, 1) {
		t.Fatalf("zero unpopular load: %v, %v", g, err)
	}
	if _, err := GammaRatio(-1, 1); err == nil {
		t.Fatal("negative popular load accepted")
	}
	if _, err := GammaRatio(1, -1); err == nil {
		t.Fatal("negative unpopular load accepted")
	}
	if _, err := GammaRatio(math.NaN(), 1); err == nil {
		t.Fatal("NaN load accepted")
	}
}

func TestHotDiskCount(t *testing.T) {
	cases := []struct {
		gamma float64
		n     int
		want  int
	}{
		{1, 10, 5},
		{3, 8, 6},
		{0.001, 10, 1},      // clamp low
		{1000, 10, 9},       // clamp high
		{math.Inf(1), 6, 5}, // infinite gamma
	}
	for _, tc := range cases {
		got, err := HotDiskCount(tc.gamma, tc.n)
		if err != nil {
			t.Fatalf("gamma=%v n=%d: %v", tc.gamma, tc.n, err)
		}
		if got != tc.want {
			t.Errorf("HotDiskCount(%v, %d) = %d, want %d", tc.gamma, tc.n, got, tc.want)
		}
	}
	if _, err := HotDiskCount(1, 1); err == nil {
		t.Fatal("single disk accepted")
	}
	if _, err := HotDiskCount(-1, 4); err == nil {
		t.Fatal("negative gamma accepted")
	}
}

// Property: hot disk count always lands in [1, n-1] for any gamma >= 0.
func TestPropertyHotDiskCountBounds(t *testing.T) {
	f := func(gRaw float64, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		g := math.Abs(gRaw)
		if math.IsNaN(g) {
			return true
		}
		hd, err := HotDiskCount(g, n)
		return err == nil && hd >= 1 && hd <= n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: PopularSplit partitions m exactly.
func TestPropertyPopularSplitPartition(t *testing.T) {
	f := func(thRaw float64, mRaw uint16) bool {
		m := int(mRaw%5000) + 1
		th := math.Mod(math.Abs(thRaw), 1)
		p, u, err := PopularSplit(th, m)
		return err == nil && p+u == m && p >= 0 && u >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

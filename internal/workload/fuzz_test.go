package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzTraceCodec feeds arbitrary bytes through ReadTrace. The parser must
// never panic, and whenever it accepts an input, the trace must survive a
// WriteTrace/ReadTrace round trip bit-identically — the property the
// simulator's determinism guarantees depend on when traces go through
// files.
func FuzzTraceCodec(f *testing.F) {
	f.Add([]byte("# comment\nfile 0 1.5 0.25\nfile 1 2 0\nreq 0 0\nreq 0.5 1\nreq 0.5 0\n"))
	f.Add([]byte("file 3 0.125 1e-3\nreq 1e2 3\n"))
	f.Add([]byte("file 0 1 1\nreq NaN 0\n"))
	f.Add([]byte("file 0 0 1\nreq 0 0\n"))
	f.Add([]byte("file 0 1 1\nreq -1 0\n"))
	f.Add([]byte("file 0 1 1\nreq 2 0\nreq 1 0\n"))
	f.Add([]byte("file 0 Inf 1\n"))
	f.Add([]byte("garbage line\n"))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			if tr != nil {
				t.Fatal("ReadTrace returned both a trace and an error")
			}
			return
		}
		// Accepted input: it must be valid and must round-trip exactly.
		if err := tr.Validate(); err != nil {
			t.Fatalf("ReadTrace accepted an invalid trace: %v", err)
		}
		var buf strings.Builder
		if err := WriteTrace(&buf, tr); err != nil {
			t.Fatalf("WriteTrace of an accepted trace failed: %v", err)
		}
		back, err := ReadTrace(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("re-reading the written trace failed: %v", err)
		}
		if len(back.Files) != len(tr.Files) || len(back.Requests) != len(tr.Requests) {
			t.Fatalf("round trip changed sizes: %d/%d files, %d/%d requests",
				len(tr.Files), len(back.Files), len(tr.Requests), len(back.Requests))
		}
		for i := range tr.Files {
			if tr.Files[i] != back.Files[i] {
				t.Fatalf("file %d changed in round trip: %+v vs %+v", i, tr.Files[i], back.Files[i])
			}
		}
		for i := range tr.Requests {
			if tr.Requests[i] != back.Requests[i] {
				t.Fatalf("request %d changed in round trip: %+v vs %+v", i, tr.Requests[i], back.Requests[i])
			}
		}
	})
}

package workload

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ZipfLaw is the paper's request-popularity model (§4): the probability of a
// request for the i'th most popular of N files is proportional to 1/i^Alpha,
// with Alpha typically in [0, 1]. Alpha = 0 is uniform; Alpha = 1 is the
// classic Zipf law.
type ZipfLaw struct {
	Alpha float64
	N     int
}

// Validate reports whether the law is well-formed.
func (z ZipfLaw) Validate() error {
	if z.N <= 0 {
		return errors.New("workload: Zipf N must be positive")
	}
	if z.Alpha < 0 || math.IsNaN(z.Alpha) {
		return fmt.Errorf("workload: Zipf alpha %v must be non-negative", z.Alpha)
	}
	return nil
}

// Probabilities returns the normalized rank-probability vector p[0] >= p[1]
// >= ... for ranks 1..N.
func (z ZipfLaw) Probabilities() ([]float64, error) {
	if err := z.Validate(); err != nil {
		return nil, err
	}
	p := make([]float64, z.N)
	var sum float64
	for i := range p {
		p[i] = math.Pow(float64(i+1), -z.Alpha)
		sum += p[i]
	}
	for i := range p {
		p[i] /= sum
	}
	return p, nil
}

// TopShare returns the fraction of accesses captured by the top `frac` of
// files (frac in (0,1]).
func (z ZipfLaw) TopShare(frac float64) (float64, error) {
	p, err := z.Probabilities()
	if err != nil {
		return 0, err
	}
	if frac <= 0 || frac > 1 {
		return 0, fmt.Errorf("workload: fraction %v outside (0,1]", frac)
	}
	k := int(math.Ceil(frac * float64(z.N)))
	if k > z.N {
		k = z.N
	}
	var sum float64
	for i := 0; i < k; i++ {
		sum += p[i]
	}
	return sum, nil
}

// SkewTheta computes the paper's skew parameter θ = log₁₀₀A / log₁₀₀B for
// the rule "A percent of all accesses are directed to B percent of files"
// (§4, after Lee, Scheuermann & Vingralek). Both arguments are percentages
// in (0, 100]. θ = 1 means no skew (A = B); θ → 0 means extreme skew.
func SkewTheta(accessPercent, filePercent float64) (float64, error) {
	if accessPercent <= 0 || accessPercent > 100 || filePercent <= 0 || filePercent > 100 {
		return 0, fmt.Errorf("workload: percentages (%v, %v) outside (0,100]", accessPercent, filePercent)
	}
	if filePercent == 100 {
		if accessPercent == 100 {
			return 1, nil
		}
		return 0, errors.New("workload: 100% of files holding less than 100% of accesses is inconsistent")
	}
	// log base 100 of a percentage x is log(x/100)/log(100) shifted:
	// the paper's convention treats A, B as fractions of the whole, so
	// θ = ln(A/100)/ln(B/100).
	return math.Log(accessPercent/100) / math.Log(filePercent/100), nil
}

// MeasureTheta estimates θ from an empirical access distribution: it finds
// the share of accesses A captured by the top B = 20% of files and applies
// SkewTheta. counts[i] is the observed access count of file i (any order).
// A uniform distribution yields θ ≈ 1.
func MeasureTheta(counts []int) (float64, error) {
	if len(counts) == 0 {
		return 0, errors.New("workload: no counts")
	}
	sorted := make([]int, len(counts))
	copy(sorted, counts)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	var total int64
	for _, c := range sorted {
		if c < 0 {
			return 0, errors.New("workload: negative count")
		}
		total += int64(c)
	}
	if total == 0 {
		return 1, nil // no accesses: treat as unskewed
	}
	const topFrac = 0.20
	k := int(math.Ceil(topFrac * float64(len(sorted))))
	if k < 1 {
		k = 1
	}
	var top int64
	for i := 0; i < k; i++ {
		top += int64(sorted[i])
	}
	a := 100 * float64(top) / float64(total)
	if a <= 0 {
		return 1, nil
	}
	if a >= 100 {
		// All accesses inside the top 20%: extreme skew; clamp to a small
		// positive θ rather than 0 so Eq. 4's δ = (1-θ)/θ stays finite.
		return 0.02, nil
	}
	theta, err := SkewTheta(a, topFrac*100)
	if err != nil {
		return 0, err
	}
	if theta > 1 {
		theta = 1 // heavier tail than uniform in the top bucket; no skew
	}
	return theta, nil
}

// PopularSplit applies the paper's Equation 4 bookkeeping: given θ and the
// total file count m, it returns the sizes of the popular and unpopular
// sets, |Fp| = round((1−θ)·m) and |Fu| = m − |Fp|, each clamped to leave at
// least one file on each side when m >= 2.
func PopularSplit(theta float64, m int) (popular, unpopular int, err error) {
	if m <= 0 {
		return 0, 0, errors.New("workload: file count must be positive")
	}
	if theta < 0 || theta > 1 || math.IsNaN(theta) {
		return 0, 0, fmt.Errorf("workload: theta %v outside [0,1]", theta)
	}
	popular = int(math.Round((1 - theta) * float64(m)))
	if m >= 2 {
		if popular < 1 {
			popular = 1
		}
		if popular > m-1 {
			popular = m - 1
		}
	} else if popular > m {
		popular = m
	}
	return popular, m - popular, nil
}

// DeltaRatio is Equation 4's δ = (1−θ)/θ, the ratio between popular and
// unpopular file counts.
func DeltaRatio(theta float64) (float64, error) {
	if theta <= 0 || theta > 1 || math.IsNaN(theta) {
		return 0, fmt.Errorf("workload: theta %v outside (0,1]", theta)
	}
	return (1 - theta) / theta, nil
}

// GammaRatio is Equation 5: the hot/cold disk-count ratio, "decided by the
// ratio between the total load of popular files and the total load of
// unpopular files": γ = Σ_{i=1..(1−θ)m, fi∈Fp} hi / Σ_{j=1..θm, fj∈Fu} hj.
// (In the paper's typography the (1−θ)m and θm terms are the summation
// limits — the class sizes from Eq. 4 — not multipliers.)
func GammaRatio(popularLoad, unpopularLoad float64) (float64, error) {
	if popularLoad < 0 || unpopularLoad < 0 || math.IsNaN(popularLoad) || math.IsNaN(unpopularLoad) {
		return 0, errors.New("workload: negative or NaN load")
	}
	if unpopularLoad == 0 {
		return math.Inf(1), nil
	}
	return popularLoad / unpopularLoad, nil
}

// HotDiskCount applies the paper's step 3: HD = round(γ·n/(γ+1)), clamped to
// [1, n−1] so both zones exist (a zone of zero disks cannot hold its file
// class).
func HotDiskCount(gamma float64, n int) (int, error) {
	if n < 2 {
		return 0, errors.New("workload: need at least 2 disks to form zones")
	}
	if gamma < 0 || math.IsNaN(gamma) {
		return 0, fmt.Errorf("workload: gamma %v must be non-negative", gamma)
	}
	var hd int
	if math.IsInf(gamma, 1) {
		hd = n - 1
	} else {
		hd = int(math.Round(gamma * float64(n) / (gamma + 1)))
	}
	if hd < 1 {
		hd = 1
	}
	if hd > n-1 {
		hd = n - 1
	}
	return hd, nil
}
